(* Hierarchical state machine tests: run-to-completion, LCA-based
   transitions, entry/exit ordering, internal transitions, guards,
   history, validation. *)

type log_ctx = { mutable log : string list }

let log ctx entry = ctx.log <- entry :: ctx.log
let log_of ctx = List.rev ctx.log

let event = Statechart.Event.make

(* A machine with a composite state to exercise hierarchy:
   Off, On{Low, High} with transitions between everything. *)
let lamp ?(history = false) () =
  let m = Statechart.Machine.create "lamp" in
  Statechart.Machine.add_state m "Off"
    ~entry:(fun c -> log c "enter:Off") ~exit:(fun c -> log c "exit:Off");
  Statechart.Machine.add_state m "On" ~history
    ~entry:(fun c -> log c "enter:On") ~exit:(fun c -> log c "exit:On");
  Statechart.Machine.add_state m "Low" ~parent:"On"
    ~entry:(fun c -> log c "enter:Low") ~exit:(fun c -> log c "exit:Low");
  Statechart.Machine.add_state m "High" ~parent:"On"
    ~entry:(fun c -> log c "enter:High") ~exit:(fun c -> log c "exit:High");
  Statechart.Machine.set_initial m "Off";
  Statechart.Machine.set_initial m ~of_:"On" "Low";
  Statechart.Machine.add_transition m ~src:"Off" ~dst:"On" ~trigger:"power" ();
  Statechart.Machine.add_transition m ~src:"On" ~dst:"Off" ~trigger:"power" ();
  Statechart.Machine.add_transition m ~src:"Low" ~dst:"High" ~trigger:"brighter" ();
  Statechart.Machine.add_transition m ~src:"High" ~dst:"Low" ~trigger:"dimmer" ();
  m

let start machine = Statechart.Instance.start machine { log = [] }

let test_initial_configuration () =
  let i = start (lamp ()) in
  Alcotest.(check (list string)) "starts in Off" [ "Off" ]
    (Statechart.Instance.configuration i);
  Alcotest.(check (list string)) "entry ran" [ "enter:Off" ]
    (log_of (Statechart.Instance.context i))

let test_enters_initial_child () =
  let i = start (lamp ()) in
  ignore (Statechart.Instance.handle i (event "power"));
  Alcotest.(check (list string)) "On/Low" [ "On"; "Low" ]
    (Statechart.Instance.configuration i);
  Alcotest.(check bool) "is_in composite" true (Statechart.Instance.is_in i "On")

let test_entry_exit_order () =
  let i = start (lamp ()) in
  ignore (Statechart.Instance.handle i (event "power"));
  Alcotest.(check (list string)) "exit then enter, outermost-in"
    [ "enter:Off"; "exit:Off"; "enter:On"; "enter:Low" ]
    (log_of (Statechart.Instance.context i))

let test_composite_exit_order () =
  let i = start (lamp ()) in
  ignore (Statechart.Instance.handle i (event "power"));
  (Statechart.Instance.context i).log <- [];
  ignore (Statechart.Instance.handle i (event "power"));
  Alcotest.(check (list string)) "innermost exits first"
    [ "exit:Low"; "exit:On"; "enter:Off" ]
    (log_of (Statechart.Instance.context i))

let test_inner_transition_does_not_exit_composite () =
  let i = start (lamp ()) in
  ignore (Statechart.Instance.handle i (event "power"));
  (Statechart.Instance.context i).log <- [];
  ignore (Statechart.Instance.handle i (event "brighter"));
  Alcotest.(check (list string)) "composite not exited"
    [ "exit:Low"; "enter:High" ]
    (log_of (Statechart.Instance.context i))

let test_composite_handles_for_child () =
  (* "power" is defined on On; while in On/High it must still fire. *)
  let i = start (lamp ()) in
  ignore (Statechart.Instance.handle i (event "power"));
  ignore (Statechart.Instance.handle i (event "brighter"));
  Alcotest.(check bool) "in High" true (Statechart.Instance.is_in i "High");
  Alcotest.(check bool) "power handled from child" true
    (Statechart.Instance.handle i (event "power"));
  Alcotest.(check (list string)) "back to Off" [ "Off" ]
    (Statechart.Instance.configuration i)

let test_unhandled_event_dropped () =
  let i = start (lamp ()) in
  Alcotest.(check bool) "dimmer not handled in Off" false
    (Statechart.Instance.handle i (event "dimmer"));
  Alcotest.(check int) "dropped counted" 1 (Statechart.Instance.events_dropped i)

let test_history_restores_substate () =
  let i = start (lamp ~history:true ()) in
  ignore (Statechart.Instance.handle i (event "power"));     (* On/Low *)
  ignore (Statechart.Instance.handle i (event "brighter")); (* On/High *)
  ignore (Statechart.Instance.handle i (event "power"));     (* Off, records High *)
  ignore (Statechart.Instance.handle i (event "power"));     (* On + history *)
  Alcotest.(check (list string)) "history restored High" [ "On"; "High" ]
    (Statechart.Instance.configuration i)

let test_no_history_reenters_initial () =
  let i = start (lamp ()) in
  ignore (Statechart.Instance.handle i (event "power"));
  ignore (Statechart.Instance.handle i (event "brighter"));
  ignore (Statechart.Instance.handle i (event "power"));
  ignore (Statechart.Instance.handle i (event "power"));
  Alcotest.(check (list string)) "initial child again" [ "On"; "Low" ]
    (Statechart.Instance.configuration i)

let test_guards () =
  let m = Statechart.Machine.create "guarded" in
  Statechart.Machine.add_state m "A";
  Statechart.Machine.add_state m "B";
  Statechart.Machine.add_state m "C";
  Statechart.Machine.set_initial m "A";
  (* Two transitions on the same trigger; the guard picks by payload. *)
  Statechart.Machine.add_transition m ~src:"A" ~dst:"B" ~trigger:"go"
    ~guard:(fun _ e ->
        match Statechart.Event.float_payload e with
        | Some v -> v > 0.
        | None -> false)
    ();
  Statechart.Machine.add_transition m ~src:"A" ~dst:"C" ~trigger:"go" ();
  let i = Statechart.Instance.start m { log = [] } in
  ignore
    (Statechart.Instance.handle i
       (Statechart.Event.make ~value:(Dataflow.Value.Float (-1.)) "go"));
  Alcotest.(check (list string)) "guard false -> second transition" [ "C" ]
    (Statechart.Instance.configuration i)

let test_guard_priority_order () =
  let m = Statechart.Machine.create "prio" in
  Statechart.Machine.add_state m "A";
  Statechart.Machine.add_state m "B";
  Statechart.Machine.add_state m "C";
  Statechart.Machine.set_initial m "A";
  Statechart.Machine.add_transition m ~src:"A" ~dst:"B" ~trigger:"go" ();
  Statechart.Machine.add_transition m ~src:"A" ~dst:"C" ~trigger:"go" ();
  let i = Statechart.Instance.start m { log = [] } in
  ignore (Statechart.Instance.handle i (event "go"));
  Alcotest.(check (list string)) "declaration order wins" [ "B" ]
    (Statechart.Instance.configuration i)

let test_internal_transition () =
  let m = Statechart.Machine.create "internal" in
  Statechart.Machine.add_state m "A"
    ~entry:(fun c -> log c "enter:A") ~exit:(fun c -> log c "exit:A");
  Statechart.Machine.set_initial m "A";
  Statechart.Machine.add_internal m ~state:"A" ~trigger:"poke"
    (fun c _ -> log c "action");
  let i = Statechart.Instance.start m { log = [] } in
  ignore (Statechart.Instance.handle i (event "poke"));
  Alcotest.(check (list string)) "no exit/entry around internal action"
    [ "enter:A"; "action" ]
    (log_of (Statechart.Instance.context i))

let test_self_transition_external () =
  let m = Statechart.Machine.create "self" in
  Statechart.Machine.add_state m "A"
    ~entry:(fun c -> log c "enter") ~exit:(fun c -> log c "exit");
  Statechart.Machine.set_initial m "A";
  Statechart.Machine.add_transition m ~src:"A" ~dst:"A" ~trigger:"reset" ();
  let i = Statechart.Instance.start m { log = [] } in
  (Statechart.Instance.context i).log <- [];
  ignore (Statechart.Instance.handle i (event "reset"));
  Alcotest.(check (list string)) "self-transition exits and re-enters"
    [ "exit"; "enter" ]
    (log_of (Statechart.Instance.context i))

let test_transition_action_sees_payload () =
  let m = Statechart.Machine.create "payload" in
  Statechart.Machine.add_state m "A";
  Statechart.Machine.add_state m "B";
  Statechart.Machine.set_initial m "A";
  let seen = ref nan in
  Statechart.Machine.add_transition m ~src:"A" ~dst:"B" ~trigger:"go"
    ~action:(fun _ e ->
        match Statechart.Event.float_payload e with
        | Some v -> seen := v
        | None -> ())
    ();
  let i = Statechart.Instance.start m { log = [] } in
  ignore
    (Statechart.Instance.handle i
       (Statechart.Event.make ~value:(Dataflow.Value.Float 42.) "go"));
  Alcotest.(check (float 0.)) "payload delivered" 42. !seen

let test_validation_catches_errors () =
  let m = Statechart.Machine.create "broken" in
  Statechart.Machine.add_state m "A";
  (* no initial *)
  Alcotest.(check bool) "missing initial reported" true
    (Statechart.Machine.validate m <> []);
  Alcotest.(check bool) "start raises" true
    (try
       ignore (Statechart.Instance.start m { log = [] });
       false
     with Statechart.Instance.Invalid_machine _ -> true)

let test_validation_composite_initial () =
  let m = Statechart.Machine.create "composite" in
  Statechart.Machine.add_state m "P";
  Statechart.Machine.add_state m "C" ~parent:"P";
  Statechart.Machine.set_initial m "P";
  (* P has a child but no initial child *)
  Alcotest.(check bool) "composite initial required" true
    (List.exists
       (fun e -> e = "composite state \"P\" has no initial child")
       (Statechart.Machine.validate m))

let test_counters () =
  let i = start (lamp ()) in
  ignore (Statechart.Instance.handle i (event "power"));
  ignore (Statechart.Instance.handle i (event "nonsense"));
  Alcotest.(check int) "seen" 2 (Statechart.Instance.events_seen i);
  Alcotest.(check int) "taken" 1 (Statechart.Instance.transitions_taken i);
  Alcotest.(check int) "dropped" 1 (Statechart.Instance.events_dropped i)

(* qcheck: random event sequences never corrupt the configuration — the
   active leaf is always a declared state and the configuration is a
   parent chain. *)
let prop_configuration_wellformed =
  QCheck.Test.make ~count:200 ~name:"random events keep configuration well-formed"
    QCheck.(list_of_size Gen.(int_range 0 50)
              (oneofl [ "power"; "brighter"; "dimmer"; "junk" ]))
    (fun events ->
       let m = lamp ~history:true () in
       let i = Statechart.Instance.start m { log = [] } in
       List.iter (fun e -> ignore (Statechart.Instance.handle i (event e))) events;
       let config = Statechart.Instance.configuration i in
       let states = Statechart.Machine.state_names m in
       config <> []
       && List.for_all (fun s -> List.mem s states) config
       &&
       (* consecutive elements are parent/child pairs *)
       let rec chain = function
         | a :: (b :: _ as rest) ->
           Statechart.Machine.parent m b = Some a && chain rest
         | [ _ ] | [] -> true
       in
       chain config)

let suite =
  [ Alcotest.test_case "initial configuration" `Quick test_initial_configuration;
    Alcotest.test_case "enters initial child" `Quick test_enters_initial_child;
    Alcotest.test_case "entry/exit ordering" `Quick test_entry_exit_order;
    Alcotest.test_case "composite exit ordering" `Quick test_composite_exit_order;
    Alcotest.test_case "inner transition stays in composite" `Quick
      test_inner_transition_does_not_exit_composite;
    Alcotest.test_case "composite handles child events" `Quick
      test_composite_handles_for_child;
    Alcotest.test_case "unhandled events dropped" `Quick test_unhandled_event_dropped;
    Alcotest.test_case "deep history" `Quick test_history_restores_substate;
    Alcotest.test_case "no history -> initial child" `Quick test_no_history_reenters_initial;
    Alcotest.test_case "guards select transitions" `Quick test_guards;
    Alcotest.test_case "declaration order priority" `Quick test_guard_priority_order;
    Alcotest.test_case "internal transitions" `Quick test_internal_transition;
    Alcotest.test_case "self-transition is external" `Quick test_self_transition_external;
    Alcotest.test_case "payload reaches actions" `Quick test_transition_action_sees_payload;
    Alcotest.test_case "validation: missing initial" `Quick test_validation_catches_errors;
    Alcotest.test_case "validation: composite initial" `Quick
      test_validation_composite_initial;
    Alcotest.test_case "event counters" `Quick test_counters;
    QCheck_alcotest.to_alcotest prop_configuration_wellformed ]

(* ---- static analysis ---- *)

let test_analysis_reachability () =
  let m = Statechart.Machine.create "a" in
  Statechart.Machine.add_state m "A";
  Statechart.Machine.add_state m "B";
  Statechart.Machine.add_state m "Orphan";
  Statechart.Machine.set_initial m "A";
  Statechart.Machine.add_transition m ~src:"A" ~dst:"B" ~trigger:"go" ();
  Statechart.Machine.add_transition m ~src:"Orphan" ~dst:"A" ~trigger:"back" ();
  let r = Statechart.Analysis.analyze m in
  Alcotest.(check (list string)) "reachable" [ "A"; "B" ]
    r.Statechart.Analysis.reachable;
  Alcotest.(check (list string)) "unreachable" [ "Orphan" ]
    r.Statechart.Analysis.unreachable;
  Alcotest.(check (list (pair string string))) "dead transitions"
    [ ("Orphan", "back") ] r.Statechart.Analysis.dead_transitions

let test_analysis_hierarchy_reachability () =
  (* Entering a composite reaches its initial chain; a transition from a
     child reaches a sibling subtree. *)
  let m = lamp () in
  let r = Statechart.Analysis.analyze m in
  Alcotest.(check (list string)) "all lamp states reachable"
    [ "High"; "Low"; "Off"; "On" ] r.Statechart.Analysis.reachable

let test_analysis_nondeterminism () =
  let m = Statechart.Machine.create "n" in
  Statechart.Machine.add_state m "A";
  Statechart.Machine.add_state m "B";
  Statechart.Machine.set_initial m "A";
  Statechart.Machine.add_transition m ~src:"A" ~dst:"B" ~trigger:"go" ();
  Statechart.Machine.add_transition m ~src:"A" ~dst:"A" ~trigger:"go" ();
  (* Guarded pairs are not flagged. *)
  Statechart.Machine.add_transition m ~src:"B" ~dst:"A" ~trigger:"back"
    ~guard:(fun _ _ -> true) ();
  Statechart.Machine.add_transition m ~src:"B" ~dst:"B" ~trigger:"back" ();
  let r = Statechart.Analysis.analyze m in
  Alcotest.(check (list (pair string string))) "only unguarded pair flagged"
    [ ("A", "go") ] r.Statechart.Analysis.nondeterministic

let test_analysis_sinks () =
  let m = Statechart.Machine.create "s" in
  Statechart.Machine.add_state m "Run";
  Statechart.Machine.add_state m "Done";
  Statechart.Machine.set_initial m "Run";
  Statechart.Machine.add_transition m ~src:"Run" ~dst:"Done" ~trigger:"finish" ();
  let r = Statechart.Analysis.analyze m in
  Alcotest.(check (list string)) "Done is a sink" [ "Done" ]
    r.Statechart.Analysis.sink_states

let test_analysis_hierarchy_sinks () =
  (* A leaf with no transitions of its own is not a sink while an
     ancestor can still leave (inherited transitions count); it is one
     only when the whole ancestor chain is inert. *)
  let m = Statechart.Machine.create "h" in
  Statechart.Machine.add_state m "On";
  Statechart.Machine.add_state m ~parent:"On" "Idle";
  Statechart.Machine.add_state m ~parent:"On" "Busy";
  Statechart.Machine.add_state m "Off";
  Statechart.Machine.set_initial m "On";
  Statechart.Machine.set_initial m ~of_:"On" "Idle";
  Statechart.Machine.add_transition m ~src:"Idle" ~dst:"Busy" ~trigger:"work" ();
  Statechart.Machine.add_transition m ~src:"On" ~dst:"Off" ~trigger:"off" ();
  let r = Statechart.Analysis.analyze m in
  Alcotest.(check (list string)) "Busy inherits On's exit; only Off is inert"
    [ "Off" ] r.Statechart.Analysis.sink_states

let test_analysis_hierarchy_nondet () =
  (* A child overriding a parent's trigger is priority, not
     nondeterminism; a guarded same-trigger pair is a decision, not a
     race. Neither may be flagged. *)
  let m = Statechart.Machine.create "h2" in
  Statechart.Machine.add_state m "P";
  Statechart.Machine.add_state m ~parent:"P" "C";
  Statechart.Machine.add_state m "Q";
  Statechart.Machine.set_initial m "P";
  Statechart.Machine.set_initial m ~of_:"P" "C";
  Statechart.Machine.add_transition m ~src:"P" ~dst:"Q" ~trigger:"go" ();
  Statechart.Machine.add_transition m ~src:"C" ~dst:"Q" ~trigger:"go" ();
  Statechart.Machine.add_transition m ~src:"C" ~dst:"Q" ~trigger:"maybe"
    ~guard:(fun _ _ -> true) ();
  Statechart.Machine.add_transition m ~src:"C" ~dst:"P" ~trigger:"maybe"
    ~guard:(fun _ _ -> false) ();
  let r = Statechart.Analysis.analyze m in
  Alcotest.(check (list (pair string string))) "nothing flagged" []
    r.Statechart.Analysis.nondeterministic

let analysis_suite =
  [ Alcotest.test_case "analysis: reachability" `Quick test_analysis_reachability;
    Alcotest.test_case "analysis: hierarchical reachability" `Quick
      test_analysis_hierarchy_reachability;
    Alcotest.test_case "analysis: nondeterminism" `Quick test_analysis_nondeterminism;
    Alcotest.test_case "analysis: sink states" `Quick test_analysis_sinks;
    Alcotest.test_case "analysis: hierarchical sinks" `Quick
      test_analysis_hierarchy_sinks;
    Alcotest.test_case "analysis: hierarchical nondeterminism" `Quick
      test_analysis_hierarchy_nondet ]

let suite = suite @ analysis_suite
