(* Allocation regressions for the hot paths: the claims "zero heap
   allocation in steady state" are enforced with Gc.minor_words deltas,
   not by eye. Gc.minor_words is [@@noalloc] with an unboxed float
   return, so the measurement itself does not disturb the counter. *)

let minor_delta f =
  (* Warm twice: first call builds/caches (routing plans, interned
     parameter lookups, lazily-created stage storage), second confirms
     the code paths are settled before we measure. *)
  f ();
  f ();
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

(* Bare RK4 step through the preallocated workspace: zero words. *)
let test_step_into_alloc_free () =
  let sys =
    Ode.System.create_inplace ~dim:2 (fun tcell y dy ->
        dy.(0) <- y.(1);
        dy.(1) <- (-.y.(0)) -. (0.1 *. y.(1)) +. (0.01 *. tcell.(0)))
  in
  let ws = Ode.Fixed.workspace ~dim:2 in
  let y = [| 1.0; 0.0 |] in
  let words =
    minor_delta (fun () ->
        Ode.Fixed.step_into Ode.Fixed.Rk4 sys ~ws ~t:0.5 ~dt:0.001 y)
  in
  Alcotest.(check (float 0.)) "rk4 step_into allocates nothing" 0. words

(* Mesh walk (the inner loop of Integrator.advance_to): zero words. *)
let test_advance_into_alloc_free () =
  let sys =
    Ode.System.create_inplace ~dim:1 (fun _t y dy -> dy.(0) <- -.y.(0))
  in
  let ws = Ode.Fixed.workspace ~dim:1 in
  let y = [| 1.0 |] in
  let words =
    minor_delta (fun () ->
        ignore
          (Ode.Fixed.advance_into Ode.Fixed.Rk4 sys ~ws ~t0:0. ~t1:0.1
             ~dt:0.001 y))
  in
  Alcotest.(check (float 0.)) "advance_into allocates nothing" 0. words

(* Full guard-free engine tick in steady state: solver advance through
   the prepared path (interned params, in-place rhs), fast output plan
   (direct float-cell stores), compiled flow routing into a sink. The
   rhs reads a parameter — the pointer-equality interning cache makes
   that allocation-free too. *)
let test_engine_tick_alloc_free () =
  let plant =
    Hybrid.Streamer.leaf "plant" ~rate:0.3 ~dim:1 ~init:[| 18. |]
      ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 0.002))
      ~params:[ ("ambient", 5.); ("tau", 30.) ]
      ~dports:[ Hybrid.Streamer.dport_out "temp" ]
      ~rhs_into:(fun env _tcell y dy ->
          dy.(0) <-
            -.(y.(0) -. env.Hybrid.Solver.param "ambient")
            /. env.Hybrid.Solver.param "tau")
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
      ~rhs:(fun env _t y ->
          [| -.(y.(0) -. env.Hybrid.Solver.param "ambient")
             /. env.Hybrid.Solver.param "tau" |])
  in
  let sink =
    Hybrid.Streamer.leaf "sink" ~rate:0.3 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_in "temp_in" ]
      ~rhs_into:(fun _env _tcell _y dy -> dy.(0) <- 0.)
      ~outputs:(Hybrid.Streamer.state_outputs [])
      ~rhs:(fun _env _t _y -> [| 0. |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"plant" plant;
  Hybrid.Engine.add_streamer engine ~role:"sink" sink;
  Hybrid.Engine.connect_flow_exn engine ~src:("plant", "temp")
    ~dst:("sink", "temp_in");
  (* Drive the model normally first so every lazy structure (routing
     plan, interned lookups, output plan) exists, then measure direct
     ticks. The DES clock sits past the last timer tick, so each
     tick_now advances the solver to "now" once and then re-syncs
     (write + propagate only) — both shapes must be allocation-free. *)
  Hybrid.Engine.run_until engine 1.0;
  let words =
    minor_delta (fun () -> Hybrid.Engine.tick_now engine ~role:"plant")
  in
  Alcotest.(check (float 0.)) "steady-state tick allocates nothing" 0. words

(* The fault layer's zero-cost contract: an attached injector with no
   rules plus an armed supervisor must leave the steady-state tick
   allocation-free — the hook sites are loads and branches only. *)
let test_engine_tick_alloc_free_with_empty_faults () =
  let plant =
    Hybrid.Streamer.leaf "plant" ~rate:0.3 ~dim:1 ~init:[| 18. |]
      ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 0.002))
      ~params:[ ("ambient", 5.); ("tau", 30.) ]
      ~dports:[ Hybrid.Streamer.dport_out "temp" ]
      ~rhs_into:(fun env _tcell y dy ->
          dy.(0) <-
            -.(y.(0) -. env.Hybrid.Solver.param "ambient")
            /. env.Hybrid.Solver.param "tau")
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
      ~rhs:(fun env _t y ->
          [| -.(y.(0) -. env.Hybrid.Solver.param "ambient")
             /. env.Hybrid.Solver.param "tau" |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"plant" plant;
  ignore (Hybrid.Engine.apply_fault_spec engine Fault.Spec.empty);
  Hybrid.Engine.set_supervisor engine Fault.Supervisor.Restart;
  Hybrid.Engine.run_until engine 1.0;
  let words =
    minor_delta (fun () -> Hybrid.Engine.tick_now engine ~role:"plant")
  in
  Alcotest.(check (float 0.))
    "tick with empty fault layer + supervisor allocates nothing" 0. words

(* The telemetry/profiler zero-cost contract: with the emitter stopped
   and the profiler disabled — including after having been armed once,
   the worst case for lingering state — the steady-state tick must stay
   allocation-free. The hooks on the hot path ([Telemetry.on_tick], the
   profiler enter/exit pair) are loads and branches only. *)
let test_engine_tick_alloc_free_telemetry_off () =
  let plant =
    Hybrid.Streamer.leaf "plant" ~rate:0.3 ~dim:1 ~init:[| 18. |]
      ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 0.002))
      ~params:[ ("ambient", 5.); ("tau", 30.) ]
      ~dports:[ Hybrid.Streamer.dport_out "temp" ]
      ~rhs_into:(fun env _tcell y dy ->
          dy.(0) <-
            -.(y.(0) -. env.Hybrid.Solver.param "ambient")
            /. env.Hybrid.Solver.param "tau")
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
      ~rhs:(fun env _t y ->
          [| -.(y.(0) -. env.Hybrid.Solver.param "ambient")
             /. env.Hybrid.Solver.param "tau" |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"plant" plant;
  (* Arm both subsystems, then disarm: the stopped state must be as
     cheap as the never-configured state. *)
  Obs.Telemetry.configure ignore;
  Obs.Telemetry.stop ();
  Obs.Profile.set_enabled true;
  Obs.Profile.set_enabled false;
  Hybrid.Engine.run_until engine 1.0;
  let words =
    minor_delta (fun () -> Hybrid.Engine.tick_now engine ~role:"plant")
  in
  Alcotest.(check (float 0.))
    "tick with telemetry stopped + profiler disabled allocates nothing" 0.
    words

(* The static analysis layer is opt-in: with the profiler off, a wcet
   snapshot sees nothing (no measurement ever ran), and linking the
   analysis library must leave the engine's hot tick path untouched —
   the tick below runs with analysis code resident and stays at zero
   words, same as test_engine_tick_alloc_free. *)
let test_analysis_is_opt_in () =
  Obs.Profile.set_enabled false;
  Obs.Profile.reset ();
  let w = Analysis.Wcet.of_profile () in
  Alcotest.(check int) "no profiling -> empty wcet table" 0
    (List.length w.Analysis.Wcet.entries);
  let plant =
    Hybrid.Streamer.leaf "plant" ~rate:0.3 ~dim:1 ~init:[| 1.0 |]
      ~dports:[ Hybrid.Streamer.dport_out "x" ]
      ~rhs_into:(fun _env _tcell y dy -> dy.(0) <- -.y.(0))
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
      ~rhs:(fun _env _t y -> [| -.y.(0) |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"plant" plant;
  Hybrid.Engine.run_until engine 1.0;
  let words =
    minor_delta (fun () -> Hybrid.Engine.tick_now engine ~role:"plant")
  in
  Alcotest.(check (float 0.))
    "tick with analysis linked in allocates nothing" 0. words

let suite =
  [ Alcotest.test_case "ode: step_into zero minor words" `Quick
      test_step_into_alloc_free;
    Alcotest.test_case "ode: advance_into zero minor words" `Quick
      test_advance_into_alloc_free;
    Alcotest.test_case "engine: guard-free tick zero minor words" `Quick
      test_engine_tick_alloc_free;
    Alcotest.test_case "engine: empty fault layer stays zero-alloc" `Quick
      test_engine_tick_alloc_free_with_empty_faults;
    Alcotest.test_case "engine: telemetry off stays zero-alloc" `Quick
      test_engine_tick_alloc_free_telemetry_off;
    Alcotest.test_case "analysis: opt-in, hot path untouched" `Quick
      test_analysis_is_opt_in ]
