(* Observability tests: JSON round-trips, the metrics registry, the
   tracer ring buffer, and Chrome-trace export from an instrumented
   hybrid run. *)

(* ---- JSON ---- *)

let test_json_roundtrip () =
  let value =
    Obs.Json.Obj
      [ ("null", Obs.Json.Null);
        ("bool", Obs.Json.Bool true);
        ("int", Obs.Json.Int (-42));
        ("float", Obs.Json.Float 1.5);
        ("str", Obs.Json.Str "a \"quoted\"\nline\twith \\ stuff");
        ("list", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Str "x"; Obs.Json.Null ]);
        ("nested", Obs.Json.Obj [ ("k", Obs.Json.List []) ]) ]
  in
  Alcotest.(check bool) "value survives emit + parse" true
    (Obs.Json.of_string (Obs.Json.to_string value) = value)

let test_json_parse_basics () =
  Alcotest.(check bool) "whitespace tolerated" true
    (Obs.Json.of_string "  { \"a\" : [ 1 , 2.5 , true ] }  "
     = Obs.Json.Obj
         [ ("a", Obs.Json.List
              [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Bool true ]) ]);
  Alcotest.(check bool) "unicode escape" true
    (Obs.Json.of_string "\"\\u0041\"" = Obs.Json.Str "A");
  Alcotest.(check bool) "non-finite floats emit null" true
    (Obs.Json.to_string (Obs.Json.Float Float.nan) = "null")

let test_json_parse_errors () =
  let rejects s =
    try ignore (Obs.Json.of_string s); false with Obs.Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "trailing garbage" true (rejects "1 2");
  Alcotest.(check bool) "unterminated string" true (rejects "\"abc");
  Alcotest.(check bool) "bare word" true (rejects "flase");
  Alcotest.(check bool) "unclosed object" true (rejects "{\"a\":1")

let test_json_accessors () =
  let v = Obs.Json.of_string "{\"a\":{\"b\":[\"x\",\"y\"]}}" in
  let inner = Option.bind (Obs.Json.member "a" v) (Obs.Json.member "b") in
  (match inner with
   | Some l ->
     Alcotest.(check (list string)) "member + to_list" [ "x"; "y" ]
       (List.filter_map Obs.Json.string_value (Obs.Json.to_list l))
   | None -> Alcotest.fail "member chain");
  Alcotest.(check bool) "missing member" true (Obs.Json.member "z" v = None)

(* Shortest round-trip float emission: every float must survive emit +
   parse with its exact bit pattern — including the awkward ones a fixed
   "%g" precision mangles — and integer-valued floats must come back as
   floats, not ints. *)
let float_bits_survive f =
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
  | Obs.Json.Float f' -> Int64.bits_of_float f' = Int64.bits_of_float f
  | Obs.Json.Int _ -> false
  | _ -> false

let test_json_float_roundtrip_awkward () =
  List.iter
    (fun f ->
       Alcotest.(check bool)
         (Printf.sprintf "%h round-trips bit-exactly" f)
         true (float_bits_survive f))
    [ 1e-9; 0.1; Float.max_float; -0.0; 0.; Float.min_float; 1. /. 3.;
      2.5e-323 (* subnormal *); 1.7976931348623155e308; 0.30000000000000004;
      -1e22; 6.02214076e23; Float.epsilon ]

let qcheck_json_float_roundtrip =
  (* Uniform bit patterns find the hard cases (deep significands,
     subnormals) that uniform-in-value generators miss. *)
  let gen =
    QCheck.map
      (fun bits ->
         let f = Int64.float_of_bits bits in
         if Float.is_nan f || Float.abs f = infinity then 0.5 else f)
      QCheck.int64
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000 ~name:"json: float bits survive emit+parse"
       gen float_bits_survive)

let test_json_float_shortest () =
  (* Shortest means pretty: common decimals come back out as typed. *)
  Alcotest.(check string) "0.1 stays short" "0.1"
    (Obs.Json.to_string (Obs.Json.Float 0.1));
  Alcotest.(check string) "3 marked as float" "3.0"
    (Obs.Json.to_string (Obs.Json.Float 3.));
  Alcotest.(check string) "negative zero keeps its sign" "-0.0"
    (Obs.Json.to_string (Obs.Json.Float (-0.0)))

(* ---- Metrics ---- *)

let test_metrics_get_or_create () =
  let reg = Obs.Metrics.create () in
  let a = Obs.Metrics.counter ~registry:reg "hits" in
  let b = Obs.Metrics.counter ~registry:reg "hits" in
  Obs.Metrics.incr a;
  Obs.Metrics.add b 2;
  Alcotest.(check int) "same counter behind one name" 3 (Obs.Metrics.value a);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try ignore (Obs.Metrics.gauge ~registry:reg "hits"); false
     with Invalid_argument _ -> true)

let test_metrics_histogram () =
  let reg = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram ~registry:reg ~bounds:[| 1.; 10.; 100. |] "lat"
  in
  List.iter (Obs.Metrics.observe h) [ 0.5; 0.7; 5.; 50.; 500. ];
  Alcotest.(check int) "count" 5 (Obs.Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 556.2 (Obs.Metrics.histogram_sum h);
  (* Nearest-rank over buckets: the 3rd of 5 observations sits in the
     (1,10] bucket, so p50 reports that bucket's upper bound. *)
  Alcotest.(check (float 1e-9)) "p50 bucket bound" 10. (Obs.Metrics.quantile h 0.5);
  Alcotest.(check bool) "p99 in overflow reports max" true
    (Obs.Metrics.quantile h 0.99 = 500.);
  Alcotest.(check bool) "empty histogram has nan quantiles" true
    (Float.is_nan
       (Obs.Metrics.quantile (Obs.Metrics.histogram ~registry:reg "empty") 0.5))

let test_metrics_reset_and_json () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg "n" in
  let g = Obs.Metrics.gauge ~registry:reg "depth" in
  Obs.Metrics.incr c;
  Obs.Metrics.set g 7.;
  (match Obs.Json.member "n" (Obs.Metrics.to_json reg) with
   | Some (Obs.Json.Int 1) -> ()
   | _ -> Alcotest.fail "counter in json dump");
  Obs.Metrics.reset reg;
  Alcotest.(check int) "counter zeroed" 0 (Obs.Metrics.value c);
  Alcotest.(check (float 0.)) "gauge zeroed" 0. (Obs.Metrics.gauge_value g)

let test_metrics_pp_percentiles () =
  (* Golden line: `--stats` output must carry p50/p90/p99 so operators
     can read tail latency off the console without the JSON dump. *)
  let reg = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram ~registry:reg ~bounds:[| 1.; 2.; 4.; 8. |] "lat"
  in
  for i = 1 to 100 do
    Obs.Metrics.observe h (if i <= 50 then 1. else if i <= 90 then 2. else 8.)
  done;
  let rendered = Format.asprintf "%a" Obs.Metrics.pp reg in
  Alcotest.(check string) "histogram line carries p50/p90/p99"
    "lat                              histogram n=100 mean=2.1 min=1 p50<=1 p90<=2 p99<=8 max=8\n"
    rendered

let test_metrics_snapshot () =
  (* Snapshot gives differential tests a value-level view they can diff
     without depending on accumulation order or registry internals. *)
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg "n" in
  let g = Obs.Metrics.gauge ~registry:reg "depth" in
  let h = Obs.Metrics.histogram ~registry:reg "lat" in
  Obs.Metrics.add c 3;
  Obs.Metrics.set g 1.5;
  Obs.Metrics.observe h 2.;
  Obs.Metrics.observe h 4.;
  (match Obs.Metrics.snapshot reg with
   | [ ("depth", Obs.Metrics.Vgauge 1.5);
       ("lat", Obs.Metrics.Vhistogram { vh_count = 2; vh_sum = 6. });
       ("n", Obs.Metrics.Vcounter 3) ] -> ()
   | _ -> Alcotest.fail "snapshot shape/order");
  Obs.Metrics.reset reg;
  Alcotest.(check bool) "snapshot after reset is all zeros" true
    (Obs.Metrics.snapshot reg
     = [ ("depth", Obs.Metrics.Vgauge 0.);
         ("lat", Obs.Metrics.Vhistogram { vh_count = 0; vh_sum = 0. });
         ("n", Obs.Metrics.Vcounter 0) ])

(* ---- Tracer ring ---- *)

let with_tracing f =
  Obs.Tracer.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Tracer.set_enabled false) f

let test_tracer_disabled_records_nothing () =
  let tr = Obs.Tracer.create ~capacity:8 () in
  Obs.Tracer.set_enabled false;
  Obs.Tracer.instant ~tracer:tr ~cat:"t" ~name:"x" ~sim_time:0. ();
  ignore (Obs.Tracer.with_span ~tracer:tr ~cat:"t" ~name:"y" ~sim_time:0.
            (fun () -> 42));
  Alcotest.(check int) "nothing recorded" 0 (Obs.Tracer.length tr);
  Alcotest.(check int) "nothing counted" 0 (Obs.Tracer.recorded tr)

let test_tracer_ring_overflow () =
  let tr = Obs.Tracer.create ~capacity:4 () in
  with_tracing (fun () ->
      for i = 1 to 6 do
        Obs.Tracer.instant ~tracer:tr ~cat:"t" ~name:(string_of_int i)
          ~sim_time:(float_of_int i) ()
      done);
  Alcotest.(check int) "ring holds capacity" 4 (Obs.Tracer.length tr);
  Alcotest.(check int) "two overwritten" 2 (Obs.Tracer.dropped tr);
  Alcotest.(check int) "all six counted" 6 (Obs.Tracer.recorded tr);
  Alcotest.(check (list string)) "oldest first, newest kept"
    [ "3"; "4"; "5"; "6" ]
    (List.map (fun e -> e.Obs.Tracer.name) (Obs.Tracer.events tr));
  Obs.Tracer.clear tr;
  Alcotest.(check int) "clear empties" 0 (Obs.Tracer.length tr)

let test_tracer_span_duration () =
  let tr = Obs.Tracer.create ~capacity:8 () in
  with_tracing (fun () ->
      Obs.Tracer.with_span ~tracer:tr ~cat:"t" ~name:"work" ~sim_time:1.
        (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0.))));
  match Obs.Tracer.events tr with
  | [ e ] ->
    Alcotest.(check bool) "complete phase" true (e.Obs.Tracer.phase = Obs.Tracer.Complete);
    Alcotest.(check bool) "non-negative duration" true (e.Obs.Tracer.dur_ns >= 0);
    Alcotest.(check (float 0.)) "sim time kept" 1. e.Obs.Tracer.sim_time
  | es -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length es))

let test_export_wraparound_accounting () =
  (* After the ring laps, the export must say so: exact dropped count in
     otherData, and the surviving window emitted oldest-first. *)
  let tr = Obs.Tracer.create ~capacity:4 () in
  with_tracing (fun () ->
      for i = 1 to 7 do
        Obs.Tracer.instant ~tracer:tr ~cat:"t" ~name:(string_of_int i)
          ~sim_time:(float_of_int i) ()
      done);
  Alcotest.(check int) "ring reports exact dropped" 3 (Obs.Tracer.dropped tr);
  let parsed = Obs.Export.to_chrome_trace tr in
  let other k = Option.bind (Obs.Json.member "otherData" parsed) (Obs.Json.member k) in
  Alcotest.(check bool) "otherData.events_dropped matches" true
    (other "events_dropped" = Some (Obs.Json.Int 3));
  Alcotest.(check bool) "otherData.events_recorded counts all" true
    (other "events_recorded" = Some (Obs.Json.Int 7));
  let events =
    match Obs.Json.member "traceEvents" parsed with
    | Some l -> Obs.Json.to_list l
    | None -> []
  in
  let field name e = Option.bind (Obs.Json.member name e) Obs.Json.string_value in
  let slices = List.filter (fun e -> field "ph" e = Some "i") events in
  Alcotest.(check (list string)) "oldest surviving event first"
    [ "4"; "5"; "6"; "7" ]
    (List.filter_map (field "name") slices)

let test_export_flow_arrows () =
  (* Events recorded under a cause id grow companion flow events: "s" at
     the chain's first appearance, "t" on every later hop, bound to the
     slice by name/ts so Perfetto draws the arrows. *)
  let tr = Obs.Tracer.create ~capacity:8 () in
  let cause =
    with_tracing (fun () ->
        let c = Obs.Causal.mint () in
        Obs.Tracer.instant ~tracer:tr ~cat:"des" ~name:"root" ~sim_time:0. ();
        Obs.Tracer.instant ~tracer:tr ~cat:"hybrid" ~name:"hop" ~sim_time:0. ();
        Obs.Tracer.instant ~tracer:tr ~cat:"hybrid" ~name:"hop2" ~sim_time:0. ();
        Obs.Causal.set Obs.Causal.none;
        Obs.Tracer.instant ~tracer:tr ~cat:"des" ~name:"free" ~sim_time:0. ();
        c)
  in
  let events =
    match Obs.Json.member "traceEvents" (Obs.Export.to_chrome_trace tr) with
    | Some l -> Obs.Json.to_list l
    | None -> []
  in
  let field name e = Option.bind (Obs.Json.member name e) Obs.Json.string_value in
  let flows =
    List.filter (fun e -> field "cat" e = Some "causal") events
  in
  Alcotest.(check (list string)) "one start then steps, in event order"
    [ "s"; "t"; "t" ]
    (List.filter_map (field "ph") flows);
  Alcotest.(check bool) "flow id is the cause id" true
    (List.for_all
       (fun e -> Obs.Json.member "id" e = Some (Obs.Json.Int cause))
       flows);
  Alcotest.(check (list string)) "arrows bind to the caused slices only"
    [ "root"; "hop"; "hop2" ]
    (List.filter_map (field "name") flows)

(* ---- Chrome trace from an instrumented run ---- *)

(* A miniature cruise control: vehicle + PI controller streamers
   exchanging flows, a driver capsule raising the setpoint, and an
   at-speed guard signalling back — touching the DES, UML-RT, hybrid and
   ODE instrumentation in one run. *)
let cruise_engine () =
  let protocol =
    Umlrt.Protocol.create "Cruise"
      ~incoming:
        [ Umlrt.Protocol.signal ~payload:Dataflow.Flow_type.float_flow
            "set_speed" ]
      ~outgoing:[ Umlrt.Protocol.signal "at_speed" ]
  in
  let vehicle =
    Hybrid.Streamer.leaf "vehicle" ~rate:0.05 ~dim:1 ~init:[| 0. |]
      ~dports:
        [ Hybrid.Streamer.dport_in "force"; Hybrid.Streamer.dport_out "speed" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "speed") ])
      ~rhs:(fun (env : Hybrid.Solver.env) _t y ->
          [| (env.Hybrid.Solver.input "force" -. (0.5 *. y.(0))) /. 10. |])
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"set_speed"
    (Hybrid.Strategy.set_param_from_payload "ref");
  let cruise =
    Hybrid.Streamer.leaf "cruise" ~rate:0.05 ~dim:1 ~init:[| 0. |]
      ~params:[ ("ref", 5.); ("kp", 8.); ("ki", 2.) ]
      ~dports:
        [ Hybrid.Streamer.dport_in "speed"; Hybrid.Streamer.dport_out "force" ]
      ~sports:[ Hybrid.Streamer.sport "cmd" protocol ]
      ~guards:
        [ { Hybrid.Streamer.guard_id = "at_speed"; signal = "at_speed";
            via_sport = "cmd"; direction = Ode.Events.Rising;
            expr =
              (fun (env : Hybrid.Solver.env) _t _y ->
                 0.2
                 -. Float.abs
                      (env.Hybrid.Solver.param "ref"
                       -. env.Hybrid.Solver.input "speed"));
            payload = None } ]
      ~strategy
      ~outputs:
        (Hybrid.Streamer.output_fn (fun (env : Hybrid.Solver.env) _t y ->
             let p = env.Hybrid.Solver.param in
             let err = p "ref" -. env.Hybrid.Solver.input "speed" in
             [ ("force",
                Dataflow.Value.Float ((p "kp" *. err) +. (p "ki" *. y.(0)))) ]))
      ~rhs:(fun (env : Hybrid.Solver.env) _t _y ->
          [| env.Hybrid.Solver.param "ref" -. env.Hybrid.Solver.input "speed" |])
  in
  let driver =
    Umlrt.Capsule.create "driver"
      ~ports:[ Umlrt.Capsule.port ~conjugated:true "cruise" protocol ]
      ~behavior:(fun (services : Umlrt.Capsule.services) ->
          { Umlrt.Capsule.on_start =
              (fun () ->
                 services.Umlrt.Capsule.send ~port:"cruise"
                   (Statechart.Event.make ~value:(Dataflow.Value.Float 5.)
                      "set_speed"));
            on_event =
              (fun ~port:_ event ->
                 String.equal (Statechart.Event.signal event) "at_speed");
            configuration = (fun () -> []) })
  in
  let engine = Hybrid.Engine.create ~root:driver () in
  Hybrid.Engine.add_streamer engine ~role:"vehicle" vehicle;
  Hybrid.Engine.add_streamer engine ~role:"cruise" cruise;
  Hybrid.Engine.connect_flow_exn engine ~src:("vehicle", "speed")
    ~dst:("cruise", "speed");
  Hybrid.Engine.connect_flow_exn engine ~src:("cruise", "force")
    ~dst:("vehicle", "force");
  Hybrid.Engine.link_sport_exn engine ~role:"cruise" ~sport:"cmd"
    ~border_port:"cruise";
  engine

let test_chrome_trace_export () =
  Obs.Tracer.clear Obs.Tracer.default;
  with_tracing (fun () ->
      Hybrid.Engine.run_until (cruise_engine ()) 5.);
  let cats = Obs.Tracer.categories Obs.Tracer.default in
  Alcotest.(check bool)
    (Printf.sprintf "des+hybrid+ode+umlrt all traced (got: %s)"
       (String.concat ", " cats))
    true
    (List.for_all (fun c -> List.mem c cats) [ "des"; "hybrid"; "ode"; "umlrt" ]);
  let parsed =
    Obs.Json.of_string
      (Obs.Export.to_chrome_trace_string ~metrics:Obs.Metrics.default
         Obs.Tracer.default)
  in
  let events =
    match Obs.Json.member "traceEvents" parsed with
    | Some l -> Obs.Json.to_list l
    | None -> []
  in
  Alcotest.(check bool)
    (Printf.sprintf "non-empty traceEvents (%d)" (List.length events))
    true
    (List.length events > 0);
  let field name e = Option.bind (Obs.Json.member name e) Obs.Json.string_value in
  let parsed_cats =
    List.sort_uniq String.compare (List.filter_map (field "cat") events)
  in
  Alcotest.(check bool) "three or more categories in the file" true
    (List.length parsed_cats >= 3);
  Alcotest.(check bool) "streamer roles become named tracks" true
    (List.exists
       (fun e ->
          field "name" e = Some "thread_name"
          && (match Obs.Json.member "args" e with
              | Some args ->
                (match Obs.Json.member "name" args with
                 | Some (Obs.Json.Str "cruise") -> true
                 | _ -> false)
              | None -> false))
       events);
  Alcotest.(check bool) "metrics dump rides along" true
    (Option.bind (Obs.Json.member "otherData" parsed) (Obs.Json.member "metrics")
     <> None);
  Obs.Tracer.clear Obs.Tracer.default

(* ---- merge (umh perf summarize; later, per-shard registries) ---- *)

let test_metrics_merge () =
  let a = Obs.Metrics.create () in
  let b = Obs.Metrics.create () in
  (* empty into empty: nothing appears *)
  Obs.Metrics.merge ~into:a b;
  Alcotest.(check int) "empty merge adds nothing" 0 (Obs.Metrics.size a);
  Obs.Metrics.add (Obs.Metrics.counter ~registry:a "n") 3;
  Obs.Metrics.add (Obs.Metrics.counter ~registry:b "n") 4;
  Obs.Metrics.add (Obs.Metrics.counter ~registry:b "only_b") 7;
  Obs.Metrics.set (Obs.Metrics.gauge ~registry:a "depth") 2.;
  Obs.Metrics.set (Obs.Metrics.gauge ~registry:b "depth") 5.;
  Obs.Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7
    (Obs.Metrics.value (Obs.Metrics.counter ~registry:a "n"));
  Alcotest.(check int) "missing counters are created" 7
    (Obs.Metrics.value (Obs.Metrics.counter ~registry:a "only_b"));
  Alcotest.(check (float 0.)) "gauges take the source level" 5.
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge ~registry:a "depth"));
  (* merging an empty registry into a populated one changes nothing *)
  Obs.Metrics.merge ~into:a (Obs.Metrics.create ());
  Alcotest.(check int) "no-op merge preserves counts" 7
    (Obs.Metrics.value (Obs.Metrics.counter ~registry:a "n"))

let test_metrics_merge_single_bucket_histogram () =
  let a = Obs.Metrics.create () in
  let b = Obs.Metrics.create () in
  (* one bound = two buckets: [<= 1.0] plus the implicit overflow *)
  let ha = Obs.Metrics.histogram ~registry:a ~bounds:[| 1.0 |] "lat" in
  let hb = Obs.Metrics.histogram ~registry:b ~bounds:[| 1.0 |] "lat" in
  Obs.Metrics.observe ha 0.5;
  Obs.Metrics.observe hb 0.7;
  Obs.Metrics.observe hb 2.0;
  Obs.Metrics.merge ~into:a b;
  Alcotest.(check int) "count accumulates" 3 (Obs.Metrics.histogram_count ha);
  Alcotest.(check (float 1e-9)) "sum accumulates" 3.2
    (Obs.Metrics.histogram_sum ha);
  Alcotest.(check (float 0.)) "median lands in the bounded bucket" 1.0
    (Obs.Metrics.quantile ha 0.5);
  Alcotest.(check (float 0.)) "overflow bucket reports the merged max" 2.0
    (Obs.Metrics.quantile ha 1.0)

let test_metrics_merge_mismatched_bounds () =
  let a = Obs.Metrics.create () in
  let b = Obs.Metrics.create () in
  let ha = Obs.Metrics.histogram ~registry:a ~bounds:[| 1.; 2. |] "lat" in
  let hb = Obs.Metrics.histogram ~registry:b ~bounds:[| 1.; 3. |] "lat" in
  Obs.Metrics.observe ha 0.5;
  Obs.Metrics.observe hb 2.5;
  (match Obs.Metrics.merge ~into:a b with
   | () -> Alcotest.fail "merge across mismatched bounds must raise"
   | exception Invalid_argument msg ->
     (* the message must point at the offending metric *)
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
       at 0
     in
     Alcotest.(check bool) "error names the histogram" true
       (contains msg "lat"));
  Alcotest.(check int) "into untouched by the failed merge" 1
    (Obs.Metrics.histogram_count ha)

let suite =
  [ Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: parse basics" `Quick test_json_parse_basics;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json: accessors" `Quick test_json_accessors;
    Alcotest.test_case "json: awkward float round-trips" `Quick
      test_json_float_roundtrip_awkward;
    qcheck_json_float_roundtrip;
    Alcotest.test_case "json: shortest float emission" `Quick
      test_json_float_shortest;
    Alcotest.test_case "metrics: get-or-create" `Quick test_metrics_get_or_create;
    Alcotest.test_case "metrics: histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "metrics: reset + json dump" `Quick test_metrics_reset_and_json;
    Alcotest.test_case "metrics: pp percentiles" `Quick test_metrics_pp_percentiles;
    Alcotest.test_case "metrics: snapshot" `Quick test_metrics_snapshot;
    Alcotest.test_case "tracer: disabled is silent" `Quick
      test_tracer_disabled_records_nothing;
    Alcotest.test_case "tracer: ring overflow" `Quick test_tracer_ring_overflow;
    Alcotest.test_case "tracer: span duration" `Quick test_tracer_span_duration;
    Alcotest.test_case "export: wraparound accounting" `Quick
      test_export_wraparound_accounting;
    Alcotest.test_case "export: causal flow arrows" `Quick
      test_export_flow_arrows;
    Alcotest.test_case "chrome trace from a cruise run" `Quick
      test_chrome_trace_export;
    Alcotest.test_case "metrics: merge registries" `Quick test_metrics_merge;
    Alcotest.test_case "metrics: merge single-bucket histograms" `Quick
      test_metrics_merge_single_bucket_histogram;
    Alcotest.test_case "metrics: merge rejects mismatched bounds" `Quick
      test_metrics_merge_mismatched_bounds ]
