(* The lint subsystem: diagnostic codes, the rule registry, golden runs
   over the seeded-bad models in test/models/ (dune test deps), and the
   JSON rendering consumed by tooling. *)

let lint path = Lint.Linter.lint_file path

let codes r =
  List.sort_uniq String.compare
    (List.map (fun d -> d.Lint.Diagnostic.code) r.Lint.Linter.diagnostics)

let find_code r code =
  List.find_opt
    (fun d -> String.equal d.Lint.Diagnostic.code code)
    r.Lint.Linter.diagnostics

let check_span name = function
  | Some { Lint.Diagnostic.span = Some s; _ } ->
    Alcotest.(check bool) (name ^ " span points into the file") true
      (s.Lint.Diagnostic.line > 0 && s.Lint.Diagnostic.col > 0)
  | Some { Lint.Diagnostic.span = None; _ } ->
    Alcotest.fail (name ^ " diagnostic lacks a span")
  | None -> Alcotest.fail (name ^ " diagnostic missing")

(* ---- registry ---- *)

let test_registry () =
  let codes = List.map (fun m -> m.Lint.Rules.code) Lint.Rules.registry in
  let uniq = List.sort_uniq String.compare codes in
  Alcotest.(check bool) "at least 20 distinct codes" true
    (List.length uniq >= 20);
  List.iter
    (fun c ->
       Alcotest.(check bool) (c ^ " registered") true
         (Lint.Rules.is_known_code c))
    [ "UMH042"; "UMH043"; "UMH044"; "UMH045"; "UMH046";
      "UMH050"; "UMH051"; "UMH052"; "UMH053"; "UMH054" ];
  Alcotest.(check int) "codes are unique" (List.length codes)
    (List.length uniq);
  List.iter
    (fun c ->
       Alcotest.(check bool) (c ^ " is stable-prefixed") true
         (String.length c = 6 && String.sub c 0 3 = "UMH"))
    codes;
  Alcotest.(check bool) "lookup round-trips" true
    (List.for_all (fun c -> Lint.Rules.is_known_code c) codes);
  Alcotest.(check bool) "unknown code rejected" false
    (Lint.Rules.is_known_code "UMH999")

(* ---- golden runs over seeded-bad models ---- *)

let golden name expected_code =
  let r = lint (Filename.concat "models" name) in
  check_span expected_code (find_code r expected_code);
  Alcotest.(check bool) (name ^ " gates (exit 1)") true
    (Lint.Linter.gates [ r ])

let test_algebraic_loop () =
  let r = lint "models/algebraic_loop.umh" in
  (match find_code r "UMH010" with
   | Some d ->
     Alcotest.(check string) "severity" "error"
       (Lint.Diagnostic.severity_name d.Lint.Diagnostic.severity)
   | None -> Alcotest.fail "UMH010 missing");
  golden "algebraic_loop.umh" "UMH010"

let test_unreachable_state () =
  let r = lint "models/unreachable_state.umh" in
  Alcotest.(check bool) "dead transition rides along" true
    (find_code r "UMH021" <> None);
  golden "unreachable_state.umh" "UMH020"

let test_orphan_dport () =
  let r = lint "models/orphan_dport.umh" in
  (* The unconnected output is informational — it must be reported but
     must not gate on its own. *)
  (match find_code r "UMH012" with
   | Some d ->
     Alcotest.(check bool) "UMH012 does not gate" false
       (Lint.Diagnostic.gates d)
   | None -> Alcotest.fail "UMH012 missing");
  golden "orphan_dport.umh" "UMH011"

let test_rate_mismatch () = golden "rate_mismatch.umh" "UMH040"

let test_unschedulable () =
  let r = lint "models/unschedulable.umh" in
  (match find_code r "UMH042" with
   | Some d ->
     Alcotest.(check string) "deadline miss is an error" "error"
       (Lint.Diagnostic.severity_name d.Lint.Diagnostic.severity);
     (* The acceptance contract: the message names the task, its
        concrete response time and its period. *)
     List.iter
       (fun needle ->
          let msg = d.Lint.Diagnostic.message in
          let rec contains i =
            i + String.length needle <= String.length msg
            && (String.sub msg i (String.length needle) = needle
                || contains (i + 1))
          in
          Alcotest.(check bool)
            (Printf.sprintf "message mentions %S" needle) true (contains 0))
       [ "slow"; "0.27s"; "0.15s" ]
   | None -> Alcotest.fail "UMH042 missing");
  Alcotest.(check bool) "forced group rides along" true
    (find_code r "UMH050" <> None);
  golden "unschedulable.umh" "UMH042"

let test_racy_shard () =
  let r = lint "models/racy_shard.umh" in
  (match find_code r "UMH052" with
   | Some d ->
     Alcotest.(check string) "race is a warning" "warning"
       (Lint.Diagnostic.severity_name d.Lint.Diagnostic.severity)
   | None -> Alcotest.fail "UMH052 missing");
  golden "racy_shard.umh" "UMH052"

(* A measured wcet table fed through ?wcet flips water_tank from clean
   to gating: the seeded tank measurement breaches its period (UMH046). *)
let test_lint_with_wcet () =
  let path = "../examples/models/water_tank.umh" in
  Alcotest.(check bool) "clean without measurements" false
    (Lint.Linter.gates [ lint path ]);
  let wcet =
    match Analysis.Wcet.of_file "wcet/water_tank_slow.json" with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let r = Lint.Linter.lint_file ~wcet path in
  (match find_code r "UMH046" with
   | Some d ->
     Alcotest.(check string) "budget breach is an error" "error"
       (Lint.Diagnostic.severity_name d.Lint.Diagnostic.severity)
   | None -> Alcotest.fail "UMH046 missing");
  Alcotest.(check bool) "gates with measurements" true
    (Lint.Linter.gates [ r ])

let test_examples_clean () =
  List.iter
    (fun name ->
       let r = lint (Filename.concat "../examples/models" name) in
       Alcotest.(check bool) (name ^ " has no gating findings") false
         (Lint.Linter.gates [ r ]))
    [ "thermostat.umh"; "filter_chain.umh"; "water_tank.umh"; "e3_grid.umh" ]

(* ---- front-end mapping ---- *)

let test_syntax_diag () =
  let r = Lint.Linter.lint_source ~file:"bad.umh" "model" in
  Alcotest.(check (list string)) "single UMH001" [ "UMH001" ] (codes r);
  check_span "UMH001" (find_code r "UMH001")

let test_typecheck_diag () =
  (* A relay with fanout 1 violates R3; the message's "(rule R3)" is
     lifted into the structured rule field. *)
  let src =
    "model M\nflowtype T { value: float }\nsystem { relay r : T fanout 1; }\n"
  in
  let r = Lint.Linter.lint_source ~file:"m.umh" src in
  match find_code r "UMH002" with
  | Some d ->
    Alcotest.(check (option string)) "paper rule" (Some "R3")
      d.Lint.Diagnostic.rule
  | None -> Alcotest.fail "UMH002 missing"

(* ---- options ---- *)

let test_options () =
  let r = lint "models/orphan_dport.umh" in
  let with_opts o = Lint.Linter.apply_options o r in
  let only_012 =
    with_opts { Lint.Linter.default_options with select = [ "UMH012" ] }
  in
  Alcotest.(check (list string)) "select keeps only UMH012" [ "UMH012" ]
    (codes only_012);
  Alcotest.(check bool) "info alone does not gate" false
    (Lint.Linter.gates [ only_012 ]);
  let ignored =
    with_opts { Lint.Linter.default_options with ignore = [ "UMH011" ] }
  in
  Alcotest.(check bool) "ignoring the warning un-gates" false
    (Lint.Linter.gates [ ignored ]);
  let werror =
    with_opts { Lint.Linter.default_options with werror = true }
  in
  (match find_code werror "UMH011" with
   | Some d -> Alcotest.(check bool) "warning promoted" true
                 (Lint.Diagnostic.is_error d)
   | None -> Alcotest.fail "UMH011 missing");
  Alcotest.(check (list string)) "bad code flagged for usage error"
    [ "UMH999" ]
    (Lint.Linter.unknown_codes
       { Lint.Linter.default_options with select = [ "UMH999"; "UMH010" ] })

(* ---- JSON ---- *)

let test_json () =
  let mem k j =
    match Obs.Json.member k j with
    | Some v -> v
    | None -> Alcotest.fail ("missing JSON key " ^ k)
  in
  let r = lint "models/unreachable_state.umh" in
  let json = Lint.Linter.to_json [ r ] in
  let parsed = Obs.Json.of_string (Obs.Json.to_string json) in
  let rules = Obs.Json.to_list (mem "rules" parsed) in
  Alcotest.(check bool) "registry serialized (>= 8 rules)" true
    (List.length rules >= 8);
  let files = Obs.Json.to_list (mem "files" parsed) in
  Alcotest.(check int) "one file entry" 1 (List.length files);
  let diags = Obs.Json.to_list (mem "diagnostics" (List.hd files)) in
  Alcotest.(check bool) "diagnostics carry code and line" true
    (List.exists
       (fun d ->
          Obs.Json.member "code" d
          |> Option.map Obs.Json.string_value |> Option.join
          = Some "UMH020"
          && Obs.Json.member "line" d <> None)
       diags)

let suite =
  [ Alcotest.test_case "registry: stable codes" `Quick test_registry;
    Alcotest.test_case "golden: algebraic loop" `Quick test_algebraic_loop;
    Alcotest.test_case "golden: unreachable state" `Quick test_unreachable_state;
    Alcotest.test_case "golden: orphan dport" `Quick test_orphan_dport;
    Alcotest.test_case "golden: rate mismatch" `Quick test_rate_mismatch;
    Alcotest.test_case "golden: unschedulable shard" `Quick test_unschedulable;
    Alcotest.test_case "golden: racy shard" `Quick test_racy_shard;
    Alcotest.test_case "measured wcet table gates the lint" `Quick
      test_lint_with_wcet;
    Alcotest.test_case "shipped examples lint clean" `Quick test_examples_clean;
    Alcotest.test_case "front end: syntax -> UMH001" `Quick test_syntax_diag;
    Alcotest.test_case "front end: R3 -> UMH002 + rule ref" `Quick
      test_typecheck_diag;
    Alcotest.test_case "options: select/ignore/werror" `Quick test_options;
    Alcotest.test_case "json: registry + spans round-trip" `Quick test_json ]
