(* Fault layer: spec parsing, deterministic injection, the differential
   bit-identity guarantee of an attached-but-empty layer, supervision at
   both the solver (hybrid engine) and capsule (UML-RT runtime) level,
   and graceful degradation as strategy switching. *)

let spec_of text =
  match Fault.Spec.of_string text with
  | Ok s -> s
  | Error msg -> Alcotest.failf "spec parse failed: %s" msg

(* ---- spec parsing ---- *)

let full_spec_text =
  "# chaos for the thermostat demo\n\
   seed 42\n\
   supervise freeze\n\
   degrade-signal fallback\n\
   drop signal room p=0.25\n\
   delay signal room.ctl by=0.5 from=10 until=20\n\
   duplicate signal * p=0.5\n\
   reorder signal room within=0.1\n\
   corrupt flow room.temp scale=1.05 bias=-0.2\n\
   nan flow room.* from=30 until=31\n\
   freeze flow room.temp from=40\n\
   stall solver room from=5 until=7\n"

let test_spec_parse_and_round_trip () =
  let s = spec_of full_spec_text in
  Alcotest.(check int) "seed" 42 s.Fault.Spec.seed;
  Alcotest.(check int) "rule count" 8 (List.length s.Fault.Spec.rules);
  Alcotest.(check bool) "policy" true
    (s.Fault.Spec.policy = Some Fault.Spec.Freeze_last);
  Alcotest.(check (option string)) "degrade signal" (Some "fallback")
    s.Fault.Spec.degrade_signal;
  (* canonical form is a fixpoint of parse-then-print *)
  let printed = Fault.Spec.to_string s in
  let reparsed = spec_of printed in
  Alcotest.(check string) "round-trips" printed (Fault.Spec.to_string reparsed)

let test_spec_rejects_malformed () =
  let bad text =
    match Fault.Spec.of_string text with
    | Ok _ -> Alcotest.failf "accepted bad spec: %s" text
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error names a line (%s)" text msg)
        true
        (String.length msg > 7 && String.sub msg 0 5 = "line ")
  in
  bad "drop signal";
  bad "drop signal x p=1.5";
  bad "drop signal x p=-0.1";
  bad "delay signal x";            (* missing by= *)
  bad "delay signal x by=nan";
  bad "delay signal x by=-1";
  bad "drop flow x";               (* action/kind mismatch *)
  bad "nan signal x";
  bad "corrupt flow x";            (* corrupt needs scale= or bias= *)
  bad "reorder signal x within=0";
  bad "drop signal x from=5 until=5";
  bad "drop signal x from=-1";
  bad "seed banana";
  bad "supervise never";
  bad "frobnicate signal x"

let test_spec_target_matching () =
  Alcotest.(check bool) "exact" true (Fault.Spec.matches ~pattern:"room" "room");
  Alcotest.(check bool) "exact miss" false
    (Fault.Spec.matches ~pattern:"room" "roomy");
  Alcotest.(check bool) "prefix" true
    (Fault.Spec.matches ~pattern:"room.*" "room.temp");
  Alcotest.(check bool) "prefix miss" false
    (Fault.Spec.matches ~pattern:"room.*" "rook.temp");
  Alcotest.(check bool) "wildcard" true (Fault.Spec.matches ~pattern:"*" "x");
  Alcotest.(check bool) "window half-open" true
    (Fault.Spec.in_window { Fault.Spec.from_ = 1.; until = 2. } 1.
     && not (Fault.Spec.in_window { Fault.Spec.from_ = 1.; until = 2. } 2.))

(* ---- injector ---- *)

let test_injector_deterministic_replay () =
  let s = spec_of "seed 9\ndrop signal * p=0.5\n" in
  let fates inj =
    List.init 200 (fun i ->
        match
          Fault.Injector.signal_fate inj ~role:"r" ~sport:"s"
            ~now:(float_of_int i)
        with
        | Fault.Injector.Lose -> 1
        | _ -> 0)
  in
  let a = fates (Fault.Injector.create s) in
  let b = fates (Fault.Injector.create s) in
  Alcotest.(check (list int)) "same seed, same schedule" a b;
  let dropped = List.fold_left ( + ) 0 a in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.5 drops roughly half (%d/200)" dropped)
    true
    (dropped > 60 && dropped < 140)

let test_injector_first_match_and_window () =
  let inj =
    Fault.Injector.create
      (spec_of
         "seed 1\n\
          drop signal a p=0 from=0 until=10\n\
          drop signal a p=1\n\
          drop signal b p=1\n")
  in
  let fate ~role ~now = Fault.Injector.signal_fate inj ~role ~sport:"s" ~now in
  (* the first matching rule decides, hit or miss *)
  Alcotest.(check bool) "p=0 miss still consumes the signal" true
    (fate ~role:"a" ~now:5. = Fault.Injector.Pass);
  (* outside its window the first rule stops matching *)
  Alcotest.(check bool) "window bounds the rule" true
    (fate ~role:"a" ~now:15. = Fault.Injector.Lose);
  Alcotest.(check bool) "other target has its own rule" true
    (fate ~role:"b" ~now:0. = Fault.Injector.Lose);
  Alcotest.(check bool) "unmatched passes" true
    (fate ~role:"c" ~now:0. = Fault.Injector.Pass)

let test_injector_signal_fates () =
  let inj =
    Fault.Injector.create
      (spec_of
         "seed 1\n\
          duplicate signal d\n\
          delay signal e by=0.5\n\
          reorder signal f within=0.25\n\
          drop signal g.out\n")
  in
  let fate role = Fault.Injector.signal_fate inj ~role ~sport:"out" ~now:0. in
  Alcotest.(check bool) "duplicate" true (fate "d" = Fault.Injector.Duplicate);
  Alcotest.(check bool) "delay" true (fate "e" = Fault.Injector.Postpone 0.5);
  Alcotest.(check bool) "reorder" true (fate "f" = Fault.Injector.Hold 0.25);
  (* qualified role.sport names match too *)
  Alcotest.(check bool) "qualified target" true (fate "g" = Fault.Injector.Lose);
  Alcotest.(check bool) "injected counted" true (Fault.Injector.injected inj = 4);
  Alcotest.(check bool) "per-action counts" true
    (Fault.Injector.injected_counts inj
     = [ ("delay", 1); ("drop", 1); ("duplicate", 1); ("reorder", 1) ])

let test_injector_flow_faults () =
  let inj =
    Fault.Injector.create
      (spec_of
         "seed 1\n\
          corrupt flow x.y scale=2 bias=1\n\
          nan flow z.*\n\
          freeze flow w from=10\n")
  in
  Alcotest.(check (float 1e-12)) "corrupt is scale*v+bias" 7.
    (Fault.Injector.flow_value inj ~target:"x.y" ~now:0. 3.);
  Alcotest.(check bool) "nan poison" true
    (Float.is_nan (Fault.Injector.flow_value inj ~target:"z.q" ~now:0. 3.));
  Alcotest.(check (float 0.)) "unmatched untouched" 3.
    (Fault.Injector.flow_value inj ~target:"other" ~now:0. 3.);
  Alcotest.(check bool) "frozen inside window" true
    (Fault.Injector.flow_frozen inj ~target:"w" ~now:11.);
  Alcotest.(check bool) "not frozen before" false
    (Fault.Injector.flow_frozen inj ~target:"w" ~now:5.);
  Alcotest.(check bool) "freeze rule is not a stall rule" false
    (Fault.Injector.solver_stalled inj ~target:"w" ~now:11.)

(* ---- thermostat fixture (mirrors test_hybrid's model) ---- *)

let temp_protocol =
  Umlrt.Protocol.create "Thermo"
    ~incoming:
      [ Umlrt.Protocol.signal "too_cold"; Umlrt.Protocol.signal "too_hot" ]
    ~outgoing:
      [ Umlrt.Protocol.signal "heater_on"; Umlrt.Protocol.signal "heater_off" ]

let thermal_streamer () =
  let rhs (env : Hybrid.Solver.env) _t y =
    let duty = env.Hybrid.Solver.param "duty" in
    [| (-.(y.(0) -. 15.) /. 20.) +. (0.8 *. duty) |]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"heater_on"
    (Hybrid.Strategy.set_param_const "duty" 1.);
  Hybrid.Strategy.on strategy ~signal:"heater_off"
    (Hybrid.Strategy.set_param_const "duty" 0.);
  let guards =
    [ { Hybrid.Streamer.guard_id = "low"; signal = "too_cold"; via_sport = "ctl";
        direction = Ode.Events.Falling;
        expr = (fun _env _t y -> y.(0) -. 19.); payload = None };
      { Hybrid.Streamer.guard_id = "high"; signal = "too_hot"; via_sport = "ctl";
        direction = Ode.Events.Rising;
        expr = (fun _env _t y -> y.(0) -. 21.); payload = None } ]
  in
  Hybrid.Streamer.leaf "room" ~rate:0.05 ~dim:1 ~init:[| 20.0 |]
    ~params:[ ("duty", 0.) ]
    ~dports:[ Hybrid.Streamer.dport_out "temp" ]
    ~sports:[ Hybrid.Streamer.sport ~conjugated:true "ctl" temp_protocol ]
    ~guards ~strategy
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
    ~rhs

let thermostat_behavior (services : Umlrt.Capsule.services) =
  let m = Statechart.Machine.create "thermostat" in
  Statechart.Machine.add_state m "Idle";
  Statechart.Machine.add_state m "Heating";
  Statechart.Machine.set_initial m "Idle";
  let send signal _ctx _event =
    services.Umlrt.Capsule.send ~port:"plant" (Statechart.Event.make signal)
  in
  Statechart.Machine.add_transition m ~src:"Idle" ~dst:"Heating"
    ~trigger:"too_cold" ~action:(send "heater_on") ();
  Statechart.Machine.add_transition m ~src:"Heating" ~dst:"Idle"
    ~trigger:"too_hot" ~action:(send "heater_off") ();
  let instance = ref None in
  { Umlrt.Capsule.on_start =
      (fun () -> instance := Some (Statechart.Instance.start m ()));
    on_event =
      (fun ~port:_ event ->
         match !instance with
         | Some i -> Statechart.Instance.handle i event
         | None -> false);
    configuration = (fun () -> []) }

let make_thermostat_engine () =
  let root =
    Umlrt.Capsule.create "controller"
      ~ports:[ Umlrt.Capsule.port "plant" temp_protocol ]
      ~behavior:thermostat_behavior
  in
  let engine = Hybrid.Engine.create ~root () in
  Hybrid.Engine.add_streamer engine ~role:"room" (thermal_streamer ());
  Hybrid.Engine.link_sport_exn engine ~role:"room" ~sport:"ctl"
    ~border_port:"plant";
  engine

let fingerprint trace =
  List.map
    (fun (t, v) -> (Int64.bits_of_float t, Int64.bits_of_float v))
    (Sigtrace.Trace.samples trace)

let run_thermostat ?spec duration =
  let engine = make_thermostat_engine () in
  (match spec with
   | Some s -> ignore (Hybrid.Engine.apply_fault_spec engine s)
   | None -> ());
  let trace = Hybrid.Engine.trace_dport engine ~role:"room" ~dport:"temp" in
  Hybrid.Engine.run_until engine duration;
  (engine, fingerprint trace)

(* ---- differential guarantees ---- *)

let final_state_bits engine =
  match Hybrid.Engine.solver_of engine "room" with
  | Some s -> Int64.bits_of_float (Hybrid.Solver.state s).(0)
  | None -> Alcotest.fail "room solver missing"

let test_empty_layer_bit_identical () =
  let e1, f1 = run_thermostat 120. in
  let e2, f2 = run_thermostat ~spec:Fault.Spec.empty 120. in
  Alcotest.(check int) "same sample count" (List.length f1) (List.length f2);
  List.iter2
    (fun (ta, va) (tb, vb) ->
       if not (Int64.equal ta tb && Int64.equal va vb) then
         Alcotest.failf "trace diverged: (%Ld, %Ld) vs (%Ld, %Ld)" ta va tb vb)
    f1 f2;
  Alcotest.(check bool) "final state bit-identical" true
    (Int64.equal (final_state_bits e1) (final_state_bits e2));
  let s1 = Hybrid.Engine.stats e1 and s2 = Hybrid.Engine.stats e2 in
  Alcotest.(check bool) "same discrete history" true (s1 = s2)

let chaos_text =
  "seed 1234\ndrop signal * p=0.3\ncorrupt flow room.temp scale=1.01 p=0.5\n"

let test_same_seed_same_run () =
  let _, f1 = run_thermostat ~spec:(spec_of chaos_text) 120. in
  let _, f2 = run_thermostat ~spec:(spec_of chaos_text) 120. in
  let _, f0 = run_thermostat 120. in
  Alcotest.(check bool) "chaotic runs replay bit-for-bit" true (f1 = f2);
  Alcotest.(check bool) "and actually differ from the pristine run" true
    (f1 <> f0)

let test_drop_all_disables_control () =
  let engine, _ =
    run_thermostat ~spec:(spec_of "seed 1\ndrop signal *\n") 300.
  in
  (* Every border signal is lost, so the heater never turns on and the
     room relaxes toward the 15-degree ambient. *)
  (match Hybrid.Engine.solver_of engine "room" with
   | Some s ->
     Alcotest.(check bool) "room drifted below the control band" true
       ((Hybrid.Solver.state s).(0) < 18.)
   | None -> Alcotest.fail "room solver missing");
  (match Hybrid.Engine.faults engine with
   | Some inj ->
     Alcotest.(check bool) "drops counted" true
       (List.mem_assoc "drop" (Fault.Injector.injected_counts inj))
   | None -> Alcotest.fail "injector attached")

(* ---- flow faults end-to-end (capsule-less cooling plant) ---- *)

let cooling_engine () =
  let leaf =
    Hybrid.Streamer.leaf "plant" ~rate:0.1 ~dim:1 ~init:[| 20. |]
      ~params:[ ("ambient", 15.); ("tau", 20.) ]
      ~dports:[ Hybrid.Streamer.dport_out "temp" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
      ~rhs:(fun env _t y ->
          [| -.(y.(0) -. env.Hybrid.Solver.param "ambient")
             /. env.Hybrid.Solver.param "tau" |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"plant" leaf;
  engine

let read_temp engine =
  match Hybrid.Engine.read_dport engine ~role:"plant" ~dport:"temp" with
  | Some v -> v
  | None -> Alcotest.fail "temp dport readable"

let test_nan_flow_poisons_dport () =
  let engine = cooling_engine () in
  ignore
    (Hybrid.Engine.apply_fault_spec engine
       (spec_of "seed 1\nnan flow plant.temp\n"));
  Hybrid.Engine.run_until engine 1.0;
  Alcotest.(check bool) "NaN on the wire" true (Float.is_nan (read_temp engine));
  (* the state itself stays healthy — only the flow write is poisoned *)
  match Hybrid.Engine.solver_of engine "plant" with
  | Some s ->
    Alcotest.(check bool) "state unharmed" true
      (Float.is_finite (Hybrid.Solver.state s).(0))
  | None -> Alcotest.fail "plant solver missing"

let test_freeze_flow_holds_last_value () =
  let engine = cooling_engine () in
  ignore
    (Hybrid.Engine.apply_fault_spec engine
       (spec_of "seed 1\nfreeze flow plant.temp from=1\n"));
  Hybrid.Engine.run_until engine 30.;
  let dport = read_temp engine in
  let state =
    match Hybrid.Engine.solver_of engine "plant" with
    | Some s -> (Hybrid.Solver.state s).(0)
    | None -> Alcotest.fail "plant solver missing"
  in
  Alcotest.(check bool)
    (Printf.sprintf "dport froze near its t=1 value (%g)" dport)
    true
    (dport > 19.5 && dport < 20.);
  Alcotest.(check bool)
    (Printf.sprintf "state kept cooling underneath (%g)" state)
    true (state < 17.)

let test_stall_solver_halts_state () =
  let engine = cooling_engine () in
  ignore
    (Hybrid.Engine.apply_fault_spec engine
       (spec_of "seed 1\nstall solver plant\n"));
  Hybrid.Engine.run_until engine 10.;
  (match Hybrid.Engine.solver_of engine "plant" with
   | Some s ->
     Alcotest.(check (float 0.)) "state pinned at init" 20.
       (Hybrid.Solver.state s).(0)
   | None -> Alcotest.fail "plant solver missing");
  Alcotest.(check bool) "streamer still ticked" true
    (Hybrid.Engine.ticks_of engine "plant" > 50)

(* ---- solver supervision ---- *)

(* A plant whose rhs turns NaN at [t0]: divergence the supervisor must
   catch at the next step boundary. *)
let sick_streamer ?method_ ~t0 degraded_hits =
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on_degrade strategy (fun _ctl _e -> incr degraded_hits);
  Hybrid.Streamer.leaf "sick" ~rate:0.1 ~dim:1 ~init:[| 1. |] ?method_
    ~dports:[ Hybrid.Streamer.dport_out "x" ]
    ~strategy
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
    ~rhs:(fun _env t y -> if t >= t0 then [| Float.nan |] else [| -.y.(0) |])

let sick_engine ?method_ policy degraded_hits =
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"sick"
    (sick_streamer ?method_ ~t0:0.45 degraded_hits);
  Hybrid.Engine.set_supervisor engine policy;
  engine

let test_supervisor_restart_on_divergence () =
  let degraded = ref 0 in
  let engine = sick_engine Fault.Supervisor.Restart degraded in
  Hybrid.Engine.run_until engine 2.0;
  Alcotest.(check bool) "faults detected" true
    (Hybrid.Engine.solver_faults engine >= 1);
  Alcotest.(check bool) "restarts performed" true
    (Hybrid.Engine.supervisor_restarts engine >= 1);
  Alcotest.(check (list string)) "role degraded" [ "sick" ]
    (Hybrid.Engine.degraded_roles engine);
  Alcotest.(check bool) "degraded time accumulates" true
    (Hybrid.Engine.degraded_time engine > 0.);
  Alcotest.(check int) "degrade strategy ran exactly once" 1 !degraded;
  (* restart leaves the streamer at its initial condition, not NaN *)
  match Hybrid.Engine.solver_of engine "sick" with
  | Some s ->
    Alcotest.(check bool) "state finite after restart" true
      (Float.is_finite (Hybrid.Solver.state s).(0))
  | None -> Alcotest.fail "sick solver missing"

let test_supervisor_freeze_on_divergence () =
  let degraded = ref 0 in
  let engine = sick_engine Fault.Supervisor.Freeze_last degraded in
  Hybrid.Engine.run_until engine 2.0;
  Alcotest.(check bool) "frozen, not restarted" true
    (Hybrid.Engine.supervisor_restarts engine = 0
     && Hybrid.Engine.solver_faults engine = 1);
  Alcotest.(check (list string)) "role degraded" [ "sick" ]
    (Hybrid.Engine.degraded_roles engine);
  (* outputs hold the last healthy write — never a NaN *)
  (match Hybrid.Engine.read_dport engine ~role:"sick" ~dport:"x" with
   | Some v -> Alcotest.(check bool) "dport holds a finite value" true
                 (Float.is_finite v)
   | None -> Alcotest.fail "x dport readable");
  Alcotest.(check bool) "ticks keep counting while frozen" true
    (Hybrid.Engine.ticks_of engine "sick" > 10)

let test_supervisor_escalate_raises () =
  let degraded = ref 0 in
  let engine = sick_engine Fault.Supervisor.Escalate degraded in
  Alcotest.check_raises "escalation surfaces the divergence"
    (Hybrid.Engine.Diverged "sick")
    (fun () -> Hybrid.Engine.run_until engine 2.0);
  Alcotest.(check int) "escalate never degrades" 0 !degraded

let test_supervisor_catches_adaptive_blowup () =
  (* With an adaptive method the NaN rhs surfaces as an Ode.Adaptive
     exception out of the sync — the supervisor must catch that path
     too, not just the finite-state probe. *)
  let degraded = ref 0 in
  let control = { Ode.Adaptive.default_control with max_steps = 500 } in
  let engine =
    sick_engine
      ~method_:(Ode.Integrator.Adaptive (Ode.Adaptive.Dormand_prince, control))
      Fault.Supervisor.Freeze_last degraded
  in
  Hybrid.Engine.run_until engine 2.0;
  Alcotest.(check bool) "adaptive fault caught" true
    (Hybrid.Engine.solver_faults engine >= 1);
  Alcotest.(check (list string)) "role degraded" [ "sick" ]
    (Hybrid.Engine.degraded_roles engine)

let test_fault_spec_installs_supervision () =
  let degraded = ref 0 in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"sick"
    (sick_streamer ~t0:0.45 degraded);
  ignore
    (Hybrid.Engine.apply_fault_spec engine (spec_of "seed 1\nsupervise restart\n"));
  Hybrid.Engine.run_until engine 2.0;
  Alcotest.(check bool) "spec directive armed the supervisor" true
    (Hybrid.Engine.supervisor_restarts engine >= 1)

(* ---- capsule supervision (UML-RT runtime) ---- *)

let event = Statechart.Event.make

(* A capsule whose handler raises on "boom" and counts everything else. *)
let bomb_capsule started handled =
  Umlrt.Capsule.create "bomb"
    ~behavior:(fun _services ->
        incr started;
        { Umlrt.Capsule.on_start = (fun () -> ());
          on_event =
            (fun ~port:_ e ->
               match Statechart.Event.signal e with
               | "boom" -> failwith "kaboom"
               | _ -> incr handled; true);
          configuration = (fun () -> []) })

let bomb_runtime () =
  let started = ref 0 and handled = ref 0 in
  let des = Des.Engine.create () in
  let rt = Umlrt.Runtime.create des (bomb_capsule started handled) in
  (des, rt, started, handled)

let poke rt signal =
  ignore (Umlrt.Runtime.deliver_to rt ~path:"bomb" ~port:"p" (event signal))

let test_capsule_restart_policy () =
  let des, rt, started, handled = bomb_runtime () in
  Umlrt.Runtime.set_supervisor rt Fault.Supervisor.Restart;
  poke rt "ping"; poke rt "boom"; poke rt "ping";
  ignore (Des.Engine.run_until des 1.0);
  Alcotest.(check int) "messages around the fault handled" 2 !handled;
  Alcotest.(check int) "behaviour rebuilt once" 2 !started;
  Alcotest.(check int) "restart counted" 1 (Umlrt.Runtime.capsule_restarts rt);
  Alcotest.(check bool) "not quarantined" false
    (Umlrt.Runtime.is_quarantined rt ~path:"bomb")

let test_capsule_freeze_policy () =
  let des, rt, _, handled = bomb_runtime () in
  Umlrt.Runtime.set_supervisor rt Fault.Supervisor.Freeze_last;
  poke rt "boom"; poke rt "ping"; poke rt "ping";
  ignore (Des.Engine.run_until des 1.0);
  Alcotest.(check int) "quarantined capsule hears nothing" 0 !handled;
  Alcotest.(check (list string)) "quarantine listed" [ "bomb" ]
    (Umlrt.Runtime.quarantined_paths rt);
  Alcotest.(check int) "no restarts under freeze" 0
    (Umlrt.Runtime.capsule_restarts rt)

let test_capsule_max_restarts_quarantines () =
  let des, rt, _, handled = bomb_runtime () in
  Umlrt.Runtime.set_supervisor rt ~max_restarts:1 Fault.Supervisor.Restart;
  poke rt "boom"; poke rt "boom"; poke rt "ping";
  ignore (Des.Engine.run_until des 1.0);
  Alcotest.(check int) "restart budget respected" 1
    (Umlrt.Runtime.capsule_restarts rt);
  Alcotest.(check bool) "exhausted budget quarantines" true
    (Umlrt.Runtime.is_quarantined rt ~path:"bomb");
  Alcotest.(check int) "nothing delivered after quarantine" 0 !handled

let test_capsule_escalate_reraises () =
  let des, rt, _, _ = bomb_runtime () in
  Umlrt.Runtime.set_supervisor rt Fault.Supervisor.Escalate;
  poke rt "boom";
  Alcotest.check_raises "behaviour exception escapes" (Failure "kaboom")
    (fun () -> ignore (Des.Engine.run_until des 1.0))

let test_watchdog_restarts_silent_capsule () =
  let des, rt, started, _ = bomb_runtime () in
  Umlrt.Runtime.watch_capsule rt ~path:"bomb" ~timeout:1.0;
  ignore (Des.Engine.run_until des 3.5);
  Alcotest.(check int) "three missed deadlines" 3
    (Umlrt.Runtime.watchdog_expirations rt ~path:"bomb");
  Alcotest.(check int) "restart per expiry (default policy)" 3
    (Umlrt.Runtime.capsule_restarts rt);
  Alcotest.(check int) "factory re-ran" 4 !started

let test_watchdog_petted_by_traffic () =
  let des, rt, _, handled = bomb_runtime () in
  Umlrt.Runtime.watch_capsule rt ~path:"bomb" ~timeout:1.0;
  ignore
    (Des.Timer.periodic des ~period:0.4 (fun _ -> poke rt "ping"));
  ignore (Des.Engine.run_until des 3.0);
  Alcotest.(check int) "no deadline missed" 0
    (Umlrt.Runtime.watchdog_expirations rt ~path:"bomb");
  Alcotest.(check int) "no restarts" 0 (Umlrt.Runtime.capsule_restarts rt);
  Alcotest.(check bool) "traffic flowed" true (!handled >= 6)

let test_watchdog_escalates () =
  let des, rt, _, _ = bomb_runtime () in
  Umlrt.Runtime.set_supervisor rt Fault.Supervisor.Escalate;
  Umlrt.Runtime.watch_capsule rt ~path:"bomb" ~timeout:0.5;
  Alcotest.check_raises "missed deadline escalates"
    (Umlrt.Runtime.Watchdog_expired "bomb")
    (fun () -> ignore (Des.Engine.run_until des 2.0))

let suite =
  [ Alcotest.test_case "spec: parse + round-trip" `Quick
      test_spec_parse_and_round_trip;
    Alcotest.test_case "spec: malformed rejected with line numbers" `Quick
      test_spec_rejects_malformed;
    Alcotest.test_case "spec: target matching + windows" `Quick
      test_spec_target_matching;
    Alcotest.test_case "injector: deterministic replay" `Quick
      test_injector_deterministic_replay;
    Alcotest.test_case "injector: first match wins, windows bound" `Quick
      test_injector_first_match_and_window;
    Alcotest.test_case "injector: signal fates" `Quick
      test_injector_signal_fates;
    Alcotest.test_case "injector: flow faults" `Quick test_injector_flow_faults;
    Alcotest.test_case "engine: empty layer is bit-identical" `Quick
      test_empty_layer_bit_identical;
    Alcotest.test_case "engine: same seed replays the chaos" `Quick
      test_same_seed_same_run;
    Alcotest.test_case "engine: drop-all severs the control loop" `Quick
      test_drop_all_disables_control;
    Alcotest.test_case "engine: nan flow poisons only the wire" `Quick
      test_nan_flow_poisons_dport;
    Alcotest.test_case "engine: freeze flow holds last value" `Quick
      test_freeze_flow_holds_last_value;
    Alcotest.test_case "engine: stalled solver halts state" `Quick
      test_stall_solver_halts_state;
    Alcotest.test_case "supervisor: restart on divergence" `Quick
      test_supervisor_restart_on_divergence;
    Alcotest.test_case "supervisor: freeze-last on divergence" `Quick
      test_supervisor_freeze_on_divergence;
    Alcotest.test_case "supervisor: escalate raises Diverged" `Quick
      test_supervisor_escalate_raises;
    Alcotest.test_case "supervisor: adaptive blowup caught" `Quick
      test_supervisor_catches_adaptive_blowup;
    Alcotest.test_case "supervisor: spec directive arms it" `Quick
      test_fault_spec_installs_supervision;
    Alcotest.test_case "umlrt: restart policy" `Quick test_capsule_restart_policy;
    Alcotest.test_case "umlrt: freeze quarantines" `Quick
      test_capsule_freeze_policy;
    Alcotest.test_case "umlrt: max_restarts budget" `Quick
      test_capsule_max_restarts_quarantines;
    Alcotest.test_case "umlrt: escalate re-raises" `Quick
      test_capsule_escalate_reraises;
    Alcotest.test_case "umlrt: watchdog restarts silent capsule" `Quick
      test_watchdog_restarts_silent_capsule;
    Alcotest.test_case "umlrt: watchdog petted by traffic" `Quick
      test_watchdog_petted_by_traffic;
    Alcotest.test_case "umlrt: watchdog escalates" `Quick test_watchdog_escalates ]
