(* Discrete-event kernel tests: queue ordering, cancellation, engine
   semantics, mailbox latency, timers, deterministic RNG. *)

let test_queue_orders_by_time () =
  let q = Des.Event_queue.create () in
  ignore (Des.Event_queue.push q ~time:3. "c");
  ignore (Des.Event_queue.push q ~time:1. "a");
  ignore (Des.Event_queue.push q ~time:2. "b");
  let order =
    List.init 3 (fun _ ->
        match Des.Event_queue.pop q with
        | Some (_, x) -> x
        | None -> "?")
  in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_queue_fifo_within_time () =
  let q = Des.Event_queue.create () in
  ignore (Des.Event_queue.push q ~time:1. "first");
  ignore (Des.Event_queue.push q ~time:1. "second");
  ignore (Des.Event_queue.push q ~time:1. "third");
  let order =
    List.init 3 (fun _ ->
        match Des.Event_queue.pop q with Some (_, x) -> x | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order at equal times"
    [ "first"; "second"; "third" ] order

let test_queue_priority () =
  let q = Des.Event_queue.create () in
  ignore (Des.Event_queue.push q ~time:1. ~priority:5 "low");
  ignore (Des.Event_queue.push q ~time:1. ~priority:0 "high");
  (match Des.Event_queue.pop q with
   | Some (_, x) -> Alcotest.(check string) "priority first" "high" x
   | None -> Alcotest.fail "non-empty")

let test_queue_cancellation () =
  let q = Des.Event_queue.create () in
  let h = Des.Event_queue.push q ~time:1. "cancelled" in
  ignore (Des.Event_queue.push q ~time:2. "kept");
  Des.Event_queue.cancel h;
  Alcotest.(check bool) "handle knows" true (Des.Event_queue.is_cancelled h);
  Alcotest.(check int) "length excludes cancelled" 1 (Des.Event_queue.length q);
  (match Des.Event_queue.pop q with
   | Some (_, x) -> Alcotest.(check string) "skips cancelled" "kept" x
   | None -> Alcotest.fail "non-empty")

let test_queue_drain_until () =
  let q = Des.Event_queue.create () in
  List.iter (fun t -> ignore (Des.Event_queue.push q ~time:t t)) [ 0.5; 1.5; 2.5 ];
  let drained = Des.Event_queue.drain_until q 2.0 in
  Alcotest.(check int) "two drained" 2 (List.length drained);
  Alcotest.(check int) "one left" 1 (Des.Event_queue.length q)

let test_queue_nan_rejected () =
  let q = Des.Event_queue.create () in
  Alcotest.check_raises "NaN time"
    (Invalid_argument "Des.Event_queue.push: NaN time")
    (fun () -> ignore (Des.Event_queue.push q ~time:Float.nan ()))

(* qcheck: popping a random batch always yields non-decreasing times. *)
let prop_pop_sorted =
  QCheck.Test.make ~count:200 ~name:"event queue pops in time order"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun times ->
       let q = Des.Event_queue.create () in
       List.iter (fun t -> ignore (Des.Event_queue.push q ~time:t t)) times;
       let rec drain last =
         match Des.Event_queue.pop q with
         | None -> true
         | Some (t, _) -> t >= last && drain t
       in
       drain neg_infinity)

let test_engine_clock_advances () =
  let e = Des.Engine.create () in
  let seen = ref [] in
  ignore (Des.Engine.schedule e ~delay:2. (fun () -> seen := 2 :: !seen));
  ignore (Des.Engine.schedule e ~delay:1. (fun () -> seen := 1 :: !seen));
  let n = Des.Engine.run_until e 5. in
  Alcotest.(check int) "two executed" 2 n;
  Alcotest.(check (list int)) "in order" [ 2; 1 ] !seen;
  Alcotest.(check (float 1e-12)) "clock at bound" 5. (Des.Engine.now e)

let test_engine_event_schedules_event () =
  let e = Des.Engine.create () in
  let fired = ref 0. in
  ignore
    (Des.Engine.schedule e ~delay:1. (fun () ->
         ignore (Des.Engine.schedule e ~delay:1. (fun () -> fired := Des.Engine.now e))));
  ignore (Des.Engine.run_until e 3.);
  Alcotest.(check (float 1e-12)) "cascaded event at t=2" 2. !fired

let test_engine_past_rejected () =
  let e = Des.Engine.create ~start:10. () in
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Des.Engine.schedule_at: time 5 is before now 10")
    (fun () -> ignore (Des.Engine.schedule_at e ~time:5. (fun () -> ())))

let test_engine_cancel () =
  let e = Des.Engine.create () in
  let fired = ref false in
  let h = Des.Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Des.Engine.cancel h;
  ignore (Des.Engine.run_until e 2.);
  Alcotest.(check bool) "cancelled callback did not run" false !fired

let test_engine_runaway_guard () =
  let e = Des.Engine.create () in
  let rec loop () = ignore (Des.Engine.schedule e ~delay:0.001 loop) in
  loop ();
  Alcotest.check_raises "budget"
    (Failure "Des.Engine.run_to_completion: event budget exhausted (runaway model?)")
    (fun () -> ignore (Des.Engine.run_to_completion e ~max_events:100 ()))

(* The O(1) incremental queue-depth gauge must track the O(n) ground
   truth through every schedule / cancel / double-cancel / step. *)
let test_engine_queue_depth_tracks_pending () =
  let e = Des.Engine.create () in
  let agree label =
    Alcotest.(check int) label (Des.Engine.pending e) (Des.Engine.queue_depth e)
  in
  agree "empty";
  let h1 = Des.Engine.schedule e ~delay:1. (fun () -> ()) in
  let _h2 = Des.Engine.schedule e ~delay:2. (fun () -> ()) in
  let h3 = Des.Engine.schedule e ~delay:3. (fun () -> ()) in
  agree "three scheduled";
  Alcotest.(check int) "depth 3" 3 (Des.Engine.queue_depth e);
  Des.Engine.cancel h1;
  agree "after cancel";
  Des.Engine.cancel h1;
  agree "cancel is idempotent";
  Alcotest.(check int) "depth 2" 2 (Des.Engine.queue_depth e);
  ignore (Des.Engine.step e);
  agree "after step";
  Des.Engine.cancel h3;
  agree "cancel after step";
  ignore (Des.Engine.run_until e 10.);
  agree "drained";
  Alcotest.(check int) "depth 0" 0 (Des.Engine.queue_depth e);
  (* Cancelling an already-executed handle must not corrupt the count. *)
  let h4 = Des.Engine.schedule e ~delay:1. (fun () -> ()) in
  ignore (Des.Engine.run_until e 12.);
  Des.Engine.cancel h4;
  agree "cancel of executed handle is a no-op";
  Alcotest.(check int) "still 0" 0 (Des.Engine.queue_depth e)

let test_mailbox_latency () =
  let e = Des.Engine.create () in
  let mb = Des.Mailbox.create e ~latency:0.5 "m" in
  let delivery_time = ref (-1.) in
  Des.Mailbox.set_listener mb (fun _ -> delivery_time := Des.Engine.now e);
  Des.Mailbox.send mb "hello";
  Alcotest.(check int) "in flight before delivery" 1 (Des.Mailbox.in_flight mb);
  ignore (Des.Engine.run_until e 1.);
  Alcotest.(check (float 1e-12)) "delivered at latency" 0.5 !delivery_time;
  Alcotest.(check (option string)) "message available" (Some "hello")
    (Des.Mailbox.pop mb);
  Alcotest.(check int) "counters" 1 (Des.Mailbox.delivered_total mb)

let test_mailbox_fifo () =
  let e = Des.Engine.create () in
  let mb = Des.Mailbox.create e "m" in
  Des.Mailbox.send mb 1;
  Des.Mailbox.send mb 2;
  ignore (Des.Engine.run_until e 1.);
  Alcotest.(check (option int)) "first" (Some 1) (Des.Mailbox.pop mb);
  Alcotest.(check (option int)) "second" (Some 2) (Des.Mailbox.pop mb);
  Alcotest.(check (option int)) "empty" None (Des.Mailbox.pop mb)

let test_timer_periodic () =
  let e = Des.Engine.create () in
  let ticks = ref [] in
  let timer = Des.Timer.periodic e ~period:1. (fun k -> ticks := k :: !ticks) in
  ignore (Des.Engine.run_until e 3.5);
  Alcotest.(check (list int)) "three ticks" [ 2; 1; 0 ] !ticks;
  Des.Timer.cancel timer;
  ignore (Des.Engine.run_until e 10.);
  Alcotest.(check int) "no ticks after cancel" 3 (Des.Timer.fired timer)

let test_timer_no_drift () =
  (* Releases computed from the origin: after 1000 periods of 0.1 the
     firing time is exactly 100.0, not 100.0 +- accumulated error. *)
  let e = Des.Engine.create () in
  let last = ref 0. in
  ignore (Des.Timer.periodic e ~period:0.1 (fun _ -> last := Des.Engine.now e));
  ignore (Des.Engine.run_until e 100.01);
  Alcotest.(check (float 1e-9)) "firing 1000 at t=100" 100. !last

let test_timer_phase () =
  let e = Des.Engine.create () in
  let first = ref (-1.) in
  ignore
    (Des.Timer.periodic e ~phase:0.25 ~period:1. (fun _ ->
         if !first < 0. then first := Des.Engine.now e));
  ignore (Des.Engine.run_until e 2.);
  Alcotest.(check (float 1e-12)) "first at phase" 0.25 !first

let test_timer_one_shot () =
  let e = Des.Engine.create () in
  let count = ref 0 in
  ignore (Des.Timer.one_shot e ~delay:1. (fun () -> incr count));
  ignore (Des.Engine.run_until e 5.);
  Alcotest.(check int) "fires exactly once" 1 !count

let test_rng_deterministic () =
  let a = Des.Rng.create 42 in
  let b = Des.Rng.create 42 in
  let seq r = List.init 10 (fun _ -> Des.Rng.float r) in
  Alcotest.(check (list (float 0.))) "same seed, same stream" (seq a) (seq b)

let test_rng_seeds_differ () =
  let a = Des.Rng.create 1 in
  let b = Des.Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true
    (Des.Rng.float a <> Des.Rng.float b)

let prop_rng_range =
  QCheck.Test.make ~count:100 ~name:"rng float in [0,1)"
    QCheck.small_int
    (fun seed ->
       let r = Des.Rng.create seed in
       List.for_all (fun _ -> let v = Des.Rng.float r in v >= 0. && v < 1.)
         (List.init 100 Fun.id))

let prop_rng_int_bound =
  QCheck.Test.make ~count:100 ~name:"rng int respects bound"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
       let r = Des.Rng.create seed in
       List.for_all (fun _ -> let v = Des.Rng.int r bound in v >= 0 && v < bound)
         (List.init 50 Fun.id))

let test_rng_gaussian_moments () =
  let r = Des.Rng.create 7 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Des.Rng.gaussian r ()) in
  let mean = List.fold_left ( +. ) 0. samples /. float_of_int n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples
    /. float_of_int n
  in
  Alcotest.(check bool) (Printf.sprintf "mean %.3f ~ 0" mean) true
    (Float.abs mean < 0.03);
  Alcotest.(check bool) (Printf.sprintf "variance %.3f ~ 1" var) true
    (Float.abs (var -. 1.) < 0.05)

let suite =
  [ Alcotest.test_case "queue: time order" `Quick test_queue_orders_by_time;
    Alcotest.test_case "queue: FIFO at equal times" `Quick test_queue_fifo_within_time;
    Alcotest.test_case "queue: priority" `Quick test_queue_priority;
    Alcotest.test_case "queue: cancellation" `Quick test_queue_cancellation;
    Alcotest.test_case "queue: drain_until" `Quick test_queue_drain_until;
    Alcotest.test_case "queue: NaN rejected" `Quick test_queue_nan_rejected;
    QCheck_alcotest.to_alcotest prop_pop_sorted;
    Alcotest.test_case "engine: clock and ordering" `Quick test_engine_clock_advances;
    Alcotest.test_case "engine: cascading events" `Quick test_engine_event_schedules_event;
    Alcotest.test_case "engine: past rejected" `Quick test_engine_past_rejected;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: runaway guard" `Quick test_engine_runaway_guard;
    Alcotest.test_case "engine: queue depth gauge" `Quick
      test_engine_queue_depth_tracks_pending;
    Alcotest.test_case "mailbox: latency" `Quick test_mailbox_latency;
    Alcotest.test_case "mailbox: FIFO" `Quick test_mailbox_fifo;
    Alcotest.test_case "timer: periodic + cancel" `Quick test_timer_periodic;
    Alcotest.test_case "timer: no cumulative drift" `Quick test_timer_no_drift;
    Alcotest.test_case "timer: phase" `Quick test_timer_phase;
    Alcotest.test_case "timer: one-shot" `Quick test_timer_one_shot;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed separation" `Quick test_rng_seeds_differ;
    QCheck_alcotest.to_alcotest prop_rng_range;
    QCheck_alcotest.to_alcotest prop_rng_int_bound;
    Alcotest.test_case "rng: gaussian moments" `Quick test_rng_gaussian_moments ]

(* ---- queue storage: retention + shrink regressions ---- *)

(* A popped payload must be collectable immediately: the heap clears
   freed slots instead of leaving stale pointers behind the size index. *)
let test_queue_releases_popped_payloads () =
  let q = Des.Event_queue.create () in
  let weaks =
    List.init 50 (fun i ->
        let payload = Bytes.make 256 'x' in
        let w = Weak.create 1 in
        Weak.set w 0 (Some payload);
        ignore (Des.Event_queue.push q ~time:(float_of_int i) payload);
        w)
  in
  let rec drain () =
    match Des.Event_queue.pop q with Some _ -> drain () | None -> ()
  in
  drain ();
  Gc.full_major ();
  Gc.full_major ();
  let alive =
    List.fold_left (fun acc w -> if Weak.check w 0 then acc + 1 else acc) 0 weaks
  in
  Alcotest.(check int) "popped payloads are collectable" 0 alive

(* A burst must not pin its high-water storage: capacity halves as the
   queue drains, and surviving entries still pop in order. *)
let test_queue_capacity_shrinks () =
  let q = Des.Event_queue.create () in
  for i = 1 to 1024 do
    ignore (Des.Event_queue.push q ~time:(float_of_int i) i)
  done;
  Alcotest.(check bool) "grew to hold the burst" true
    (Des.Event_queue.capacity q >= 1024);
  for _ = 1 to 1020 do ignore (Des.Event_queue.pop q) done;
  Alcotest.(check bool)
    (Printf.sprintf "shrank after drain (capacity %d)"
       (Des.Event_queue.capacity q))
    true
    (Des.Event_queue.capacity q <= 64);
  let rest =
    List.init 4 (fun _ ->
        match Des.Event_queue.pop q with Some (_, x) -> x | None -> -1)
  in
  Alcotest.(check (list int)) "survivors pop in order"
    [ 1021; 1022; 1023; 1024 ] rest;
  Alcotest.(check bool) "never below the floor" true
    (Des.Event_queue.capacity q >= 8)

let storage_suite =
  [ Alcotest.test_case "queue: popped payloads released" `Quick
      test_queue_releases_popped_payloads;
    Alcotest.test_case "queue: capacity shrinks after burst" `Quick
      test_queue_capacity_shrinks ]

let suite = suite @ storage_suite

(* ---- fault-sweep regressions: payload release at cancel, NaN guards ---- *)

(* A cancelled entry's payload must be collectable immediately — under
   lazy deletion the entry stays in the heap array, but it must not pin
   the payload until it bubbles out. *)
let test_queue_cancel_releases_payload () =
  let q = Des.Event_queue.create () in
  let w =
    let payload = Bytes.make 256 'x' in
    let wk = Weak.create 1 in
    Weak.set wk 0 (Some payload);
    let h = Des.Event_queue.push q ~time:1. payload in
    ignore (Des.Event_queue.push q ~time:2. (Bytes.make 8 'y'));
    Des.Event_queue.cancel h;
    wk
  in
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "cancelled payload collectable while still queued"
    false (Weak.check w 0);
  (* the lazily-deleted slot still skips cleanly on pop *)
  match Des.Event_queue.pop q with
  | Some (t, _) -> Alcotest.(check (float 0.)) "survivor pops" 2. t
  | None -> Alcotest.fail "survivor expected"

let test_timer_nan_guards () =
  let e = Des.Engine.create () in
  Alcotest.check_raises "one_shot NaN delay names the timer"
    (Invalid_argument "Des.Timer.one_shot: timer \"t1\": NaN delay")
    (fun () ->
       ignore (Des.Timer.one_shot e ~name:"t1" ~delay:Float.nan ignore));
  Alcotest.check_raises "periodic NaN period names the timer"
    (Invalid_argument "Des.Timer.periodic: timer \"t2\": NaN period")
    (fun () ->
       ignore (Des.Timer.periodic e ~name:"t2" ~period:Float.nan (fun _ -> ())));
  Alcotest.check_raises "periodic NaN phase names the timer"
    (Invalid_argument "Des.Timer.periodic: timer \"t3\": NaN phase")
    (fun () ->
       ignore
         (Des.Timer.periodic e ~name:"t3" ~phase:Float.nan ~period:1.
            (fun _ -> ())));
  (* jitter is evaluated per release: the guard sits where the number is
     produced, not at construction *)
  Alcotest.check_raises "NaN jitter names timer and release"
    (Invalid_argument
       "Des.Timer.periodic_jittered: timer \"j\": jitter for release 0 \
        (period 1) is NaN")
    (fun () ->
       ignore
         (Des.Timer.periodic_jittered e ~name:"j" ~phase:0. ~period:1.
            ~jitter:(fun _ -> Float.nan) (fun _ -> ())));
  (* the non-NaN diagnostics kept their exact wording *)
  Alcotest.check_raises "non-positive period message unchanged"
    (Invalid_argument "Des.Timer.periodic: period must be positive")
    (fun () -> ignore (Des.Timer.periodic e ~period:0. (fun _ -> ())))

let test_engine_nan_guards () =
  let e = Des.Engine.create () in
  Alcotest.check_raises "schedule_at NaN"
    (Invalid_argument "Des.Engine.schedule_at: NaN time")
    (fun () -> ignore (Des.Engine.schedule_at e ~time:Float.nan ignore));
  Alcotest.check_raises "schedule NaN"
    (Invalid_argument "Des.Engine.schedule: NaN delay")
    (fun () -> ignore (Des.Engine.schedule e ~delay:Float.nan ignore));
  Alcotest.check_raises "run_until NaN"
    (Invalid_argument "Des.Engine.run_until: NaN bound")
    (fun () -> ignore (Des.Engine.run_until e Float.nan))

let nan_suite =
  [ Alcotest.test_case "queue: cancel releases payload" `Quick
      test_queue_cancel_releases_payload;
    Alcotest.test_case "timer: NaN rejected at every entry point" `Quick
      test_timer_nan_guards;
    Alcotest.test_case "engine: NaN rejected at every entry point" `Quick
      test_engine_nan_guards ]

let suite = suite @ nan_suite
