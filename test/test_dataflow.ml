(* Dataflow substrate tests: flow types (incl. the paper's subset rule),
   values, register-semantics ports, graphs, relays, topological order
   and propagation. *)

open Dataflow

let scalar = Flow_type.float_flow
let rich = Flow_type.record [ ("value", Flow_type.TFloat); ("quality", Flow_type.TInt) ]

(* ---- flow types ---- *)

let test_record_sorted_and_unique () =
  let t = Flow_type.record [ ("b", Flow_type.TInt); ("a", Flow_type.TFloat) ] in
  Alcotest.(check (list string)) "sorted fields" [ "a"; "b" ]
    (List.map fst (Flow_type.fields t));
  Alcotest.check_raises "duplicate field"
    (Invalid_argument "Dataflow.Flow_type.record: duplicate field \"a\"")
    (fun () -> ignore (Flow_type.record [ ("a", Flow_type.TInt); ("a", Flow_type.TFloat) ]))

let test_subset_relation () =
  Alcotest.(check bool) "scalar subset of rich" true (Flow_type.subset scalar rich);
  Alcotest.(check bool) "rich not subset of scalar" false (Flow_type.subset rich scalar);
  Alcotest.(check bool) "reflexive" true (Flow_type.subset rich rich);
  (* Same field name, different base: not a subset. *)
  let scalar_int = Flow_type.scalar Flow_type.TInt in
  Alcotest.(check bool) "base mismatch" false (Flow_type.subset scalar_int scalar)

let test_paper_compatibility_direction () =
  (* "the output DPort's flow type must be a subset of the input DPort's
     flow type" — compatible means src subset dst. *)
  Alcotest.(check bool) "scalar output -> rich input" true
    (Flow_type.compatible ~src:scalar ~dst:rich);
  Alcotest.(check bool) "rich output -> scalar input rejected" false
    (Flow_type.compatible ~src:rich ~dst:scalar)

let test_union () =
  (match Flow_type.union scalar rich with
   | Ok u -> Alcotest.(check int) "union has 2 fields" 2 (Flow_type.arity u)
   | Error _ -> Alcotest.fail "compatible union");
  let clash = Flow_type.scalar Flow_type.TInt in
  (match Flow_type.union scalar clash with
   | Error field -> Alcotest.(check string) "clash on value" "value" field
   | Ok _ -> Alcotest.fail "clashing union must fail")

let test_vec_base () =
  let v3 = Flow_type.scalar (Flow_type.TVec 3) in
  let v4 = Flow_type.scalar (Flow_type.TVec 4) in
  Alcotest.(check bool) "vec lengths distinguish" false (Flow_type.subset v3 v4)

(* qcheck: subset is a partial order (reflexive + transitive on randomly
   built record types over a small field universe). *)
let flow_type_gen =
  let open QCheck.Gen in
  let field =
    oneofl [ ("a", Flow_type.TFloat); ("b", Flow_type.TInt);
             ("c", Flow_type.TBool); ("d", Flow_type.TFloat) ]
  in
  map
    (fun fields ->
       let unique =
         List.sort_uniq (fun (x, _) (y, _) -> String.compare x y) fields
       in
       Flow_type.record unique)
    (list_size (int_range 1 4) field)

let prop_subset_reflexive =
  QCheck.Test.make ~count:100 ~name:"flow-type subset is reflexive"
    (QCheck.make flow_type_gen)
    (fun t -> Flow_type.subset t t)

let prop_subset_transitive =
  QCheck.Test.make ~count:200 ~name:"flow-type subset is transitive"
    (QCheck.make (QCheck.Gen.triple flow_type_gen flow_type_gen flow_type_gen))
    (fun (a, b, c) ->
       (not (Flow_type.subset a b && Flow_type.subset b c)) || Flow_type.subset a c)

(* ---- values ---- *)

let test_value_conforms () =
  Alcotest.(check bool) "float conforms to scalar" true
    (Value.conforms (Value.Float 1.) scalar);
  Alcotest.(check bool) "int does not conform to float flow" false
    (Value.conforms (Value.Int 1) scalar);
  let v = Value.record [ ("value", Value.Float 1.); ("quality", Value.Int 3) ] in
  Alcotest.(check bool) "record conforms to rich" true (Value.conforms v rich);
  Alcotest.(check bool) "record conforms to scalar (width subtyping)" true
    (Value.conforms v scalar)

let test_value_normalize_projects () =
  let v = Value.record [ ("value", Value.Float 2.); ("quality", Value.Int 9) ] in
  match Value.normalize v scalar with
  | Some (Value.Record fields) ->
    Alcotest.(check int) "projected to 1 field" 1 (List.length fields)
  | Some _ | None -> Alcotest.fail "normalization should project"

let test_value_to_float () =
  Alcotest.(check (option (float 0.))) "float" (Some 2.5) (Value.to_float (Value.Float 2.5));
  Alcotest.(check (option (float 0.))) "int" (Some 3.) (Value.to_float (Value.Int 3));
  Alcotest.(check (option (float 0.))) "bool" (Some 1.) (Value.to_float (Value.Bool true));
  Alcotest.(check (option (float 0.))) "unit" None (Value.to_float Value.Unit)

let test_value_printing () =
  Alcotest.(check string) "record syntax" "{a = 1; b = true}"
    (Value.to_string (Value.record [ ("a", Value.Int 1); ("b", Value.Bool true) ]))

(* ---- ports ---- *)

let test_port_register_semantics () =
  let p = Port.create ~name:"x" Port.In scalar in
  Alcotest.(check (option (float 0.))) "empty before write" None (Port.read_float p);
  Port.write p (Value.Float 1.);
  Port.write p (Value.Float 2.);
  Alcotest.(check (option (float 0.))) "latest value wins" (Some 2.)
    (Port.read_float p);
  Alcotest.(check int) "write count" 2 (Port.writes p)

let test_port_type_checked () =
  let p = Port.create ~name:"x" Port.In scalar in
  Alcotest.(check bool) "bad write raises" true
    (try
       Port.write p (Value.Int 1);
       false
     with Invalid_argument _ -> true)

(* ---- graphs ---- *)

let mk_source g name = Graph.add_node g ~name ~inputs:[] ~outputs:[ ("out", scalar) ]
let mk_sink g name = Graph.add_node g ~name ~inputs:[ ("in", scalar) ] ~outputs:[]

let test_graph_connect_and_propagate () =
  let g = Graph.create () in
  let src = mk_source g "src" in
  let dst = mk_sink g "dst" in
  Graph.connect_exn g ~src:(src, "out") ~dst:(dst, "in");
  (match Graph.output_port src "out" with
   | Some p -> Port.write p (Value.Float 7.)
   | None -> Alcotest.fail "port exists");
  ignore (Graph.propagate_from g src);
  (match Graph.input_port dst "in" with
   | Some p -> Alcotest.(check (option (float 0.))) "value moved" (Some 7.)
                 (Port.read_float p)
   | None -> Alcotest.fail "port exists")

let test_graph_rejects_type_mismatch () =
  let g = Graph.create () in
  let src = Graph.add_node g ~name:"src" ~inputs:[] ~outputs:[ ("out", rich) ] in
  let dst = mk_sink g "dst" in
  match Graph.connect g ~src:(src, "out") ~dst:(dst, "in") with
  | Error (Graph.Type_mismatch _) -> ()
  | Error e -> Alcotest.fail (Graph.error_to_string e)
  | Ok () -> Alcotest.fail "superset -> scalar must be rejected"

let test_graph_single_driver () =
  let g = Graph.create () in
  let a = mk_source g "a" in
  let b = mk_source g "b" in
  let dst = mk_sink g "dst" in
  Graph.connect_exn g ~src:(a, "out") ~dst:(dst, "in");
  match Graph.connect g ~src:(b, "out") ~dst:(dst, "in") with
  | Error (Graph.Input_already_driven _) -> ()
  | Error e -> Alcotest.fail (Graph.error_to_string e)
  | Ok () -> Alcotest.fail "two drivers must be rejected"

let test_graph_direction_checks () =
  let g = Graph.create () in
  let a = mk_source g "a" in
  let b = mk_sink g "b" in
  (match Graph.connect g ~src:(b, "in") ~dst:(a, "out") with
   | Error (Graph.Not_an_output _ | Graph.Unknown_port _) -> ()
   | Error e -> Alcotest.fail (Graph.error_to_string e)
   | Ok () -> Alcotest.fail "reversed connect must fail")

let test_relay_fanout_rule () =
  let g = Graph.create () in
  Alcotest.(check bool) "fanout 1 rejected (rule R3)" true
    (try
       ignore (Graph.add_relay g ~name:"r" scalar ~fanout:1);
       false
     with Invalid_argument _ -> true);
  let r = Graph.add_relay g ~name:"r2" scalar ~fanout:3 in
  Alcotest.(check int) "three outputs" 3 (List.length (Graph.output_ports r));
  Alcotest.(check bool) "is relay" true (Graph.is_relay r)

let test_relay_copies () =
  let g = Graph.create () in
  let src = mk_source g "src" in
  let r = Graph.add_relay g ~name:"r" scalar ~fanout:2 in
  let s1 = mk_sink g "s1" in
  let s2 = mk_sink g "s2" in
  Graph.connect_exn g ~src:(src, "out") ~dst:(r, "in");
  Graph.connect_exn g ~src:(r, "out1") ~dst:(s1, "in");
  Graph.connect_exn g ~src:(r, "out2") ~dst:(s2, "in");
  (match Graph.output_port src "out" with
   | Some p -> Port.write p (Value.Float 3.5)
   | None -> Alcotest.fail "port");
  ignore (Graph.propagate_from g src);
  let read node =
    match Graph.input_port node "in" with
    | Some p -> Port.read_float p
    | None -> None
  in
  Alcotest.(check (option (float 0.))) "branch 1" (Some 3.5) (read s1);
  Alcotest.(check (option (float 0.))) "branch 2" (Some 3.5) (read s2)

let test_topo_order () =
  let g = Graph.create () in
  let a = mk_source g "a" in
  let b = Graph.add_node g ~name:"b" ~inputs:[ ("in", scalar) ]
      ~outputs:[ ("out", scalar) ] in
  let c = mk_sink g "c" in
  Graph.connect_exn g ~src:(a, "out") ~dst:(b, "in");
  Graph.connect_exn g ~src:(b, "out") ~dst:(c, "in");
  match Graph.topo_order g with
  | Ok order ->
    Alcotest.(check (list string)) "a before b before c" [ "a"; "b"; "c" ]
      (List.map Graph.node_name order)
  | Error _ -> Alcotest.fail "acyclic"

let test_cycle_detected () =
  let g = Graph.create () in
  let a = Graph.add_node g ~name:"a" ~inputs:[ ("in", scalar) ]
      ~outputs:[ ("out", scalar) ] in
  let b = Graph.add_node g ~name:"b" ~inputs:[ ("in", scalar) ]
      ~outputs:[ ("out", scalar) ] in
  Graph.connect_exn g ~src:(a, "out") ~dst:(b, "in");
  Graph.connect_exn g ~src:(b, "out") ~dst:(a, "in");
  match Graph.topo_order g with
  | Error names ->
    Alcotest.(check (list string)) "both in cycle" [ "a"; "b" ]
      (List.sort String.compare names)
  | Ok _ -> Alcotest.fail "cycle must be reported"

let test_unconnected_inputs () =
  let g = Graph.create () in
  let _ = mk_sink g "lonely" in
  Alcotest.(check (list (pair string string))) "reported"
    [ ("lonely", "in") ] (Graph.unconnected_inputs g)

let test_unconnected_outputs () =
  (* Dual of unconnected_inputs: a connected src/dst pair contributes
     nothing, the lonely source's output is reported. *)
  let g = Graph.create () in
  let src = mk_source g "src" in
  let dst = mk_sink g "dst" in
  let _ = mk_source g "lonely" in
  Graph.connect_exn g ~src:(src, "out") ~dst:(dst, "in");
  Alcotest.(check (list (pair string string))) "reported"
    [ ("lonely", "out") ] (Graph.unconnected_outputs g)

let suite =
  [ Alcotest.test_case "flow types: sorted, unique" `Quick test_record_sorted_and_unique;
    Alcotest.test_case "flow types: subset relation" `Quick test_subset_relation;
    Alcotest.test_case "flow types: paper rule direction" `Quick
      test_paper_compatibility_direction;
    Alcotest.test_case "flow types: union" `Quick test_union;
    Alcotest.test_case "flow types: vec lengths" `Quick test_vec_base;
    QCheck_alcotest.to_alcotest prop_subset_reflexive;
    QCheck_alcotest.to_alcotest prop_subset_transitive;
    Alcotest.test_case "values: conformance" `Quick test_value_conforms;
    Alcotest.test_case "values: normalization projects" `Quick test_value_normalize_projects;
    Alcotest.test_case "values: numeric view" `Quick test_value_to_float;
    Alcotest.test_case "values: printing" `Quick test_value_printing;
    Alcotest.test_case "ports: register semantics" `Quick test_port_register_semantics;
    Alcotest.test_case "ports: type checking" `Quick test_port_type_checked;
    Alcotest.test_case "graph: connect and propagate" `Quick test_graph_connect_and_propagate;
    Alcotest.test_case "graph: type mismatch rejected" `Quick test_graph_rejects_type_mismatch;
    Alcotest.test_case "graph: single driver per input" `Quick test_graph_single_driver;
    Alcotest.test_case "graph: direction checks" `Quick test_graph_direction_checks;
    Alcotest.test_case "relay: fanout rule R3" `Quick test_relay_fanout_rule;
    Alcotest.test_case "relay: duplicates flows" `Quick test_relay_copies;
    Alcotest.test_case "graph: topological order" `Quick test_topo_order;
    Alcotest.test_case "graph: cycle detection" `Quick test_cycle_detected;
    Alcotest.test_case "graph: unconnected inputs" `Quick test_unconnected_inputs;
    Alcotest.test_case "graph: unconnected outputs" `Quick test_unconnected_outputs ]

let test_junction_pass_through () =
  let g = Graph.create () in
  let src = mk_source g "src" in
  let j = Graph.add_junction g ~name:"j" scalar in
  let dst = mk_sink g "dst" in
  Graph.connect_exn g ~src:(src, "out") ~dst:(j, "in");
  Graph.connect_exn g ~src:(j, "out1") ~dst:(dst, "in");
  (match Graph.output_port src "out" with
   | Some p -> Port.write p (Value.Float 9.)
   | None -> Alcotest.fail "port");
  ignore (Graph.propagate_from g src);
  (match Graph.input_port dst "in" with
   | Some p ->
     Alcotest.(check (option (float 0.))) "value passes through" (Some 9.)
       (Port.read_float p)
   | None -> Alcotest.fail "port");
  Alcotest.(check bool) "junction is relay-like" true (Graph.is_relay j)

let junction_suite =
  [ Alcotest.test_case "junction: 1-in/1-out pass-through" `Quick
      test_junction_pass_through ]

let suite = suite @ junction_suite

(* ---- compiled routing plan: differential + invalidation ---- *)

(* The compiled plan (propagate_from) must be observationally identical
   to the original list-walk (propagate_from_reference). We build the
   same randomized relay/sink topology twice, push identical writes
   through each twin with a different propagation engine, and compare
   every port's value and write count plus the returned write totals. *)

type route_spec = {
  rs_chain : int;          (* relays chained after the source *)
  rs_fan : int;            (* fan-out of each chained relay *)
  rs_sinks : int;          (* plain sinks on the chain tail *)
  rs_rich : bool;          (* rich record flow type (slow route) *)
  rs_values : float list;  (* successive samples *)
}

let route_spec_gen =
  let open QCheck.Gen in
  map
    (fun ((chain, fan, sinks), (rich_flow, raw)) ->
       { rs_chain = chain; rs_fan = fan; rs_sinks = sinks;
         rs_rich = rich_flow;
         rs_values = List.map (fun i -> float_of_int i /. 7.) raw })
    (pair
       (triple (int_range 0 2) (int_range 2 3) (int_range 1 3))
       (pair bool (list_size (int_range 1 4) (int_range (-50) 50))))

let build_route_graph spec =
  let fty = if spec.rs_rich then rich else scalar in
  let g = Graph.create () in
  let src = Graph.add_node g ~name:"src" ~inputs:[] ~outputs:[ ("out", fty) ] in
  let add_sink name ty =
    ignore (Graph.add_node g ~name ~inputs:[ ("in", ty) ] ~outputs:[])
  in
  let tail = ref (src, "out") in
  for i = 1 to spec.rs_chain do
    let r =
      Graph.add_relay g ~name:(Printf.sprintf "r%d" i) fty ~fanout:spec.rs_fan
    in
    Graph.connect_exn g ~src:!tail ~dst:(r, "in");
    for leg = 2 to spec.rs_fan do
      let name = Printf.sprintf "s%d_%d" i leg in
      add_sink name fty;
      let s = Option.get (Graph.find_node g name) in
      Graph.connect_exn g ~src:(r, Printf.sprintf "out%d" leg) ~dst:(s, "in")
    done;
    tail := (r, "out1")
  done;
  for k = 1 to spec.rs_sinks do
    let name = Printf.sprintf "t%d" k in
    add_sink name fty;
    let s = Option.get (Graph.find_node g name) in
    Graph.connect_exn g ~src:!tail ~dst:(s, "in")
  done;
  (g, src)

let route_value spec v =
  if spec.rs_rich then
    Value.record [ ("value", Value.float v); ("quality", Value.int 1) ]
  else Value.float v

(* All ports of the graph in construction order: (value, write count). *)
let port_snapshot g =
  Graph.nodes g
  |> List.concat_map (fun n -> Graph.input_ports n @ Graph.output_ports n)
  |> List.map (fun p -> (Port.read p, Port.writes p))

let prop_compiled_matches_reference =
  QCheck.Test.make ~count:200
    ~name:"compiled routing plan matches reference propagation"
    (QCheck.make route_spec_gen)
    (fun spec ->
       let g_fast, src_fast = build_route_graph spec in
       let g_ref, src_ref = build_route_graph spec in
       let out_fast = Option.get (Graph.output_port src_fast "out") in
       let out_ref = Option.get (Graph.output_port src_ref "out") in
       List.for_all
         (fun v ->
            Port.write out_fast (route_value spec v);
            Port.write out_ref (route_value spec v);
            let n_fast = Graph.propagate_from g_fast src_fast in
            let n_ref = Graph.propagate_from_reference g_ref src_ref in
            n_fast = n_ref
            && List.for_all2
                 (fun (va, wa) (vb, wb) ->
                    wa = wb
                    && (match (va, vb) with
                        | None, None -> true
                        | Some a, Some b -> Value.equal a b
                        | _ -> false))
                 (port_snapshot g_fast) (port_snapshot g_ref))
         spec.rs_values)

(* connect after a propagation must invalidate the cached plan: the
   freshly attached sink sees the next sample. *)
let test_plan_invalidated_on_connect () =
  let g = Graph.create () in
  let src = Graph.add_node g ~name:"src" ~inputs:[]
      ~outputs:[ ("out", scalar) ] in
  let s1 = Graph.add_node g ~name:"s1" ~inputs:[ ("in", scalar) ]
      ~outputs:[] in
  Graph.connect_exn g ~src:(src, "out") ~dst:(s1, "in");
  let out = Option.get (Graph.output_port src "out") in
  Port.write out (Value.float 1.);
  Alcotest.(check int) "one write before rewire" 1 (Graph.propagate_from g src);
  let s2 = Graph.add_node g ~name:"s2" ~inputs:[ ("in", scalar) ]
      ~outputs:[] in
  Graph.connect_exn g ~src:(src, "out") ~dst:(s2, "in");
  Port.write out (Value.float 2.);
  Alcotest.(check int) "two writes after rewire" 2 (Graph.propagate_from g src);
  let p2 = Option.get (Graph.input_port s2 "in") in
  Alcotest.(check (float 0.)) "new sink got the fresh sample" 2.
    (Port.read_float_default p2 nan)

let test_find_node () =
  let g = Graph.create () in
  let a = Graph.add_node g ~name:"a" ~inputs:[] ~outputs:[ ("out", scalar) ] in
  Alcotest.(check bool) "found" true
    (match Graph.find_node g "a" with Some n -> n == a | None -> false);
  Alcotest.(check bool) "missing" true (Graph.find_node g "zz" = None)

let routing_suite =
  [ QCheck_alcotest.to_alcotest prop_compiled_matches_reference;
    Alcotest.test_case "plan invalidated by connect" `Quick
      test_plan_invalidated_on_connect;
    Alcotest.test_case "find_node" `Quick test_find_node ]

let suite = suite @ routing_suite
