(* Causality layer tests: cause-ID minting and propagation through the
   DES queue, the always-on flight recorder, and the post-mortem crash
   report — including the acceptance chain that must span DES dispatch,
   capsule RTC, SPort signal, solver reaction and DPort flow write. *)

let reset_obs () =
  Obs.Causal.reset ();
  Obs.Flightrec.clear ();
  Obs.Crash_report.reset ();
  Obs.Crash_report.set_dir None

(* ---- Causal minting and propagation ---- *)

let test_dispatch_mints_roots () =
  reset_obs ();
  let engine = Des.Engine.create () in
  let seen = ref [] in
  let observe () = seen := Obs.Causal.current () :: !seen in
  ignore (Des.Engine.schedule_at engine ~time:1. observe);
  ignore (Des.Engine.schedule_at engine ~time:2. observe);
  ignore (Des.Engine.run_until engine 3.);
  (match List.rev !seen with
   | [ a; b ] ->
     Alcotest.(check bool) "both dispatches carry a cause" true
       (a <> Obs.Causal.none && b <> Obs.Causal.none);
     Alcotest.(check bool) "externally posted events are distinct roots" true
       (a <> b)
   | _ -> Alcotest.fail "expected two dispatches");
  Alcotest.(check int) "no ambient cause between dispatches"
    Obs.Causal.none (Obs.Causal.current ())

let test_scheduled_work_inherits_chain () =
  reset_obs ();
  let engine = Des.Engine.create () in
  let root_cause = ref Obs.Causal.none in
  let child_cause = ref Obs.Causal.none in
  let grandchild_cause = ref Obs.Causal.none in
  ignore
    (Des.Engine.schedule_at engine ~time:1. (fun () ->
         root_cause := Obs.Causal.current ();
         ignore
           (Des.Engine.schedule_at engine ~time:2. (fun () ->
                child_cause := Obs.Causal.current ();
                ignore
                  (Des.Engine.schedule_at engine ~time:3. (fun () ->
                       grandchild_cause := Obs.Causal.current ()))))));
  ignore (Des.Engine.run_until engine 4.);
  Alcotest.(check bool) "root minted" true (!root_cause <> Obs.Causal.none);
  Alcotest.(check int) "work scheduled during a dispatch inherits its chain"
    !root_cause !child_cause;
  Alcotest.(check int) "inheritance crosses any number of hops"
    !root_cause !grandchild_cause

let test_periodic_releases_are_fresh_roots () =
  reset_obs ();
  let engine = Des.Engine.create () in
  let causes = ref [] in
  ignore
    (Des.Timer.periodic engine ~period:1. (fun _i ->
         causes := Obs.Causal.current () :: !causes));
  ignore (Des.Engine.run_until engine 3.5);
  let cs = List.rev !causes in
  Alcotest.(check int) "three releases" 3 (List.length cs);
  Alcotest.(check bool) "every release carries a cause" true
    (List.for_all (fun c -> c <> Obs.Causal.none) cs);
  Alcotest.(check int) "each release is its own root"
    3 (List.length (List.sort_uniq compare cs))

(* ---- Flight recorder ---- *)

let test_flightrec_records_and_wraps () =
  reset_obs ();
  let who = Obs.Flightrec.intern "who" in
  let n = Obs.Flightrec.capacity + 5 in
  for i = 1 to n do
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_tick ~a:who
      ~b:Obs.Flightrec.no_label ~sim:(float_of_int i)
  done;
  Alcotest.(check int) "ring holds capacity"
    Obs.Flightrec.capacity (Obs.Flightrec.length ());
  Alcotest.(check int) "total counts every record" n (Obs.Flightrec.total ());
  (match Obs.Flightrec.entries () with
   | oldest :: _ ->
     Alcotest.(check (float 0.)) "oldest surviving entry first"
       6. oldest.Obs.Flightrec.e_sim;
     Alcotest.(check string) "label survives interning"
       "who" oldest.Obs.Flightrec.e_a
   | [] -> Alcotest.fail "empty window");
  let dropped =
    Option.bind (Obs.Json.member "dropped" (Obs.Flightrec.to_json ()))
      (function Obs.Json.Int i -> Some i | _ -> None)
  in
  Alcotest.(check (option int)) "json window reports exact dropped"
    (Some 5) dropped;
  Obs.Flightrec.clear ();
  Alcotest.(check int) "clear empties" 0 (Obs.Flightrec.length ())

let test_flightrec_record_is_alloc_free () =
  reset_obs ();
  Obs.Flightrec.set_enabled true;
  let who = Obs.Flightrec.intern "alloc_probe" in
  let record () =
    for _ = 1 to 100 do
      Obs.Flightrec.record ~kind:Obs.Flightrec.k_dispatch ~a:who
        ~b:Obs.Flightrec.no_label ~sim:0.5
    done
  in
  record ();
  record ();
  let before = Gc.minor_words () in
  record ();
  let words = Gc.minor_words () -. before in
  Alcotest.(check (float 0.)) "recording allocates nothing" 0. words

(* ---- The acceptance chain: a crash report spanning all five hops ---- *)

(* Cruise-control fixture with a vengeful driver: when the streamer
   signals at_speed, the capsule replies with a "poison" signal whose
   strategy handler corrupts the solver state to NaN. The post-handle
   finiteness check then escalates *during the delivery*, so the report's
   causal chain runs from the timer dispatch that produced the crossing
   all the way to the fault — crossing DES, UML-RT, signal and dataflow
   layers in one chain. *)
let poisoned_cruise () =
  let protocol =
    Umlrt.Protocol.create "Cruise"
      ~incoming:
        [ Umlrt.Protocol.signal ~payload:Dataflow.Flow_type.float_flow
            "set_speed";
          Umlrt.Protocol.signal "poison" ]
      ~outgoing:[ Umlrt.Protocol.signal "at_speed" ]
  in
  let vehicle =
    Hybrid.Streamer.leaf "vehicle" ~rate:0.05 ~dim:1 ~init:[| 0. |]
      ~dports:
        [ Hybrid.Streamer.dport_in "force"; Hybrid.Streamer.dport_out "speed" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "speed") ])
      ~rhs:(fun (env : Hybrid.Solver.env) _t y ->
          [| (env.Hybrid.Solver.input "force" -. (0.5 *. y.(0))) /. 10. |])
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"set_speed"
    (Hybrid.Strategy.set_param_from_payload "ref");
  Hybrid.Strategy.on strategy ~signal:"poison" (fun ctl _event ->
      ctl.Hybrid.Strategy.set_state [| Float.nan |]);
  let cruise =
    Hybrid.Streamer.leaf "cruise" ~rate:0.05 ~dim:1 ~init:[| 0. |]
      ~params:[ ("ref", 5.); ("kp", 8.); ("ki", 2.) ]
      ~dports:
        [ Hybrid.Streamer.dport_in "speed"; Hybrid.Streamer.dport_out "force" ]
      ~sports:[ Hybrid.Streamer.sport "cmd" protocol ]
      ~guards:
        [ { Hybrid.Streamer.guard_id = "at_speed"; signal = "at_speed";
            via_sport = "cmd"; direction = Ode.Events.Rising;
            expr =
              (fun (env : Hybrid.Solver.env) _t _y ->
                 0.2
                 -. Float.abs
                      (env.Hybrid.Solver.param "ref"
                       -. env.Hybrid.Solver.input "speed"));
            payload = None } ]
      ~strategy
      ~outputs:
        (Hybrid.Streamer.output_fn (fun (env : Hybrid.Solver.env) _t y ->
             let p = env.Hybrid.Solver.param in
             let err = p "ref" -. env.Hybrid.Solver.input "speed" in
             [ ("force",
                Dataflow.Value.Float ((p "kp" *. err) +. (p "ki" *. y.(0)))) ]))
      ~rhs:(fun (env : Hybrid.Solver.env) _t _y ->
          [| env.Hybrid.Solver.param "ref" -. env.Hybrid.Solver.input "speed" |])
  in
  let driver =
    Umlrt.Capsule.create "driver"
      ~ports:[ Umlrt.Capsule.port ~conjugated:true "cruise" protocol ]
      ~behavior:(fun (services : Umlrt.Capsule.services) ->
          { Umlrt.Capsule.on_start =
              (fun () ->
                 services.Umlrt.Capsule.send ~port:"cruise"
                   (Statechart.Event.make ~value:(Dataflow.Value.Float 5.)
                      "set_speed"));
            on_event =
              (fun ~port:_ event ->
                 if String.equal (Statechart.Event.signal event) "at_speed"
                 then
                   services.Umlrt.Capsule.send ~port:"cruise"
                     (Statechart.Event.make "poison");
                 true);
            configuration = (fun () -> []) })
  in
  let engine = Hybrid.Engine.create ~root:driver () in
  Hybrid.Engine.add_streamer engine ~role:"vehicle" vehicle;
  Hybrid.Engine.add_streamer engine ~role:"cruise" cruise;
  Hybrid.Engine.connect_flow_exn engine ~src:("vehicle", "speed")
    ~dst:("cruise", "speed");
  Hybrid.Engine.connect_flow_exn engine ~src:("cruise", "force")
    ~dst:("vehicle", "force");
  Hybrid.Engine.link_sport_exn engine ~role:"cruise" ~sport:"cmd"
    ~border_port:"cruise";
  engine

let with_crash_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "umh_causal_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Obs.Crash_report.set_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
        Obs.Crash_report.set_dir None;
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_crash_report_chain_spans_five_hops () =
  reset_obs ();
  with_crash_dir (fun _dir ->
      let engine = poisoned_cruise () in
      Hybrid.Engine.set_supervisor engine Fault.Supervisor.Escalate;
      let diverged =
        try
          Hybrid.Engine.run_until engine 10.;
          None
        with Hybrid.Engine.Diverged role -> Some role
      in
      Alcotest.(check (option string)) "poison escalates as divergence"
        (Some "cruise") diverged;
      let report_path =
        match Obs.Crash_report.last_report () with
        | Some p -> p
        | None -> Alcotest.fail "no crash report written"
      in
      let report = Obs.Json.of_string (read_file report_path) in
      Alcotest.(check bool) "schema tag" true
        (Obs.Json.member "schema" report
         = Some (Obs.Json.Str "umh-crash-report"));
      Alcotest.(check bool) "reason is divergence" true
        (Obs.Json.member "reason" report
         = Some (Obs.Json.Str "solver_divergence"));
      let hops =
        match
          Option.bind (Obs.Json.member "chain" report) (Obs.Json.member "hops")
        with
        | Some l -> Obs.Json.to_list l
        | None -> Alcotest.fail "report carries no causal chain"
      in
      let kinds =
        List.filter_map
          (fun hop ->
             Option.bind (Obs.Json.member "kind" hop) Obs.Json.string_value)
          hops
      in
      List.iter
        (fun required ->
           Alcotest.(check bool)
             (Printf.sprintf "chain reaches the %s hop (got: %s)" required
                (String.concat " -> " kinds))
             true
             (List.mem required kinds))
        [ "dispatch"; "rtc"; "signal_send"; "solver_advance"; "flow_write" ];
      Alcotest.(check bool) "the chain terminates in the fault" true
        (List.mem "fault" kinds);
      Alcotest.(check bool) "every hop carries a latency" true
        (List.for_all
           (fun hop ->
              match Obs.Json.member "latency_ns" hop with
              | Some (Obs.Json.Int ns) -> ns >= 0
              | _ -> false)
           hops);
      Alcotest.(check bool) "flight recorder window rides along" true
        (Option.bind (Obs.Json.member "flight_recorder" report)
           (Obs.Json.member "entries")
         <> None);
      Alcotest.(check bool) "context summarises the solver" true
        (Option.bind (Obs.Json.member "context" report)
           (Obs.Json.member "state_finite")
         = Some (Obs.Json.Bool false)));
  reset_obs ()

(* Without a crash dir the same run must escalate identically and write
   nothing — trigger is a load and a branch. *)
let test_no_crash_dir_writes_nothing () =
  reset_obs ();
  let engine = poisoned_cruise () in
  Hybrid.Engine.set_supervisor engine Fault.Supervisor.Escalate;
  (try Hybrid.Engine.run_until engine 10. with Hybrid.Engine.Diverged _ -> ());
  Alcotest.(check bool) "no report without a configured directory" true
    (Obs.Crash_report.last_report () = None);
  reset_obs ()

let suite =
  [ Alcotest.test_case "causal: dispatch mints roots" `Quick
      test_dispatch_mints_roots;
    Alcotest.test_case "causal: scheduled work inherits chain" `Quick
      test_scheduled_work_inherits_chain;
    Alcotest.test_case "causal: periodic releases are fresh roots" `Quick
      test_periodic_releases_are_fresh_roots;
    Alcotest.test_case "flightrec: record + wraparound" `Quick
      test_flightrec_records_and_wraps;
    Alcotest.test_case "flightrec: record is alloc-free" `Quick
      test_flightrec_record_is_alloc_free;
    Alcotest.test_case "crash report spans the five-hop chain" `Quick
      test_crash_report_chain_spans_five_hops;
    Alcotest.test_case "no crash dir, no report" `Quick
      test_no_crash_dir_writes_nothing ]
