(* The static timing / concurrency analysis layer: task extraction
   (rates, capsule timers, wcet resolution), the wcet table round trip,
   response-time verdicts, shard partitioning, and the zero-cost
   contract — analysis runs must not perturb simulation. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = Dsl.Typecheck.check (Dsl.Parser.parse (read_file path))

let check_source src =
  let checked = Dsl.Typecheck.check (Dsl.Parser.parse src) in
  Alcotest.(check bool) "model typechecks" true (Dsl.Typecheck.is_ok checked);
  checked

let report ?wcet path =
  let checked = load path in
  Alcotest.(check bool) (path ^ " typechecks") true
    (Dsl.Typecheck.is_ok checked);
  match Analysis.Report.run ?wcet ~file:path checked with
  | Some r -> r
  | None -> Alcotest.fail (path ^ ": no system section to analyze")

(* ---- task extraction ---- *)

(* One streamer with a declared budget, one without, and a capsule with
   two timers (the densest one sets the task period). *)
let extraction_src =
  {|
model Extraction
flowtype Sig { value: float }
protocol P { in poke; out hit; }
streamer Budgeted {
  rate 0.1;
  wcet 0.02;
  dport out y : Sig;
  init x = 0.0;
  eq x' = 1.0 - x;
  output y = x;
  guard hi : rising (x - 0.5) emits hit via ctl;
  sport ctl : P;
}
streamer Plain {
  rate 0.2;
  dport in u : Sig;
  init x = 0.0;
  eq x' = u - x;
}
capsule Ticker {
  port b : P conjugated;
  timer fast = 0.25;
  timer slow = 2.0;
  statemachine {
    initial Idle;
    state Idle { on hit -> Idle; on fast -> Idle; on slow -> Idle; }
  }
}
system {
  capsule tick : Ticker;
  streamer budgeted : Budgeted in tick;
  streamer plain : Plain in tick;
  flow budgeted.y -> plain.u;
  link budgeted.ctl -- tick.b;
}
|}

let test_extraction () =
  let checked = check_source extraction_src in
  let model =
    match Analysis.Model.of_checked checked with
    | Some m -> m
    | None -> Alcotest.fail "no flattened model"
  in
  let ts = Analysis.Taskset.extract model in
  Alcotest.(check int) "three tasks" 3 (List.length ts.Analysis.Taskset.tasks);
  (match Analysis.Taskset.find ts "budgeted" with
   | Some x ->
     Alcotest.(check bool) "declared source" true
       (x.Analysis.Taskset.source = Analysis.Taskset.Declared);
     Alcotest.(check (float 1e-9)) "declared wcet" 0.02
       x.Analysis.Taskset.task.Rt.Task.wcet
   | None -> Alcotest.fail "budgeted task missing");
  (match Analysis.Taskset.find ts "plain" with
   | Some x ->
     Alcotest.(check bool) "default source" true
       (x.Analysis.Taskset.source = Analysis.Taskset.Default);
     Alcotest.(check (float 1e-9)) "default wcet = 10% of period" 0.02
       x.Analysis.Taskset.task.Rt.Task.wcet
   | None -> Alcotest.fail "plain task missing");
  (match Analysis.Taskset.find ts "tick" with
   | Some x ->
     Alcotest.(check bool) "capsule kind" true
       (x.Analysis.Taskset.kind = Analysis.Taskset.Capsule);
     Alcotest.(check (float 1e-9)) "densest timer period" 0.25
       x.Analysis.Taskset.task.Rt.Task.period
   | None -> Alcotest.fail "capsule timer task missing");
  Alcotest.(check bool) "uses_default reported" true
    (Analysis.Taskset.uses_default ts)

(* A measured table overrides declared budgets, and an over-period
   budget is clamped with an issue recorded. *)
let test_wcet_resolution () =
  let checked = check_source extraction_src in
  let model = Option.get (Analysis.Model.of_checked checked) in
  let wcet =
    { Analysis.Wcet.model = None;
      entries =
        [ { Analysis.Wcet.entity = "budgeted"; kind = "streamer";
            wcet_s = 0.05; frames = 10 };
          { Analysis.Wcet.entity = "system/tick"; kind = "capsule";
            wcet_s = 0.5; frames = 3 } ] }
  in
  let ts = Analysis.Taskset.extract ~wcet model in
  (match Analysis.Taskset.find ts "budgeted" with
   | Some x ->
     Alcotest.(check bool) "measured beats declared" true
       (x.Analysis.Taskset.source = Analysis.Taskset.Measured);
     Alcotest.(check (float 1e-9)) "measured wcet" 0.05
       x.Analysis.Taskset.task.Rt.Task.wcet
   | None -> Alcotest.fail "budgeted task missing");
  (* tick's measurement (0.5s) exceeds its 0.25s timer period: clamped,
     and the overload surfaces as an issue. *)
  (match Analysis.Taskset.find ts "tick" with
   | Some x ->
     Alcotest.(check (float 1e-9)) "clamped to period" 0.25
       x.Analysis.Taskset.task.Rt.Task.wcet
   | None -> Alcotest.fail "tick task missing");
  Alcotest.(check int) "one budget issue" 1
    (List.length ts.Analysis.Taskset.issues)

(* ---- wcet table round trip ---- *)

let test_wcet_roundtrip () =
  let t =
    { Analysis.Wcet.model = Some "m.umh";
      entries =
        [ { Analysis.Wcet.entity = "chain.first"; kind = "streamer";
            wcet_s = 0.001; frames = 42 };
          { Analysis.Wcet.entity = "system/ctl"; kind = "capsule";
            wcet_s = 2e-4; frames = 7 } ] }
  in
  let json = Obs.Json.to_string (Analysis.Wcet.to_json t) in
  match Analysis.Wcet.of_string json with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check int) "entries survive" 2
      (List.length back.Analysis.Wcet.entries);
    Alcotest.(check (option (float 1e-12))) "exact lookup" (Some 0.001)
      (Analysis.Wcet.find back "chain.first");
    Alcotest.(check (option (float 1e-12)))
      "capsule found by path basename" (Some 2e-4)
      (Analysis.Wcet.find back "ctl");
    Alcotest.(check (option (float 1e-12))) "unknown entity" None
      (Analysis.Wcet.find back "nobody")

let test_wcet_rejects_garbage () =
  (match Analysis.Wcet.of_string "{\"schema\":\"umh-bench\"}" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong schema accepted");
  (match Analysis.Wcet.of_string "not json" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "garbage accepted");
  (* Non-positive and non-finite entries are dropped, not kept. *)
  match
    Analysis.Wcet.of_string
      {|{"schema":"umh-wcet","version":1,"entries":[
         {"entity":"a","wcet_s":0},
         {"entity":"b","wcet_s":-1.0},
         {"entity":"c","wcet_s":1e999},
         {"entity":"d","wcet_s":0.01}]}|}
  with
  | Error _ -> ()  (* the malformed float may fail the whole parse *)
  | Ok t ->
    Alcotest.(check (option (float 0.))) "only the sane entry survives"
      (Some 0.01)
      (Analysis.Wcet.find t "d");
    Alcotest.(check (option (float 0.))) "zero dropped" None
      (Analysis.Wcet.find t "a")

(* ---- response-time verdicts ---- *)

let mk_task name period wcet =
  { Analysis.Taskset.task = Rt.Task.create ~period ~wcet name;
    kind = Analysis.Taskset.Streamer;
    source = Analysis.Taskset.Declared;
    pos = { Dsl.Ast.line = 0; col = 0 } }

let test_rta_verdicts () =
  (* Harmonic pair at full utilization: RM schedulable, R2 exactly 2. *)
  let r =
    Analysis.Rta.analyze [ mk_task "hi" 1.0 0.5; mk_task "lo" 2.0 1.0 ]
  in
  Alcotest.(check bool) "rm ok at U=1 (harmonic)" true r.Analysis.Rta.rm_ok;
  Alcotest.(check bool) "edf ok at U=1" true r.Analysis.Rta.edf_ok;
  (match r.Analysis.Rta.verdicts with
   | [ v1; v2 ] ->
     Alcotest.(check int) "priority order" 0 v1.Analysis.Rta.v_priority;
     Alcotest.(check string) "shortest period first" "hi"
       v1.Analysis.Rta.v_task.Analysis.Taskset.task.Rt.Task.name;
     Alcotest.(check (float 1e-9)) "exact response" 2.0
       (Analysis.Rta.response_value v2.Analysis.Rta.v_response);
     Alcotest.(check (float 1e-9)) "zero slack" 0.0 v2.Analysis.Rta.v_slack
   | vs -> Alcotest.failf "expected 2 verdicts, got %d" (List.length vs));
  (* Overload: the low task's response converges past its deadline. *)
  let r = Analysis.Rta.analyze [ mk_task "a" 0.1 0.06; mk_task "b" 0.15 0.09 ] in
  Alcotest.(check bool) "rm miss" false r.Analysis.Rta.rm_ok;
  Alcotest.(check bool) "edf miss (U=1.2)" false r.Analysis.Rta.edf_ok;
  (match Analysis.Rta.misses r with
   | [ v ] ->
     Alcotest.(check string) "the low task misses" "b"
       v.Analysis.Rta.v_task.Analysis.Taskset.task.Rt.Task.name;
     Alcotest.(check (float 1e-9)) "concrete response past deadline" 0.27
       (Analysis.Rta.response_value v.Analysis.Rta.v_response)
   | vs -> Alcotest.failf "expected 1 miss, got %d" (List.length vs));
  (* Blocking term tightens the verdict. *)
  let free = Analysis.Rta.analyze [ mk_task "t" 1.0 0.6 ] in
  let blocked = Analysis.Rta.analyze ~blocking:0.5 [ mk_task "t" 1.0 0.6 ] in
  Alcotest.(check bool) "no blocking: fits" true free.Analysis.Rta.rm_ok;
  Alcotest.(check bool) "blocking pushes past deadline" false
    blocked.Analysis.Rta.rm_ok;
  (* Empty set is trivially fine. *)
  let empty = Analysis.Rta.analyze [] in
  Alcotest.(check bool) "empty rm" true empty.Analysis.Rta.rm_ok;
  Alcotest.(check bool) "empty edf" true empty.Analysis.Rta.edf_ok

(* ---- end-to-end reports over the committed models ---- *)

let test_unschedulable_model () =
  let r = report "models/unschedulable.umh" in
  Alcotest.(check bool) "not schedulable" false
    (Analysis.Report.schedulable r);
  (match r.Analysis.Report.shard.Analysis.Shard.forced_groups with
   | [ g ] -> Alcotest.(check int) "whole loop in one group" 3 (List.length g)
   | gs -> Alcotest.failf "expected 1 forced group, got %d" (List.length gs));
  (match Analysis.Report.deadline_misses r with
   | [ v ] ->
     Alcotest.(check string) "slow streamer misses" "slow"
       v.Analysis.Rta.v_task.Analysis.Taskset.task.Rt.Task.name;
     Alcotest.(check (float 1e-9)) "response 0.27s vs 0.15s deadline" 0.27
       (Analysis.Rta.response_value v.Analysis.Rta.v_response)
   | vs -> Alcotest.failf "expected 1 miss, got %d" (List.length vs));
  Alcotest.(check int) "gov hears both streamers" 1
    (List.length r.Analysis.Report.shard.Analysis.Shard.interleavings)

let test_racy_model () =
  let r = report "models/racy_shard.umh" in
  Alcotest.(check bool) "schedulable (races are a liveness issue)" true
    (Analysis.Report.schedulable r);
  match r.Analysis.Report.shard.Analysis.Shard.races with
  | [ race ] ->
    Alcotest.(check string) "the plant param races" "gain"
      race.Analysis.Shard.race_param;
    Alcotest.(check (list string)) "both writers named" [ "down"; "up" ]
      (List.sort String.compare race.Analysis.Shard.race_senders)
  | races -> Alcotest.failf "expected 1 race, got %d" (List.length races)

let test_measured_wcet_flips_verdict () =
  let path = "../examples/models/water_tank.umh" in
  let before = report path in
  Alcotest.(check bool) "default model: schedulable" true
    (Analysis.Report.schedulable before);
  let wcet =
    match Analysis.Wcet.of_file "wcet/water_tank_slow.json" with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let after = report ~wcet path in
  Alcotest.(check bool) "slow measurement: not schedulable" false
    (Analysis.Report.schedulable after);
  Alcotest.(check int) "tank budget >= period reported" 1
    (List.length after.Analysis.Report.taskset.Analysis.Taskset.issues)

let test_partition () =
  let r = report "../examples/models/e3_grid.umh" in
  let shard = r.Analysis.Report.shard in
  Alcotest.(check bool) "multiple shards" true
    (List.length shard.Analysis.Shard.shards >= 2);
  Alcotest.(check bool) "every shard feasible" true
    (Analysis.Shard.all_feasible shard);
  (* The forced pair always lands in one shard. *)
  let shard_of name =
    List.find_map
      (fun (s : Analysis.Shard.shard) ->
         if
           List.exists
             (fun n -> String.equal (Analysis.Shard.node_name n) name)
             s.Analysis.Shard.members
         then Some s.Analysis.Shard.shard_id
         else None)
      shard.Analysis.Shard.shards
  in
  Alcotest.(check bool) "mon and bal colocated" true
    (shard_of "mon" = shard_of "bal" && shard_of "mon" <> None);
  (* Members partition the node set: no duplicates, nothing dropped. *)
  let members =
    List.concat_map
      (fun (s : Analysis.Shard.shard) ->
         List.map Analysis.Shard.node_name s.Analysis.Shard.members)
      shard.Analysis.Shard.shards
  in
  Alcotest.(check int) "all nodes placed exactly once"
    (List.length shard.Analysis.Shard.nodes)
    (List.length (List.sort_uniq String.compare members));
  (* Cross edges never leave a forced group. *)
  List.iter
    (fun (e : Analysis.Shard.edge) ->
       List.iter
         (fun g ->
            let mem n = List.mem n g in
            if mem e.Analysis.Shard.e_src then
              Alcotest.(check bool) "group not split by the partition" true
                (mem e.Analysis.Shard.e_dst
                 || not (mem e.Analysis.Shard.e_src)))
         shard.Analysis.Shard.forced_groups)
    shard.Analysis.Shard.cross_edges;
  let json = Analysis.Report.partition_json r in
  match Obs.Json.member "schema" json with
  | Some (Obs.Json.Str s) ->
    Alcotest.(check string) "partition schema tag" "umh-partition" s
  | _ -> Alcotest.fail "partition json missing schema"

let test_analysis_json () =
  let r = report "models/unschedulable.umh" in
  let json =
    Obs.Json.of_string (Obs.Json.to_string (Analysis.Report.to_json r))
  in
  (match Obs.Json.member "schedulable" json with
   | Some (Obs.Json.Bool false) -> ()
   | _ -> Alcotest.fail "schedulable flag wrong or missing");
  match Obs.Json.member "shards" json with
  | Some (Obs.Json.List [ s ]) ->
    (match Obs.Json.member "feasible" s with
     | Some (Obs.Json.Bool false) -> ()
     | _ -> Alcotest.fail "single shard must be infeasible")
  | _ -> Alcotest.fail "expected exactly one shard"

(* ---- zero-cost contract ---- *)

(* Running the full static analysis between two simulations must not
   change what the engine computes: same ticks, bit-identical states. *)
let test_simulation_unperturbed () =
  let path = "../examples/models/water_tank.umh" in
  let run () =
    let checked = load path in
    let { Dsl.Elaborate.engine; streamer_roles; _ } =
      Dsl.Elaborate.elaborate checked
    in
    Hybrid.Engine.run_until engine 5.0;
    List.map
      (fun role ->
         ( role,
           Hybrid.Engine.ticks_of engine role,
           match Hybrid.Engine.solver_of engine role with
           | Some s -> Array.copy (Hybrid.Solver.state s)
           | None -> [||] ))
      streamer_roles
  in
  let before = run () in
  ignore (report path);
  ignore (report ~wcet:Analysis.Wcet.empty path);
  let after = run () in
  List.iter2
    (fun (role, t1, s1) (role', t2, s2) ->
       Alcotest.(check string) "same role order" role role';
       Alcotest.(check int) (role ^ " ticks identical") t1 t2;
       Alcotest.(check bool) (role ^ " state bit-identical") true
         (Array.for_all2 (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) s1 s2))
    before after

let suite =
  [ Alcotest.test_case "taskset: rates, timers, budgets" `Quick
      test_extraction;
    Alcotest.test_case "taskset: measured > declared, clamping" `Quick
      test_wcet_resolution;
    Alcotest.test_case "wcet: json round trip + basename lookup" `Quick
      test_wcet_roundtrip;
    Alcotest.test_case "wcet: malformed tables rejected" `Quick
      test_wcet_rejects_garbage;
    Alcotest.test_case "rta: exact responses, blocking, overload" `Quick
      test_rta_verdicts;
    Alcotest.test_case "report: seeded unschedulable model" `Quick
      test_unschedulable_model;
    Alcotest.test_case "report: seeded racy model" `Quick test_racy_model;
    Alcotest.test_case "report: measured wcet flips the verdict" `Quick
      test_measured_wcet_flips_verdict;
    Alcotest.test_case "shard: e3 partition is sound" `Quick test_partition;
    Alcotest.test_case "report: analysis json shape" `Quick
      test_analysis_json;
    Alcotest.test_case "zero-cost: simulation unperturbed" `Quick
      test_simulation_unperturbed ]
