(* Core library unit tests beyond the engine integration suite:
   Time service, stereotype registry, rule checkers, thread assignment,
   the solver in isolation, and engine edge cases (latency models,
   environment outbox, alternative integration methods). *)

let check_float tol = Alcotest.(check (float tol))

(* ---- Time service (R8) ---- *)

let test_time_service_affine () =
  let des = Des.Engine.create () in
  let clock = Hybrid.Time_service.create ~scale:2. ~offset:1. des in
  check_float 1e-12 "at t=0" 1. (Hybrid.Time_service.now clock);
  ignore (Des.Engine.run_until des 5.);
  check_float 1e-12 "at t=5" 11. (Hybrid.Time_service.now clock);
  check_float 1e-12 "inverse" 5. (Hybrid.Time_service.to_engine_time clock 11.)

let test_time_service_derived () =
  let des = Des.Engine.create () in
  let base = Hybrid.Time_service.create des in
  let local = Hybrid.Time_service.derived base ~scale:10. ~offset:3. in
  ignore (Des.Engine.run_until des 2.);
  check_float 1e-12 "derived clock" 23. (Hybrid.Time_service.now local)

let test_time_service_wait_until () =
  let des = Des.Engine.create () in
  let clock = Hybrid.Time_service.create ~scale:2. des in
  let fired_at = ref (-1.) in
  Hybrid.Time_service.wait_until clock 6. (fun () -> fired_at := Des.Engine.now des);
  ignore (Des.Engine.run_until des 10.);
  check_float 1e-12 "local 6 = engine 3" 3. !fired_at

let test_time_service_validation () =
  let des = Des.Engine.create () in
  Alcotest.(check bool) "zero scale rejected" true
    (try ignore (Hybrid.Time_service.create ~scale:0. des); false
     with Invalid_argument _ -> true)

(* ---- stereotype registry (Table 1) ---- *)

let test_stereotype_registry () =
  Alcotest.(check int) "nine names" 9 (List.length Hybrid.Stereotype.all);
  Alcotest.(check int) "paper count" 8 Hybrid.Stereotype.paper_count;
  Alcotest.(check int) "six merged rows" 6 (List.length (Hybrid.Stereotype.table1 ()));
  List.iter
    (fun st ->
       Alcotest.(check bool)
         (Hybrid.Stereotype.name st ^ " roundtrips")
         true
         (Hybrid.Stereotype.of_name (Hybrid.Stereotype.name st) = Some st);
       Alcotest.(check bool) "has module" true
         (String.length (Hybrid.Stereotype.implementing_module st) > 0))
    Hybrid.Stereotype.all;
  Alcotest.(check (option reject)) "unknown name" None
    (Option.map ignore (Hybrid.Stereotype.of_name "nonsense"))

let test_table1_matches_paper () =
  Alcotest.(check (list (pair string string))) "exact paper rows"
    [ ("capsule", "streamer");
      ("port", "DPort, SPort");
      ("connect", "flow, relay");
      ("protocol", "flow type");
      ("state machine, state", "solver, strategy");
      ("Time service", "Time") ]
    (Hybrid.Stereotype.table1 ())

(* ---- rule checkers ---- *)

let test_check_rule_catalogue () =
  Alcotest.(check int) "eight rules" 8 (List.length Hybrid.Check.rules);
  List.iteri
    (fun i rule ->
       Alcotest.(check string)
         (Printf.sprintf "rule id %d" (i + 1))
         (Printf.sprintf "R%d" (i + 1))
         rule.Hybrid.Check.id)
    Hybrid.Check.rules;
  Alcotest.(check bool) "lookup" true (Hybrid.Check.find_rule "R5" <> None);
  Alcotest.(check bool) "unknown" true (Hybrid.Check.find_rule "R9" = None)

let test_check_capsule_dports () =
  let flow_proto = Hybrid.Check.flow_protocol Dataflow.Flow_type.float_flow in
  let bad =
    Umlrt.Capsule.create "C"
      ~behavior:(fun _ ->
          { Umlrt.Capsule.on_start = (fun () -> ());
            on_event = (fun ~port:_ _ -> true);
            configuration = (fun () -> []) })
      ~ports:[ Umlrt.Capsule.port "d" flow_proto ]
  in
  (match Hybrid.Check.capsule_dport_errors bad with
   | [ msg ] ->
     Alcotest.(check bool) "mentions R5" true
       (String.length msg > 2 && String.equal (String.sub msg 0 2) "R5")
   | other -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length other)));
  (* Nested parts are checked recursively. *)
  let nested =
    Umlrt.Capsule.create "Outer" ~parts:[ ("inner", bad) ]
  in
  Alcotest.(check int) "recursive check" 1
    (List.length (Hybrid.Check.capsule_dport_errors nested))

(* ---- threading ---- *)

let test_threading_tasks () =
  let tasks =
    Hybrid.Threading.tasks_for
      ~event_task:(Rt.Task.create ~period:0.005 ~wcet:0.0005 "events")
      ~wcet_of:(fun _ period -> period /. 20.)
      [ ("a", 0.01); ("b", 0.002) ]
  in
  Alcotest.(check int) "event + 2 streamers" 3 (List.length tasks);
  check_float 1e-12 "wcet model applied" 0.0005
    (List.find (fun t -> t.Rt.Task.name = "a") tasks).Rt.Task.wcet

let test_threading_analyze_consistency () =
  let tasks =
    Hybrid.Threading.tasks_for ~wcet_of:(fun _ p -> 0.05 *. p)
      [ ("a", 0.01); ("b", 0.004); ("c", 0.001) ]
  in
  let r = Hybrid.Threading.analyze tasks in
  check_float 1e-9 "utilization" 0.15 r.Hybrid.Threading.utilization;
  Alcotest.(check bool) "RM exact ok" true r.Hybrid.Threading.rm_exact;
  Alcotest.(check int) "no simulated misses" 0 r.Hybrid.Threading.simulated_misses_rm;
  Alcotest.(check bool) "breakdown > 1" true (r.Hybrid.Threading.breakdown > 1.)

(* ---- solver in isolation ---- *)

let make_solver ?method_ () =
  let clock = Hybrid.Time_service.create (Des.Engine.create ()) in
  Hybrid.Solver.create ?method_ ~dim:1 ~init:[| 1. |]
    ~params:[ ("k", 1.) ] ~input:(fun _ -> 0.) ~clock ~t0:0.
    (fun env _t y -> [| -.(env.Hybrid.Solver.param "k") *. y.(0) |])

let test_solver_advance_and_params () =
  let s = make_solver () in
  Hybrid.Solver.advance s ~until:1. ~guards:[] ~on_crossing:(fun _ -> ());
  Alcotest.(check bool) "e^-1" true
    (Float.abs ((Hybrid.Solver.state s).(0) -. exp (-1.)) < 1e-6);
  (* Parameter change affects subsequent integration immediately. *)
  Hybrid.Solver.set_param s "k" 0.;
  Hybrid.Solver.advance s ~until:2. ~guards:[] ~on_crossing:(fun _ -> ());
  Alcotest.(check bool) "frozen after k=0" true
    (Float.abs ((Hybrid.Solver.state s).(0) -. exp (-1.)) < 1e-6)

let test_solver_unknown_param () =
  let s = make_solver () in
  Alcotest.(check bool) "unknown parameter raises" true
    (try ignore (Hybrid.Solver.get_param s "nope"); false with Failure _ -> true);
  (* set_param creates it. *)
  Hybrid.Solver.set_param s "nope" 3.;
  check_float 1e-12 "created" 3. (Hybrid.Solver.get_param s "nope")

let test_solver_set_rhs_preserves_state () =
  let s = make_solver () in
  Hybrid.Solver.advance s ~until:1. ~guards:[] ~on_crossing:(fun _ -> ());
  let before = (Hybrid.Solver.state s).(0) in
  Hybrid.Solver.set_rhs s (fun _ _ _ -> [| 1. |]);
  check_float 1e-12 "state preserved across rhs swap" before
    (Hybrid.Solver.state s).(0);
  Hybrid.Solver.advance s ~until:2. ~guards:[] ~on_crossing:(fun _ -> ());
  Alcotest.(check bool) "new dynamics active" true
    (Float.abs ((Hybrid.Solver.state s).(0) -. (before +. 1.)) < 1e-6)

let test_solver_guard_crossings_counted () =
  let s = make_solver () in
  let guards =
    [ { Hybrid.Solver.guard_name = "half"; direction = Ode.Events.Falling;
        expr = (fun _ _ y -> y.(0) -. 0.5) } ]
  in
  let times = ref [] in
  Hybrid.Solver.advance s ~until:2. ~guards
    ~on_crossing:(fun c -> times := c.Ode.Events.time :: !times);
  Alcotest.(check int) "one crossing" 1 (List.length !times);
  Alcotest.(check int) "counter" 1 (Hybrid.Solver.crossings_seen s);
  (match !times with
   | [ t ] ->
     Alcotest.(check bool)
       (Printf.sprintf "located at ln 2 (got %.6f)" t)
       true
       (Float.abs (t -. Float.log 2.) < 1e-6)
   | _ -> Alcotest.fail "one crossing")

let test_solver_adaptive_method () =
  let s =
    make_solver
      ~method_:(Ode.Integrator.Adaptive
                  (Ode.Adaptive.Dormand_prince,
                   { Ode.Adaptive.default_control with rtol = 1e-10; atol = 1e-12 }))
      ()
  in
  Hybrid.Solver.advance s ~until:2. ~guards:[] ~on_crossing:(fun _ -> ());
  Alcotest.(check bool) "adaptive accuracy" true
    (Float.abs ((Hybrid.Solver.state s).(0) -. exp (-2.)) < 1e-9)

let test_solver_implicit_method () =
  let s = make_solver ~method_:(Ode.Integrator.Implicit (`Backward_euler, 1e-3)) () in
  Hybrid.Solver.advance s ~until:1. ~guards:[] ~on_crossing:(fun _ -> ());
  Alcotest.(check bool) "implicit accuracy (order 1)" true
    (Float.abs ((Hybrid.Solver.state s).(0) -. exp (-1.)) < 1e-3)

(* ---- engine edge cases ---- *)

let simple_protocol =
  Umlrt.Protocol.create "Simple"
    ~incoming:[ Umlrt.Protocol.signal "poke" ]
    ~outgoing:[ Umlrt.Protocol.signal "report" ]

let reporting_streamer =
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"poke"
    (Hybrid.Strategy.reply ~sport:"sp" ~make:(fun control _ ->
         Statechart.Event.make
           ~value:(Dataflow.Value.Float (control.Hybrid.Strategy.now ()))
           "report"));
  Hybrid.Streamer.leaf "reporter" ~rate:0.1 ~dim:1 ~init:[| 0. |]
    ~sports:[ Hybrid.Streamer.sport "sp" simple_protocol ]
    ~strategy
    ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> []))
    ~rhs:(fun _ _ _ -> [| 0. |])

(* Root with a relay border port so signals pass in/out unchanged. *)
let relay_root =
  Umlrt.Capsule.create "shell"
    ~ports:
      [ Umlrt.Capsule.port ~kind:Umlrt.Capsule.Relay "hole" simple_protocol ]

let test_engine_outbox_for_unlinked () =
  (* A border message whose port is NOT linked to any streamer must land
     in the engine outbox (environment). *)
  let engine = Hybrid.Engine.create ~root:relay_root () in
  Hybrid.Engine.add_streamer engine ~role:"reporter" reporting_streamer;
  Hybrid.Engine.start engine;
  Hybrid.Engine.inject engine ~port:"hole" (Statechart.Event.make "poke");
  Hybrid.Engine.run_until engine 1.;
  (* hole is unconnected inside: resolves back to the environment. *)
  match Hybrid.Engine.drain_outbox engine with
  | [ (port, e) ] ->
    Alcotest.(check string) "came back out" "hole" port;
    Alcotest.(check string) "same signal" "poke" (Statechart.Event.signal e)
  | other -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length other))

let test_engine_signal_latency_model () =
  (* Signals to streamers pass through an Rt.Channel with the configured
     latency: the strategy observes engine time >= injection + latency. *)
  let engine =
    Hybrid.Engine.create ~signal_latency:(Rt.Channel.Constant 0.25)
      ~root:relay_root ()
  in
  Hybrid.Engine.add_streamer engine ~role:"reporter" reporting_streamer;
  Hybrid.Engine.link_sport_exn engine ~role:"reporter" ~sport:"sp"
    ~border_port:"hole";
  Hybrid.Engine.start engine;
  Hybrid.Engine.inject engine ~port:"hole" (Statechart.Event.make "poke");
  Hybrid.Engine.run_until engine 1.;
  (* The strategy replied with a report carrying its delivery time. *)
  match Hybrid.Engine.drain_outbox engine with
  | [ (_, e) ] ->
    (match Statechart.Event.float_payload e with
     | Some received_at ->
       Alcotest.(check bool)
         (Printf.sprintf "delivered after latency (%.3f)" received_at)
         true
         (received_at >= 0.25 -. 1e-9)
     | None -> Alcotest.fail "payload expected")
  | other -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length other))

let test_engine_rejects_duplicates_and_late_adds () =
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"s" reporting_streamer;
  Alcotest.(check bool) "duplicate role" true
    (try Hybrid.Engine.add_streamer engine ~role:"s" reporting_streamer; false
     with Invalid_argument _ -> true);
  Hybrid.Engine.start engine;
  Alcotest.(check bool) "add after start" true
    (try Hybrid.Engine.add_streamer engine ~role:"t" reporting_streamer; false
     with Invalid_argument _ -> true)

let test_engine_invalid_links_reported () =
  let engine = Hybrid.Engine.create ~root:relay_root () in
  Hybrid.Engine.add_streamer engine ~role:"reporter" reporting_streamer;
  (match Hybrid.Engine.link_sport engine ~role:"ghost" ~sport:"sp"
           ~border_port:"hole" with
   | Error msg -> Alcotest.(check bool) "unknown role" true (String.length msg > 0)
   | Ok () -> Alcotest.fail "unknown role accepted");
  (match Hybrid.Engine.link_sport engine ~role:"reporter" ~sport:"nope"
           ~border_port:"hole" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "unknown sport accepted");
  match Hybrid.Engine.connect_flow engine ~src:("reporter", "nope")
          ~dst:("reporter", "alsono") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown flow endpoints accepted"

let test_engine_guard_payload_api () =
  (* Guard payload carries a value computed from env + crossing state. *)
  let s =
    Hybrid.Streamer.leaf "ramp" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~sports:[ Hybrid.Streamer.sport "sp" simple_protocol ]
      ~guards:
        [ { Hybrid.Streamer.guard_id = "g"; signal = "report"; via_sport = "sp";
            direction = Ode.Events.Rising;
            expr = (fun _ _ y -> y.(0) -. 0.5);
            payload =
              Some (fun _env _t y -> Dataflow.Value.Float (y.(0) *. 10.)) } ]
      ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> []))
      ~rhs:(fun _ _ _ -> [| 1. |])
  in
  let engine = Hybrid.Engine.create ~root:relay_root () in
  Hybrid.Engine.add_streamer engine ~role:"ramp" s;
  Hybrid.Engine.link_sport_exn engine ~role:"ramp" ~sport:"sp" ~border_port:"hole";
  Hybrid.Engine.run_until engine 1.;
  match Hybrid.Engine.drain_outbox engine with
  | [ (_, e) ] ->
    (match Statechart.Event.float_payload e with
     | Some v ->
       Alcotest.(check bool)
         (Printf.sprintf "payload 10*x at crossing (got %g)" v)
         true
         (Float.abs (v -. 5.) < 0.01)
     | None -> Alcotest.fail "payload expected")
  | other -> Alcotest.fail (Printf.sprintf "expected 1 report, got %d" (List.length other))

(* qcheck: for random hysteresis bands, the regulated thermostat stays in
   (and just around) the band after settling. *)
let prop_thermostat_band =
  QCheck.Test.make ~count:15 ~name:"thermostat respects random hysteresis bands"
    QCheck.(pair (float_range 17.5 19.) (float_range 20.5 22.))
    (fun (low, high) ->
       QCheck.assume (high -. low > 0.6);
       let proto =
         Umlrt.Protocol.create "T"
           ~incoming:[ Umlrt.Protocol.signal "on_"; Umlrt.Protocol.signal "off_" ]
           ~outgoing:[ Umlrt.Protocol.signal "cold"; Umlrt.Protocol.signal "hot" ]
       in
       let strategy = Hybrid.Strategy.create () in
       Hybrid.Strategy.on strategy ~signal:"on_"
         (Hybrid.Strategy.set_param_const "duty" 1.);
       Hybrid.Strategy.on strategy ~signal:"off_"
         (Hybrid.Strategy.set_param_const "duty" 0.);
       let room =
         Hybrid.Streamer.leaf "room" ~rate:0.05 ~dim:1
           ~init:[| (low +. high) /. 2. |]
           ~params:[ ("duty", 0.) ]
           ~sports:[ Hybrid.Streamer.sport "sp" proto ]
           ~guards:
             [ { Hybrid.Streamer.guard_id = "lo"; signal = "cold"; via_sport = "sp";
                 direction = Ode.Events.Falling;
                 expr = (fun _ _ y -> y.(0) -. low); payload = None };
               { Hybrid.Streamer.guard_id = "hi"; signal = "hot"; via_sport = "sp";
                 direction = Ode.Events.Rising;
                 expr = (fun _ _ y -> y.(0) -. high); payload = None } ]
           ~strategy
           ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> []))
           ~rhs:(fun (env : Hybrid.Solver.env) _ y ->
               [| (-.(y.(0) -. 15.) /. 20.) +. (0.8 *. env.Hybrid.Solver.param "duty") |])
       in
       let behavior (services : Umlrt.Capsule.services) =
         { Umlrt.Capsule.on_start = (fun () -> ());
           on_event =
             (fun ~port e ->
                let reply =
                  match Statechart.Event.signal e with
                  | "cold" -> Some "on_"
                  | "hot" -> Some "off_"
                  | _ -> None
                in
                (match reply with
                 | Some r -> services.Umlrt.Capsule.send ~port (Statechart.Event.make r)
                 | None -> ());
                reply <> None);
           configuration = (fun () -> []) }
       in
       let root =
         Umlrt.Capsule.create "ctl" ~behavior
           ~ports:[ Umlrt.Capsule.port ~conjugated:true "p" proto ]
       in
       let engine = Hybrid.Engine.create ~root () in
       Hybrid.Engine.add_streamer engine ~role:"room" room;
       Hybrid.Engine.link_sport_exn engine ~role:"room" ~sport:"sp" ~border_port:"p";
       Hybrid.Engine.run_until engine 300.;
       match Hybrid.Engine.solver_of engine "room" with
       | Some s ->
         let temp = (Hybrid.Solver.state s).(0) in
         temp > low -. 0.5 && temp < high +. 0.5
       | None -> false)

let suite =
  [ Alcotest.test_case "time service: affine clock" `Quick test_time_service_affine;
    Alcotest.test_case "time service: derived clocks" `Quick test_time_service_derived;
    Alcotest.test_case "time service: wait_until" `Quick test_time_service_wait_until;
    Alcotest.test_case "time service: validation" `Quick test_time_service_validation;
    Alcotest.test_case "stereotypes: registry invariants" `Quick test_stereotype_registry;
    Alcotest.test_case "stereotypes: Table 1 exact" `Quick test_table1_matches_paper;
    Alcotest.test_case "check: rule catalogue" `Quick test_check_rule_catalogue;
    Alcotest.test_case "check: capsule DPorts (R5)" `Quick test_check_capsule_dports;
    Alcotest.test_case "threading: task construction" `Quick test_threading_tasks;
    Alcotest.test_case "threading: analyze consistency" `Quick
      test_threading_analyze_consistency;
    Alcotest.test_case "solver: advance + live params" `Quick test_solver_advance_and_params;
    Alcotest.test_case "solver: unknown params" `Quick test_solver_unknown_param;
    Alcotest.test_case "solver: rhs swap keeps state" `Quick
      test_solver_set_rhs_preserves_state;
    Alcotest.test_case "solver: guard crossings" `Quick test_solver_guard_crossings_counted;
    Alcotest.test_case "solver: adaptive method" `Quick test_solver_adaptive_method;
    Alcotest.test_case "solver: implicit method" `Quick test_solver_implicit_method;
    Alcotest.test_case "engine: outbox for unlinked ports" `Quick
      test_engine_outbox_for_unlinked;
    Alcotest.test_case "engine: signal channel latency" `Quick
      test_engine_signal_latency_model;
    Alcotest.test_case "engine: duplicate/late adds" `Quick
      test_engine_rejects_duplicates_and_late_adds;
    Alcotest.test_case "engine: invalid links reported" `Quick
      test_engine_invalid_links_reported;
    Alcotest.test_case "engine: guard payloads (API)" `Quick test_engine_guard_payload_api;
    QCheck_alcotest.to_alcotest prop_thermostat_band ]

(* ---- determinism: two identical runs, identical traces ---- *)

let test_engine_deterministic () =
  let run () =
    let engine =
      Hybrid.Engine.create
        ~signal_latency:(Rt.Channel.Gaussian { mu = 0.01; sigma = 0.005 }) ()
    in
    let s =
      Hybrid.Streamer.leaf "osc" ~rate:0.01 ~dim:2 ~init:[| 1.; 0. |]
        ~dports:[ Hybrid.Streamer.dport_out "x" ]
        ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
        ~rhs:(fun _ _ y -> [| y.(1); -.y.(0) |])
    in
    Hybrid.Engine.add_streamer engine ~role:"osc" s;
    let trace = Hybrid.Engine.trace_dport engine ~role:"osc" ~dport:"x" in
    Hybrid.Engine.run_until engine 5.;
    Sigtrace.Trace.samples trace
  in
  let a = run () in
  let b = run () in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2
    (fun (t1, v1) (t2, v2) ->
       Alcotest.(check (float 0.)) "same time" t1 t2;
       Alcotest.(check (float 0.)) "same value" v1 v2)
    a b

let determinism_suite =
  [ Alcotest.test_case "engine: bit-identical reruns" `Quick test_engine_deterministic ]

let suite = suite @ determinism_suite

(* ---- sampled traces on composite borders ---- *)

let test_trace_sampled_junction () =
  let child =
    Hybrid.Streamer.leaf "inner" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_out "out" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "out") ])
      ~rhs:(fun _ _ _ -> [| 1. |])
  in
  let comp =
    Hybrid.Streamer.composite "box"
      ~dports:[ Hybrid.Streamer.dport_out "y" ]
      ~children:[ ("i", child) ]
      ~flows:[ (Hybrid.Streamer.child_port "i" "out", Hybrid.Streamer.border "y") ]
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"box" comp;
  let trace = Hybrid.Engine.trace_sampled engine ~role:"box" ~dport:"y" ~period:0.1 in
  Hybrid.Engine.run_until engine 1.;
  Alcotest.(check bool) "sampled ~10 points" true
    (Sigtrace.Trace.length trace >= 9);
  (match Sigtrace.Trace.last_value trace with
   | Some v ->
     Alcotest.(check bool)
       (Printf.sprintf "ramp through border (got %g)" v)
       true
       (Float.abs (v -. 1.) < 0.05)
   | None -> Alcotest.fail "has samples");
  Alcotest.(check bool) "unknown port rejected" true
    (try
       ignore (Hybrid.Engine.trace_sampled engine ~role:"box" ~dport:"zz" ~period:0.1);
       false
     with Invalid_argument _ -> true)

let sampled_suite =
  [ Alcotest.test_case "engine: sampled traces on borders" `Quick
      test_trace_sampled_junction ]

let suite = suite @ sampled_suite

(* ---- interned parameter cells + prepared guards ---- *)

(* env.param resolves through a pointer-equality cache over mutable
   cells; set_param must be visible through the cache, both for updates
   to cached names and for names created after the first lookup. *)
let test_param_interning_semantics () =
  let s = make_solver () in
  let env = Hybrid.Solver.env s in
  check_float 0. "initial" 1. (env.Hybrid.Solver.param "k");
  check_float 0. "cached repeat" 1. (env.Hybrid.Solver.param "k");
  Hybrid.Solver.set_param s "k" 5.;
  check_float 0. "update visible through cache" 5.
    (env.Hybrid.Solver.param "k");
  Hybrid.Solver.set_param s "fresh" 7.;
  check_float 0. "late-created parameter" 7.
    (env.Hybrid.Solver.param "fresh");
  Alcotest.(check bool) "unknown parameter raises" true
    (try ignore (env.Hybrid.Solver.param "nope"); false
     with Failure _ -> true)

(* advance_prepared with cached guards matches the per-call advance. *)
let test_advance_prepared_matches_advance () =
  let mk () =
    let clock = Hybrid.Time_service.create (Des.Engine.create ()) in
    Hybrid.Solver.create ~dim:1 ~init:[| 1. |] ~params:[ ("k", 1.) ]
      ~input:(fun _ -> 0.) ~clock ~t0:0.
      ~rhs_into:(fun env _tcell y dy ->
          dy.(0) <- -.(env.Hybrid.Solver.param "k") *. y.(0))
      (fun env _t y -> [| -.(env.Hybrid.Solver.param "k") *. y.(0) |])
  in
  let guard =
    { Hybrid.Solver.guard_name = "half"; direction = Ode.Events.Falling;
      expr = (fun _env _t y -> y.(0) -. 0.5) }
  in
  let a = mk () in
  let hits_a = ref [] in
  Hybrid.Solver.advance a ~until:2. ~guards:[ guard ]
    ~on_crossing:(fun c -> hits_a := c.Ode.Events.time :: !hits_a);
  let b = mk () in
  let hits_b = ref [] in
  Hybrid.Solver.set_guards b [ guard ];
  Hybrid.Solver.advance_prepared b ~until:2.
    ~on_crossing:(fun c -> hits_b := c.Ode.Events.time :: !hits_b);
  Alcotest.(check int) "same crossing count" (List.length !hits_a)
    (List.length !hits_b);
  List.iter2 (fun ta tb -> check_float 1e-9 "same crossing time" ta tb)
    !hits_a !hits_b;
  check_float 1e-9 "same final state" (Hybrid.Solver.state a).(0)
    (Hybrid.Solver.state b).(0)

let interning_suite =
  [ Alcotest.test_case "solver: param interning semantics" `Quick
      test_param_interning_semantics;
    Alcotest.test_case "solver: advance_prepared matches advance" `Quick
      test_advance_prepared_matches_advance ]

let suite = suite @ interning_suite
