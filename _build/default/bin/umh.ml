(* umh — unified modeling of hybrid real-time control systems.
   Subcommands: check, simulate, codegen, fmt, lint, analyze, stereotypes,
   sched. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_model path source =
  try Dsl.Parser.parse source with
  | Dsl.Parser.Parse_error (msg, line, col) ->
    Printf.eprintf "%s:%d:%d: parse error: %s\n" path line col msg;
    exit 2
  | Dsl.Lexer.Lex_error (msg, line, col) ->
    Printf.eprintf "%s:%d:%d: lexical error: %s\n" path line col msg;
    exit 2

let load_checked path = Dsl.Typecheck.check (parse_model path (read_file path))

(* Diagnostics go to stderr; only the OK summary belongs on stdout. *)
let report_check path checked =
  List.iter
    (fun w -> Printf.eprintf "%s: warning: %s\n" path w)
    checked.Dsl.Typecheck.warnings;
  List.iter
    (fun e -> Printf.eprintf "%s: error: %s\n" path e)
    checked.Dsl.Typecheck.errors;
  if Dsl.Typecheck.is_ok checked then begin
    let model = checked.Dsl.Typecheck.model in
    Printf.printf
      "%s: model %s OK (%d flowtypes, %d protocols, %d streamers, %d capsules)\n"
      path model.Dsl.Ast.m_name
      (List.length model.Dsl.Ast.m_flowtypes)
      (List.length model.Dsl.Ast.m_protocols)
      (List.length model.Dsl.Ast.m_streamers)
      (List.length model.Dsl.Ast.m_capsules);
    0
  end
  else 1

(* ---- check ---- *)

let check_cmd_run path = exit (report_check path (load_checked path))

(* ---- simulate ---- *)

(* Post-run reporting shared by the single-domain and sharded paths. *)
let check_verify verify traces =
  match (verify, traces) with
  | Some formula_text, (_, trace) :: _ ->
    let formula =
      try Dsl.Parser.parse_stl formula_text
      with Dsl.Parser.Parse_error (msg, _, col) ->
        Printf.eprintf "--verify: parse error at column %d: %s\n" col msg;
        exit 2
    in
    let ok, robustness = Sigtrace.Stl.check formula trace in
    Printf.printf "  verify %s: %s (robustness %g)\n" formula_text
      (if ok then "HOLDS" else "VIOLATED") robustness;
    if not ok then exit 3
  | Some _, [] ->
    Printf.eprintf "--verify needs --trace to name the signal\n";
    exit 2
  | None, _ -> ()

let emit_traces traces csv_out =
  List.iter
    (fun (name, trace) ->
       match csv_out with
       | Some out ->
         let oc = open_out out in
         output_string oc (Sigtrace.Trace.to_csv trace);
         close_out oc;
         Printf.printf "  trace %s -> %s (%d samples)\n" name out
           (Sigtrace.Trace.length trace)
       | None ->
         Printf.printf "  trace %s: %d samples, last=%s\n" name
           (Sigtrace.Trace.length trace)
           (match Sigtrace.Trace.last_value trace with
            | Some v -> Printf.sprintf "%g" v
            | None -> "n/a"))
    traces

let close_telemetry telemetry_oc telemetry_every =
  match telemetry_oc with
  | Some (file, oc) ->
    let n = Obs.Telemetry.records () in
    Obs.Telemetry.stop ();
    close_out oc;
    Printf.printf "  telemetry -> %s (%d records, every %gs)\n" file n
      telemetry_every
  | None -> ()

let print_role_line role ~ticks ~solver =
  Printf.printf "  %-16s ticks=%d" role ticks;
  (match solver with
   | Some solver ->
     let y = Hybrid.Solver.state solver in
     Printf.printf " state=[%s]"
       (String.concat "; " (List.map (Printf.sprintf "%g") (Array.to_list y)))
   | None -> ());
  print_newline ()

let simulate_run path duration trace_spec csv_out verify show_stats faults_file
    crash_dir telemetry_out telemetry_every profile flight_dump wcet_out shards
    shards_from signal_latency =
  if wcet_out <> None && not profile then begin
    Printf.eprintf "--wcet-out needs --profile to measure frame times\n";
    exit 2
  end;
  if shards < 1 then begin
    Printf.eprintf "--shards: need at least one shard\n";
    exit 2
  end;
  if shards > 1 && shards_from <> None then begin
    Printf.eprintf "--shards and --shards-from are exclusive: the plan file \
                    already fixes the shard count\n";
    exit 2
  end;
  (match signal_latency with
   | Some s when Float.is_nan s || s < 0. ->
     Printf.eprintf "--signal-latency: latency must be non-negative\n";
     exit 2
   | _ -> ());
  let latency = Option.map (fun s -> Rt.Channel.Constant s) signal_latency in
  let sharded = shards > 1 || shards_from <> None in
  (* [--trace FILE.json] means a Chrome trace of the whole run;
     [--trace ROLE.DPORT] keeps its original meaning (signal trace). *)
  let chrome_out, trace_spec =
    match trace_spec with
    | Some spec when Filename.check_suffix spec ".json" -> (Some spec, None)
    | other -> (None, other)
  in
  if sharded then
    (* These all funnel into process-global observability sinks (one
       injector, one profiler table, one crash/flight recorder, one
       tracer); per-domain variants are future work, so reject up front
       rather than record cross-shard garbage. *)
    List.iter
      (fun (flag, on) ->
         if on then begin
           Printf.eprintf
             "%s is not supported with --shards: its state is process-global\n"
             flag;
           exit 2
         end)
      [ ("--faults", faults_file <> None);
        ("--crash-dir", crash_dir <> None);
        ("--profile", profile);
        ("--flight-dump", flight_dump <> None);
        ("--trace FILE.json (chrome trace)", chrome_out <> None) ];
  if chrome_out <> None then Obs.Tracer.set_enabled true;
  if profile then Obs.Profile.set_enabled true;
  if Float.is_nan telemetry_every || telemetry_every <= 0. then begin
    Printf.eprintf "--telemetry-every: cadence must be positive\n";
    exit 2
  end;
  let telemetry_oc =
    match telemetry_out with
    | None -> None
    | Some file ->
      let oc =
        try open_out file
        with Sys_error msg ->
          Printf.eprintf "--telemetry: %s\n" msg;
          exit 2
      in
      Obs.Telemetry.configure ~every:telemetry_every (output_string oc);
      Some (file, oc)
  in
  (match crash_dir with
   | Some dir ->
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     Obs.Crash_report.set_dir (Some dir)
   | None -> ());
  let checked = load_checked path in
  if not (Dsl.Typecheck.is_ok checked) then exit (report_check path checked);
  if sharded then begin
    let plan =
      match
        (match shards_from with
         | Some file -> Shard.Plan.of_file ?signal_latency:latency file checked
         | None -> Shard.Plan.compute ?signal_latency:latency ~shards checked)
      with
      | Ok plan -> plan
      | Error msgs ->
        List.iter
          (fun m ->
             Printf.eprintf "%s: error[%s]: %s\n" path Shard.Plan.lint_code m)
          msgs;
        exit 2
    in
    let eng =
      try Shard.Engine.create ?signal_latency:latency plan checked with
      | Dsl.Elaborate.Elab_error msg ->
        Printf.eprintf "%s: elaboration error: %s\n" path msg;
        exit 2
      | Invalid_argument msg ->
        Printf.eprintf "%s: error[%s]: %s\n" path Shard.Plan.lint_code msg;
        exit 2
    in
    let traces =
      match trace_spec with
      | Some spec ->
        (match String.split_on_char '.' spec with
         | [ role; dport ] ->
           let trace =
             match Shard.Engine.engine_of_role eng role with
             | Some owner ->
               (try Hybrid.Engine.trace_dport owner ~role ~dport
                with Invalid_argument _ ->
                  Hybrid.Engine.trace_sampled owner ~role ~dport ~period:0.05)
             | None ->
               (* composite border / relay ports live with the capsule *)
               let border =
                 (Shard.Engine.engines eng).(plan.Shard.Plan.capsule_shard)
               in
               Hybrid.Engine.trace_sampled border ~role ~dport ~period:0.05
           in
           [ (spec, trace) ]
         | _ ->
           Printf.eprintf "--trace expects role.dport\n";
           exit 2)
      | None -> []
    in
    Shard.Engine.run eng ~until:duration;
    let stats = Shard.Engine.stats eng in
    Printf.printf
      "simulated %s for %gs across %d shards: %d streamer ticks, %d signals \
       ->streamers, %d ->capsules, %d dropped\n"
      (Filename.basename path) duration plan.Shard.Plan.count
      stats.Hybrid.Engine.ticks_total stats.Hybrid.Engine.signals_to_streamers
      stats.Hybrid.Engine.signals_to_capsules
      stats.Hybrid.Engine.signals_dropped;
    List.iter
      (fun role ->
         match Shard.Engine.engine_of_role eng role with
         | Some owner ->
           print_role_line role ~ticks:(Hybrid.Engine.ticks_of owner role)
             ~solver:(Hybrid.Engine.solver_of owner role)
         | None -> ())
      (Shard.Engine.roles eng);
    check_verify verify traces;
    emit_traces traces csv_out;
    close_telemetry telemetry_oc telemetry_every;
    if show_stats then begin
      Printf.printf "  runtime metrics (all shards merged):\n";
      Format.printf "%a@?" Obs.Metrics.pp (Shard.Engine.metrics eng)
    end
  end
  else begin
  let { Dsl.Elaborate.engine; streamer_roles; _ } =
    try Dsl.Elaborate.elaborate ?signal_latency:latency checked
    with Dsl.Elaborate.Elab_error msg ->
      Printf.eprintf "%s: elaboration error: %s\n" path msg;
      exit 2
  in
  let injector =
    match faults_file with
    | None -> None
    | Some file ->
      let spec =
        match Fault.Spec.of_file file with
        | Ok spec -> spec
        | Error msg ->
          Printf.eprintf "%s: fault spec error: %s\n" file msg;
          exit 2
        | exception Sys_error msg ->
          Printf.eprintf "--faults: %s\n" msg;
          exit 2
      in
      Some (Hybrid.Engine.apply_fault_spec engine spec)
  in
  let traces =
    match trace_spec with
    | Some spec ->
      (match String.split_on_char '.' spec with
       | [ role; dport ] ->
         let trace =
           try Hybrid.Engine.trace_dport engine ~role ~dport
           with Invalid_argument _ ->
             (* composite border or relay port: poll it instead *)
             Hybrid.Engine.trace_sampled engine ~role ~dport ~period:0.05
         in
         [ (spec, trace) ]
       | _ ->
         Printf.eprintf "--trace expects role.dport\n";
         exit 2)
    | None -> []
  in
  (try Hybrid.Engine.run_until engine duration with
   | e when crash_dir <> None ->
     (* A fatal escalation with a crash directory armed: the trigger
        site already wrote the post-mortem. Point at it and exit like
        any other fatal simulation error. *)
     Printf.eprintf "%s: fatal: %s\n" path (Printexc.to_string e);
     (match Obs.Crash_report.last_report () with
      | Some report ->
        Printf.eprintf "crash report -> %s (render with `umh report %s`)\n"
          report report
      | None -> ());
     exit 3);
  let stats = Hybrid.Engine.stats engine in
  Printf.printf "simulated %s for %gs: %d streamer ticks, %d signals ->streamers, %d ->capsules, %d dropped\n"
    (Filename.basename path) duration stats.Hybrid.Engine.ticks_total
    stats.Hybrid.Engine.signals_to_streamers stats.Hybrid.Engine.signals_to_capsules
    stats.Hybrid.Engine.signals_dropped;
  List.iter
    (fun role ->
       print_role_line role ~ticks:(Hybrid.Engine.ticks_of engine role)
         ~solver:(Hybrid.Engine.solver_of engine role))
    streamer_roles;
  (match injector with
   | Some inj ->
     let counts = Fault.Injector.injected_counts inj in
     Printf.printf "  faults: %d injected%s\n" (Fault.Injector.injected inj)
       (match counts with
        | [] -> ""
        | _ ->
          Printf.sprintf " (%s)"
            (String.concat ", "
               (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) counts)));
     let solver_faults = Hybrid.Engine.solver_faults engine in
     let restarts = Hybrid.Engine.supervisor_restarts engine in
     let degraded = Hybrid.Engine.degraded_time engine in
     if solver_faults > 0 || restarts > 0 || degraded > 0. then
       Printf.printf
         "  supervision: %d solver faults, %d restarts, %.3fs degraded (%s)\n"
         solver_faults restarts degraded
         (match Hybrid.Engine.degraded_roles engine with
          | [] -> "none degraded"
          | roles -> String.concat ", " roles)
   | None -> ());
  check_verify verify traces;
  emit_traces traces csv_out;
  (match chrome_out with
   | Some out ->
     Obs.Tracer.set_enabled false;
     Obs.Export.write_file out ~metrics:Obs.Metrics.default Obs.Tracer.default;
     let tracer = Obs.Tracer.default in
     Printf.printf
       "  chrome trace -> %s (%d events, %d dropped, categories: %s)\n  \
        open it at https://ui.perfetto.dev or chrome://tracing\n"
       out (Obs.Tracer.length tracer) (Obs.Tracer.dropped tracer)
       (String.concat ", " (Obs.Tracer.categories tracer))
   | None -> ());
  close_telemetry telemetry_oc telemetry_every;
  (match flight_dump with
   | Some out ->
     let dump =
       Obs.Json.Obj
         [ ("schema", Obs.Json.Str "umh-flight-dump");
           ("version", Obs.Json.Int 1);
           ("model", Obs.Json.Str path);
           ("duration_s", Obs.Json.Float duration);
           ("flight_recorder", Obs.Flightrec.to_json ()) ]
     in
     let oc = open_out out in
     output_string oc (Obs.Json.to_string dump);
     output_char oc '\n';
     close_out oc;
     Printf.printf
       "  flight dump -> %s (%d entries held, %d recorded, %d dropped; render \
        with `umh report %s`)\n"
       out (Obs.Flightrec.length ()) (Obs.Flightrec.total ())
       (Obs.Flightrec.dropped ()) out
   | None -> ());
  if profile then begin
    Printf.printf "  profile (top 20 entities by self time):\n";
    Format.printf "%a@?" Obs.Profile.pp_top 20;
    List.iter
      (fun name ->
         let h = Obs.Metrics.histogram name in
         let n = Obs.Metrics.histogram_count h in
         if n > 0 then
           Printf.printf
             "  %-34s n=%d mean=%.3gs p90<=%.3gs p99<=%.3gs\n" name n
             (Obs.Metrics.histogram_sum h /. float_of_int n)
             (Obs.Metrics.quantile h 0.9) (Obs.Metrics.quantile h 0.99))
      [ "profile.latency.capsule_rtc_s"; "profile.latency.streamer_signal_s" ]
  end;
  (match wcet_out with
   | Some out ->
     let w = Analysis.Wcet.of_profile ~model:path () in
     let oc = open_out out in
     output_string oc (Obs.Json.to_string (Analysis.Wcet.to_json w));
     output_char oc '\n';
     close_out oc;
     Printf.printf
       "  wcet table -> %s (%d entities; feed back with `umh analyze --wcet \
        %s %s`)\n"
       out
       (List.length w.Analysis.Wcet.entries)
       out path
   | None -> ());
  if show_stats then begin
    Printf.printf "  runtime metrics:\n";
    Format.printf "%a@?" Obs.Metrics.pp Obs.Metrics.default
  end
  end

(* ---- report ---- *)

(* Render a crash report (written by `simulate --crash-dir`) for humans:
   header, the offending causal chain as an indented tree with per-hop
   latencies, then the flight-recorder window summary. *)

let json_str ?(default = "?") j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Str s) -> s
  | _ -> default

let json_int j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Int i) -> i
  | Some (Obs.Json.Float f) -> int_of_float f
  | _ -> 0

let json_float j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | _ -> Float.nan

let pp_latency ns =
  if ns <= 0 then "+0"
  else if ns < 1_000 then Printf.sprintf "+%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "+%.1fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "+%.2fms" (float_of_int ns /. 1e6)

(* Render a flight dump (written by `simulate --flight-dump`): window
   summary, entry counts by kind, then the most recent entries. *)
let report_flight_dump file json =
  Printf.printf "flight dump %s (schema v%d)\n" file (json_int json "version");
  (match Obs.Json.member "model" json with
   | Some (Obs.Json.Str m) -> Printf.printf "  model:  %s\n" m
   | _ -> ());
  let fr =
    Option.value ~default:(Obs.Json.Obj [])
      (Obs.Json.member "flight_recorder" json)
  in
  let entries =
    Obs.Json.to_list
      (Option.value ~default:(Obs.Json.List []) (Obs.Json.member "entries" fr))
  in
  Printf.printf "  flight recorder: %d entries held (%d recorded, %d dropped)\n"
    (List.length entries) (json_int fr "recorded") (json_int fr "dropped");
  let by_kind = Hashtbl.create 16 in
  List.iter
    (fun e ->
       let k = json_str e "kind" in
       Hashtbl.replace by_kind k
         (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
    entries;
  let counts =
    List.sort
      (fun (_, a) (_, b) -> compare (b : int) a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_kind [])
  in
  Printf.printf "  by kind: %s\n"
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) counts));
  let n = List.length entries in
  let show = 20 in
  if n > show then Printf.printf "  last %d entries:\n" show
  else Printf.printf "  entries:\n";
  List.iteri
    (fun i e ->
       if i >= n - show then begin
         let who = json_str ~default:"" e "who" in
         let what = json_str ~default:"" e "what" in
         let label =
           String.concat " "
             (List.filter (fun s -> s <> "") [ json_str e "kind"; who; what ])
         in
         Printf.printf "    %-46s t=%-10g cause=#%d\n" label
           (json_float e "sim_time") (json_int e "cause")
       end)
    entries

let report_run file =
  let json =
    match Obs.Json.of_string (read_file file) with
    | j -> j
    | exception Obs.Json.Parse_error msg ->
      Printf.eprintf "%s: not a crash report or flight dump: %s\n" file msg;
      exit 2
    | exception Sys_error msg ->
      Printf.eprintf "umh report: %s\n" msg;
      exit 2
  in
  (match json_str json "schema" with
   | "umh-crash-report" -> ()
   | "umh-flight-dump" ->
     report_flight_dump file json;
     exit 0
   | _ ->
     Printf.eprintf "%s: not a crash report or flight dump (missing schema tag)\n"
       file;
     exit 2);
  Printf.printf "crash report %s (schema v%d)\n" file (json_int json "version");
  Printf.printf "  reason: %s\n" (json_str json "reason");
  (match Obs.Json.member "role" json with
   | Some (Obs.Json.Str role) -> Printf.printf "  role:   %s\n" role
   | _ -> ());
  let cause = json_int json "cause" in
  let hops =
    match Obs.Json.member "chain" json with
    | Some chain -> Obs.Json.to_list
                      (Option.value ~default:(Obs.Json.List [])
                         (Obs.Json.member "hops" chain))
    | None -> []
  in
  Printf.printf "  causal chain #%d (%d hops):\n" cause (List.length hops);
  List.iteri
    (fun i hop ->
       let who = json_str ~default:"" hop "who" in
       let what = json_str ~default:"" hop "what" in
       let label =
         String.concat " "
           (List.filter (fun s -> s <> "") [ json_str hop "kind"; who; what ])
       in
       Printf.printf "  %s%s %-42s t=%-10g %s\n"
         (String.make (2 * i) ' ')
         (if i = 0 then "*" else "\xe2\x94\x94")  (* └ *)
         label (json_float hop "sim_time")
         (pp_latency (json_int hop "latency_ns")))
    hops;
  (match Obs.Json.member "flight_recorder" json with
   | Some fr ->
     Printf.printf "  flight recorder: %d entries held (%d recorded, %d dropped)\n"
       (List.length
          (Obs.Json.to_list
             (Option.value ~default:(Obs.Json.List [])
                (Obs.Json.member "entries" fr))))
       (json_int fr "recorded") (json_int fr "dropped")
   | None -> ());
  (match Obs.Json.member "context" json with
   | Some (Obs.Json.Obj fields) ->
     Printf.printf "  context:\n";
     List.iter
       (fun (k, v) -> Printf.printf "    %-14s %s\n" k (Obs.Json.to_string v))
       fields
   | Some _ | None -> ());
  (match Obs.Json.member "metrics" json with
   | Some (Obs.Json.Obj fields) ->
     Printf.printf "  metrics: %d recorded\n" (List.length fields)
   | Some _ | None -> ())

(* ---- perf ---- *)

(* Summarize / diff performance records: telemetry JSONL streams from
   `simulate --telemetry` or BENCH_*.json bench records, shape detected
   from content. Diff exits 1 on regression so it can gate CI. *)

let perf_load file =
  match Obs.Perfcmp.summarize ~label:file (read_file file) with
  | s -> s
  | exception Failure msg ->
    Printf.eprintf "umh perf: %s\n" msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "umh perf: %s\n" msg;
    exit 2

let perf_summarize_run file =
  Format.printf "%a@?" Obs.Perfcmp.pp_summary (perf_load file)

let perf_diff_run old_file new_file tol section =
  if Float.is_nan tol || tol < 0. then begin
    Printf.eprintf "--tolerance must be a non-negative fraction\n";
    exit 2
  end;
  let a = perf_load old_file and b = perf_load new_file in
  let a, b =
    match section with
    | None -> (a, b)
    | Some prefix ->
      let keep (k, _) =
        k = prefix || String.starts_with ~prefix:(prefix ^ ".") k
      in
      let restrict s =
        { s with
          Obs.Perfcmp.s_indicators =
            List.filter keep s.Obs.Perfcmp.s_indicators }
      in
      let a = restrict a and b = restrict b in
      if a.Obs.Perfcmp.s_indicators = [] && b.Obs.Perfcmp.s_indicators = []
      then begin
        Printf.eprintf
          "--section %s: neither record has indicators in that section\n"
          prefix;
        exit 2
      end;
      (a, b)
  in
  let r = Obs.Perfcmp.diff ~tol a b in
  Format.printf "%a@?" (fun ppf () -> Obs.Perfcmp.pp_diff ppf ~tol a b r) ();
  if r.Obs.Perfcmp.regressions <> [] then exit 1

(* ---- codegen ---- *)

let codegen_run path outdir =
  let checked = load_checked path in
  if not (Dsl.Typecheck.is_ok checked) then exit (report_check path checked);
  let files =
    try Codegen.Cgen.generate checked
    with Codegen.Cgen.Codegen_error msg ->
      Printf.eprintf "%s: codegen error: %s\n" path msg;
      exit 2
  in
  if not (Sys.file_exists outdir) then Unix.mkdir outdir 0o755;
  List.iter
    (fun { Codegen.Cgen.filename; contents } ->
       let out = Filename.concat outdir filename in
       let oc = open_out out in
       output_string oc contents;
       close_out oc;
       Printf.printf "wrote %s (%d bytes)\n" out (String.length contents))
    files

(* ---- fmt ---- *)

let fmt_run path in_place =
  let ast = parse_model path (read_file path) in
  let checked = Dsl.Typecheck.check ast in
  if not (Dsl.Typecheck.is_ok checked) then exit (report_check path checked);
  let printed = Dsl.Pretty.print_model ast in
  if in_place then begin
    (* Write to a temp file in the same directory, then rename over the
       original, so an interrupted write can't truncate the model. *)
    let tmp, oc =
      Filename.open_temp_file ~temp_dir:(Filename.dirname path)
        ~mode:[ Open_binary ] ".umh_fmt" ".tmp"
    in
    (try
       output_string oc printed;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    Printf.printf "formatted %s\n" path
  end
  else print_string printed

(* ---- lint / analyze ---- *)

let load_wcet = function
  | None -> None
  | Some file ->
    (match Analysis.Wcet.of_file file with
     | Ok w -> Some w
     | Error msg ->
       Printf.eprintf "--wcet: %s: %s\n" file msg;
       exit 2)

let lint_run paths format select ignore werror wcet_file =
  let wcet = load_wcet wcet_file in
  let split_codes l =
    List.concat_map
      (fun s ->
         List.filter_map
           (fun c -> match String.trim c with "" -> None | c -> Some c)
           (String.split_on_char ',' s))
      l
  in
  let options =
    { Lint.Linter.select = split_codes select; ignore = split_codes ignore;
      werror }
  in
  (match Lint.Linter.unknown_codes options with
   | [] -> ()
   | bad ->
     Printf.eprintf
       "umh lint: unknown diagnostic code%s %s (see `umh lint --format json` \
        for the registry)\n"
       (if List.length bad = 1 then "" else "s")
       (String.concat ", " bad);
     exit 2);
  let reports =
    List.map
      (fun p -> Lint.Linter.apply_options options (Lint.Linter.lint_file ?wcet p))
      paths
  in
  (match format with
   | `Text -> print_string (Lint.Linter.to_text reports)
   | `Json -> print_endline (Obs.Json.to_string (Lint.Linter.to_json reports)));
  exit (if Lint.Linter.gates reports then 1 else 0)

let analyze_run paths format wcet_file werror partition_out =
  let wcet = load_wcet wcet_file in
  (match paths with
   | _ :: _ :: _ when format = `Json || partition_out <> None ->
     Printf.eprintf
       "umh analyze: --format json and --partition-out expect exactly one \
        model\n";
     exit 2
   | _ -> ());
  let failed = ref false in
  List.iter
    (fun path ->
       let checked = load_checked path in
       if not (Dsl.Typecheck.is_ok checked) then
         exit (report_check path checked);
       match Analysis.Report.run ?wcet ~file:path checked with
       | None ->
         Printf.printf "%s: nothing to analyze (no system section)\n" path
       | Some report ->
         (match format with
          | `Text -> Format.printf "%a@." Analysis.Report.pp report
          | `Json ->
            print_endline
              (Obs.Json.to_string (Analysis.Report.to_json report)));
         (match partition_out with
          | Some out ->
            let oc = open_out out in
            output_string oc
              (Obs.Json.to_string (Analysis.Report.partition_json report));
            output_char oc '\n';
            close_out oc;
            if format = `Text then
              Printf.printf "partition -> %s (%d shards)\n" out
                (List.length
                   report.Analysis.Report.shard.Analysis.Shard.shards)
          | None -> ());
         let s = report.Analysis.Report.shard in
         let rm_only_miss =
           List.exists
             (fun (sh : Analysis.Shard.shard) ->
                sh.Analysis.Shard.feasible
                && Analysis.Rta.misses sh.Analysis.Shard.rta <> [])
             s.Analysis.Shard.shards
         in
         if not (Analysis.Report.schedulable report) then failed := true
         else if
           werror
           && (s.Analysis.Shard.races <> []
               || s.Analysis.Shard.interleavings <> []
               || rm_only_miss)
         then failed := true)
    paths;
  exit (if !failed then 1 else 0)

(* ---- stereotypes ---- *)

let stereotypes_run () =
  Format.printf "Table 1. New stereotypes comparing with UML-RT@.@.";
  Hybrid.Stereotype.pp_table Format.std_formatter ();
  Format.printf "@.Details:@.";
  List.iter
    (fun st ->
       Format.printf "  %-10s -> %s@.             %s@."
         (Hybrid.Stereotype.name st)
         (Hybrid.Stereotype.implementing_module st)
         (Hybrid.Stereotype.description st))
    Hybrid.Stereotype.all

(* ---- sched ---- *)

let sched_run path utilization =
  let checked = load_checked path in
  if not (Dsl.Typecheck.is_ok checked) then exit (report_check path checked);
  let { Dsl.Elaborate.engine; _ } =
    try Dsl.Elaborate.elaborate checked
    with Dsl.Elaborate.Elab_error msg ->
      Printf.eprintf "%s: elaboration error: %s\n" path msg;
      exit 2
  in
  let threads = Hybrid.Engine.thread_set engine in
  let tasks =
    Hybrid.Threading.tasks_for
      ~wcet_of:(fun _ period -> Hybrid.Threading.default_wcet ~utilization period)
      threads
  in
  let report = Hybrid.Threading.analyze tasks in
  Printf.printf "thread set (%d streamer threads, %.0f%% utilization each):\n"
    (List.length threads) (utilization *. 100.);
  List.iter
    (fun task -> Format.printf "  %a@." Rt.Task.pp task)
    report.Hybrid.Threading.tasks;
  Format.printf "%a@." Hybrid.Threading.pp_report report

(* ---- cmdliner wiring ---- *)

open Cmdliner

let model_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL.umh"
         ~doc:"The .umh model file.")

let check_cmd =
  let doc = "Parse and typecheck a model (rules R1-R8)." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check_cmd_run $ model_arg)

let simulate_cmd =
  let doc = "Elaborate and co-simulate a model." in
  let duration =
    Arg.(value & opt float 10.0 & info [ "d"; "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated duration.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"ROLE.DPORT|FILE.json"
           ~doc:"Record a DPort signal trace (ROLE.DPORT), or — when the \
                 argument ends in .json — a Chrome trace-event file of the \
                 whole run (DES dispatch, capsule RTC steps, streamer ticks, \
                 solver advances), viewable in Perfetto.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the runtime metrics registry (counters, gauges, \
                 histograms) after the run.")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Write the trace as CSV.")
  in
  let faults =
    Arg.(value & opt (some file) None & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Fault-injection spec file: seeded drop/delay/duplicate/reorder \
                 of signals, corrupt/NaN/freeze of flows, solver stalls, plus \
                 $(b,supervise) and $(b,degrade-signal) directives.")
  in
  let verify =
    Arg.(value & opt (some string) None & info [ "verify" ] ~docv:"STL"
           ~doc:"Check an STL requirement over the traced signal x, e.g. \
                 'always[60,200] x >= 18.5 and x <= 21.5'. Exit code 3 on \
                 violation.")
  in
  let crash_dir =
    Arg.(value & opt (some string) None & info [ "crash-dir" ] ~docv:"DIR"
           ~doc:"Arm post-mortem crash reporting: on supervisor escalation, \
                 watchdog expiry or solver divergence, write a self-contained \
                 JSON report (flight-recorder window, reconstructed causal \
                 chain with per-hop latencies, state summaries, metrics) into \
                 DIR, created if missing. Render with $(b,umh report).")
  in
  let telemetry =
    Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"OUT.jsonl"
           ~doc:"Stream one self-contained telemetry record per interval \
                 (JSON lines: metric deltas, queue depths, flight-recorder \
                 drop counts, profile rollups when $(b,--profile) is on). \
                 Summarize or diff with $(b,umh perf).")
  in
  let telemetry_every =
    Arg.(value & opt float Obs.Telemetry.default_every
           & info [ "telemetry-every" ] ~docv:"DT"
             ~doc:"Telemetry snapshot cadence in simulated seconds.")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Attribute self time and allocation to every capsule, \
                 streamer and solver kernel, plus stimulus-to-reaction \
                 latency histograms; print a top-N table after the run.")
  in
  let flight_dump =
    Arg.(value & opt (some string) None & info [ "flight-dump" ] ~docv:"OUT.json"
           ~doc:"Dump the always-on flight-recorder ring as JSON at end of \
                 run, crash or no crash. Render with $(b,umh report).")
  in
  let wcet_out =
    Arg.(value & opt (some string) None & info [ "wcet-out" ] ~docv:"OUT.json"
           ~doc:"Write the measured worst single-frame self time of every \
                 profiled entity as a wcet table (requires $(b,--profile)). \
                 Feed it back with $(b,umh analyze --wcet) or \
                 $(b,umh lint --wcet) to rest the response-time verdicts on \
                 measurement instead of the default utilization model.")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Run the system across N OCaml domains: runtime co-location \
                 groups (flow closures, guard emissions, zero-lookahead \
                 links) are distributed round-robin and synchronized by \
                 conservative lookahead epochs. Results are bit-identical \
                 to the default single-domain run. 1 means the plain \
                 engine, unchanged.")
  in
  let shards_from =
    Arg.(value & opt (some string) None & info [ "shards-from" ] ~docv:"PLAN.json"
           ~doc:"Follow a umh-partition v1 plan written by $(b,umh analyze \
                 --partition-out) instead of computing one. Plans whose \
                 model_hash does not match, or that split a feedback SCC or \
                 a runtime co-location group, are rejected (UMH055).")
  in
  let signal_latency =
    Arg.(value & opt (some float) None & info [ "signal-latency" ] ~docv:"SECONDS"
           ~doc:"Constant latency on every capsule<->streamer signal link. \
                 With $(b,--shards) this is the cross-shard lookahead; links \
                 that cross shards need a positive value.")
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const simulate_run $ model_arg $ duration $ trace $ csv $ verify $ stats
          $ faults $ crash_dir $ telemetry $ telemetry_every $ profile
          $ flight_dump $ wcet_out $ shards $ shards_from $ signal_latency)

let codegen_cmd =
  let doc = "Generate C sources from a model." in
  let outdir =
    Arg.(value & opt string "generated" & info [ "o"; "outdir" ] ~docv:"DIR"
           ~doc:"Output directory.")
  in
  Cmd.v (Cmd.info "codegen" ~doc) Term.(const codegen_run $ model_arg $ outdir)

let fmt_cmd =
  let doc = "Pretty-print a model (canonical formatting)." in
  let in_place =
    Arg.(value & flag & info [ "i"; "in-place" ] ~doc:"Rewrite the file.")
  in
  Cmd.v (Cmd.info "fmt" ~doc) Term.(const fmt_run $ model_arg $ in_place)

let lint_cmd =
  let doc =
    "Run every registered static analysis over one or more models: \
     well-formedness (R1-R8), algebraic loops, statechart reachability / \
     determinism, orphan DPorts, unused declarations, SPort wiring, rate \
     consistency and schedulability. Exits 0 when clean, 1 on findings \
     (errors or warnings), 2 on usage errors."
  in
  let models =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"MODEL.umh"
           ~doc:"Model files to lint.")
  in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
           & info [ "format" ] ~docv:"text|json" ~doc:"Output format.")
  in
  let select =
    Arg.(value & opt_all string [] & info [ "select" ] ~docv:"CODES"
           ~doc:"Only report these comma-separated codes (repeatable).")
  in
  let ignore =
    Arg.(value & opt_all string [] & info [ "ignore" ] ~docv:"CODES"
           ~doc:"Suppress these comma-separated codes (repeatable).")
  in
  let werror =
    Arg.(value & flag & info [ "werror" ]
           ~doc:"Report surviving warnings as errors.")
  in
  let wcet =
    Arg.(value & opt (some file) None & info [ "wcet" ] ~docv:"WCET.json"
           ~doc:"Measured wcet table (from $(b,simulate --profile \
                 --wcet-out)) feeding the timing rules (UMH042+).")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const lint_run $ models $ format $ select $ ignore $ werror $ wcet)

let analyze_cmd =
  let doc =
    "Static timing and concurrency analysis of one or more models: task-set \
     extraction (streamer rates, capsule timers, wcet budgets), exact \
     response-time analysis per suggested shard under RM and EDF, and \
     shard safety (forced same-shard feedback groups, write-write parameter \
     races, nondeterministic signal interleavings). Exits 0 when every model \
     is schedulable, 1 when one is not (or, under $(b,--werror), has \
     warning-level findings), 2 on usage errors."
  in
  let models =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"MODEL.umh"
           ~doc:"Model files to analyze.")
  in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
           & info [ "format" ] ~docv:"text|json" ~doc:"Output format.")
  in
  let wcet =
    Arg.(value & opt (some file) None & info [ "wcet" ] ~docv:"WCET.json"
           ~doc:"Measured wcet table (from $(b,simulate --profile \
                 --wcet-out)); entities not in the table keep their declared \
                 budget or the default utilization model.")
  in
  let werror =
    Arg.(value & flag & info [ "werror" ]
           ~doc:"Also exit 1 on warning-level findings: RM-only deadline \
                 misses, parameter races, signal interleavings.")
  in
  let partition_out =
    Arg.(value & opt (some string) None & info [ "partition-out" ]
           ~docv:"OUT.json"
           ~doc:"Write the suggested shard partition (members, utilizations, \
                 forced groups, cross-shard edges) as JSON.")
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const analyze_run $ models $ format $ wcet $ werror $ partition_out)

let report_cmd =
  let doc =
    "Render a crash report written by $(b,umh simulate --crash-dir): the \
     fatal reason, the offending causal chain as an indented tree with \
     per-hop wall-clock latencies, and the flight-recorder window summary."
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"REPORT.json"
           ~doc:"The crash-report file.")
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report_run $ file)

let perf_cmd =
  let record_pos n docv =
    Arg.(required & pos n (some file) None & info [] ~docv
           ~doc:"A telemetry JSONL stream (from $(b,simulate --telemetry)) or \
                 a BENCH_*.json bench record; the shape is detected from \
                 content.")
  in
  let summarize_cmd =
    let doc =
      "Reduce a performance record to its indicators: wall time per \
       simulated second, per-sim-second event rates, merged histogram \
       totals (telemetry), or cost/overhead leaves (bench records)."
    in
    Cmd.v (Cmd.info "summarize" ~doc)
      Term.(const perf_summarize_run $ record_pos 0 "RECORD")
  in
  let diff_cmd =
    let doc =
      "Compare two performance records indicator by indicator (higher is \
       worse). Exits 1 when any shared indicator regressed beyond the \
       tolerance, so BENCH_PR3..PR6 and successive telemetry runs form a \
       mechanically checked trajectory; indicators present in only one \
       record are reported but never fail."
    in
    let tolerance =
      Arg.(value & opt float Obs.Perfcmp.default_tolerance
             & info [ "tolerance" ] ~docv:"FRACTION"
               ~doc:"Relative regression threshold: flag when new > old * \
                     (1 + FRACTION).")
    in
    let section =
      Arg.(value & opt (some string) None & info [ "section" ] ~docv:"NAME"
             ~doc:"Compare only indicators in this section (key prefix \
                   before the first dot, e.g. $(b,shard) for the sharded-run \
                   points of a BENCH record). Exits 2 when neither record \
                   has any.")
    in
    Cmd.v (Cmd.info "diff" ~doc)
      Term.(const perf_diff_run $ record_pos 0 "OLD" $ record_pos 1 "NEW"
            $ tolerance $ section)
  in
  let doc = "Summarize and diff performance records (telemetry streams, bench files)." in
  Cmd.group (Cmd.info "perf" ~doc) [ summarize_cmd; diff_cmd ]

let stereotypes_cmd =
  let doc = "Print the paper's Table 1 (stereotype registry)." in
  Cmd.v (Cmd.info "stereotypes" ~doc) Term.(const stereotypes_run $ const ())

let sched_cmd =
  let doc = "Schedulability analysis of the model's thread assignment." in
  let utilization =
    Arg.(value & opt float 0.1 & info [ "u"; "utilization" ] ~docv:"FRACTION"
           ~doc:"Assumed per-thread utilization for the wcet model.")
  in
  Cmd.v (Cmd.info "sched" ~doc) Term.(const sched_run $ model_arg $ utilization)

let main =
  let doc = "unified modeling of complex real-time control systems (DATE 2005)" in
  Cmd.group (Cmd.info "umh" ~version:"1.0.0" ~doc)
    [ check_cmd; simulate_cmd; codegen_cmd; fmt_cmd; lint_cmd; analyze_cmd;
      report_cmd; perf_cmd; stereotypes_cmd; sched_cmd ]

(* Usage errors (unknown subcommand, bad flags) print to stderr and exit 2
   — cmdliner's default for these is 124, which scripts read as a timeout. *)
let () =
  match Cmd.eval_value main with
  | Ok (`Ok ()) | Ok `Version | Ok `Help -> exit 0
  | Error `Parse | Error `Term -> exit 2
  | Error `Exn -> exit 3
