test/test_alloc.ml: Alcotest Array Gc Hybrid Ode
