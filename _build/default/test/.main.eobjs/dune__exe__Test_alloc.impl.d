test/test_alloc.ml: Alcotest Array Fault Gc Hybrid Obs Ode
