test/test_alloc.ml: Alcotest Analysis Array Fault Gc Hybrid List Obs Ode
