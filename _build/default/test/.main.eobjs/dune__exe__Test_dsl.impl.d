test/test_dsl.ml: Alcotest Array Codegen Dsl Filename Float Hybrid List Printf QCheck QCheck_alcotest Sigtrace String Sys Umlrt
