test/main.ml: Alcotest Test_baseline Test_codegen Test_control Test_core Test_dataflow Test_des Test_dsl Test_hybrid Test_obs Test_ode Test_plant Test_rt Test_sigtrace Test_statechart Test_umlrt
