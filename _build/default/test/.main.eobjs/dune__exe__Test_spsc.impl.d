test/test_spsc.ml: Alcotest Domain List QCheck QCheck_alcotest Queue Shard
