test/test_obs.ml: Alcotest Array Dataflow Float Fun Hybrid List Obs Ode Option Printf Statechart String Sys Umlrt
