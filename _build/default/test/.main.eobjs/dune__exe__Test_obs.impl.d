test/test_obs.ml: Alcotest Array Dataflow Float Format Fun Hybrid Int64 List Obs Ode Option Printf QCheck QCheck_alcotest Statechart String Sys Umlrt
