test/test_causal.ml: Alcotest Array Dataflow Des Fault Filename Float Fun Gc Hybrid List Obs Ode Option Printf Statechart String Sys Umlrt Unix
