test/main.mli:
