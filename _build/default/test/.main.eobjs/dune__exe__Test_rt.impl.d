test/test_rt.ml: Alcotest Des Float List Printf QCheck QCheck_alcotest Rt String
