test/test_baseline.ml: Alcotest Array Baseline Des Float List Ode Printf Sigtrace
