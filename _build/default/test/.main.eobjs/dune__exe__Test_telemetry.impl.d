test/test_telemetry.ml: Alcotest Array Buffer Float Fun Hybrid Int64 List Obs Ode String
