test/test_control.ml: Alcotest Array Control Float Gen List Ode Plant Printf QCheck QCheck_alcotest
