test/test_umlrt.ml: Alcotest Des List Printf Statechart String Umlrt
