test/test_dataflow.ml: Alcotest Dataflow Flow_type Graph List Option Port Printf QCheck QCheck_alcotest String Value
