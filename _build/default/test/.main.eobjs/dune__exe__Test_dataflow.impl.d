test/test_dataflow.ml: Alcotest Dataflow Flow_type Graph List Port QCheck QCheck_alcotest String Value
