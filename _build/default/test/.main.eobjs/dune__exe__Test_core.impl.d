test/test_core.ml: Alcotest Array Dataflow Des Float Hybrid List Ode Option Printf QCheck QCheck_alcotest Rt Sigtrace Statechart String Umlrt
