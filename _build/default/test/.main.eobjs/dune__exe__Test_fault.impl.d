test/test_fault.ml: Alcotest Array Des Fault Float Hybrid Int64 List Ode Printf Sigtrace Statechart String Umlrt
