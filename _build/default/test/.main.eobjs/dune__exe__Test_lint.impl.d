test/test_lint.ml: Alcotest Filename Lint List Obs Option String
