test/test_lint.ml: Alcotest Analysis Filename Lint List Obs Option Printf String
