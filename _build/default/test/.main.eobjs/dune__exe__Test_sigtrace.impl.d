test/test_sigtrace.ml: Alcotest Float Gen List Printf QCheck QCheck_alcotest Sigtrace
