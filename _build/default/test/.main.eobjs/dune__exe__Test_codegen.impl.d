test/test_codegen.ml: Alcotest Buffer Codegen Dsl Filename List Printf String Sys Unix
