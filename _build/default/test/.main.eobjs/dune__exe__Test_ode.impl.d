test/test_ode.ml: Alcotest Array Float Gen Int64 List Ode Printf QCheck QCheck_alcotest String
