test/test_ode.ml: Alcotest Array Float Gen List Ode Printf QCheck QCheck_alcotest
