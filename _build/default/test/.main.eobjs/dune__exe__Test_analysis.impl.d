test/test_analysis.ml: Alcotest Analysis Array Dsl Fun Hybrid Int64 List Obs Option Rt String
