test/test_shard.ml: Alcotest Dsl Hybrid In_channel List Obs Printf Rt Shard Sigtrace Stdlib String
