test/test_des.ml: Alcotest Bytes Des Float Fun Gc Gen List Printf QCheck QCheck_alcotest Weak
