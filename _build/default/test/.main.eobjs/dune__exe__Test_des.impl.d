test/test_des.ml: Alcotest Des Float Fun Gen List Printf QCheck QCheck_alcotest
