test/test_statechart.ml: Alcotest Dataflow Gen List QCheck QCheck_alcotest Statechart
