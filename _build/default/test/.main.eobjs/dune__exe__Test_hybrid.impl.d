test/test_hybrid.ml: Alcotest Array Dataflow Float Hybrid List Ode Printf Sigtrace Statechart Umlrt
