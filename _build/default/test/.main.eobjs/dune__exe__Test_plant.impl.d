test/test_plant.ml: Alcotest Array Float Ode Plant Printf
