(* Integration tests of the core hybrid engine: the paper's architecture
   end-to-end — capsule state machine on the event thread, streamer solver
   on its own thread, SPort signals both ways, DPort flows, zero-crossing
   guards. *)

let check_float = Alcotest.(check (float 1e-6))

(* A thermostat: a capsule with a bang-bang state machine (Heating/Idle)
   linked to a thermal-plant streamer. The streamer reports temperature
   crossings through guards; the capsule switches the heater parameter
   through a strategy. *)

let temp_protocol =
  Umlrt.Protocol.create "Thermo"
    ~incoming:
      [ Umlrt.Protocol.signal "too_cold"; Umlrt.Protocol.signal "too_hot" ]
    ~outgoing:
      [ Umlrt.Protocol.signal "heater_on"; Umlrt.Protocol.signal "heater_off" ]

(* Thermal plant as a streamer: T' = -(T - ambient)/tau + gain * u, with
   u the "duty" parameter the strategy controls. Guards fire when the
   temperature crosses the low/high thresholds. *)
let thermal_streamer ~low ~high =
  let rhs (env : Hybrid.Solver.env) _t y =
    let duty = env.Hybrid.Solver.param "duty" in
    let ambient = env.Hybrid.Solver.param "ambient" in
    let tau = env.Hybrid.Solver.param "tau" in
    let gain = env.Hybrid.Solver.param "gain" in
    [| (-.(y.(0) -. ambient) /. tau) +. (gain *. duty) |]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"heater_on"
    (Hybrid.Strategy.set_param_const "duty" 1.);
  Hybrid.Strategy.on strategy ~signal:"heater_off"
    (Hybrid.Strategy.set_param_const "duty" 0.);
  let guards =
    [ { Hybrid.Streamer.guard_id = "low"; signal = "too_cold"; via_sport = "ctl";
        direction = Ode.Events.Falling;
        expr = (fun _env _t y -> y.(0) -. low); payload = None };
      { Hybrid.Streamer.guard_id = "high"; signal = "too_hot"; via_sport = "ctl";
        direction = Ode.Events.Rising;
        expr = (fun _env _t y -> y.(0) -. high); payload = None } ]
  in
  Hybrid.Streamer.leaf "room"
    ~rate:0.05
    ~dim:1 ~init:[| 20.0 |]
    ~params:[ ("duty", 0.); ("ambient", 15.); ("tau", 20.); ("gain", 0.8) ]
    ~dports:[ Hybrid.Streamer.dport_out "temp" ]
    ~sports:[ Hybrid.Streamer.sport ~conjugated:true "ctl" temp_protocol ]
    ~guards ~strategy
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
    ~rhs

let make_thermostat_engine () =
  let behavior (services : Umlrt.Capsule.services) =
    (* Transitions capture [services] so actions can send; built per
       instance on a fresh machine to keep instances independent. *)
    let m = Statechart.Machine.create "thermostat" in
    Statechart.Machine.add_state m "Idle";
    Statechart.Machine.add_state m "Heating";
    Statechart.Machine.set_initial m "Idle";
    let send signal _ctx _event =
      services.Umlrt.Capsule.send ~port:"plant" (Statechart.Event.make signal)
    in
    Statechart.Machine.add_transition m ~src:"Idle" ~dst:"Heating"
      ~trigger:"too_cold" ~action:(send "heater_on") ();
    Statechart.Machine.add_transition m ~src:"Heating" ~dst:"Idle"
      ~trigger:"too_hot" ~action:(send "heater_off") ();
    let instance = ref None in
    { Umlrt.Capsule.on_start = (fun () -> instance := Some (Statechart.Instance.start m ()));
      on_event =
        (fun ~port:_ event ->
           match !instance with
           | Some i -> Statechart.Instance.handle i event
           | None -> false);
      configuration =
        (fun () ->
           match !instance with
           | Some i -> Statechart.Instance.configuration i
           | None -> []) }
  in
  let root =
    Umlrt.Capsule.create "controller"
      ~ports:[ Umlrt.Capsule.port "plant" temp_protocol ]
      ~behavior
  in
  let engine = Hybrid.Engine.create ~root () in
  Hybrid.Engine.add_streamer engine ~role:"room" (thermal_streamer ~low:19. ~high:21.);
  Hybrid.Engine.link_sport_exn engine ~role:"room" ~sport:"ctl" ~border_port:"plant";
  engine

let test_thermostat_regulates () =
  let engine = make_thermostat_engine () in
  let trace = Hybrid.Engine.trace_dport engine ~role:"room" ~dport:"temp" in
  Hybrid.Engine.run_until engine 600.;
  (* After settling, temperature must stay inside (and at most a hair
     beyond) the hysteresis band. *)
  let late =
    List.filter (fun (t, _) -> t > 100.) (Sigtrace.Trace.samples trace)
  in
  Alcotest.(check bool) "has late samples" true (List.length late > 100);
  List.iter
    (fun (_, temp) ->
       Alcotest.(check bool)
         (Printf.sprintf "temp %g within band" temp)
         true
         (temp > 18.5 && temp < 21.5))
    late;
  let stats = Hybrid.Engine.stats engine in
  Alcotest.(check bool) "streamer got signals" true
    (stats.Hybrid.Engine.signals_to_streamers > 2);
  Alcotest.(check bool) "capsule got signals" true
    (stats.Hybrid.Engine.signals_to_capsules > 2)

let test_thermostat_state_follows () =
  let engine = make_thermostat_engine () in
  Hybrid.Engine.run_until engine 600.;
  match Hybrid.Engine.runtime engine with
  | None -> Alcotest.fail "engine has a runtime"
  | Some rt ->
    (match Umlrt.Runtime.configuration rt "controller" with
     | Some config ->
       Alcotest.(check bool) "controller in a known state" true
         (List.mem "Idle" config || List.mem "Heating" config)
     | None -> Alcotest.fail "controller has a configuration")

let test_crossing_times_located () =
  (* Starting at 18 with the heater off, the room would cool toward 15;
     the too_cold guard at 19 must never fire (Falling crossing needs to
     reach 19 from above — we start below), so turn it around: start hot. *)
  let engine = make_thermostat_engine () in
  let solver =
    match Hybrid.Engine.solver_of engine "room" with
    | Some s -> s
    | None -> Alcotest.fail "room solver exists"
  in
  Hybrid.Solver.set_state solver [| 22. |];
  Hybrid.Engine.run_until engine 120.;
  (* From 22 cooling down, the 21-crossing (Rising) does not fire, but the
     19-crossing (Falling) does -> heater turns on. *)
  check_float "duty is on after falling crossing" 1.
    (Hybrid.Solver.get_param solver "duty")

let test_flow_between_streamers () =
  (* Producer streamer integrates x' = 1 (a ramp); consumer computes
     y' = input, so y(t) ~ t^2/2. Checks DPort flows move data. *)
  let producer =
    Hybrid.Streamer.leaf "producer" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_out "x" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
      ~rhs:(fun _env _t _y -> [| 1. |])
  in
  let consumer =
    Hybrid.Streamer.leaf "consumer" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_in "u"; Hybrid.Streamer.dport_out "y" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "y") ])
      ~rhs:(fun (env : Hybrid.Solver.env) _t _y -> [| env.Hybrid.Solver.input "u" |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"p" producer;
  Hybrid.Engine.add_streamer engine ~role:"c" consumer;
  Hybrid.Engine.connect_flow_exn engine ~src:("p", "x") ~dst:("c", "u");
  Hybrid.Engine.run_until engine 2.;
  (match Hybrid.Engine.read_dport engine ~role:"p" ~dport:"x" with
   | Some x -> check_float "ramp reaches 2" 2. x
   | None -> Alcotest.fail "producer output readable");
  (match Hybrid.Engine.read_dport engine ~role:"c" ~dport:"y" with
   | Some y ->
     Alcotest.(check bool)
       (Printf.sprintf "integrated ramp ~ 2 (got %g)" y)
       true
       (Float.abs (y -. 2.) < 0.05)
   | None -> Alcotest.fail "consumer output readable")

let test_relay_duplicates_flow () =
  let producer =
    Hybrid.Streamer.leaf "src" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_out "x" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
      ~rhs:(fun _ _ _ -> [| 1. |])
  in
  let sink name =
    Hybrid.Streamer.leaf name ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_in "u"; Hybrid.Streamer.dport_out "y" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "y") ])
      ~rhs:(fun (env : Hybrid.Solver.env) _ _ -> [| env.Hybrid.Solver.input "u" |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"s" producer;
  Hybrid.Engine.add_streamer engine ~role:"a" (sink "a");
  Hybrid.Engine.add_streamer engine ~role:"b" (sink "b");
  Hybrid.Engine.add_relay engine ~name:"r" Dataflow.Flow_type.float_flow ~fanout:2;
  Hybrid.Engine.connect_flow_exn engine ~src:("s", "x") ~dst:("r", "in");
  Hybrid.Engine.connect_flow_exn engine ~src:("r", "out1") ~dst:("a", "u");
  Hybrid.Engine.connect_flow_exn engine ~src:("r", "out2") ~dst:("b", "u");
  Hybrid.Engine.run_until engine 1.;
  let va = Hybrid.Engine.read_dport engine ~role:"a" ~dport:"y" in
  let vb = Hybrid.Engine.read_dport engine ~role:"b" ~dport:"y" in
  match (va, vb) with
  | Some a, Some b ->
    check_float "both relay branches deliver the same flow" a b;
    Alcotest.(check bool) "flow actually integrated" true (a > 0.3)
  | _, _ -> Alcotest.fail "both sinks readable"

let test_composite_streamer_flattens () =
  (* Composite: border input "u" -> child integrator -> border output "y". *)
  let child =
    Hybrid.Streamer.leaf "integ" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_in "in"; Hybrid.Streamer.dport_out "out" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "out") ])
      ~rhs:(fun (env : Hybrid.Solver.env) _ _ -> [| env.Hybrid.Solver.input "in" |])
  in
  let comp =
    Hybrid.Streamer.composite "block"
      ~dports:[ Hybrid.Streamer.dport_in "u"; Hybrid.Streamer.dport_out "y" ]
      ~children:[ ("i", child) ]
      ~flows:
        [ (Hybrid.Streamer.border "u", Hybrid.Streamer.child_port "i" "in");
          (Hybrid.Streamer.child_port "i" "out", Hybrid.Streamer.border "y") ]
  in
  let source =
    Hybrid.Streamer.leaf "one" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_out "x" ]
      ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> [ ("x", Dataflow.Value.Float 1.) ]))
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"src" source;
  Hybrid.Engine.add_streamer engine ~role:"blk" comp;
  Alcotest.(check (list string)) "composite flattens to leaf roles"
    [ "src"; "blk.i" ] (Hybrid.Engine.streamer_roles engine);
  Hybrid.Engine.connect_flow_exn engine ~src:("src", "x") ~dst:("blk", "u");
  Hybrid.Engine.run_until engine 1.;
  match Hybrid.Engine.read_dport engine ~role:"blk" ~dport:"y" with
  | Some y ->
    Alcotest.(check bool)
      (Printf.sprintf "integrates the constant through the border (got %g)" y)
      true
      (Float.abs (y -. 1.) < 0.05)
  | None -> Alcotest.fail "composite border output readable"

let test_flow_type_subset_rule () =
  let rich =
    Dataflow.Flow_type.record
      [ ("value", Dataflow.Flow_type.TFloat); ("quality", Dataflow.Flow_type.TInt) ]
  in
  let producer =
    Hybrid.Streamer.leaf "p" ~rate:0.1 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_out "x" ]  (* scalar float flow *)
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  let consumer_rich =
    Hybrid.Streamer.leaf "c" ~rate:0.1 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_in ~dtype:rich "u" ]
      ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> []))
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"p" producer;
  Hybrid.Engine.add_streamer engine ~role:"c" consumer_rich;
  (* Paper rule: output's type must be a subset of the input's. The scalar
     {value: float} IS a subset of {value: float; quality: int}: allowed. *)
  (match Hybrid.Engine.connect_flow engine ~src:("p", "x") ~dst:("c", "u") with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("subset connection should be accepted: " ^ e));
  (* And the reverse direction must be rejected. *)
  let producer_rich =
    Hybrid.Streamer.leaf "pr" ~rate:0.1 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_out ~dtype:rich "x" ]
      ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> []))
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  let consumer_scalar =
    Hybrid.Streamer.leaf "cs" ~rate:0.1 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_in "u" ]
      ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> []))
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  Hybrid.Engine.add_streamer engine ~role:"pr" producer_rich;
  Hybrid.Engine.add_streamer engine ~role:"cs" consumer_scalar;
  match Hybrid.Engine.connect_flow engine ~src:("pr", "x") ~dst:("cs", "u") with
  | Ok () -> Alcotest.fail "superset -> scalar must be rejected"
  | Error _ -> ()

let test_streamer_validation () =
  Alcotest.check_raises "init/dim mismatch"
    (Invalid_argument "Hybrid.Streamer.leaf: init state dimension mismatch")
    (fun () ->
       ignore
         (Hybrid.Streamer.leaf "bad" ~rate:0.1 ~dim:2 ~init:[| 0. |]
            ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> []))
            ~rhs:(fun _ _ _ -> [| 0.; 0. |])))

let test_stats_and_ticks () =
  let s =
    Hybrid.Streamer.leaf "s" ~rate:0.1 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_out "x" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
      ~rhs:(fun _ _ _ -> [| 1. |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"s" s;
  Hybrid.Engine.run_until engine 1.0;
  let ticks = Hybrid.Engine.ticks_of engine "s" in
  Alcotest.(check bool) (Printf.sprintf "about 10 ticks (got %d)" ticks) true
    (ticks >= 9 && ticks <= 11)

let suite =
  [ Alcotest.test_case "thermostat regulates within band" `Quick test_thermostat_regulates;
    Alcotest.test_case "thermostat capsule state tracks plant" `Quick test_thermostat_state_follows;
    Alcotest.test_case "zero-crossing guard fires strategies" `Quick test_crossing_times_located;
    Alcotest.test_case "flows carry data between streamers" `Quick test_flow_between_streamers;
    Alcotest.test_case "relay duplicates one flow into two" `Quick test_relay_duplicates_flow;
    Alcotest.test_case "composite streamer flattens and relays" `Quick test_composite_streamer_flattens;
    Alcotest.test_case "flow-type subset rule (paper direction)" `Quick test_flow_type_subset_rule;
    Alcotest.test_case "leaf validation rejects bad dims" `Quick test_streamer_validation;
    Alcotest.test_case "ticks follow the declared rate" `Quick test_stats_and_ticks ]
