(* Numerical substrate tests: convergence orders, analytic comparisons,
   adaptive error control, implicit stability, dense output, and
   zero-crossing location. Includes qcheck properties on Linalg. *)

let check_float tol = Alcotest.(check (float tol))

(* y' = -y, y(0) = 1: exact e^{-t}. *)
let decay = Ode.System.create ~dim:1 (fun _t y -> [| -.y.(0) |])

(* Harmonic oscillator: y'' = -y as a 2-system; exact (cos t, -sin t). *)
let oscillator =
  Ode.System.create ~dim:2 (fun _t y -> [| y.(1); -.y.(0) |])

(* ---- Linalg ---- *)

let test_linalg_solve () =
  let a = [| [| 4.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 1.; 2. |] in
  let x = Ode.Linalg.solve a b in
  let residual = Ode.Linalg.sub (Ode.Linalg.mat_vec a x) b in
  Alcotest.(check bool) "residual small" true (Ode.Linalg.norm_inf residual < 1e-12)

let test_linalg_solve_pivoting () =
  (* Leading zero forces a row swap. *)
  let a = [| [| 0.; 1. |]; [| 2.; 0. |] |] in
  let x = Ode.Linalg.solve a [| 3.; 4. |] in
  check_float 1e-12 "x0" 2. x.(0);
  check_float 1e-12 "x1" 3. x.(1)

let test_linalg_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular"
    (Failure "Ode.Linalg.solve: singular matrix")
    (fun () -> ignore (Ode.Linalg.solve a [| 1.; 1. |]))

let test_linalg_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Ode.Linalg.add: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Ode.Linalg.add [| 1.; 2. |] [| 1.; 2.; 3. |]))

(* qcheck: solve really inverts for random well-conditioned systems. *)
let prop_solve_inverts =
  QCheck.Test.make ~count:100 ~name:"linalg solve then multiply is identity"
    QCheck.(array_of_size (Gen.return 3) (float_bound_exclusive 10.))
    (fun x ->
       QCheck.assume (Array.for_all (fun v -> Float.abs v < 10.) x);
       (* Diagonally dominant matrix: always solvable. *)
       let a =
         Array.init 3 (fun i ->
             Array.init 3 (fun j -> if i = j then 20. else float_of_int ((i + (2 * j)) mod 3)))
       in
       let b = Ode.Linalg.mat_vec a x in
       let x' = Ode.Linalg.solve a b in
       Ode.Linalg.approx_equal ~tol:1e-8 x x')

let prop_lerp_endpoints =
  QCheck.Test.make ~count:100 ~name:"lerp hits endpoints"
    QCheck.(pair (array_of_size (Gen.return 4) (float_bound_exclusive 100.))
              (array_of_size (Gen.return 4) (float_bound_exclusive 100.)))
    (fun (a, b) ->
       Ode.Linalg.approx_equal (Ode.Linalg.lerp 0. a b) a
       && Ode.Linalg.approx_equal (Ode.Linalg.lerp 1. a b) b)

(* ---- fixed-step methods ---- *)

let error_at scheme dt =
  let y = Ode.Fixed.integrate scheme decay ~t0:0. ~t1:1. ~dt [| 1. |] in
  Float.abs (y.(0) -. exp (-1.))

let test_convergence_order scheme () =
  (* Halving dt must reduce error by ~2^order. *)
  let e1 = error_at scheme 0.02 in
  let e2 = error_at scheme 0.01 in
  let observed = Float.log (e1 /. e2) /. Float.log 2. in
  let expected = float_of_int (Ode.Fixed.order scheme) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: observed order %.2f ~ %g"
       (Ode.Fixed.scheme_name scheme) observed expected)
    true
    (Float.abs (observed -. expected) < 0.35)

let test_rk4_oscillator_energy () =
  let y = Ode.Fixed.integrate Ode.Fixed.Rk4 oscillator ~t0:0. ~t1:20. ~dt:0.01 [| 1.; 0. |] in
  let energy = (y.(0) *. y.(0)) +. (y.(1) *. y.(1)) in
  Alcotest.(check bool) "energy drift < 1e-6" true (Float.abs (energy -. 1.) < 1e-6)

let test_trajectory_mesh () =
  let traj = Ode.Fixed.trajectory Ode.Fixed.Euler decay ~t0:0. ~t1:1. ~dt:0.25 [| 1. |] in
  let times = List.map fst traj in
  Alcotest.(check int) "5 mesh points" 5 (List.length times);
  check_float 1e-12 "ends exactly at t1" 1. (List.nth times 4)

let test_final_partial_step () =
  (* t1 - t0 not a multiple of dt: the final step is shortened. *)
  let y = Ode.Fixed.integrate Ode.Fixed.Rk4 decay ~t0:0. ~t1:1. ~dt:0.3 [| 1. |] in
  Alcotest.(check bool) "accurate despite ragged mesh" true
    (Float.abs (y.(0) -. exp (-1.)) < 1e-4)

let test_bad_dt_rejected () =
  Alcotest.check_raises "dt <= 0"
    (Invalid_argument "Ode.Fixed.step: dt must be positive")
    (fun () -> ignore (Ode.Fixed.step Ode.Fixed.Euler decay ~t:0. ~dt:0. [| 1. |]))

(* ---- adaptive methods ---- *)

let test_adaptive_accuracy scheme () =
  let control = { Ode.Adaptive.default_control with rtol = 1e-9; atol = 1e-12 } in
  let y, stats = Ode.Adaptive.integrate ~scheme ~control decay ~t0:0. ~t1:2. [| 1. |] in
  Alcotest.(check bool)
    (Printf.sprintf "%s within 1e-8" (Ode.Adaptive.scheme_name scheme))
    true
    (Float.abs (y.(0) -. exp (-2.)) < 1e-8);
  Alcotest.(check bool) "took steps" true (stats.Ode.Adaptive.accepted > 0)

let test_adaptive_adapts () =
  (* Stiff-ish: y' = -50 (y - cos t). Loose tolerance must use far fewer
     steps than tight tolerance. *)
  let sys = Ode.System.create ~dim:1 (fun t y -> [| -50. *. (y.(0) -. cos t) |]) in
  let steps control =
    let _, stats = Ode.Adaptive.integrate ~control sys ~t0:0. ~t1:3. [| 0. |] in
    stats.Ode.Adaptive.accepted + stats.Ode.Adaptive.rejected
  in
  let loose = steps { Ode.Adaptive.default_control with rtol = 1e-3; atol = 1e-6 } in
  let tight = steps { Ode.Adaptive.default_control with rtol = 1e-10; atol = 1e-13 } in
  Alcotest.(check bool)
    (Printf.sprintf "loose %d < tight %d" loose tight)
    true (loose < tight)

let test_adaptive_rejections_counted () =
  let sys =
    (* A sharp transient at the start forces rejections of optimistic steps. *)
    Ode.System.create ~dim:1 (fun t y -> [| -1000. *. y.(0) *. exp (-10. *. t) |])
  in
  let _, stats =
    Ode.Adaptive.integrate
      ~control:{ Ode.Adaptive.default_control with rtol = 1e-8; atol = 1e-10 }
      sys ~t0:0. ~t1:1. [| 1. |]
  in
  Alcotest.(check bool) "some rejected" true (stats.Ode.Adaptive.rejected >= 0)

(* ---- implicit methods ---- *)

let test_backward_euler_stiff_stable () =
  (* lambda = -1e4, dt far beyond the explicit stability limit. *)
  let sys = Ode.System.create ~dim:1 (fun _t y -> [| -1e4 *. y.(0) |]) in
  let y = Ode.Implicit.integrate `Backward_euler sys ~t0:0. ~t1:1. ~dt:0.01 [| 1. |] in
  Alcotest.(check bool) "decays (no blow-up)" true (Float.abs y.(0) < 1e-3)

let test_explicit_euler_stiff_unstable () =
  (* Contrast: explicit Euler at the same step explodes. *)
  let sys = Ode.System.create ~dim:1 (fun _t y -> [| -1e4 *. y.(0) |]) in
  let y = Ode.Fixed.integrate Ode.Fixed.Euler sys ~t0:0. ~t1:0.1 ~dt:0.01 [| 1. |] in
  Alcotest.(check bool) "blows up" true (Float.abs y.(0) > 1e3)

let test_trapezoidal_second_order () =
  let e dt =
    let y = Ode.Implicit.integrate `Trapezoidal decay ~t0:0. ~t1:1. ~dt [| 1. |] in
    Float.abs (y.(0) -. exp (-1.))
  in
  let order = Float.log (e 0.02 /. e 0.01) /. Float.log 2. in
  Alcotest.(check bool) (Printf.sprintf "order %.2f ~ 2" order) true
    (Float.abs (order -. 2.) < 0.3)

(* ---- dense output & events ---- *)

let test_dense_matches_solution () =
  let t0 = 0. and t1 = 0.5 in
  let y0 = [| 1. |] in
  let y1 = [| exp (-0.5) |] in
  let interp = Ode.Dense.of_system decay ~t0 ~y0 ~t1 ~y1 in
  let mid = Ode.Dense.eval interp 0.25 in
  Alcotest.(check bool) "cubic Hermite within 5e-4" true
    (Float.abs (mid.(0) -. exp (-0.25)) < 5e-4)

let test_zero_crossing_location () =
  (* Oscillator starting at (1, 0): y0 crosses zero at t = pi/2. *)
  let integ =
    Ode.Integrator.create ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 0.01))
      oscillator ~t0:0. [| 1.; 0. |]
  in
  let guard = Ode.Events.guard ~direction:Ode.Events.Falling "y0" (fun _t y -> y.(0)) in
  (match Ode.Integrator.advance_guarded integ 3. [ guard ] with
   | Ode.Integrator.Interrupted crossing ->
     Alcotest.(check bool)
       (Printf.sprintf "crossing at %.6f ~ pi/2" crossing.Ode.Events.time)
       true
       (Float.abs (crossing.Ode.Events.time -. (Float.pi /. 2.)) < 1e-4)
   | Ode.Integrator.Reached _ -> Alcotest.fail "expected a crossing")

let test_direction_filtering () =
  (* Rising-only guard must not fire on a falling crossing. *)
  let integ =
    Ode.Integrator.create ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 0.01))
      oscillator ~t0:0. [| 1.; 0. |]
  in
  let guard = Ode.Events.guard ~direction:Ode.Events.Rising "y0" (fun _t y -> y.(0)) in
  (match Ode.Integrator.advance_guarded integ 2. [ guard ] with
   | Ode.Integrator.Reached _ -> ()
   | Ode.Integrator.Interrupted c ->
     Alcotest.fail (Printf.sprintf "unexpected crossing at %g" c.Ode.Events.time))

let test_first_of_many_guards () =
  let integ =
    Ode.Integrator.create ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 0.01))
      oscillator ~t0:0. [| 1.; 0. |]
  in
  (* y0 falls through 0.5 before it falls through 0. *)
  let g_half = Ode.Events.guard ~direction:Ode.Events.Falling "half" (fun _ y -> y.(0) -. 0.5) in
  let g_zero = Ode.Events.guard ~direction:Ode.Events.Falling "zero" (fun _ y -> y.(0)) in
  (match Ode.Integrator.advance_guarded integ 3. [ g_zero; g_half ] with
   | Ode.Integrator.Interrupted c ->
     Alcotest.(check string) "earliest guard wins" "half" c.Ode.Events.guard_name
   | Ode.Integrator.Reached _ -> Alcotest.fail "expected a crossing")

let test_integrator_advance_exact () =
  let integ = Ode.Integrator.create decay ~t0:0. [| 1. |] in
  ignore (Ode.Integrator.advance integ 1.);
  check_float 1e-12 "clock lands exactly" 1. (Ode.Integrator.time integ);
  Alcotest.(check bool) "value accurate" true
    (Float.abs ((Ode.Integrator.state integ).(0) -. exp (-1.)) < 1e-9)

let test_integrator_rejects_past () =
  let integ = Ode.Integrator.create decay ~t0:1. [| 1. |] in
  Alcotest.check_raises "past target"
    (Invalid_argument "Ode.Integrator.advance: target in the past")
    (fun () -> ignore (Ode.Integrator.advance integ 0.5))

let test_eval_count () =
  let sys = Ode.System.create ~dim:1 (fun _t y -> [| -.y.(0) |]) in
  ignore (Ode.Fixed.integrate Ode.Fixed.Rk4 sys ~t0:0. ~t1:1. ~dt:0.1 [| 1. |]);
  Alcotest.(check int) "4 evals per RK4 step" 40 (Ode.System.eval_count sys)

let suite =
  [ Alcotest.test_case "linalg: gaussian elimination" `Quick test_linalg_solve;
    Alcotest.test_case "linalg: partial pivoting" `Quick test_linalg_solve_pivoting;
    Alcotest.test_case "linalg: singular detection" `Quick test_linalg_singular;
    Alcotest.test_case "linalg: dimension checks" `Quick test_linalg_dim_mismatch;
    QCheck_alcotest.to_alcotest prop_solve_inverts;
    QCheck_alcotest.to_alcotest prop_lerp_endpoints;
    Alcotest.test_case "euler order 1" `Quick (test_convergence_order Ode.Fixed.Euler);
    Alcotest.test_case "midpoint order 2" `Quick (test_convergence_order Ode.Fixed.Midpoint);
    Alcotest.test_case "heun order 2" `Quick (test_convergence_order Ode.Fixed.Heun);
    Alcotest.test_case "rk4 order 4" `Quick (test_convergence_order Ode.Fixed.Rk4);
    Alcotest.test_case "rk4 conserves oscillator energy" `Quick test_rk4_oscillator_energy;
    Alcotest.test_case "trajectory mesh points" `Quick test_trajectory_mesh;
    Alcotest.test_case "ragged final step" `Quick test_final_partial_step;
    Alcotest.test_case "dt validation" `Quick test_bad_dt_rejected;
    Alcotest.test_case "dormand-prince accuracy" `Quick
      (test_adaptive_accuracy Ode.Adaptive.Dormand_prince);
    Alcotest.test_case "fehlberg accuracy" `Quick
      (test_adaptive_accuracy Ode.Adaptive.Fehlberg);
    Alcotest.test_case "step control adapts to tolerance" `Quick test_adaptive_adapts;
    Alcotest.test_case "rejection accounting" `Quick test_adaptive_rejections_counted;
    Alcotest.test_case "backward euler A-stable" `Quick test_backward_euler_stiff_stable;
    Alcotest.test_case "explicit euler unstable on stiff" `Quick
      test_explicit_euler_stiff_unstable;
    Alcotest.test_case "trapezoidal order 2" `Quick test_trapezoidal_second_order;
    Alcotest.test_case "dense output accuracy" `Quick test_dense_matches_solution;
    Alcotest.test_case "zero crossing located at pi/2" `Quick test_zero_crossing_location;
    Alcotest.test_case "crossing direction filter" `Quick test_direction_filtering;
    Alcotest.test_case "earliest guard wins" `Quick test_first_of_many_guards;
    Alcotest.test_case "integrator lands exactly" `Quick test_integrator_advance_exact;
    Alcotest.test_case "integrator rejects past targets" `Quick test_integrator_rejects_past;
    Alcotest.test_case "rhs evaluation counting" `Quick test_eval_count ]

(* qcheck: RK4 integrates polynomials of degree <= 3 exactly (its local
   truncation error starts at the 5th derivative of degree-4 terms). *)
let prop_rk4_exact_on_cubics =
  QCheck.Test.make ~count:100 ~name:"rk4 exact on cubic polynomials"
    QCheck.(quad (float_range (-2.) 2.) (float_range (-2.) 2.)
              (float_range (-2.) 2.) (float_range (-2.) 2.))
    (fun (a, b, c, d) ->
       (* y' = a t^3... wait: integrate y' = p(t): y(t) = P(t). *)
       let sys =
         Ode.System.create ~dim:1 (fun t _ ->
             [| (a *. t *. t *. t) +. (b *. t *. t) +. (c *. t) +. d |])
       in
       let y = Ode.Fixed.integrate Ode.Fixed.Rk4 sys ~t0:0. ~t1:1. ~dt:0.1 [| 0. |] in
       let exact = (a /. 4.) +. (b /. 3.) +. (c /. 2.) +. d in
       Float.abs (y.(0) -. exact) < 1e-10)

(* Wrong-dimension right-hand sides are caught at evaluation. *)
let test_bad_rhs_dimension () =
  let sys = Ode.System.create ~dim:2 (fun _ _ -> [| 0. |]) in
  Alcotest.(check bool) "dimension mismatch raises" true
    (try ignore (Ode.System.eval sys 0. [| 0.; 0. |]); false
     with Invalid_argument _ -> true)

let extra_suite =
  [ QCheck_alcotest.to_alcotest prop_rk4_exact_on_cubics;
    Alcotest.test_case "rhs dimension checked" `Quick test_bad_rhs_dimension ]

let suite = suite @ extra_suite

(* ---- allocation-free stepping: bit-exactness vs the boxed path ---- *)

(* step_into with an in-place rhs must agree bit-for-bit with step for
   every scheme — the hand-rolled kernels preserve the exact IEEE
   association of the reference formulas. *)
let test_step_into_bitexact () =
  let f0 t y = y.(1) +. (0.25 *. t) in
  let f1 t y = (-.y.(0)) -. (0.1 *. y.(1)) +. sin t in
  let boxed = Ode.System.create ~dim:2 (fun t y -> [| f0 t y; f1 t y |]) in
  let inplace =
    Ode.System.create_inplace ~dim:2 (fun tcell y dy ->
        let t = tcell.(0) in
        dy.(0) <- f0 t y;
        dy.(1) <- f1 t y)
  in
  List.iter
    (fun scheme ->
       let expected =
         Ode.Fixed.step scheme boxed ~t:0.3 ~dt:0.07 [| 1.0; -0.5 |]
       in
       let y = [| 1.0; -0.5 |] in
       let ws = Ode.Fixed.workspace ~dim:2 in
       Ode.Fixed.step_into scheme inplace ~ws ~t:0.3 ~dt:0.07 y;
       Array.iteri
         (fun i v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: component %d bit-exact (%h vs %h)"
                 (Ode.Fixed.scheme_name scheme) i v expected.(i))
              true
              (Int64.equal (Int64.bits_of_float v)
                 (Int64.bits_of_float expected.(i))))
         y)
    Ode.Fixed.all_schemes

(* step_into also works (allocating fallback) without an in-place rhs,
   and still matches step exactly. *)
let test_step_into_fallback () =
  let boxed = Ode.System.create ~dim:1 (fun t y -> [| (-.y.(0)) +. t |]) in
  let expected = Ode.Fixed.step Ode.Fixed.Rk4 boxed ~t:0.1 ~dt:0.05 [| 2. |] in
  let y = [| 2. |] in
  let ws = Ode.Fixed.workspace ~dim:1 in
  Ode.Fixed.step_into Ode.Fixed.Rk4 boxed ~ws ~t:0.1 ~dt:0.05 y;
  check_float 0. "fallback path matches step" expected.(0) y.(0)

(* advance_into: lands on t1 with the expected step count and matches
   the analytic solution of y' = -y to the scheme's accuracy. *)
let test_advance_into_decay () =
  let sys =
    Ode.System.create_inplace ~dim:1 (fun _t y dy -> dy.(0) <- -.y.(0))
  in
  let ws = Ode.Fixed.workspace ~dim:1 in
  let y = [| 1. |] in
  let steps =
    Ode.Fixed.advance_into Ode.Fixed.Rk4 sys ~ws ~t0:0. ~t1:1. ~dt:0.01 y
  in
  Alcotest.(check int) "100 mesh steps" 100 steps;
  check_float 1e-9 "matches e^{-1}" (exp (-1.)) y.(0);
  (* partial final step: 1.0 / 0.3 -> 4 steps, last one shortened *)
  let y2 = [| 1. |] in
  let steps2 =
    Ode.Fixed.advance_into Ode.Fixed.Rk4 sys ~ws ~t0:0. ~t1:1. ~dt:0.3 y2
  in
  Alcotest.(check int) "partial final step counted" 4 steps2;
  check_float 1e-4 "still lands on t1" (exp (-1.)) y2.(0)

let inplace_suite =
  [ Alcotest.test_case "step_into bit-exact vs step" `Quick
      test_step_into_bitexact;
    Alcotest.test_case "step_into fallback path" `Quick
      test_step_into_fallback;
    Alcotest.test_case "advance_into decay" `Quick test_advance_into_decay ]

let suite = suite @ inplace_suite

(* ---- fault-sweep regressions: adaptive control validation ---- *)

let test_adaptive_control_validated () =
  let d = Ode.Adaptive.default_control in
  let bad ?(msg = "") c =
    match Ode.Adaptive.validate_control c with
    | () -> Alcotest.failf "accepted invalid control %s" msg
    | exception Invalid_argument m ->
      Alcotest.(check bool) (msg ^ " message is specific") true
        (String.length m > String.length "Ode.Adaptive: invalid control: ")
  in
  bad ~msg:"dt_min > dt_max" { d with dt_min = 1.; dt_max = 0.5 };
  bad ~msg:"safety <= 0" { d with safety = 0. };
  bad ~msg:"NaN safety" { d with safety = Float.nan };
  bad ~msg:"NaN rtol" { d with rtol = Float.nan };
  bad ~msg:"both tolerances zero" { d with rtol = 0.; atol = 0. };
  bad ~msg:"NaN dt_min" { d with dt_min = Float.nan };
  bad ~msg:"max_steps <= 0" { d with max_steps = 0 };
  Ode.Adaptive.validate_control d (* the default must pass *)

let test_integrator_rejects_bad_control () =
  let sys = Ode.System.create ~dim:1 (fun _ y -> [| -.y.(0) |]) in
  let bad = { Ode.Adaptive.default_control with dt_min = 1.; dt_max = 0.5 } in
  Alcotest.(check bool) "Integrator.create validates adaptive control" true
    (try
       ignore
         (Ode.Integrator.create
            ~method_:(Ode.Integrator.Adaptive (Ode.Adaptive.Dormand_prince, bad))
            sys ~t0:0. [| 1. |]);
       false
     with Invalid_argument _ -> true)

let test_integrator_reset () =
  let sys = Ode.System.create ~dim:1 (fun _ y -> [| -.y.(0) |]) in
  let integ = Ode.Integrator.create sys ~t0:0. [| 1. |] in
  Ode.Integrator.advance_to integ 1.;
  Ode.Integrator.reset integ ~t0:5. [| 2. |];
  Alcotest.(check (float 0.)) "clock reset" 5. (Ode.Integrator.time integ);
  Alcotest.(check (float 0.)) "state reset" 2. (Ode.Integrator.state integ).(0);
  (* the integrator keeps working from the new origin *)
  Ode.Integrator.advance_to integ 6.;
  Alcotest.(check bool) "advances from the reset point" true
    (Float.abs ((Ode.Integrator.state integ).(0) -. (2. *. exp (-1.))) < 1e-6)

let validation_suite =
  [ Alcotest.test_case "adaptive: control record validated" `Quick
      test_adaptive_control_validated;
    Alcotest.test_case "integrator: bad adaptive control rejected" `Quick
      test_integrator_rejects_bad_control;
    Alcotest.test_case "integrator: reset rebases time and state" `Quick
      test_integrator_reset ]

let suite = suite @ validation_suite
