let () =
  Alcotest.run "umh"
    [ ("ode", Test_ode.suite);
      ("des", Test_des.suite);
      ("dataflow", Test_dataflow.suite);
      ("statechart", Test_statechart.suite);
      ("rt", Test_rt.suite);
      ("umlrt", Test_umlrt.suite);
      ("sigtrace", Test_sigtrace.suite);
      ("plant", Test_plant.suite);
      ("control", Test_control.suite);
      ("baseline", Test_baseline.suite);
      ("hybrid-engine", Test_hybrid.suite);
      ("hybrid-core", Test_core.suite);
      ("alloc", Test_alloc.suite);
      ("dsl", Test_dsl.suite);
      ("lint", Test_lint.suite);
      ("analysis", Test_analysis.suite);
      ("codegen", Test_codegen.suite);
      ("obs", Test_obs.suite);
      ("causal", Test_causal.suite);
      ("fault", Test_fault.suite);
      ("telemetry", Test_telemetry.suite);
      ("spsc", Test_spsc.suite);
      ("shard", Test_shard.suite) ]
