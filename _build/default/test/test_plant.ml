(* Plant model tests: equilibria, analytic solutions, invariants
   (energy conservation), parameter validation. *)

let rk4 sys ~t1 ~dt y0 = Ode.Fixed.integrate Ode.Fixed.Rk4 sys ~t0:0. ~t1 ~dt y0

(* ---- pendulum ---- *)

let test_pendulum_small_angle () =
  let p = Plant.Pendulum.create ~damping:0. () in
  let theta0 = 0.05 in
  let y = rk4 (Plant.Pendulum.system_free p) ~t1:2. ~dt:1e-3 [| theta0; 0. |] in
  let expected = Plant.Pendulum.small_angle_solution p ~theta0 2. in
  Alcotest.(check bool)
    (Printf.sprintf "%.5f ~ %.5f (linearized)" y.(0) expected)
    true
    (Float.abs (y.(0) -. expected) < 2e-4)

let test_pendulum_energy_conserved () =
  let p = Plant.Pendulum.create ~damping:0. () in
  let y0 = [| 1.0; 0. |] in
  let e0 = Plant.Pendulum.energy p y0 in
  let y = rk4 (Plant.Pendulum.system_free p) ~t1:10. ~dt:1e-3 y0 in
  let e1 = Plant.Pendulum.energy p y in
  Alcotest.(check bool) "energy drift < 1e-8" true (Float.abs (e1 -. e0) < 1e-8)

let test_pendulum_damping_dissipates () =
  let p = Plant.Pendulum.create ~damping:0.05 () in
  let y0 = [| 1.0; 0. |] in
  let e0 = Plant.Pendulum.energy p y0 in
  let y = rk4 (Plant.Pendulum.system_free p) ~t1:10. ~dt:1e-3 y0 in
  Alcotest.(check bool) "energy strictly decreases" true
    (Plant.Pendulum.energy p y < e0)

let test_pendulum_linearization_signs () =
  let p = Plant.Pendulum.default in
  let hanging = Plant.Pendulum.linearized p ~upright:false in
  let upright = Plant.Pendulum.linearized p ~upright:true in
  Alcotest.(check bool) "hanging is stable (negative stiffness term)" true
    (hanging.(1).(0) < 0.);
  Alcotest.(check bool) "upright is unstable (positive stiffness term)" true
    (upright.(1).(0) > 0.)

let test_pendulum_validation () =
  Alcotest.(check bool) "zero mass rejected" true
    (try ignore (Plant.Pendulum.create ~mass:0. ()); false
     with Invalid_argument _ -> true)

(* ---- thermal ---- *)

let test_thermal_analytic_match () =
  let p = Plant.Thermal.default in
  let sys = Plant.Thermal.system_const p ~duty:0.6 in
  let y = rk4 sys ~t1:3600. ~dt:1. [| 18. |] in
  let expected = Plant.Thermal.analytic_const p ~duty:0.6 ~t0_temp:18. 3600. in
  Alcotest.(check bool)
    (Printf.sprintf "%.4f ~ %.4f" y.(0) expected)
    true
    (Float.abs (y.(0) -. expected) < 1e-6)

let test_thermal_equilibrium () =
  let p = Plant.Thermal.default in
  let eq = Plant.Thermal.equilibrium p ~duty:1. in
  let y = rk4 (Plant.Thermal.system_const p ~duty:1.) ~t1:(20. *. p.Plant.Thermal.time_constant)
      ~dt:10. [| 0. |] in
  Alcotest.(check bool) "converges to equilibrium" true (Float.abs (y.(0) -. eq) < 0.01)

let test_thermal_duty_clamped () =
  let p = Plant.Thermal.default in
  (* duty 5.0 behaves exactly like duty 1.0 *)
  let a = rk4 (Plant.Thermal.system_const p ~duty:5.) ~t1:100. ~dt:1. [| 20. |] in
  let b = rk4 (Plant.Thermal.system_const p ~duty:1.) ~t1:100. ~dt:1. [| 20. |] in
  Alcotest.(check (float 1e-12)) "clamped" b.(0) a.(0)

(* ---- dc motor ---- *)

let test_motor_steady_state () =
  let m = Plant.Dc_motor.default in
  let omega_ss, current_ss = Plant.Dc_motor.steady_state m ~voltage:12. in
  (* Mechanical time constant ~ J / (b + kt*ke/R) ~ 0.4 s; 5 s settles. *)
  let y = rk4 (Plant.Dc_motor.system_const m ~voltage:12.) ~t1:5. ~dt:1e-5 [| 0.; 0. |] in
  Alcotest.(check bool)
    (Printf.sprintf "omega %.2f ~ %.2f" y.(0) omega_ss)
    true
    (Float.abs (y.(0) -. omega_ss) < 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "current %.4f ~ %.4f" y.(1) current_ss)
    true
    (Float.abs (y.(1) -. current_ss) < 1e-2)

let test_motor_load_slows () =
  let m = Plant.Dc_motor.default in
  let free = rk4 (Plant.Dc_motor.system_const m ~voltage:12.) ~t1:2. ~dt:1e-5 [| 0.; 0. |] in
  let loaded =
    rk4
      (Plant.Dc_motor.system m ~voltage:(fun _ _ -> 12.) ~load:(fun _ _ -> 0.02) ())
      ~t1:2. ~dt:1e-5 [| 0.; 0. |]
  in
  Alcotest.(check bool) "load reduces speed" true (loaded.(0) < free.(0))

(* ---- water tank ---- *)

let test_tank_equilibrium () =
  let p = Plant.Water_tank.default in
  let q = 0.02 in
  let eq = Plant.Water_tank.equilibrium_level p ~inflow:q in
  let y = rk4 (Plant.Water_tank.system_const p ~inflow:q) ~t1:3000. ~dt:0.5 [| 0.5 |] in
  Alcotest.(check bool)
    (Printf.sprintf "level %.4f ~ %.4f" y.(0) eq)
    true
    (Float.abs (y.(0) -. eq) < 1e-3)

let test_tank_never_negative () =
  let p = Plant.Water_tank.default in
  let y = rk4 (Plant.Water_tank.system_const p ~inflow:0.) ~t1:5000. ~dt:0.05 [| 0.3 |] in
  (* The square-root corner at the empty tank lets a fixed step overshoot
     by at most one step's outflow; beyond that the derivative clamps. *)
  Alcotest.(check bool) "level >= -1e-3 (one-step overshoot max)" true
    (y.(0) >= -1e-3)

(* ---- mass-spring ---- *)

let test_mass_spring_underdamped_analytic () =
  let p = Plant.Mass_spring.default in
  Alcotest.(check bool) "underdamped" true (Plant.Mass_spring.damping_ratio p < 1.);
  let y = rk4 (Plant.Mass_spring.system_free p) ~t1:3. ~dt:1e-4 [| 0.1; 0. |] in
  let expected = Plant.Mass_spring.free_response p ~x0:0.1 ~v0:0. 3. in
  Alcotest.(check bool)
    (Printf.sprintf "%.6f ~ %.6f" y.(0) expected)
    true
    (Float.abs (y.(0) -. expected) < 1e-6)

let test_mass_spring_overdamped_analytic () =
  let p = Plant.Mass_spring.create ~damping:20. () in
  Alcotest.(check bool) "overdamped" true (Plant.Mass_spring.damping_ratio p > 1.);
  let y = rk4 (Plant.Mass_spring.system_free p) ~t1:2. ~dt:1e-4 [| 0.1; 0. |] in
  let expected = Plant.Mass_spring.free_response p ~x0:0.1 ~v0:0. 2. in
  Alcotest.(check bool) "matches closed form" true (Float.abs (y.(0) -. expected) < 1e-6)

let test_mass_spring_critical_analytic () =
  let k = 40. and m = 1. in
  let c = 2. *. sqrt (k *. m) in
  let p = Plant.Mass_spring.create ~mass:m ~stiffness:k ~damping:c () in
  let y = rk4 (Plant.Mass_spring.system_free p) ~t1:1. ~dt:1e-4 [| 0.1; 0.5 |] in
  let expected = Plant.Mass_spring.free_response p ~x0:0.1 ~v0:0.5 1. in
  Alcotest.(check bool) "critically damped closed form" true
    (Float.abs (y.(0) -. expected) < 1e-6)

(* ---- vehicle ---- *)

let test_vehicle_top_speed () =
  let v = Plant.Vehicle.default in
  let force = 2000. in
  let expected = Plant.Vehicle.top_speed v ~drive_force:force in
  let y =
    rk4 (Plant.Vehicle.system v ~drive_force:(fun _ _ -> force) ()) ~t1:600. ~dt:0.05
      [| 0.1 |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "speed %.2f ~ %.2f" y.(0) expected)
    true
    (Float.abs (y.(0) -. expected) < 0.05)

let test_vehicle_force_balance () =
  let v = Plant.Vehicle.default in
  let speed = 30. in
  let force = Plant.Vehicle.force_for_speed v ~speed in
  let y =
    rk4 (Plant.Vehicle.system v ~drive_force:(fun _ _ -> force) ()) ~t1:60. ~dt:0.05
      [| speed |]
  in
  Alcotest.(check bool) "holds the speed" true (Float.abs (y.(0) -. speed) < 1e-6)

let test_vehicle_hill_slows () =
  let v = Plant.Vehicle.default in
  let force = Plant.Vehicle.force_for_speed v ~speed:30. in
  let y =
    rk4
      (Plant.Vehicle.system v ~drive_force:(fun _ _ -> force)
         ~grade:(fun _ -> 0.05) ())
      ~t1:60. ~dt:0.05 [| 30. |]
  in
  Alcotest.(check bool) "uphill drops speed" true (y.(0) < 29.)

let suite =
  [ Alcotest.test_case "pendulum: small-angle analytic" `Quick test_pendulum_small_angle;
    Alcotest.test_case "pendulum: energy conserved" `Quick test_pendulum_energy_conserved;
    Alcotest.test_case "pendulum: damping dissipates" `Quick test_pendulum_damping_dissipates;
    Alcotest.test_case "pendulum: linearization signs" `Quick
      test_pendulum_linearization_signs;
    Alcotest.test_case "pendulum: validation" `Quick test_pendulum_validation;
    Alcotest.test_case "thermal: analytic solution" `Quick test_thermal_analytic_match;
    Alcotest.test_case "thermal: equilibrium" `Quick test_thermal_equilibrium;
    Alcotest.test_case "thermal: duty clamped" `Quick test_thermal_duty_clamped;
    Alcotest.test_case "motor: steady state" `Quick test_motor_steady_state;
    Alcotest.test_case "motor: load torque" `Quick test_motor_load_slows;
    Alcotest.test_case "tank: Torricelli equilibrium" `Quick test_tank_equilibrium;
    Alcotest.test_case "tank: level never negative" `Quick test_tank_never_negative;
    Alcotest.test_case "mass-spring: underdamped" `Quick
      test_mass_spring_underdamped_analytic;
    Alcotest.test_case "mass-spring: overdamped" `Quick test_mass_spring_overdamped_analytic;
    Alcotest.test_case "mass-spring: critically damped" `Quick
      test_mass_spring_critical_analytic;
    Alcotest.test_case "vehicle: top speed" `Quick test_vehicle_top_speed;
    Alcotest.test_case "vehicle: force balance" `Quick test_vehicle_force_balance;
    Alcotest.test_case "vehicle: hills" `Quick test_vehicle_hill_slows ]
