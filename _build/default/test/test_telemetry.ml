(* Telemetry stream: the zero-cost-when-off differential guarantee, the
   drift-free sim-time cadence, the tick cadence, record shape, and the
   Perfcmp analysis core behind `umh perf`. All tests stop the global
   emitter on exit — telemetry is process-wide state, like the metrics
   registry it reads. *)

let with_telemetry f = Fun.protect ~finally:Obs.Telemetry.stop f

(* A one-streamer thermal plant; [rate] is the tick period. Cadence
   tests pass binary-exact rates (0.125, 0.25, ...) so tick times carry
   no accumulated FP lag and boundary counts are exact. *)
let plant_engine ~rate () =
  let plant =
    Hybrid.Streamer.leaf "plant" ~rate ~dim:1 ~init:[| 18. |]
      ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 0.002))
      ~params:[ ("ambient", 5.); ("tau", 30.) ]
      ~dports:[ Hybrid.Streamer.dport_out "temp" ]
      ~rhs_into:(fun env _tcell y dy ->
          dy.(0) <-
            -.(y.(0) -. env.Hybrid.Solver.param "ambient")
            /. env.Hybrid.Solver.param "tau")
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
      ~rhs:(fun env _t y ->
          [| -.(y.(0) -. env.Hybrid.Solver.param "ambient")
             /. env.Hybrid.Solver.param "tau" |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"plant" plant;
  engine

let final_state_bits engine =
  match Hybrid.Engine.solver_of engine "plant" with
  | Some s -> Int64.bits_of_float (Hybrid.Solver.state s).(0)
  | None -> Alcotest.fail "plant solver missing"

(* ---- zero-cost-when-off: differential bit-identity ---- *)

(* The emitter reads runtime state but never writes model state, so a
   telemetry-on run must be bit-identical to a telemetry-off run of the
   same model — same solver trajectory, same discrete history. *)
let test_on_off_bit_identical () =
  with_telemetry (fun () ->
      let run ~telemetry =
        Obs.Telemetry.stop ();
        if telemetry then
          Obs.Telemetry.configure ~every:0.5 (fun _line -> ());
        let engine = plant_engine ~rate:0.125 () in
        Hybrid.Engine.run_until engine 10.;
        let bits = final_state_bits engine in
        let stats = Hybrid.Engine.stats engine in
        let ticks = Hybrid.Engine.ticks_of engine "plant" in
        (bits, stats, ticks)
      in
      let b_off, s_off, t_off = run ~telemetry:false in
      let b_on, s_on, t_on = run ~telemetry:true in
      Alcotest.(check bool) "final state bit-identical" true
        (Int64.equal b_off b_on);
      Alcotest.(check bool) "same discrete history" true (s_off = s_on);
      Alcotest.(check int) "same tick count" t_off t_on)

(* ---- sim-time cadence ---- *)

(* Binary-exact everything: rate 0.125, cadence 0.25, horizon 10.
   Boundaries at 0.25 k for k = 1..40 plus the seq-0 stream-open record
   = exactly floor(horizon/every) + 1 records. *)
let test_sim_cadence_count () =
  with_telemetry (fun () ->
      let lines = ref [] in
      Obs.Telemetry.configure ~every:0.25 (fun l -> lines := l :: !lines);
      let engine = plant_engine ~rate:0.125 () in
      Hybrid.Engine.run_until engine 10.;
      let expected = int_of_float (Float.floor (10. /. 0.25)) + 1 in
      Alcotest.(check int) "record count" expected (List.length !lines);
      Alcotest.(check int) "records () agrees" expected
        (Obs.Telemetry.records ()))

(* Events sparser than the cadence: one record per event, never a burst
   of catch-up records. Rate 0.5 against cadence 0.125 crosses four
   boundaries per tick but must emit once (the largest pending boundary
   below the tick), plus the stream-open record and the end-of-run
   flush of the trailing boundary at the horizon. *)
let test_sparse_ticks_no_burst () =
  with_telemetry (fun () ->
      let n = ref 0 in
      Obs.Telemetry.configure ~every:0.125 (fun _ -> incr n);
      let engine = plant_engine ~rate:0.5 () in
      Hybrid.Engine.run_until engine 10.;
      let ticks = Hybrid.Engine.ticks_of engine "plant" in
      Alcotest.(check int) "one record per tick plus open and flush"
        (ticks + 2) !n)

(* ---- tick cadence ---- *)

let test_tick_cadence () =
  with_telemetry (fun () ->
      let n = ref 0 in
      (* A huge sim cadence suppresses time-based emission; every_ticks
         drives the stream alone. *)
      Obs.Telemetry.configure ~every:1e6 ~every_ticks:4 (fun _ -> incr n);
      let engine = plant_engine ~rate:0.125 () in
      Hybrid.Engine.run_until engine 10.;
      let ticks = Hybrid.Engine.ticks_of engine "plant" in
      Alcotest.(check int) "every 4th tick plus stream open"
        ((ticks / 4) + 1) !n)

(* ---- record shape ---- *)

let member_exn name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "record missing %S" name

let test_record_shape () =
  with_telemetry (fun () ->
      let buf = Buffer.create 4096 in
      Obs.Telemetry.configure ~every:0.25 (Buffer.add_string buf);
      let engine = plant_engine ~rate:0.125 () in
      Hybrid.Engine.run_until engine 2.;
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check bool) "got records" true (lines <> []);
      List.iteri
        (fun i line ->
           let j =
             match Obs.Json.of_string line with
             | j -> j
             | exception Obs.Json.Parse_error msg ->
               Alcotest.failf "record %d unparseable: %s" i msg
           in
           (match member_exn "schema" j with
            | Obs.Json.Str s ->
              Alcotest.(check string) "schema" Obs.Telemetry.schema s
            | _ -> Alcotest.fail "schema is not a string");
           (match member_exn "version" j with
            | Obs.Json.Int v ->
              Alcotest.(check int) "version" Obs.Telemetry.schema_version v
            | _ -> Alcotest.fail "version is not an int");
           (* seq ascends from 0 in emission order *)
           (match member_exn "seq" j with
            | Obs.Json.Int s -> Alcotest.(check int) "seq" i s
            | _ -> Alcotest.fail "seq is not an int");
           (match member_exn "sim_time" j with
            | Obs.Json.Float _ | Obs.Json.Int _ -> ()
            | _ -> Alcotest.fail "sim_time is not a number");
           (match member_exn "counters" j with
            | Obs.Json.Obj _ -> ()
            | _ -> Alcotest.fail "counters is not an object");
           (match member_exn "flightrec" j with
            | Obs.Json.Obj _ -> ()
            | _ -> Alcotest.fail "flightrec is not an object"))
        lines)

(* The delta contract: summing per-record counter deltas over the whole
   stream reproduces the run's totals (zero deltas are omitted, which a
   summing consumer never notices). Perfcmp's summarize does exactly
   that sum, so drive it end-to-end: total tick rate over the stream
   must equal ticks / sim span. *)
let test_deltas_sum_to_totals () =
  with_telemetry (fun () ->
      let buf = Buffer.create 4096 in
      (* The default registry is process-global; zero it so the seq-0
         record's deltas baseline at this run, not at process start. *)
      Obs.Metrics.reset Obs.Metrics.default;
      Obs.Telemetry.configure ~every:0.25 (Buffer.add_string buf);
      let engine = plant_engine ~rate:0.125 () in
      Hybrid.Engine.run_until engine 10.;
      let s =
        Obs.Perfcmp.summarize ~label:"stream" (Buffer.contents buf)
      in
      Alcotest.(check bool) "kind is telemetry" true
        (s.Obs.Perfcmp.s_kind = Obs.Perfcmp.Telemetry);
      match
        List.assoc_opt "rate.hybrid.ticks_per_sim_s" s.Obs.Perfcmp.s_indicators
      with
      | Some rate ->
        (* 1 streamer at 0.125 s over a 10 s span recorded from sim 0
           to sim 10 -> 8 ticks per simulated second. *)
        Alcotest.(check (float 1e-9)) "tick rate" 8. rate
      | None ->
        Alcotest.failf "no tick-rate indicator; have: %s"
          (String.concat ", "
             (List.map fst s.Obs.Perfcmp.s_indicators)))

(* ---- configure validation ---- *)

let test_configure_rejects_bad_cadence () =
  let bad f =
    match f () with
    | () -> Alcotest.fail "configure accepted a bad cadence"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Obs.Telemetry.configure ~every:0. ignore);
  bad (fun () -> Obs.Telemetry.configure ~every:(-1.) ignore);
  bad (fun () -> Obs.Telemetry.configure ~every:Float.nan ignore);
  bad (fun () -> Obs.Telemetry.configure ~every_ticks:(-1) ignore);
  Alcotest.(check bool) "still off after rejections" false
    (Obs.Telemetry.enabled ())

(* ---- Perfcmp: the umh perf analysis core ---- *)

let bench_summary label fields =
  Obs.Perfcmp.summarize ~label
    (Obs.Json.to_string
       (Obs.Json.Obj
          [ ("e4", Obs.Json.Obj
               (List.map (fun (k, v) -> (k, Obs.Json.Float v)) fields)) ]))

let test_perfcmp_detects_regression () =
  let a = bench_summary "old" [ ("raw_ms", 10.); ("hybrid_ms", 20.) ] in
  let b = bench_summary "new" [ ("raw_ms", 30.); ("hybrid_ms", 21.) ] in
  let d = Obs.Perfcmp.diff ~tol:0.5 a b in
  Alcotest.(check int) "compared" 2 d.Obs.Perfcmp.compared;
  (match d.Obs.Perfcmp.regressions with
   | [ r ] ->
     Alcotest.(check string) "regressed key" "e4.raw_ms" r.Obs.Perfcmp.c_key;
     Alcotest.(check (float 1e-9)) "ratio" 3. r.Obs.Perfcmp.c_ratio
   | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs));
  Alcotest.(check int) "within tolerance is not a regression" 0
    (List.length d.Obs.Perfcmp.improvements)

let test_perfcmp_improvement_and_clean () =
  let a = bench_summary "old" [ ("raw_ms", 10.) ] in
  let faster = bench_summary "new" [ ("raw_ms", 2.) ] in
  let d = Obs.Perfcmp.diff ~tol:0.5 a faster in
  Alcotest.(check int) "no regressions" 0 (List.length d.Obs.Perfcmp.regressions);
  Alcotest.(check int) "one improvement" 1
    (List.length d.Obs.Perfcmp.improvements);
  let same = Obs.Perfcmp.diff ~tol:0.5 a a in
  Alcotest.(check int) "self-diff clean" 0
    (List.length same.Obs.Perfcmp.regressions
     + List.length same.Obs.Perfcmp.improvements)

let test_perfcmp_disjoint_keys_never_fail () =
  let a = bench_summary "old" [ ("raw_ms", 10.) ] in
  let b = bench_summary "new" [ ("hybrid_ms", 10.) ] in
  let d = Obs.Perfcmp.diff a b in
  Alcotest.(check int) "nothing compared" 0 d.Obs.Perfcmp.compared;
  Alcotest.(check int) "no regressions" 0 (List.length d.Obs.Perfcmp.regressions);
  Alcotest.(check (list string)) "only_a" [ "e4.raw_ms" ] d.Obs.Perfcmp.only_a;
  Alcotest.(check (list string)) "only_b" [ "e4.hybrid_ms" ] d.Obs.Perfcmp.only_b

let test_perfcmp_telemetry_summary () =
  let stream =
    String.concat ""
      [ "{\"schema\":\"umh-telemetry\",\"version\":1,\"seq\":0,\
         \"sim_time\":0.0,\"wall_ns\":1000000,\"counters\":{},\
         \"flightrec\":{\"recorded\":0,\"dropped\":0}}\n";
        "{\"schema\":\"umh-telemetry\",\"version\":1,\"seq\":1,\
         \"sim_time\":2.0,\"wall_ns\":5000000,\
         \"counters\":{\"des.events\":10},\
         \"flightrec\":{\"recorded\":4,\"dropped\":0}}\n" ]
  in
  let s = Obs.Perfcmp.summarize ~label:"t" stream in
  Alcotest.(check bool) "telemetry kind" true
    (s.Obs.Perfcmp.s_kind = Obs.Perfcmp.Telemetry);
  (* 4 ms of wall over 2 simulated seconds *)
  Alcotest.(check (float 1e-9)) "wall_ms_per_sim_s" 2.
    (List.assoc "wall_ms_per_sim_s" s.Obs.Perfcmp.s_indicators);
  Alcotest.(check (float 1e-9)) "counter rate" 5.
    (List.assoc "rate.des.events_per_sim_s" s.Obs.Perfcmp.s_indicators)

let test_perfcmp_rejects_malformed () =
  let rejected content =
    match Obs.Perfcmp.summarize ~label:"x" content with
    | _ -> Alcotest.failf "accepted malformed input: %s" content
    | exception Failure _ -> ()
  in
  rejected "this is not json";
  (* telemetry-shaped first line, then a broken record: strict, never
     silently skipped *)
  rejected
    "{\"schema\":\"umh-telemetry\",\"version\":1,\"sim_time\":0.0,\
     \"wall_ns\":1}\n{\"schema\":\"umh-telemetry\"}\n";
  (* a version from the future must be refused, not misread *)
  rejected
    "{\"schema\":\"umh-telemetry\",\"version\":99,\"sim_time\":0.0,\
     \"wall_ns\":1}\n"

let suite =
  [ Alcotest.test_case "telemetry: on/off runs bit-identical" `Quick
      test_on_off_bit_identical;
    Alcotest.test_case "telemetry: sim cadence record count exact" `Quick
      test_sim_cadence_count;
    Alcotest.test_case "telemetry: sparse ticks emit once, no burst" `Quick
      test_sparse_ticks_no_burst;
    Alcotest.test_case "telemetry: tick cadence" `Quick test_tick_cadence;
    Alcotest.test_case "telemetry: record shape and seq order" `Quick
      test_record_shape;
    Alcotest.test_case "telemetry: counter deltas sum to run totals" `Quick
      test_deltas_sum_to_totals;
    Alcotest.test_case "telemetry: configure rejects bad cadences" `Quick
      test_configure_rejects_bad_cadence;
    Alcotest.test_case "perfcmp: detects regression beyond tolerance" `Quick
      test_perfcmp_detects_regression;
    Alcotest.test_case "perfcmp: improvement and clean self-diff" `Quick
      test_perfcmp_improvement_and_clean;
    Alcotest.test_case "perfcmp: disjoint keys reported, never fail" `Quick
      test_perfcmp_disjoint_keys_never_fail;
    Alcotest.test_case "perfcmp: telemetry stream summary rates" `Quick
      test_perfcmp_telemetry_summary;
    Alcotest.test_case "perfcmp: malformed input rejected" `Quick
      test_perfcmp_rejects_malformed ]
