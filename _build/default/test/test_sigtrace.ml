(* Trace and metrics tests. *)

let mk samples =
  let tr = Sigtrace.Trace.create ~name:"t" () in
  List.iter (fun (t, v) -> Sigtrace.Trace.record tr t v) samples;
  tr

let test_record_and_interpolate () =
  let tr = mk [ (0., 0.); (1., 10.); (2., 20.) ] in
  Alcotest.(check (option (float 1e-9))) "between samples" (Some 5.)
    (Sigtrace.Trace.value_at tr 0.5);
  Alcotest.(check (option (float 1e-9))) "on a sample" (Some 10.)
    (Sigtrace.Trace.value_at tr 1.);
  Alcotest.(check (option (float 1e-9))) "outside span" None
    (Sigtrace.Trace.value_at tr 3.)

let test_time_monotonicity_enforced () =
  let tr = mk [ (1., 1.) ] in
  Alcotest.(check bool) "backwards time rejected" true
    (try Sigtrace.Trace.record tr 0.5 2.; false with Invalid_argument _ -> true)

let test_stats () =
  let tr = mk [ (0., 1.); (1., 3.); (2., 2.) ] in
  Alcotest.(check (option (float 1e-9))) "min" (Some 1.) (Sigtrace.Trace.minimum tr);
  Alcotest.(check (option (float 1e-9))) "max" (Some 3.) (Sigtrace.Trace.maximum tr);
  (* trapezoidal mean: areas (1+3)/2 + (3+2)/2 = 2 + 2.5 over span 2 -> 2.25 *)
  Alcotest.(check (option (float 1e-9))) "time-weighted mean" (Some 2.25)
    (Sigtrace.Trace.mean tr)

let test_resample () =
  let tr = mk [ (0., 0.); (2., 4.) ] in
  let r = Sigtrace.Trace.resample tr ~dt:0.5 in
  Alcotest.(check int) "5 samples" 5 (Sigtrace.Trace.length r);
  Alcotest.(check (option (float 1e-9))) "interpolated" (Some 1.)
    (Sigtrace.Trace.value_at r 0.5)

let test_csv () =
  let tr = mk [ (0., 1.5) ] in
  Alcotest.(check string) "csv format" "time,value\n0,1.5\n" (Sigtrace.Trace.to_csv tr)

let test_rmse_and_maxerr () =
  let reference = mk [ (0., 0.); (1., 1.); (2., 2.) ] in
  let measured = mk [ (0., 0.1); (1., 1.1); (2., 1.9) ] in
  (match Sigtrace.Metrics.rmse ~reference measured with
   | Some r -> Alcotest.(check bool) (Printf.sprintf "rmse %.4f ~ 0.1" r) true
                 (Float.abs (r -. 0.1) < 1e-9)
   | None -> Alcotest.fail "overlapping traces");
  Alcotest.(check (option (float 1e-9))) "max error" (Some 0.1)
    (Sigtrace.Metrics.max_abs_error ~reference measured)

let test_rmse_no_overlap () =
  let reference = mk [ (0., 0.); (1., 1.) ] in
  let late = mk [ (5., 0.); (6., 1.) ] in
  Alcotest.(check (option (float 0.))) "no overlap" None
    (Sigtrace.Metrics.rmse ~reference late)

let test_overshoot () =
  let tr = mk [ (0., 0.); (1., 1.3); (2., 1.); (3., 1.) ] in
  (match Sigtrace.Metrics.overshoot ~setpoint:1. tr with
   | Some o -> Alcotest.(check (float 1e-9)) "30% overshoot" 0.3 o
   | None -> Alcotest.fail "defined");
  let no = mk [ (0., 0.); (1., 0.9) ] in
  Alcotest.(check (option (float 1e-9))) "no overshoot is 0" (Some 0.)
    (Sigtrace.Metrics.overshoot ~setpoint:1. no)

let test_settling_time () =
  (* Within 5% of 1.0 from t=2 onwards. *)
  let tr = mk [ (0., 0.); (1., 1.2); (2., 1.02); (3., 1.01); (4., 1.0) ] in
  match Sigtrace.Metrics.settling_time ~setpoint:1. ~band:0.05 tr with
  | Some t -> Alcotest.(check (float 1e-9)) "settles at 2" 2. t
  | None -> Alcotest.fail "settles"

let test_never_settles () =
  let tr = mk [ (0., 0.); (1., 2.); (2., 0.); (3., 2.) ] in
  Alcotest.(check (option (float 0.))) "oscillation never settles" None
    (Sigtrace.Metrics.settling_time ~setpoint:1. ~band:0.05 tr)

let test_summary () =
  match Sigtrace.Metrics.summarize [ 3.; 1.; 2.; 5.; 4. ] with
  | Some s ->
    Alcotest.(check int) "count" 5 s.Sigtrace.Metrics.count;
    Alcotest.(check (float 1e-9)) "mean" 3. s.Sigtrace.Metrics.mean;
    Alcotest.(check (float 1e-9)) "p50" 3. s.Sigtrace.Metrics.p50;
    Alcotest.(check (float 1e-9)) "max" 5. s.Sigtrace.Metrics.max;
    Alcotest.(check (float 1e-9)) "p95 (nearest rank)" 5. s.Sigtrace.Metrics.p95
  | None -> Alcotest.fail "non-empty"

let test_summary_empty () =
  Alcotest.(check bool) "empty list" true (Sigtrace.Metrics.summarize [] = None)

(* Nearest-rank percentiles at the smallest sample counts: with one
   element every percentile is that element; with two, p50 is the first
   (rank ceil(0.5*2) = 1) and p95/p99 the second (rank 2). *)
let test_summary_singleton () =
  match Sigtrace.Metrics.summarize [ 7. ] with
  | Some s ->
    Alcotest.(check int) "count" 1 s.Sigtrace.Metrics.count;
    Alcotest.(check (float 1e-9)) "p50" 7. s.Sigtrace.Metrics.p50;
    Alcotest.(check (float 1e-9)) "p95" 7. s.Sigtrace.Metrics.p95;
    Alcotest.(check (float 1e-9)) "p99" 7. s.Sigtrace.Metrics.p99;
    Alcotest.(check (float 1e-9)) "min = max" s.Sigtrace.Metrics.min
      s.Sigtrace.Metrics.max
  | None -> Alcotest.fail "non-empty"

let test_summary_pair () =
  match Sigtrace.Metrics.summarize [ 10.; 2. ] with
  | Some s ->
    Alcotest.(check int) "count" 2 s.Sigtrace.Metrics.count;
    Alcotest.(check (float 1e-9)) "mean" 6. s.Sigtrace.Metrics.mean;
    Alcotest.(check (float 1e-9)) "p50 is the lower element" 2.
      s.Sigtrace.Metrics.p50;
    Alcotest.(check (float 1e-9)) "p95 is the upper element" 10.
      s.Sigtrace.Metrics.p95;
    Alcotest.(check (float 1e-9)) "p99 is the upper element" 10.
      s.Sigtrace.Metrics.p99
  | None -> Alcotest.fail "non-empty"

let test_csv_roundtrip () =
  let tr = mk [ (0., 1.5); (0.25, -3.); (1.5, 0.) ] in
  let back = Sigtrace.Trace.of_csv ~name:"t" (Sigtrace.Trace.to_csv tr) in
  Alcotest.(check string) "name kept" "t" (Sigtrace.Trace.name back);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "samples survive"
    (Sigtrace.Trace.samples tr) (Sigtrace.Trace.samples back)

let test_csv_rejects_garbage () =
  Alcotest.(check bool) "missing comma rejected" true
    (try ignore (Sigtrace.Trace.of_csv "time,value\n1.0\n"); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-numeric rejected" true
    (try ignore (Sigtrace.Trace.of_csv "1.0,abc\n"); false
     with Invalid_argument _ -> true)

(* qcheck: value_at inside the span always lies between the trace's min
   and max (linear interpolation cannot overshoot). *)
let prop_interpolation_bounded =
  QCheck.Test.make ~count:200 ~name:"interpolation stays within [min,max]"
    QCheck.(list_of_size Gen.(int_range 2 20) (float_bound_exclusive 100.))
    (fun values ->
       let tr = Sigtrace.Trace.create () in
       List.iteri (fun i v -> Sigtrace.Trace.record tr (float_of_int i) v) values;
       match (Sigtrace.Trace.minimum tr, Sigtrace.Trace.maximum tr) with
       | Some lo, Some hi ->
         List.for_all
           (fun k ->
              let time = float_of_int (List.length values - 1) *. k /. 10. in
              match Sigtrace.Trace.value_at tr time with
              | Some v -> v >= lo -. 1e-9 && v <= hi +. 1e-9
              | None -> false)
           (List.init 11 float_of_int)
       | _ -> false)

let suite =
  [ Alcotest.test_case "record + interpolate" `Quick test_record_and_interpolate;
    Alcotest.test_case "monotone time enforced" `Quick test_time_monotonicity_enforced;
    Alcotest.test_case "min/max/mean" `Quick test_stats;
    Alcotest.test_case "resample" `Quick test_resample;
    Alcotest.test_case "csv export" `Quick test_csv;
    Alcotest.test_case "rmse + max error" `Quick test_rmse_and_maxerr;
    Alcotest.test_case "rmse without overlap" `Quick test_rmse_no_overlap;
    Alcotest.test_case "overshoot" `Quick test_overshoot;
    Alcotest.test_case "settling time" `Quick test_settling_time;
    Alcotest.test_case "never settles" `Quick test_never_settles;
    Alcotest.test_case "latency summary" `Quick test_summary;
    Alcotest.test_case "summary of empty" `Quick test_summary_empty;
    Alcotest.test_case "summary of one element" `Quick test_summary_singleton;
    Alcotest.test_case "summary of two elements" `Quick test_summary_pair;
    Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv rejects garbage" `Quick test_csv_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_interpolation_bounded ]

(* ---- STL monitor ---- *)

let sine_trace () =
  let tr = Sigtrace.Trace.create ~name:"sine" () in
  for i = 0 to 1000 do
    let t = float_of_int i /. 100. in
    Sigtrace.Trace.record tr t (sin t)
  done;
  tr

let test_stl_always_bound () =
  let tr = sine_trace () in
  let ok, r = Sigtrace.Stl.check (Sigtrace.Stl.Always (0., 10., Sigtrace.Stl.le "x" 1.)) tr in
  Alcotest.(check bool) "sine <= 1 always" true ok;
  Alcotest.(check bool) "tight margin" true (r >= 0. && r < 0.01);
  let bad, rbad =
    Sigtrace.Stl.check (Sigtrace.Stl.Always (0., 10., Sigtrace.Stl.le "x" 0.5)) tr
  in
  Alcotest.(check bool) "sine <= 0.5 fails" false bad;
  Alcotest.(check bool) "robustness ~ -0.5" true (Float.abs (rbad +. 0.5) < 0.01)

let test_stl_eventually () =
  let tr = sine_trace () in
  let ok, _ =
    Sigtrace.Stl.check (Sigtrace.Stl.Eventually (0., 2., Sigtrace.Stl.ge "x" 0.99)) tr
  in
  Alcotest.(check bool) "reaches ~1 within 2s" true ok;
  let too_soon, _ =
    Sigtrace.Stl.check (Sigtrace.Stl.Eventually (0., 0.5, Sigtrace.Stl.ge "x" 0.99)) tr
  in
  Alcotest.(check bool) "not within 0.5s" false too_soon

let test_stl_response_property () =
  (* Settling requirement on a first-order step response:
     always (eventually within 5, |x - 1| <= 0.05). *)
  let tr = Sigtrace.Trace.create () in
  for i = 0 to 1000 do
    let t = float_of_int i /. 100. in
    Sigtrace.Trace.record tr t (1. -. exp (-.t))
  done;
  let settle =
    Sigtrace.Stl.Eventually (0., 5., Sigtrace.Stl.within "x" ~center:1. ~tolerance:0.05)
  in
  let ok, _ = Sigtrace.Stl.check (Sigtrace.Stl.Always (0., 4., settle)) tr in
  Alcotest.(check bool) "settles from any start point" true ok

let test_stl_first_violation () =
  let tr = Sigtrace.Trace.create () in
  List.iter (fun (t, v) -> Sigtrace.Trace.record tr t v)
    [ (0., 0.); (1., 0.); (2., 2.); (3., 0.) ];
  match Sigtrace.Stl.first_violation (Sigtrace.Stl.le "x" 1.) tr with
  | Some t -> Alcotest.(check (float 1e-9)) "violated at t=2" 2. t
  | None -> Alcotest.fail "violation exists"

let test_stl_empty_window () =
  let tr = sine_trace () in
  let ok, r =
    Sigtrace.Stl.check (Sigtrace.Stl.Always (20., 30., Sigtrace.Stl.le "x" 1.)) tr
  in
  Alcotest.(check bool) "window beyond trace is a violation" false ok;
  Alcotest.(check bool) "neg infinity" true (r = neg_infinity)

(* qcheck: De Morgan-ish semantics — robustness of Not f is the negation,
   And is the min, at every sample of a random trace. *)
let prop_stl_semantics =
  QCheck.Test.make ~count:100 ~name:"STL robustness algebra (not/and)"
    QCheck.(list_of_size Gen.(int_range 2 20) (float_range (-2.) 2.))
    (fun values ->
       let tr = Sigtrace.Trace.create () in
       List.iteri (fun i v -> Sigtrace.Trace.record tr (float_of_int i) v) values;
       let f = Sigtrace.Stl.le "x" 0.5 in
       let g = Sigtrace.Stl.ge "x" (-0.5) in
       List.for_all
         (fun (t, _) ->
            let rf = Sigtrace.Stl.robustness f tr t in
            let rg = Sigtrace.Stl.robustness g tr t in
            let rnot = Sigtrace.Stl.robustness (Sigtrace.Stl.Not f) tr t in
            let rand_ = Sigtrace.Stl.robustness (Sigtrace.Stl.And (f, g)) tr t in
            Float.equal rnot (-.rf) && Float.equal rand_ (Float.min rf rg))
         (Sigtrace.Trace.samples tr))

let stl_suite =
  [ Alcotest.test_case "stl: always bound" `Quick test_stl_always_bound;
    Alcotest.test_case "stl: eventually" `Quick test_stl_eventually;
    Alcotest.test_case "stl: settling response" `Quick test_stl_response_property;
    Alcotest.test_case "stl: first violation" `Quick test_stl_first_violation;
    Alcotest.test_case "stl: empty window" `Quick test_stl_empty_window;
    QCheck_alcotest.to_alcotest prop_stl_semantics ]

let suite = suite @ stl_suite
