(* DSL pipeline tests: lexer, parser, expressions, typechecker rules
   (R2-R7), elaboration, end-to-end simulation of a textual model. *)

let thermostat_model = {umh|
model Thermostat

// scalar temperature flow
flowtype Temp { value: float }

protocol Thermo {
  in heater_on, heater_off;
  out too_cold, too_hot;
}

streamer Room {
  rate 0.05;
  method rk4 0.005;
  dport out temp : Temp;
  sport ctl : Thermo;
  param duty = 0.0;
  param ambient = 15.0;
  param tau = 20.0;
  param gain = 0.8;
  init T = 20.0;
  eq T' = -(T - ambient) / tau + gain * duty;
  output temp = T;
  guard low : falling (T - 19.0) emits too_cold via ctl;
  guard high : rising (T - 21.0) emits too_hot via ctl;
  when heater_on set duty = 1.0;
  when heater_off set duty = 0.0;
}

capsule Controller {
  port plant : Thermo conjugated;
  statemachine {
    initial Idle;
    state Idle { on too_cold -> Heating send heater_on via plant; }
    state Heating { on too_hot -> Idle send heater_off via plant; }
  }
}

system {
  capsule ctl : Controller;
  streamer room : Room in ctl;
  link room.ctl -- ctl.plant;
}
|umh}

let parse_checked source =
  let ast = Dsl.Parser.parse source in
  Dsl.Typecheck.check ast

let test_expr_parse_eval () =
  let e = Dsl.Parser.parse_expr "2 + 3 * 4 ^ 2 - min(1, 2)" in
  let v =
    Dsl.Expr.eval { Dsl.Expr.var = (fun _ -> None); payload = None } e
  in
  Alcotest.(check (float 1e-9)) "precedence" 49. v

let test_expr_vars_and_payload () =
  let e = Dsl.Parser.parse_expr "a * payload + sin(t)" in
  Alcotest.(check (list string)) "free vars" [ "a"; "t" ] (Dsl.Expr.free_vars e);
  Alcotest.(check bool) "uses payload" true (Dsl.Expr.uses_payload e);
  let scope =
    { Dsl.Expr.var =
        (fun n -> if n = "a" then Some 2. else if n = "t" then Some 0. else None);
      payload = Some 3. }
  in
  Alcotest.(check (float 1e-9)) "eval with payload" 6. (Dsl.Expr.eval scope e)

let test_expr_roundtrip () =
  let original = "-(a + b) * c ^ (d - 1) / max(x, 2)" in
  let e = Dsl.Parser.parse_expr original in
  let printed = Dsl.Expr.to_string e in
  let e2 = Dsl.Parser.parse_expr printed in
  Alcotest.(check string) "pretty output re-parses equal"
    (Dsl.Expr.to_string e2) printed

let test_parse_thermostat () =
  let ast = Dsl.Parser.parse thermostat_model in
  Alcotest.(check string) "model name" "Thermostat" ast.Dsl.Ast.m_name;
  Alcotest.(check int) "one streamer" 1 (List.length ast.Dsl.Ast.m_streamers);
  Alcotest.(check int) "one capsule" 1 (List.length ast.Dsl.Ast.m_capsules);
  Alcotest.(check bool) "has system" true (ast.Dsl.Ast.m_system <> None)

let test_check_thermostat_ok () =
  let checked = parse_checked thermostat_model in
  Alcotest.(check (list string)) "no errors" [] checked.Dsl.Typecheck.errors

let contains_substring hay needle =
  let ln = String.length needle in
  let lh = String.length hay in
  let rec scan i =
    if i + ln > lh then false
    else if String.equal (String.sub hay i ln) needle then true
    else scan (i + 1)
  in
  scan 0

let test_check_rejects_bad_rate () =
  let source = {umh|
model M
streamer S { rate -1.0; init x = 0.0; eq x' = 1.0; }
|umh} in
  let checked = parse_checked source in
  Alcotest.(check bool) "R7 violation reported" true
    (List.exists
       (fun e -> contains_substring e "rate must be positive")
       checked.Dsl.Typecheck.errors)

let expect_error source needle =
  let checked = parse_checked source in
  Alcotest.(check bool)
    (Printf.sprintf "error mentioning %S" needle)
    true
    (List.exists (fun e -> contains_substring e needle) checked.Dsl.Typecheck.errors)

let test_rule_r5_capsule_dport () =
  expect_error {umh|
model M
capsule C { dport in x; }
|umh} "rule R5"

let test_rule_r6_containment () =
  expect_error {umh|
model M
streamer S { rate 0.1; init x = 0.0; eq x' = 0.0; }
system {
  streamer a : S;
  streamer b : S in a;
}
|umh} "rule R6"

let test_rule_r2_flow_subset () =
  expect_error {umh|
model M
flowtype Rich { value: float; quality: int }
streamer P { rate 0.1; dport out x : Rich; init s = 0.0; eq s' = 0.0; output x = s; }
streamer C { rate 0.1; dport in u; init s = 0.0; eq s' = u; }
system {
  streamer p : P;
  streamer c : C;
  flow p.x -> c.u;
}
|umh} "rule R2"

let test_rule_r4_link_protocols () =
  expect_error {umh|
model M
protocol A { out ping; }
protocol B { in pong; }
streamer S { rate 0.1; sport sp : A; init x = 0.0; eq x' = 0.0; }
capsule C { port p : B; statemachine { initial I; state I { } } }
system {
  capsule ctl : C;
  streamer s : S;
  link s.sp -- ctl.p;
}
|umh} "rule R4"

let test_unknown_identifier_in_eq () =
  expect_error {umh|
model M
streamer S { rate 0.1; init x = 0.0; eq x' = nosuchvar + 1.0; }
|umh} "unknown name"

let test_elaborate_and_simulate () =
  let checked = parse_checked thermostat_model in
  let { Dsl.Elaborate.engine; streamer_roles; capsule_paths } =
    Dsl.Elaborate.elaborate checked
  in
  Alcotest.(check (list string)) "streamer role" [ "room" ] streamer_roles;
  Alcotest.(check (list (pair string string))) "capsule path"
    [ ("ctl", "system/ctl") ] capsule_paths;
  let trace = Hybrid.Engine.trace_dport engine ~role:"room" ~dport:"temp" in
  Hybrid.Engine.run_until engine 400.;
  let late = List.filter (fun (t, _) -> t > 100.) (Sigtrace.Trace.samples trace) in
  Alcotest.(check bool) "simulated long enough" true (List.length late > 50);
  List.iter
    (fun (_, temp) ->
       Alcotest.(check bool) (Printf.sprintf "temp %g in band" temp) true
         (temp > 18.5 && temp < 21.5))
    late

let test_pretty_roundtrip () =
  let ast = Dsl.Parser.parse thermostat_model in
  let printed = Dsl.Pretty.print_model ast in
  let ast2 = Dsl.Parser.parse printed in
  let printed2 = Dsl.Pretty.print_model ast2 in
  Alcotest.(check string) "pretty-print fixpoint" printed printed2;
  (* And the reprinted model still elaborates and runs. *)
  let checked = Dsl.Typecheck.check ast2 in
  Alcotest.(check (list string)) "reprinted model checks" []
    checked.Dsl.Typecheck.errors

let test_parse_error_position () =
  try
    ignore (Dsl.Parser.parse "model M\nstreamer S { rate }");
    Alcotest.fail "expected a parse error"
  with Dsl.Parser.Parse_error (_, line, _) ->
    Alcotest.(check int) "error on line 2" 2 line

let composite_model = {umh|
model Chain

streamer Integrator {
  rate 0.01;
  dport in u;
  dport out y;
  init x = 0.0;
  eq x' = u;
  output y = x;
}

streamer Block {
  dport in u;
  dport out y;
  contains stage1 : Integrator;
  contains stage2 : Integrator;
  flow self.u -> stage1.u;
  flow stage1.y -> stage2.u;
  flow stage2.y -> self.y;
}

streamer One {
  rate 0.01;
  dport out c;
  init x = 0.0;
  eq x' = 0.0;
  output c = 1.0;
}

system {
  streamer src : One;
  streamer blk : Block;
  flow src.c -> blk.u;
}
|umh}

let test_composite_streamer_dsl () =
  let checked = parse_checked composite_model in
  Alcotest.(check (list string)) "no errors" [] checked.Dsl.Typecheck.errors;
  let { Dsl.Elaborate.engine; _ } = Dsl.Elaborate.elaborate checked in
  Alcotest.(check (list string)) "flattened children"
    [ "src"; "blk.stage1"; "blk.stage2" ]
    (Hybrid.Engine.streamer_roles engine);
  Hybrid.Engine.run_until engine 2.;
  (* Double integrator of 1: stage1 ~ t, stage2 ~ t^2/2. *)
  match Hybrid.Engine.read_dport engine ~role:"blk" ~dport:"y" with
  | Some y ->
    Alcotest.(check bool)
      (Printf.sprintf "t^2/2 at t=2 (got %g)" y)
      true
      (Float.abs (y -. 2.) < 0.1)
  | None -> Alcotest.fail "composite border output readable"

let test_composite_rejects_solver_items () =
  expect_error {umh|
model M
streamer Leaf { rate 0.1; init x = 0.0; eq x' = 0.0; }
streamer Bad {
  contains c : Leaf;
  init x = 0.0;
  eq x' = 0.0;
}
|umh} "cannot carry solver items"

let test_containment_cycle_rejected () =
  expect_error {umh|
model M
streamer A { dport in u; contains b : B; flow self.u -> b.u; }
streamer B { dport in u; contains a : A; flow self.u -> a.u; }
|umh} "containment cycle"

let test_composite_flow_direction_checked () =
  expect_error {umh|
model M
streamer Leaf { rate 0.1; dport out y; init x = 0.0; eq x' = 0.0; output y = x; }
streamer Bad {
  dport out z;
  contains c : Leaf;
  flow self.z -> c.y;
}
|umh} "against its direction"

let test_guard_payload_roundtrip () =
  let source = {umh|
model Payloaded
protocol Report { out level_high(F); in ack; }
flowtype F { value: float }
streamer Tank {
  rate 0.01;
  init h = 0.0;
  eq h' = 1.0;
  guard hi : rising (h - 0.5) emits level_high(h * 2.0) via sup;
  sport sup : Report;
}
capsule Monitor {
  port tank : Report conjugated;
  statemachine {
    initial Watching;
    state Watching { on level_high -> Alarmed; }
    state Alarmed { }
  }
}
system {
  capsule mon : Monitor;
  streamer tank : Tank in mon;
  link tank.sup -- mon.tank;
}
|umh} in
  let checked = parse_checked source in
  Alcotest.(check (list string)) "payload model checks" []
    checked.Dsl.Typecheck.errors;
  let { Dsl.Elaborate.engine; _ } = Dsl.Elaborate.elaborate checked in
  Hybrid.Engine.run_until engine 1.;
  (match Hybrid.Engine.runtime engine with
   | Some rt ->
     (match Umlrt.Runtime.configuration rt "system/mon" with
      | Some config ->
        Alcotest.(check (list string)) "capsule saw the payloaded signal"
          [ "Alarmed" ] config
      | None -> Alcotest.fail "monitor configuration")
   | None -> Alcotest.fail "runtime exists");
  (* The generated C carries the payload expression to the dispatch. *)
  let c =
    List.find
      (fun o -> String.equal o.Codegen.Cgen.filename "umh_model.c")
      (Codegen.Cgen.generate checked)
  in
  Alcotest.(check bool) "payload expression compiled" true
    (contains_substring c.Codegen.Cgen.contents "mon_dispatch(SIG_level_high, (tank.x[0] * 2.0))")

let test_guard_payload_scope_checked () =
  expect_error {umh|
model M
protocol P { out sig(F); }
flowtype F { value: float }
streamer S {
  rate 0.1;
  init x = 0.0;
  eq x' = 0.0;
  sport p : P;
  guard g : rising x emits sig(nosuch + 1.0) via p;
}
|umh} "unknown name"

let test_codegen_rejects_composite () =
  let checked = parse_checked composite_model in
  Alcotest.(check bool) "codegen error mentions composite" true
    (try
       ignore (Codegen.Cgen.generate checked);
       false
     with Codegen.Cgen.Codegen_error msg -> contains_substring msg "composite")

let suite =
  [ Alcotest.test_case "expression precedence" `Quick test_expr_parse_eval;
    Alcotest.test_case "expression vars and payload" `Quick test_expr_vars_and_payload;
    Alcotest.test_case "expression print/parse roundtrip" `Quick test_expr_roundtrip;
    Alcotest.test_case "parse thermostat model" `Quick test_parse_thermostat;
    Alcotest.test_case "thermostat model typechecks" `Quick test_check_thermostat_ok;
    Alcotest.test_case "R7: negative rate rejected" `Quick test_check_rejects_bad_rate;
    Alcotest.test_case "R5: capsule in-DPort rejected" `Quick test_rule_r5_capsule_dport;
    Alcotest.test_case "R6: streamer-in-streamer rejected" `Quick test_rule_r6_containment;
    Alcotest.test_case "R2: flow superset rejected" `Quick test_rule_r2_flow_subset;
    Alcotest.test_case "R4: protocol mismatch rejected" `Quick test_rule_r4_link_protocols;
    Alcotest.test_case "unknown identifier rejected" `Quick test_unknown_identifier_in_eq;
    Alcotest.test_case "elaborate + simulate thermostat" `Quick test_elaborate_and_simulate;
    Alcotest.test_case "pretty-printer fixpoint" `Quick test_pretty_roundtrip;
    Alcotest.test_case "parse errors carry positions" `Quick test_parse_error_position;
    Alcotest.test_case "composite streamers in the DSL" `Quick test_composite_streamer_dsl;
    Alcotest.test_case "composite rejects solver items" `Quick
      test_composite_rejects_solver_items;
    Alcotest.test_case "containment cycle rejected" `Quick test_containment_cycle_rejected;
    Alcotest.test_case "composite flow directions" `Quick
      test_composite_flow_direction_checked;
    Alcotest.test_case "guard payloads end-to-end" `Quick test_guard_payload_roundtrip;
    Alcotest.test_case "guard payload scope checked" `Quick
      test_guard_payload_scope_checked;
    Alcotest.test_case "codegen rejects composite streamers" `Quick
      test_codegen_rejects_composite ]

(* qcheck: random expression trees survive print -> parse -> print. *)
let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun f -> Dsl.Expr.Num (Float.abs f)) (float_bound_exclusive 100.);
        oneofl [ Dsl.Expr.Var "x"; Dsl.Expr.Var "k"; Dsl.Expr.Var "t";
                 Dsl.Expr.Payload ] ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [ (2, leaf);
          (1, map (fun e -> Dsl.Expr.Neg e) (tree (depth - 1)));
          (2, map2 (fun a b -> Dsl.Expr.Add (a, b)) (tree (depth - 1)) (tree (depth - 1)));
          (2, map2 (fun a b -> Dsl.Expr.Sub (a, b)) (tree (depth - 1)) (tree (depth - 1)));
          (2, map2 (fun a b -> Dsl.Expr.Mul (a, b)) (tree (depth - 1)) (tree (depth - 1)));
          (1, map2 (fun a b -> Dsl.Expr.Div (a, b)) (tree (depth - 1)) (tree (depth - 1)));
          (1, map2 (fun a b -> Dsl.Expr.Pow (a, b)) (tree (depth - 1)) (tree (depth - 1)));
          (1, map (fun a -> Dsl.Expr.Call ("sin", [ a ])) (tree (depth - 1)));
          (1, map2 (fun a b -> Dsl.Expr.Call ("max", [ a; b ]))
               (tree (depth - 1)) (tree (depth - 1))) ]
  in
  tree 4

let prop_expr_roundtrip =
  QCheck.Test.make ~count:300 ~name:"random expressions roundtrip via printer"
    (QCheck.make expr_gen)
    (fun e ->
       let printed = Dsl.Expr.to_string e in
       let reparsed = Dsl.Parser.parse_expr printed in
       String.equal (Dsl.Expr.to_string reparsed) printed)

(* And printing preserves evaluation, not only syntax. *)
let prop_expr_eval_preserved =
  QCheck.Test.make ~count:300 ~name:"printing preserves expression value"
    (QCheck.make expr_gen)
    (fun e ->
       let scope =
         { Dsl.Expr.var =
             (fun n ->
                match n with
                | "x" -> Some 0.7
                | "k" -> Some 1.3
                | "t" -> Some 2.1
                | _ -> None);
           payload = Some 0.4 }
       in
       let v1 = Dsl.Expr.eval scope e in
       let v2 = Dsl.Expr.eval scope (Dsl.Parser.parse_expr (Dsl.Expr.to_string e)) in
       (Float.is_nan v1 && Float.is_nan v2)
       || Float.equal v1 v2
       || Float.abs (v1 -. v2) <= 1e-9 *. Float.max 1. (Float.abs v1))

let qcheck_suite =
  [ QCheck_alcotest.to_alcotest prop_expr_roundtrip;
    QCheck_alcotest.to_alcotest prop_expr_eval_preserved ]

let suite = suite @ qcheck_suite

(* Capsule timers: a purely time-driven duty-cycle controller. *)
let test_capsule_timers () =
  let source = {umh|
model DutyCycle
protocol Duty { in go_high, go_low; }
streamer Plant {
  rate 0.05;
  param u = 0.0;
  init x = 0.0;
  eq x' = u - 0.1 * x;
  when go_high set u = 1.0;
  when go_low set u = 0.0;
  sport ctl : Duty;
}
capsule Clocked {
  port plant : Duty conjugated;
  timer tick = 1.0;
  statemachine {
    initial Low;
    state Low { on tick -> High send go_high via plant; }
    state High { on tick -> Low send go_low via plant; }
  }
}
system {
  capsule clk : Clocked;
  streamer p : Plant in clk;
  link p.ctl -- clk.plant;
}
|umh} in
  let checked = parse_checked source in
  Alcotest.(check (list string)) "timer model checks" []
    checked.Dsl.Typecheck.errors;
  let { Dsl.Elaborate.engine; _ } = Dsl.Elaborate.elaborate checked in
  Hybrid.Engine.run_until engine 10.5;
  (* Ten ticks -> ten toggles: five whole on/off cycles delivered. *)
  let stats = Hybrid.Engine.stats engine in
  Alcotest.(check int) "ten strategy activations" 10
    stats.Hybrid.Engine.signals_to_streamers;
  match Hybrid.Engine.solver_of engine "p" with
  | Some s ->
    Alcotest.(check bool) "plant actually integrated the duty cycle" true
      ((Hybrid.Solver.state s).(0) > 0.5)
  | None -> Alcotest.fail "plant exists"

let test_timer_warnings_and_errors () =
  expect_error {umh|
model M
capsule C { timer t = -1.0; statemachine { initial I; state I { } } }
|umh} "non-positive period";
  let checked = parse_checked {umh|
model M
capsule C { timer unused = 1.0; statemachine { initial I; state I { } } }
|umh} in
  Alcotest.(check bool) "unused timer warned" true
    (List.exists
       (fun w -> contains_substring w "triggers no transition")
       checked.Dsl.Typecheck.warnings)

let timer_suite =
  [ Alcotest.test_case "capsule timers drive duty cycles" `Quick test_capsule_timers;
    Alcotest.test_case "timer validation and warnings" `Quick
      test_timer_warnings_and_errors ]

let suite = suite @ timer_suite

(* The .umh model files shipped in examples/ must keep parsing, checking
   and elaborating (declared as dune test deps, read from the source tree). *)
let test_shipped_models () =
  let read path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  List.iter
    (fun name ->
       let path = Filename.concat "../examples/models" name in
       if Sys.file_exists path then begin
         let checked = parse_checked (read path) in
         Alcotest.(check (list string)) (name ^ " has no errors") []
           checked.Dsl.Typecheck.errors;
         let { Dsl.Elaborate.engine; _ } = Dsl.Elaborate.elaborate checked in
         Hybrid.Engine.run_until engine 1.;
         Alcotest.(check bool) (name ^ " simulates") true
           ((Hybrid.Engine.stats engine).Hybrid.Engine.ticks_total > 0)
       end
       else Alcotest.fail (path ^ " missing from test deps"))
    [ "thermostat.umh"; "filter_chain.umh" ]

let shipped_suite =
  [ Alcotest.test_case "shipped .umh models stay valid" `Quick test_shipped_models ]

let suite = suite @ shipped_suite

(* Textual STL parsing (used by umh simulate --verify). *)
let test_stl_syntax () =
  let tr = Sigtrace.Trace.create () in
  for i = 0 to 100 do
    let t = float_of_int i /. 10. in
    Sigtrace.Trace.record tr t (sin t)
  done;
  let checks =
    [ ("always[0,10] x <= 1", true);
      ("always[0,10] x <= 0.5", false);
      ("eventually[0,2] x >= 0.99", true);
      ("always[0,10] (x <= 1 and x >= -1)", true);
      ("not (always[0,10] x <= 0.5)", true);
      ("always[0,10] x <= 0.5 or always[0,10] x >= -1", true);
      ("always[0,10] x >= 2 -> always[0,10] x <= -2", true);
      ("eventually[0,10] (x >= 0.9 and x <= 1.1)", true);
      ("always[0,10] 2 * x <= 2", true) ]
  in
  List.iter
    (fun (text, expected) ->
       let formula = Dsl.Parser.parse_stl text in
       let ok, _ = Sigtrace.Stl.check formula tr in
       Alcotest.(check bool) text expected ok)
    checks

let test_stl_syntax_errors () =
  List.iter
    (fun text ->
       Alcotest.(check bool) ("rejects " ^ text) true
         (try ignore (Dsl.Parser.parse_stl text); false
          with Dsl.Parser.Parse_error _ | Dsl.Lexer.Lex_error _ -> true))
    [ "always[0] x <= 1"; "x < 1"; "always[0,10]"; "x <= 1 extra" ]

let stl_syntax_suite =
  [ Alcotest.test_case "textual STL parses and evaluates" `Quick test_stl_syntax;
    Alcotest.test_case "textual STL rejects malformed input" `Quick
      test_stl_syntax_errors ]

let suite = suite @ stl_syntax_suite
