(* The sharded runtime against its contract: bit-identical results to
   the single-domain engine (solver state vectors, params, tick counts,
   signal traces — exact float equality, no tolerance), the runtime
   co-location closure, and the UMH055 plan-file validation. *)

let load path =
  Dsl.Typecheck.check
    (Dsl.Parser.parse (In_channel.with_open_bin path In_channel.input_all))

let cells = "../examples/models/e3_cells.umh"
let tank = "../examples/models/water_tank.umh"
let lat = Rt.Channel.Constant 0.013

let plan_of ?signal_latency ~shards checked =
  match Shard.Plan.compute ?signal_latency ~shards checked with
  | Ok p -> p
  | Error e -> Alcotest.fail (String.concat "; " e)

let run_single ?signal_latency path ~until =
  let checked = load path in
  let { Dsl.Elaborate.engine; streamer_roles; _ } =
    Dsl.Elaborate.elaborate ?signal_latency checked
  in
  Hybrid.Engine.run_until engine until;
  (engine, streamer_roles)

(* Exact equality everywhere: a single ULP of drift means the sharded
   run integrated or delivered something differently. *)
let exact = Alcotest.float 0.

let assert_equiv single roles sharded =
  List.iter
    (fun role ->
       let owner =
         match Shard.Engine.engine_of_role sharded role with
         | Some e -> e
         | None -> Alcotest.fail (role ^ ": no owning shard")
       in
       Alcotest.(check int) (role ^ " ticks")
         (Hybrid.Engine.ticks_of single role)
         (Hybrid.Engine.ticks_of owner role);
       match
         (Hybrid.Engine.solver_of single role,
          Hybrid.Engine.solver_of owner role)
       with
       | Some a, Some b ->
         Alcotest.(check (array exact)) (role ^ " state")
           (Hybrid.Solver.state a) (Hybrid.Solver.state b);
         Alcotest.(check (list (pair string exact))) (role ^ " params")
           (Hybrid.Solver.params a) (Hybrid.Solver.params b)
       | None, None -> ()
       | _ -> Alcotest.fail (role ^ ": solver presence differs"))
    roles

let test_plan_groups () =
  let checked = load cells in
  let plan = plan_of ~signal_latency:lat ~shards:2 checked in
  Alcotest.(check int) "four co-location groups" 4
    (List.length plan.Shard.Plan.groups);
  Alcotest.(check int) "capsule pinned to shard 0" 0
    plan.Shard.Plan.capsule_shard;
  Alcotest.(check (float 0.)) "lookahead is the constant latency" 0.013
    plan.Shard.Plan.lookahead;
  (* every group lands on exactly one shard *)
  List.iter
    (fun g ->
       let shards =
         List.sort_uniq compare
           (List.map (Shard.Plan.shard_of plan) g)
       in
       Alcotest.(check int) "group unsplit" 1 (List.length shards))
    plan.Shard.Plan.groups;
  (* flow partners co-locate *)
  Alcotest.(check int) "a0 with a1"
    (Shard.Plan.shard_of plan "a0") (Shard.Plan.shard_of plan "a1");
  (* with four cells over two shards, some cell is off the capsule shard *)
  Alcotest.(check bool) "cross-shard links exist" true
    (plan.Shard.Plan.remote_roles <> [])

let test_plan_zero_latency_merges () =
  let checked = load cells in
  (* no latency floor: every linked streamer joins the capsule group *)
  let plan = plan_of ~shards:4 checked in
  Alcotest.(check int) "one merged group" 1
    (List.length plan.Shard.Plan.groups);
  Alcotest.(check (list (pair string int))) "nothing remote" []
    plan.Shard.Plan.remote_roles;
  Alcotest.(check bool) "lookahead unbounded" true
    (plan.Shard.Plan.lookahead = infinity)

let differential path ?signal_latency ~shards ~until () =
  let single, roles = run_single ?signal_latency path ~until in
  let checked = load path in
  let plan = plan_of ?signal_latency ~shards checked in
  let sharded = Shard.Engine.create ?signal_latency plan checked in
  Shard.Engine.run sharded ~until;
  assert_equiv single roles sharded;
  let s1 = Hybrid.Engine.stats single in
  let s2 = Shard.Engine.stats sharded in
  Alcotest.(check int) "ticks_total" s1.Hybrid.Engine.ticks_total
    s2.Hybrid.Engine.ticks_total;
  Alcotest.(check int) "signals_to_streamers"
    s1.Hybrid.Engine.signals_to_streamers
    s2.Hybrid.Engine.signals_to_streamers;
  Alcotest.(check int) "signals_dropped" s1.Hybrid.Engine.signals_dropped
    s2.Hybrid.Engine.signals_dropped

let test_trace_identical () =
  let until = 3.0 in
  let checked = load cells in
  let { Dsl.Elaborate.engine = single; _ } =
    Dsl.Elaborate.elaborate ~signal_latency:lat checked
  in
  let t_single =
    Hybrid.Engine.trace_dport single ~role:"a2" ~dport:"y"
  in
  Hybrid.Engine.run_until single until;
  let plan = plan_of ~signal_latency:lat ~shards:4 checked in
  let sharded = Shard.Engine.create ~signal_latency:lat plan checked in
  let owner =
    match Shard.Engine.engine_of_role sharded "a2" with
    | Some e -> e
    | None -> Alcotest.fail "a2 unplaced"
  in
  let t_sharded = Hybrid.Engine.trace_dport owner ~role:"a2" ~dport:"y" in
  Shard.Engine.run sharded ~until;
  Alcotest.(check (list (pair exact exact))) "a2.y trace"
    (Sigtrace.Trace.samples t_single) (Sigtrace.Trace.samples t_sharded)

(* Stopping at an epoch-unaligned horizon and resuming must land on the
   same trajectory: the protocol may not leak partial epochs. *)
let test_resume_identical () =
  let single, roles = run_single ~signal_latency:lat cells ~until:3.0 in
  let checked = load cells in
  let plan = plan_of ~signal_latency:lat ~shards:2 checked in
  let sharded = Shard.Engine.create ~signal_latency:lat plan checked in
  Shard.Engine.run sharded ~until:1.37;
  Shard.Engine.run sharded ~until:3.0;
  assert_equiv single roles sharded

(* ---- UMH055 plan-file validation ---- *)

let plan_json ?(schema = "umh-partition") ?(version = 1) ?hash shards_members
    ~checked =
  let open Obs.Json in
  let shard (id, members) =
    Obj
      [ ("id", Int id);
        ("members",
         List
           (Stdlib.List.map
              (fun n -> Obj [ ("name", Str n); ("kind", Str "streamer") ])
              members)) ]
  in
  let hash =
    match hash with
    | Some h -> h
    | None -> Shard.Plan.model_hash checked
  in
  Obj
    [ ("schema", Str schema);
      ("version", Int version);
      ("model_hash", Str hash);
      ("shards", List (Stdlib.List.map shard shards_members)) ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_error ~needle result =
  match result with
  | Ok _ -> Alcotest.fail ("accepted a plan that should fail: " ^ needle)
  | Error msgs ->
    let found = List.exists (fun m -> contains m needle) msgs in
    if not found then
      Alcotest.fail
        (Printf.sprintf "no message mentioning %S in: %s" needle
           (String.concat " | " msgs))

let full_placement =
  [ (0, [ "pace"; "a0"; "a1"; "a2" ]);
    (1, [ "b0"; "b1"; "b2"; "c0"; "c1"; "c2" ]) ]

let test_plan_file_ok () =
  let checked = load cells in
  let json = plan_json full_placement ~checked in
  match Shard.Plan.of_json ~signal_latency:lat json checked with
  | Error e -> Alcotest.fail (String.concat "; " e)
  | Ok plan ->
    Alcotest.(check int) "two domains" 2 plan.Shard.Plan.count;
    (* the capsule's plan shard becomes domain 0 *)
    Alcotest.(check int) "capsule domain" 0 plan.Shard.Plan.capsule_shard;
    Alcotest.(check int) "b0 follows the file" 1
      (Shard.Plan.shard_of plan "b0")

let test_plan_file_rejections () =
  let checked = load cells in
  expect_error ~needle:"schema"
    (Shard.Plan.of_json ~signal_latency:lat
       (plan_json ~schema:"bogus" full_placement ~checked) checked);
  expect_error ~needle:"version"
    (Shard.Plan.of_json ~signal_latency:lat
       (plan_json ~version:9 full_placement ~checked) checked);
  expect_error ~needle:"model_hash"
    (Shard.Plan.of_json ~signal_latency:lat
       (plan_json ~hash:"deadbeef" full_placement ~checked) checked);
  (* a placement splitting a flow chain *)
  expect_error ~needle:"co-location"
    (Shard.Plan.of_json ~signal_latency:lat
       (plan_json
          [ (0, [ "pace"; "a0"; "a1"; "b0"; "b1"; "b2" ]);
            (1, [ "a2"; "c0"; "c1"; "c2" ]) ]
          ~checked)
       checked);
  (* an incomplete placement *)
  expect_error ~needle:"not placed"
    (Shard.Plan.of_json ~signal_latency:lat
       (plan_json [ (0, [ "pace"; "a0"; "a1"; "a2" ]) ] ~checked) checked);
  (* without a latency floor the links force everything together *)
  expect_error ~needle:"co-location"
    (Shard.Plan.of_json (plan_json full_placement ~checked) checked)

let test_plan_file_split_scc () =
  let checked = load cells in
  let json =
    match plan_json full_placement ~checked with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (fields
         @ [ ("forced_groups",
              Obs.Json.List
                [ Obs.Json.List
                    [ Obs.Json.Obj [ ("name", Obs.Json.Str "a0") ];
                      Obs.Json.Obj [ ("name", Obs.Json.Str "b0") ] ] ]) ])
    | _ -> assert false
  in
  expect_error ~needle:"feedback SCC"
    (Shard.Plan.of_json ~signal_latency:lat json checked)

let test_degenerate_one_group () =
  (* water_tank: guard emissions force one group; sharding it is legal
     but everything lands on the capsule shard, workers idle *)
  differential tank ~shards:2 ~until:10.0 ()

let suite =
  [ Alcotest.test_case "plan: runtime co-location groups" `Quick
      test_plan_groups;
    Alcotest.test_case "plan: zero lookahead merges links" `Quick
      test_plan_zero_latency_merges;
    Alcotest.test_case "differential: e3_cells, 1 shard" `Quick
      (differential cells ~signal_latency:lat ~shards:1 ~until:3.0);
    Alcotest.test_case "differential: e3_cells, 2 shards" `Quick
      (differential cells ~signal_latency:lat ~shards:2 ~until:3.0);
    Alcotest.test_case "differential: e3_cells, 4 shards" `Quick
      (differential cells ~signal_latency:lat ~shards:4 ~until:3.0);
    Alcotest.test_case "differential: trace bit-identical" `Quick
      test_trace_identical;
    Alcotest.test_case "differential: stop/resume mid-epoch" `Quick
      test_resume_identical;
    Alcotest.test_case "differential: one-group model degenerates" `Quick
      test_degenerate_one_group;
    Alcotest.test_case "plan file: valid placement accepted" `Quick
      test_plan_file_ok;
    Alcotest.test_case "plan file: UMH055 rejections" `Quick
      test_plan_file_rejections;
    Alcotest.test_case "plan file: split feedback SCC" `Quick
      test_plan_file_split_scc ]
