(* Controller tests: PID behaviour incl. anti-windup, bang-bang
   hysteresis, pole placement, filters, difference equations. *)

(* ---- PID ---- *)

let test_pid_proportional () =
  let pid = Control.Pid.create { Control.Pid.kp = 2.; ki = 0.; kd = 0. } in
  let u = Control.Pid.update pid ~setpoint:10. ~measurement:7. ~dt:0.1 in
  Alcotest.(check (float 1e-12)) "u = kp * e" 6. u

let test_pid_integral_accumulates () =
  let pid = Control.Pid.create { Control.Pid.kp = 0.; ki = 1.; kd = 0. } in
  ignore (Control.Pid.update pid ~setpoint:1. ~measurement:0. ~dt:0.5);
  let u = Control.Pid.update pid ~setpoint:1. ~measurement:0. ~dt:0.5 in
  Alcotest.(check (float 1e-12)) "two steps of 0.5" 1.0 u

let test_pid_derivative () =
  let pid = Control.Pid.create { Control.Pid.kp = 0.; ki = 0.; kd = 1. } in
  ignore (Control.Pid.update pid ~setpoint:0. ~measurement:0. ~dt:0.1);
  let u = Control.Pid.update pid ~setpoint:0. ~measurement:(-0.5) ~dt:0.1 in
  (* error went 0 -> 0.5 in 0.1s: derivative 5 *)
  Alcotest.(check (float 1e-9)) "kd * de/dt" 5. u

let test_pid_output_clamped () =
  let pid =
    Control.Pid.create ~output_min:(-1.) ~output_max:1.
      { Control.Pid.kp = 100.; ki = 0.; kd = 0. }
  in
  Alcotest.(check (float 1e-12)) "clamped high" 1.
    (Control.Pid.update pid ~setpoint:10. ~measurement:0. ~dt:0.1);
  Alcotest.(check (float 1e-12)) "clamped low" (-1.)
    (Control.Pid.update pid ~setpoint:(-10.) ~measurement:0. ~dt:0.1)

let test_pid_anti_windup () =
  (* Saturated for a long time: integrator must not wind up. *)
  let pid =
    Control.Pid.create ~output_min:0. ~output_max:1.
      { Control.Pid.kp = 0.; ki = 10.; kd = 0. }
  in
  for _ = 1 to 1000 do
    ignore (Control.Pid.update pid ~setpoint:100. ~measurement:0. ~dt:0.01)
  done;
  let wound = Control.Pid.integrator pid in
  Alcotest.(check bool)
    (Printf.sprintf "integrator %.2f stays near the limit" wound)
    true
    (wound <= 11.);
  (* After the error reverses, recovery is quick (few steps, not 1000). *)
  let rec recover n =
    let u = Control.Pid.update pid ~setpoint:0. ~measurement:10. ~dt:0.01 in
    if u <= 0.001 || n > 50 then n else recover (n + 1)
  in
  Alcotest.(check bool) "recovers fast" true (recover 0 <= 50)

let test_pid_closed_loop () =
  (* PID on the thermal plant: must settle to the setpoint. *)
  let plant = Plant.Thermal.default in
  let pid =
    Control.Pid.create ~output_min:0. ~output_max:1.
      { Control.Pid.kp = 0.5; ki = 0.001; kd = 0. }
  in
  let dt = 10. in
  let temp = ref 15. in
  for _ = 1 to 2000 do
    let duty = Control.Pid.update pid ~setpoint:20. ~measurement:!temp ~dt in
    let y =
      Ode.Fixed.integrate Ode.Fixed.Rk4 (Plant.Thermal.system_const plant ~duty)
        ~t0:0. ~t1:dt ~dt:1. [| !temp |]
    in
    temp := y.(0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "settled at %.2f ~ 20" !temp)
    true
    (Float.abs (!temp -. 20.) < 0.2)

let test_pid_reset () =
  let pid = Control.Pid.create { Control.Pid.kp = 0.; ki = 1.; kd = 0. } in
  ignore (Control.Pid.update pid ~setpoint:1. ~measurement:0. ~dt:1.);
  Control.Pid.reset pid;
  Alcotest.(check (float 0.)) "integrator cleared" 0. (Control.Pid.integrator pid)

(* ---- bang-bang ---- *)

let test_bang_bang_hysteresis () =
  let bb = Control.Bang_bang.create ~setpoint:20. ~hysteresis:1. () in
  Alcotest.(check bool) "below band -> on" true
    (Control.Bang_bang.update bb ~measurement:18.);
  Alcotest.(check bool) "inside band keeps on" true
    (Control.Bang_bang.update bb ~measurement:20.5);
  Alcotest.(check bool) "above band -> off" false
    (Control.Bang_bang.update bb ~measurement:21.5);
  Alcotest.(check bool) "inside band keeps off" false
    (Control.Bang_bang.update bb ~measurement:19.5);
  Alcotest.(check int) "two switches" 2 (Control.Bang_bang.switches bb)

let test_bang_bang_zero_hysteresis_chatters () =
  let bb = Control.Bang_bang.create ~setpoint:0. ~hysteresis:0. () in
  let flips = ref 0 in
  let prev = ref (Control.Bang_bang.output bb) in
  List.iter
    (fun v ->
       let o = Control.Bang_bang.update bb ~measurement:v in
       if o <> !prev then incr flips;
       prev := o)
    [ 0.1; -0.1; 0.1; -0.1; 0.1; -0.1 ];
  Alcotest.(check bool) "chatters on every sample" true (!flips >= 5)

(* ---- state feedback ---- *)

let test_place2_places_poles () =
  let a = [| [| 0.; 1. |]; [| 2.; -0.5 |] |] in
  let b = [| 0.; 1. |] in
  let k = Control.State_feedback.place2 ~a ~b ~poles:(-3., -7.) in
  let acl = Control.State_feedback.closed_loop_matrix ~a ~b ~k in
  match Control.State_feedback.eigenvalues2 acl with
  | Some (l1, l2) ->
    let sorted = if l1 < l2 then (l1, l2) else (l2, l1) in
    Alcotest.(check (float 1e-6)) "fast pole" (-7.) (fst sorted);
    Alcotest.(check (float 1e-6)) "slow pole" (-3.) (snd sorted)
  | None -> Alcotest.fail "real poles expected"

let test_place2_uncontrollable () =
  (* b in the kernel of controllability: [1;0] with a diagonal A gives
     C = [b, A b] rank 1. *)
  let a = [| [| 1.; 0. |]; [| 0.; 2. |] |] in
  let b = [| 1.; 0. |] in
  Alcotest.(check bool) "uncontrollable detected" true
    (try ignore (Control.State_feedback.place2 ~a ~b ~poles:(-1., -2.)); false
     with Failure _ -> true)

let test_state_feedback_stabilizes_pendulum () =
  let p = Plant.Pendulum.create ~damping:0.01 () in
  let inertia = p.Plant.Pendulum.mass *. p.Plant.Pendulum.length ** 2. in
  let a = Plant.Pendulum.linearized p ~upright:true in
  let b = [| 0.; 1. /. inertia |] in
  let k = Control.State_feedback.place2 ~a ~b ~poles:(-3., -6.) in
  let fb = Control.State_feedback.create k in
  (* Nonlinear sim from 0.3 rad off upright. *)
  let sys =
    Plant.Pendulum.system p ~torque:(fun _t y ->
        Control.State_feedback.control fb [| y.(0) -. Float.pi; y.(1) |])
  in
  let y = Ode.Fixed.integrate Ode.Fixed.Rk4 sys ~t0:0. ~t1:8. ~dt:1e-3
      [| Float.pi -. 0.3; 0. |] in
  Alcotest.(check bool)
    (Printf.sprintf "angle error %.4f small" (Float.abs (y.(0) -. Float.pi)))
    true
    (Float.abs (y.(0) -. Float.pi) < 1e-2)

(* ---- filters ---- *)

let test_low_pass_converges () =
  let f = Control.Filter.Low_pass.create ~time_constant:1. in
  let y = ref 0. in
  for _ = 1 to 1000 do
    y := Control.Filter.Low_pass.update f ~dt:0.01 1.
  done;
  Alcotest.(check bool) "converges to input" true (Float.abs (!y -. 1.) < 1e-3)

let test_low_pass_smooths () =
  let f = Control.Filter.Low_pass.create ~time_constant:10. in
  ignore (Control.Filter.Low_pass.update f ~dt:0.01 0.);
  let y = Control.Filter.Low_pass.update f ~dt:0.01 100. in
  Alcotest.(check bool) "step heavily attenuated" true (y < 1.)

let test_biquad_butterworth_dc_gain () =
  let f = Control.Filter.Biquad.butterworth_lowpass ~cutoff_hz:10. ~sample_rate:1000. in
  let y = ref 0. in
  for _ = 1 to 5000 do
    y := Control.Filter.Biquad.update f 1.
  done;
  Alcotest.(check bool) "unity DC gain" true (Float.abs (!y -. 1.) < 1e-6)

let test_biquad_attenuates_high_freq () =
  let f = Control.Filter.Biquad.butterworth_lowpass ~cutoff_hz:10. ~sample_rate:1000. in
  (* 250 Hz tone at 1 kHz sampling: far above cutoff. *)
  let peak = ref 0. in
  for i = 0 to 2000 do
    let x = sin (2. *. Float.pi *. 250. *. float_of_int i /. 1000.) in
    let y = Control.Filter.Biquad.update f x in
    if i > 500 then peak := Float.max !peak (Float.abs y)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "attenuated to %.4f" !peak)
    true (!peak < 0.01)

let test_moving_average () =
  let f = Control.Filter.Moving_average.create ~window:3 in
  ignore (Control.Filter.Moving_average.update f 1.);
  ignore (Control.Filter.Moving_average.update f 2.);
  Alcotest.(check (float 1e-12)) "partial window" 2.
    (Control.Filter.Moving_average.update f 3.);
  Alcotest.(check (float 1e-12)) "window slides" 3.
    (Control.Filter.Moving_average.update f 4.)

(* ---- difference equations ---- *)

let test_tf_integrator () =
  let tf = Control.Discrete_tf.integrator ~dt:0.1 in
  let out = Control.Discrete_tf.run tf [ 1.; 1.; 1.; 1. ] in
  (* Forward Euler: y_k = y_{k-1} + dt * u_{k-1}: 0, .1, .2, .3 *)
  Alcotest.(check (list (float 1e-12))) "ramp" [ 0.; 0.1; 0.2; 0.3 ] out

let test_tf_differentiator () =
  let tf = Control.Discrete_tf.differentiator ~dt:0.5 in
  let out = Control.Discrete_tf.run tf [ 0.; 1.; 2.; 3. ] in
  Alcotest.(check (list (float 1e-12))) "slope 2" [ 0.; 2.; 2.; 2. ] out

let test_tf_first_order_lag_matches_continuous () =
  let dt = 0.01 and tau = 0.5 in
  let tf = Control.Discrete_tf.first_order_lag ~dt ~time_constant:tau in
  let y = ref 0. in
  for _ = 1 to 100 do
    y := Control.Discrete_tf.step tf 1.
  done;
  (* ZOH discretization is exact at samples; the numerator delay means
     y_k responds to u_(k-1), so after 100 steps y = 1 - p^99. *)
  let pole = exp (-.dt /. tau) in
  let expected = 1. -. (pole ** 99.) in
  Alcotest.(check bool)
    (Printf.sprintf "%.6f ~ %.6f" !y expected)
    true
    (Float.abs (!y -. expected) < 1e-9)

let test_tf_reset () =
  let tf = Control.Discrete_tf.integrator ~dt:1. in
  ignore (Control.Discrete_tf.run tf [ 1.; 1.; 1. ]);
  Control.Discrete_tf.reset tf;
  Alcotest.(check (float 1e-12)) "starts from zero" 0. (Control.Discrete_tf.step tf 1.)

(* qcheck: discrete first-order lag is BIBO: bounded input -> output
   bounded by the same bound. *)
let prop_lag_bibo =
  QCheck.Test.make ~count:100 ~name:"first-order lag is BIBO stable"
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range (-5.) 5.))
    (fun inputs ->
       let tf = Control.Discrete_tf.first_order_lag ~dt:0.1 ~time_constant:0.3 in
       let outs = Control.Discrete_tf.run tf inputs in
       List.for_all (fun y -> Float.abs y <= 5. +. 1e-9) outs)

let suite =
  [ Alcotest.test_case "pid: proportional" `Quick test_pid_proportional;
    Alcotest.test_case "pid: integral" `Quick test_pid_integral_accumulates;
    Alcotest.test_case "pid: derivative" `Quick test_pid_derivative;
    Alcotest.test_case "pid: output clamping" `Quick test_pid_output_clamped;
    Alcotest.test_case "pid: anti-windup" `Quick test_pid_anti_windup;
    Alcotest.test_case "pid: closed loop on thermal plant" `Quick test_pid_closed_loop;
    Alcotest.test_case "pid: reset" `Quick test_pid_reset;
    Alcotest.test_case "bang-bang: hysteresis" `Quick test_bang_bang_hysteresis;
    Alcotest.test_case "bang-bang: chatter without hysteresis" `Quick
      test_bang_bang_zero_hysteresis_chatters;
    Alcotest.test_case "place2: pole placement" `Quick test_place2_places_poles;
    Alcotest.test_case "place2: uncontrollable pair" `Quick test_place2_uncontrollable;
    Alcotest.test_case "state feedback stabilizes pendulum" `Quick
      test_state_feedback_stabilizes_pendulum;
    Alcotest.test_case "low-pass: convergence" `Quick test_low_pass_converges;
    Alcotest.test_case "low-pass: smoothing" `Quick test_low_pass_smooths;
    Alcotest.test_case "biquad: DC gain" `Quick test_biquad_butterworth_dc_gain;
    Alcotest.test_case "biquad: stop band" `Quick test_biquad_attenuates_high_freq;
    Alcotest.test_case "moving average" `Quick test_moving_average;
    Alcotest.test_case "tf: integrator" `Quick test_tf_integrator;
    Alcotest.test_case "tf: differentiator" `Quick test_tf_differentiator;
    Alcotest.test_case "tf: ZOH lag exactness" `Quick
      test_tf_first_order_lag_matches_continuous;
    Alcotest.test_case "tf: reset" `Quick test_tf_reset;
    QCheck_alcotest.to_alcotest prop_lag_bibo ]

(* ---- LQR ---- *)

let test_lqr_double_integrator () =
  (* Classic: A = [[0,1],[0,0]], b = [0,1], Q = I, r = 1 gives
     P = [[sqrt 3, 1], [1, sqrt 3]] and k = [1, sqrt 3]. *)
  let a = [| [| 0.; 1. |]; [| 0.; 0. |] |] in
  let b = [| 0.; 1. |] in
  let q = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let k = Control.Lqr.gains ~a ~b ~q ~r:1. () in
  Alcotest.(check bool)
    (Printf.sprintf "k = [%.4f; %.4f] ~ [1; sqrt 3]" k.(0) k.(1))
    true
    (Float.abs (k.(0) -. 1.) < 1e-3 && Float.abs (k.(1) -. sqrt 3.) < 1e-3)

let test_lqr_residual_small () =
  let a = [| [| 0.; 1. |]; [| 4.; -0.2 |] |] in
  let b = [| 0.; 2. |] in
  let q = [| [| 5.; 0. |]; [| 0.; 1. |] |] in
  let p = Control.Lqr.solve_care ~a ~b ~q ~r:0.5 () in
  Alcotest.(check bool) "CARE residual below tolerance" true
    (Control.Lqr.cost_matrix_residual ~a ~b ~q ~r:0.5 ~p < 1e-8);
  (* Symmetric solution. *)
  Alcotest.(check (float 1e-9)) "symmetric" p.(0).(1) p.(1).(0)

let test_lqr_stabilizes () =
  (* Unstable plant (upright pendulum linearization): LQR must yield a
     closed loop with strictly negative eigenvalues. *)
  let plant = Plant.Pendulum.default in
  let inertia = plant.Plant.Pendulum.mass *. plant.Plant.Pendulum.length ** 2. in
  let a = Plant.Pendulum.linearized plant ~upright:true in
  let b = [| 0.; 1. /. inertia |] in
  let q = [| [| 10.; 0. |]; [| 0.; 1. |] |] in
  let k = Control.Lqr.gains ~a ~b ~q ~r:1. () in
  let acl = Control.State_feedback.closed_loop_matrix ~a ~b ~k in
  match Control.State_feedback.eigenvalues2 acl with
  | Some (l1, l2) ->
    Alcotest.(check bool)
      (Printf.sprintf "poles %.3f, %.3f in the left half plane" l1 l2)
      true
      (l1 < 0. && l2 < 0.)
  | None ->
    (* complex pair: check the trace (sum of real parts) is negative *)
    let tr = acl.(0).(0) +. acl.(1).(1) in
    Alcotest.(check bool) "complex poles, negative real part" true (tr < 0.)

let test_lqr_validation () =
  Alcotest.(check bool) "r <= 0 rejected" true
    (try
       ignore
         (Control.Lqr.gains ~a:[| [| 0. |] |] ~b:[| 1. |] ~q:[| [| 1. |] |] ~r:0. ());
       false
     with Invalid_argument _ -> true)

let lqr_suite =
  [ Alcotest.test_case "lqr: double integrator closed form" `Quick
      test_lqr_double_integrator;
    Alcotest.test_case "lqr: CARE residual" `Quick test_lqr_residual_small;
    Alcotest.test_case "lqr: stabilizes unstable plant" `Quick test_lqr_stabilizes;
    Alcotest.test_case "lqr: validation" `Quick test_lqr_validation ]

let suite = suite @ lqr_suite

(* ---- fault-sweep regressions: construction-time validation ---- *)

let test_pid_rejects_bad_construction () =
  let g = { Control.Pid.kp = 1.; ki = 0.; kd = 0. } in
  Alcotest.check_raises "NaN output_min"
    (Invalid_argument "Control.Pid.create: NaN output bound")
    (fun () -> ignore (Control.Pid.create ~output_min:Float.nan g));
  Alcotest.check_raises "NaN output_max"
    (Invalid_argument "Control.Pid.create: NaN output bound")
    (fun () -> ignore (Control.Pid.create ~output_max:Float.nan g));
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Control.Pid.create: output_min > output_max")
    (fun () -> ignore (Control.Pid.create ~output_min:1. ~output_max:(-1.) g));
  Alcotest.check_raises "NaN derivative filter"
    (Invalid_argument "Control.Pid.create: NaN derivative filter constant")
    (fun () -> ignore (Control.Pid.create ~derivative_filter:Float.nan g));
  (* healthy saturating controller still constructs *)
  ignore (Control.Pid.create ~output_min:(-1.) ~output_max:1. g)

let validation_suite =
  [ Alcotest.test_case "pid: NaN/inverted bounds rejected" `Quick
      test_pid_rejects_bad_construction ]

let suite = suite @ validation_suite
