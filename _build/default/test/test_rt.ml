(* Real-time substrate tests: task model, RM utilization/RTA, EDF demand
   bound, schedule simulation cross-checks, channel latency models. *)

let task = Rt.Task.create

let test_task_invariants () =
  Alcotest.(check bool) "wcet > deadline rejected" true
    (try ignore (task ~period:1. ~wcet:2. "t"); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "deadline > period rejected" true
    (try ignore (task ~deadline:2. ~period:1. ~wcet:0.1 "t"); false
     with Invalid_argument _ -> true);
  let t = task ~period:10. ~wcet:2. "t" in
  Alcotest.(check (float 1e-12)) "implicit deadline" 10. t.Rt.Task.deadline;
  Alcotest.(check (float 1e-12)) "utilization" 0.2 (Rt.Task.utilization t)

let test_ll_bound () =
  Alcotest.(check (float 1e-12)) "n=1" 1. (Rt.Rm.utilization_bound 1);
  Alcotest.(check (float 1e-4)) "n=2" 0.8284 (Rt.Rm.utilization_bound 2);
  Alcotest.(check bool) "monotone decreasing to ln 2" true
    (Rt.Rm.utilization_bound 100 > 0.693
     && Rt.Rm.utilization_bound 100 < Rt.Rm.utilization_bound 2)

let test_rm_priorities () =
  let fast = task ~period:1. ~wcet:0.1 "fast" in
  let slow = task ~period:10. ~wcet:1. "slow" in
  match Rt.Rm.priorities [ slow; fast ] with
  | [ (a, 0); (b, 1) ] ->
    Alcotest.(check string) "fast is highest" "fast" a.Rt.Task.name;
    Alcotest.(check string) "slow is lowest" "slow" b.Rt.Task.name
  | _ -> Alcotest.fail "two priorities"

let test_rta_classic () =
  (* Classic example: T=(7,2), (12,3), (20,5): all schedulable under RM;
     fixed-point response times 2, 5, 12. *)
  let t1 = task ~period:7. ~wcet:2. "t1" in
  let t2 = task ~period:12. ~wcet:3. "t2" in
  let t3 = task ~period:20. ~wcet:5. "t3" in
  let tasks = [ t1; t2; t3 ] in
  let r name t =
    match Rt.Rm.response_time tasks t with
    | Some r -> r
    | None -> Alcotest.fail (name ^ " should be schedulable")
  in
  Alcotest.(check (float 1e-9)) "R1" 2. (r "t1" t1);
  Alcotest.(check (float 1e-9)) "R2" 5. (r "t2" t2);
  Alcotest.(check (float 1e-9)) "R3" 12. (r "t3" t3);
  Alcotest.(check bool) "set schedulable" true (Rt.Rm.schedulable tasks)

let test_rta_unschedulable () =
  let tasks =
    [ task ~period:2. ~wcet:1. "a";
      task ~period:3. ~wcet:1.5 "b" ]  (* U = 1.0, RM misses *)
  in
  Alcotest.(check bool) "b misses under RM" false (Rt.Rm.schedulable tasks)

let test_utilization_test_bands () =
  let sched = [ task ~period:10. ~wcet:1. "a" ] in
  Alcotest.(check bool) "trivial set" true
    (Rt.Rm.utilization_test sched = Rt.Rm.Schedulable);
  let over =
    [ task ~period:1. ~wcet:0.7 "a"; task ~period:2. ~wcet:0.9 "b" ]
  in
  Alcotest.(check bool) "over 1.0" true (Rt.Rm.utilization_test over = Rt.Rm.Overloaded)

let test_breakdown () =
  let tasks = [ task ~period:10. ~wcet:1. "a"; task ~period:20. ~wcet:2. "b" ] in
  let k = Rt.Rm.breakdown_utilization tasks in
  Alcotest.(check bool) (Printf.sprintf "breakdown %.2f > 1" k) true (k > 1.);
  (* At the breakdown factor the set is still schedulable. *)
  let scaled =
    List.map (fun t -> { t with Rt.Task.wcet = t.Rt.Task.wcet *. k }) tasks
  in
  Alcotest.(check bool) "still schedulable at k" true (Rt.Rm.schedulable scaled)

let test_edf_utilization () =
  (* Non-harmonic U = 1.0 with implicit deadlines: EDF yes, RM no. *)
  let tasks = [ task ~period:2. ~wcet:1. "a"; task ~period:3. ~wcet:1.5 "b" ] in
  Alcotest.(check bool) "EDF schedulable at U=1" true (Rt.Edf.schedulable tasks);
  Alcotest.(check bool) "RM not" false (Rt.Rm.schedulable tasks)

let test_edf_demand_bound () =
  let tasks = [ task ~period:4. ~wcet:1. "a"; task ~period:6. ~wcet:2. "b" ] in
  (* dbf(6) = floor((6-4)/4 +1)*1 + floor((6-6)/6 +1)*2 = 2*1? no:
     jobs of a with deadline <= 6: released at 0,4 -> deadlines 4,8: only 1.
     dbf(6) = 1 + 2 = 3. *)
  Alcotest.(check (float 1e-9)) "dbf(6)" 3. (Rt.Edf.demand_bound tasks 6.);
  Alcotest.(check (float 1e-9)) "dbf(12)" (3. +. 4.) (Rt.Edf.demand_bound tasks 12.)

let test_edf_constrained_deadlines () =
  (* Constrained deadlines where EDF fails despite U < 1. *)
  let tasks =
    [ task ~deadline:1. ~period:4. ~wcet:1. "a";
      task ~deadline:1.5 ~period:4. ~wcet:1. "b" ]
  in
  Alcotest.(check bool) "demand criterion rejects" false (Rt.Edf.schedulable tasks)

let test_sim_matches_rta () =
  let tasks =
    [ task ~period:7. ~wcet:2. "t1";
      task ~period:12. ~wcet:3. "t2";
      task ~period:20. ~wcet:5. "t3" ]
  in
  let result = Rt.Sched_sim.simulate Rt.Sched_sim.Fixed_priority tasks ~horizon:420. in
  Alcotest.(check int) "no misses (RTA says schedulable)" 0
    (Rt.Sched_sim.miss_count result);
  let u = Rt.Sched_sim.utilization_observed result in
  let expected = Rt.Task.total_utilization tasks in
  Alcotest.(check bool)
    (Printf.sprintf "observed utilization %.3f ~ %.3f" u expected)
    true
    (Float.abs (u -. expected) < 0.02)

let test_sim_detects_overload_misses () =
  let tasks = [ task ~period:2. ~wcet:1. "a"; task ~period:3. ~wcet:1.5 "b" ] in
  let rm = Rt.Sched_sim.simulate Rt.Sched_sim.Fixed_priority tasks ~horizon:60. in
  Alcotest.(check bool) "RM sim misses" true (Rt.Sched_sim.miss_count rm > 0);
  let edf = Rt.Sched_sim.simulate Rt.Sched_sim.Edf tasks ~horizon:60. in
  Alcotest.(check int) "EDF sim meets (U = 1)" 0 (Rt.Sched_sim.miss_count edf)

let test_sim_preemption () =
  (* Low-priority long job is preempted by the fast task: its segments
     are split. *)
  let tasks = [ task ~period:2. ~wcet:0.5 "fast"; task ~period:10. ~wcet:3. "slow" ] in
  let result = Rt.Sched_sim.simulate Rt.Sched_sim.Fixed_priority tasks ~horizon:10. in
  let slow_segments =
    List.filter (fun s -> String.equal s.Rt.Sched_sim.task "slow") result.Rt.Sched_sim.segments
  in
  Alcotest.(check bool) "slow job split into several segments" true
    (List.length slow_segments > 1);
  Alcotest.(check int) "no misses" 0 (Rt.Sched_sim.miss_count result)

let test_channel_models () =
  let rng = Des.Rng.create 11 in
  Alcotest.(check (float 0.)) "immediate" 0. (Rt.Channel.sample Rt.Channel.Immediate rng);
  Alcotest.(check (float 0.)) "constant" 0.5
    (Rt.Channel.sample (Rt.Channel.Constant 0.5) rng);
  let u = Rt.Channel.sample (Rt.Channel.Uniform (0.1, 0.2)) rng in
  Alcotest.(check bool) "uniform in range" true (u >= 0.1 && u < 0.2);
  let g = Rt.Channel.sample (Rt.Channel.Gaussian { mu = -1.; sigma = 0.1 }) rng in
  Alcotest.(check bool) "gaussian clamped at 0" true (g >= 0.)

let test_channel_delivery () =
  let e = Des.Engine.create () in
  let ch = Rt.Channel.create e ~model:(Rt.Channel.Constant 0.25) "c" in
  let delivered_at = ref (-1.) in
  Des.Mailbox.set_listener (Rt.Channel.mailbox ch)
    (fun _ -> delivered_at := Des.Engine.now e);
  Rt.Channel.send ch "msg";
  ignore (Des.Engine.run_until e 1.);
  Alcotest.(check (float 1e-12)) "arrives after model latency" 0.25 !delivered_at;
  Alcotest.(check (option (float 1e-12))) "mean latency" (Some 0.25)
    (Rt.Channel.mean_latency ch)

(* qcheck: simulated RM schedule of a random harmonic task set with
   U <= ln 2 never misses (harmonic + under LL bound => schedulable). *)
let prop_low_utilization_schedulable =
  QCheck.Test.make ~count:50 ~name:"U<=0.69 harmonic sets never miss under RM"
    QCheck.(pair (int_range 1 4) (int_range 1 9))
    (fun (n, wpct) ->
       let tasks =
         List.init n (fun i ->
             let period = 2. ** float_of_int i in
             let wcet = period *. (float_of_int wpct /. 100.) in
             task ~period ~wcet (Printf.sprintf "t%d" i))
       in
       QCheck.assume (Rt.Task.total_utilization tasks <= 0.69);
       let sim = Rt.Sched_sim.simulate Rt.Sched_sim.Fixed_priority tasks ~horizon:64. in
       Rt.Sched_sim.miss_count sim = 0 && Rt.Rm.schedulable tasks)

let suite =
  [ Alcotest.test_case "task invariants" `Quick test_task_invariants;
    Alcotest.test_case "Liu-Layland bound" `Quick test_ll_bound;
    Alcotest.test_case "RM priority assignment" `Quick test_rm_priorities;
    Alcotest.test_case "response-time analysis (classic set)" `Quick test_rta_classic;
    Alcotest.test_case "RTA detects unschedulable" `Quick test_rta_unschedulable;
    Alcotest.test_case "utilization test bands" `Quick test_utilization_test_bands;
    Alcotest.test_case "breakdown utilization" `Quick test_breakdown;
    Alcotest.test_case "EDF at U=1 vs RM" `Quick test_edf_utilization;
    Alcotest.test_case "EDF demand bound" `Quick test_edf_demand_bound;
    Alcotest.test_case "EDF constrained deadlines" `Quick test_edf_constrained_deadlines;
    Alcotest.test_case "simulation agrees with RTA" `Quick test_sim_matches_rta;
    Alcotest.test_case "simulation finds overload misses" `Quick
      test_sim_detects_overload_misses;
    Alcotest.test_case "simulation preempts" `Quick test_sim_preemption;
    Alcotest.test_case "channel latency models" `Quick test_channel_models;
    Alcotest.test_case "channel delivery timing" `Quick test_channel_delivery;
    QCheck_alcotest.to_alcotest prop_low_utilization_schedulable ]

(* ---- workload generation ---- *)

let test_uunifast_sums () =
  let rng = Des.Rng.create 3 in
  List.iter
    (fun u ->
       let us = Rt.Workload.uunifast rng ~n:8 ~total_utilization:u in
       Alcotest.(check int) "eight tasks" 8 (List.length us);
       let sum = List.fold_left ( +. ) 0. us in
       Alcotest.(check bool)
         (Printf.sprintf "sums to %.2f (got %.6f)" u sum)
         true
         (Float.abs (sum -. u) < 1e-9);
       List.iter
         (fun x -> Alcotest.(check bool) "positive share" true (x > 0.))
         us)
    [ 0.3; 0.7; 0.95 ]

let test_random_task_set_valid () =
  let rng = Des.Rng.create 9 in
  let tasks =
    Rt.Workload.random_task_set rng ~n:10 ~total_utilization:0.8
      ~constrained_deadlines:true ()
  in
  Alcotest.(check int) "ten tasks" 10 (List.length tasks);
  List.iter
    (fun t ->
       let open Rt.Task in
       Alcotest.(check bool) "wcet <= deadline <= period" true
         (t.wcet <= t.deadline && t.deadline <= t.period);
       Alcotest.(check bool) "period in range" true
         (t.period >= 0.001 && t.period <= 1.0))
    tasks;
  Alcotest.(check bool) "total utilization ~ 0.8" true
    (Float.abs (Rt.Task.total_utilization tasks -. 0.8) < 1e-6)

let test_workload_deterministic () =
  let a = Rt.Workload.uunifast (Des.Rng.create 5) ~n:4 ~total_utilization:0.5 in
  let b = Rt.Workload.uunifast (Des.Rng.create 5) ~n:4 ~total_utilization:0.5 in
  Alcotest.(check (list (float 0.))) "same seed same set" a b

let test_acceptance_ratio_monotone () =
  (* RM acceptance must (weakly) decrease as utilization grows. *)
  let ratio u =
    Rt.Workload.acceptance_ratio (Des.Rng.create 1) ~n:5 ~total_utilization:u
      ~sets:60 ~test:Rt.Rm.schedulable
  in
  let low = ratio 0.5 in
  let high = ratio 0.95 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio(0.5)=%.2f >= ratio(0.95)=%.2f" low high)
    true (low >= high);
  Alcotest.(check bool) "low utilization mostly accepted" true (low > 0.8)

let workload_suite =
  [ Alcotest.test_case "workload: uunifast sums" `Quick test_uunifast_sums;
    Alcotest.test_case "workload: valid task sets" `Quick test_random_task_set_valid;
    Alcotest.test_case "workload: deterministic" `Quick test_workload_deterministic;
    Alcotest.test_case "workload: acceptance monotone" `Quick
      test_acceptance_ratio_monotone ]

let suite = suite @ workload_suite

let test_channel_drops () =
  let e = Des.Engine.create () in
  let ch = Rt.Channel.create e ~drop_probability:0.5 ~seed:7 "lossy" in
  for _ = 1 to 1000 do
    Rt.Channel.send ch ()
  done;
  ignore (Des.Engine.run_until e 1.);
  let dropped = Rt.Channel.dropped ch in
  Alcotest.(check bool)
    (Printf.sprintf "~half dropped (%d/1000)" dropped)
    true
    (dropped > 400 && dropped < 600);
  Alcotest.(check int) "delivered = sent - dropped"
    (1000 - dropped)
    (Des.Mailbox.delivered_total (Rt.Channel.mailbox ch));
  Alcotest.(check bool) "p = 1 rejected" true
    (try ignore (Rt.Channel.create e ~drop_probability:1. "bad"); false
     with Invalid_argument _ -> true)

let drop_suite =
  [ Alcotest.test_case "channel: drop probability" `Quick test_channel_drops ]

let suite = suite @ drop_suite
