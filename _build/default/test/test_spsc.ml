(* The cross-shard transport ring: single-producer single-consumer,
   bounded, lock-free. The properties the epoch protocol leans on:
   nothing is lost or reordered (FIFO), a full ring refuses the push
   instead of overwriting, and occupancy never exceeds the (power of
   two rounded) capacity however mismatched the two sides' rates are.
   The two-domain test exercises the actual memory-model claim: plain
   slot writes are published by the SC tail store and observed after
   the head load, across real domains. *)

let check = Alcotest.(check bool)

(* Replay an arbitrary op pattern single-threaded: true = push next
   value, false = pop. The ring must behave exactly like a bounded
   FIFO queue. *)
let prop_fifo_model =
  QCheck.Test.make ~count:500 ~name:"spsc matches a bounded FIFO model"
    QCheck.(pair (int_range 1 32) (small_list bool))
    (fun (cap, ops) ->
       let ring = Shard.Spsc.create ~capacity:cap in
       let model = Queue.create () in
       let next = ref 0 in
       List.for_all
         (fun is_push ->
            if is_push then begin
              let v = !next in
              incr next;
              let had_room =
                Queue.length model < Shard.Spsc.capacity ring
              in
              let accepted = Shard.Spsc.push ring v in
              if accepted then Queue.push v model;
              (* full ring must refuse, non-full must accept *)
              accepted = had_room
            end
            else
              match (Shard.Spsc.pop ring, Queue.take_opt model) with
              | None, None -> true
              | Some a, Some b -> a = b
              | _ -> false)
         ops
       && Shard.Spsc.length ring = Queue.length model)

let prop_bounded =
  QCheck.Test.make ~count:200
    ~name:"spsc occupancy never exceeds capacity under rate mismatch"
    QCheck.(pair (int_range 1 16) (small_list (int_range 0 5)))
    (fun (cap, bursts) ->
       let ring = Shard.Spsc.create ~capacity:cap in
       let pushed = ref 0 in
       List.iter
         (fun burst ->
            (* producer bursts [burst] pushes, consumer drains one *)
            for _ = 1 to burst do
              if Shard.Spsc.push ring !pushed then incr pushed
            done;
            ignore (Shard.Spsc.pop ring))
         bursts;
       Shard.Spsc.length ring <= Shard.Spsc.capacity ring)

let test_full_refuses () =
  let ring = Shard.Spsc.create ~capacity:4 in
  for i = 0 to Shard.Spsc.capacity ring - 1 do
    check "accepts while space" true (Shard.Spsc.push ring i)
  done;
  check "refuses when full" false (Shard.Spsc.push ring 99);
  Alcotest.(check (option int)) "fifo head survives the refusal" (Some 0)
    (Shard.Spsc.pop ring);
  check "accepts again after a pop" true (Shard.Spsc.push ring 100)

(* One producer domain, the main domain consuming concurrently: every
   value arrives exactly once, in order, while the producer spins on a
   full ring. *)
let test_two_domain_stream () =
  let n = 100_000 in
  let ring = Shard.Spsc.create ~capacity:64 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Shard.Spsc.push ring i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let received = ref 0 in
  let in_order = ref true in
  while !received < n do
    match Shard.Spsc.pop ring with
    | None -> Domain.cpu_relax ()
    | Some v ->
      if v <> !received then in_order := false;
      incr received
  done;
  Domain.join producer;
  check "all values in order" true !in_order;
  check "ring drained" true (Shard.Spsc.is_empty ring)

let test_capacity_rounding () =
  Alcotest.(check int) "rounds up to a power of two" 8
    (Shard.Spsc.capacity (Shard.Spsc.create ~capacity:5));
  Alcotest.(check int) "power of two is kept" 4
    (Shard.Spsc.capacity (Shard.Spsc.create ~capacity:4))

let suite =
  [ QCheck_alcotest.to_alcotest prop_fifo_model;
    QCheck_alcotest.to_alcotest prop_bounded;
    Alcotest.test_case "full ring refuses, pop reopens" `Quick
      test_full_refuses;
    Alcotest.test_case "two-domain stream, no loss, fifo" `Quick
      test_two_domain_stream;
    Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding ]
