(* Code-generation tests: the generated C must be structurally complete,
   compile with the system C compiler, and — when executed — regulate the
   thermostat the same way the simulator does. *)

let thermostat_model = {umh|
model Thermostat
protocol Thermo {
  in heater_on, heater_off;
  out too_cold, too_hot;
}
streamer Room {
  rate 0.05;
  method rk4 0.005;
  dport out temp;
  sport ctl : Thermo;
  param duty = 0.0;
  init T = 20.0;
  eq T' = -(T - 15.0) / 20.0 + 0.8 * duty;
  output temp = T;
  guard low : falling (T - 19.0) emits too_cold via ctl;
  guard high : rising (T - 21.0) emits too_hot via ctl;
  when heater_on set duty = 1.0;
  when heater_off set duty = 0.0;
}
capsule Controller {
  port plant : Thermo conjugated;
  statemachine {
    initial Idle;
    state Idle { on too_cold -> Heating send heater_on via plant; }
    state Heating { on too_hot -> Idle send heater_off via plant; }
  }
}
system {
  capsule ctl : Controller;
  streamer room : Room in ctl;
  link room.ctl -- ctl.plant;
}
|umh}

let generate () =
  let checked = Dsl.Typecheck.check (Dsl.Parser.parse thermostat_model) in
  Codegen.Cgen.generate checked

let contains hay needle =
  let ln = String.length needle in
  let lh = String.length hay in
  let rec scan i =
    if i + ln > lh then false
    else if String.equal (String.sub hay i ln) needle then true
    else scan (i + 1)
  in
  scan 0

let c_source () =
  match generate () with
  | [ _; { Codegen.Cgen.filename = "umh_model.c"; contents } ] -> contents
  | _ -> Alcotest.fail "expected header + source"

let test_outputs_two_files () =
  let files = generate () in
  Alcotest.(check (list string)) "filenames" [ "umh_model.h"; "umh_model.c" ]
    (List.map (fun o -> o.Codegen.Cgen.filename) files)

let test_structure () =
  let src = c_source () in
  List.iter
    (fun needle ->
       Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
         (contains src needle))
    [ "typedef struct"; "room_rhs"; "room_step"; "room_outputs";
      "room_guard_0"; "room_signal"; "ctl_handle"; "SIG_too_cold";
      "SIG_heater_on"; "umh_run"; "ctl_S_Idle"; "ctl_S_Heating" ]

let test_expr_to_c () =
  let e = Dsl.Parser.parse_expr "-(a + 2) * max(b, 3) ^ 2" in
  let resolve = function
    | "a" -> "s->a"
    | "b" -> "s->b"
    | other -> Alcotest.fail ("unexpected identifier " ^ other)
  in
  Alcotest.(check string) "compiled expression"
    "((-(s->a + 2.0)) * pow(fmax(s->b, 3.0), 2.0))"
    (Codegen.Cgen.expr_to_c ~resolve e)

let run_command cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let have_cc () =
  match run_command "cc --version" with
  | Unix.WEXITED 0, _ -> true
  | _, _ -> false

let test_compiles_and_regulates () =
  if not (have_cc ()) then ()
  else begin
    let dir = Filename.temp_file "umhgen" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    List.iter
      (fun { Codegen.Cgen.filename; contents } ->
         let oc = open_out (Filename.concat dir filename) in
         output_string oc contents;
         close_out oc)
      (generate ());
    let exe = Filename.concat dir "model" in
    (match
       run_command
         (Printf.sprintf "cc -O1 -o %s %s -lm" exe
            (Filename.concat dir "umh_model.c"))
     with
     | Unix.WEXITED 0, _ -> ()
     | _, log -> Alcotest.fail ("generated C failed to compile:\n" ^ log));
    let status, csv = run_command (exe ^ " 400") in
    (match status with
     | Unix.WEXITED 0 -> ()
     | _ -> Alcotest.fail "generated binary crashed");
    (* Parse CSV rows: time,room.temp — after settling, the band holds. *)
    let lines = String.split_on_char '\n' csv in
    let late_temps =
      List.filter_map
        (fun line ->
           match String.split_on_char ',' line with
           | [ time; temp ] ->
             (match (float_of_string_opt time, float_of_string_opt temp) with
              | Some t, Some v when t > 100. -> Some v
              | _, _ -> None)
           | _ -> None)
        lines
    in
    Alcotest.(check bool) "enough samples" true (List.length late_temps > 100);
    List.iter
      (fun temp ->
         Alcotest.(check bool)
           (Printf.sprintf "generated-code temp %g in band" temp)
           true
           (temp > 18.4 && temp < 21.6))
      late_temps
  end

let suite =
  [ Alcotest.test_case "two output files" `Quick test_outputs_two_files;
    Alcotest.test_case "structural completeness" `Quick test_structure;
    Alcotest.test_case "expression compilation" `Quick test_expr_to_c;
    Alcotest.test_case "generated C compiles and regulates" `Slow
      test_compiles_and_regulates ]
