(* UML-RT substrate tests: protocols, capsule validation, connector
   wiring (relay chains), run-to-completion dispatch, timers,
   environment boundary. *)

let ping_pong =
  Umlrt.Protocol.create "PingPong"
    ~incoming:[ Umlrt.Protocol.signal "pong" ]
    ~outgoing:[ Umlrt.Protocol.signal "ping" ]

let event = Statechart.Event.make

(* ---- protocols ---- *)

let test_protocol_roles () =
  Alcotest.(check bool) "base sends outgoing" true
    (Umlrt.Protocol.can_send ping_pong ~conjugated:false "ping");
  Alcotest.(check bool) "base cannot send incoming" false
    (Umlrt.Protocol.can_send ping_pong ~conjugated:false "pong");
  Alcotest.(check bool) "conjugate sends incoming" true
    (Umlrt.Protocol.can_send ping_pong ~conjugated:true "pong");
  Alcotest.(check bool) "conjugate receives outgoing" true
    (Umlrt.Protocol.can_receive ping_pong ~conjugated:true "ping")

let test_protocol_duplicate_signal () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore
         (Umlrt.Protocol.create "P"
            ~outgoing:[ Umlrt.Protocol.signal "x"; Umlrt.Protocol.signal "x" ]);
       false
     with Invalid_argument _ -> true)

(* ---- behaviour helpers ---- *)

(* Echo capsule: replies "pong" to every "ping" on its single port.
   It plays the conjugate role (receives outgoing "ping", sends incoming
   "pong"). *)
let echo_behavior (services : Umlrt.Capsule.services) =
  { Umlrt.Capsule.on_start = (fun () -> ());
    on_event =
      (fun ~port e ->
         if String.equal (Statechart.Event.signal e) "ping" then begin
           services.Umlrt.Capsule.send ~port (event "pong");
           true
         end
         else false);
    configuration = (fun () -> [ "echo" ]) }

(* Counting capsule: records everything it receives. *)
let counter_behavior received (_services : Umlrt.Capsule.services) =
  { Umlrt.Capsule.on_start = (fun () -> ());
    on_event =
      (fun ~port:_ e ->
         received := Statechart.Event.signal e :: !received;
         true);
    configuration = (fun () -> [ "counter" ]) }

(* ---- validation ---- *)

let test_validate_sibling_conjugation () =
  let a =
    Umlrt.Capsule.create "A" ~behavior:echo_behavior
      ~ports:[ Umlrt.Capsule.port "p" ping_pong ]
  in
  let b =
    Umlrt.Capsule.create "B" ~behavior:echo_behavior
      ~ports:[ Umlrt.Capsule.port "p" ping_pong ]  (* both base: invalid *)
  in
  let root =
    Umlrt.Capsule.create "Root"
      ~parts:[ ("a", a); ("b", b) ]
      ~connectors:
        [ Umlrt.Capsule.connector
            ~from_:(Umlrt.Capsule.part_port "a" "p")
            ~to_:(Umlrt.Capsule.part_port "b" "p") ]
  in
  Alcotest.(check bool) "conjugation mismatch reported" true
    (List.exists
       (fun e ->
          List.exists (String.equal "needs exactly one conjugated end")
            [ e ] |> not
          |> fun _ -> String.length e > 0)
       (Umlrt.Capsule.validate root)
     && Umlrt.Capsule.validate root <> [])

let test_validate_unknown_endpoint () =
  let root =
    Umlrt.Capsule.create "Root"
      ~connectors:
        [ Umlrt.Capsule.connector
            ~from_:(Umlrt.Capsule.border "nope")
            ~to_:(Umlrt.Capsule.border "alsono") ]
  in
  Alcotest.(check bool) "unknown ports reported" true
    (List.length (Umlrt.Capsule.validate root) >= 2)

let test_validate_end_port_without_behavior () =
  let leaf =
    Umlrt.Capsule.create "Leaf" ~ports:[ Umlrt.Capsule.port "p" ping_pong ]
  in
  Alcotest.(check bool) "End port without behaviour flagged" true
    (Umlrt.Capsule.validate leaf <> [])

(* ---- runtime wiring ---- *)

let sibling_model () =
  let received = ref [] in
  let a =
    Umlrt.Capsule.create "A" ~behavior:echo_behavior
      ~ports:[ Umlrt.Capsule.port "p" ping_pong ]
  in
  let b =
    Umlrt.Capsule.create "B" ~behavior:(counter_behavior received)
      ~ports:[ Umlrt.Capsule.port ~conjugated:true "p" ping_pong ]
  in
  let root =
    Umlrt.Capsule.create "Root"
      ~parts:[ ("a", a); ("b", b) ]
      ~connectors:
        [ Umlrt.Capsule.connector
            ~from_:(Umlrt.Capsule.part_port "a" "p")
            ~to_:(Umlrt.Capsule.part_port "b" "p") ]
  in
  (root, received)

let test_runtime_sibling_message () =
  let root, received = sibling_model () in
  let engine = Des.Engine.create () in
  let rt = Umlrt.Runtime.create engine root in
  (* Resolve: a.p should reach b.p. *)
  (match Umlrt.Runtime.resolve rt ~path:"Root/a" ~port:"p" with
   | Umlrt.Runtime.To_instance (path, port) ->
     Alcotest.(check string) "peer path" "Root/b" path;
     Alcotest.(check string) "peer port" "p" port
   | Umlrt.Runtime.To_environment _ | Umlrt.Runtime.Unconnected ->
     Alcotest.fail "expected instance target");
  ignore received;
  Alcotest.(check (list string)) "paths" [ "Root"; "Root/a"; "Root/b" ]
    (Umlrt.Runtime.instance_paths rt)

let test_runtime_relay_chain () =
  (* Message passes through a border relay port of a nested capsule. *)
  let received = ref [] in
  let inner =
    Umlrt.Capsule.create "Inner" ~behavior:(counter_behavior received)
      ~ports:[ Umlrt.Capsule.port ~conjugated:true "p" ping_pong ]
  in
  let wrapper =
    Umlrt.Capsule.create "Wrapper"
      ~ports:[ Umlrt.Capsule.port ~conjugated:true ~kind:Umlrt.Capsule.Relay "outer" ping_pong ]
      ~parts:[ ("inner", inner) ]
      ~connectors:
        [ Umlrt.Capsule.connector
            ~from_:(Umlrt.Capsule.border "outer")
            ~to_:(Umlrt.Capsule.part_port "inner" "p") ]
  in
  let sender =
    Umlrt.Capsule.create "Sender" ~behavior:echo_behavior
      ~ports:[ Umlrt.Capsule.port "p" ping_pong ]
  in
  let root =
    Umlrt.Capsule.create "Root"
      ~parts:[ ("w", wrapper); ("s", sender) ]
      ~connectors:
        [ Umlrt.Capsule.connector
            ~from_:(Umlrt.Capsule.part_port "s" "p")
            ~to_:(Umlrt.Capsule.part_port "w" "outer") ]
  in
  let engine = Des.Engine.create () in
  let rt = Umlrt.Runtime.create engine root in
  match Umlrt.Runtime.resolve rt ~path:"Root/s" ~port:"p" with
  | Umlrt.Runtime.To_instance (path, _) ->
    Alcotest.(check string) "through the relay" "Root/w/inner" path
  | Umlrt.Runtime.To_environment _ | Umlrt.Runtime.Unconnected ->
    Alcotest.fail "expected relay chain to resolve"

let test_runtime_ping_pong_roundtrip () =
  (* Inject ping into a border relay port; echo replies; reply reaches the
     environment. *)
  let echo =
    Umlrt.Capsule.create "Echo" ~behavior:echo_behavior
      ~ports:[ Umlrt.Capsule.port ~conjugated:true "p" ping_pong ]
  in
  let root =
    Umlrt.Capsule.create "Root"
      ~ports:
        [ Umlrt.Capsule.port ~conjugated:true ~kind:Umlrt.Capsule.Relay "world"
            ping_pong ]
      ~parts:[ ("echo", echo) ]
      ~connectors:
        [ Umlrt.Capsule.connector
            ~from_:(Umlrt.Capsule.border "world")
            ~to_:(Umlrt.Capsule.part_port "echo" "p") ]
  in
  let engine = Des.Engine.create () in
  let rt = Umlrt.Runtime.create engine root in
  Umlrt.Runtime.inject rt ~port:"world" (event "ping");
  ignore (Des.Engine.run_until engine 1.);
  match Umlrt.Runtime.drain_outbox rt with
  | [ (port, e) ] ->
    Alcotest.(check string) "out the same border" "world" port;
    Alcotest.(check string) "pong came back" "pong" (Statechart.Event.signal e)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 message, got %d" (List.length other))

let test_runtime_latency_ordering () =
  (* With latency 0.1, a message sent at t=0 is processed at t=0.1. *)
  let received_at = ref (-1.) in
  let engine = Des.Engine.create () in
  let listener_behavior (_ : Umlrt.Capsule.services) =
    { Umlrt.Capsule.on_start = (fun () -> ());
      on_event = (fun ~port:_ _ -> received_at := Des.Engine.now engine; true);
      configuration = (fun () -> []) }
  in
  let c =
    Umlrt.Capsule.create "C" ~behavior:listener_behavior
      ~ports:[ Umlrt.Capsule.port ~conjugated:true "p" ping_pong ]
  in
  let root =
    Umlrt.Capsule.create "Root"
      ~ports:
        [ Umlrt.Capsule.port ~conjugated:true ~kind:Umlrt.Capsule.Relay "in_"
            ping_pong ]
      ~parts:[ ("c", c) ]
      ~connectors:
        [ Umlrt.Capsule.connector
            ~from_:(Umlrt.Capsule.border "in_")
            ~to_:(Umlrt.Capsule.part_port "c" "p") ]
  in
  let rt = Umlrt.Runtime.create engine ~latency:0.1 root in
  Umlrt.Runtime.inject rt ~port:"in_" (event "ping");
  ignore (Des.Engine.run_until engine 1.);
  Alcotest.(check (float 1e-9)) "processed after latency" 0.1 !received_at

let test_runtime_machine_behavior_timers () =
  (* A capsule whose machine uses the timer service: toggles every 1s. *)
  let toggler (services : Umlrt.Capsule.services) =
    let m = Statechart.Machine.create "toggler" in
    Statechart.Machine.add_state m "Off";
    Statechart.Machine.add_state m "On";
    Statechart.Machine.set_initial m "Off";
    Statechart.Machine.add_transition m ~src:"Off" ~dst:"On" ~trigger:"tick" ();
    Statechart.Machine.add_transition m ~src:"On" ~dst:"Off" ~trigger:"tick" ();
    let i = ref None in
    { Umlrt.Capsule.on_start =
        (fun () ->
           i := Some (Statechart.Instance.start m ());
           services.Umlrt.Capsule.timer_every 1. (event "tick"));
      on_event =
        (fun ~port:_ e ->
           match !i with Some i -> Statechart.Instance.handle i e | None -> false);
      configuration =
        (fun () ->
           match !i with Some i -> Statechart.Instance.configuration i | None -> []) }
  in
  let root = Umlrt.Capsule.create "Toggler" ~behavior:toggler in
  let engine = Des.Engine.create () in
  let rt = Umlrt.Runtime.create engine root in
  ignore (Des.Engine.run_until engine 3.5);
  Alcotest.(check (option (list string))) "3 ticks -> On" (Some [ "On" ])
    (Umlrt.Runtime.configuration rt "Toggler")

let test_runtime_stats () =
  let root, _ = sibling_model () in
  let engine = Des.Engine.create () in
  let rt = Umlrt.Runtime.create engine root in
  (* B's port is conjugated: it may send "ping"? No — conjugated sends
     incoming, i.e. "pong". Injecting directly to instance isn't public;
     drive via a's behaviour: a echoes ping->pong but nothing stimulates
     it here, so counters stay zero. *)
  let stats = Umlrt.Runtime.stats rt in
  Alcotest.(check int) "nothing sent yet" 0 stats.Umlrt.Runtime.sent;
  Alcotest.(check int) "nothing delivered yet" 0 stats.Umlrt.Runtime.delivered

let test_invalid_model_rejected () =
  let bad =
    Umlrt.Capsule.create "Bad" ~ports:[ Umlrt.Capsule.port "p" ping_pong ]
  in
  let engine = Des.Engine.create () in
  Alcotest.(check bool) "invalid model raises" true
    (try
       ignore (Umlrt.Runtime.create engine bad);
       false
     with Umlrt.Runtime.Invalid_model _ -> true)

let suite =
  [ Alcotest.test_case "protocol send/receive roles" `Quick test_protocol_roles;
    Alcotest.test_case "protocol duplicate signals" `Quick test_protocol_duplicate_signal;
    Alcotest.test_case "validate: sibling conjugation" `Quick
      test_validate_sibling_conjugation;
    Alcotest.test_case "validate: unknown endpoints" `Quick test_validate_unknown_endpoint;
    Alcotest.test_case "validate: dead End ports" `Quick
      test_validate_end_port_without_behavior;
    Alcotest.test_case "runtime: sibling resolution" `Quick test_runtime_sibling_message;
    Alcotest.test_case "runtime: relay chains" `Quick test_runtime_relay_chain;
    Alcotest.test_case "runtime: ping-pong roundtrip" `Quick
      test_runtime_ping_pong_roundtrip;
    Alcotest.test_case "runtime: mailbox latency" `Quick test_runtime_latency_ordering;
    Alcotest.test_case "runtime: timer-driven machine" `Quick
      test_runtime_machine_behavior_timers;
    Alcotest.test_case "runtime: stats" `Quick test_runtime_stats;
    Alcotest.test_case "runtime: invalid model rejected" `Quick
      test_invalid_model_rejected ]

let test_deliver_to_and_root_path () =
  let root, received = sibling_model () in
  let engine = Des.Engine.create () in
  let rt = Umlrt.Runtime.create engine root in
  Alcotest.(check string) "root path is the class name" "Root"
    (Umlrt.Runtime.root_path rt);
  Alcotest.(check bool) "direct delivery accepted" true
    (Umlrt.Runtime.deliver_to rt ~path:"Root/b" ~port:"p" (event "anything"));
  ignore (Des.Engine.run_until engine 1.);
  Alcotest.(check (list string)) "behaviour consumed it" [ "anything" ] !received;
  Alcotest.(check bool) "unknown path refused" false
    (Umlrt.Runtime.deliver_to rt ~path:"Root/zzz" ~port:"p" (event "x"))

let extra_suite =
  [ Alcotest.test_case "runtime: deliver_to + root_path" `Quick
      test_deliver_to_and_root_path ]

let suite = suite @ extra_suite
