(* Baseline tests: the translation approach really pays one DES event per
   integration step; the equations-in-states approach really blocks the
   event thread; accuracy relationships hold. *)

let decay = Ode.System.create ~dim:1 (fun _t y -> [| -.y.(0) |])

let test_translation_steps_are_events () =
  let t =
    Baseline.Translation.create ~step:0.01 ~system:decay ~init:[| 1. |] ()
  in
  Baseline.Translation.run t ~until:1.;
  Alcotest.(check int) "100 integration steps" 100
    (Baseline.Translation.steps_executed t);
  (* Every step costs at least two DES callbacks (timer + mailbox). *)
  Alcotest.(check bool)
    (Printf.sprintf "%d DES events >= 2/step" (Baseline.Translation.des_events t))
    true
    (Baseline.Translation.des_events t >= 2 * Baseline.Translation.steps_executed t)

let test_translation_euler_accuracy () =
  let t =
    Baseline.Translation.create ~step:0.01 ~system:decay ~init:[| 1. |] ()
  in
  Baseline.Translation.run t ~until:1.;
  let y = Baseline.Translation.state t in
  (* Euler at dt = 0.01: error ~ 2e-3. It IS close, but measurably worse
     than RK4 at the same step. *)
  let err = Float.abs (y.(0) -. exp (-1.)) in
  Alcotest.(check bool) (Printf.sprintf "euler error %.2e in (1e-4, 1e-2)" err)
    true
    (err > 1e-4 && err < 1e-2)

let test_translation_scheme_option () =
  let t =
    Baseline.Translation.create ~scheme:Ode.Fixed.Rk4 ~step:0.01 ~system:decay
      ~init:[| 1. |] ()
  in
  Baseline.Translation.run t ~until:1.;
  let err = Float.abs ((Baseline.Translation.state t).(0) -. exp (-1.)) in
  Alcotest.(check bool) "rk4 translation accurate" true (err < 1e-9)

let test_translation_trace () =
  let t =
    Baseline.Translation.create ~step:0.1 ~system:decay ~init:[| 1. |] ()
  in
  let trace = Baseline.Translation.trace t ~component:0 in
  Baseline.Translation.run t ~until:1.;
  Alcotest.(check int) "initial + 10 samples" 11 (Sigtrace.Trace.length trace)

let test_event_server_latency_under_load () =
  let e = Des.Engine.create () in
  let server = Baseline.Event_server.create e ~handler_cost:0.001 in
  (* Background equations: every 10 ms, 8 ms of thread time. *)
  Baseline.Event_server.add_background_load server ~period:0.01 ~cost:0.008;
  for k = 1 to 50 do
    Baseline.Event_server.submit_at server (0.0005 +. (0.01 *. float_of_int k))
  done;
  ignore (Des.Engine.run_until e 2.);
  let latencies = Baseline.Event_server.event_latencies server in
  Alcotest.(check int) "all served" 50 (List.length latencies);
  match Sigtrace.Metrics.summarize latencies with
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "mean latency %.4f suffers from blocking" s.Sigtrace.Metrics.mean)
      true
      (s.Sigtrace.Metrics.mean > 0.004)
  | None -> Alcotest.fail "non-empty"

let test_event_server_fast_without_load () =
  let e = Des.Engine.create () in
  let server = Baseline.Event_server.create e ~handler_cost:0.001 in
  for k = 1 to 50 do
    Baseline.Event_server.submit_at server (0.01 *. float_of_int k)
  done;
  ignore (Des.Engine.run_until e 2.);
  match Sigtrace.Metrics.summarize (Baseline.Event_server.event_latencies server) with
  | Some s ->
    Alcotest.(check (float 1e-9)) "latency = handler cost" 0.001 s.Sigtrace.Metrics.mean
  | None -> Alcotest.fail "non-empty"

let test_event_server_fifo_backlog () =
  (* Two arrivals while busy: second waits for first. *)
  let e = Des.Engine.create () in
  let server = Baseline.Event_server.create e ~handler_cost:1.0 in
  Baseline.Event_server.submit_at server 0.;
  Baseline.Event_server.submit_at server 0.1;
  ignore (Des.Engine.run_until e 5.);
  match Baseline.Event_server.event_latencies server with
  | [ l1; l2 ] ->
    Alcotest.(check (float 1e-9)) "first: service only" 1.0 l1;
    Alcotest.(check (float 1e-9)) "second: waits 0.9 then 1.0" 1.9 l2
  | other -> Alcotest.fail (Printf.sprintf "expected 2, got %d" (List.length other))

let test_equations_in_state_blocks_events () =
  let make blocks =
    Baseline.Equations_in_state.create ~update_period:0.01 ~cost_per_block:0.002
      ~blocks ~handler_cost:0.0005 ~system:decay ~init:[| 1. |] ()
  in
  let run_one sys_t =
    let engine = Baseline.Equations_in_state.engine sys_t in
    for k = 1 to 40 do
      ignore
        (Des.Engine.schedule_at engine ~time:(0.0203 *. float_of_int k)
           (fun () -> Baseline.Equations_in_state.submit_event sys_t))
    done;
    Baseline.Equations_in_state.run sys_t ~until:1.;
    match
      Sigtrace.Metrics.summarize (Baseline.Equations_in_state.event_latencies sys_t)
    with
    | Some s -> s.Sigtrace.Metrics.mean
    | None -> 0.
  in
  let light = run_one (make 0) in
  let heavy = run_one (make 4) in
  Alcotest.(check bool)
    (Printf.sprintf "latency grows with equation load (%.5f -> %.5f)" light heavy)
    true
    (heavy > light)

let test_equations_in_state_integrates () =
  let t =
    Baseline.Equations_in_state.create ~update_period:0.001 ~cost_per_block:0.
      ~blocks:1 ~handler_cost:0. ~system:decay ~init:[| 1. |] ()
  in
  Baseline.Equations_in_state.run t ~until:1.;
  let y = Baseline.Equations_in_state.state t in
  Alcotest.(check bool)
    (Printf.sprintf "euler-at-update-rate accuracy (%.4f)" y.(0))
    true
    (Float.abs (y.(0) -. exp (-1.)) < 0.01)

let test_equations_in_state_statechart () =
  let t =
    Baseline.Equations_in_state.create ~update_period:0.01 ~cost_per_block:0.001
      ~blocks:2 ~handler_cost:0.001 ~system:decay ~init:[| 1. |] ()
  in
  Alcotest.(check string) "starts Active" "Active"
    (Baseline.Equations_in_state.active_state t);
  Baseline.Equations_in_state.run t ~until:0.5;
  let updates_active = Baseline.Equations_in_state.updates_run t in
  Baseline.Equations_in_state.set_active t false;
  Alcotest.(check string) "deactivated" "Idle"
    (Baseline.Equations_in_state.active_state t);
  Baseline.Equations_in_state.run t ~until:1.0;
  Alcotest.(check int) "no updates while Idle (equations detached)"
    updates_active
    (Baseline.Equations_in_state.updates_run t)

let suite =
  [ Alcotest.test_case "translation: one event per step" `Quick
      test_translation_steps_are_events;
    Alcotest.test_case "translation: euler accuracy band" `Quick
      test_translation_euler_accuracy;
    Alcotest.test_case "translation: scheme option" `Quick test_translation_scheme_option;
    Alcotest.test_case "translation: traces" `Quick test_translation_trace;
    Alcotest.test_case "event server: blocking load" `Quick
      test_event_server_latency_under_load;
    Alcotest.test_case "event server: unloaded baseline" `Quick
      test_event_server_fast_without_load;
    Alcotest.test_case "event server: FIFO backlog" `Quick test_event_server_fifo_backlog;
    Alcotest.test_case "equations-in-state: blocks events" `Quick
      test_equations_in_state_blocks_events;
    Alcotest.test_case "equations-in-state: integrates" `Quick
      test_equations_in_state_integrates;
    Alcotest.test_case "equations-in-state: statechart detaches" `Quick
      test_equations_in_state_statechart ]
