type 'a t = {
  engine : Engine.t;
  name : string;
  mutable latency : float;
  fifo : 'a Queue.t;
  mutable listener : ('a t -> unit) option;
  mutable in_flight : int;
  mutable sent : int;
  mutable delivered : int;
}

let create engine ?(latency = 0.) name =
  if latency < 0. then invalid_arg "Des.Mailbox.create: negative latency";
  { engine; name; latency; fifo = Queue.create (); listener = None;
    in_flight = 0; sent = 0; delivered = 0 }

let name t = t.name
let latency t = t.latency

let set_latency t latency =
  if latency < 0. then invalid_arg "Des.Mailbox.set_latency: negative latency";
  t.latency <- latency

let set_listener t f = t.listener <- Some f
let clear_listener t = t.listener <- None

let deliver t msg () =
  t.in_flight <- t.in_flight - 1;
  t.delivered <- t.delivered + 1;
  Queue.push msg t.fifo;
  match t.listener with
  | Some f -> f t
  | None -> ()

let send_delayed t ~delay msg =
  if delay < 0. then invalid_arg "Des.Mailbox.send_delayed: negative delay";
  t.sent <- t.sent + 1;
  t.in_flight <- t.in_flight + 1;
  ignore (Engine.schedule t.engine ~delay:(t.latency +. delay) (deliver t msg))

(* Delivery anchored at an earlier send instant: the arrival time is
   computed with the exact float expression a same-instant [send_delayed]
   would have used ([sent +. (latency +. delay)]), so a message carried
   across domains and re-scheduled later lands on the bit-identical
   timestamp. Raises (via [Engine.schedule_at]) if that instant is
   already in the past — the sharded runtime's lookahead bound exists to
   make that impossible. *)
let send_from t ~sent ~delay msg =
  if delay < 0. then invalid_arg "Des.Mailbox.send_from: negative delay";
  t.sent <- t.sent + 1;
  t.in_flight <- t.in_flight + 1;
  ignore
    (Engine.schedule_at t.engine ~time:(sent +. (t.latency +. delay))
       (deliver t msg))

let send t msg = send_delayed t ~delay:0. msg

let pop t = if Queue.is_empty t.fifo then None else Some (Queue.pop t.fifo)
let peek t = if Queue.is_empty t.fifo then None else Some (Queue.peek t.fifo)
let length t = Queue.length t.fifo
let in_flight t = t.in_flight
let sent_total t = t.sent
let delivered_total t = t.delivered
