type t = {
  mutable active : bool;
  mutable fired : int;
  mutable handle : Engine.handle option;
}

let cancel t =
  t.active <- false;
  (match t.handle with Some h -> Engine.cancel h | None -> ());
  t.handle <- None

let is_active t = t.active
let fired t = t.fired

let one_shot engine ~delay callback =
  if delay < 0. then invalid_arg "Des.Timer.one_shot: negative delay";
  let t = { active = true; fired = 0; handle = None } in
  let fire () =
    if t.active then begin
      t.fired <- 1;
      t.active <- false;
      t.handle <- None;
      callback ()
    end
  in
  t.handle <- Some (Engine.schedule engine ~delay fire);
  t

(* The k-th nominal release is [start + phase + k*period]; computing each
   release from the origin (rather than from the previous firing) avoids
   cumulative floating-point drift over long runs. *)
let periodic_impl engine ~phase ~period ~jitter callback =
  if period <= 0. then invalid_arg "Des.Timer.periodic: period must be positive";
  if phase < 0. then invalid_arg "Des.Timer.periodic: negative phase";
  let t = { active = true; fired = 0; handle = None } in
  let origin = Engine.now engine in
  let rec arm k =
    if t.active then begin
      let nominal = origin +. phase +. (float_of_int k *. period) in
      let displaced = nominal +. jitter k in
      let time = Float.max displaced (Engine.now engine) in
      let fire () =
        if t.active then begin
          t.fired <- t.fired + 1;
          callback k;
          arm (k + 1)
        end
      in
      t.handle <- Some (Engine.schedule_at engine ~time fire)
    end
  in
  arm 0;
  t

let periodic engine ?phase ~period callback =
  let phase = match phase with Some p -> p | None -> period in
  periodic_impl engine ~phase ~period ~jitter:(fun _ -> 0.) callback

let periodic_jittered engine ?phase ~period ~jitter callback =
  let phase = match phase with Some p -> p | None -> period in
  periodic_impl engine ~phase ~period ~jitter callback
