type t = {
  mutable active : bool;
  mutable fired : int;
  mutable handle : Engine.handle option;
}

let cancel t =
  t.active <- false;
  (match t.handle with Some h -> Engine.cancel h | None -> ());
  t.handle <- None

let is_active t = t.active
let fired t = t.fired

(* NaN passes every [< 0.] / [<= 0.] guard, so each numeric input is
   checked for NaN explicitly at the API boundary — otherwise the failure
   surfaces as an [Invalid_argument] deep inside [Event_queue.push]
   mid-simulation, far from the timer that caused it. *)
let describe = function
  | Some name -> Printf.sprintf " %S" name
  | None -> ""

let one_shot engine ?name ~delay callback =
  if Float.is_nan delay then
    invalid_arg
      (Printf.sprintf "Des.Timer.one_shot: timer%s: NaN delay" (describe name));
  if delay < 0. then invalid_arg "Des.Timer.one_shot: negative delay";
  let t = { active = true; fired = 0; handle = None } in
  let fire () =
    if t.active then begin
      t.fired <- 1;
      t.active <- false;
      t.handle <- None;
      callback ()
    end
  in
  t.handle <- Some (Engine.schedule engine ~delay fire);
  t

(* The k-th nominal release is [start + phase + k*period]; computing each
   release from the origin (rather than from the previous firing) avoids
   cumulative floating-point drift over long runs. *)
let periodic_impl engine ~name ~phase ~period ~jitter callback =
  if Float.is_nan period then
    invalid_arg
      (Printf.sprintf "Des.Timer.periodic: timer%s: NaN period" (describe name));
  if period <= 0. then invalid_arg "Des.Timer.periodic: period must be positive";
  if Float.is_nan phase then
    invalid_arg
      (Printf.sprintf "Des.Timer.periodic: timer%s: NaN phase" (describe name));
  if phase < 0. then invalid_arg "Des.Timer.periodic: negative phase";
  let t = { active = true; fired = 0; handle = None } in
  let origin = Engine.now engine in
  let rec arm k =
    if t.active then begin
      let nominal = origin +. phase +. (float_of_int k *. period) in
      let displaced = nominal +. jitter k in
      if Float.is_nan displaced then
        invalid_arg
          (Printf.sprintf
             "Des.Timer.periodic_jittered: timer%s: jitter for release %d \
              (period %g) is NaN" (describe name) k period);
      let time = Float.max displaced (Engine.now engine) in
      let fire () =
        if t.active then begin
          t.fired <- t.fired + 1;
          callback k;
          arm (k + 1)
        end
      in
      (* Each periodic release is its own external stimulus: re-arming
         happens inside the previous firing's dispatch, so without
         clearing the ambient cause every release would chain into one
         endless causal thread. *)
      let ambient = Obs.Causal.current () in
      Obs.Causal.set Obs.Causal.none;
      t.handle <- Some (Engine.schedule_at engine ~time fire);
      Obs.Causal.set ambient
    end
  in
  arm 0;
  t

let periodic engine ?name ?phase ~period callback =
  let phase = match phase with Some p -> p | None -> period in
  periodic_impl engine ~name ~phase ~period ~jitter:(fun _ -> 0.) callback

let periodic_jittered engine ?name ?phase ~period ~jitter callback =
  let phase = match phase with Some p -> p | None -> period in
  periodic_impl engine ~name ~phase ~period ~jitter callback
