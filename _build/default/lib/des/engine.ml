type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : float;
  mutable executed : int;
  (* Resolved against the creating domain's ambient registry, so an
     engine built inside a shard worker counts into that shard's private
     registry — hot-path updates are a field store, never a lookup. *)
  m_events : Obs.Metrics.counter;
  m_depth : Obs.Metrics.gauge;
}

type handle = (unit -> unit) Event_queue.handle

let create ?(start = 0.) () =
  { queue = Event_queue.create (); clock = start; executed = 0;
    m_events = Obs.Metrics.counter "des.events_executed";
    m_depth = Obs.Metrics.gauge "des.queue_depth" }

let now t = t.clock

let queue_depth t = Event_queue.live_count t.queue

let schedule_at t ?priority ~time callback =
  if Float.is_nan time then invalid_arg "Des.Engine.schedule_at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Des.Engine.schedule_at: time %g is before now %g" time t.clock);
  (* Causal propagation across the queue hop: capture the ambient cause
     now, restore it when the callback runs. A callback scheduled with no
     ambient cause is an external stimulus — a fresh chain is minted at
     dispatch. The wrapper also refreshes the coarse wall clock and logs
     the dispatch in the flight recorder, so every hop is book-ended;
     scheduling already allocates (queue push), so the closure is free
     of zero-cost-contract concerns. *)
  let cause = Obs.Causal.current () in
  let run () =
    (* Clock before cause: minting may stamp the fresh chain's birth
       with the coarse clock, which must reflect this dispatch, not the
       previous one. *)
    Obs.Clock.refresh_coarse ();
    if cause = Obs.Causal.none then ignore (Obs.Causal.mint ())
    else Obs.Causal.set cause;
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_dispatch
      ~a:Obs.Flightrec.no_label ~b:Obs.Flightrec.no_label ~sim:t.clock;
    callback ()
  in
  let h = Event_queue.push t.queue ~time ?priority run in
  Obs.Metrics.set t.m_depth (float_of_int (Event_queue.live_count t.queue));
  h

let schedule t ?priority ~delay callback =
  if Float.is_nan delay then invalid_arg "Des.Engine.schedule: NaN delay";
  if delay < 0. then invalid_arg "Des.Engine.schedule: negative delay";
  schedule_at t ?priority ~time:(t.clock +. delay) callback

let cancel = Event_queue.cancel

let pending t = Event_queue.length t.queue

let next_time t = Event_queue.peek_time t.queue

let step t =
  (* Telemetry sim-cadence: cut the record at the quiescent point just
     before the event that crosses a boundary. The [enabled] guard keeps
     the extra peek off the path when telemetry is off. *)
  if Obs.Telemetry.enabled () then
    (match Event_queue.peek_time t.queue with
     | Some next -> Obs.Telemetry.advance_before ~next
     | None -> ());
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, callback) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    Obs.Metrics.incr t.m_events;
    let depth = Event_queue.live_count t.queue in
    Obs.Metrics.set t.m_depth (float_of_int depth);
    if Obs.Tracer.enabled () then begin
      let start = Obs.Tracer.now_ns () in
      callback ();
      Obs.Tracer.complete ~cat:"des" ~name:"dispatch" ~sim_time:time
        ~start_ns:start ();
      Obs.Tracer.sample ~cat:"des" ~name:"queue_depth" ~sim_time:time
        (float_of_int depth)
    end
    else callback ();
    (* The chain ends with the dispatch (after the span above, so it
       still carries the cause); anything the callback scheduled has
       already captured it. *)
    Obs.Causal.set Obs.Causal.none;
    true

let run_until t bound =
  if Float.is_nan bound then invalid_arg "Des.Engine.run_until: NaN bound";
  if bound < t.clock then
    invalid_arg "Des.Engine.run_until: bound is before the current time";
  let rec loop executed =
    match Event_queue.peek_time t.queue with
    | Some time when time <= bound ->
      if step t then loop (executed + 1) else executed
    | Some _ | None -> executed
  in
  let executed = loop 0 in
  t.clock <- bound;
  Obs.Telemetry.flush_upto ~upto:bound;
  executed

let run_to_completion t ?(max_events = 10_000_000) () =
  let executed = ref 0 in
  while step t do
    incr executed;
    if !executed > max_events then
      failwith "Des.Engine.run_to_completion: event budget exhausted (runaway model?)"
  done;
  !executed

let events_executed t = t.executed
