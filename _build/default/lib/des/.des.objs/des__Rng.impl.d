lib/des/rng.ml: Float Int64
