lib/des/timer.ml: Engine Float Printf
