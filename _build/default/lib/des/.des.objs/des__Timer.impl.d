lib/des/timer.ml: Engine Float Obs Printf
