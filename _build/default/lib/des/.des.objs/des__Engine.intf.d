lib/des/engine.mli:
