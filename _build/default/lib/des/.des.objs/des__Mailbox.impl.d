lib/des/mailbox.ml: Engine Queue
