lib/des/engine.ml: Event_queue Printf
