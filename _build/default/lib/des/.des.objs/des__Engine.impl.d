lib/des/engine.ml: Event_queue Obs Printf
