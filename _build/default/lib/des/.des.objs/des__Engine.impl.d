lib/des/engine.ml: Event_queue Float Obs Printf
