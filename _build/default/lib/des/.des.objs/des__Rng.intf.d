lib/des/rng.mli:
