lib/des/timer.mli: Engine
