lib/des/mailbox.mli: Engine
