type entry = {
  time : float;
  priority : int;
  seq : int;
  mutable cancelled : bool;
  mutable popped : bool;
  live : int ref;  (* the owning queue's live-entry counter *)
}

type handle = entry

type 'a t = {
  mutable heap : (entry * 'a) array;  (* prefix [0, size) is the heap *)
  mutable size : int;
  mutable next_seq : int;
  live : int ref;  (* live (scheduled, not cancelled, not popped) entries *)
}

let create () = { heap = [||]; size = 0; next_seq = 0; live = ref 0 }

let live_count t = !(t.live)

(* Cancelled entries stay in the heap until they reach the top (lazy
   deletion), so [length] walks the array — it is only used by tests and
   diagnostics, never on the hot path. *)
let length t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    let e, _ = t.heap.(i) in
    if not e.cancelled then incr n
  done;
  !n

let before (a, _) (b, _) =
  a.time < b.time
  || (a.time = b.time
      && (a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)))

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time ?(priority = 0) payload =
  if Float.is_nan time then invalid_arg "Des.Event_queue.push: NaN time";
  let entry =
    { time; priority; seq = t.next_seq; cancelled = false; popped = false;
      live = t.live }
  in
  t.next_seq <- t.next_seq + 1;
  incr t.live;
  if Array.length t.heap = 0 then t.heap <- Array.make 8 (entry, payload)
  else if t.size >= Array.length t.heap then begin
    let heap' = Array.make (2 * Array.length t.heap) t.heap.(0) in
    Array.blit t.heap 0 heap' 0 t.size;
    t.heap <- heap'
  end;
  t.heap.(t.size) <- (entry, payload);
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  entry

let cancel entry =
  if not entry.cancelled && not entry.popped then begin
    entry.cancelled <- true;
    decr entry.live
  end

let is_cancelled entry = entry.cancelled

let rec drop_cancelled t =
  if t.size > 0 then begin
    let top, _ = t.heap.(0) in
    if top.cancelled then begin
      t.size <- t.size - 1;
      t.heap.(0) <- t.heap.(t.size);
      if t.size > 0 then sift_down t 0;
      drop_cancelled t
    end
  end

let is_empty t =
  drop_cancelled t;
  t.size = 0

let peek_time t =
  drop_cancelled t;
  if t.size = 0 then None
  else
    let e, _ = t.heap.(0) in
    Some e.time

let pop t =
  drop_cancelled t;
  if t.size = 0 then None
  else begin
    let e, payload = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    e.popped <- true;
    decr t.live;
    Some (e.time, payload)
  end

let drain_until t bound =
  let rec loop acc =
    match peek_time t with
    | Some time when time <= bound ->
      (match pop t with
       | Some item -> loop (item :: acc)
       | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  loop []
