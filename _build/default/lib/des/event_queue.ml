(* The payload lives INSIDE its heap entry as a mutable option and is
   nulled the moment the entry leaves the live set: at [pop], and — since
   deletion is lazy, so a cancelled entry stays in the heap until it
   bubbles to the top — also at [cancel]. A cancelled far-future event
   therefore cannot pin a large payload for the rest of the run. Free
   heap slots point at a per-queue payload-free dummy, so a freed slot
   really is [None]. *)
type 'a entry = {
  time : float;
  priority : int;
  seq : int;
  mutable cancelled : bool;
  mutable popped : bool;
  mutable payload : 'a option;
  live : int ref;  (* the owning queue's live-entry counter *)
}

type 'a handle = 'a entry

type 'a t = {
  mutable entries : 'a entry array;  (* prefix [0, size) is the heap *)
  dummy : 'a entry;                  (* filler for free slots *)
  mutable size : int;
  mutable next_seq : int;
  live : int ref;  (* live (scheduled, not cancelled, not popped) entries *)
}

let min_capacity = 8

let create () =
  let dummy =
    { time = neg_infinity; priority = 0; seq = -1; cancelled = true;
      popped = true; payload = None; live = ref 0 }
  in
  { entries = [||]; dummy; size = 0; next_seq = 0; live = ref 0 }

let live_count t = !(t.live)

let capacity t = Array.length t.entries

(* Cancelled entries stay in the heap until they reach the top (lazy
   deletion), so [length] walks the array — it is only used by tests and
   diagnostics, never on the hot path. *)
let length t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.entries.(i).cancelled then incr n
  done;
  !n

let before a b =
  a.time < b.time
  || (a.time = b.time
      && (a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)))

let swap t i j =
  let e = t.entries.(i) in
  t.entries.(i) <- t.entries.(j);
  t.entries.(j) <- e

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.entries.(i) t.entries.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = ref i in
  if l < t.size && before t.entries.(l) t.entries.(!smallest) then smallest := l;
  if r < t.size && before t.entries.(r) t.entries.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let resize t cap =
  let entries' = Array.make cap t.dummy in
  Array.blit t.entries 0 entries' 0 t.size;
  t.entries <- entries'

let push t ~time ?(priority = 0) payload =
  if Float.is_nan time then invalid_arg "Des.Event_queue.push: NaN time";
  let entry =
    { time; priority; seq = t.next_seq; cancelled = false; popped = false;
      payload = Some payload; live = t.live }
  in
  t.next_seq <- t.next_seq + 1;
  incr t.live;
  if t.size >= Array.length t.entries then
    resize t (if Array.length t.entries = 0 then min_capacity
              else 2 * Array.length t.entries);
  t.entries.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  entry

let cancel entry =
  if not entry.cancelled && not entry.popped then begin
    entry.cancelled <- true;
    entry.payload <- None;
    decr entry.live
  end

let is_cancelled entry = entry.cancelled

(* Remove the root: move the last entry onto it and clear the freed slot
   so the entry (and its payload) is collectable. When occupancy falls
   below a quarter, halve the array so a burst of scheduling does not pin
   its high-water capacity forever. *)
let remove_top t =
  t.size <- t.size - 1;
  if t.size > 0 then t.entries.(0) <- t.entries.(t.size);
  t.entries.(t.size) <- t.dummy;
  if t.size > 0 then sift_down t 0;
  let cap = Array.length t.entries in
  if cap > min_capacity && t.size < cap / 4 then
    resize t (let c = cap / 2 in if c < min_capacity then min_capacity else c)

let rec drop_cancelled t =
  if t.size > 0 && t.entries.(0).cancelled then begin
    remove_top t;
    drop_cancelled t
  end

let is_empty t =
  drop_cancelled t;
  t.size = 0

let peek_time t =
  drop_cancelled t;
  if t.size = 0 then None else Some t.entries.(0).time

let pop t =
  drop_cancelled t;
  if t.size = 0 then None
  else begin
    let e = t.entries.(0) in
    let payload =
      match e.payload with
      | Some p -> p
      | None -> assert false  (* live heap entries always hold payloads *)
    in
    remove_top t;
    e.popped <- true;
    e.payload <- None;
    decr t.live;
    Some (e.time, payload)
  end

let drain_until t bound =
  let rec loop acc =
    match peek_time t with
    | Some time when time <= bound ->
      (match pop t with
       | Some item -> loop (item :: acc)
       | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  loop []
