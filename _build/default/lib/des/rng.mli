(** Deterministic pseudo-random numbers (xorshift64-star).

    Simulations must be reproducible run to run, so nothing in this
    repository touches [Random]; every stochastic model takes one of
    these, seeded explicitly. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** Child generator with an independent-looking stream, derived
    deterministically from the parent's state (the parent advances). *)

val int : t -> int -> int
(** [int t bound] in [0, bound); [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float -> float
(** Uniform in [lo, hi). *)

val exponential : t -> float -> float
(** Exponential with the given mean (> 0) — inter-arrival times. *)

val gaussian : t -> ?mu:float -> ?sigma:float -> unit -> float
(** Box–Muller normal deviate (defaults: standard normal). *)
