type t = { mutable state : int64; mutable spare : float option }

(* SplitMix64-style seeding spreads small integer seeds over the state. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let s = mix (Int64.of_int (seed + 0x9e3779b9)) in
  { state = (if s = 0L then 0x2545F4914F6CDD1DL else s); spare = None }

let next t =
  (* xorshift64* *)
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let split t =
  let s = mix (next t) in
  { state = (if s = 0L then 0x9e3779b97f4a7c15L else s); spare = None }

let int t bound =
  if bound <= 0 then invalid_arg "Des.Rng.int: bound must be positive";
  (* Drop to 62 bits so the value stays non-negative as a native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  (* 53 high-quality bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let uniform t lo hi =
  if hi < lo then invalid_arg "Des.Rng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float t)

let exponential t mean =
  if mean <= 0. then invalid_arg "Des.Rng.exponential: mean must be positive";
  let u = Float.max 1e-300 (float t) in
  -.mean *. log u

let gaussian t ?(mu = 0.) ?(sigma = 1.) () =
  match t.spare with
  | Some z ->
    t.spare <- None;
    mu +. (sigma *. z)
  | None ->
    let u1 = Float.max 1e-300 (float t) in
    let u2 = float t in
    let r = sqrt (-2. *. log u1) in
    let theta = 2. *. Float.pi *. u2 in
    t.spare <- Some (r *. sin theta);
    mu +. (sigma *. r *. cos theta)
