(** Priority queue of timestamped events.

    A binary min-heap of (time, priority) buckets; events sharing a key
    live in an append-only FIFO array inside their bucket, so workloads
    where many timers share a tick grid pay O(1) amortised push/pop
    instead of O(log n) sifts through a heap of equal keys. Pop order is
    exactly (time, priority, insertion sequence) — simultaneous events
    run in deterministic FIFO order within a priority level, identical
    to the former one-node-per-event heap. Cancellation is O(1) lazy
    deletion. *)

type 'a t

type 'a handle
(** Token for one scheduled entry. The handle carries the payload type
    because cancellation releases the payload in place. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Live (non-cancelled) entries, by walking the heap — O(n), the ground
    truth [live_count] is checked against in tests. *)

val live_count : 'a t -> int
(** Same value as [length], maintained incrementally — O(1). *)

val capacity : 'a t -> int
(** Current bucket-heap capacity (one slot per distinct pending
    (time, priority) key). Grows by doubling and halves when occupancy
    drops below a quarter (never below the initial 8), so a scheduling
    burst does not pin its high-water storage. Freed slots are cleared
    and emptied buckets leave the heap at once, so popped payloads are
    collectable immediately — exposed for the retention regression
    tests. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> ?priority:int -> 'a -> 'a handle
(** Lower [priority] runs first among equal times (default 0). Raises
    [Invalid_argument] on NaN time. *)

val cancel : 'a handle -> unit
(** Idempotent; cancelling after the entry was popped is a no-op.
    Releases the entry's payload immediately: deletion is lazy (the heap
    slot is reclaimed only when the entry reaches the top), but the
    payload becomes collectable at cancel time. *)

val is_cancelled : 'a handle -> bool

val peek_time : 'a t -> float option
(** Time of the earliest live entry. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest live entry. *)

val drain_until : 'a t -> float -> (float * 'a) list
(** Pop every live entry with time <= the bound, earliest first. *)
