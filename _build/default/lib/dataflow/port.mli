(** Data ports (DPorts): typed, register-semantics endpoints of flows.

    A DPort holds the most recently written value (continuous signals are
    sampled, not queued — unlike SPort signal messages, which use
    {!Des.Mailbox}). *)

type direction = In | Out

val direction_name : direction -> string

type t

val create : name:string -> direction -> Flow_type.t -> t
val name : t -> string
val direction : t -> direction
val flow_type : t -> Flow_type.t

val write : t -> Value.t -> unit
(** Store a value. Raises [Invalid_argument] when the value does not
    conform to the port's flow type; the stored value is normalized to
    exactly the type's fields. *)

val read : t -> Value.t option
(** Last written (normalized) value, [None] before the first write. *)

val read_float : t -> float option
(** Convenience for scalar flows: the single numeric field. *)

val read_float_default : t -> float -> float
(** [read_float] with a default for the never-written case. *)

val writes : t -> int
(** Number of successful writes. *)
