(** Runtime values carried by flows and signals. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Vec of float array
  | Record of (string * t) list

val unit_ : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val vec : float array -> t
val record : (string * t) list -> t
(** Fields are sorted; duplicates raise [Invalid_argument]. *)

val base_of : t -> Flow_type.base option
(** Base type of a scalar value; [None] for [Unit] and [Record]. *)

val conforms : t -> Flow_type.t -> bool
(** [conforms v ty] — [v] provides every field of [ty] with the right
    base. A scalar value conforms to a single-field type whose field it
    matches (auto-wrapping, so [Float 1.0] conforms to
    [Flow_type.float_flow]). *)

val normalize : t -> Flow_type.t -> t option
(** Project [v] onto [ty]'s fields as a [Record] (wrapping scalars);
    [None] when it does not conform. *)

val field : t -> string -> t option
(** Record field lookup; on scalars, ["value"] returns the scalar. *)

val to_float : t -> float option
(** Numeric view: [Float], [Int], [Bool] (0/1), or a scalar record's
    single numeric field. *)

val get_float : t -> float
(** Like {!to_float} but raises [Invalid_argument]. *)

val map_float : (float -> float) -> t -> t
(** Apply a function to every float leaf ([Float], [Vec] components,
    recursively through [Record] fields); other leaves are unchanged.
    Used by fault injection to corrupt rich flow values in place of a
    plain scalar rewrite. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
