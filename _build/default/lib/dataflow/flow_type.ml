type base = TBool | TInt | TFloat | TVec of int

let base_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TVec n -> Printf.sprintf "vec%d" n

let base_equal a b =
  match (a, b) with
  | TBool, TBool | TInt, TInt | TFloat, TFloat -> true
  | TVec n, TVec m -> n = m
  | (TBool | TInt | TFloat | TVec _), _ -> false

type t = { fields : (string * base) list }  (* sorted by field name *)

let record decls =
  if decls = [] then invalid_arg "Dataflow.Flow_type.record: empty field list";
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) decls in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg (Printf.sprintf "Dataflow.Flow_type.record: duplicate field %S" a);
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  { fields = sorted }

let scalar base = record [ ("value", base) ]
let float_flow = scalar TFloat

let fields t = t.fields
let arity t = List.length t.fields
let find_field t name = List.assoc_opt name t.fields

let equal a b =
  List.length a.fields = List.length b.fields
  && List.for_all2
       (fun (na, ba) (nb, bb) -> String.equal na nb && base_equal ba bb)
       a.fields b.fields

let subset a b =
  List.for_all
    (fun (name, base) ->
       match find_field b name with
       | Some base' -> base_equal base base'
       | None -> false)
    a.fields

let compatible ~src ~dst = subset src dst

let union a b =
  let clash =
    List.find_opt
      (fun (name, base) ->
         match find_field b name with
         | Some base' -> not (base_equal base base')
         | None -> false)
      a.fields
  in
  match clash with
  | Some (name, _) -> Error name
  | None ->
    let extra = List.filter (fun (name, _) -> find_field a name = None) b.fields in
    Ok (record (a.fields @ extra))

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (name, base) -> Format.fprintf ppf "%s: %s" name (base_name base)))
    t.fields

let to_string t = Format.asprintf "%a" pp t
