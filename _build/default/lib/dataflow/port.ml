type direction = In | Out

let direction_name = function In -> "in" | Out -> "out"

type t = {
  name : string;
  direction : direction;
  flow_type : Flow_type.t;
  mutable value : Value.t option;
  mutable writes : int;
}

let create ~name direction flow_type =
  { name; direction; flow_type; value = None; writes = 0 }

let name t = t.name
let direction t = t.direction
let flow_type t = t.flow_type

let write t v =
  match Value.normalize v t.flow_type with
  | Some normalized ->
    t.value <- Some normalized;
    t.writes <- t.writes + 1
  | None ->
    invalid_arg
      (Printf.sprintf "Dataflow.Port.write: value %s does not conform to %s on port %S"
         (Value.to_string v) (Flow_type.to_string t.flow_type) t.name)

let read t = t.value

let read_float t =
  match t.value with
  | Some v -> Value.to_float v
  | None -> None

let read_float_default t default =
  match read_float t with Some f -> f | None -> default

let writes t = t.writes
