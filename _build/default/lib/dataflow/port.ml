type direction = In | Out

let direction_name = function In -> "in" | Out -> "out"

(* Scalar-float ports ({value: float}) carry their latest value in a
   1-element float array [fcell] so the steady-state tick pipeline can
   move samples between ports without allocating a boxed [Value.t].
   Invariants:
   - [ffresh] (scalar-float ports only): [fcell.(0)] holds the latest
     written value;
   - [vfresh]: [value] holds the latest written value (normalized);
   - after any write at least one of the two is true; [read] lazily
     materializes the boxed representation when only [ffresh] holds. *)
type t = {
  name : string;
  direction : direction;
  flow_type : Flow_type.t;
  is_scalar_float : bool;
  fcell : float array;
  mutable ffresh : bool;
  mutable vfresh : bool;
  mutable value : Value.t option;
  mutable writes : int;
}

let scalar_float_type ty =
  match Flow_type.fields ty with
  | [ ("value", Flow_type.TFloat) ] -> true
  | _ -> false

let create ~name direction flow_type =
  { name; direction; flow_type;
    is_scalar_float = scalar_float_type flow_type;
    fcell = [| 0. |]; ffresh = false; vfresh = false;
    value = None; writes = 0 }

let name t = t.name
let direction t = t.direction
let flow_type t = t.flow_type
let is_scalar_float t = t.is_scalar_float

let write t v =
  match Value.normalize v t.flow_type with
  | Some normalized ->
    t.value <- Some normalized;
    t.vfresh <- true;
    if t.is_scalar_float then begin
      (match normalized with
       | Value.Record [ (_, Value.Float f) ] -> t.fcell.(0) <- f
       | _ -> assert false (* normalize against {value: float} *));
      t.ffresh <- true
    end;
    t.writes <- t.writes + 1
  | None ->
    invalid_arg
      (Printf.sprintf "Dataflow.Port.write: value %s does not conform to %s on port %S"
         (Value.to_string v) (Flow_type.to_string t.flow_type) t.name)

(* Hot-path primitives: the caller stores into [fcell t] directly (a
   float-array store never allocates) and then calls [note_float_write].
   Only meaningful on scalar-float ports. *)
let fcell t = t.fcell

let[@inline] note_float_write t =
  t.ffresh <- true;
  t.vfresh <- false;
  t.writes <- t.writes + 1

let write_float t f =
  if t.is_scalar_float then begin
    t.fcell.(0) <- f;
    note_float_write t
  end
  else write t (Value.Float f)

let has_value t = t.ffresh || t.value <> None

let read t =
  if t.ffresh && not t.vfresh then begin
    t.value <- Some (Value.Record [ ("value", Value.Float t.fcell.(0)) ]);
    t.vfresh <- true
  end;
  t.value

let read_float t =
  if t.ffresh then Some t.fcell.(0)
  else
    match t.value with
    | Some v -> Value.to_float v
    | None -> None

let read_float_default t default =
  if t.ffresh then t.fcell.(0)
  else
    match t.value with
    | Some v -> (match Value.to_float v with Some f -> f | None -> default)
    | None -> default

let writes t = t.writes
