lib/dataflow/graph.mli: Flow_type Port
