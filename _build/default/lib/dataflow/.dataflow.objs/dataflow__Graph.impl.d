lib/dataflow/graph.ml: Array Flow_type Hashtbl List Port Printf Queue String Value
