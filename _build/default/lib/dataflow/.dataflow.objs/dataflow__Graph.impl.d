lib/dataflow/graph.ml: Array Flow_type Hashtbl List Obs Port Printf Queue String Value
