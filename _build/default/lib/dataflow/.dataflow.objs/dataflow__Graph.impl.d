lib/dataflow/graph.ml: Flow_type Hashtbl List Option Port Printf Queue String
