lib/dataflow/port.mli: Flow_type Value
