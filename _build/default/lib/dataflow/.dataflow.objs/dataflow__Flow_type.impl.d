lib/dataflow/flow_type.ml: Format List Printf String
