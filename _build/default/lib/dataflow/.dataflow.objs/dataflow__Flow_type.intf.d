lib/dataflow/flow_type.mli: Format
