lib/dataflow/value.mli: Flow_type Format
