lib/dataflow/port.ml: Flow_type Printf Value
