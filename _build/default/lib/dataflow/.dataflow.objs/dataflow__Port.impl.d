lib/dataflow/port.ml: Array Flow_type Printf Value
