lib/dataflow/value.ml: Array Float Flow_type Format List Printf String
