type node = {
  name : string;
  relay : bool;
  inputs : (string * Port.t) list;
  outputs : (string * Port.t) list;
}

type flow = {
  src_node : node;
  src_port : string;
  dst_node : node;
  dst_port : string;
}

type t = {
  mutable node_list : node list;  (* reverse insertion order *)
  mutable flows : flow list;
}

type error =
  | Unknown_port of string * string
  | Type_mismatch of { src : string; dst : string;
                       src_type : Flow_type.t; dst_type : Flow_type.t }
  | Input_already_driven of string * string
  | Not_an_output of string * string
  | Not_an_input of string * string

let error_to_string = function
  | Unknown_port (n, p) -> Printf.sprintf "unknown port %s.%s" n p
  | Type_mismatch { src; dst; src_type; dst_type } ->
    Printf.sprintf "flow %s -> %s: output type %s is not a subset of input type %s"
      src dst (Flow_type.to_string src_type) (Flow_type.to_string dst_type)
  | Input_already_driven (n, p) -> Printf.sprintf "input %s.%s already has a driver" n p
  | Not_an_output (n, p) -> Printf.sprintf "%s.%s is not an output port" n p
  | Not_an_input (n, p) -> Printf.sprintf "%s.%s is not an input port" n p

let create () = { node_list = []; flows = [] }

let mk_ports direction decls =
  List.map (fun (pname, ty) -> (pname, Port.create ~name:pname direction ty)) decls

let check_fresh t name =
  if List.exists (fun n -> String.equal n.name name) t.node_list then
    invalid_arg (Printf.sprintf "Dataflow.Graph.add_node: duplicate node %S" name)

let add_node t ~name ~inputs ~outputs =
  check_fresh t name;
  let node = { name; relay = false;
               inputs = mk_ports Port.In inputs;
               outputs = mk_ports Port.Out outputs }
  in
  t.node_list <- node :: t.node_list;
  node

let add_relay_node t ~name ty ~fanout =
  check_fresh t name;
  let outputs =
    List.init fanout (fun i ->
        let pname = Printf.sprintf "out%d" (i + 1) in
        (pname, Port.create ~name:pname Port.Out ty))
  in
  let node = { name; relay = true;
               inputs = [ ("in", Port.create ~name:"in" Port.In ty) ];
               outputs }
  in
  t.node_list <- node :: t.node_list;
  node

let add_relay t ~name ty ~fanout =
  if fanout < 2 then invalid_arg "Dataflow.Graph.add_relay: fanout must be >= 2";
  add_relay_node t ~name ty ~fanout

let add_junction t ~name ty = add_relay_node t ~name ty ~fanout:1

let is_relay node = node.relay
let node_name node = node.name
let nodes t = List.rev t.node_list
let find_node t name = List.find_opt (fun n -> String.equal n.name name) t.node_list

let input_port node pname = List.assoc_opt pname node.inputs
let output_port node pname = List.assoc_opt pname node.outputs
let input_ports node = List.map snd node.inputs
let output_ports node = List.map snd node.outputs

let connect t ~src:(src_node, src_port) ~dst:(dst_node, dst_port) =
  match (output_port src_node src_port, input_port dst_node dst_port) with
  | None, _ ->
    if input_port src_node src_port <> None then
      Error (Not_an_output (src_node.name, src_port))
    else Error (Unknown_port (src_node.name, src_port))
  | _, None ->
    if output_port dst_node dst_port <> None then
      Error (Not_an_input (dst_node.name, dst_port))
    else Error (Unknown_port (dst_node.name, dst_port))
  | Some sp, Some dp ->
    let src_type = Port.flow_type sp in
    let dst_type = Port.flow_type dp in
    if not (Flow_type.compatible ~src:src_type ~dst:dst_type) then
      Error (Type_mismatch
               { src = Printf.sprintf "%s.%s" src_node.name src_port;
                 dst = Printf.sprintf "%s.%s" dst_node.name dst_port;
                 src_type; dst_type })
    else if
      List.exists
        (fun f ->
           String.equal f.dst_node.name dst_node.name
           && String.equal f.dst_port dst_port)
        t.flows
    then Error (Input_already_driven (dst_node.name, dst_port))
    else begin
      t.flows <- { src_node; src_port; dst_node; dst_port } :: t.flows;
      Ok ()
    end

let connect_exn t ~src ~dst =
  match connect t ~src ~dst with
  | Ok () -> ()
  | Error e -> invalid_arg ("Dataflow.Graph.connect: " ^ error_to_string e)

let flow_count t = List.length t.flows

let unconnected_inputs t =
  List.concat_map
    (fun node ->
       List.filter_map
         (fun (pname, _) ->
            let driven =
              List.exists
                (fun f ->
                   String.equal f.dst_node.name node.name
                   && String.equal f.dst_port pname)
                t.flows
            in
            if driven then None else Some (node.name, pname))
         node.inputs)
    (nodes t)

let unconnected_outputs t =
  List.concat_map
    (fun node ->
       List.filter_map
         (fun (pname, _) ->
            let consumed =
              List.exists
                (fun f ->
                   String.equal f.src_node.name node.name
                   && String.equal f.src_port pname)
                t.flows
            in
            if consumed then None else Some (node.name, pname))
         node.outputs)
    (nodes t)

let flow_list t =
  List.rev_map
    (fun f -> ((f.src_node.name, f.src_port), (f.dst_node.name, f.dst_port)))
    t.flows

let topo_order t =
  let all = nodes t in
  let indegree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indegree n.name 0) all;
  let edges =
    (* Node-level dependency edges, deduplicated. *)
    List.sort_uniq compare
      (List.map (fun f -> (f.src_node.name, f.dst_node.name)) t.flows)
  in
  List.iter
    (fun (_, dst) ->
       Hashtbl.replace indegree dst (1 + Option.value ~default:0 (Hashtbl.find_opt indegree dst)))
    edges;
  let ready = Queue.create () in
  List.iter (fun n -> if Hashtbl.find indegree n.name = 0 then Queue.push n ready) all;
  let order = ref [] in
  while not (Queue.is_empty ready) do
    let n = Queue.pop ready in
    order := n :: !order;
    List.iter
      (fun (src, dst) ->
         if String.equal src n.name then begin
           let d = Hashtbl.find indegree dst - 1 in
           Hashtbl.replace indegree dst d;
           if d = 0 then
             match find_node t dst with
             | Some node -> Queue.push node ready
             | None -> ()
         end)
      edges
  done;
  let order = List.rev !order in
  if List.length order = List.length all then Ok order
  else
    let placed = List.map (fun n -> n.name) order in
    Error
      (List.filter_map
         (fun n -> if List.mem n.name placed then None else Some n.name)
         all)

let rec forward t flow writes =
  match output_port flow.src_node flow.src_port with
  | None -> writes
  | Some sp ->
    (match Port.read sp with
     | None -> writes
     | Some v ->
       (match input_port flow.dst_node flow.dst_port with
        | None -> writes
        | Some dp ->
          Port.write dp v;
          let writes = writes + 1 in
          if flow.dst_node.relay then relay_through t flow.dst_node v writes
          else writes))

and relay_through t relay_node v writes =
  (* Copy the relayed value to every relay output, then keep flowing. *)
  let writes =
    List.fold_left
      (fun acc (_, port) -> Port.write port v; acc + 1)
      writes relay_node.outputs
  in
  List.fold_left
    (fun acc f ->
       if String.equal f.src_node.name relay_node.name then forward t f acc
       else acc)
    writes t.flows

let propagate_from t node =
  List.fold_left
    (fun acc f ->
       if String.equal f.src_node.name node.name then forward t f acc else acc)
    0 t.flows

let propagate_all t =
  match topo_order t with
  | Error names ->
    failwith
      (Printf.sprintf "Dataflow.Graph.propagate_all: cycle through %s"
         (String.concat ", " names))
  | Ok order ->
    List.fold_left (fun acc n -> acc + propagate_from t n) 0 order
