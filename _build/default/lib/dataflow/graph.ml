(* Propagation runs on a compiled routing plan: per node, the full
   downstream write sequence (through relays) with pre-resolved ports.
   All-scalar-float subtrees flatten to raw float-cell copies; anything
   else replays the reference walk's exact instruction order against a
   value register. Plans are compiled lazily on first propagation and
   invalidated by bumping [version] on [connect]. The original list-walk
   survives as [propagate_from_reference] for differential testing. *)

type node = {
  name : string;
  relay : bool;
  inputs : (string * Port.t) list;
  outputs : (string * Port.t) list;
  mutable routes : route_item array;
  mutable routes_version : int;  (* graph version the plan was built at *)
  mutable flight_id : int;  (* [name] interned for the flight recorder; -1 until first propagation *)
  mutable flight_relay : bool;  (* routes fan out through a relay: worth a
                                   flight-recorder hop of its own *)
}

and route_item =
  | Fast of fast_route
  | Slow of gop array

and fast_route = {
  fsrc : Port.t;
  fsrc_cell : float array;
  fdsts : Port.t array;
  fdst_cells : float array array;
}

and gop =
  | GRead of Port.t * int  (* load register; skip to index when empty *)
  | GWrite of Port.t       (* write register *)

type flow = {
  src_node : node;
  src_port : string;
  dst_node : node;
  dst_port : string;
}

type t = {
  mutable node_list : node list;  (* reverse insertion order *)
  mutable flows : flow list;
  nodes_tbl : (string, node) Hashtbl.t;
  mutable version : int;  (* bumped on connect: invalidates all plans *)
}

type error =
  | Unknown_port of string * string
  | Type_mismatch of { src : string; dst : string;
                       src_type : Flow_type.t; dst_type : Flow_type.t }
  | Input_already_driven of string * string
  | Not_an_output of string * string
  | Not_an_input of string * string

let error_to_string = function
  | Unknown_port (n, p) -> Printf.sprintf "unknown port %s.%s" n p
  | Type_mismatch { src; dst; src_type; dst_type } ->
    Printf.sprintf "flow %s -> %s: output type %s is not a subset of input type %s"
      src dst (Flow_type.to_string src_type) (Flow_type.to_string dst_type)
  | Input_already_driven (n, p) -> Printf.sprintf "input %s.%s already has a driver" n p
  | Not_an_output (n, p) -> Printf.sprintf "%s.%s is not an output port" n p
  | Not_an_input (n, p) -> Printf.sprintf "%s.%s is not an input port" n p

let create () =
  { node_list = []; flows = []; nodes_tbl = Hashtbl.create 32; version = 0 }

let mk_ports direction decls =
  List.map (fun (pname, ty) -> (pname, Port.create ~name:pname direction ty)) decls

let check_fresh t name =
  if Hashtbl.mem t.nodes_tbl name then
    invalid_arg (Printf.sprintf "Dataflow.Graph.add_node: duplicate node %S" name)

let register t node =
  t.node_list <- node :: t.node_list;
  Hashtbl.replace t.nodes_tbl node.name node;
  node

let add_node t ~name ~inputs ~outputs =
  check_fresh t name;
  register t
    { name; relay = false;
      inputs = mk_ports Port.In inputs;
      outputs = mk_ports Port.Out outputs;
      routes = [||]; routes_version = -1; flight_id = -1;
      flight_relay = false }

let add_relay_node t ~name ty ~fanout =
  check_fresh t name;
  let outputs =
    List.init fanout (fun i ->
        let pname = Printf.sprintf "out%d" (i + 1) in
        (pname, Port.create ~name:pname Port.Out ty))
  in
  register t
    { name; relay = true;
      inputs = [ ("in", Port.create ~name:"in" Port.In ty) ];
      outputs; routes = [||]; routes_version = -1; flight_id = -1;
      flight_relay = false }

let add_relay t ~name ty ~fanout =
  if fanout < 2 then invalid_arg "Dataflow.Graph.add_relay: fanout must be >= 2";
  add_relay_node t ~name ty ~fanout

let add_junction t ~name ty = add_relay_node t ~name ty ~fanout:1

let is_relay node = node.relay
let node_name node = node.name
let nodes t = List.rev t.node_list
let find_node t name = Hashtbl.find_opt t.nodes_tbl name

let input_port node pname = List.assoc_opt pname node.inputs
let output_port node pname = List.assoc_opt pname node.outputs
let input_ports node = List.map snd node.inputs
let output_ports node = List.map snd node.outputs

let connect t ~src:(src_node, src_port) ~dst:(dst_node, dst_port) =
  match (output_port src_node src_port, input_port dst_node dst_port) with
  | None, _ ->
    if input_port src_node src_port <> None then
      Error (Not_an_output (src_node.name, src_port))
    else Error (Unknown_port (src_node.name, src_port))
  | _, None ->
    if output_port dst_node dst_port <> None then
      Error (Not_an_input (dst_node.name, dst_port))
    else Error (Unknown_port (dst_node.name, dst_port))
  | Some sp, Some dp ->
    let src_type = Port.flow_type sp in
    let dst_type = Port.flow_type dp in
    if not (Flow_type.compatible ~src:src_type ~dst:dst_type) then
      Error (Type_mismatch
               { src = Printf.sprintf "%s.%s" src_node.name src_port;
                 dst = Printf.sprintf "%s.%s" dst_node.name dst_port;
                 src_type; dst_type })
    else if
      List.exists
        (fun f ->
           String.equal f.dst_node.name dst_node.name
           && String.equal f.dst_port dst_port)
        t.flows
    then Error (Input_already_driven (dst_node.name, dst_port))
    else begin
      t.flows <- { src_node; src_port; dst_node; dst_port } :: t.flows;
      t.version <- t.version + 1;
      Ok ()
    end

let connect_exn t ~src ~dst =
  match connect t ~src ~dst with
  | Ok () -> ()
  | Error e -> invalid_arg ("Dataflow.Graph.connect: " ^ error_to_string e)

let flow_count t = List.length t.flows

let unconnected_inputs t =
  List.concat_map
    (fun node ->
       List.filter_map
         (fun (pname, _) ->
            let driven =
              List.exists
                (fun f ->
                   String.equal f.dst_node.name node.name
                   && String.equal f.dst_port pname)
                t.flows
            in
            if driven then None else Some (node.name, pname))
         node.inputs)
    (nodes t)

let unconnected_outputs t =
  List.concat_map
    (fun node ->
       List.filter_map
         (fun (pname, _) ->
            let consumed =
              List.exists
                (fun f ->
                   String.equal f.src_node.name node.name
                   && String.equal f.src_port pname)
                t.flows
            in
            if consumed then None else Some (node.name, pname))
         node.outputs)
    (nodes t)

let flow_list t =
  List.rev_map
    (fun f -> ((f.src_node.name, f.src_port), (f.dst_node.name, f.dst_port)))
    t.flows

(* ---------------- topological order (Kahn, O(V + E)) ---------------- *)

let topo_order t =
  let all = nodes t in
  let n_nodes = List.length all in
  let indegree = Hashtbl.create (2 * (n_nodes + 1)) in
  List.iter (fun n -> Hashtbl.replace indegree n.name 0) all;
  (* Node-level dependency edges, deduplicated; successors of each node
     are visited in destination-name order (the historical order of the
     sorted edge list), which keeps the resulting order stable. *)
  let seen = Hashtbl.create 64 in
  let succs = Hashtbl.create 64 in
  List.iter
    (fun f ->
       let pair = (f.src_node.name, f.dst_node.name) in
       if not (Hashtbl.mem seen pair) then begin
         Hashtbl.add seen pair ();
         Hashtbl.replace indegree f.dst_node.name
           (1 + Hashtbl.find indegree f.dst_node.name);
         let prev = try Hashtbl.find succs f.src_node.name with Not_found -> [] in
         Hashtbl.replace succs f.src_node.name (f.dst_node :: prev)
       end)
    t.flows;
  let ready = Queue.create () in
  List.iter (fun n -> if Hashtbl.find indegree n.name = 0 then Queue.push n ready) all;
  let order = ref [] in
  let placed = Hashtbl.create (2 * (n_nodes + 1)) in
  while not (Queue.is_empty ready) do
    let n = Queue.pop ready in
    order := n :: !order;
    Hashtbl.replace placed n.name ();
    let ss =
      List.sort
        (fun a b -> String.compare a.name b.name)
        (try Hashtbl.find succs n.name with Not_found -> [])
    in
    List.iter
      (fun m ->
         let d = Hashtbl.find indegree m.name - 1 in
         Hashtbl.replace indegree m.name d;
         if d = 0 then Queue.push m ready)
      ss
  done;
  let order = List.rev !order in
  if Hashtbl.length placed = n_nodes then Ok order
  else
    Error
      (List.filter_map
         (fun n -> if Hashtbl.mem placed n.name then None else Some n.name)
         all)

(* ---------------- reference propagation (list walk) ----------------- *)

let rec forward t flow writes =
  match output_port flow.src_node flow.src_port with
  | None -> writes
  | Some sp ->
    (match Port.read sp with
     | None -> writes
     | Some v ->
       (match input_port flow.dst_node flow.dst_port with
        | None -> writes
        | Some dp ->
          Port.write dp v;
          let writes = writes + 1 in
          if flow.dst_node.relay then relay_through t flow.dst_node v writes
          else writes))

and relay_through t relay_node v writes =
  (* Copy the relayed value to every relay output, then keep flowing. *)
  let writes =
    List.fold_left
      (fun acc (_, port) -> Port.write port v; acc + 1)
      writes relay_node.outputs
  in
  List.fold_left
    (fun acc f ->
       if String.equal f.src_node.name relay_node.name then forward t f acc
       else acc)
    writes t.flows

let propagate_from_reference t node =
  List.fold_left
    (fun acc f ->
       if String.equal f.src_node.name node.name then forward t f acc else acc)
    0 t.flows

(* ---------------- compiled propagation ------------------------------ *)

(* Intermediate tree mirroring the reference walk: one [CRead] per flow
   (skipping its whole subtree when the source port is empty), relay
   fan-out expanded inline. *)
type cop =
  | CRead of Port.t * cop list
  | CWrite of Port.t

let flows_from t node =
  List.filter (fun f -> String.equal f.src_node.name node.name) t.flows

let rec compile_flow t visiting f =
  match (output_port f.src_node f.src_port, input_port f.dst_node f.dst_port) with
  | Some sp, Some dp ->
    let rest =
      if f.dst_node.relay then begin
        if List.memq f.dst_node visiting then
          failwith
            (Printf.sprintf "Dataflow.Graph: relay cycle through %S" f.dst_node.name);
        let visiting = f.dst_node :: visiting in
        List.map (fun (_, p) -> CWrite p) f.dst_node.outputs
        @ List.concat_map (compile_flow t visiting) (flows_from t f.dst_node)
      end
      else []
    in
    [ CRead (sp, CWrite dp :: rest) ]
  | None, _ | _, None -> []

let rec cop_size = function
  | CWrite _ -> 1
  | CRead (_, body) -> 1 + List.fold_left (fun a c -> a + cop_size c) 0 body

let rec cop_ports acc = function
  | CWrite p -> p :: acc
  | CRead (p, body) -> List.fold_left cop_ports (p :: acc) body

let rec cop_writes acc = function
  | CWrite p -> p :: acc
  | CRead (_, body) -> List.fold_left cop_writes acc body

let flatten_cops cops =
  let ops = Array.make (List.fold_left (fun a c -> a + cop_size c) 0 cops)
      (GWrite (Port.create ~name:"" Port.Out Flow_type.float_flow))
  in
  let rec fill i = function
    | CWrite p -> ops.(i) <- GWrite p; i + 1
    | CRead (p, body) ->
      let after = List.fold_left fill (i + 1) body in
      ops.(i) <- GRead (p, after);
      after
  in
  ignore (List.fold_left fill 0 cops);
  ops

(* One route item per outgoing flow of the origin node. A subtree whose
   every port is scalar-float flattens to a plain float-cell fan-out: the
   register value cannot change across its relay boundaries (normalizing
   a {value: float} sample is the identity on the carried float). *)
let compile_route t f =
  match compile_flow t [ ] f with
  | [] -> None
  | cops ->
    let ports = List.fold_left cop_ports [] cops in
    if List.for_all Port.is_scalar_float ports then
      match cops with
      | [ CRead (sp, _) ] ->
        let dsts = Array.of_list (List.rev (List.fold_left cop_writes [] cops)) in
        Some (Fast { fsrc = sp; fsrc_cell = Port.fcell sp; fdsts = dsts;
                     fdst_cells = Array.map Port.fcell dsts })
      | _ -> Some (Slow (flatten_cops cops))
    else Some (Slow (flatten_cops cops))

let compile_plan t node =
  Array.of_list (List.filter_map (compile_route t) (flows_from t node))

let ensure_plan t node =
  if node.routes_version <> t.version then begin
    node.routes <- compile_plan t node;
    node.routes_version <- t.version;
    node.flight_relay <-
      List.exists (fun f -> f.src_node == node && f.dst_node.relay) t.flows
  end

let run_fast r =
  if Port.has_value r.fsrc then begin
    let x = r.fsrc_cell.(0) in
    let dsts = r.fdsts in
    let cells = r.fdst_cells in
    for j = 0 to Array.length dsts - 1 do
      cells.(j).(0) <- x;
      Port.note_float_write dsts.(j)
    done;
    Array.length dsts
  end
  else 0

let run_slow ops =
  let n = Array.length ops in
  let rec go i reg writes =
    if i >= n then writes
    else
      match ops.(i) with
      | GWrite p -> Port.write p reg; go (i + 1) reg (writes + 1)
      | GRead (p, skip) ->
        (match Port.read p with
         | Some v -> go (i + 1) v writes
         | None -> go skip reg writes)
  in
  go 0 Value.Unit 0

(* Top-level (not a local closure) so a steady-state propagation of an
   all-fast plan allocates nothing. *)
let rec run_plan plan i acc =
  if i >= Array.length plan then acc
  else
    run_plan plan (i + 1)
      (acc + match plan.(i) with Fast r -> run_fast r | Slow ops -> run_slow ops)

let propagate_from t node =
  ensure_plan t node;
  (* Interning hits the hashtable once per node; steady-state
     propagations reuse the cached id, so the flight record below is
     allocation-free. *)
  (* Only relay fan-out earns a routing hop of its own: a plain
     point-to-point propagation is already visible as the upstream
     [k_flow_write], so recording it again would double the hot-path
     cost for no extra causal information. *)
  if node.flight_relay then begin
    if node.flight_id < 0 then node.flight_id <- Obs.Flightrec.intern node.name;
    Obs.Flightrec.record ~kind:Obs.Flightrec.k_flow_route ~a:node.flight_id
      ~b:Obs.Flightrec.no_label ~sim:0.
  end;
  run_plan node.routes 0 0

let propagate_all t =
  match topo_order t with
  | Error names ->
    failwith
      (Printf.sprintf "Dataflow.Graph.propagate_all: cycle through %s"
         (String.concat ", " names))
  | Ok order ->
    List.fold_left (fun acc n -> acc + propagate_from t n) 0 order
