(** Flow types — the paper's stereotype replacing UML-RT protocols on the
    continuous side.

    A flow type is a record of named base-typed fields. The paper's
    connection rule is: "To connect two DPorts, the output DPort's flow
    type must be a subset of the input DPort's flow type." {!compatible}
    implements exactly that rule. (Classical structural subtyping would
    use the opposite direction — see DESIGN.md §7 — but we reproduce the
    paper as written.) *)

type base =
  | TBool
  | TInt
  | TFloat
  | TVec of int  (** fixed-length float vector *)

val base_name : base -> string
val base_equal : base -> base -> bool

type t
(** A flow type: a set of named fields, canonically sorted. *)

val record : (string * base) list -> t
(** Build from field declarations. Raises [Invalid_argument] on duplicate
    field names or an empty list. *)

val scalar : base -> t
(** Single-field record named ["value"] — scalar flows. *)

val float_flow : t
(** [scalar TFloat], the most common flow. *)

val fields : t -> (string * base) list
(** Sorted field list. *)

val arity : t -> int

val find_field : t -> string -> base option

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] — every field of [a] appears in [b] with the same base. *)

val compatible : src:t -> dst:t -> bool
(** The paper's DPort connection rule: [subset src dst]. *)

val union : t -> t -> (t, string) result
(** Least upper bound; [Error field] when a field name clashes with
    different bases. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
