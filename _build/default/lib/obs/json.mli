(** Minimal self-contained JSON: enough to emit and re-read Chrome trace
    files and metric dumps without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (no insignificant whitespace). Non-finite floats are emitted
    as [null] — JSON has no representation for them. *)

exception Parse_error of string
(** Carries a human-readable message with a byte offset. *)

val of_string : string -> t
(** Strict parser for the grammar [to_string] emits (plus arbitrary
    whitespace). Numbers without [. e E] parse as [Int], others as
    [Float]. Raises {!Parse_error} on malformed input or trailing
    garbage. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields or non-objects. *)

val to_list : t -> t list
(** Elements of a [List]; [[]] on anything else. *)

val string_value : t -> string option
(** The payload of a [Str]; [None] otherwise. *)
