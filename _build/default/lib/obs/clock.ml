(* The epoch is fixed at the first use of the module, so every tracer and
   metric in the process shares one timeline. *)
let epoch = Unix.gettimeofday ()

let now_ns () =
  let dt = Unix.gettimeofday () -. epoch in
  if dt <= 0. then 0 else int_of_float (dt *. 1e9)

let ns_to_us ns = float_of_int ns /. 1e3

(* Coarse cached timestamp for always-on instrumentation: [now_ns] calls
   [Unix.gettimeofday], which both costs a syscall-ish hop and allocates
   a boxed float — unacceptable inside the zero-alloc tick path. The
   dispatch loop refreshes this once per event (where it already
   allocates); hot recorders read the cached int for free. *)
let coarse = ref 0

let refresh_coarse () = coarse := now_ns ()
let[@inline] coarse_ns () = !coarse
