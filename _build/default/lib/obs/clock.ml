(* The epoch is fixed at the first use of the module, so every tracer and
   metric in the process shares one timeline. *)
let epoch = Unix.gettimeofday ()

let now_ns () =
  let dt = Unix.gettimeofday () -. epoch in
  if dt <= 0. then 0 else int_of_float (dt *. 1e9)

let ns_to_us ns = float_of_int ns /. 1e3
