(* Cause IDs are plain ints: 0 means "no cause", positive values name a
   chain rooted at one external stimulus. The current cause is ambient
   state read by the tracer and flight recorder, set by the DES dispatch
   loop around each callback — propagation through queues happens by
   capturing [current ()] when work is scheduled and restoring it when
   the work runs. *)

let none = 0

(* Minting state is domain-local so worker domains never contend on the
   counter. Each domain mints from an arithmetic progression
   [base + k*stride]: the main domain (and any domain that never calls
   [set_identity]) uses base=0, stride=1 — the historical dense IDs —
   while the sharded runtime gives worker domain [d] of [n] the identity
   (base=d, stride=n), so IDs minted on different domains never collide
   and [id mod n] recovers the minting shard. *)
type ctx = {
  mutable counter : int;  (* count of IDs minted by this domain *)
  mutable cur : int;
  mutable base : int;
  mutable stride : int;
}

let ctx_key : ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { counter = 0; cur = none; base = 0; stride = 1 })

let[@inline] ctx () = Domain.DLS.get ctx_key

let set_identity ~base ~stride =
  if stride < 1 || base < 0 || base >= stride then
    invalid_arg "Obs.Causal.set_identity: need 0 <= base < stride";
  let c = ctx () in
  c.base <- base;
  c.stride <- stride

(* Birth timestamps, indexed by cause ID: the coarse wall clock at mint
   time. Off by default — the profiler switches tracking on so its
   stimulus→reaction latency histograms can subtract the birth from the
   reaction's clock without a per-mint hashtable. The array grows by
   doubling (mint already happens on allocating dispatch paths), and
   reads are a bounds check + load. *)
let track = ref false
let births = ref [||]

let set_track_births on =
  track := on;
  if not on then births := [||]

let track_births () = !track

let note_birth id =
  let arr = !births in
  let n = Array.length arr in
  if id >= n then begin
    let n' = Int.max 1024 (Int.max (n * 2) (id + 1)) in
    let arr' = Array.make n' 0 in
    Array.blit arr 0 arr' 0 n;
    arr'.(id) <- Clock.coarse_ns ();
    births := arr'
  end
  else arr.(id) <- Clock.coarse_ns ()

let birth_ns id =
  let arr = !births in
  if id > 0 && id < Array.length arr then arr.(id) else 0

let mint () =
  let c = ctx () in
  c.counter <- c.counter + 1;
  let id = c.base + (c.counter * c.stride) in
  c.cur <- id;
  if !track then note_birth id;
  id

let[@inline] current () = (ctx ()).cur
let set id = (ctx ()).cur <- id
let minted () = (ctx ()).counter

let reset () =
  let c = ctx () in
  c.counter <- 0;
  c.cur <- none;
  if !track then births := [||]
