(* Cause IDs are plain ints: 0 means "no cause", positive values name a
   chain rooted at one external stimulus. The current cause is ambient
   state read by the tracer and flight recorder, set by the DES dispatch
   loop around each callback — propagation through queues happens by
   capturing [current ()] when work is scheduled and restoring it when
   the work runs. *)

let none = 0

let counter = ref 0
let cur = ref none

(* Birth timestamps, indexed by cause ID: the coarse wall clock at mint
   time. Off by default — the profiler switches tracking on so its
   stimulus→reaction latency histograms can subtract the birth from the
   reaction's clock without a per-mint hashtable. The array grows by
   doubling (mint already happens on allocating dispatch paths), and
   reads are a bounds check + load. *)
let track = ref false
let births = ref [||]

let set_track_births on =
  track := on;
  if not on then births := [||]

let track_births () = !track

let note_birth id =
  let arr = !births in
  let n = Array.length arr in
  if id >= n then begin
    let n' = Int.max 1024 (Int.max (n * 2) (id + 1)) in
    let arr' = Array.make n' 0 in
    Array.blit arr 0 arr' 0 n;
    arr'.(id) <- Clock.coarse_ns ();
    births := arr'
  end
  else arr.(id) <- Clock.coarse_ns ()

let birth_ns id =
  let arr = !births in
  if id > 0 && id < Array.length arr then arr.(id) else 0

let mint () =
  incr counter;
  cur := !counter;
  if !track then note_birth !counter;
  !counter

let[@inline] current () = !cur
let set id = cur := id
let minted () = !counter

let reset () =
  counter := 0;
  cur := none;
  if !track then births := [||]
