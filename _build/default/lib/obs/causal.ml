(* Cause IDs are plain ints: 0 means "no cause", positive values name a
   chain rooted at one external stimulus. The current cause is ambient
   state read by the tracer and flight recorder, set by the DES dispatch
   loop around each callback — propagation through queues happens by
   capturing [current ()] when work is scheduled and restoring it when
   the work runs. *)

let none = 0

let counter = ref 0
let cur = ref none

let mint () =
  incr counter;
  cur := !counter;
  !counter

let[@inline] current () = !cur
let set id = cur := id
let minted () = !counter

let reset () =
  counter := 0;
  cur := none
