(** Structured execution tracing: a bounded ring buffer of timestamped
    events recorded by the runtime layers (DES dispatch, UML-RT
    run-to-completion steps, streamer ticks, solver advances).

    Tracing is off by default. The global {!enabled} flag gates every
    instrumented hot path — when disabled, instrumentation costs a single
    branch. When the buffer fills, the oldest events are overwritten (and
    counted in {!dropped}), so a long run keeps its most recent window. *)

type phase =
  | Begin          (** opening half of a duration span *)
  | End            (** closing half of a duration span *)
  | Complete       (** span with an explicit duration *)
  | Instant        (** point event *)
  | Sample         (** counter/gauge sample (graphed as a track) *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = {
  ts_ns : int;        (** wall-clock start, ns since the process epoch *)
  dur_ns : int;       (** duration for [Complete]; 0 otherwise *)
  sim_time : float;   (** simulated time when the event was recorded *)
  cat : string;       (** subsystem: "des", "umlrt", "hybrid", "ode", ... *)
  name : string;
  phase : phase;
  track : string;     (** capsule instance path / streamer role; "" = engine *)
  cause : int;        (** ambient {!Causal} chain id; 0 = no chain *)
  args : (string * arg) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer holding at most [capacity] events (default 262144). *)

val default : t
(** The process-wide tracer the instrumented layers record into. *)

val enabled : unit -> bool
(** Global flag; initially [false]. *)

val set_enabled : bool -> unit

val now_ns : unit -> int
(** Alias of {!Clock.now_ns}, for call sites timing a span start. *)

val emit :
  ?tracer:t -> ?track:string -> ?args:(string * arg) list -> ?dur_ns:int ->
  cat:string -> name:string -> sim_time:float -> phase -> unit
(** Record one event (timestamped now unless [dur_ns] is given together
    with a [Complete] phase via {!complete}). No-op when tracing is
    disabled. *)

val complete :
  ?tracer:t -> ?track:string -> ?args:(string * arg) list ->
  cat:string -> name:string -> sim_time:float -> start_ns:int -> unit -> unit
(** A [Complete] span that started at [start_ns] (from {!now_ns}) and
    ends now. No-op when tracing is disabled. *)

val instant :
  ?tracer:t -> ?track:string -> ?args:(string * arg) list ->
  cat:string -> name:string -> sim_time:float -> unit -> unit

val sample :
  ?tracer:t -> cat:string -> name:string -> sim_time:float -> float -> unit
(** A [Sample] of a numeric series (exported as a Chrome counter track). *)

val with_span :
  ?tracer:t -> ?track:string -> cat:string -> name:string ->
  sim_time:float -> (unit -> 'a) -> 'a
(** Run the thunk inside a [Complete] span; when tracing is disabled the
    thunk runs with no other overhead than the flag check. Exceptions
    propagate (the span is not recorded in that case). *)

val length : t -> int
(** Events currently held. *)

val dropped : t -> int
(** Events overwritten since creation (or the last {!clear}). *)

val recorded : t -> int
(** Total events recorded since creation (or the last {!clear}). *)

val clear : t -> unit

val events : t -> event list
(** Oldest first. *)

val categories : t -> string list
(** Distinct categories present, sorted. *)
