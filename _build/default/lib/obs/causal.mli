(** Causal chain identifiers.

    A cause ID is a plain [int] minted when an external stimulus enters
    the system (a timer firing, an event posted from outside the
    dispatch loop, an injected fault) and propagated — allocation-free —
    through every queue hop: whoever schedules deferred work captures
    {!current} and restores it around the callback. Tracer events and
    flight-recorder entries read the ambient value, so every record
    carries the chain that produced it. *)

val none : int
(** [0]: no ambient cause. *)

val mint : unit -> int
(** Allocate a fresh cause ID and make it current. *)

val current : unit -> int
(** The ambient cause, or {!none} outside any chain. *)

val set : int -> unit
(** Restore a previously captured cause ({!none} to leave the chain). *)

val minted : unit -> int
(** Number of IDs minted since start (or the last {!reset}). *)

val reset : unit -> unit
(** Reset the counter and ambient cause — test isolation only. *)
