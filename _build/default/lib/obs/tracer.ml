type phase = Begin | End | Complete | Instant | Sample

type arg = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ts_ns : int;
  dur_ns : int;
  sim_time : float;
  cat : string;
  name : string;
  phase : phase;
  track : string;
  cause : int;
  args : (string * arg) list;
}

type t = {
  buf : event option array;
  mutable next : int;      (* next write position *)
  mutable filled : int;    (* events currently held *)
  mutable overwritten : int;
  mutable total : int;
}

let create ?(capacity = 262_144) () =
  if capacity < 1 then invalid_arg "Obs.Tracer.create: capacity must be >= 1";
  { buf = Array.make capacity None; next = 0; filled = 0; overwritten = 0;
    total = 0 }

let default = create ()

let flag = ref false

let enabled () = !flag
let set_enabled on = flag := on

let now_ns = Clock.now_ns

let push t ev =
  let capacity = Array.length t.buf in
  if t.filled = capacity then t.overwritten <- t.overwritten + 1
  else t.filled <- t.filled + 1;
  t.buf.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod capacity;
  t.total <- t.total + 1

let emit ?(tracer = default) ?(track = "") ?(args = []) ?(dur_ns = 0)
    ~cat ~name ~sim_time phase =
  if !flag then
    push tracer
      { ts_ns = Clock.now_ns (); dur_ns; sim_time; cat; name; phase; track;
        cause = Causal.current (); args }

let complete ?(tracer = default) ?(track = "") ?(args = []) ~cat ~name
    ~sim_time ~start_ns () =
  if !flag then
    push tracer
      { ts_ns = start_ns; dur_ns = Clock.now_ns () - start_ns; sim_time;
        cat; name; phase = Complete; track; cause = Causal.current (); args }

let instant ?(tracer = default) ?(track = "") ?(args = []) ~cat ~name
    ~sim_time () =
  if !flag then
    push tracer
      { ts_ns = Clock.now_ns (); dur_ns = 0; sim_time; cat; name;
        phase = Instant; track; cause = Causal.current (); args }

let sample ?(tracer = default) ~cat ~name ~sim_time value =
  if !flag then
    push tracer
      { ts_ns = Clock.now_ns (); dur_ns = 0; sim_time; cat; name;
        phase = Sample; track = ""; cause = Causal.current ();
        args = [ ("value", Float value) ] }

let with_span ?(tracer = default) ?(track = "") ~cat ~name ~sim_time f =
  if !flag then begin
    let start = Clock.now_ns () in
    let result = f () in
    complete ~tracer ~track ~cat ~name ~sim_time ~start_ns:start ();
    result
  end
  else f ()

let length t = t.filled
let dropped t = t.overwritten
let recorded t = t.total

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.filled <- 0;
  t.overwritten <- 0;
  t.total <- 0

let events t =
  let capacity = Array.length t.buf in
  let start = (t.next - t.filled + capacity) mod capacity in
  List.init t.filled (fun i ->
      match t.buf.((start + i) mod capacity) with
      | Some ev -> ev
      | None -> assert false)

let categories t =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun ev -> if not (Hashtbl.mem seen ev.cat) then Hashtbl.add seen ev.cat ())
    (events t);
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
