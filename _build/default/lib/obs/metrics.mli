(** Named runtime metrics: counters, gauges and fixed-bucket histograms.

    A registry maps names to metric instances; [counter]/[gauge]/
    [histogram] are get-or-create, so instrumented modules can declare
    their metrics at module-initialisation time and call sites pay only a
    field update per event. Everything lives in {!default} unless an
    explicit registry is passed. *)

type counter
type gauge
type histogram

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry used by the instrumented runtime layers. *)

val ambient : unit -> t
(** The calling domain's ambient registry: {!default} unless the domain
    called {!set_ambient}. This is what [?registry] defaults to, so
    instrumented modules that register metrics at instance-creation time
    land in the registry of the domain doing the creating. *)

val set_ambient : t -> unit
(** Point the calling domain's ambient registry somewhere else. The
    sharded runtime gives each worker domain a private registry so
    hot-path updates never race; the coordinator merges them with
    {!merge} at sync points. *)

val counter : ?registry:t -> string -> counter
(** Get or create. Raises [Invalid_argument] if the name is already bound
    to a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : ?registry:t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val log_bounds : lo:float -> hi:float -> per_decade:int -> float array
(** Logarithmically spaced histogram bucket bounds covering [lo, hi]
    inclusive, [per_decade] buckets per factor of ten. Both bounds must be
    positive, [lo < hi]. *)

val histogram : ?registry:t -> ?bounds:float array -> string -> histogram
(** [bounds] are strictly increasing bucket upper bounds; an implicit
    overflow bucket catches everything above the last. The default covers
    1e-9 .. 1e3 at 3 buckets per decade (good for seconds-valued
    durations and step sizes). [bounds] is ignored when the histogram
    already exists. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: upper bound of the bucket holding
    the q-th observation (nearest-rank over buckets); [nan] when empty. *)

val merge_histogram : into:histogram -> histogram -> unit
(** Accumulate [src]'s buckets, count, sum and min/max into [into].
    Raises [Invalid_argument] when the bucket bounds differ — merging
    across mismatched layouts would silently misbin, so it is an error,
    never a best-effort. Merging an empty histogram is a no-op on the
    observations and leaves min/max untouched. *)

val merge : ?sum_gauges:bool -> into:t -> t -> unit
(** Merge every metric of [src] into [into], creating missing metrics
    (histograms with [src]'s bounds): counters add, histograms
    {!merge_histogram}, gauges take [src]'s value (last-writer-wins —
    a gauge is a level, not an accumulation). Needed by [umh perf]
    summarize and, later, the sharded runtime's per-shard registries. *)

val reset : t -> unit
(** Zero every metric in the registry (histogram buckets included).
    Metric handles held by instrumented modules stay valid — only the
    accumulated values are cleared, so differential tests can isolate
    runs sharing the {!default} registry. *)

type value =
  | Vcounter of int
  | Vgauge of float
  | Vhistogram of { vh_count : int; vh_sum : float }

val size : t -> int
(** Number of registered metrics. O(1) — the telemetry emitter polls it
    every record to detect registry growth without allocating. *)

val snapshot : t -> (string * value) list
(** Point-in-time copy of every metric's accumulated value, sorted by
    name. Two snapshots from the same registry can be diffed to isolate
    what one run contributed, regardless of what ran before. *)

val metrics : t -> (string * metric) list
(** Sorted by name. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump, one metric per line, sorted by name;
    histograms summarised as n/mean/min/p50/p90/p99/max. *)

val to_json : t -> Json.t
(** [Obj] keyed by metric name; counters as ints, gauges as floats,
    histograms as [{count; sum; min; max; p50; p90; p95; p99; buckets}]. *)
