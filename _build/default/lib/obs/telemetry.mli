(** Continuous telemetry stream.

    When configured, the hybrid engine opens the stream with
    {!begin_stream} and drives both cadences — one record per sim-time
    interval, plus optionally every N engine ticks — from its per-tick
    {!on_tick} hook (engines with no streamers arm a DES timer
    instead); each emission appends one self-contained JSONL record to
    the sink:

    {v
    {"schema":"umh-telemetry","version":1,"seq":3,"sim_time":0.3,
     "wall_ns":...,
     "counters":{...deltas since previous record; zero deltas omitted...},
     "gauges":{...absolute values (queue depth etc.)...},
     "histograms":{name:{"count":Δcount,"sum":Δsum}, ...},
     "flightrec":{"recorded":Δ,"dropped":Δ},
     "profile":{...top-N rollup, only when the profiler is on...}}
    v}

    Zero-cost-when-off: unconfigured, {!on_tick} (the only hook on a hot
    path) is one int load + branch, and simulation results are
    bit-identical to a run without telemetry — the emitter reads runtime
    state but never writes model state. *)

val schema : string
(** ["umh-telemetry"]. *)

val schema_version : int

val default_every : float
(** [0.1] simulated seconds. *)

val configure :
  ?every:float -> ?every_ticks:int -> ?top:int -> (string -> unit) -> unit
(** Arm telemetry: [every] is the sim-time cadence in simulated seconds
    (default {!default_every}), [every_ticks] additionally emits a
    record every N engine ticks (0 = off), [top] bounds the profile
    rollup rows per record (default 8). The sink receives each record as
    one complete JSON line, terminating ["\n"] included. Resets the
    sequence number and delta baselines. *)

val stop : unit -> unit

val enabled : unit -> bool

val every : unit -> float
(** The configured sim-time cadence (meaningful while {!enabled}). *)

val records : unit -> int
(** Records emitted since {!configure}. *)

val emit : sim:float -> unit
(** Build and write one record at the given sim time. No-op when off.
    Allocates — called on cadence boundaries only, never per tick. *)

val begin_stream : sim:float -> unit
(** Called by the engine at simulation start: emits the seq-0 record
    (every stream opens with its baseline) and anchors the sim-time
    cadence at [sim]. No-op when off. *)

val on_tick : sim:float -> unit
(** Cadence hook, called by the engine once per streamer tick. Emits
    when [sim] has crossed the next sim-time boundary since
    {!begin_stream} (boundaries are computed from the anchor, never
    accumulated, so long streams do not drift) and/or when the tick
    countdown reaches zero. One load + branch when off; two compares
    per tick when on. Ticks sparser than the sim cadence yield one
    record per tick rather than a burst. *)
