(** Continuous telemetry stream.

    When configured, the hybrid engine opens the stream with
    {!begin_stream}; the DES loop drives the sim-time cadence through
    {!advance_before}/{!flush_upto} (records are cut at quiescent
    points, just before the event that crosses a boundary), and the
    per-tick {!on_tick} hook drives the optional tick cadence; each
    emission appends one self-contained JSONL record to the sink:

    {v
    {"schema":"umh-telemetry","version":1,"seq":3,"sim_time":0.3,
     "wall_ns":...,
     "counters":{...deltas since previous record; zero deltas omitted...},
     "gauges":{...absolute values (queue depth etc.)...},
     "histograms":{name:{"count":Δcount,"sum":Δsum}, ...},
     "flightrec":{"recorded":Δ,"dropped":Δ},
     "profile":{...top-N rollup, only when the profiler is on...}}
    v}

    Zero-cost-when-off: unconfigured, the hooks on hot paths
    ({!on_tick}, {!advance_before}) are one int load + branch, and
    simulation results are bit-identical to a run without telemetry —
    the emitter reads runtime state but never writes model state.

    Telemetry state belongs to the domain that called {!configure}; the
    hooks no-op on any other domain. The sharded runtime's coordinator
    replays the identical cadence at epoch barriers over merged
    per-shard registries (see {!set_source}), which is what makes a
    sharded run's stream byte-identical to the single-domain one. *)

val schema : string
(** ["umh-telemetry"]. *)

val schema_version : int

val default_every : float
(** [0.1] simulated seconds. *)

val configure :
  ?every:float -> ?every_ticks:int -> ?top:int -> (string -> unit) -> unit
(** Arm telemetry: [every] is the sim-time cadence in simulated seconds
    (default {!default_every}), [every_ticks] additionally emits a
    record every N engine ticks (0 = off), [top] bounds the profile
    rollup rows per record (default 8). The sink receives each record as
    one complete JSON line, terminating ["\n"] included. Resets the
    sequence number and delta baselines. *)

val stop : unit -> unit

val enabled : unit -> bool

val every : unit -> float
(** The configured sim-time cadence (meaningful while {!enabled}). *)

val records : unit -> int
(** Records emitted since {!configure}. *)

val emit : sim:float -> unit
(** Build and write one record at the given sim time. No-op when off.
    Allocates — called on cadence boundaries only, never per tick. *)

val begin_stream : sim:float -> unit
(** Called by the engine at simulation start: emits the seq-0 record
    (every stream opens with its baseline) and anchors the sim-time
    cadence at [sim]. No-op when off. *)

val on_tick : sim:float -> unit
(** Tick-cadence hook, called by the engine once per streamer tick:
    emits when the tick countdown reaches zero ([every_ticks] > 0).
    One load + branch when off or when no tick cadence is set. *)

val advance_before : next:float -> unit
(** Sim-cadence hook, called by the DES loop just before executing an
    event at time [next]: emits the largest pending cadence boundary
    strictly below [next] (at that instant every event at or before the
    boundary has run and none after, so the record is a pure function
    of the event history). Boundaries are computed from the
    {!begin_stream} anchor, never accumulated, so long streams do not
    drift; events sparser than the cadence yield one record per event,
    never a burst. One load + branch when off. *)

val flush_upto : upto:float -> unit
(** End-of-run hook, called when the DES loop reaches its horizon:
    emits the largest pending boundary at or below [upto]. *)

val set_source : Metrics.t -> unit
(** Retarget record construction at a different registry (the shard
    coordinator's merged view). The emission plan rebuilds lazily on
    registry-size change; call {!reset_sources} when done. *)

val set_flight_stats : (unit -> int * int) -> unit
(** Replace the (recorded, dropped) totals the flightrec section reads
    — the coordinator sums per-shard rings. *)

val reset_sources : unit -> unit
(** Restore {!set_source}/{!set_flight_stats} to the process defaults. *)

val next_boundary_due : unit -> float
(** The earliest cadence boundary not yet emitted ([infinity] when off
    or before {!begin_stream}). The shard coordinator cuts epochs here
    so every emission opportunity lands exactly on a barrier. *)
