(** Always-on flight recorder.

    A small fixed ring of the most recent runtime steps — DES
    deliveries, capsule RTC passes, streamer ticks, flow writes —
    recorded into preallocated parallel arrays with interned labels and
    the coarse cached clock, so recording on the steady-state tick path
    allocates nothing. Independent of the opt-in {!Tracer}: it is on by
    default and survives until a crash report snapshots its window. *)

(** {2 Kind codes}

    Plain ints so hot call sites pass a constant without constructing a
    variant. *)

val k_dispatch : int
val k_rtc : int
val k_signal_send : int
val k_signal_to_capsule : int
val k_signal_to_streamer : int
val k_tick : int
val k_flow_write : int
val k_flow_route : int
val k_solver_advance : int
val k_fault : int
val k_restart : int
val k_quarantine : int
val k_watchdog : int
val k_inject : int
val k_crossing : int

val kind_name : int -> string

(** {2 Label interning} *)

val no_label : int
(** [0]: entry carries no label in that slot. *)

val intern : string -> int
(** Map a label (role, port, signal, capsule path) to a small int.
    Hashtable lookup — call at setup or first use and cache the id;
    never inside a steady-state loop. *)

val label : int -> string
(** Inverse of {!intern}; [""] for {!no_label} or unknown ids. *)

(** {2 Recording} *)

val capacity : int
(** Ring size (entries retained). *)

type t
(** One ring. Recording always targets the calling domain's ambient
    ring ({!ambient}); the main domain's ambient ring is the process
    default, so single-domain programs never see this type. *)

val create : unit -> t

val ambient : unit -> t
(** The calling domain's ring — the process default unless the domain
    called {!set_ambient}. *)

val set_ambient : t -> unit
(** Give the calling domain a private ring. The sharded runtime does
    this per worker domain so hot-path stores never race; interned label
    ids stay valid across domains (the intern table is process-global
    and locked). *)

val ring_total : t -> int
val ring_dropped : t -> int
(** Per-ring totals, for a coordinator summing across shard rings. *)

val enabled : unit -> bool
(** On by default. *)

val set_enabled : bool -> unit

val record : kind:int -> a:int -> b:int -> sim:float -> unit
(** Record one entry: kind code, two interned labels ({!no_label} when
    absent), simulated time. The cause ({!Causal.current}) and wall
    clock ({!Clock.coarse_ns}) are read internally. Allocation-free. *)

val record_v : kind:int -> a:int -> b:int -> sim:float -> float -> unit
(** Like {!record} with a float payload (boxes the float — keep off the
    zero-alloc tick path). *)

(** {2 Inspection} *)

type entry = {
  e_kind : int;
  e_cause : int;
  e_wall_ns : int;
  e_a : string;
  e_b : string;
  e_sim : float;
  e_value : float option;
}

val length : unit -> int
(** Entries currently held (≤ {!capacity}). *)

val total : unit -> int
(** Entries recorded since start (or the last {!clear}). *)

val dropped : unit -> int
(** Entries that have fallen out of the ring: [max 0 (total - capacity)].
    The telemetry stream reports deltas of this so consumers can tell
    how much history each interval lost. *)

val entries : unit -> entry list
(** Oldest first. Allocates; crash-report/test use only. *)

val to_json : unit -> Json.t
(** The whole window as a self-contained JSON object. *)

val clear : unit -> unit
