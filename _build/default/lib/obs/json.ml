type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_nan f || Float.abs f = infinity then Buffer.add_string buf "null"
  else begin
    (* Shortest decimal that round-trips, judged on the bit pattern —
       [=] would accept "0" for -0.0 and lose the sign on re-read. *)
    let bits = Int64.bits_of_float f in
    let round_trips s =
      match float_of_string_opt s with
      | Some f' -> Int64.bits_of_float f' = bits
      | None -> false
    in
    let rec shortest p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if round_trips s then s else shortest (p + 1)
    in
    let s = shortest 1 in
    Buffer.add_string buf s;
    (* "%g" may print an integer-valued float without a mark that keeps it
       a float on re-read ("3" rather than "3.0"). *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_char buf ',';
         to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         add_escaped buf k;
         Buffer.add_char buf ':';
         to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  if
    cur.pos + String.length word <= String.length cur.src
    && String.sub cur.src cur.pos (String.length word) = word
  then begin
    cur.pos <- cur.pos + String.length word;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur; Buffer.contents buf
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some '"' -> Buffer.add_char buf '"'; advance cur
       | Some '\\' -> Buffer.add_char buf '\\'; advance cur
       | Some '/' -> Buffer.add_char buf '/'; advance cur
       | Some 'b' -> Buffer.add_char buf '\b'; advance cur
       | Some 'f' -> Buffer.add_char buf '\012'; advance cur
       | Some 'n' -> Buffer.add_char buf '\n'; advance cur
       | Some 'r' -> Buffer.add_char buf '\r'; advance cur
       | Some 't' -> Buffer.add_char buf '\t'; advance cur
       | Some 'u' ->
         advance cur;
         if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
         let hex = String.sub cur.src cur.pos 4 in
         let code =
           try int_of_string ("0x" ^ hex)
           with Failure _ -> fail cur "bad \\u escape"
         in
         cur.pos <- cur.pos + 4;
         utf8_of_code buf code
       | _ -> fail cur "bad escape");
      loop ()
    | Some c -> Buffer.add_char buf c; advance cur; loop ()
  in
  loop ()

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec loop () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') -> advance cur; loop ()
    | Some ('.' | 'e' | 'E') -> is_float := true; advance cur; loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (* Integer literal too big for native int: keep it as a float. *)
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then (advance cur; List [])
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; items (v :: acc)
        | Some ']' -> advance cur; List (List.rev (v :: acc))
        | _ -> fail cur "expected ',' or ']'"
      in
      items []
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then (advance cur; Obj [])
    else begin
      let field () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; fields (kv :: acc)
        | Some '}' -> advance cur; Obj (List.rev (kv :: acc))
        | _ -> fail cur "expected ',' or '}'"
      in
      fields []
    end
  | Some ('0' .. '9' | '-') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> items | _ -> []

let string_value = function Str s -> Some s | _ -> None
