(** Wall-clock time for instrumentation, as integer nanoseconds since an
    arbitrary process-local epoch (so values stay small and subtraction is
    exact). *)

val now_ns : unit -> int
(** Nanoseconds since the epoch. Monotone in practice on the scales
    instrumentation cares about; never negative. *)

val ns_to_us : int -> float
(** Nanoseconds to (fractional) microseconds — the unit Chrome trace
    files use. *)
