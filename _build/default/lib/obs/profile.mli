(** Per-entity cost profiler.

    Capsules, streamers and solver kernels register a {e slot} at
    elaboration time; the engine brackets each unit of work with
    {!enter}/{!exit_}. Totals (call count, self/inclusive wall time,
    allocated minor words) accumulate into preallocated flat arrays
    indexed by the slot int — the same discipline as {!Flightrec} — so
    the disabled hot path is one load + branch and the enabled path does
    no allocation beyond the clock read.

    Self time excludes nested frames: a streamer tick wrapping a solver
    advance attributes the integration to the solver slot. Stimulus →
    reaction latency is recorded into {!Metrics} histograms from
    {!Causal} birth stamps (tracking is switched on together with the
    profiler). *)

(** {2 Entity kinds} *)

val k_streamer : int
val k_capsule : int
val k_solver : int
val k_other : int

val kind_name : int -> string

(** {2 Registration} *)

val register : kind:int -> string -> int
(** Get-or-create the slot for [(kind, name)]. Hashtable lookup — call
    at elaboration, never per tick. *)

val registered : unit -> int
(** Slots registered so far (process-wide; registrations survive
    {!reset}). *)

(** {2 Recording} *)

val enabled : unit -> bool
(** Off by default. *)

val set_enabled : bool -> unit
(** Also toggles {!Causal.set_track_births} and clears the frame stack. *)

val enter : int -> unit
(** Open a frame for the slot. No-op when disabled; frames nested deeper
    than an internal fixed limit are not measured. *)

val exit_ : int -> unit
(** Close the innermost frame, which must match the slot ([enter]/
    [exit_] bracket like parentheses). On mismatch — an exception
    unwound past frames — the stack is dropped rather than attributing
    garbage. *)

val note_capsule_reaction : unit -> unit
(** Record stimulus→reaction latency for the ambient cause into the
    ["profile.latency.capsule_rtc_s"] histogram. No-op when disabled or
    when the cause has no birth stamp. *)

val note_streamer_reaction : unit -> unit
(** Same, into ["profile.latency.streamer_signal_s"]. *)

(** {2 Reporting} *)

type row = {
  r_kind : string;
  r_name : string;
  r_count : int;
  r_self_ns : int;
  r_total_ns : int;
  r_max_ns : int;   (** worst single-frame self time — a measured wcet *)
  r_alloc_w : float;
}

val rows : unit -> row list
(** Every slot with at least one completed frame, sorted by self time
    descending. Allocates — reporting only. *)

val top : int -> row list

val pp_top : Format.formatter -> int -> unit
(** Flat top-N table: kind, entity, calls, self ms, self %, minor
    words. *)

val to_json : ?top:int -> unit -> Json.t
(** [{entities; rows}] — [rows] limited to [top] when given. *)

val reset : unit -> unit
(** Zero all accumulators and drop open frames; registrations and the
    enabled flag are kept. *)
