lib/obs/crash_report.ml: Causal Filename Flightrec Fun Json List Metrics Printf
