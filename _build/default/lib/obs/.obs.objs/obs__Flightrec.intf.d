lib/obs/flightrec.mli: Json
