lib/obs/clock.ml: Unix
