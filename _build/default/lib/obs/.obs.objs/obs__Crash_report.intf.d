lib/obs/crash_report.mli: Json
