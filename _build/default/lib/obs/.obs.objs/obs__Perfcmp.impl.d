lib/obs/perfcmp.ml: Format Hashtbl Json List Option Printf String Telemetry
