lib/obs/profile.mli: Format Json
