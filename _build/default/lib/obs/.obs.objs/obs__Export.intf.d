lib/obs/export.mli: Json Metrics Tracer
