lib/obs/causal.ml: Array Clock Int
