lib/obs/causal.ml: Array Clock Domain Int
