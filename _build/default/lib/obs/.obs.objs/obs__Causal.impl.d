lib/obs/causal.ml:
