lib/obs/profile.ml: Array Causal Clock Format Gc Hashtbl Json List Metrics
