lib/obs/clock.mli:
