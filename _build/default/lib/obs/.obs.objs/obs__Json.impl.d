lib/obs/json.ml: Buffer Char Float Int64 List Printf String
