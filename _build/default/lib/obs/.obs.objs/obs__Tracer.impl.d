lib/obs/tracer.ml: Array Causal Clock Hashtbl List String
