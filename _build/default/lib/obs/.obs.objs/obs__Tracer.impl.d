lib/obs/tracer.ml: Array Clock Hashtbl List String
