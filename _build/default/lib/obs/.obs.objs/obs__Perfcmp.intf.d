lib/obs/perfcmp.mli: Format Json
