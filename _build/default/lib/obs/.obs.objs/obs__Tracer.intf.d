lib/obs/tracer.mli:
