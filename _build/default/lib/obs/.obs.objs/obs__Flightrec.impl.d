lib/obs/flightrec.ml: Array Causal Clock Float Hashtbl Int Json List
