lib/obs/flightrec.ml: Array Causal Clock Domain Float Hashtbl Int Json List Mutex
