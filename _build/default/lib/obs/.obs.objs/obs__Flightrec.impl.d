lib/obs/flightrec.ml: Array Causal Clock Float Hashtbl Json List
