lib/obs/export.ml: Clock Fun Hashtbl Json List Metrics Tracer
