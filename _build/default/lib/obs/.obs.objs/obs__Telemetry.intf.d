lib/obs/telemetry.mli:
