lib/obs/telemetry.mli: Metrics
