lib/obs/metrics.ml: Array Float Format Hashtbl Int Json List Printf String
