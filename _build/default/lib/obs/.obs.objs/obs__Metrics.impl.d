lib/obs/metrics.ml: Array Domain Float Format Hashtbl Int Json List Printf String
