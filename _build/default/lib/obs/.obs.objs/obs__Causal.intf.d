lib/obs/causal.mli:
