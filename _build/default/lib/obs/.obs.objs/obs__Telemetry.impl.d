lib/obs/telemetry.ml: Array Buffer Bytes Char Clock Domain Flightrec Float Hashtbl Json List Metrics Printf Profile String
