lib/obs/telemetry.ml: Array Buffer Bytes Char Clock Flightrec Float Hashtbl Json List Metrics Printf Profile String
