(** Elaboration: a checked .umh model becomes a live {!Hybrid.Engine}.

    - streamer declarations become {!Hybrid.Streamer.leaf} values whose
      solver evaluates the model's equations with {!Expr.eval};
    - capsule declarations become {!Umlrt.Capsule} classes whose
      behaviour is the declared statechart (send actions wired to ports);
    - the system block becomes a synthesized root capsule containing the
      capsule instances, with one border relay port per SPort link;
    - flows, relays and capsule relay-DPorts (as junctions) build the
      dataflow graph. *)

exception Elab_error of string

type elaborated = {
  engine : Hybrid.Engine.t;
  capsule_paths : (string * string) list;
    (** capsule instance name -> runtime path *)
  streamer_roles : string list;
}

val elaborate :
  ?signal_latency:Rt.Channel.latency_model -> Typecheck.checked -> elaborated
(** Raises {!Elab_error} when the model has type errors or when an
    engine-level operation rejects a construct. *)

val streamer_of_decl :
  Typecheck.checked -> Ast.streamer_decl -> Hybrid.Streamer.t
(** Build one streamer definition (exposed for tests and codegen). *)
