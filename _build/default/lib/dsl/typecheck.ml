type message = { at : Ast.pos; text : string }

type checked = {
  model : Ast.model;
  flowtypes : (string * Dataflow.Flow_type.t) list;
  protocols : (string * Umlrt.Protocol.t) list;
  error_messages : message list;
  warning_messages : message list;
  errors : string list;
  warnings : string list;
}

let is_ok c = c.errors = []

let render_message m = Printf.sprintf "%d:%d: %s" m.at.Ast.line m.at.Ast.col m.text

let base_of_ast = function
  | Ast.TFloat -> Dataflow.Flow_type.TFloat
  | Ast.TInt -> Dataflow.Flow_type.TInt
  | Ast.TBool -> Dataflow.Flow_type.TBool
  | Ast.TVec n -> Dataflow.Flow_type.TVec n

let flow_type_of c = function
  | None -> Dataflow.Flow_type.float_flow
  | Some name ->
    (match List.assoc_opt name c.flowtypes with
     | Some t -> t
     | None -> Dataflow.Flow_type.float_flow)

let protocol_of c name = List.assoc_opt name c.protocols

let dup_names names =
  let sorted = List.sort String.compare names in
  let rec walk acc = function
    | a :: (b :: _ as rest) ->
      walk (if String.equal a b then a :: acc else acc) rest
    | [ _ ] | [] -> List.sort_uniq String.compare acc
  in
  walk [] sorted

let check model =
  let errors = ref [] in
  let warnings = ref [] in
  let err (p : Ast.pos) fmt =
    Printf.ksprintf (fun s -> errors := { at = p; text = s } :: !errors) fmt
  in
  let warn (p : Ast.pos) fmt =
    Printf.ksprintf (fun s -> warnings := { at = p; text = s } :: !warnings) fmt
  in
  (* ----- flow types ----- *)
  List.iter
    (fun d -> err d.Ast.ft_pos "duplicate flowtype %S" d.Ast.ft_name)
    (List.filter
       (fun d -> List.mem d.Ast.ft_name
           (dup_names (List.map (fun f -> f.Ast.ft_name) model.Ast.m_flowtypes)))
       model.Ast.m_flowtypes);
  let flowtypes =
    List.filter_map
      (fun d ->
         try
           Some (d.Ast.ft_name,
                 Dataflow.Flow_type.record
                   (List.map (fun (n, b) -> (n, base_of_ast b)) d.Ast.ft_fields))
         with Invalid_argument msg ->
           err d.Ast.ft_pos "flowtype %S: %s" d.Ast.ft_name msg;
           None)
      model.Ast.m_flowtypes
  in
  let resolve_ft pos = function
    | None -> Dataflow.Flow_type.float_flow
    | Some name ->
      (match List.assoc_opt name flowtypes with
       | Some t -> t
       | None ->
         err pos "unknown flowtype %S" name;
         Dataflow.Flow_type.float_flow)
  in
  (* ----- protocols ----- *)
  let protocols =
    List.filter_map
      (fun (p : Ast.protocol_decl) ->
         let mk_signal (s : Ast.signal_decl) =
           let payload =
             match s.Ast.sig_payload with
             | None -> None
             | Some ft -> Some (resolve_ft p.Ast.proto_pos (Some ft))
           in
           match payload with
           | Some ty -> Umlrt.Protocol.signal ~payload:ty s.Ast.sig_name
           | None -> Umlrt.Protocol.signal s.Ast.sig_name
         in
         try
           Some (p.Ast.proto_name,
                 Umlrt.Protocol.create p.Ast.proto_name
                   ~incoming:(List.map mk_signal p.Ast.proto_in)
                   ~outgoing:(List.map mk_signal p.Ast.proto_out))
         with Invalid_argument msg ->
           err p.Ast.proto_pos "protocol %S: %s" p.Ast.proto_name msg;
           None)
      model.Ast.m_protocols
  in
  let resolve_proto pos name =
    match List.assoc_opt name protocols with
    | Some p -> Some p
    | None ->
      err pos "unknown protocol %S" name;
      None
  in
  (* ----- streamers ----- *)
  let find_streamer name =
    List.find_opt
      (fun (x : Ast.streamer_decl) -> String.equal x.Ast.s_name name)
      model.Ast.m_streamers
  in
  (* Containment cycles (S contains T contains S) would make flattening
     diverge; reject them up front. *)
  let rec has_cycle trail (s : Ast.streamer_decl) =
    List.exists
      (fun (_, cls) ->
         List.mem cls trail
         ||
         match find_streamer cls with
         | Some sub -> has_cycle (cls :: trail) sub
         | None -> false)
      s.Ast.s_contains
  in
  let check_streamer (s : Ast.streamer_decl) =
    let composite = s.Ast.s_contains <> [] in
    (match s.Ast.s_rate with
     | None when not composite ->
       err s.Ast.s_pos "streamer %S: missing rate (rule R7)" s.Ast.s_name
     | Some r when r <= 0. ->
       err s.Ast.s_pos "streamer %S: rate must be positive (rule R7)" s.Ast.s_name
     | Some _ | None -> ());
    (match s.Ast.s_wcet with
     | Some w when w <= 0. || not (Float.is_finite w) ->
       err s.Ast.s_pos
         "streamer %S: wcet budget must be finite and positive (rule 9)"
         s.Ast.s_name
     | Some _ when composite ->
       err s.Ast.s_pos
         "streamer %S: a composite streamer has no thread of its own; declare \
          wcet on its leaf sub-streamers (rule 9)"
         s.Ast.s_name
     | Some _ | None -> ());
    if composite then begin
      if s.Ast.s_states <> [] || s.Ast.s_eqs <> [] || s.Ast.s_guards <> []
         || s.Ast.s_outputs <> [] || s.Ast.s_strategies <> []
         || s.Ast.s_params <> []
      then
        err s.Ast.s_pos
          "streamer %S: a composite streamer (contains ...) delegates its behaviour to sub-streamers and cannot carry solver items"
          s.Ast.s_name;
      if has_cycle [ s.Ast.s_name ] s then
        err s.Ast.s_pos "streamer %S: containment cycle" s.Ast.s_name;
      List.iter
        (fun (child, cls) ->
           if find_streamer cls = None then
             err s.Ast.s_pos "streamer %S: child %S has unknown streamer class %S (rule R6)"
               s.Ast.s_name child cls)
        s.Ast.s_contains;
      (* Internal flows: direction and the R2 subset rule, viewed from
         inside the composite. *)
      let endpoint_info (ep : Ast.internal_endpoint) ~as_source =
        match ep.Ast.ie_child with
        | None ->
          (match
             List.find_opt
               (fun (d : Ast.dport_decl) -> String.equal d.Ast.dp_name ep.Ast.ie_port)
               s.Ast.s_dports
           with
           | None ->
             err s.Ast.s_pos "streamer %S: unknown border DPort %S" s.Ast.s_name
               ep.Ast.ie_port;
             None
           | Some d ->
             let ok =
               match (d.Ast.dp_dir, as_source) with
               | Some Ast.Din, true | Some Ast.Dout, false -> true
               | _, _ -> false
             in
             if not ok then begin
               err s.Ast.s_pos "streamer %S: border DPort %S used against its direction"
                 s.Ast.s_name ep.Ast.ie_port;
               None
             end
             else Some (resolve_ft d.Ast.dp_pos d.Ast.dp_type))
        | Some child ->
          (match List.assoc_opt child s.Ast.s_contains with
           | None ->
             err s.Ast.s_pos "streamer %S: flow references unknown child %S" s.Ast.s_name
               child;
             None
           | Some cls ->
             (match find_streamer cls with
              | None -> None
              | Some sub ->
                (match
                   List.find_opt
                     (fun (d : Ast.dport_decl) ->
                        String.equal d.Ast.dp_name ep.Ast.ie_port)
                     sub.Ast.s_dports
                 with
                 | None ->
                   err s.Ast.s_pos "streamer %S: child %S has no DPort %S" s.Ast.s_name
                     child ep.Ast.ie_port;
                   None
                 | Some d ->
                   let ok =
                     match (d.Ast.dp_dir, as_source) with
                     | Some Ast.Dout, true | Some Ast.Din, false -> true
                     | _, _ -> false
                   in
                   if not ok then begin
                     err s.Ast.s_pos
                       "streamer %S: child DPort %s.%s used against its direction"
                       s.Ast.s_name child ep.Ast.ie_port;
                     None
                   end
                   else Some (resolve_ft d.Ast.dp_pos d.Ast.dp_type))))
      in
      List.iter
        (fun (src, dst) ->
           match (endpoint_info src ~as_source:true, endpoint_info dst ~as_source:false)
           with
           | Some st_, Some dt ->
             if not (Dataflow.Flow_type.compatible ~src:st_ ~dst:dt) then
               err s.Ast.s_pos
                 "streamer %S: internal flow violates the subset rule (rule R2)"
                 s.Ast.s_name
           | _, _ -> ())
        s.Ast.s_flows
    end
    else begin
      if s.Ast.s_flows <> [] then
        err s.Ast.s_pos "streamer %S: flows require sub-streamers (contains ...)"
          s.Ast.s_name
    end;
    List.iter
      (fun n -> err s.Ast.s_pos "streamer %S: duplicate DPort %S" s.Ast.s_name n)
      (dup_names (List.map (fun d -> d.Ast.dp_name) s.Ast.s_dports));
    List.iter
      (fun (d : Ast.dport_decl) ->
         ignore (resolve_ft d.Ast.dp_pos d.Ast.dp_type);
         if d.Ast.dp_dir = None then
           err d.Ast.dp_pos
             "streamer %S: DPort %S declared relay — relay DPorts belong to capsules"
             s.Ast.s_name d.Ast.dp_name)
      s.Ast.s_dports;
    List.iter
      (fun (sp : Ast.sport_decl) -> ignore (resolve_proto sp.Ast.sp_pos sp.Ast.sp_proto))
      s.Ast.s_sports;
    if s.Ast.s_states = [] && not composite then
      err s.Ast.s_pos "streamer %S: no state variables (a solver needs equations, rule R1)"
        s.Ast.s_name;
    (* Every equation must target a declared state variable. *)
    List.iter
      (fun (v, _) ->
         if not (List.mem_assoc v s.Ast.s_states) then
           err s.Ast.s_pos "streamer %S: equation for undeclared state %S" s.Ast.s_name v)
      s.Ast.s_eqs;
    List.iter
      (fun (v, _) ->
         if not (List.mem_assoc v s.Ast.s_eqs) then
           warn s.Ast.s_pos "streamer %S: state %S has no equation (derivative 0)"
             s.Ast.s_name v)
      s.Ast.s_states;
    (* Name scope for expressions: states, params, input DPorts, t. *)
    let in_ports =
      List.filter_map
        (fun (d : Ast.dport_decl) ->
           if d.Ast.dp_dir = Some Ast.Din then Some d.Ast.dp_name else None)
        s.Ast.s_dports
    in
    let out_ports =
      List.filter_map
        (fun (d : Ast.dport_decl) ->
           if d.Ast.dp_dir = Some Ast.Dout then Some d.Ast.dp_name else None)
        s.Ast.s_dports
    in
    let known =
      ("t" :: List.map fst s.Ast.s_states)
      @ List.map fst s.Ast.s_params @ in_ports
    in
    let check_expr what e ~payload_ok =
      List.iter
        (fun v ->
           if not (List.mem v known) then
             err s.Ast.s_pos "streamer %S: %s references unknown name %S"
               s.Ast.s_name what v)
        (Expr.free_vars e);
      if (not payload_ok) && Expr.uses_payload e then
        err s.Ast.s_pos "streamer %S: %s cannot use 'payload'" s.Ast.s_name what
    in
    List.iter
      (fun (v, e) -> check_expr (Printf.sprintf "equation %s'" v) e ~payload_ok:false)
      s.Ast.s_eqs;
    List.iter
      (fun (o, e) ->
         if not (List.mem o out_ports) then
           err s.Ast.s_pos "streamer %S: output targets unknown out DPort %S"
             s.Ast.s_name o;
         check_expr (Printf.sprintf "output %s" o) e ~payload_ok:false)
      s.Ast.s_outputs;
    List.iter
      (fun o ->
         if (not composite) && not (List.mem_assoc o s.Ast.s_outputs) then
           warn s.Ast.s_pos "streamer %S: out DPort %S is never written"
             s.Ast.s_name o)
      out_ports;
    List.iter
      (fun (g : Ast.guard_decl) ->
         check_expr (Printf.sprintf "guard %s" g.Ast.g_name) g.Ast.g_expr
           ~payload_ok:false;
         (match g.Ast.g_payload with
          | Some pe ->
            check_expr (Printf.sprintf "guard %s payload" g.Ast.g_name) pe
              ~payload_ok:false
          | None -> ());
         match
           List.find_opt
             (fun (sp : Ast.sport_decl) -> String.equal sp.Ast.sp_name g.Ast.g_sport)
             s.Ast.s_sports
         with
         | None ->
           err g.Ast.g_pos "streamer %S: guard %S emits via unknown SPort %S (rule R4)"
             s.Ast.s_name g.Ast.g_name g.Ast.g_sport
         | Some sp ->
           (match List.assoc_opt sp.Ast.sp_proto protocols with
            | Some proto ->
              if not (Umlrt.Protocol.can_send proto ~conjugated:sp.Ast.sp_conjugated
                        g.Ast.g_signal)
              then
                err g.Ast.g_pos
                  "streamer %S: SPort %S cannot send signal %S (rule R4)"
                  s.Ast.s_name g.Ast.g_sport g.Ast.g_signal
            | None -> ()))
      s.Ast.s_guards;
    List.iter
      (fun (st : Ast.strategy_decl) ->
         if not (List.mem_assoc st.Ast.st_param s.Ast.s_params) then
           err st.Ast.st_pos "streamer %S: strategy sets unknown parameter %S"
             s.Ast.s_name st.Ast.st_param;
         List.iter
           (fun v ->
              if not (List.mem v known) then
                err st.Ast.st_pos
                  "streamer %S: strategy expression references unknown name %S"
                  s.Ast.s_name v)
           (Expr.free_vars st.Ast.st_expr);
         let receivable =
           List.exists
             (fun (sp : Ast.sport_decl) ->
                match List.assoc_opt sp.Ast.sp_proto protocols with
                | Some proto ->
                  Umlrt.Protocol.can_receive proto ~conjugated:sp.Ast.sp_conjugated
                    st.Ast.st_signal
                | None -> false)
             s.Ast.s_sports
         in
         if not receivable then
           warn st.Ast.st_pos
             "streamer %S: no SPort can receive signal %S handled by a strategy"
             s.Ast.s_name st.Ast.st_signal)
      s.Ast.s_strategies
  in
  List.iter check_streamer model.Ast.m_streamers;
  (* ----- capsules ----- *)
  let check_capsule (c : Ast.capsule_decl) =
    List.iter
      (fun n -> err c.Ast.c_pos "capsule %S: duplicate port %S" c.Ast.c_name n)
      (dup_names
         (List.map (fun (n, _, _, _) -> n) c.Ast.c_ports
          @ List.map (fun (d : Ast.dport_decl) -> d.Ast.dp_name) c.Ast.c_dports));
    List.iter
      (fun (_, proto, _, _) -> ignore (resolve_proto c.Ast.c_pos proto))
      c.Ast.c_ports;
    List.iter
      (fun (d : Ast.dport_decl) ->
         ignore (resolve_ft d.Ast.dp_pos d.Ast.dp_type);
         if d.Ast.dp_dir <> None then
           err d.Ast.dp_pos
             "capsule %S: DPort %S must be declared relay — capsules never process data (rule R5)"
             c.Ast.c_name d.Ast.dp_name)
      c.Ast.c_dports;
    List.iter
      (fun (signal, period) ->
         if period <= 0. then
           err c.Ast.c_pos "capsule %S: timer %S has non-positive period"
             c.Ast.c_name signal)
      c.Ast.c_timers;
    (* State machine structure. *)
    let rec all_states (st : Ast.state_decl) =
      st.Ast.st_name :: List.concat_map all_states st.Ast.st_children
    in
    let state_names = List.concat_map all_states c.Ast.c_states in
    List.iter
      (fun n -> err c.Ast.c_pos "capsule %S: duplicate state %S" c.Ast.c_name n)
      (dup_names state_names);
    if c.Ast.c_states <> [] then begin
      match c.Ast.c_initial with
      | None -> err c.Ast.c_pos "capsule %S: statemachine has no initial state" c.Ast.c_name
      | Some i ->
        if not (List.exists (fun (s : Ast.state_decl) -> String.equal s.Ast.st_name i)
                  c.Ast.c_states)
        then
          err c.Ast.c_pos "capsule %S: initial %S is not a top-level state" c.Ast.c_name i
    end;
    let rec check_state (st : Ast.state_decl) =
      (match st.Ast.st_initial with
       | Some i when
           not (List.exists (fun (ch : Ast.state_decl) -> String.equal ch.Ast.st_name i)
                  st.Ast.st_children) ->
         err st.Ast.st_pos "capsule %S: state %S: initial %S is not a direct child"
           c.Ast.c_name st.Ast.st_name i
       | Some _ | None -> ());
      if st.Ast.st_children <> [] && st.Ast.st_initial = None then
        err st.Ast.st_pos "capsule %S: composite state %S has no initial child"
          c.Ast.c_name st.Ast.st_name;
      List.iter
        (fun (tr : Ast.transition_decl) ->
           if not (List.mem tr.Ast.tr_target state_names) then
             err tr.Ast.tr_pos "capsule %S: transition targets unknown state %S"
               c.Ast.c_name tr.Ast.tr_target;
           match tr.Ast.tr_send with
           | None -> ()
           | Some (signal, port) ->
             (match
                List.find_opt (fun (n, _, _, _) -> String.equal n port) c.Ast.c_ports
              with
              | None ->
                err tr.Ast.tr_pos "capsule %S: send via unknown port %S" c.Ast.c_name port
              | Some (_, proto, conjugated, _) ->
                (match List.assoc_opt proto protocols with
                 | Some p ->
                   if not (Umlrt.Protocol.can_send p ~conjugated signal) then
                     err tr.Ast.tr_pos "capsule %S: port %S cannot send signal %S"
                       c.Ast.c_name port signal
                 | None -> ())))
        st.Ast.st_transitions;
      List.iter check_state st.Ast.st_children
    in
    List.iter check_state c.Ast.c_states;
    (* Timers that no transition listens to are dead weight. *)
    let rec triggers_of (st : Ast.state_decl) =
      List.map (fun (tr : Ast.transition_decl) -> tr.Ast.tr_trigger)
        st.Ast.st_transitions
      @ List.concat_map triggers_of st.Ast.st_children
    in
    let all_triggers = List.concat_map triggers_of c.Ast.c_states in
    List.iter
      (fun (signal, _) ->
         if not (List.mem signal all_triggers) then
           warn c.Ast.c_pos "capsule %S: timer %S triggers no transition"
             c.Ast.c_name signal)
      c.Ast.c_timers;
    (* Reachability / determinism / dead-transition smells live in
       [Lint.Rules] (codes UMH020-UMH023), which runs the statechart
       analyzer with per-state source spans. *)
  in
  List.iter check_capsule model.Ast.m_capsules;
  (* ----- system ----- *)
  (match model.Ast.m_system with
   | None -> ()
   | Some sys ->
     let inames =
       List.map
         (function
           | Ast.Icapsule { iname; _ } | Ast.Istreamer { iname; _ }
           | Ast.Irelay { iname; _ } -> iname)
         sys.Ast.sys_instances
     in
     List.iter
       (fun n -> err sys.Ast.sys_pos "duplicate instance %S" n)
       (dup_names inames);
     let capsule_inst name =
       List.find_map
         (function
           | Ast.Icapsule { iname; iclass; _ } when String.equal iname name ->
             List.find_opt
               (fun (c : Ast.capsule_decl) -> String.equal c.Ast.c_name iclass)
               model.Ast.m_capsules
           | Ast.Icapsule _ | Ast.Istreamer _ | Ast.Irelay _ -> None)
         sys.Ast.sys_instances
     in
     let streamer_inst name =
       List.find_map
         (function
           | Ast.Istreamer { iname; iclass; _ } when String.equal iname name ->
             List.find_opt
               (fun (s : Ast.streamer_decl) -> String.equal s.Ast.s_name iclass)
               model.Ast.m_streamers
           | Ast.Icapsule _ | Ast.Istreamer _ | Ast.Irelay _ -> None)
         sys.Ast.sys_instances
     in
     let relay_inst name =
       List.find_map
         (function
           | Ast.Irelay { iname; itype; ifanout; _ } when String.equal iname name ->
             Some (itype, ifanout)
           | Ast.Icapsule _ | Ast.Istreamer _ | Ast.Irelay _ -> None)
         sys.Ast.sys_instances
     in
     List.iter
       (function
         | Ast.Icapsule { iclass; ipos; iname = _ } ->
           if not (List.exists
                     (fun (c : Ast.capsule_decl) -> String.equal c.Ast.c_name iclass)
                     model.Ast.m_capsules)
           then err ipos "unknown capsule class %S" iclass
         | Ast.Istreamer { iclass; icontainer; ipos; iname = _ } ->
           if not (List.exists
                     (fun (s : Ast.streamer_decl) -> String.equal s.Ast.s_name iclass)
                     model.Ast.m_streamers)
           then err ipos "unknown streamer class %S" iclass;
           (match icontainer with
            | None -> ()
            | Some container ->
              if streamer_inst container <> None then
                err ipos
                  "streamer instance contained in streamer %S — streamers never contain capsules' peers this way; containment parent must be a capsule (rule R6)"
                  container
              else if capsule_inst container = None then
                err ipos "containment parent %S is not a capsule instance (rule R6)" container)
         | Ast.Irelay { itype; ifanout; ipos; iname = _ } ->
           ignore (resolve_ft ipos itype);
           if ifanout < 2 then
             err ipos "relay fanout must be >= 2 (rule R3)")
       sys.Ast.sys_instances;
     (* Flow endpoints: producer/consumer role plus flow type. *)
     let endpoint_info pos (inst, port) ~as_source =
       match streamer_inst inst with
       | Some s ->
         (match
            List.find_opt
              (fun (d : Ast.dport_decl) -> String.equal d.Ast.dp_name port)
              s.Ast.s_dports
          with
          | None ->
            err pos "streamer instance %S has no DPort %S" inst port;
            None
          | Some d ->
            let ty = resolve_ft d.Ast.dp_pos d.Ast.dp_type in
            (match (d.Ast.dp_dir, as_source) with
             | Some Ast.Dout, true | Some Ast.Din, false -> Some ty
             | Some Ast.Dout, false ->
               err pos "flow destination %s.%s is an output DPort" inst port;
               None
             | Some Ast.Din, true ->
               err pos "flow source %s.%s is an input DPort" inst port;
               None
             | None, _ -> None))
       | None ->
         (match relay_inst inst with
          | Some (ty, fanout) ->
            let ty = resolve_ft pos ty in
            if as_source then begin
              (* must be outK *)
              let ok =
                String.length port > 3
                && String.equal (String.sub port 0 3) "out"
                && (match int_of_string_opt (String.sub port 3 (String.length port - 3)) with
                    | Some k -> k >= 1 && k <= fanout
                    | None -> false)
              in
              if ok then Some ty
              else begin
                err pos "relay %S has no output port %S" inst port;
                None
              end
            end
            else if String.equal port "in" then Some ty
            else begin
              err pos "relay %S has no input port %S" inst port;
              None
            end
          | None ->
            (match capsule_inst inst with
             | Some c ->
               (match
                  List.find_opt
                    (fun (d : Ast.dport_decl) -> String.equal d.Ast.dp_name port)
                    c.Ast.c_dports
                with
                | Some d -> Some (resolve_ft d.Ast.dp_pos d.Ast.dp_type)
                | None ->
                  err pos "capsule instance %S has no DPort %S" inst port;
                  None)
             | None ->
               err pos "unknown instance %S in flow" inst;
               None))
     in
     let driven = Hashtbl.create 16 in
     List.iter
       (function
         | Ast.Cflow { cf_src; cf_dst; cf_pos } ->
           let src_ty = endpoint_info cf_pos cf_src ~as_source:true in
           let dst_ty = endpoint_info cf_pos cf_dst ~as_source:false in
           (match (src_ty, dst_ty) with
            | Some s, Some d ->
              if not (Dataflow.Flow_type.compatible ~src:s ~dst:d) then
                err cf_pos
                  "flow %s.%s -> %s.%s: output type %s is not a subset of input type %s (rule R2)"
                  (fst cf_src) (snd cf_src) (fst cf_dst) (snd cf_dst)
                  (Dataflow.Flow_type.to_string s) (Dataflow.Flow_type.to_string d)
            | _, _ -> ());
           let dkey = Printf.sprintf "%s.%s" (fst cf_dst) (snd cf_dst) in
           if Hashtbl.mem driven dkey then
             err cf_pos "input %s already has a driver" dkey
           else Hashtbl.replace driven dkey ()
         | Ast.Clink { cl_streamer = (si, sp); cl_capsule = (ci, cp); cl_pos } ->
           (match streamer_inst si with
            | None -> err cl_pos "link: %S is not a streamer instance" si
            | Some s ->
              (match
                 List.find_opt
                   (fun (x : Ast.sport_decl) -> String.equal x.Ast.sp_name sp)
                   s.Ast.s_sports
               with
               | None -> err cl_pos "link: streamer %S has no SPort %S (rule R4)" si sp
               | Some sport ->
                 (match capsule_inst ci with
                  | None -> err cl_pos "link: %S is not a capsule instance" ci
                  | Some c ->
                    (match
                       List.find_opt (fun (n, _, _, _) -> String.equal n cp) c.Ast.c_ports
                     with
                     | None -> err cl_pos "link: capsule %S has no port %S" ci cp
                     | Some (_, proto, conjugated, _) ->
                       if not (String.equal proto sport.Ast.sp_proto) then
                         err cl_pos
                           "link %s.%s -- %s.%s: protocols %S and %S differ (rule R4)"
                           si sp ci cp sport.Ast.sp_proto proto;
                       if Bool.equal conjugated sport.Ast.sp_conjugated then
                         err cl_pos
                           "link %s.%s -- %s.%s: exactly one end must be conjugated"
                           si sp ci cp)))))
       sys.Ast.sys_connections);
  let error_messages = List.rev !errors in
  let warning_messages = List.rev !warnings in
  { model; flowtypes; protocols; error_messages; warning_messages;
    errors = List.map render_message error_messages;
    warnings = List.map render_message warning_messages }
