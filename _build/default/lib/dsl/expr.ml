type t =
  | Num of float
  | Var of string
  | Payload
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * t
  | Call of string * t list

let functions =
  [ ("sin", 1); ("cos", 1); ("tan", 1); ("exp", 1); ("log", 1); ("sqrt", 1);
    ("abs", 1); ("sign", 1); ("min", 2); ("max", 2) ]

type scope = {
  var : string -> float option;
  payload : float option;
}

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let apply name args =
  match (name, args) with
  | "sin", [ x ] -> sin x
  | "cos", [ x ] -> cos x
  | "tan", [ x ] -> tan x
  | "exp", [ x ] -> exp x
  | "log", [ x ] -> log x
  | "sqrt", [ x ] -> sqrt x
  | "abs", [ x ] -> Float.abs x
  | "sign", [ x ] -> if x > 0. then 1. else if x < 0. then -1. else 0.
  | "min", [ a; b ] -> Float.min a b
  | "max", [ a; b ] -> Float.max a b
  | _, _ -> err "unknown function %s/%d" name (List.length args)

let rec eval scope = function
  | Num x -> x
  | Var name ->
    (match scope.var name with
     | Some v -> v
     | None -> err "unknown identifier %S" name)
  | Payload ->
    (match scope.payload with
     | Some v -> v
     | None -> err "payload used outside a signal handler")
  | Neg e -> -.eval scope e
  | Add (a, b) -> eval scope a +. eval scope b
  | Sub (a, b) -> eval scope a -. eval scope b
  | Mul (a, b) -> eval scope a *. eval scope b
  | Div (a, b) -> eval scope a /. eval scope b
  | Pow (a, b) -> eval scope a ** eval scope b
  | Call (name, args) -> apply name (List.map (eval scope) args)

let free_vars e =
  let rec collect acc = function
    | Num _ | Payload -> acc
    | Var name -> name :: acc
    | Neg a -> collect acc a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Pow (a, b) ->
      collect (collect acc a) b
    | Call (_, args) -> List.fold_left collect acc args
  in
  List.sort_uniq String.compare (collect [] e)

let rec uses_payload = function
  | Payload -> true
  | Num _ | Var _ -> false
  | Neg a -> uses_payload a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Pow (a, b) ->
    uses_payload a || uses_payload b
  | Call (_, args) -> List.exists uses_payload args

(* Shortest decimal form that parses back to exactly the same float, so
   pretty-printing never changes a model's semantics. *)
let float_to_string x =
  let short = Printf.sprintf "%.12g" x in
  if Float.equal (float_of_string short) x then short
  else Printf.sprintf "%.17g" x

(* Precedence climbing for printing: higher binds tighter. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Num x -> Format.pp_print_string ppf (float_to_string x)
  | Var name -> Format.pp_print_string ppf name
  | Payload -> Format.pp_print_string ppf "payload"
  | Neg a -> paren 3 (fun ppf -> Format.fprintf ppf "-%a" (pp_prec 4) a)
  | Add (a, b) ->
    paren 1 (fun ppf -> Format.fprintf ppf "%a + %a" (pp_prec 1) a (pp_prec 2) b)
  | Sub (a, b) ->
    paren 1 (fun ppf -> Format.fprintf ppf "%a - %a" (pp_prec 1) a (pp_prec 2) b)
  | Mul (a, b) ->
    paren 2 (fun ppf -> Format.fprintf ppf "%a * %a" (pp_prec 2) a (pp_prec 3) b)
  | Div (a, b) ->
    paren 2 (fun ppf -> Format.fprintf ppf "%a / %a" (pp_prec 2) a (pp_prec 3) b)
  | Pow (a, b) ->
    paren 4 (fun ppf -> Format.fprintf ppf "%a ^ %a" (pp_prec 5) a (pp_prec 4) b)
  | Call (name, args) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (pp_prec 0))
      args

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e
