type token =
  | IDENT of string
  | NUMBER of float
  | LBRACE | RBRACE
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LEQ
  | GEQ
  | SEMI | COLON | COMMA | DOT
  | ARROW
  | LINKOP
  | EQUALS
  | PLUS | MINUS | STAR | SLASH | CARET
  | PRIME
  | EOF

type located = {
  token : token;
  line : int;
  col : int;
}

exception Lex_error of string * int * int

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER f -> Printf.sprintf "number %g" f
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LEQ -> "'<='"
  | GEQ -> "'>='"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | ARROW -> "'->'"
  | LINKOP -> "'--'"
  | EQUALS -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | CARET -> "'^'"
  | PRIME -> "\"'\""
  | EOF -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let pos = ref 0 in
  let emit token l c = tokens := { token; line = l; col = c } :: !tokens in
  let advance () =
    (if input.[!pos] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr pos
  in
  let peek k = if !pos + k < n then Some input.[!pos + k] else None in
  while !pos < n do
    let c = input.[!pos] in
    let l = !line and co = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && input.[!pos] <> '\n' do advance () done
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char input.[!pos] do advance () done;
      emit (IDENT (String.sub input start (!pos - start))) l co
    end
    else if is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !pos in
      while !pos < n && (is_digit input.[!pos] || input.[!pos] = '.') do advance () done;
      (* exponent *)
      if !pos < n && (input.[!pos] = 'e' || input.[!pos] = 'E') then begin
        advance ();
        if !pos < n && (input.[!pos] = '+' || input.[!pos] = '-') then advance ();
        while !pos < n && is_digit input.[!pos] do advance () done
      end;
      let text = String.sub input start (!pos - start) in
      match float_of_string_opt text with
      | Some f -> emit (NUMBER f) l co
      | None -> raise (Lex_error (Printf.sprintf "bad number %S" text, l, co))
    end
    else begin
      let two tok = advance (); advance (); emit tok l co in
      let one tok = advance (); emit tok l co in
      match (c, peek 1) with
      | '-', Some '>' -> two ARROW
      | '-', Some '-' -> two LINKOP
      | '<', Some '=' -> two LEQ
      | '>', Some '=' -> two GEQ
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | ',', _ -> one COMMA
      | '.', _ -> one DOT
      | '=', _ -> one EQUALS
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '^', _ -> one CARET
      | '\'', _ -> one PRIME
      | _, _ ->
        raise (Lex_error (Printf.sprintf "unexpected character %C" c, l, co))
    end
  done;
  emit EOF !line !col;
  List.rev !tokens
