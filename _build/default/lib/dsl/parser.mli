(** Recursive-descent parser for the .umh modeling language.

    Grammar sketch (contextual keywords, [//] comments):
    {v
    model Name
    flowtype T { field: float; ... }
    protocol P { in sig1, sig2(T); out sig3; }
    streamer S {
      rate 0.05;  method rk4 0.001;
      dport in u : T;  dport out y;
      sport ctl : P conjugated;
      param k = 1.0;  init x = 0.0;
      eq x' = -k * x + u;
      output y = x;
      guard hi : rising (x - 1.0) emits too_hot via ctl;
      when heater_on set k = payload;
    }
    capsule C {
      port p : P;
      dport relay t : T;
      statemachine {
        initial Idle;
        state Idle { on too_cold -> Heating send heater_on via p; }
        state Heating { ... }
      }
    }
    system {
      capsule ctl : C;  streamer room : S in ctl;
      relay r : T fanout 2;
      flow room.y -> r.in;  link room.ctl -- ctl.p;
    }
    v} *)

exception Parse_error of string * int * int
(** message, line, column *)

val parse : string -> Ast.model
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_expr : string -> Expr.t
(** Parse a standalone expression (for tests and the CLI). *)

val parse_stl : string -> Sigtrace.Stl.formula
(** Parse a textual STL requirement over the traced signal [x], e.g.
    ["always[0,10] (x <= 21.5 and x >= 18.5)"] or
    ["always[30,160] eventually[0,20] x >= 24.5"]. Grammar:
    {v
    formula  := disj ('->' disj)?
    disj     := conj ('or' conj)*
    conj     := prefix ('and' prefix)*
    prefix   := 'not' prefix
              | ('always'|'eventually') '[' num ',' num ']' prefix
              | '(' formula ')'
              | expr ('<='|'>=') expr       -- atoms; 'x' is the signal
    v}
    Used by [umh simulate --verify]. *)
