exception Parse_error of string * int * int

type state = {
  tokens : Lexer.located array;
  mutable index : int;
}

let current st = st.tokens.(st.index)

let fail st fmt =
  let tok = current st in
  Printf.ksprintf
    (fun msg -> raise (Parse_error (msg, tok.Lexer.line, tok.Lexer.col)))
    fmt

let pos st =
  let tok = current st in
  { Ast.line = tok.Lexer.line; col = tok.Lexer.col }

let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let peek st = (current st).Lexer.token

let expect st token =
  if peek st = token then advance st
  else
    fail st "expected %s but found %s" (Lexer.token_to_string token)
      (Lexer.token_to_string (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | other -> fail st "expected an identifier, found %s" (Lexer.token_to_string other)

let keyword st kw =
  match peek st with
  | Lexer.IDENT name when String.equal name kw -> advance st
  | other ->
    fail st "expected keyword %S, found %s" kw (Lexer.token_to_string other)

let at_keyword st kw =
  match peek st with
  | Lexer.IDENT name -> String.equal name kw
  | Lexer.NUMBER _ | Lexer.LBRACE | Lexer.RBRACE | Lexer.LPAREN | Lexer.RPAREN
  | Lexer.LBRACKET | Lexer.RBRACKET | Lexer.LEQ | Lexer.GEQ
  | Lexer.SEMI | Lexer.COLON | Lexer.COMMA | Lexer.DOT | Lexer.ARROW
  | Lexer.LINKOP | Lexer.EQUALS | Lexer.PLUS | Lexer.MINUS | Lexer.STAR
  | Lexer.SLASH | Lexer.CARET | Lexer.PRIME | Lexer.EOF -> false

let rec number st =
  match peek st with
  | Lexer.NUMBER f ->
    advance st;
    f
  | Lexer.MINUS ->
    advance st;
    -.number st
  | other -> fail st "expected a number, found %s" (Lexer.token_to_string other)

(* ---------- expressions ---------- *)

let rec parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Expr.Add (lhs, parse_multiplicative st))
    | Lexer.MINUS ->
      advance st;
      loop (Expr.Sub (lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Expr.Mul (lhs, parse_unary st))
    | Lexer.SLASH ->
      advance st;
      loop (Expr.Div (lhs, parse_unary st))
    | _ -> lhs
  in
  loop lhs

(* Standard precedence: unary minus binds looser than '^'
   (so [-x ^ 2] is [-(x ^ 2)]), while an exponent may itself carry a
   unary minus ([x ^ -2]). *)
and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
    advance st;
    Expr.Neg (parse_unary st)
  | _ -> parse_power st

and parse_power st =
  let base = parse_primary st in
  match peek st with
  | Lexer.CARET ->
    advance st;
    (* right-associative *)
    Expr.Pow (base, parse_unary st)
  | _ -> base

and parse_primary st =
  match peek st with
  | Lexer.NUMBER f ->
    advance st;
    Expr.Num f
  | Lexer.LPAREN ->
    advance st;
    let e = parse_additive st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT "payload" ->
    advance st;
    Expr.Payload
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      let rec args acc =
        let a = parse_additive st in
        match peek st with
        | Lexer.COMMA ->
          advance st;
          args (a :: acc)
        | _ -> List.rev (a :: acc)
      in
      let arguments = if peek st = Lexer.RPAREN then [] else args [] in
      expect st Lexer.RPAREN;
      Expr.Call (name, arguments)
    end
    else Expr.Var name
  | other -> fail st "expected an expression, found %s" (Lexer.token_to_string other)

let parse_expression st = parse_additive st

(* ---------- flow types & protocols ---------- *)

let parse_base_type st =
  match ident st with
  | "float" -> Ast.TFloat
  | "int" -> Ast.TInt
  | "bool" -> Ast.TBool
  | "vec" -> Ast.TVec (int_of_float (number st))
  | other -> fail st "unknown base type %S" other

let parse_flowtype st =
  let p = pos st in
  keyword st "flowtype";
  let name = ident st in
  expect st Lexer.LBRACE;
  let rec fields acc =
    if peek st = Lexer.RBRACE then List.rev acc
    else begin
      let fname = ident st in
      expect st Lexer.COLON;
      let ty = parse_base_type st in
      (match peek st with
       | Lexer.SEMI | Lexer.COMMA -> advance st
       | _ -> ());
      fields ((fname, ty) :: acc)
    end
  in
  let fs = fields [] in
  expect st Lexer.RBRACE;
  { Ast.ft_name = name; ft_fields = fs; ft_pos = p }

let parse_signal st =
  let name = ident st in
  let payload =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let ty = ident st in
      expect st Lexer.RPAREN;
      Some ty
    end
    else None
  in
  { Ast.sig_name = name; sig_payload = payload }

let parse_protocol st =
  let p = pos st in
  keyword st "protocol";
  let name = ident st in
  expect st Lexer.LBRACE;
  let incoming = ref [] in
  let outgoing = ref [] in
  while peek st <> Lexer.RBRACE do
    let dir = ident st in
    let bucket =
      match dir with
      | "in" -> incoming
      | "out" -> outgoing
      | other -> fail st "expected 'in' or 'out' in protocol, found %S" other
    in
    let rec signals () =
      bucket := parse_signal st :: !bucket;
      if peek st = Lexer.COMMA then begin
        advance st;
        signals ()
      end
    in
    signals ();
    expect st Lexer.SEMI
  done;
  expect st Lexer.RBRACE;
  { Ast.proto_name = name; proto_in = List.rev !incoming;
    proto_out = List.rev !outgoing; proto_pos = p }

(* ---------- streamers ---------- *)

let parse_dport st =
  let p = pos st in
  keyword st "dport";
  let dir =
    match ident st with
    | "in" -> Some Ast.Din
    | "out" -> Some Ast.Dout
    | "relay" -> None
    | other -> fail st "expected in/out/relay after dport, found %S" other
  in
  let name = ident st in
  let ty =
    if peek st = Lexer.COLON then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  expect st Lexer.SEMI;
  { Ast.dp_name = name; dp_dir = dir; dp_type = ty; dp_pos = p }

let parse_sport st =
  let p = pos st in
  keyword st "sport";
  let name = ident st in
  expect st Lexer.COLON;
  let proto = ident st in
  let conjugated = at_keyword st "conjugated" in
  if conjugated then advance st;
  expect st Lexer.SEMI;
  { Ast.sp_name = name; sp_proto = proto; sp_conjugated = conjugated; sp_pos = p }

let const_value st e =
  (* Parameters and initial states must be constant. *)
  match Expr.free_vars e with
  | [] when not (Expr.uses_payload e) ->
    (try Expr.eval { Expr.var = (fun _ -> None); payload = None } e
     with Expr.Eval_error msg -> fail st "bad constant: %s" msg)
  | _ -> fail st "expected a constant expression"

let parse_streamer st =
  let p = pos st in
  keyword st "streamer";
  let name = ident st in
  expect st Lexer.LBRACE;
  let rate = ref None in
  let wcet = ref None in
  let method_ = ref None in
  let dports = ref [] in
  let sports = ref [] in
  let params = ref [] in
  let states = ref [] in
  let eqs = ref [] in
  let outputs = ref [] in
  let guards = ref [] in
  let strategies = ref [] in
  let contains = ref [] in
  let flows = ref [] in
  let parse_internal_endpoint () =
    let owner = ident st in
    expect st Lexer.DOT;
    let port = ident st in
    if String.equal owner "self" then { Ast.ie_child = None; ie_port = port }
    else { Ast.ie_child = Some owner; ie_port = port }
  in
  while peek st <> Lexer.RBRACE do
    match peek st with
    | Lexer.IDENT "rate" ->
      advance st;
      rate := Some (number st);
      expect st Lexer.SEMI
    | Lexer.IDENT "wcet" ->
      advance st;
      wcet := Some (number st);
      expect st Lexer.SEMI
    | Lexer.IDENT "method" ->
      advance st;
      (match ident st with
       | "adaptive" -> method_ := Some Ast.Madaptive
       | "implicit" ->
         let step = number st in
         method_ := Some (Ast.Mimplicit step)
       | scheme ->
         let step = number st in
         method_ := Some (Ast.Mfixed (scheme, step)));
      expect st Lexer.SEMI
    | Lexer.IDENT "dport" -> dports := parse_dport st :: !dports
    | Lexer.IDENT "sport" -> sports := parse_sport st :: !sports
    | Lexer.IDENT "param" ->
      advance st;
      let pname = ident st in
      expect st Lexer.EQUALS;
      let e = parse_expression st in
      expect st Lexer.SEMI;
      params := (pname, const_value st e) :: !params
    | Lexer.IDENT "init" ->
      advance st;
      let vname = ident st in
      expect st Lexer.EQUALS;
      let e = parse_expression st in
      expect st Lexer.SEMI;
      states := (vname, const_value st e) :: !states
    | Lexer.IDENT "eq" ->
      advance st;
      let vname = ident st in
      expect st Lexer.PRIME;
      expect st Lexer.EQUALS;
      let e = parse_expression st in
      expect st Lexer.SEMI;
      eqs := (vname, e) :: !eqs
    | Lexer.IDENT "output" ->
      advance st;
      let oname = ident st in
      expect st Lexer.EQUALS;
      let e = parse_expression st in
      expect st Lexer.SEMI;
      outputs := (oname, e) :: !outputs
    | Lexer.IDENT "guard" ->
      advance st;
      let gp = pos st in
      let gname = ident st in
      expect st Lexer.COLON;
      let dir =
        match ident st with
        | "rising" -> Ast.Grising
        | "falling" -> Ast.Gfalling
        | "both" -> Ast.Gboth
        | other -> fail st "expected rising/falling/both, found %S" other
      in
      let e = parse_expression st in
      keyword st "emits";
      let signal = ident st in
      let payload =
        if peek st = Lexer.LPAREN then begin
          advance st;
          let pe = parse_expression st in
          expect st Lexer.RPAREN;
          Some pe
        end
        else None
      in
      keyword st "via";
      let sport = ident st in
      expect st Lexer.SEMI;
      guards :=
        { Ast.g_name = gname; g_dir = dir; g_expr = e; g_signal = signal;
          g_payload = payload; g_sport = sport; g_pos = gp }
        :: !guards
    | Lexer.IDENT "contains" ->
      advance st;
      let child = ident st in
      expect st Lexer.COLON;
      let cls = ident st in
      expect st Lexer.SEMI;
      contains := (child, cls) :: !contains
    | Lexer.IDENT "flow" ->
      advance st;
      let src = parse_internal_endpoint () in
      expect st Lexer.ARROW;
      let dst = parse_internal_endpoint () in
      expect st Lexer.SEMI;
      flows := (src, dst) :: !flows
    | Lexer.IDENT "when" ->
      advance st;
      let sp = pos st in
      let signal = ident st in
      keyword st "set";
      let param = ident st in
      expect st Lexer.EQUALS;
      let e = parse_expression st in
      expect st Lexer.SEMI;
      strategies :=
        { Ast.st_signal = signal; st_param = param; st_expr = e; st_pos = sp }
        :: !strategies
    | other -> fail st "unexpected %s in streamer body" (Lexer.token_to_string other)
  done;
  expect st Lexer.RBRACE;
  { Ast.s_name = name; s_rate = !rate; s_wcet = !wcet; s_method = !method_;
    s_dports = List.rev !dports; s_sports = List.rev !sports;
    s_params = List.rev !params; s_states = List.rev !states;
    s_eqs = List.rev !eqs; s_outputs = List.rev !outputs;
    s_guards = List.rev !guards; s_strategies = List.rev !strategies;
    s_contains = List.rev !contains; s_flows = List.rev !flows;
    s_pos = p }

(* ---------- capsules ---------- *)

let rec parse_state st =
  let p = pos st in
  keyword st "state";
  let name = ident st in
  expect st Lexer.LBRACE;
  let initial = ref None in
  let children = ref [] in
  let transitions = ref [] in
  while peek st <> Lexer.RBRACE do
    match peek st with
    | Lexer.IDENT "initial" ->
      advance st;
      initial := Some (ident st);
      expect st Lexer.SEMI
    | Lexer.IDENT "state" -> children := parse_state st :: !children
    | Lexer.IDENT "on" ->
      advance st;
      let tp = pos st in
      let trigger = ident st in
      expect st Lexer.ARROW;
      let target = ident st in
      let send =
        if at_keyword st "send" then begin
          advance st;
          let signal = ident st in
          keyword st "via";
          let port = ident st in
          Some (signal, port)
        end
        else None
      in
      expect st Lexer.SEMI;
      transitions :=
        { Ast.tr_trigger = trigger; tr_target = target; tr_send = send; tr_pos = tp }
        :: !transitions
    | other -> fail st "unexpected %s in state body" (Lexer.token_to_string other)
  done;
  expect st Lexer.RBRACE;
  { Ast.st_name = name; st_initial = !initial;
    st_children = List.rev !children; st_transitions = List.rev !transitions;
    st_pos = p }

let parse_capsule st =
  let p = pos st in
  keyword st "capsule";
  let name = ident st in
  expect st Lexer.LBRACE;
  let ports = ref [] in
  let dports = ref [] in
  let timers = ref [] in
  let initial = ref None in
  let states = ref [] in
  while peek st <> Lexer.RBRACE do
    match peek st with
    | Lexer.IDENT "timer" ->
      advance st;
      let signal = ident st in
      expect st Lexer.EQUALS;
      let period = number st in
      expect st Lexer.SEMI;
      timers := (signal, period) :: !timers
    | Lexer.IDENT "port" ->
      advance st;
      let pname = ident st in
      expect st Lexer.COLON;
      let proto = ident st in
      let conjugated = at_keyword st "conjugated" in
      if conjugated then advance st;
      let relay = at_keyword st "relay" in
      if relay then advance st;
      expect st Lexer.SEMI;
      ports := (pname, proto, conjugated, relay) :: !ports
    | Lexer.IDENT "dport" -> dports := parse_dport st :: !dports
    | Lexer.IDENT "statemachine" ->
      advance st;
      expect st Lexer.LBRACE;
      while peek st <> Lexer.RBRACE do
        match peek st with
        | Lexer.IDENT "initial" ->
          advance st;
          initial := Some (ident st);
          expect st Lexer.SEMI
        | Lexer.IDENT "state" -> states := parse_state st :: !states
        | other ->
          fail st "unexpected %s in statemachine" (Lexer.token_to_string other)
      done;
      expect st Lexer.RBRACE
    | other -> fail st "unexpected %s in capsule body" (Lexer.token_to_string other)
  done;
  expect st Lexer.RBRACE;
  { Ast.c_name = name; c_ports = List.rev !ports; c_dports = List.rev !dports;
    c_timers = List.rev !timers; c_initial = !initial;
    c_states = List.rev !states; c_pos = p }

(* ---------- system ---------- *)

let parse_qualified st =
  let a = ident st in
  expect st Lexer.DOT;
  let b = ident st in
  (a, b)

let parse_system st =
  let p = pos st in
  keyword st "system";
  expect st Lexer.LBRACE;
  let instances = ref [] in
  let connections = ref [] in
  while peek st <> Lexer.RBRACE do
    match peek st with
    | Lexer.IDENT "capsule" ->
      advance st;
      let ip = pos st in
      let iname = ident st in
      expect st Lexer.COLON;
      let iclass = ident st in
      expect st Lexer.SEMI;
      instances := Ast.Icapsule { iname; iclass; ipos = ip } :: !instances
    | Lexer.IDENT "streamer" ->
      advance st;
      let ip = pos st in
      let iname = ident st in
      expect st Lexer.COLON;
      let iclass = ident st in
      let container =
        if at_keyword st "in" then begin
          advance st;
          Some (ident st)
        end
        else None
      in
      expect st Lexer.SEMI;
      instances :=
        Ast.Istreamer { iname; iclass; icontainer = container; ipos = ip }
        :: !instances
    | Lexer.IDENT "relay" ->
      advance st;
      let ip = pos st in
      let iname = ident st in
      let ty =
        if peek st = Lexer.COLON then begin
          advance st;
          Some (ident st)
        end
        else None
      in
      keyword st "fanout";
      let fanout = int_of_float (number st) in
      expect st Lexer.SEMI;
      instances := Ast.Irelay { iname; itype = ty; ifanout = fanout; ipos = ip }
                   :: !instances
    | Lexer.IDENT "flow" ->
      advance st;
      let cp = pos st in
      let src = parse_qualified st in
      expect st Lexer.ARROW;
      let dst = parse_qualified st in
      expect st Lexer.SEMI;
      connections := Ast.Cflow { cf_src = src; cf_dst = dst; cf_pos = cp }
                     :: !connections
    | Lexer.IDENT "link" ->
      advance st;
      let cp = pos st in
      let a = parse_qualified st in
      expect st Lexer.LINKOP;
      let b = parse_qualified st in
      expect st Lexer.SEMI;
      connections := Ast.Clink { cl_streamer = a; cl_capsule = b; cl_pos = cp }
                     :: !connections
    | other -> fail st "unexpected %s in system body" (Lexer.token_to_string other)
  done;
  expect st Lexer.RBRACE;
  { Ast.sys_instances = List.rev !instances;
    sys_connections = List.rev !connections; sys_pos = p }

let parse input =
  let st = { tokens = Array.of_list (Lexer.tokenize input); index = 0 } in
  keyword st "model";
  let name = ident st in
  let flowtypes = ref [] in
  let protocols = ref [] in
  let streamers = ref [] in
  let capsules = ref [] in
  let system = ref None in
  while peek st <> Lexer.EOF do
    match peek st with
    | Lexer.IDENT "flowtype" -> flowtypes := parse_flowtype st :: !flowtypes
    | Lexer.IDENT "protocol" -> protocols := parse_protocol st :: !protocols
    | Lexer.IDENT "streamer" -> streamers := parse_streamer st :: !streamers
    | Lexer.IDENT "capsule" -> capsules := parse_capsule st :: !capsules
    | Lexer.IDENT "system" ->
      if !system <> None then fail st "duplicate system block";
      system := Some (parse_system st)
    | other -> fail st "unexpected %s at top level" (Lexer.token_to_string other)
  done;
  { Ast.m_name = name; m_flowtypes = List.rev !flowtypes;
    m_protocols = List.rev !protocols; m_streamers = List.rev !streamers;
    m_capsules = List.rev !capsules; m_system = !system }

let parse_expr input =
  let st = { tokens = Array.of_list (Lexer.tokenize input); index = 0 } in
  let e = parse_expression st in
  (match peek st with
   | Lexer.EOF -> ()
   | other -> fail st "trailing %s after expression" (Lexer.token_to_string other));
  e

(* ---------- textual STL (for umh simulate --verify) ---------- *)

let stl_scope v =
  { Expr.var = (fun name -> if String.equal name "x" then Some v else None);
    payload = None }

let parse_stl_atom st =
  let e1 = parse_expression st in
  let finish op_name rho =
    let label =
      Format.asprintf "%a %s" Expr.pp e1 op_name
    in
    (label, rho)
  in
  match peek st with
  | Lexer.LEQ ->
    advance st;
    let e2 = parse_expression st in
    let label, rho =
      finish
        (Format.asprintf "<= %a" Expr.pp e2)
        (fun v -> Expr.eval (stl_scope v) e2 -. Expr.eval (stl_scope v) e1)
    in
    Sigtrace.Stl.Pred (label, rho)
  | Lexer.GEQ ->
    advance st;
    let e2 = parse_expression st in
    let label, rho =
      finish
        (Format.asprintf ">= %a" Expr.pp e2)
        (fun v -> Expr.eval (stl_scope v) e1 -. Expr.eval (stl_scope v) e2)
    in
    Sigtrace.Stl.Pred (label, rho)
  | other -> fail st "expected '<=' or '>=' in STL atom, found %s"
               (Lexer.token_to_string other)

let rec parse_stl_prefix st =
  match peek st with
  | Lexer.IDENT "not" ->
    advance st;
    Sigtrace.Stl.Not (parse_stl_prefix st)
  | Lexer.IDENT (("always" | "eventually") as which) ->
    advance st;
    expect st Lexer.LBRACKET;
    let a = number st in
    expect st Lexer.COMMA;
    let b = number st in
    expect st Lexer.RBRACKET;
    let inner = parse_stl_prefix st in
    if String.equal which "always" then Sigtrace.Stl.Always (a, b, inner)
    else Sigtrace.Stl.Eventually (a, b, inner)
  | Lexer.LPAREN ->
    (* Could be a parenthesized formula or a parenthesized expression that
       starts an atom — try the formula first, backtrack on failure. *)
    let saved = st.index in
    (try
       advance st;
       let f = parse_stl_formula st in
       expect st Lexer.RPAREN;
       f
     with Parse_error _ ->
       st.index <- saved;
       parse_stl_atom st)
  | _ -> parse_stl_atom st

and parse_stl_conj st =
  let lhs = parse_stl_prefix st in
  let rec loop lhs =
    match peek st with
    | Lexer.IDENT "and" ->
      advance st;
      loop (Sigtrace.Stl.And (lhs, parse_stl_prefix st))
    | _ -> lhs
  in
  loop lhs

and parse_stl_disj st =
  let lhs = parse_stl_conj st in
  let rec loop lhs =
    match peek st with
    | Lexer.IDENT "or" ->
      advance st;
      loop (Sigtrace.Stl.Or (lhs, parse_stl_conj st))
    | _ -> lhs
  in
  loop lhs

and parse_stl_formula st =
  let lhs = parse_stl_disj st in
  match peek st with
  | Lexer.ARROW ->
    advance st;
    Sigtrace.Stl.Implies (lhs, parse_stl_disj st)
  | _ -> lhs

let parse_stl input =
  let st = { tokens = Array.of_list (Lexer.tokenize input); index = 0 } in
  let f = parse_stl_formula st in
  (match peek st with
   | Lexer.EOF -> ()
   | other -> fail st "trailing %s after STL formula" (Lexer.token_to_string other));
  f
