(** Pretty-printer for .umh models: output re-parses to an equivalent
    AST (round-trip property-tested). *)

val print_model : Ast.model -> string

val pp_model : Format.formatter -> Ast.model -> unit
