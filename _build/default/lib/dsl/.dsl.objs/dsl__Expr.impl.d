lib/dsl/expr.ml: Float Format List Printf String
