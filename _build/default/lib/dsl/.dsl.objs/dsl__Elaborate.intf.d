lib/dsl/elaborate.mli: Ast Hybrid Rt Typecheck
