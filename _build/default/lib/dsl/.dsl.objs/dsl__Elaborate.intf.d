lib/dsl/elaborate.mli: Ast Hybrid Rt Statechart Typecheck
