lib/dsl/parser.mli: Ast Expr Sigtrace
