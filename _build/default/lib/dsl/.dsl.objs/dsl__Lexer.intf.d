lib/dsl/lexer.mli:
