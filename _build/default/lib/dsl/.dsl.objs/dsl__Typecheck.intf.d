lib/dsl/typecheck.mli: Ast Dataflow Umlrt
