lib/dsl/typecheck.ml: Ast Bool Dataflow Expr Hashtbl List Printf String Umlrt
