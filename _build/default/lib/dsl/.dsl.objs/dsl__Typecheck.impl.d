lib/dsl/typecheck.ml: Ast Bool Dataflow Expr Float Hashtbl List Printf String Umlrt
