lib/dsl/parser.ml: Array Ast Expr Format Lexer List Printf Sigtrace String
