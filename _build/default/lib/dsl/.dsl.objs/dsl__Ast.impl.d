lib/dsl/ast.ml: Expr
