lib/dsl/expr.mli: Format
