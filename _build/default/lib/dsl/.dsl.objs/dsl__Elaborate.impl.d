lib/dsl/elaborate.ml: Array Ast Dataflow Expr Hybrid List Ode Option Printf Statechart String Typecheck Umlrt
