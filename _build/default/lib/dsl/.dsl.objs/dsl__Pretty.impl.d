lib/dsl/pretty.ml: Ast Expr Format List Printf
