(** Arithmetic expressions of the .umh modeling language — used for
    equations, guards, outputs and strategy assignments. *)

type t =
  | Num of float
  | Var of string          (** state variable, parameter, input or [t] *)
  | Payload               (** the numeric payload of the triggering signal *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * t
  | Call of string * t list  (** sin, cos, tan, exp, log, sqrt, abs, min, max, sign *)

val functions : (string * int) list
(** Supported function names with arity. *)

type scope = {
  var : string -> float option;   (** resolve an identifier *)
  payload : float option;         (** [None] outside strategy handlers *)
}

exception Eval_error of string

val eval : scope -> t -> float
(** Raises {!Eval_error} on unknown identifiers/functions or payload use
    without a payload. *)

val free_vars : t -> string list
(** Identifiers referenced, sorted, without duplicates. *)

val uses_payload : t -> bool

val pp : Format.formatter -> t -> unit
(** Re-printable concrete syntax (fully parenthesized where needed). *)

val to_string : t -> string
