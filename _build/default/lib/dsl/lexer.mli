(** Hand-written lexer for the .umh language. *)

type token =
  | IDENT of string
  | NUMBER of float
  | LBRACE | RBRACE
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LEQ         (** <= *)
  | GEQ         (** >= *)
  | SEMI | COLON | COMMA | DOT
  | ARROW       (** -> *)
  | LINKOP      (** -- *)
  | EQUALS
  | PLUS | MINUS | STAR | SLASH | CARET
  | PRIME       (** ' *)
  | EOF

type located = {
  token : token;
  line : int;
  col : int;
}

exception Lex_error of string * int * int
(** message, line, column *)

val tokenize : string -> located list
(** Whole-input tokenization; [//] comments run to end of line. The
    result always ends with an [EOF] token. *)

val token_to_string : token -> string
