type t = {
  mass : float;
  length : float;
  damping : float;
  gravity : float;
}

let default = { mass = 0.2; length = 0.5; damping = 0.01; gravity = 9.81 }

let create ?(mass = default.mass) ?(length = default.length)
    ?(damping = default.damping) ?(gravity = default.gravity) () =
  if mass <= 0. then invalid_arg "Plant.Pendulum.create: mass must be positive";
  if length <= 0. then invalid_arg "Plant.Pendulum.create: length must be positive";
  if gravity <= 0. then invalid_arg "Plant.Pendulum.create: gravity must be positive";
  if damping < 0. then invalid_arg "Plant.Pendulum.create: negative damping";
  { mass; length; damping; gravity }

let inertia p = p.mass *. p.length *. p.length

let system p ~torque =
  Ode.System.create ~dim:2 (fun time y ->
      let theta = y.(0) in
      let omega = y.(1) in
      let u = torque time y in
      [| omega;
         (-.(p.gravity /. p.length) *. sin theta)
         -. (p.damping /. inertia p *. omega)
         +. (u /. inertia p) |])

let system_free p = system p ~torque:(fun _ _ -> 0.)

let linearized p ~upright =
  (* d(sin theta)/dtheta at 0 is +1, at pi is -1. *)
  let sign = if upright then 1. else -1. in
  [| [| 0.; 1. |];
     [| sign *. (p.gravity /. p.length); -.(p.damping /. inertia p) |] |]

let small_angle_solution p ~theta0 time =
  if p.damping <> 0. then
    invalid_arg "Plant.Pendulum.small_angle_solution: damping must be 0";
  let omega_n = sqrt (p.gravity /. p.length) in
  theta0 *. cos (omega_n *. time)

let energy p y =
  let theta = y.(0) in
  let omega = y.(1) in
  let kinetic = 0.5 *. inertia p *. omega *. omega in
  let potential = p.mass *. p.gravity *. p.length *. (1. -. cos theta) in
  kinetic +. potential
