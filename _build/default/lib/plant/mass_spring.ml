type t = {
  mass : float;
  stiffness : float;
  damping : float;
}

let default = { mass = 1.0; stiffness = 40.0; damping = 2.0 }

let create ?(mass = default.mass) ?(stiffness = default.stiffness)
    ?(damping = default.damping) () =
  if mass <= 0. then invalid_arg "Plant.Mass_spring.create: mass must be positive";
  if stiffness <= 0. then invalid_arg "Plant.Mass_spring.create: stiffness must be positive";
  if damping < 0. then invalid_arg "Plant.Mass_spring.create: negative damping";
  { mass; stiffness; damping }

let system p ~force =
  Ode.System.create ~dim:2 (fun time y ->
      let x = y.(0) in
      let v = y.(1) in
      let f = force time y in
      [| v; ((-.p.stiffness *. x) -. (p.damping *. v) +. f) /. p.mass |])

let system_free p = system p ~force:(fun _ _ -> 0.)

let natural_frequency p = sqrt (p.stiffness /. p.mass)

let damping_ratio p = p.damping /. (2. *. sqrt (p.stiffness *. p.mass))

let free_response p ~x0 ~v0 time =
  let wn = natural_frequency p in
  let zeta = damping_ratio p in
  if zeta < 1. -. 1e-12 then begin
    let wd = wn *. sqrt (1. -. (zeta *. zeta)) in
    let a = x0 in
    let b = (v0 +. (zeta *. wn *. x0)) /. wd in
    exp (-.zeta *. wn *. time) *. ((a *. cos (wd *. time)) +. (b *. sin (wd *. time)))
  end
  else if zeta <= 1. +. 1e-12 then begin
    (* Critically damped: x = (a + b t) e^{-wn t}. *)
    let a = x0 in
    let b = v0 +. (wn *. x0) in
    (a +. (b *. time)) *. exp (-.wn *. time)
  end
  else begin
    let s = wn *. sqrt ((zeta *. zeta) -. 1.) in
    let r1 = (-.zeta *. wn) +. s in
    let r2 = (-.zeta *. wn) -. s in
    let c2 = ((r1 *. x0) -. v0) /. (r1 -. r2) in
    let c1 = x0 -. c2 in
    (c1 *. exp (r1 *. time)) +. (c2 *. exp (r2 *. time))
  end
