type t = {
  tank_area : float;
  outlet_area : float;
  gravity : float;
  max_level : float;
}

let default =
  { tank_area = 1.0; outlet_area = 0.01; gravity = 9.81; max_level = 2.0 }

let create ?(tank_area = default.tank_area) ?(outlet_area = default.outlet_area)
    ?(gravity = default.gravity) ?(max_level = default.max_level) () =
  if tank_area <= 0. then invalid_arg "Plant.Water_tank.create: tank area must be positive";
  if outlet_area < 0. then invalid_arg "Plant.Water_tank.create: negative outlet area";
  if gravity <= 0. then invalid_arg "Plant.Water_tank.create: gravity must be positive";
  if max_level <= 0. then invalid_arg "Plant.Water_tank.create: max level must be positive";
  { tank_area; outlet_area; gravity; max_level }

let outflow p ~level =
  let h = Float.max 0. level in
  p.outlet_area *. sqrt (2. *. p.gravity *. h)

let system p ~inflow =
  Ode.System.create ~dim:1 (fun time y ->
      let level = y.(0) in
      let q_in = Float.max 0. (inflow time y) in
      let dh = (q_in -. outflow p ~level) /. p.tank_area in
      (* Empty tank cannot drain further; the derivative clamps at 0. *)
      if level <= 0. && dh < 0. then [| 0. |] else [| dh |])

let system_const p ~inflow = system p ~inflow:(fun _ _ -> inflow)

let equilibrium_level p ~inflow =
  if p.outlet_area = 0. then infinity
  else begin
    let q = Float.max 0. inflow in
    let v = q /. p.outlet_area in
    v *. v /. (2. *. p.gravity)
  end
