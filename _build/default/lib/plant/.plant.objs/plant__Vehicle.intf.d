lib/plant/vehicle.mli: Ode
