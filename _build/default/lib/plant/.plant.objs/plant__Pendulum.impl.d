lib/plant/pendulum.ml: Array Ode
