lib/plant/thermal.ml: Array Float Ode
