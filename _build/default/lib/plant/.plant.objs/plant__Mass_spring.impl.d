lib/plant/mass_spring.ml: Array Ode
