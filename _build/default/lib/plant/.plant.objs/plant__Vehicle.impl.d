lib/plant/vehicle.ml: Array Float Ode
