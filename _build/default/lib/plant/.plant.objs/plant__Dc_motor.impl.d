lib/plant/dc_motor.ml: Array Ode
