lib/plant/water_tank.ml: Array Float Ode
