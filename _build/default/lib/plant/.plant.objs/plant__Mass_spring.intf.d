lib/plant/mass_spring.mli: Ode
