lib/plant/pendulum.mli: Ode
