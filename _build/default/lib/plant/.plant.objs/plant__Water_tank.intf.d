lib/plant/water_tank.mli: Ode
