lib/plant/thermal.mli: Ode
