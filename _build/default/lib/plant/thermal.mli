(** First-order thermal plant: a heated room.

    State [| temperature |] (deg C); dynamics
    [T' = -(T - ambient)/tau + (power/capacity) * u] where [u] in [0,1]
    is the heater command. The classic thermostat plant. *)

type t = {
  ambient : float;       (** deg C *)
  time_constant : float; (** s *)
  heater_power : float;  (** W *)
  capacity : float;      (** J/K *)
}

val default : t
val create :
  ?ambient:float -> ?time_constant:float -> ?heater_power:float
  -> ?capacity:float -> unit -> t

val system : t -> heater:(float -> float array -> float) -> Ode.System.t
(** [heater t state] should return the duty command in [0,1] (clamped). *)

val system_const : t -> duty:float -> Ode.System.t

val analytic_const : t -> duty:float -> t0_temp:float -> float -> float
(** Exact solution under a constant duty cycle — the reference for the
    accuracy experiment E1. *)

val equilibrium : t -> duty:float -> float
(** Steady-state temperature under a constant duty cycle. *)
