(** Mass–spring–damper.

    State [| position; velocity |]; dynamics
    [x'' = (-k x - c x' + force)/m]. The underdamped free response has a
    closed form used as an accuracy reference. *)

type t = {
  mass : float;
  stiffness : float;  (** k, N/m *)
  damping : float;    (** c, N s/m *)
}

val default : t
val create : ?mass:float -> ?stiffness:float -> ?damping:float -> unit -> t

val system : t -> force:(float -> float array -> float) -> Ode.System.t
val system_free : t -> Ode.System.t

val natural_frequency : t -> float
val damping_ratio : t -> float

val free_response : t -> x0:float -> v0:float -> float -> float
(** Analytic position at time [t] of the free response (any damping
    regime: under-, critically- or over-damped). *)
