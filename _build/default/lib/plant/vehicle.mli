(** Longitudinal vehicle dynamics for cruise control.

    State [| speed |] (m/s); dynamics
    [v' = (drive_force - 0.5 rho Cd A v^2 - m g Cr - m g sin(grade))/m],
    with speed clamped at 0 (no reversing under drag). *)

type t = {
  mass : float;          (** kg *)
  drag_coeff : float;    (** Cd *)
  frontal_area : float;  (** m^2 *)
  air_density : float;   (** kg/m^3 *)
  rolling_coeff : float; (** Cr *)
  gravity : float;
}

val default : t
(** A mid-size car: 1500 kg, Cd 0.32, A 2.2 m^2. *)

val create :
  ?mass:float -> ?drag_coeff:float -> ?frontal_area:float -> ?air_density:float
  -> ?rolling_coeff:float -> ?gravity:float -> unit -> t

val system :
  t -> drive_force:(float -> float array -> float)
  -> ?grade:(float -> float)  (** road grade angle in rad, by time *)
  -> unit -> Ode.System.t

val drag_force : t -> speed:float -> float
val rolling_force : t -> float

val force_for_speed : t -> speed:float -> float
(** Drive force that holds the given speed on flat road. *)

val top_speed : t -> drive_force:float -> float
(** Equilibrium speed on flat road under the constant force. *)
