type t = {
  mass : float;
  drag_coeff : float;
  frontal_area : float;
  air_density : float;
  rolling_coeff : float;
  gravity : float;
}

let default =
  { mass = 1500.; drag_coeff = 0.32; frontal_area = 2.2; air_density = 1.225;
    rolling_coeff = 0.012; gravity = 9.81 }

let create ?(mass = default.mass) ?(drag_coeff = default.drag_coeff)
    ?(frontal_area = default.frontal_area) ?(air_density = default.air_density)
    ?(rolling_coeff = default.rolling_coeff) ?(gravity = default.gravity) () =
  if mass <= 0. then invalid_arg "Plant.Vehicle.create: mass must be positive";
  if drag_coeff < 0. || frontal_area <= 0. || air_density <= 0. then
    invalid_arg "Plant.Vehicle.create: invalid aerodynamic parameters";
  if rolling_coeff < 0. then invalid_arg "Plant.Vehicle.create: negative rolling coefficient";
  if gravity <= 0. then invalid_arg "Plant.Vehicle.create: gravity must be positive";
  { mass; drag_coeff; frontal_area; air_density; rolling_coeff; gravity }

let drag_force p ~speed =
  0.5 *. p.air_density *. p.drag_coeff *. p.frontal_area *. speed *. speed

let rolling_force p = p.mass *. p.gravity *. p.rolling_coeff

let system p ~drive_force ?(grade = fun _ -> 0.) () =
  Ode.System.create ~dim:1 (fun time y ->
      let v = Float.max 0. y.(0) in
      let f = drive_force time y in
      let slope = p.mass *. p.gravity *. sin (grade time) in
      let dv = (f -. drag_force p ~speed:v -. rolling_force p -. slope) /. p.mass in
      if y.(0) <= 0. && dv < 0. then [| 0. |] else [| dv |])

let force_for_speed p ~speed = drag_force p ~speed +. rolling_force p

let top_speed p ~drive_force =
  let available = drive_force -. rolling_force p in
  if available <= 0. then 0.
  else
    sqrt (available /. (0.5 *. p.air_density *. p.drag_coeff *. p.frontal_area))
