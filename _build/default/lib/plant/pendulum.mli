(** Pendulum with viscous friction and a torque input.

    State [| theta; omega |] (rad, rad/s); dynamics
    [theta'' = -(g/l) sin theta - (b/(m l^2)) theta' + u/(m l^2)].
    The inverted equilibrium is [theta = pi]. *)

type t = {
  mass : float;        (** kg *)
  length : float;      (** m *)
  damping : float;     (** N m s / rad *)
  gravity : float;     (** m/s^2 *)
}

val default : t
(** 0.2 kg, 0.5 m, light damping, g = 9.81. *)

val create : ?mass:float -> ?length:float -> ?damping:float -> ?gravity:float -> unit -> t
(** Raises [Invalid_argument] on non-positive mass/length/gravity or
    negative damping. *)

val system : t -> torque:(float -> float array -> float) -> Ode.System.t
(** Nonlinear dynamics; [torque t state] is the control input. *)

val system_free : t -> Ode.System.t
(** Zero input. *)

val linearized : t -> upright:bool -> float array array
(** Jacobian at hanging ([theta = 0]) or upright ([theta = pi])
    equilibrium — the A matrix used by state-feedback design. *)

val small_angle_solution : t -> theta0:float -> float -> float
(** Analytic angle at time [t] of the {e undamped, linearized} hanging
    pendulum released at rest from [theta0]: used as a reference in
    accuracy experiments (damping must be 0). Raises [Invalid_argument]
    if the plant has damping. *)

val energy : t -> float array -> float
(** Mechanical energy (taking the hanging position as zero potential) —
    conserved by the free undamped pendulum, a good property-test
    invariant. *)
