type t = {
  ambient : float;
  time_constant : float;
  heater_power : float;
  capacity : float;
}

let default =
  { ambient = 15.; time_constant = 1800.; heater_power = 2000.; capacity = 200_000. }

let create ?(ambient = default.ambient) ?(time_constant = default.time_constant)
    ?(heater_power = default.heater_power) ?(capacity = default.capacity) () =
  if time_constant <= 0. then invalid_arg "Plant.Thermal.create: time constant must be positive";
  if heater_power < 0. then invalid_arg "Plant.Thermal.create: negative heater power";
  if capacity <= 0. then invalid_arg "Plant.Thermal.create: capacity must be positive";
  { ambient; time_constant; heater_power; capacity }

let clamp01 u = Float.max 0. (Float.min 1. u)

let system p ~heater =
  Ode.System.create ~dim:1 (fun time y ->
      let temp = y.(0) in
      let u = clamp01 (heater time y) in
      [| (-.(temp -. p.ambient) /. p.time_constant)
         +. (p.heater_power /. p.capacity *. u) |])

let system_const p ~duty = system p ~heater:(fun _ _ -> duty)

let equilibrium p ~duty =
  p.ambient +. (clamp01 duty *. p.heater_power *. p.time_constant /. p.capacity)

let analytic_const p ~duty ~t0_temp time =
  let t_inf = equilibrium p ~duty in
  t_inf +. ((t0_temp -. t_inf) *. exp (-.time /. p.time_constant))
