type t = {
  inertia : float;
  damping : float;
  kt : float;
  ke : float;
  resistance : float;
  inductance : float;
}

let default =
  { inertia = 1e-3; damping = 1e-4; kt = 0.05; ke = 0.05;
    resistance = 1.; inductance = 0.5e-3 }

let create ?(inertia = default.inertia) ?(damping = default.damping)
    ?(kt = default.kt) ?(ke = default.ke) ?(resistance = default.resistance)
    ?(inductance = default.inductance) () =
  if inertia <= 0. then invalid_arg "Plant.Dc_motor.create: inertia must be positive";
  if damping < 0. then invalid_arg "Plant.Dc_motor.create: negative damping";
  if kt <= 0. || ke <= 0. then invalid_arg "Plant.Dc_motor.create: constants must be positive";
  if resistance <= 0. then invalid_arg "Plant.Dc_motor.create: resistance must be positive";
  if inductance <= 0. then invalid_arg "Plant.Dc_motor.create: inductance must be positive";
  { inertia; damping; kt; ke; resistance; inductance }

let system p ~voltage ?(load = fun _ _ -> 0.) () =
  Ode.System.create ~dim:2 (fun time y ->
      let omega = y.(0) in
      let i = y.(1) in
      let v = voltage time y in
      let tau_load = load time y in
      [| ((p.kt *. i) -. (p.damping *. omega) -. tau_load) /. p.inertia;
         (v -. (p.resistance *. i) -. (p.ke *. omega)) /. p.inductance |])

let system_const p ~voltage = system p ~voltage:(fun _ _ -> voltage) ()

let steady_state p ~voltage =
  let denom = (p.resistance *. p.damping) +. (p.kt *. p.ke) in
  let omega = p.kt *. voltage /. denom in
  let current = p.damping *. voltage /. denom in
  (omega, current)

let a_matrix p =
  [| [| -.(p.damping /. p.inertia); p.kt /. p.inertia |];
     [| -.(p.ke /. p.inductance); -.(p.resistance /. p.inductance) |] |]
