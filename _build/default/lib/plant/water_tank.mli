(** Gravity-drained water tank with a controllable inflow.

    State [| level |] (m); dynamics (Torricelli)
    [h' = (q_in - outlet_area * sqrt(2 g h)) / tank_area], with the level
    clamped at 0 (the tank cannot go negative). The nonlinearity and the
    non-smooth empty-tank corner exercise the solvers. *)

type t = {
  tank_area : float;    (** m^2 *)
  outlet_area : float;  (** m^2 *)
  gravity : float;      (** m/s^2 *)
  max_level : float;    (** overflow level, m *)
}

val default : t
val create :
  ?tank_area:float -> ?outlet_area:float -> ?gravity:float -> ?max_level:float
  -> unit -> t

val system : t -> inflow:(float -> float array -> float) -> Ode.System.t
(** [inflow t state] in m^3/s (negative inflow is clamped to 0). *)

val system_const : t -> inflow:float -> Ode.System.t

val equilibrium_level : t -> inflow:float -> float
(** Level at which outflow balances the constant inflow. *)

val outflow : t -> level:float -> float
