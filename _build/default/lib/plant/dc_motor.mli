(** Brushed DC motor, electrical + mechanical dynamics.

    State [| omega; current |] (rad/s, A); dynamics
    [omega' = (kt*i - b*omega - load)/J],
    [i' = (v - R*i - ke*omega)/L]. *)

type t = {
  inertia : float;     (** J, kg m^2 *)
  damping : float;     (** b, N m s *)
  kt : float;          (** torque constant, N m / A *)
  ke : float;          (** back-EMF constant, V s / rad *)
  resistance : float;  (** R, ohm *)
  inductance : float;  (** L, H *)
}

val default : t
val create :
  ?inertia:float -> ?damping:float -> ?kt:float -> ?ke:float
  -> ?resistance:float -> ?inductance:float -> unit -> t

val system :
  t -> voltage:(float -> float array -> float)
  -> ?load:(float -> float array -> float) -> unit -> Ode.System.t

val system_const : t -> voltage:float -> Ode.System.t

val steady_state : t -> voltage:float -> float * float
(** (omega, current) equilibrium under constant voltage, zero load. *)

val a_matrix : t -> float array array
(** The linear state matrix (the plant is linear) — for LQR/pole tests. *)
