lib/statechart/machine.mli: Event
