lib/statechart/event.ml: Dataflow Format
