lib/statechart/instance.mli: Event Machine
