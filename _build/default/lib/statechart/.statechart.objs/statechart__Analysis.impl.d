lib/statechart/analysis.ml: Format Hashtbl List Machine Queue String
