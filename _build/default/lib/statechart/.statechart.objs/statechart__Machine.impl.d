lib/statechart/machine.ml: Event Hashtbl List Printf String
