lib/statechart/instance.ml: Event Hashtbl List Machine String
