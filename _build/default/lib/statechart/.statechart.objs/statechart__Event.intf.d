lib/statechart/event.mli: Dataflow Format
