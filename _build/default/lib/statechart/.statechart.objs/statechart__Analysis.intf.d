lib/statechart/analysis.mli: Format Machine
