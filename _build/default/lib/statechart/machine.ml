type 'ctx guard = 'ctx -> Event.t -> bool
type 'ctx action = 'ctx -> Event.t -> unit

type 'ctx transition = {
  src : string;
  dst : string option;
  trigger : string;
  guard : 'ctx guard option;
  action : 'ctx action option;
}

type 'ctx state = {
  parent : string option;
  entry : ('ctx -> unit) option;
  exit : ('ctx -> unit) option;
  history : bool;
  mutable initial : string option;
}

type 'ctx t = {
  name : string;
  states : (string, 'ctx state) Hashtbl.t;
  mutable order : string list;       (* reverse declaration order *)
  mutable transitions : 'ctx transition list;  (* reverse declaration order *)
  mutable top_initial : string option;
}

let create name =
  { name; states = Hashtbl.create 16; order = []; transitions = [];
    top_initial = None }

let name t = t.name

let find t s = Hashtbl.find_opt t.states s

let require t s context =
  match find t s with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Statechart.Machine.%s: unknown state %S" context s)

let add_state t ?parent ?entry ?exit ?(history = false) state_name =
  if Hashtbl.mem t.states state_name then
    invalid_arg (Printf.sprintf "Statechart.Machine.add_state: duplicate state %S" state_name);
  (match parent with
   | Some p -> ignore (require t p "add_state(parent)")
   | None -> ());
  Hashtbl.replace t.states state_name
    { parent; entry; exit; history; initial = None };
  t.order <- state_name :: t.order

let set_initial t ?of_ state_name =
  let st = require t state_name "set_initial" in
  match of_ with
  | None ->
    if st.parent <> None then
      invalid_arg "Statechart.Machine.set_initial: top initial must be a top-level state";
    t.top_initial <- Some state_name
  | Some comp ->
    let parent_state = require t comp "set_initial(of_)" in
    if st.parent <> Some comp then
      invalid_arg
        (Printf.sprintf
           "Statechart.Machine.set_initial: %S is not a direct child of %S"
           state_name comp);
    parent_state.initial <- Some state_name

let add_transition t ~src ~dst ~trigger ?guard ?action () =
  ignore (require t src "add_transition(src)");
  ignore (require t dst "add_transition(dst)");
  t.transitions <- { src; dst = Some dst; trigger; guard; action } :: t.transitions

let add_internal t ~state ~trigger ?guard action =
  ignore (require t state "add_internal");
  t.transitions <- { src = state; dst = None; trigger; guard; action = Some action }
                   :: t.transitions

let state_names t = List.rev t.order

let children t s =
  List.filter
    (fun candidate ->
       match find t candidate with
       | Some st -> st.parent = Some s
       | None -> false)
    (state_names t)

let parent t s = match find t s with Some st -> st.parent | None -> None

let initial_of t = function
  | None -> t.top_initial
  | Some s -> (match find t s with Some st -> st.initial | None -> None)

let is_composite t s = children t s <> []
let has_history t s = match find t s with Some st -> st.history | None -> false
let transition_count t = List.length t.transitions

let triggers_of t s =
  List.sort_uniq String.compare
    (List.filter_map
       (fun tr -> if String.equal tr.src s then Some tr.trigger else None)
       t.transitions)

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if t.order = [] then err "machine %S has no states" t.name;
  (match t.top_initial with
   | None -> if t.order <> [] then err "machine %S has no top-level initial state" t.name
   | Some s ->
     (match find t s with
      | None -> err "top initial %S is not a declared state" s
      | Some st -> if st.parent <> None then err "top initial %S is not top-level" s));
  List.iter
    (fun s ->
       if is_composite t s && initial_of t (Some s) = None && not (has_history t s) then
         err "composite state %S has no initial child" s)
    (state_names t);
  List.iter
    (fun tr ->
       if find t tr.src = None then err "transition from unknown state %S" tr.src;
       match tr.dst with
       | Some d when find t d = None -> err "transition to unknown state %S" d
       | Some _ | None -> ())
    t.transitions;
  List.rev !errors

module Repr = struct
  type nonrec 'ctx transition = 'ctx transition = {
    src : string;
    dst : string option;
    trigger : string;
    guard : 'ctx guard option;
    action : 'ctx action option;
  }

  let state_parent = parent
  let state_entry t s = match find t s with Some st -> st.entry | None -> None
  let state_exit t s = match find t s with Some st -> st.exit | None -> None

  let outgoing t s =
    List.rev
      (List.filter (fun tr -> String.equal tr.src s) t.transitions)

  let exists t s = Hashtbl.mem t.states s
end
