type 'ctx t = {
  machine : 'ctx Machine.t;
  ctx : 'ctx;
  mutable leaf : string;
  history : (string, string) Hashtbl.t;  (* composite -> last active leaf inside it *)
  mutable taken : int;
  mutable seen : int;
  mutable dropped : int;
}

exception Invalid_machine of string list

let machine t = t.machine
let context t = t.ctx

(* [state; parent; ...; top-level state] *)
let rec chain_up m s =
  match Machine.Repr.state_parent m s with
  | None -> [ s ]
  | Some p -> s :: chain_up m p

let run_entry t s =
  match Machine.Repr.state_entry t.machine s with
  | Some f -> f t.ctx
  | None -> ()

let run_exit t s =
  match Machine.Repr.state_exit t.machine s with
  | Some f -> f t.ctx
  | None -> ()

(* Descend from [s] to a leaf, running entry actions of every state
   strictly below [s]; [s]'s own entry has already run. History wins over
   the initial child when the composite recorded one. *)
let rec descend t s =
  let m = t.machine in
  let stored =
    if Machine.has_history m s then Hashtbl.find_opt t.history s else None
  in
  match stored with
  | Some leaf when Machine.Repr.exists m leaf ->
    (* Enter the chain from just below [s] down to the stored leaf. *)
    let below = List.rev (chain_up m leaf) in
    let rec drop_to = function
      | x :: rest when String.equal x s -> rest
      | _ :: rest -> drop_to rest
      | [] -> []
    in
    let to_enter = drop_to below in
    List.iter (fun st -> run_entry t st) to_enter;
    if to_enter = [] then s else leaf
  | Some _ | None ->
    (match Machine.initial_of m (Some s) with
     | Some child ->
       run_entry t child;
       descend t child
     | None -> s)

let start m ctx =
  (match Machine.validate m with
   | [] -> ()
   | errors -> raise (Invalid_machine errors));
  let top =
    match Machine.initial_of m None with
    | Some s -> s
    | None -> raise (Invalid_machine [ "no top-level initial state" ])
  in
  let t = { machine = m; ctx; leaf = top; history = Hashtbl.create 4;
            taken = 0; seen = 0; dropped = 0 }
  in
  run_entry t top;
  t.leaf <- descend t top;
  t

let active_leaf t = t.leaf
let configuration t = List.rev (chain_up t.machine t.leaf)
let is_in t s = List.exists (String.equal s) (chain_up t.machine t.leaf)

let transitions_taken t = t.taken
let events_seen t = t.seen
let events_dropped t = t.dropped

(* Least common ancestor for an external transition src -> dst: the
   deepest state that strictly contains both ends. A common ancestor equal
   to either end is itself exited and re-entered (external semantics), so
   we step to its parent. *)
let transition_lca m ~src ~dst =
  let anc_src = chain_up m src in
  let anc_dst = chain_up m dst in
  let common = List.find_opt (fun s -> List.exists (String.equal s) anc_dst) anc_src in
  match common with
  | None -> None
  | Some c ->
    if String.equal c src || String.equal c dst then Machine.Repr.state_parent m c
    else Some c

let fire_external t event tr dst =
  let m = t.machine in
  let lca = transition_lca m ~src:tr.Machine.Repr.src ~dst in
  let below_lca s =
    match lca with
    | None -> true
    | Some l -> not (String.equal s l)
  in
  (* Exit from the active leaf up to (excluding) the LCA. *)
  let rec exit_chain s =
    if below_lca s then begin
      if Machine.has_history m s then Hashtbl.replace t.history s t.leaf;
      run_exit t s;
      match Machine.Repr.state_parent m s with
      | Some p -> exit_chain p
      | None -> ()
    end
  in
  exit_chain t.leaf;
  (match tr.Machine.Repr.action with
   | Some f -> f t.ctx event
   | None -> ());
  (* Enter from just below the LCA down to dst. *)
  let enter_chain = List.rev (List.filter below_lca (chain_up m dst)) in
  List.iter (fun s -> run_entry t s) enter_chain;
  t.leaf <- descend t dst;
  t.taken <- t.taken + 1

let fire_internal t event tr =
  (match tr.Machine.Repr.action with
   | Some f -> f t.ctx event
   | None -> ());
  t.taken <- t.taken + 1

let handle t event =
  t.seen <- t.seen + 1;
  let m = t.machine in
  let enabled tr =
    String.equal tr.Machine.Repr.trigger (Event.signal event)
    && (match tr.Machine.Repr.guard with
        | Some g -> g t.ctx event
        | None -> true)
  in
  let rec search = function
    | [] -> None
    | s :: outer ->
      (match List.find_opt enabled (Machine.Repr.outgoing m s) with
       | Some tr -> Some tr
       | None -> search outer)
  in
  match search (chain_up m t.leaf) with
  | Some tr ->
    (match tr.Machine.Repr.dst with
     | Some dst -> fire_external t event tr dst
     | None -> fire_internal t event tr);
    true
  | None ->
    t.dropped <- t.dropped + 1;
    false
