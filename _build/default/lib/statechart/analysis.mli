(** Static analysis of state machines: reachability, dead transitions,
    nondeterminism. Used by the DSL checker to warn about model smells
    before simulation. *)

type report = {
  reachable : string list;
    (** states reachable from the initial configuration (sorted) *)
  unreachable : string list;
    (** declared but never enterable *)
  dead_transitions : (string * string) list;
    (** (source state, trigger) of transitions whose source is unreachable *)
  nondeterministic : (string * string) list;
    (** (state, trigger) pairs with several unguarded transitions — only
        the first can ever fire *)
  sink_states : string list;
    (** reachable leaf states with no outgoing or inherited transitions *)
}

val analyze : 'ctx Machine.t -> report
(** The machine must pass {!Machine.validate}; analysis is conservative:
    guards are treated as always-true (so "reachable" over-approximates
    and "nondeterministic" flags guard-disambiguated pairs too — those
    are reported only when {e neither} transition has a guard). *)

val pp_report : Format.formatter -> report -> unit
