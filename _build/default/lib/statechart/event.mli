(** Events processed by state machines: a signal name plus a payload. *)

type t = {
  signal : string;
  value : Dataflow.Value.t;
}

val make : ?value:Dataflow.Value.t -> string -> t
(** Payload defaults to [Unit]. *)

val signal : t -> string
val value : t -> Dataflow.Value.t

val float_payload : t -> float option
(** Numeric view of the payload (see {!Dataflow.Value.to_float}). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
