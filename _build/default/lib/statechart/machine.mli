(** Hierarchical state machine definitions (the behaviour of a UML-RT
    capsule). A machine is a static description — build it once, then run
    any number of {!Instance}s over contexts of type ['ctx].

    Single-region hierarchy: composite states contain child states, each
    composite (and the machine itself) names an initial child, and a
    composite may record (deep) history. *)

type 'ctx t

type 'ctx guard = 'ctx -> Event.t -> bool
type 'ctx action = 'ctx -> Event.t -> unit

val create : string -> 'ctx t
(** Fresh machine with the given name and no states. *)

val name : 'ctx t -> string

val add_state :
  'ctx t -> ?parent:string -> ?entry:('ctx -> unit) -> ?exit:('ctx -> unit)
  -> ?history:bool -> string -> unit
(** Declare a state. [parent] must already exist; [history] makes the
    state restore its last active descendant when re-entered through a
    transition targeting it. Raises [Invalid_argument] on duplicates or
    unknown parents. *)

val set_initial : 'ctx t -> ?of_:string -> string -> unit
(** Set the initial child of composite [of_] (or of the machine when
    omitted). The initial state must be a direct child of [of_]. *)

val add_transition :
  'ctx t -> src:string -> dst:string -> trigger:string
  -> ?guard:'ctx guard -> ?action:'ctx action -> unit -> unit
(** External transition: exits up to the least common ancestor, runs the
    action, enters down to [dst]. Declaration order is priority order
    among same-source transitions. *)

val add_internal :
  'ctx t -> state:string -> trigger:string
  -> ?guard:'ctx guard -> 'ctx action -> unit
(** Internal transition: the action runs without exiting/entering any
    state. *)

val state_names : 'ctx t -> string list
(** All declared states, in declaration order. *)

val children : 'ctx t -> string -> string list
val parent : 'ctx t -> string -> string option
val initial_of : 'ctx t -> string option -> string option
(** [initial_of m (Some s)] is composite [s]'s initial child;
    [initial_of m None] the machine's top initial state. *)

val is_composite : 'ctx t -> string -> bool
val has_history : 'ctx t -> string -> bool
val transition_count : 'ctx t -> int

val triggers_of : 'ctx t -> string -> string list
(** Triggers handled (somewhere) in the given state, outermost rules
    excluded — used by reachability checks and the DSL validator. *)

val validate : 'ctx t -> string list
(** Structural errors: no states, missing initials on composites actually
    targeted or initial-reachable, transitions touching unknown states.
    Empty list means the machine is runnable. *)

(** Internal representation shared with {!Instance} — not for users. *)
module Repr : sig
  type 'ctx transition = {
    src : string;
    dst : string option;  (* None = internal *)
    trigger : string;
    guard : 'ctx guard option;
    action : 'ctx action option;
  }

  val state_parent : 'ctx t -> string -> string option
  val state_entry : 'ctx t -> string -> ('ctx -> unit) option
  val state_exit : 'ctx t -> string -> ('ctx -> unit) option
  val outgoing : 'ctx t -> string -> 'ctx transition list
  val exists : 'ctx t -> string -> bool
end
