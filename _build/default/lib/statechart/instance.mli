(** Running instance of a {!Machine}: the UML-RT run-to-completion
    interpreter.

    One event is processed at a time; at most one transition (searched
    from the innermost active state outward, declaration order within a
    state) fires per event. External transitions exit up to the least
    common ancestor and re-enter; composites marked with history restore
    their last active descendant. *)

type 'ctx t

exception Invalid_machine of string list
(** Raised by {!start} when {!Machine.validate} reports errors. *)

val start : 'ctx Machine.t -> 'ctx -> 'ctx t
(** Enter the initial configuration (running entry actions top-down). *)

val machine : 'ctx t -> 'ctx Machine.t
val context : 'ctx t -> 'ctx

val active_leaf : 'ctx t -> string
(** Innermost active state. *)

val configuration : 'ctx t -> string list
(** Active states from outermost to innermost. *)

val is_in : 'ctx t -> string -> bool
(** Is the given state in the active configuration? *)

val handle : 'ctx t -> Event.t -> bool
(** Process one event to completion. Returns [false] when no transition
    was enabled (the event is dropped, per UML-RT semantics). *)

val transitions_taken : 'ctx t -> int
val events_seen : 'ctx t -> int
val events_dropped : 'ctx t -> int
