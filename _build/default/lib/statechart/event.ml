type t = {
  signal : string;
  value : Dataflow.Value.t;
}

let make ?(value = Dataflow.Value.Unit) signal = { signal; value }

let signal t = t.signal
let value t = t.value
let float_payload t = Dataflow.Value.to_float t.value

let pp ppf t =
  match t.value with
  | Dataflow.Value.Unit -> Format.pp_print_string ppf t.signal
  | v -> Format.fprintf ppf "%s(%a)" t.signal Dataflow.Value.pp v

let to_string t = Format.asprintf "%a" pp t
