type report = {
  reachable : string list;
  unreachable : string list;
  dead_transitions : (string * string) list;
  nondeterministic : (string * string) list;
  sink_states : string list;
}

let rec ancestors m s =
  match Machine.Repr.state_parent m s with
  | None -> [ s ]
  | Some p -> s :: ancestors m p

(* Entering [s] activates its ancestors and its initial-descent chain. *)
let enter_closure m s =
  let rec descend s acc =
    match Machine.initial_of m (Some s) with
    | Some child -> descend child (child :: acc)
    | None -> acc
  in
  ancestors m s @ descend s []

let analyze m =
  let all = Machine.state_names m in
  let reachable = Hashtbl.create 16 in
  let pending = Queue.create () in
  let mark s =
    if not (Hashtbl.mem reachable s) then begin
      Hashtbl.replace reachable s ();
      Queue.push s pending
    end
  in
  (match Machine.initial_of m None with
   | Some top -> List.iter mark (enter_closure m top)
   | None -> ());
  while not (Queue.is_empty pending) do
    let s = Queue.pop pending in
    List.iter
      (fun (tr : _ Machine.Repr.transition) ->
         match tr.Machine.Repr.dst with
         | Some d -> List.iter mark (enter_closure m d)
         | None -> ())
      (Machine.Repr.outgoing m s)
  done;
  let is_reachable s = Hashtbl.mem reachable s in
  let unreachable = List.filter (fun s -> not (is_reachable s)) all in
  let dead_transitions =
    List.concat_map
      (fun s ->
         if is_reachable s then []
         else
           List.map
             (fun (tr : _ Machine.Repr.transition) -> (s, tr.Machine.Repr.trigger))
             (Machine.Repr.outgoing m s))
      all
  in
  let nondeterministic =
    List.concat_map
      (fun s ->
         let outgoing = Machine.Repr.outgoing m s in
         let triggers =
           List.sort_uniq String.compare
             (List.map (fun tr -> tr.Machine.Repr.trigger) outgoing)
         in
         List.filter_map
           (fun trigger ->
              let unguarded =
                List.filter
                  (fun tr ->
                     String.equal tr.Machine.Repr.trigger trigger
                     && tr.Machine.Repr.guard = None)
                  outgoing
              in
              if List.length unguarded >= 2 then Some (s, trigger) else None)
           triggers)
      all
  in
  let sink_states =
    List.filter
      (fun s ->
         is_reachable s
         && (not (Machine.is_composite m s))
         && List.for_all
              (fun a -> Machine.Repr.outgoing m a = [])
              (ancestors m s))
      all
  in
  { reachable = List.sort String.compare (List.filter is_reachable all);
    unreachable = List.sort String.compare unreachable;
    dead_transitions;
    nondeterministic;
    sink_states = List.sort String.compare sink_states }

let pp_report ppf r =
  let pp_list = Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string in
  Format.fprintf ppf "@[<v>reachable: @[%a@]@," pp_list r.reachable;
  Format.fprintf ppf "unreachable: @[%a@]@," pp_list r.unreachable;
  Format.fprintf ppf "dead transitions: %d@," (List.length r.dead_transitions);
  Format.fprintf ppf "nondeterministic (state, trigger): %d@,"
    (List.length r.nondeterministic);
  Format.fprintf ppf "sink states: @[%a@]@]" pp_list r.sink_states
