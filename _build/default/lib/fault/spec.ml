type window = { from_ : float; until : float }

type action =
  | Drop of float
  | Delay of float * float
  | Duplicate of float
  | Reorder of float * float
  | Corrupt of float * float * float
  | Nan_poison of float
  | Freeze
  | Stall

type kind = Signal | Flow | Solver

let kind_of_action = function
  | Drop _ | Delay _ | Duplicate _ | Reorder _ -> Signal
  | Corrupt _ | Nan_poison _ | Freeze -> Flow
  | Stall -> Solver

type rule = {
  kind : kind;
  target : string;
  window : window;
  action : action;
}

type policy = Restart | Freeze_last | Escalate

let policy_name = function
  | Restart -> "restart"
  | Freeze_last -> "freeze"
  | Escalate -> "escalate"

let policy_of_string = function
  | "restart" -> Some Restart
  | "freeze" -> Some Freeze_last
  | "escalate" -> Some Escalate
  | _ -> None

type t = {
  seed : int;
  rules : rule list;
  policy : policy option;
  degrade_signal : string option;
}

let empty = { seed = 0; rules = []; policy = None; degrade_signal = None }

let in_window w now = now >= w.from_ && now < w.until

(* Exact match, trailing-[*] prefix match, or the universal ["*"] — written
   without String.sub so matching on the per-tick flow path allocates
   nothing. *)
let matches ~pattern name =
  String.equal pattern "*"
  ||
  let lp = String.length pattern in
  if lp > 0 && pattern.[lp - 1] = '*' then begin
    let prefix_len = lp - 1 in
    prefix_len <= String.length name
    &&
    let rec eq i = i >= prefix_len || (pattern.[i] = name.[i] && eq (i + 1)) in
    eq 0
  end
  else String.equal pattern name

(* ---- parser ---- *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let key_value tok =
  match String.index_opt tok '=' with
  | Some i ->
    Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> None

exception Parse_error of string

type parsed_opts = {
  mutable p : float option;
  mutable by : float option;
  mutable within : float option;
  mutable scale : float option;
  mutable bias : float option;
  mutable from : float option;
  mutable until : float option;
}

let parse_rule_line ~line verb tail =
  let err msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg)) in
  let kind_tok, target, opts_toks =
    match tail with
    | kind :: target :: rest -> (kind, target, rest)
    | _ -> err "expected: <action> signal|flow|solver <target> [key=value ...]"
  in
  let kind =
    match kind_tok with
    | "signal" -> Signal
    | "flow" -> Flow
    | "solver" -> Solver
    | other -> err (Printf.sprintf "unknown fault kind %S" other)
  in
  let opts =
    { p = None; by = None; within = None; scale = None; bias = None;
      from = None; until = None }
  in
  List.iter
    (fun tok ->
       match key_value tok with
       | None -> err (Printf.sprintf "expected key=value, got %S" tok)
       | Some (key, value) ->
         let f =
           match float_of_string_opt value with
           | Some f when not (Float.is_nan f) -> f
           | Some _ -> err (Printf.sprintf "NaN value for %s" key)
           | None -> err (Printf.sprintf "bad number %S for %s" value key)
         in
         (match key with
          | "p" -> opts.p <- Some f
          | "by" -> opts.by <- Some f
          | "within" -> opts.within <- Some f
          | "scale" -> opts.scale <- Some f
          | "bias" -> opts.bias <- Some f
          | "from" -> opts.from <- Some f
          | "until" -> opts.until <- Some f
          | other -> err (Printf.sprintf "unknown option %S" other)))
    opts_toks;
  let p =
    let v = match opts.p with Some p -> p | None -> 1. in
    if v < 0. || v > 1. then err (Printf.sprintf "p=%g outside [0, 1]" v);
    v
  in
  let window =
    let from_ = match opts.from with Some f -> f | None -> 0. in
    let until = match opts.until with Some u -> u | None -> infinity in
    if from_ < 0. then err "from must be >= 0";
    if until <= from_ then err "until must be > from";
    { from_; until }
  in
  let positive key = function
    | Some v when v <= 0. -> err (Printf.sprintf "%s must be positive" key)
    | Some v -> v
    | None -> err (Printf.sprintf "missing %s=" key)
  in
  let action =
    match verb with
    | "drop" -> Drop p
    | "delay" -> Delay (p, positive "by" opts.by)
    | "duplicate" -> Duplicate p
    | "reorder" ->
      let within = match opts.within with Some w -> w | None -> 0.1 in
      if within <= 0. then err "within must be positive";
      Reorder (p, within)
    | "corrupt" ->
      let scale = match opts.scale with Some s -> s | None -> 1. in
      let bias = match opts.bias with Some b -> b | None -> 0. in
      if scale = 1. && bias = 0. then err "corrupt needs scale= or bias=";
      Corrupt (p, scale, bias)
    | "nan" -> Nan_poison p
    | "freeze" -> Freeze
    | "stall" -> Stall
    | other -> err (Printf.sprintf "unknown action %S" other)
  in
  if kind_of_action action <> kind then
    err
      (Printf.sprintf "action %S applies to %s targets, not %s" verb
         (match kind_of_action action with
          | Signal -> "signal" | Flow -> "flow" | Solver -> "solver")
         kind_tok);
  { kind; target; window; action }

let of_string text =
  let lines = String.split_on_char '\n' text in
  let spec = ref empty in
  let rules = ref [] in
  try
    List.iteri
      (fun i line ->
         let err msg =
           raise (Parse_error (Printf.sprintf "line %d: %s" (i + 1) msg))
         in
         match tokens (strip_comment line) with
         | [] -> ()
         | [ "seed"; n ] ->
           (match int_of_string_opt n with
            | Some s -> spec := { !spec with seed = s }
            | None -> err (Printf.sprintf "bad seed %S" n))
         | [ "supervise"; p ] ->
           (match policy_of_string p with
            | Some policy -> spec := { !spec with policy = Some policy }
            | None ->
              err (Printf.sprintf "unknown policy %S (restart|freeze|escalate)" p))
         | [ "degrade-signal"; s ] ->
           spec := { !spec with degrade_signal = Some s }
         | verb :: tail ->
           rules := parse_rule_line ~line:(i + 1) verb tail :: !rules)
      lines;
    Ok { !spec with rules = List.rev !rules }
  with Parse_error msg -> Error msg

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let string_of_window w =
  let b = Buffer.create 16 in
  if w.from_ <> 0. then Buffer.add_string b (Printf.sprintf " from=%g" w.from_);
  if w.until <> infinity then
    Buffer.add_string b (Printf.sprintf " until=%g" w.until);
  Buffer.contents b

let string_of_rule r =
  let kind =
    match r.kind with Signal -> "signal" | Flow -> "flow" | Solver -> "solver"
  in
  let head =
    match r.action with
    | Drop p -> Printf.sprintf "drop %s %s p=%g" kind r.target p
    | Delay (p, by) -> Printf.sprintf "delay %s %s by=%g p=%g" kind r.target by p
    | Duplicate p -> Printf.sprintf "duplicate %s %s p=%g" kind r.target p
    | Reorder (p, within) ->
      Printf.sprintf "reorder %s %s within=%g p=%g" kind r.target within p
    | Corrupt (p, scale, bias) ->
      Printf.sprintf "corrupt %s %s scale=%g bias=%g p=%g" kind r.target scale
        bias p
    | Nan_poison p -> Printf.sprintf "nan %s %s p=%g" kind r.target p
    | Freeze -> Printf.sprintf "freeze %s %s" kind r.target
    | Stall -> Printf.sprintf "stall %s %s" kind r.target
  in
  head ^ string_of_window r.window

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "seed %d\n" t.seed);
  (match t.policy with
   | Some p -> Buffer.add_string b (Printf.sprintf "supervise %s\n" (policy_name p))
   | None -> ());
  (match t.degrade_signal with
   | Some s -> Buffer.add_string b (Printf.sprintf "degrade-signal %s\n" s)
   | None -> ());
  List.iter (fun r -> Buffer.add_string b (string_of_rule r); Buffer.add_char b '\n')
    t.rules;
  Buffer.contents b
