(* Per-rule runtime state: [noted] makes window-scoped faults (freeze,
   stall) count as one injection per activation instead of one per
   query, since the hot paths ask every tick. *)
type arule = { r : Spec.rule; mutable noted : bool }

type t = {
  spec : Spec.t;
  rng : Des.Rng.t;
  signal_rules : arule array;
  flow_rules : arule array;
  solver_rules : arule array;
  mutable n_drop : int;
  mutable n_delay : int;
  mutable n_duplicate : int;
  mutable n_reorder : int;
  mutable n_corrupt : int;
  mutable n_nan : int;
  mutable n_freeze : int;
  mutable n_stall : int;
}

let m_injected = Obs.Metrics.counter "fault.injected"

let create spec =
  let of_kind kind =
    spec.Spec.rules
    |> List.filter (fun r -> r.Spec.kind = kind)
    |> List.map (fun r -> { r; noted = false })
    |> Array.of_list
  in
  { spec;
    rng = Des.Rng.create spec.Spec.seed;
    signal_rules = of_kind Spec.Signal;
    flow_rules = of_kind Spec.Flow;
    solver_rules = of_kind Spec.Solver;
    n_drop = 0; n_delay = 0; n_duplicate = 0; n_reorder = 0;
    n_corrupt = 0; n_nan = 0; n_freeze = 0; n_stall = 0 }

let spec t = t.spec

let has_signal_rules t = Array.length t.signal_rules > 0
let has_flow_rules t = Array.length t.flow_rules > 0
let has_solver_rules t = Array.length t.solver_rules > 0

(* Probability-1 rules skip the draw so deterministic specs stay
   RNG-free; below 1 the private stream decides. *)
let hit t p = p >= 1. || Des.Rng.float t.rng < p

let note t = Obs.Metrics.incr m_injected; ignore t

type signal_fate =
  | Pass
  | Lose
  | Postpone of float
  | Duplicate
  | Hold of float

let rule_applies ar ~target ~now =
  Spec.matches ~pattern:ar.r.Spec.target target
  && Spec.in_window ar.r.Spec.window now

let signal_fate t ~role ~sport ~now =
  let rules = t.signal_rules in
  let n = Array.length rules in
  let qualified = role ^ "." ^ sport in
  let applies ar =
    (Spec.matches ~pattern:ar.r.Spec.target role
     || Spec.matches ~pattern:ar.r.Spec.target qualified)
    && Spec.in_window ar.r.Spec.window now
  in
  let rec go i =
    if i >= n then Pass
    else begin
      let ar = rules.(i) in
      if applies ar then
        (* First matching rule decides, hit or miss — later rules never
           see a signal an earlier rule already claimed. *)
        match ar.r.Spec.action with
        | Spec.Drop p ->
          if hit t p then begin t.n_drop <- t.n_drop + 1; note t; Lose end
          else Pass
        | Spec.Delay (p, by) ->
          if hit t p then begin t.n_delay <- t.n_delay + 1; note t; Postpone by end
          else Pass
        | Spec.Duplicate p ->
          if hit t p then begin
            t.n_duplicate <- t.n_duplicate + 1; note t; Duplicate
          end
          else Pass
        | Spec.Reorder (p, within) ->
          if hit t p then begin
            t.n_reorder <- t.n_reorder + 1; note t; Hold within
          end
          else Pass
        | Spec.Corrupt _ | Spec.Nan_poison _ | Spec.Freeze | Spec.Stall ->
          go (i + 1)  (* unreachable: rules are partitioned by kind *)
      else go (i + 1)
    end
  in
  go 0

let flow_frozen t ~target ~now =
  let rules = t.flow_rules in
  let n = Array.length rules in
  let rec go i =
    if i >= n then false
    else begin
      let ar = rules.(i) in
      match ar.r.Spec.action with
      | Spec.Freeze when rule_applies ar ~target ~now ->
        if not ar.noted then begin
          ar.noted <- true;
          t.n_freeze <- t.n_freeze + 1;
          note t
        end;
        true
      | _ -> go (i + 1)
    end
  in
  go 0

let flow_value t ~target ~now v =
  let rules = t.flow_rules in
  let n = Array.length rules in
  let rec go i =
    if i >= n then v
    else begin
      let ar = rules.(i) in
      match ar.r.Spec.action with
      | Spec.Corrupt (p, scale, bias) when rule_applies ar ~target ~now ->
        if hit t p then begin
          t.n_corrupt <- t.n_corrupt + 1;
          note t;
          (scale *. v) +. bias
        end
        else v
      | Spec.Nan_poison p when rule_applies ar ~target ~now ->
        if hit t p then begin t.n_nan <- t.n_nan + 1; note t; Float.nan end
        else v
      | _ -> go (i + 1)
    end
  in
  go 0

let solver_stalled t ~target ~now =
  let rules = t.solver_rules in
  let n = Array.length rules in
  let rec go i =
    if i >= n then false
    else begin
      let ar = rules.(i) in
      match ar.r.Spec.action with
      | Spec.Stall when rule_applies ar ~target ~now ->
        if not ar.noted then begin
          ar.noted <- true;
          t.n_stall <- t.n_stall + 1;
          note t
        end;
        true
      | _ -> go (i + 1)
    end
  in
  go 0

let injected t =
  t.n_drop + t.n_delay + t.n_duplicate + t.n_reorder + t.n_corrupt + t.n_nan
  + t.n_freeze + t.n_stall

let injected_counts t =
  [ ("corrupt", t.n_corrupt); ("delay", t.n_delay); ("drop", t.n_drop);
    ("duplicate", t.n_duplicate); ("freeze", t.n_freeze); ("nan", t.n_nan);
    ("reorder", t.n_reorder); ("stall", t.n_stall) ]
  |> List.filter (fun (_, n) -> n > 0)
