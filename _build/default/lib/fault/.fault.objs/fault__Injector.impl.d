lib/fault/injector.ml: Array Des Float List Obs Spec
