lib/fault/spec.ml: Buffer Float In_channel List Printf String
