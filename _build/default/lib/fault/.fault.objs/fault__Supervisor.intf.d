lib/fault/supervisor.mli: Des Spec
