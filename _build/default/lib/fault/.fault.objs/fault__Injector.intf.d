lib/fault/injector.mli: Spec
