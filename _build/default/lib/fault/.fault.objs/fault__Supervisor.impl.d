lib/fault/supervisor.ml: Des Float Obs Printf Spec
