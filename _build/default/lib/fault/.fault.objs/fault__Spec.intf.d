lib/fault/spec.mli:
