(** Supervision policies and watchdog timers.

    The policy type is shared by both halves of the unified model: the
    hybrid engine applies it to solver faults (divergence, step
    underflow), the UML-RT runtime to capsule behavior faults and missed
    watchdog deadlines. Restart counts aggregate into the process-wide
    ["supervisor.restarts"] counter and degraded wall-clock into the
    ["degraded.time"] gauge, whichever layer they come from. *)

type policy = Spec.policy =
  | Restart
  | Freeze_last
  | Escalate

val note_restart : unit -> unit
(** Bump the shared ["supervisor.restarts"] counter. *)

val restarts_total : unit -> int

val set_degraded_time : float -> unit
(** Publish accumulated degraded time to the ["degraded.time"] gauge. *)

type watchdog
(** A deadline monitor on the DES clock: re-armed one-shot that calls
    [on_timeout] whenever [timeout] elapses without a {!pet}, then
    re-arms itself (a dead component keeps getting supervision
    attempts). *)

val watchdog :
  Des.Engine.t -> ?name:string -> timeout:float -> (unit -> unit) -> watchdog
(** Raises [Invalid_argument] unless [timeout] is positive and finite. *)

val pet : watchdog -> unit
(** Push the deadline back one full [timeout] from now. *)

val stop : watchdog -> unit
(** Disarm permanently; idempotent. *)

val expirations : watchdog -> int
(** Number of times the deadline was missed. *)

val is_active : watchdog -> bool
