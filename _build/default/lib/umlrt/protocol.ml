type signal_decl = {
  signal : string;
  payload : Dataflow.Flow_type.t option;
}

type t = {
  name : string;
  incoming : signal_decl list;
  outgoing : signal_decl list;
}

let check_unique name direction decls =
  let sorted = List.sort (fun a b -> String.compare a.signal b.signal) decls in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      if String.equal a.signal b.signal then
        invalid_arg
          (Printf.sprintf "Umlrt.Protocol.create(%s): duplicate %s signal %S"
             name direction a.signal);
      walk rest
    | [ _ ] | [] -> ()
  in
  walk sorted

let create ?(incoming = []) ?(outgoing = []) name =
  check_unique name "incoming" incoming;
  check_unique name "outgoing" outgoing;
  { name; incoming; outgoing }

let signal ?payload signal = { signal; payload }

let name t = t.name
let incoming t = t.incoming
let outgoing t = t.outgoing

let mem decls s = List.exists (fun d -> String.equal d.signal s) decls

let can_send t ~conjugated s =
  if conjugated then mem t.incoming s else mem t.outgoing s

let can_receive t ~conjugated s =
  if conjugated then mem t.outgoing s else mem t.incoming s

let payload_of t s =
  let find decls = List.find_opt (fun d -> String.equal d.signal s) decls in
  match find t.outgoing with
  | Some d -> d.payload
  | None -> (match find t.incoming with Some d -> d.payload | None -> None)

let equal_name a b = String.equal a.name b.name

let pp ppf t =
  let pp_side ppf decls =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf d -> Format.pp_print_string ppf d.signal)
      ppf decls
  in
  Format.fprintf ppf "protocol %s { out: %a; in: %a }" t.name pp_side t.outgoing
    pp_side t.incoming
