lib/umlrt/capsule.ml: List Printf Protocol Statechart String
