lib/umlrt/capsule.mli: Protocol Statechart
