lib/umlrt/protocol.ml: Dataflow Format List Printf String
