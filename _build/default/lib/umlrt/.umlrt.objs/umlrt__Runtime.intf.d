lib/umlrt/runtime.mli: Capsule Des Fault Statechart
