lib/umlrt/runtime.mli: Capsule Des Statechart
