lib/umlrt/runtime.ml: Capsule Des Hashtbl List Printf Protocol Queue Statechart String
