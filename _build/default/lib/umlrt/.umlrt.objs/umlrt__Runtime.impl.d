lib/umlrt/runtime.ml: Capsule Des Hashtbl List Obs Printf Protocol Queue Statechart String
