lib/umlrt/runtime.ml: Capsule Des Fault Hashtbl List Obs Printf Protocol Queue Statechart String
