lib/umlrt/protocol.mli: Dataflow Format
