(** UML-RT capsule classes: ports, optional behaviour, sub-capsule parts
    and connectors.

    A capsule class is a static description; {!Runtime} instantiates the
    tree. Behaviour is supplied as a factory receiving the runtime
    {!services} (send, timers, clock), so each instance owns independent
    state. *)

type port_kind =
  | End    (** terminates messages at this capsule's behaviour *)
  | Relay  (** forwards between the inside and the outside *)

type port_decl = {
  pname : string;
  protocol : Protocol.t;
  conjugated : bool;
  kind : port_kind;
}

val port : ?conjugated:bool -> ?kind:port_kind -> string -> Protocol.t -> port_decl
(** Defaults: base role, [End]. *)

type services = {
  send : port:string -> Statechart.Event.t -> unit;
    (** emit a signal through one of this capsule's ports *)
  timer_after : float -> Statechart.Event.t -> unit;
    (** deliver the event to this capsule once, after the delay *)
  timer_every : float -> Statechart.Event.t -> unit;
    (** deliver the event periodically *)
  now : unit -> float;
    (** current simulated time *)
}

type behavior = {
  on_start : unit -> unit;
  on_event : port:string -> Statechart.Event.t -> bool;
    (** run-to-completion step; [false] = event dropped *)
  configuration : unit -> string list;
    (** active state configuration, for inspection *)
}

type behavior_factory = services -> behavior

val machine_behavior :
  make_context:(services -> 'ctx) -> 'ctx Statechart.Machine.t -> behavior_factory
(** Standard behaviour: a statechart over a context built from the
    services. Incoming events are fed to {!Statechart.Instance.handle}
    (the receiving port is exposed to actions via the event payload
    untouched; port-specific routing belongs in distinct signal names,
    as in UML-RT practice). *)

type endpoint = {
  part : string option;  (** [None] = this capsule's own border port *)
  port : string;
}

type connector = {
  from_ : endpoint;
  to_ : endpoint;
}

val connector : from_:endpoint -> to_:endpoint -> connector
val border : string -> endpoint
val part_port : string -> string -> endpoint
(** [part_port part port]. *)

type t

val create :
  ?ports:port_decl list
  -> ?behavior:behavior_factory
  -> ?parts:(string * t) list
  -> ?connectors:connector list
  -> string -> t
(** Raises [Invalid_argument] on duplicate port or part names. *)

val name : t -> string
val ports : t -> port_decl list
val find_port : t -> string -> port_decl option
val behavior : t -> behavior_factory option
val parts : t -> (string * t) list
val connectors : t -> connector list

val validate : t -> string list
(** Structural rules, checked recursively:
    - connector endpoints must name existing parts/ports;
    - both ends must speak the same protocol (by name);
    - between sibling parts, exactly one end is conjugated;
    - between a part and its container's border port, conjugations match;
    - an [End] border port on a capsule {e with} parts and behaviour is
      allowed; an [End] port may not be used as a pass-through.
    Empty list = well-formed. *)
