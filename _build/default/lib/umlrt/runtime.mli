(** UML-RT runtime: instantiates a capsule tree on a DES engine, wires
    connectors (resolving relay chains end-to-end), and dispatches signal
    messages with run-to-completion semantics.

    Messages that leave the root capsule's border land in the runtime's
    {e outbox} (the environment); {!inject} pushes environment messages in
    through a root border port. *)

exception Invalid_model of string list
(** Raised by {!create} when {!Capsule.validate} reports errors. *)

exception Watchdog_expired of string
(** Raised (with the capsule path) when a watched capsule misses its
    deadline under the [Escalate] supervision policy. *)

type t

val create : Des.Engine.t -> ?latency:float -> ?defer_start:bool -> Capsule.t -> t
(** Instantiate and wire the tree; every capsule mailbox gets the given
    delivery [latency] (default 0). Behaviours' [on_start] run
    immediately, in instantiation order (parent before parts) — unless
    [defer_start] is set, in which case the caller must invoke
    {!start_behaviors} once the environment is wired. *)

val start_behaviors : t -> unit
(** Run pending [on_start] callbacks (no-op when already started). *)

val engine : t -> Des.Engine.t

val instance_paths : t -> string list
(** All instance paths; the root's path is the class name, parts are
    [parent/partname]. *)

val configuration : t -> string -> string list option
(** Active statechart configuration of the instance at the path, [None]
    for unknown paths or behaviour-less capsules. *)

val root_path : t -> string
(** The root instance's path (the root capsule's class name). *)

val inject : t -> port:string -> Statechart.Event.t -> unit
(** Send a message from the environment into the named root border
    port. Raises [Invalid_argument] for unknown ports. *)

val deliver_to : t -> path:string -> port:string -> Statechart.Event.t -> bool
(** Push a message directly into the mailbox of the instance at [path]
    (as if its [port] received it); [false] when the path is unknown.
    Used by the hybrid engine after it resolved a route itself. *)

val drain_outbox : t -> (string * Statechart.Event.t) list
(** Messages that reached the environment since the last drain, oldest
    first; the outbox is emptied. *)

val set_environment_listener :
  t -> (port:string -> Statechart.Event.t -> unit) -> unit
(** Intercept environment-bound messages at the moment they cross the
    root border instead of queueing them in the outbox. The hybrid engine
    uses this to route capsule signals into streamer SPorts with correct
    timing. *)

val clear_environment_listener : t -> unit

type stats = {
  sent : int;       (** messages emitted by behaviours or injection *)
  delivered : int;  (** messages consumed by a behaviour *)
  dropped : int;    (** unconnected port, or behaviour had no transition *)
}

val stats : t -> stats

(** How a message sent from a given port is routed. *)
type target =
  | To_instance of string * string  (** instance path, port *)
  | To_environment of string        (** root border port *)
  | Unconnected

val resolve : t -> path:string -> port:string -> target
(** Follow connectors (through relays) from the given port to its
    final destination — exposed for tests and the model checker. *)

(** {2 Supervision}

    Without a supervisor the runtime behaves exactly as before this
    layer existed: behaviour exceptions propagate out of the DES run and
    no per-delivery checks beyond two [None] matches are added. *)

val set_supervisor :
  t -> ?max_restarts:int -> Fault.Supervisor.policy -> unit
(** Install capsule supervision. An exception escaping a behaviour's
    event handler is then caught and handled per policy: [Restart]
    rebuilds the behaviour from its capsule factory (fresh state,
    [on_start] re-run) and counts it; [Freeze_last] quarantines the
    instance (subsequent deliveries are dropped); [Escalate] re-raises.
    After [max_restarts] restarts of one instance, further [Restart]
    faults quarantine it instead. *)

val supervisor : t -> Fault.Supervisor.policy option

val restart_capsule : t -> path:string -> bool
(** Force a restart of the instance at [path]; [false] when its capsule
    has no behaviour factory. Raises [Invalid_argument] for unknown
    paths. *)

val watch_capsule : t -> path:string -> timeout:float -> unit
(** Arm a watchdog on the instance: every received message pets it, and
    [timeout] sim-seconds of silence trigger the supervision policy
    (default [Restart] when none is installed). Re-watching replaces the
    previous watchdog. Raises [Invalid_argument] for unknown paths or a
    non-positive timeout. *)

val unwatch_capsule : t -> path:string -> unit
(** Disarm the instance's watchdog, if any. *)

val watchdog_expirations : t -> path:string -> int
(** Deadline misses recorded by the instance's current watchdog. *)

val capsule_restarts : t -> int
(** Capsule restarts performed by this runtime (also aggregated into the
    process-wide ["supervisor.restarts"] counter). *)

val is_quarantined : t -> path:string -> bool

val quarantined_paths : t -> string list
(** Instances currently quarantined, in instantiation order. *)
