(** UML-RT runtime: instantiates a capsule tree on a DES engine, wires
    connectors (resolving relay chains end-to-end), and dispatches signal
    messages with run-to-completion semantics.

    Messages that leave the root capsule's border land in the runtime's
    {e outbox} (the environment); {!inject} pushes environment messages in
    through a root border port. *)

exception Invalid_model of string list
(** Raised by {!create} when {!Capsule.validate} reports errors. *)

type t

val create : Des.Engine.t -> ?latency:float -> ?defer_start:bool -> Capsule.t -> t
(** Instantiate and wire the tree; every capsule mailbox gets the given
    delivery [latency] (default 0). Behaviours' [on_start] run
    immediately, in instantiation order (parent before parts) — unless
    [defer_start] is set, in which case the caller must invoke
    {!start_behaviors} once the environment is wired. *)

val start_behaviors : t -> unit
(** Run pending [on_start] callbacks (no-op when already started). *)

val engine : t -> Des.Engine.t

val instance_paths : t -> string list
(** All instance paths; the root's path is the class name, parts are
    [parent/partname]. *)

val configuration : t -> string -> string list option
(** Active statechart configuration of the instance at the path, [None]
    for unknown paths or behaviour-less capsules. *)

val root_path : t -> string
(** The root instance's path (the root capsule's class name). *)

val inject : t -> port:string -> Statechart.Event.t -> unit
(** Send a message from the environment into the named root border
    port. Raises [Invalid_argument] for unknown ports. *)

val deliver_to : t -> path:string -> port:string -> Statechart.Event.t -> bool
(** Push a message directly into the mailbox of the instance at [path]
    (as if its [port] received it); [false] when the path is unknown.
    Used by the hybrid engine after it resolved a route itself. *)

val drain_outbox : t -> (string * Statechart.Event.t) list
(** Messages that reached the environment since the last drain, oldest
    first; the outbox is emptied. *)

val set_environment_listener :
  t -> (port:string -> Statechart.Event.t -> unit) -> unit
(** Intercept environment-bound messages at the moment they cross the
    root border instead of queueing them in the outbox. The hybrid engine
    uses this to route capsule signals into streamer SPorts with correct
    timing. *)

val clear_environment_listener : t -> unit

type stats = {
  sent : int;       (** messages emitted by behaviours or injection *)
  delivered : int;  (** messages consumed by a behaviour *)
  dropped : int;    (** unconnected port, or behaviour had no transition *)
}

val stats : t -> stats

(** How a message sent from a given port is routed. *)
type target =
  | To_instance of string * string  (** instance path, port *)
  | To_environment of string        (** root border port *)
  | Unconnected

val resolve : t -> path:string -> port:string -> target
(** Follow connectors (through relays) from the given port to its
    final destination — exposed for tests and the model checker. *)
