(** UML-RT protocols: named sets of signals exchanged over ports.

    A protocol is written from the {e base} role's perspective:
    [outgoing] are the signals the base side may send, [incoming] those
    it may receive. The conjugate role swaps the two sets. *)

type signal_decl = {
  signal : string;
  payload : Dataflow.Flow_type.t option;  (** [None] = no payload *)
}

type t

val create :
  ?incoming:signal_decl list -> ?outgoing:signal_decl list -> string -> t
(** Raises [Invalid_argument] when a signal name appears twice within a
    direction. (A name may legitimately appear in both directions.) *)

val signal : ?payload:Dataflow.Flow_type.t -> string -> signal_decl

val name : t -> string
val incoming : t -> signal_decl list
val outgoing : t -> signal_decl list

val can_send : t -> conjugated:bool -> string -> bool
(** May a port with this protocol and conjugation emit the signal? *)

val can_receive : t -> conjugated:bool -> string -> bool

val payload_of : t -> string -> Dataflow.Flow_type.t option
(** Declared payload of the signal in either direction. *)

val equal_name : t -> t -> bool

val pp : Format.formatter -> t -> unit
