type port_kind = End | Relay

type port_decl = {
  pname : string;
  protocol : Protocol.t;
  conjugated : bool;
  kind : port_kind;
}

let port ?(conjugated = false) ?(kind = End) pname protocol =
  { pname; protocol; conjugated; kind }

type services = {
  send : port:string -> Statechart.Event.t -> unit;
  timer_after : float -> Statechart.Event.t -> unit;
  timer_every : float -> Statechart.Event.t -> unit;
  now : unit -> float;
}

type behavior = {
  on_start : unit -> unit;
  on_event : port:string -> Statechart.Event.t -> bool;
  configuration : unit -> string list;
}

type behavior_factory = services -> behavior

let machine_behavior ~make_context machine services =
  let ctx = make_context services in
  let instance = ref None in
  {
    on_start =
      (fun () -> instance := Some (Statechart.Instance.start machine ctx));
    on_event =
      (fun ~port:_ event ->
         match !instance with
         | Some i -> Statechart.Instance.handle i event
         | None -> false);
    configuration =
      (fun () ->
         match !instance with
         | Some i -> Statechart.Instance.configuration i
         | None -> []);
  }

type endpoint = { part : string option; port : string }

type connector = { from_ : endpoint; to_ : endpoint }

let connector ~from_ ~to_ = { from_; to_ }
let border port = { part = None; port }
let part_port part port = { part = Some part; port }

type t = {
  name : string;
  ports : port_decl list;
  behavior : behavior_factory option;
  parts : (string * t) list;
  connectors : connector list;
}

let check_unique what name names =
  let sorted = List.sort String.compare names in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then
        invalid_arg
          (Printf.sprintf "Umlrt.Capsule.create(%s): duplicate %s %S" name what a);
      walk rest
    | [ _ ] | [] -> ()
  in
  walk sorted

let create ?(ports = []) ?behavior ?(parts = []) ?(connectors = []) name =
  check_unique "port" name (List.map (fun p -> p.pname) ports);
  check_unique "part" name (List.map fst parts);
  { name; ports; behavior; parts; connectors }

let name t = t.name
let ports t = t.ports
let find_port t pname = List.find_opt (fun p -> String.equal p.pname pname) t.ports
let behavior t = t.behavior
let parts t = t.parts
let connectors t = t.connectors

let endpoint_to_string = function
  | { part = None; port } -> Printf.sprintf "self.%s" port
  | { part = Some part; port } -> Printf.sprintf "%s.%s" part port

(* Resolve an endpoint of a connector declared inside [t] to its port
   declaration, or None when the part/port does not exist. *)
let resolve_endpoint t ep =
  match ep.part with
  | None -> find_port t ep.port
  | Some part ->
    (match List.assoc_opt part t.parts with
     | None -> None
     | Some sub -> find_port sub ep.port)

let rec validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let check_connector c =
    let a = resolve_endpoint t c.from_ in
    let b = resolve_endpoint t c.to_ in
    (match a with
     | None -> err "%s: connector end %s does not exist" t.name (endpoint_to_string c.from_)
     | Some _ -> ());
    (match b with
     | None -> err "%s: connector end %s does not exist" t.name (endpoint_to_string c.to_)
     | Some _ -> ());
    match (a, b) with
    | Some pa, Some pb ->
      if not (Protocol.equal_name pa.protocol pb.protocol) then
        err "%s: connector %s -- %s joins protocols %s and %s" t.name
          (endpoint_to_string c.from_) (endpoint_to_string c.to_)
          (Protocol.name pa.protocol) (Protocol.name pb.protocol);
      let a_border = c.from_.part = None in
      let b_border = c.to_.part = None in
      (match (a_border, b_border) with
       | false, false ->
         if pa.conjugated = pb.conjugated then
           err "%s: sibling connector %s -- %s needs exactly one conjugated end"
             t.name (endpoint_to_string c.from_) (endpoint_to_string c.to_)
       | true, false | false, true ->
         if pa.conjugated <> pb.conjugated then
           err "%s: border connector %s -- %s must keep the same conjugation"
             t.name (endpoint_to_string c.from_) (endpoint_to_string c.to_)
       | true, true ->
         err "%s: connector %s -- %s joins two border ports of the same capsule"
           t.name (endpoint_to_string c.from_) (endpoint_to_string c.to_));
      (* A border port used as pass-through for parts must be a relay
         unless this capsule's behaviour is meant to receive it. *)
      let check_border_end border_flag (ep : endpoint) (p : port_decl) =
        if border_flag && p.kind = End && t.behavior = None && t.parts <> [] then
          err "%s: border End port %s has no behaviour to terminate messages"
            t.name (endpoint_to_string ep)
      in
      check_border_end a_border c.from_ pa;
      check_border_end b_border c.to_ pb
    | None, _ | _, None -> ()
  in
  List.iter check_connector t.connectors;
  (* End ports on a behaviour-less leaf capsule can never be served. *)
  if t.behavior = None && t.parts = [] then
    List.iter
      (fun p ->
         if p.kind = End then
           err "%s: End port %s on a capsule without behaviour" t.name p.pname)
      t.ports;
  let sub_errors = List.concat_map (fun (_, sub) -> validate sub) t.parts in
  List.rev !errors @ sub_errors
