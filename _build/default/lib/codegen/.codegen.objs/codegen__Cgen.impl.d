lib/codegen/cgen.ml: Buffer Dsl Float Hashtbl Int List Printf String
