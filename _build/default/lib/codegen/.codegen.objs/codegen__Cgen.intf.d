lib/codegen/cgen.mli: Dsl
