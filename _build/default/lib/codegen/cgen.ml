type output = {
  filename : string;
  contents : string;
}

exception Codegen_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

let rec expr_to_c ~resolve = function
  | Dsl.Expr.Num x ->
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
    else Printf.sprintf "%.17g" x
  | Dsl.Expr.Var name -> resolve name
  | Dsl.Expr.Payload -> resolve "payload"
  | Dsl.Expr.Neg e -> Printf.sprintf "(-%s)" (expr_to_c ~resolve e)
  | Dsl.Expr.Add (a, b) ->
    Printf.sprintf "(%s + %s)" (expr_to_c ~resolve a) (expr_to_c ~resolve b)
  | Dsl.Expr.Sub (a, b) ->
    Printf.sprintf "(%s - %s)" (expr_to_c ~resolve a) (expr_to_c ~resolve b)
  | Dsl.Expr.Mul (a, b) ->
    Printf.sprintf "(%s * %s)" (expr_to_c ~resolve a) (expr_to_c ~resolve b)
  | Dsl.Expr.Div (a, b) ->
    Printf.sprintf "(%s / %s)" (expr_to_c ~resolve a) (expr_to_c ~resolve b)
  | Dsl.Expr.Pow (a, b) ->
    Printf.sprintf "pow(%s, %s)" (expr_to_c ~resolve a) (expr_to_c ~resolve b)
  | Dsl.Expr.Call (name, args) ->
    let c_name =
      match name with
      | "sin" | "cos" | "tan" | "exp" | "log" | "sqrt" -> name
      | "abs" -> "fabs"
      | "min" -> "fmin"
      | "max" -> "fmax"
      | "sign" -> "umh_sign"
      | other -> fail "no C mapping for function %S" other
    in
    Printf.sprintf "%s(%s)"
      c_name
      (String.concat ", " (List.map (expr_to_c ~resolve) args))

(* ---------- model queries ---------- *)

type sinst = { si_name : string; si_decl : Dsl.Ast.streamer_decl }
type cinst = { ci_name : string; ci_decl : Dsl.Ast.capsule_decl }

let instances_of checked =
  let model = checked.Dsl.Typecheck.model in
  let sys =
    match model.Dsl.Ast.m_system with
    | Some s -> s
    | None -> fail "model has no system block"
  in
  let streamers =
    List.filter_map
      (function
        | Dsl.Ast.Istreamer { iname; iclass; _ } ->
          (match
             List.find_opt
               (fun (s : Dsl.Ast.streamer_decl) -> String.equal s.Dsl.Ast.s_name iclass)
               model.Dsl.Ast.m_streamers
           with
           | Some d -> Some { si_name = iname; si_decl = d }
           | None -> fail "unknown streamer class %S" iclass)
        | Dsl.Ast.Icapsule _ | Dsl.Ast.Irelay _ -> None)
      sys.Dsl.Ast.sys_instances
  in
  let capsules =
    List.filter_map
      (function
        | Dsl.Ast.Icapsule { iname; iclass; _ } ->
          (match
             List.find_opt
               (fun (c : Dsl.Ast.capsule_decl) -> String.equal c.Dsl.Ast.c_name iclass)
               model.Dsl.Ast.m_capsules
           with
           | Some d -> Some { ci_name = iname; ci_decl = d }
           | None -> fail "unknown capsule class %S" iclass)
        | Dsl.Ast.Istreamer _ | Dsl.Ast.Irelay _ -> None)
      sys.Dsl.Ast.sys_instances
  in
  (sys, streamers, capsules)

let all_signals model =
  let of_proto (p : Dsl.Ast.protocol_decl) =
    List.map (fun s -> s.Dsl.Ast.sig_name) (p.Dsl.Ast.proto_in @ p.Dsl.Ast.proto_out)
  in
  List.sort_uniq String.compare (List.concat_map of_proto model.Dsl.Ast.m_protocols)

let state_index (s : Dsl.Ast.streamer_decl) name =
  let rec find i = function
    | [] -> None
    | (v, _) :: _ when String.equal v name -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 s.Dsl.Ast.s_states

let in_ports (s : Dsl.Ast.streamer_decl) =
  List.filter_map
    (fun (d : Dsl.Ast.dport_decl) ->
       if d.Dsl.Ast.dp_dir = Some Dsl.Ast.Din then Some d.Dsl.Ast.dp_name else None)
    s.Dsl.Ast.s_dports

let out_ports (s : Dsl.Ast.streamer_decl) =
  List.filter_map
    (fun (d : Dsl.Ast.dport_decl) ->
       if d.Dsl.Ast.dp_dir = Some Dsl.Ast.Dout then Some d.Dsl.Ast.dp_name else None)
    s.Dsl.Ast.s_dports

(* Resolver for solver-context expressions: [kind] selects how state
   variables are addressed (raw x array vs the struct's state). *)
let solver_resolve (s : Dsl.Ast.streamer_decl) ~state_ref name =
  if String.equal name "t" then "t"
  else if String.equal name "payload" then "payload"
  else
    match state_index s name with
    | Some i -> Printf.sprintf "%s[%d]" state_ref i
    | None ->
      if List.mem_assoc name s.Dsl.Ast.s_params then Printf.sprintf "s->p_%s" name
      else if List.mem name (in_ports s) then Printf.sprintf "s->in_%s" name
      else fail "cannot compile identifier %S" name

(* ---------- per-streamer code ---------- *)

let emit_streamer buf { si_name = n; si_decl = s } =
  let dim = List.length s.Dsl.Ast.s_states in
  let nguards = List.length s.Dsl.Ast.s_guards in
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  b "/* streamer instance %s (class %s) */\n" n s.Dsl.Ast.s_name;
  b "typedef struct {\n  double x[%d];\n" (Int.max 1 dim);
  List.iter (fun (p, _) -> b "  double p_%s;\n" p) s.Dsl.Ast.s_params;
  List.iter (fun i -> b "  double in_%s;\n" i) (in_ports s);
  List.iter (fun o -> b "  double out_%s;\n" o) (out_ports s);
  if nguards > 0 then b "  double g_prev[%d];\n  int g_primed;\n" nguards;
  b "} %s_t;\n\nstatic %s_t %s;\n\n" n n n;
  (* init *)
  b "static void %s_init(%s_t *s) {\n" n n;
  List.iteri (fun i (_, v) -> b "  s->x[%d] = %.17g;\n" i v) s.Dsl.Ast.s_states;
  List.iter (fun (p, v) -> b "  s->p_%s = %.17g;\n" p v) s.Dsl.Ast.s_params;
  List.iter (fun i -> b "  s->in_%s = 0.0;\n" i) (in_ports s);
  List.iter (fun o -> b "  s->out_%s = 0.0;\n" o) (out_ports s);
  if nguards > 0 then b "  s->g_primed = 0;\n";
  b "}\n\n";
  (* rhs *)
  let resolve_x = solver_resolve s ~state_ref:"x" in
  b "static void %s_rhs(%s_t *s, double t, const double *x, double *dx) {\n" n n;
  b "  (void)s; (void)t; (void)x;\n";
  List.iteri
    (fun i (v, _) ->
       match List.assoc_opt v s.Dsl.Ast.s_eqs with
       | Some e -> b "  dx[%d] = %s;\n" i (expr_to_c ~resolve:resolve_x e)
       | None -> b "  dx[%d] = 0.0;\n" i)
    s.Dsl.Ast.s_states;
  b "}\n\n";
  (* RK4 step *)
  b "static void %s_step(%s_t *s, double t, double h) {\n" n n;
  b "  double k1[%d], k2[%d], k3[%d], k4[%d], tmp[%d];\n" dim dim dim dim dim;
  b "  int i;\n";
  b "  %s_rhs(s, t, s->x, k1);\n" n;
  b "  for (i = 0; i < %d; i++) tmp[i] = s->x[i] + 0.5 * h * k1[i];\n" dim;
  b "  %s_rhs(s, t + 0.5 * h, tmp, k2);\n" n;
  b "  for (i = 0; i < %d; i++) tmp[i] = s->x[i] + 0.5 * h * k2[i];\n" dim;
  b "  %s_rhs(s, t + 0.5 * h, tmp, k3);\n" n;
  b "  for (i = 0; i < %d; i++) tmp[i] = s->x[i] + h * k3[i];\n" dim;
  b "  %s_rhs(s, t + h, tmp, k4);\n" n;
  b "  for (i = 0; i < %d; i++)\n" dim;
  b "    s->x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);\n";
  b "}\n\n";
  (* outputs *)
  let resolve_sx = solver_resolve s ~state_ref:"s->x" in
  b "static void %s_outputs(%s_t *s, double t) {\n  (void)s; (void)t;\n" n n;
  List.iter
    (fun (o, e) -> b "  s->out_%s = %s;\n" o (expr_to_c ~resolve:resolve_sx e))
    s.Dsl.Ast.s_outputs;
  b "}\n\n";
  (* guards *)
  List.iteri
    (fun gi (g : Dsl.Ast.guard_decl) ->
       b "static double %s_guard_%d(%s_t *s, double t) {\n" n gi n;
       b "  (void)s; (void)t;\n  return %s;\n}\n\n"
         (expr_to_c ~resolve:resolve_sx g.Dsl.Ast.g_expr))
    s.Dsl.Ast.s_guards;
  (* strategies: handle a signal arriving at this streamer *)
  b "static void %s_signal(%s_t *s, int signal, double payload) {\n" n n;
  b "  (void)s; (void)signal; (void)payload;\n";
  List.iter
    (fun (st : Dsl.Ast.strategy_decl) ->
       b "  if (signal == SIG_%s) s->p_%s = %s;\n" st.Dsl.Ast.st_signal st.Dsl.Ast.st_param
         (expr_to_c ~resolve:resolve_sx st.Dsl.Ast.st_expr))
    s.Dsl.Ast.s_strategies;
  b "}\n\n"

(* ---------- per-capsule code ---------- *)

let rec leaf_states (st : Dsl.Ast.state_decl) =
  if st.Dsl.Ast.st_children = [] then [ st ]
  else List.concat_map leaf_states st.Dsl.Ast.st_children

(* Transitions visible from a leaf state = its own plus its ancestors'. *)
let rec transitions_for (states : Dsl.Ast.state_decl list) leaf_name
    (inherited : Dsl.Ast.transition_decl list) =
  List.concat_map
    (fun (st : Dsl.Ast.state_decl) ->
       if String.equal st.Dsl.Ast.st_name leaf_name then
         st.Dsl.Ast.st_transitions @ inherited
       else
         transitions_for st.Dsl.Ast.st_children leaf_name
           (st.Dsl.Ast.st_transitions @ inherited))
    states

(* Entering a (possibly composite) state means descending via initials to
   a leaf. *)
let rec entry_leaf (states : Dsl.Ast.state_decl list) name =
  match
    List.find_opt (fun (st : Dsl.Ast.state_decl) -> String.equal st.Dsl.Ast.st_name name) states
  with
  | Some st ->
    if st.Dsl.Ast.st_children = [] then Some st.Dsl.Ast.st_name
    else
      (match st.Dsl.Ast.st_initial with
       | Some i -> entry_leaf st.Dsl.Ast.st_children i
       | None -> None)
  | None ->
    List.find_map
      (fun (st : Dsl.Ast.state_decl) -> entry_leaf st.Dsl.Ast.st_children name)
      states

let emit_capsule buf ~route { ci_name = n; ci_decl = c } =
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let leaves = List.concat_map leaf_states c.Dsl.Ast.c_states in
  b "/* capsule instance %s (class %s) */\n" n c.Dsl.Ast.c_name;
  b "typedef enum {\n";
  List.iter (fun (st : Dsl.Ast.state_decl) -> b "  %s_S_%s,\n" n st.Dsl.Ast.st_name) leaves;
  b "} %s_state_t;\n\ntypedef struct { %s_state_t state; } %s_t;\n\nstatic %s_t %s;\n\n"
    n n n n n;
  let initial_leaf =
    match c.Dsl.Ast.c_initial with
    | Some i ->
      (match entry_leaf c.Dsl.Ast.c_states i with
       | Some leaf -> leaf
       | None -> fail "capsule %s: cannot resolve initial leaf" n)
    | None -> fail "capsule %s: no initial state" n
  in
  b "static void %s_init(%s_t *c) { c->state = %s_S_%s; }\n\n" n n n initial_leaf;
  b "static void %s_handle(%s_t *c, int signal, double payload) {\n" n n;
  b "  (void)c; (void)signal; (void)payload;\n  switch (c->state) {\n";
  List.iter
    (fun (leaf : Dsl.Ast.state_decl) ->
       b "  case %s_S_%s:\n" n leaf.Dsl.Ast.st_name;
       List.iter
         (fun (tr : Dsl.Ast.transition_decl) ->
            let target_leaf =
              match entry_leaf c.Dsl.Ast.c_states tr.Dsl.Ast.tr_target with
              | Some l -> l
              | None -> tr.Dsl.Ast.tr_target
            in
            b "    if (signal == SIG_%s) {\n" tr.Dsl.Ast.tr_trigger;
            b "      c->state = %s_S_%s;\n" n target_leaf;
            (match tr.Dsl.Ast.tr_send with
             | Some (signal, port) -> b "      %s\n" (route ~capsule:n ~port ~signal)
             | None -> ());
            b "      return;\n    }\n")
         (transitions_for c.Dsl.Ast.c_states leaf.Dsl.Ast.st_name []);
       b "    break;\n")
    leaves;
  b "  }\n}\n\n"

(* ---------- whole program ---------- *)

let header_file model_name =
  { filename = "umh_model.h";
    contents =
      Printf.sprintf
        "/* Generated by umh codegen from model %s. Do not edit. */\n\
         #ifndef UMH_MODEL_H\n#define UMH_MODEL_H\n\n\
         void umh_run(double t_end);\n\n#endif\n"
        model_name }

let generate checked =
  if not (Dsl.Typecheck.is_ok checked) then
    fail "model has type errors:\n%s" (String.concat "\n" checked.Dsl.Typecheck.errors);
  let model = checked.Dsl.Typecheck.model in
  let sys, streamers, capsules = instances_of checked in
  List.iter
    (fun { si_name; si_decl } ->
       if si_decl.Dsl.Ast.s_contains <> [] then
         fail
           "streamer instance %S: composite streamers are not supported by the C generator yet; instantiate the leaves directly"
           si_name)
    streamers;
  let buf = Buffer.create 16_384 in
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  b "/* Generated by umh codegen from model %s. Do not edit.\n" model.Dsl.Ast.m_name;
  b " *\n * Architecture (mirrors the UML-RT streamer extension):\n";
  b " *  - one struct + RK4 stepper per streamer thread;\n";
  b " *  - one switch/case state machine per capsule (event thread);\n";
  b " *  - a deterministic cooperative scheduler stands in for RTOS threads;\n";
  b " *  - guards use per-tick sign-change detection (tick-quantized events).\n */\n\n";
  b "#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n#include \"umh_model.h\"\n\n";
  b "static double umh_sign(double x) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); }\n\n";
  (* signal ids *)
  b "enum {\n";
  List.iter (fun s -> b "  SIG_%s,\n" s) (all_signals model);
  b "};\n\n";
  (* links: streamer sport -- capsule port *)
  let links =
    List.filter_map
      (function
        | Dsl.Ast.Clink { cl_streamer; cl_capsule; _ } -> Some (cl_streamer, cl_capsule)
        | Dsl.Ast.Cflow _ -> None)
      sys.Dsl.Ast.sys_connections
  in
  (* forward decls so capsules can emit to streamers and vice versa *)
  List.iter
    (fun { si_name; _ } ->
       b "static void %s_dispatch_signal(int signal, double payload);\n" si_name)
    streamers;
  List.iter
    (fun { ci_name; _ } ->
       b "static void %s_dispatch(int signal, double payload);\n" ci_name)
    capsules;
  b "\n";
  List.iter (emit_streamer buf) streamers;
  (* Route: capsule port -> linked streamer. *)
  let route ~capsule ~port ~signal =
    match
      List.find_opt
        (fun ((_, _), (ci, cp)) -> String.equal ci capsule && String.equal cp port)
        links
    with
    | Some ((si, _), _) ->
      Printf.sprintf "%s_dispatch_signal(SIG_%s, 0.0);" si signal
    | None -> Printf.sprintf "/* port %s unconnected */ (void)0;" port
  in
  List.iter (emit_capsule buf ~route) capsules;
  (* dispatch shims (defined after the instance structs exist) *)
  List.iter
    (fun { si_name; _ } ->
       b "static void %s_dispatch_signal(int signal, double payload) {\n\
         \  %s_signal(&%s, signal, payload);\n}\n\n"
         si_name si_name si_name)
    streamers;
  List.iter
    (fun { ci_name; _ } ->
       b "static void %s_dispatch(int signal, double payload) {\n\
         \  %s_handle(&%s, signal, payload);\n}\n\n"
         ci_name ci_name ci_name)
    capsules;
  (* flows: copy output registers to input registers (through relays and
     capsule junction DPorts, resolved statically). *)
  let relay_types = Hashtbl.create 8 in
  List.iter
    (function
      | Dsl.Ast.Irelay { iname; _ } -> Hashtbl.replace relay_types iname ()
      | Dsl.Ast.Icapsule _ | Dsl.Ast.Istreamer _ -> ())
    sys.Dsl.Ast.sys_instances;
  let flows =
    List.filter_map
      (function
        | Dsl.Ast.Cflow { cf_src; cf_dst; _ } -> Some (cf_src, cf_dst)
        | Dsl.Ast.Clink _ -> None)
      sys.Dsl.Ast.sys_connections
  in
  (* A "slot" is a C lvalue for an endpoint; relays/junctions become plain
     doubles. *)
  let junctions = Hashtbl.create 8 in
  List.iter
    (fun ((si, sp), (di, dp)) ->
       let add inst port =
         if Hashtbl.mem relay_types inst
            || List.exists (fun { ci_name; _ } -> String.equal ci_name inst) capsules
         then Hashtbl.replace junctions (Printf.sprintf "%s__%s" inst port) ()
       in
       add si sp;
       add di dp)
    flows;
  Hashtbl.iter (fun name () -> b "static double J_%s;\n" name) junctions;
  b "\n";
  let slot (inst, port) ~producer =
    if Hashtbl.mem relay_types inst then
      (* relay: all ports alias one value *)
      Printf.sprintf "J_%s__in" inst
    else if List.exists (fun { ci_name; _ } -> String.equal ci_name inst) capsules then
      Printf.sprintf "J_%s__%s" inst port
    else if producer then Printf.sprintf "%s.out_%s" inst port
    else Printf.sprintf "%s.in_%s" inst port
  in
  (* Relay input slots must exist even if only outputs were mentioned. *)
  List.iter
    (fun ((si, _), _) ->
       if Hashtbl.mem relay_types si && not (Hashtbl.mem junctions (si ^ "__in"))
       then begin
         Hashtbl.replace junctions (si ^ "__in") ();
         b "static double J_%s__in;\n" si
       end)
    flows;
  b "static void umh_propagate(void) {\n";
  (* naive fixed-point-free ordering: copy each flow in declaration order
     twice so junction chains settle (graphs are shallow in practice). *)
  for _pass = 1 to 2 do
    List.iter
      (fun (src, dst) ->
         b "  %s = %s;\n" (slot dst ~producer:false) (slot src ~producer:true))
      flows
  done;
  b "}\n\n";
  (* guard dispatch per streamer *)
  List.iter
    (fun { si_name = n; si_decl = s } ->
       if s.Dsl.Ast.s_guards <> [] then begin
         b "static void %s_check_guards(double t) {\n" n;
         List.iteri
           (fun gi (g : Dsl.Ast.guard_decl) ->
              let target =
                (* which capsule hears this sport? *)
                match
                  List.find_opt
                    (fun ((si, sp), _) ->
                       String.equal si n && String.equal sp g.Dsl.Ast.g_sport)
                    links
                with
                | Some (_, (ci, _)) ->
                  fun payload_c ->
                    Printf.sprintf "%s_dispatch(SIG_%s, %s);" ci g.Dsl.Ast.g_signal payload_c
                | None -> fun _payload_c -> "/* unlinked sport */ (void)0;"
              in
              let payload_c =
                match g.Dsl.Ast.g_payload with
                | None -> "0.0"
                | Some pe ->
                  let resolve name =
                    if String.equal name "t" then "t"
                    else
                      match state_index s name with
                      | Some i -> Printf.sprintf "%s.x[%d]" n i
                      | None ->
                        if List.mem_assoc name s.Dsl.Ast.s_params then
                          Printf.sprintf "%s.p_%s" n name
                        else if List.mem name (in_ports s) then
                          Printf.sprintf "%s.in_%s" n name
                        else fail "cannot compile identifier %S" name
                  in
                  expr_to_c ~resolve pe
              in
              b "  {\n    double g = %s_guard_%d(&%s, t);\n" n gi n;
              let fire =
                match g.Dsl.Ast.g_dir with
                | Dsl.Ast.Grising -> Printf.sprintf "%s.g_prev[%d] < 0.0 && g >= 0.0" n gi
                | Dsl.Ast.Gfalling -> Printf.sprintf "%s.g_prev[%d] > 0.0 && g <= 0.0" n gi
                | Dsl.Ast.Gboth ->
                  Printf.sprintf
                    "(%s.g_prev[%d] < 0.0 && g >= 0.0) || (%s.g_prev[%d] > 0.0 && g <= 0.0)"
                    n gi n gi
              in
              b "    if (%s.g_primed && (%s)) { %s }\n" n fire (target payload_c);
              b "    %s.g_prev[%d] = g;\n  }\n" n gi)
           s.Dsl.Ast.s_guards;
         b "  %s.g_primed = 1;\n}\n\n" n
       end)
    streamers;
  (* scheduler *)
  b "void umh_run(double t_end) {\n";
  List.iter (fun { si_name; _ } -> b "  %s_init(&%s);\n" si_name si_name) streamers;
  List.iter (fun { ci_name; _ } -> b "  %s_init(&%s);\n" ci_name ci_name) capsules;
  b "  double t = 0.0;\n";
  List.iteri
    (fun i { si_name = n; si_decl = s } ->
       let rate = match s.Dsl.Ast.s_rate with Some r -> r | None -> 0.01 in
       let h =
         match s.Dsl.Ast.s_method with
         | Some (Dsl.Ast.Mfixed (_, step)) -> step
         | Some (Dsl.Ast.Mimplicit step) -> step
         | Some Dsl.Ast.Madaptive | None -> rate /. 10.
       in
       b "  double next_%d = %.17g; const double rate_%d = %.17g; const double h_%d = %.17g;\n"
         i rate i rate i (Float.min h rate);
       ignore n)
    streamers;
  b "  printf(\"time";
  List.iter
    (fun { si_name = n; si_decl = s } ->
       List.iter (fun o -> b ",%s.%s" n o) (out_ports s))
    streamers;
  b "\\n\");\n";
  b "  while (t < t_end) {\n";
  b "    double due = t_end; int who = -1;\n";
  List.iteri
    (fun i _ -> b "    if (next_%d < due) { due = next_%d; who = %d; }\n" i i i)
    streamers;
  b "    if (who < 0) break;\n    t = due;\n";
  List.iteri
    (fun i { si_name = n; si_decl = s } ->
       b "    if (who == %d) {\n" i;
       b "      double t0 = t - rate_%d;\n      double tt = t0;\n" i;
       b "      while (tt < t - 1e-15) {\n";
       b "        double hh = h_%d; if (tt + hh > t) hh = t - tt;\n" i;
       b "        %s_step(&%s, tt, hh);\n        tt += hh;\n      }\n" n n;
       b "      %s_outputs(&%s, t);\n      umh_propagate();\n" n n;
       if s.Dsl.Ast.s_guards <> [] then b "      %s_check_guards(t);\n" n;
       if i = 0 then begin
         b "      printf(\"%%.6f\", t);\n";
         List.iter
           (fun { si_name = m; si_decl = sd } ->
              List.iter (fun o -> b "      printf(\",%%.9g\", %s.out_%s);\n" m o)
                (out_ports sd))
           streamers;
         b "      printf(\"\\n\");\n"
       end;
       b "      next_%d += rate_%d;\n    }\n" i i)
    streamers;
  b "  }\n}\n\n";
  b "#ifndef UMH_NO_MAIN\nint main(int argc, char **argv) {\n";
  b "  umh_run(argc > 1 ? atof(argv[1]) : 10.0);\n  return 0;\n}\n#endif\n";
  [ header_file model.Dsl.Ast.m_name;
    { filename = "umh_model.c"; contents = Buffer.contents buf } ]
