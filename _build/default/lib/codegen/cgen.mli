(** C code generation from a checked .umh model — the last stage of the
    paper's pipeline ("from requirement analysis, model design,
    simulation, until generation code").

    The generated program mirrors the runtime architecture:
    - one C struct + step function per streamer thread (RK4 fixed step,
      parameters, input/output registers, linear-interpolation
      zero-crossing detection for guards);
    - one switch/case state machine per capsule on the event thread;
    - a deterministic cooperative scheduler in [main] standing in for
      the RTOS threads (each streamer ticks at its declared rate; signal
      queues connect the two worlds), so the generated code runs anywhere
      for validation before RTOS deployment. *)

type output = {
  filename : string;
  contents : string;
}

exception Codegen_error of string

val expr_to_c : resolve:(string -> string) -> Dsl.Expr.t -> string
(** Compile an expression to C syntax; [resolve] maps identifiers to C
    lvalues. Raises {!Codegen_error} on unresolvable constructs. *)

val generate : Dsl.Typecheck.checked -> output list
(** [umh_model.h] and [umh_model.c]. Raises {!Codegen_error} when the
    model has type errors or no system block. *)
