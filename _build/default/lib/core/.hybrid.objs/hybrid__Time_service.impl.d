lib/core/time_service.ml: Des
