lib/core/streamer.mli: Dataflow Ode Solver Strategy Umlrt
