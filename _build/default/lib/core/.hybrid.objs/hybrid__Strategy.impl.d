lib/core/strategy.ml: List Solver Statechart String
