lib/core/stereotype.mli: Format
