lib/core/streamer.ml: Array Dataflow Float List Ode Printf Solver Strategy String Umlrt
