lib/core/strategy.mli: Solver Statechart
