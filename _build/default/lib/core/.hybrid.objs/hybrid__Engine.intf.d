lib/core/engine.mli: Dataflow Des Rt Sigtrace Solver Statechart Streamer Time_service Umlrt
