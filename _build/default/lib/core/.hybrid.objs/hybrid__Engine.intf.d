lib/core/engine.mli: Dataflow Des Fault Rt Sigtrace Solver Statechart Streamer Time_service Umlrt
