lib/core/solver.mli: Ode Time_service
