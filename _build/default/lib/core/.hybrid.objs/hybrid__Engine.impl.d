lib/core/engine.ml: Array Check Dataflow Des Fault Float Hashtbl List Obs Ode Option Printf Queue Rt Sigtrace Solver Statechart Strategy Streamer String Time_service Umlrt
