lib/core/threading.mli: Format Rt
