lib/core/check.mli: Dataflow Streamer Umlrt
