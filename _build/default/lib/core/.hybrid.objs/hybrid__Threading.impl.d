lib/core/threading.ml: Float Format List Rt
