lib/core/stereotype.ml: Format List String
