lib/core/solver.ml: Array Hashtbl List Ode Printf String Time_service
