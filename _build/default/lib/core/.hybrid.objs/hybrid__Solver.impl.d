lib/core/solver.ml: Array Float Hashtbl List Obs Ode Printf String Time_service
