lib/core/solver.ml: Array Hashtbl List Obs Ode Printf String Time_service
