lib/core/time_service.mli: Des
