lib/core/check.ml: Dataflow List Printf Streamer String Umlrt
