let default_wcet ~utilization period = utilization *. period

let tasks_for ?event_task ?wcet_of threads =
  let wcet_of =
    match wcet_of with
    | Some f -> f
    | None -> fun _role period -> default_wcet ~utilization:0.1 period
  in
  let streamer_tasks =
    List.map
      (fun (role, period) ->
         Rt.Task.create ~period ~wcet:(wcet_of role period) role)
      threads
  in
  match event_task with
  | Some task -> task :: streamer_tasks
  | None -> streamer_tasks

type report = {
  tasks : Rt.Task.t list;
  utilization : float;
  rm_verdict : Rt.Rm.verdict;
  rm_exact : bool;
  edf_ok : bool;
  breakdown : float;
  simulated_misses_rm : int;
  simulated_misses_edf : int;
}

let analyze ?sim_horizon tasks =
  let horizon =
    match sim_horizon with
    | Some h -> h
    | None ->
      20. *. List.fold_left (fun acc t -> Float.max acc t.Rt.Task.period) 1e-9 tasks
  in
  let sim policy = Rt.Sched_sim.miss_count (Rt.Sched_sim.simulate policy tasks ~horizon) in
  { tasks;
    utilization = Rt.Task.total_utilization tasks;
    rm_verdict = Rt.Rm.utilization_test tasks;
    rm_exact = Rt.Rm.schedulable tasks;
    edf_ok = Rt.Edf.schedulable tasks;
    breakdown = (if tasks = [] then 0. else Rt.Rm.breakdown_utilization tasks);
    simulated_misses_rm = sim Rt.Sched_sim.Fixed_priority;
    simulated_misses_edf = sim Rt.Sched_sim.Edf }

let verdict_name = function
  | Rt.Rm.Schedulable -> "schedulable"
  | Rt.Rm.Inconclusive -> "inconclusive"
  | Rt.Rm.Overloaded -> "overloaded"

let pp_report ppf r =
  Format.fprintf ppf
    "tasks=%d U=%.3f rm(LL)=%s rm(exact)=%b edf=%b breakdown=%.2f misses(rm)=%d misses(edf)=%d"
    (List.length r.tasks) r.utilization (verdict_name r.rm_verdict) r.rm_exact
    r.edf_ok r.breakdown r.simulated_misses_rm r.simulated_misses_edf
