type env = {
  param : string -> float;
  input : string -> float;
  clock : Time_service.t;
}

type rhs = env -> float -> float array -> float array

type guard = {
  guard_name : string;
  direction : Ode.Events.direction;
  expr : env -> float -> float array -> float;
}

type t = {
  table : (string, float) Hashtbl.t;
  env : env;
  integ : Ode.Integrator.t;
  dim : int;
  mutable crossings : int;
}

let make_system ~dim env rhs =
  Ode.System.create ~dim (fun time y -> rhs env time y)

let create ?(method_ = Ode.Integrator.Fixed (Ode.Fixed.Rk4, 1e-3)) ~dim ~init
    ~params ~input ~clock ~t0 rhs =
  if Array.length init <> dim then
    invalid_arg "Hybrid.Solver.create: init state dimension mismatch";
  let table = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace table k v) params;
  let env =
    { param =
        (fun name ->
           match Hashtbl.find_opt table name with
           | Some v -> v
           | None -> failwith (Printf.sprintf "Hybrid.Solver: unknown parameter %S" name));
      input; clock }
  in
  let integ = Ode.Integrator.create ~method_ (make_system ~dim env rhs) ~t0 init in
  { table; env; integ; dim; crossings = 0 }

let env t = t.env
let time t = Ode.Integrator.time t.integ
let state t = Ode.Integrator.state t.integ
let set_state t y = Ode.Integrator.set_state t.integ y

let get_param t name = t.env.param name

let set_param t name v = Hashtbl.replace t.table name v

let params t =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])

let set_rhs t rhs =
  Ode.Integrator.replace_system t.integ (make_system ~dim:t.dim t.env rhs)

let to_ode_guard t g =
  Ode.Events.guard ~direction:g.direction g.guard_name
    (fun time y -> g.expr t.env time y)

let m_crossings = Obs.Metrics.counter "ode.guard_crossings"

let advance t ~until ~guards ~on_crossing =
  if until > time t then begin
    let ode_guards = List.map (to_ode_guard t) guards in
    let rec loop () =
      match Ode.Integrator.advance_guarded t.integ until ode_guards with
      | Ode.Integrator.Reached _ -> ()
      | Ode.Integrator.Interrupted crossing ->
        t.crossings <- t.crossings + 1;
        Obs.Metrics.incr m_crossings;
        if Obs.Tracer.enabled () then
          Obs.Tracer.instant ~cat:"ode" ~name:"crossing"
            ~args:
              [ ("guard", Obs.Tracer.Str crossing.Ode.Events.guard_name) ]
            ~sim_time:crossing.Ode.Events.time ();
        on_crossing crossing;
        loop ()
    in
    loop ()
  end

let steps_taken t = Ode.Integrator.steps_taken t.integ
let crossings_seen t = t.crossings
