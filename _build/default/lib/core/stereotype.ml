type t =
  | Streamer
  | DPort
  | SPort
  | Flow
  | Relay
  | Flow_type
  | Solver
  | Strategy
  | Time

let all =
  [ Streamer; DPort; SPort; Flow; Relay; Flow_type; Solver; Strategy; Time ]

let paper_count = 8

let name = function
  | Streamer -> "streamer"
  | DPort -> "DPort"
  | SPort -> "SPort"
  | Flow -> "flow"
  | Relay -> "relay"
  | Flow_type -> "flow type"
  | Solver -> "solver"
  | Strategy -> "strategy"
  | Time -> "Time"

let umlrt_counterpart = function
  | Streamer -> "capsule"
  | DPort | SPort -> "port"
  | Flow | Relay -> "connect"
  | Flow_type -> "protocol"
  | Solver | Strategy -> "state machine, state"
  | Time -> "Time service"

let implementing_module = function
  | Streamer -> "Hybrid.Streamer"
  | DPort -> "Dataflow.Port"
  | SPort -> "Hybrid.Streamer (sport declarations) + Rt.Channel"
  | Flow -> "Dataflow.Graph (connect)"
  | Relay -> "Dataflow.Graph (add_relay)"
  | Flow_type -> "Dataflow.Flow_type"
  | Solver -> "Hybrid.Solver"
  | Strategy -> "Hybrid.Strategy"
  | Time -> "Hybrid.Time_service"

let description = function
  | Streamer ->
    "capsule-like container whose behaviour is a solver computing equations"
  | DPort -> "data port carrying typed dataflow (drawn as a circle)"
  | SPort -> "signal port conveying protocol messages (drawn as a square)"
  | Flow -> "typed dataflow connection; output type must be a subset of input type"
  | Relay -> "relay point generating two similar flows from one flow"
  | Flow_type -> "record of named fields typing a DPort's dataflow"
  | Solver ->
    "receives SPort signals and DPort data, modifies parameters, computes equations"
  | Strategy -> "named reaction selecting how a signal changes the solver"
  | Time -> "continuous variable usable as the simulation clock"

let of_name s =
  List.find_opt (fun st -> String.equal (name st) s) all

let table1 () =
  [ ("capsule", "streamer");
    ("port", "DPort, SPort");
    ("connect", "flow, relay");
    ("protocol", "flow type");
    ("state machine, state", "solver, strategy");
    ("Time service", "Time") ]

let pp_table ppf () =
  Format.fprintf ppf "%-22s | %s@." "UML-RT" "Extension";
  Format.fprintf ppf "%s@." (String.make 42 '-');
  List.iter
    (fun (a, b) -> Format.fprintf ppf "%-22s | %s@." a b)
    (table1 ())
