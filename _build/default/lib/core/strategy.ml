type control = {
  set_param : string -> float -> unit;
  get_param : string -> float;
  get_state : unit -> float array;
  set_state : float array -> unit;
  set_rhs : Solver.rhs -> unit;
  emit : sport:string -> Statechart.Event.t -> unit;
  now : unit -> float;
}

type handler = control -> Statechart.Event.t -> unit

type t = {
  mutable handlers : (string * handler) list;  (* reverse registration order *)
}

let create () = { handlers = [] }

let on t ~signal handler = t.handlers <- (signal, handler) :: t.handlers

let signals t =
  List.sort_uniq String.compare (List.map fst t.handlers)

let handles t signal = List.mem_assoc signal t.handlers

let handle t control event =
  let signal = Statechart.Event.signal event in
  let matching =
    List.rev
      (List.filter_map
         (fun (s, h) -> if String.equal s signal then Some h else None)
         t.handlers)
  in
  List.iter (fun h -> h control event) matching;
  matching <> []

let set_param_from_payload name control event =
  match Statechart.Event.float_payload event with
  | Some v -> control.set_param name v
  | None -> ()

let set_param_const name v control _event = control.set_param name v

(* Graceful degradation: the engine's supervisor dispatches this signal
   through the ordinary [handle] path when a solver fault is detected, so
   a degraded mode (e.g. an LQR strategy falling back to bang-bang) is
   just another registered handler — modeled in the formalism, per the
   paper's strategy stereotype, not bolted on. *)
let degrade_signal = "__degrade"

let on_degrade t handler = on t ~signal:degrade_signal handler

let reset_state y control _event = control.set_state y

let reply ~sport ~make control event = control.emit ~sport (make control event)
