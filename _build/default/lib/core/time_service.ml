type t = {
  engine : Des.Engine.t;
  scale : float;
  offset : float;
}

let create ?(scale = 1.) ?(offset = 0.) engine =
  if scale <= 0. then invalid_arg "Hybrid.Time_service.create: scale must be positive";
  { engine; scale; offset }

let now t = (t.scale *. Des.Engine.now t.engine) +. t.offset
let scale t = t.scale
let offset t = t.offset

let to_engine_time t local = (local -. t.offset) /. t.scale

let derived t ~scale ~offset =
  if scale <= 0. then invalid_arg "Hybrid.Time_service.derived: scale must be positive";
  { engine = t.engine; scale = t.scale *. scale; offset = (t.offset *. scale) +. offset }

let wait_until t local callback =
  let time = to_engine_time t local in
  ignore (Des.Engine.schedule_at t.engine ~time callback)
