(** The [Time] stereotype: a continuous variable usable as the simulation
    clock.

    The paper's motivation: "Timing in UML-RT is unpredictable" — discrete
    timers only fire as events. The Time stereotype instead exposes the
    continuous simulated time directly to solvers (and supports affine
    re-parameterization, e.g. engine seconds -> plant-local time). *)

type t

val create : ?scale:float -> ?offset:float -> Des.Engine.t -> t
(** Continuous clock reading [scale * engine_time + offset]; [scale]
    defaults to 1 and must be positive. *)

val now : t -> float
val scale : t -> float
val offset : t -> float

val to_engine_time : t -> float -> float
(** Inverse mapping: local time -> engine time. *)

val derived : t -> scale:float -> offset:float -> t
(** A further affine re-parameterization of this clock. *)

val wait_until : t -> float -> (unit -> unit) -> unit
(** Schedule a callback at the given {e local} time (must not be in the
    local past). *)
