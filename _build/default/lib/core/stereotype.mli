(** The paper's Table 1: the eight new stereotypes and the UML-RT
    concepts they extend, as an executable registry. The [table1] bench
    prints this table and cross-checks each entry against the module that
    implements it. *)

type t =
  | Streamer
  | DPort
  | SPort
  | Flow
  | Relay
  | Flow_type
  | Solver
  | Strategy
  | Time

val all : t list
(** In the paper's order. (The paper announces "eight new stereotypes"
    while Table 1 lists nine names; we reproduce the table, and keep the
    paper's own count available as {!paper_count}.) *)

val paper_count : int

val name : t -> string
(** Stereotype name as printed in the paper. *)

val umlrt_counterpart : t -> string
(** Left column of Table 1. *)

val implementing_module : t -> string
(** Where this stereotype lives in the present codebase. *)

val description : t -> string
(** One-line semantics, condensed from Section 2. *)

val of_name : string -> t option

val table1 : unit -> (string * string) list
(** The paper's two-column table: (UML-RT concept, extension), with the
    rows merged exactly as printed. *)

val pp_table : Format.formatter -> unit -> unit
