(** Well-formedness rules of the extension (the executable version of the
    paper's Figures 2 and 3).

    Each rule is catalogued with its source in the paper; the checkers
    return human-readable violations. Rule R6 (streamers never contain
    capsules) is enforced by construction — {!Streamer.t} has no capsule
    children — and re-checked syntactically by the DSL front end. *)

type rule = {
  id : string;          (** "R1" … "R8" *)
  title : string;
  paper_ref : string;   (** where the paper states it *)
}

val rules : rule list

val find_rule : string -> rule option

(** {2 Checkers} *)

val streamer_errors : Streamer.t -> string list
(** R1 (solver present — by construction), R2 (flow-type subset on
    internal flows), R7 (positive thread rate), port uniqueness, guard
    SPort validity. Alias of {!Streamer.validate}. *)

val flow_protocol_prefix : string
(** Capsule-side DPorts are modelled as UML-RT ports whose protocol name
    carries this prefix (["flow:"]). *)

val flow_protocol : Dataflow.Flow_type.t -> Umlrt.Protocol.t
(** The protocol standing for a flow type on the capsule side — a single
    [data] signal whose payload is the flow type. *)

val capsule_dport_errors : Umlrt.Capsule.t -> string list
(** R5: every flow-typed port of a capsule (recursively) must be declared
    [Relay] — "in capsules, DPorts are only used as relay ports. No data
    will be processed by capsules." *)

val relay_fanout_errors :
  (string * Dataflow.Flow_type.t * int) list -> string list
(** R3: each relay (name, type, fanout) must have fanout >= 2. *)

val sport_link_errors :
  sport:Streamer.sport_decl option
  -> border:Umlrt.Capsule.port_decl option
  -> role:string -> sport_name:string -> border_port:string -> string list
(** R4: an SPort link must join an existing SPort to an existing border
    port speaking the same protocol. *)
