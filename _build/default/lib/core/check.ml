type rule = {
  id : string;
  title : string;
  paper_ref : string;
}

let rules =
  [ { id = "R1"; title = "a streamer's behaviour is a solver computing equations";
      paper_ref = "Sec. 2, streamer stereotype" };
    { id = "R2"; title = "output DPort flow type must be a subset of the input's";
      paper_ref = "Sec. 2, DPort connection rule" };
    { id = "R3"; title = "a relay generates two (or more) similar flows from a flow";
      paper_ref = "Sec. 2, relay stereotype" };
    { id = "R4"; title = "streamers communicate with capsules only through SPorts";
      paper_ref = "Sec. 2, SPort stereotype" };
    { id = "R5"; title = "capsule DPorts are relay-only; capsules never process data";
      paper_ref = "Sec. 2, capsule extension" };
    { id = "R6"; title = "capsules may contain streamers; streamers never contain capsules";
      paper_ref = "Sec. 2, containment principle" };
    { id = "R7"; title = "streamers are assigned to threads with positive rates";
      paper_ref = "Sec. 2, implementation" };
    { id = "R8"; title = "the Time stereotype is a continuous simulation clock";
      paper_ref = "Sec. 2, Time stereotype" } ]

let find_rule id = List.find_opt (fun r -> String.equal r.id id) rules

let streamer_errors = Streamer.validate

let flow_protocol_prefix = "flow:"

let flow_protocol dtype =
  Umlrt.Protocol.create
    ~incoming:[ Umlrt.Protocol.signal ~payload:dtype "data" ]
    ~outgoing:[ Umlrt.Protocol.signal ~payload:dtype "data" ]
    (flow_protocol_prefix ^ Dataflow.Flow_type.to_string dtype)

let is_flow_protocol p =
  let name = Umlrt.Protocol.name p in
  String.length name >= String.length flow_protocol_prefix
  && String.equal (String.sub name 0 (String.length flow_protocol_prefix))
       flow_protocol_prefix

let rec capsule_dport_errors capsule =
  let own =
    List.filter_map
      (fun (p : Umlrt.Capsule.port_decl) ->
         if is_flow_protocol p.Umlrt.Capsule.protocol
            && p.Umlrt.Capsule.kind = Umlrt.Capsule.End
         then
           Some
             (Printf.sprintf
                "R5: capsule %s port %S is a DPort declared End; capsule DPorts must be relay-only"
                (Umlrt.Capsule.name capsule) p.Umlrt.Capsule.pname)
         else None)
      (Umlrt.Capsule.ports capsule)
  in
  own
  @ List.concat_map (fun (_, sub) -> capsule_dport_errors sub)
      (Umlrt.Capsule.parts capsule)

let relay_fanout_errors relays =
  List.filter_map
    (fun (name, _, fanout) ->
       if fanout < 2 then
         Some (Printf.sprintf "R3: relay %S has fanout %d, needs >= 2" name fanout)
       else None)
    relays

let sport_link_errors ~sport ~border ~role ~sport_name ~border_port =
  let errors = ref [] in
  let err s = errors := s :: !errors in
  (match sport with
   | None -> err (Printf.sprintf "R4: streamer %s has no SPort %S" role sport_name)
   | Some _ -> ());
  (match border with
   | None -> err (Printf.sprintf "R4: root capsule has no border port %S" border_port)
   | Some _ -> ());
  (match (sport, border) with
   | Some sp, Some bp ->
     if not (Umlrt.Protocol.equal_name sp.Streamer.protocol bp.Umlrt.Capsule.protocol)
     then
       err
         (Printf.sprintf
            "R4: SPort %s.%s (protocol %s) linked to border port %S (protocol %s)"
            role sport_name
            (Umlrt.Protocol.name sp.Streamer.protocol)
            border_port
            (Umlrt.Protocol.name bp.Umlrt.Capsule.protocol))
   | (Some _ | None), _ -> ());
  List.rev !errors
