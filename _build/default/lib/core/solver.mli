(** The [solver] stereotype: the behaviour of a streamer.

    Per the paper, a solver "is responsible for receiving signal from
    SPorts and data from DPorts and operating system services, modifying
    parameters, computing equations, and sending out the results". Here
    it owns the continuous state, a parameter table, the equations (a
    right-hand side reading parameters and input DPorts at evaluation
    time), and the numerical integrator that advances them. *)

(** What the equations can see while being evaluated. *)
type env = {
  param : string -> float;
    (** current parameter value; raises [Failure] for unknown names.
        Parameters are stored in mutable cells, and repeated lookups with
        a physically-equal name (the common case: a string literal inside
        the rhs) resolve through a pointer-equality cache without hashing
        or allocation. *)
  input : string -> float;
    (** last value on the named input DPort (0 before the first write) *)
  clock : Time_service.t;
    (** the Time stereotype *)
}

type rhs = env -> float -> float array -> float array
(** [rhs env t y] returns dy/dt. *)

type rhs_into = env -> float array -> float array -> float array -> unit
(** [rhs_into env tcell y dy] writes dy/dt into [dy]; the evaluation time
    is [tcell.(0)]. Time travels through the 1-element cell so no boxed
    float crosses the call boundary — with this form a steady-state
    fixed-step advance performs zero heap allocation. *)

type guard = {
  guard_name : string;
  direction : Ode.Events.direction;
  expr : env -> float -> float array -> float;
}

type t

val create :
  ?method_:Ode.Integrator.method_
  -> ?rhs_into:rhs_into
  -> dim:int
  -> init:float array
  -> params:(string * float) list
  -> input:(string -> float)
  -> clock:Time_service.t
  -> t0:float
  -> rhs -> t
(** Default method: RK4 with step 1e-3. Raises [Invalid_argument] on
    dimension mismatches. When [rhs_into] is given it becomes the hot
    path ({!advance_prepared} steps without allocating) and [rhs] is kept
    as the boxed fallback for dense output and implicit methods. *)

val env : t -> env
val time : t -> float
(** Time the continuous state has been integrated up to. *)

val state : t -> float array

val state_view : t -> float array
(** The live state array, without copying — read-only by convention, and
    invalidated by {!set_state}. For hot paths that must not allocate. *)

val set_state : t -> float array -> unit

val reset : t -> t0:float -> float array -> unit
(** Reset both the solver clock and state ({!Ode.Integrator.reset}) — the
    supervisor's restart primitive after divergence or step underflow. *)

val state_finite : t -> bool
(** Every component of the live state is finite (no NaN/inf). Runs over
    {!state_view} without allocating — supervision probes it at step
    boundaries. *)

val get_param : t -> string -> float
(** Raises [Failure] for unknown parameters. *)

val set_param : t -> string -> float -> unit
(** Creates the parameter when missing (strategies may introduce modes).
    Existing parameters are updated in place, so cached lookups keep
    observing new values. *)

val params : t -> (string * float) list

val set_rhs : t -> rhs -> unit
(** Swap the equations (mode switch); continuous state is preserved.
    The in-place rhs, if any, is dropped: the swapped-in equations run
    on the boxed path. *)

val advance :
  t -> until:float -> guards:guard list
  -> on_crossing:(Ode.Events.crossing -> unit) -> unit
(** Integrate forward to [until], invoking [on_crossing] at each guard
    zero-crossing (in order) and continuing afterwards. A no-op when
    [until <= time t]. Builds the ODE-level guard closures on every
    call; steady-state drivers should prefer {!set_guards} +
    {!advance_prepared}. *)

val set_guards : t -> guard list -> unit
(** Install the guard set consulted by {!advance_prepared}, compiling the
    ODE-level closures once instead of per advance. *)

val prepared_guards : t -> guard list
(** The guards installed by {!set_guards} (empty initially). *)

val advance_prepared :
  t -> until:float -> on_crossing:(Ode.Events.crossing -> unit) -> unit
(** Like {!advance} with the guards installed by {!set_guards}. With no
    guards and an in-place rhs this advances allocation-free
    ({!Ode.Integrator.advance_to}); mesh times are then computed as
    [t0 + i*dt] rather than accumulated, so trajectories can differ from
    {!advance} in the last ulp. *)

val steps_taken : t -> int
val crossings_seen : t -> int
