(** The [solver] stereotype: the behaviour of a streamer.

    Per the paper, a solver "is responsible for receiving signal from
    SPorts and data from DPorts and operating system services, modifying
    parameters, computing equations, and sending out the results". Here
    it owns the continuous state, a parameter table, the equations (a
    right-hand side reading parameters and input DPorts at evaluation
    time), and the numerical integrator that advances them. *)

(** What the equations can see while being evaluated. *)
type env = {
  param : string -> float;
    (** current parameter value; raises [Failure] for unknown names *)
  input : string -> float;
    (** last value on the named input DPort (0 before the first write) *)
  clock : Time_service.t;
    (** the Time stereotype *)
}

type rhs = env -> float -> float array -> float array
(** [rhs env t y] returns dy/dt. *)

type guard = {
  guard_name : string;
  direction : Ode.Events.direction;
  expr : env -> float -> float array -> float;
}

type t

val create :
  ?method_:Ode.Integrator.method_
  -> dim:int
  -> init:float array
  -> params:(string * float) list
  -> input:(string -> float)
  -> clock:Time_service.t
  -> t0:float
  -> rhs -> t
(** Default method: RK4 with step 1e-3. Raises [Invalid_argument] on
    dimension mismatches. *)

val env : t -> env
val time : t -> float
(** Time the continuous state has been integrated up to. *)

val state : t -> float array
val set_state : t -> float array -> unit

val get_param : t -> string -> float
(** Raises [Failure] for unknown parameters. *)

val set_param : t -> string -> float -> unit
(** Creates the parameter when missing (strategies may introduce modes). *)

val params : t -> (string * float) list

val set_rhs : t -> rhs -> unit
(** Swap the equations (mode switch); continuous state is preserved. *)

val advance :
  t -> until:float -> guards:guard list
  -> on_crossing:(Ode.Events.crossing -> unit) -> unit
(** Integrate forward to [until], invoking [on_crossing] at each guard
    zero-crossing (in order) and continuing afterwards. A no-op when
    [until <= time t]. *)

val steps_taken : t -> int
val crossings_seen : t -> int
