(** Thread assignment: turning the hybrid model's threads into a periodic
    task set and checking it is schedulable (experiment E5).

    The paper: "capsules and streamers are assigned to different threads"
    — so the deployment is the event thread plus one task per streamer
    thread. Execution times come from a wcet model (declared, measured,
    or the default utilization heuristic). *)

val default_wcet : utilization:float -> float -> float
(** [default_wcet ~utilization period] = [utilization *. period]. *)

val tasks_for :
  ?event_task:Rt.Task.t
  -> ?wcet_of:(string -> float -> float)
  -> (string * float) list  (** (role, tick period) from {!Engine.thread_set} *)
  -> Rt.Task.t list
(** Build the deployment's task set. Default wcet model: 10% utilization
    per streamer thread. *)

type report = {
  tasks : Rt.Task.t list;
  utilization : float;
  rm_verdict : Rt.Rm.verdict;   (** Liu–Layland utilization test *)
  rm_exact : bool;              (** response-time analysis *)
  edf_ok : bool;
  breakdown : float;            (** RM breakdown utilization factor *)
  simulated_misses_rm : int;    (** deadline misses over a simulated window *)
  simulated_misses_edf : int;
}

val analyze : ?sim_horizon:float -> Rt.Task.t list -> report
(** Full schedulability study of a task set: analytic tests plus a
    simulated schedule cross-check (default horizon: 20x the longest
    period). *)

val pp_report : Format.formatter -> report -> unit
