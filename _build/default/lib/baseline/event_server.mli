(** Single-threaded event server with optional background computation —
    the latency model behind experiment E2.

    UML-RT's run-to-completion means everything on the event thread is
    serialized. If the continuous equations also run there (baseline (b),
    equations-in-states), every periodic recomputation blocks incoming
    control events. This module simulates exactly that server: jobs are
    served FIFO, one at a time; each job occupies the thread for its
    cost; an event's latency is completion - arrival. *)

type t

val create : Des.Engine.t -> handler_cost:float -> t
(** [handler_cost] = execution time of one external event's handler. *)

val add_background_load : t -> period:float -> cost:float -> unit
(** A recurring job (e.g. "recompute N equation blocks") released every
    [period], each occupying the thread for [cost]. *)

val add_busy : t -> float -> unit
(** Occupy the thread for the given cost starting now (or when it next
    frees up) without recording a latency — ad-hoc background work. *)

val submit : t -> unit
(** An external control event arrives now. *)

val submit_at : t -> float -> unit
(** Schedule an arrival at an absolute future time. *)

val event_latencies : t -> float list
(** Completion - arrival for every finished external event,
    chronological. *)

val background_jobs_run : t -> int
val busy_until : t -> float
