(** Baseline (a): the translation approach (Kuehl et al., RSP 2001).

    The continuous block is translated into a UML-RT capsule whose state
    machine steps the discretized equations on a periodic timer — one DES
    event (timer fire, mailbox delivery, run-to-completion) per
    integration step. This is what "translate Simulink into UML" yields,
    and the paper's complaint: "lots of objects and classes may be
    generated", every step pays event machinery, and accuracy is capped
    by the event rate.

    The harness runs a real {!Umlrt.Runtime} with a real statechart so
    the measured overhead is honest. *)

type t

val create :
  ?scheme:Ode.Fixed.scheme   (** default [Euler], as naive translations do *)
  -> step:float              (** integration/event period *)
  -> system:Ode.System.t
  -> init:float array
  -> unit -> t

val run : t -> until:float -> unit

val state : t -> float array
val time : t -> float

val trace : t -> component:int -> Sigtrace.Trace.t
(** Trace of one state component, recorded at every step (register
    before [run]). *)

val steps_executed : t -> int
val des_events : t -> int
(** Total DES callbacks the translation burned — the overhead metric. *)
