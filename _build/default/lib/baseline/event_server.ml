type t = {
  engine : Des.Engine.t;
  handler_cost : float;
  mutable busy_until : float;
  mutable latencies : float list;  (* reversed *)
  mutable background_runs : int;
}

let create engine ~handler_cost =
  if handler_cost < 0. then
    invalid_arg "Baseline.Event_server.create: negative handler cost";
  { engine; handler_cost; busy_until = 0.; latencies = []; background_runs = 0 }

(* FIFO single server: a job arriving at [now] starts at
   max(now, busy_until) and holds the thread for [cost]. *)
let serve t ~cost =
  let now = Des.Engine.now t.engine in
  let start = Float.max now t.busy_until in
  let finish = start +. cost in
  t.busy_until <- finish;
  finish

let add_background_load t ~period ~cost =
  if period <= 0. then
    invalid_arg "Baseline.Event_server.add_background_load: period must be positive";
  if cost < 0. then
    invalid_arg "Baseline.Event_server.add_background_load: negative cost";
  ignore
    (Des.Timer.periodic t.engine ~period (fun _ ->
         ignore (serve t ~cost);
         t.background_runs <- t.background_runs + 1))

let add_busy t cost =
  if cost < 0. then invalid_arg "Baseline.Event_server.add_busy: negative cost";
  ignore (serve t ~cost)

let record_completion t ~arrival ~finish =
  t.latencies <- (finish -. arrival) :: t.latencies

let submit t =
  let arrival = Des.Engine.now t.engine in
  let finish = serve t ~cost:t.handler_cost in
  record_completion t ~arrival ~finish

let submit_at t time =
  ignore (Des.Engine.schedule_at t.engine ~time (fun () -> submit t))

let event_latencies t = List.rev t.latencies
let background_jobs_run t = t.background_runs
let busy_until t = t.busy_until
