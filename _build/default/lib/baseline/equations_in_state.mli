(** Baseline (b): directed equations attached to states
    (Bichler, Radermacher, Schuerr — Real-Time Systems 26, 2004).

    Each state of a capsule carries equations that must be recomputed
    while the state is active; because "UML is a foundational discrete
    language", the recomputations execute inside run-to-completion steps
    on the event thread. The paper's criticism: "this method doesn't work
    efficiently".

    The harness combines a genuine statechart (states activate/deactivate
    equation blocks) with the {!Event_server} thread model (equation
    recomputation blocks the event thread), and also integrates the
    attached equations so accuracy can be compared. *)

type t

val create :
  ?scheme:Ode.Fixed.scheme
  -> update_period:float        (** equations recomputed every period *)
  -> cost_per_block:float       (** simulated thread time per block per update *)
  -> blocks:int                 (** equation blocks attached to the active state *)
  -> handler_cost:float         (** cost of an ordinary control event handler *)
  -> system:Ode.System.t        (** the equations (integrated at each update) *)
  -> init:float array
  -> unit -> t

val engine : t -> Des.Engine.t

val submit_event : t -> unit
(** An external control event arriving now (it queues behind any ongoing
    equation recomputation). *)

val run : t -> until:float -> unit

val state : t -> float array
val event_latencies : t -> float list
val updates_run : t -> int
val active_state : t -> string
(** ["Active"] / ["Idle"] — the statechart state that owns the equations. *)

val set_active : t -> bool -> unit
(** Drive the statechart: deactivating detaches the equation blocks (no
    more recomputation load), mirroring equations-per-state semantics. *)
