type ctx = {
  mutable y : float array;
  mutable now : float;
  mutable steps : int;
  scheme : Ode.Fixed.scheme;
  step : float;
  system : Ode.System.t;
  mutable traces : (int * Sigtrace.Trace.t) list;
}

type t = {
  engine : Des.Engine.t;
  runtime : Umlrt.Runtime.t;
  ctx : ctx;
}

let tick_signal = "tick"

(* The translated capsule: one state, an internal transition on the
   periodic tick performing a single fixed-step integration. *)
let machine () =
  let m = Statechart.Machine.create "translated-block" in
  Statechart.Machine.add_state m "Running";
  Statechart.Machine.set_initial m "Running";
  let step_action (c : ctx) _event =
    c.y <- Ode.Fixed.step c.scheme c.system ~t:c.now ~dt:c.step c.y;
    c.now <- c.now +. c.step;
    c.steps <- c.steps + 1;
    List.iter
      (fun (i, trace) -> Sigtrace.Trace.record trace c.now c.y.(i))
      c.traces
  in
  Statechart.Machine.add_internal m ~state:"Running" ~trigger:tick_signal step_action;
  m

let create ?(scheme = Ode.Fixed.Euler) ~step ~system ~init () =
  if step <= 0. then invalid_arg "Baseline.Translation.create: step must be positive";
  let engine = Des.Engine.create () in
  let ctx =
    { y = Array.copy init; now = 0.; steps = 0; scheme; step; system; traces = [] }
  in
  let behavior =
    Umlrt.Capsule.machine_behavior
      ~make_context:(fun (services : Umlrt.Capsule.services) ->
          (* The translated capsule drives itself with the Time service. *)
          services.Umlrt.Capsule.timer_every step (Statechart.Event.make tick_signal);
          ctx)
      (machine ())
  in
  let capsule = Umlrt.Capsule.create ~behavior "translated-plant" in
  let runtime = Umlrt.Runtime.create engine capsule in
  { engine; runtime; ctx }

let run t ~until = ignore (Des.Engine.run_until t.engine until)

let state t = Array.copy t.ctx.y
let time t = t.ctx.now

let trace t ~component =
  match List.assoc_opt component t.ctx.traces with
  | Some trace -> trace
  | None ->
    let trace =
      Sigtrace.Trace.create ~name:(Printf.sprintf "translated[%d]" component) ()
    in
    (* Record the initial condition so comparisons start at t0. *)
    Sigtrace.Trace.record trace t.ctx.now t.ctx.y.(component);
    t.ctx.traces <- (component, trace) :: t.ctx.traces;
    trace

let steps_executed t = t.ctx.steps
let des_events t = Des.Engine.events_executed t.engine
let _ = fun (t : t) -> t.runtime
