lib/baseline/equations_in_state.mli: Des Ode
