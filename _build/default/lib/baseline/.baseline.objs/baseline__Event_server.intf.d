lib/baseline/event_server.mli: Des
