lib/baseline/event_server.ml: Des Float List
