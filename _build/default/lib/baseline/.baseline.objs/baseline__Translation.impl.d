lib/baseline/translation.ml: Array Des List Ode Printf Sigtrace Statechart Umlrt
