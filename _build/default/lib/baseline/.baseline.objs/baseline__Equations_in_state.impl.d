lib/baseline/equations_in_state.ml: Array Des Event_server Ode Statechart
