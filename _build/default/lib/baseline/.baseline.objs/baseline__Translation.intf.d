lib/baseline/translation.mli: Ode Sigtrace
