type ctx = { mutable attached : bool }

type t = {
  des : Des.Engine.t;
  server : Event_server.t;
  machine_instance : ctx Statechart.Instance.t;
  scheme : Ode.Fixed.scheme;
  update_period : float;
  system : Ode.System.t;
  mutable y : float array;
  mutable sim_time : float;
  mutable updates : int;
  block_cost : float;
}

let machine () =
  let m = Statechart.Machine.create "equations-in-state" in
  let entry_attach (c : ctx) = c.attached <- true in
  let exit_detach (c : ctx) = c.attached <- false in
  Statechart.Machine.add_state m ~entry:entry_attach ~exit:exit_detach "Active";
  Statechart.Machine.add_state m "Idle";
  Statechart.Machine.set_initial m "Active";
  Statechart.Machine.add_transition m ~src:"Active" ~dst:"Idle" ~trigger:"deactivate" ();
  Statechart.Machine.add_transition m ~src:"Idle" ~dst:"Active" ~trigger:"activate" ();
  m

let create ?(scheme = Ode.Fixed.Euler) ~update_period ~cost_per_block ~blocks
    ~handler_cost ~system ~init () =
  if update_period <= 0. then
    invalid_arg "Baseline.Equations_in_state.create: update period must be positive";
  if blocks < 0 then
    invalid_arg "Baseline.Equations_in_state.create: negative block count";
  let des = Des.Engine.create () in
  let server = Event_server.create des ~handler_cost in
  let ctx = { attached = true } in
  let machine_instance = Statechart.Instance.start (machine ()) ctx in
  let t =
    { des; server; machine_instance; scheme; update_period; system;
      y = Array.copy init; sim_time = 0.; updates = 0;
      block_cost = cost_per_block *. float_of_int blocks }
  in
  (* Periodic equation update: integrates the attached equations AND
     occupies the event thread for the recomputation cost. *)
  ignore
    (Des.Timer.periodic des ~period:update_period (fun _ ->
         if ctx.attached then begin
           let now = Des.Engine.now des in
           if now > t.sim_time then begin
             t.y <- Ode.Fixed.integrate t.scheme t.system ~t0:t.sim_time ~t1:now
                      ~dt:t.update_period t.y;
             t.sim_time <- now
           end;
           t.updates <- t.updates + 1;
           Event_server.add_busy t.server t.block_cost
         end));
  t

let engine t = t.des
let submit_event t = Event_server.submit t.server
let run t ~until = ignore (Des.Engine.run_until t.des until)
let state t = Array.copy t.y
let event_latencies t = Event_server.event_latencies t.server
let updates_run t = t.updates

let active_state t = Statechart.Instance.active_leaf t.machine_instance

let set_active t flag =
  let signal = if flag then "activate" else "deactivate" in
  ignore (Statechart.Instance.handle t.machine_instance (Statechart.Event.make signal))
