(* Exact response-time analysis over an extracted task set: per-task
   verdicts under rate-monotonic fixed priorities (iterative RTA with an
   optional blocking term) cross-checked against the EDF processor-demand
   criterion, plus the utilization summary the quick tests use. *)

type verdict = {
  v_task : Taskset.task;
  v_priority : int;         (* RM priority, 0 = highest (shortest period) *)
  v_response : Rt.Rm.bound; (* worst-case response, possibly past deadline *)
  v_rm_ok : bool;
  v_slack : float;          (* deadline - response; neg_infinity on divergence *)
}

type t = {
  verdicts : verdict list;  (* criticality order: RM priority ascending *)
  utilization : float;
  ll_bound : float;
  rm_ok : bool;
  edf_ok : bool;
  edf_violation : (float * float) option;  (* window, demand *)
  breakdown : float;        (* 0 for the empty set *)
}

let analyze ?(blocking = 0.) (tasks : Taskset.task list) =
  let rt = List.map (fun (x : Taskset.task) -> x.Taskset.task) tasks in
  let prio = Rt.Rm.priorities rt in
  let verdicts =
    List.map
      (fun (x : Taskset.task) ->
         let task = x.Taskset.task in
         let response = Rt.Rm.response_bound ~blocking rt task in
         let rm_ok, slack =
           match response with
           | Rt.Rm.Converged r ->
             (r <= task.Rt.Task.deadline, task.Rt.Task.deadline -. r)
           | Rt.Rm.Diverges _ -> (false, Float.neg_infinity)
         in
         let priority =
           match
             List.find_opt (fun (t, _) -> t == task) prio
           with
           | Some (_, p) -> p
           | None -> List.length rt
         in
         { v_task = x; v_priority = priority; v_response = response;
           v_rm_ok = rm_ok; v_slack = slack })
      tasks
  in
  let verdicts =
    List.sort (fun a b -> compare a.v_priority b.v_priority) verdicts
  in
  let edf_violation = Rt.Edf.first_violation rt in
  { verdicts;
    utilization = Rt.Task.total_utilization rt;
    ll_bound = Rt.Rm.utilization_bound (List.length rt);
    rm_ok = List.for_all (fun v -> v.v_rm_ok) verdicts;
    edf_ok = Rt.Edf.schedulable rt;
    edf_violation;
    breakdown = (if rt = [] then 0. else Rt.Rm.breakdown_utilization rt) }

let response_value = function
  | Rt.Rm.Converged r -> r
  | Rt.Rm.Diverges r -> r

let misses t = List.filter (fun v -> not v.v_rm_ok) t.verdicts
