(* Measured worst-case execution times, round-tripped through JSON.

   `umh simulate --profile --wcet-out FILE` writes one entry per profiled
   entity with its worst single-frame self time; `umh analyze --wcet
   FILE` (and `umh lint --wcet FILE`) read the table back so response
   times rest on measurement instead of the default utilization model.

   Schema ("umh-wcet", version 1):
   { "schema": "umh-wcet", "version": 1, "model": "...",
     "entries": [ { "entity": "room", "kind": "streamer",
                    "wcet_s": 1.2e-4, "frames": 4000 }, ... ] } *)

type entry = {
  entity : string;  (** profiler entity name; capsules are ["system/<inst>"] *)
  kind : string;    (** ["streamer"] / ["capsule"] / ["solver"] / ["other"] *)
  wcet_s : float;   (** worst single-frame self time, seconds *)
  frames : int;     (** completed frames behind the measurement *)
}

type t = {
  model : string option;
  entries : entry list;
}

let schema_name = "umh-wcet"
let schema_version = 1

let empty = { model = None; entries = [] }

let of_profile ?model () =
  let entries =
    List.filter_map
      (fun (r : Obs.Profile.row) ->
         if r.Obs.Profile.r_count = 0 || r.Obs.Profile.r_max_ns <= 0 then None
         else
           Some
             { entity = r.Obs.Profile.r_name;
               kind = r.Obs.Profile.r_kind;
               wcet_s = float_of_int r.Obs.Profile.r_max_ns *. 1e-9;
               frames = r.Obs.Profile.r_count })
      (Obs.Profile.rows ())
  in
  { model; entries }

let to_json t =
  let entry e =
    Obs.Json.Obj
      [ ("entity", Obs.Json.Str e.entity);
        ("kind", Obs.Json.Str e.kind);
        ("wcet_s", Obs.Json.Float e.wcet_s);
        ("frames", Obs.Json.Int e.frames) ]
  in
  Obs.Json.Obj
    (("schema", Obs.Json.Str schema_name)
     :: ("version", Obs.Json.Int schema_version)
     :: (match t.model with
         | Some m -> [ ("model", Obs.Json.Str m) ]
         | None -> [])
     @ [ ("entries", Obs.Json.List (List.map entry t.entries)) ])

let num = function
  | Obs.Json.Float f -> Some f
  | Obs.Json.Int i -> Some (float_of_int i)
  | _ -> None

let of_json json =
  match Obs.Json.member "schema" json with
  | Some (Obs.Json.Str s) when String.equal s schema_name ->
    let entries =
      List.filter_map
        (fun e ->
           match
             ( Option.bind (Obs.Json.member "entity" e) Obs.Json.string_value,
               Option.bind (Obs.Json.member "wcet_s" e) num )
           with
           | Some entity, Some w when Float.is_finite w && w > 0. ->
             Some
               { entity;
                 kind =
                   Option.value ~default:"other"
                     (Option.bind (Obs.Json.member "kind" e)
                        Obs.Json.string_value);
                 wcet_s = w;
                 frames =
                   (match Obs.Json.member "frames" e with
                    | Some (Obs.Json.Int n) -> n
                    | _ -> 0) }
           | _, _ -> None)
        (Obs.Json.to_list
           (Option.value ~default:(Obs.Json.List [])
              (Obs.Json.member "entries" json)))
    in
    Ok
      { model =
          Option.bind (Obs.Json.member "model" json) Obs.Json.string_value;
        entries }
  | Some _ | None ->
    Error (Printf.sprintf "not a %s file (missing schema tag)" schema_name)

let of_string s =
  match Obs.Json.of_string s with
  | json -> of_json json
  | exception Obs.Json.Parse_error msg -> Error msg

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let basename entity =
  match String.rindex_opt entity '/' with
  | Some i -> String.sub entity (i + 1) (String.length entity - i - 1)
  | None -> entity

(* Streamer entities register under their dotted role path, matching
   leaf roles exactly; capsules register under the capsule tree path
   ("system/<inst>"), so fall back to the path basename. *)
let find t name =
  match
    List.find_opt (fun e -> String.equal e.entity name) t.entries
  with
  | Some e -> Some e.wcet_s
  | None ->
    (match
       List.find_opt (fun e -> String.equal (basename e.entity) name) t.entries
     with
     | Some e -> Some e.wcet_s
     | None -> None)
