lib/analysis/report.mli: Dsl Format Obs Rta Shard Taskset Wcet
