lib/analysis/report.ml: Dsl Float Format List Model Obs Printf Rt Rta Shard String Taskset
