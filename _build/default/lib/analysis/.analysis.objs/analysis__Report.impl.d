lib/analysis/report.ml: Digest Dsl Float Format List Model Obs Printf Rt Rta Shard String Taskset
