lib/analysis/model.mli: Ast Dataflow Dsl Typecheck
