lib/analysis/shard.mli: Ast Dsl Model Rta Taskset
