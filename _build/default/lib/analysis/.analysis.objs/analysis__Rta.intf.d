lib/analysis/rta.mli: Rt Taskset
