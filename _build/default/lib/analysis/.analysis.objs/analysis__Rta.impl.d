lib/analysis/rta.ml: Float List Rt Taskset
