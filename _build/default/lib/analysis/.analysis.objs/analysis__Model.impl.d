lib/analysis/model.ml: Ast Dataflow Dsl List Printf String Typecheck
