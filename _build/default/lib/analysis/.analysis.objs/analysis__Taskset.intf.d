lib/analysis/taskset.mli: Ast Dsl Model Rt Wcet
