lib/analysis/shard.ml: Array Ast Dataflow Dsl Hashtbl List Model Rt Rta String Taskset
