lib/analysis/wcet.mli: Obs
