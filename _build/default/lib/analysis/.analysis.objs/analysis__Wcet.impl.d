lib/analysis/wcet.ml: Float Fun List Obs Option Printf String
