lib/analysis/taskset.ml: Ast Dsl Float Hybrid List Model Option Rt String Wcet
