(** The [umh analyze] entry point: task extraction, per-shard
    response-time analysis and shard safety over one typechecked model,
    rendered as text or JSON.

    Two JSON schemas, both self-contained over {!Obs.Json}:
    - [umh-analysis] v1 — the full report: tasks (with wcet sources and
      shard placement), extraction issues, per-shard RTA verdicts,
      forced groups, races, interleavings, cross-shard edges;
    - [umh-partition] v1 — just the suggested placement: shards with
      members and utilizations, forced groups, cross-shard edges. *)

type t = {
  file : string;
  model_name : string;
  model_hash : string;
    (** hex digest of the pretty-printed model; binds a partition file
        to the model it was computed for (checked by [--shards-from]) *)
  taskset : Taskset.t;
  shard : Shard.t;
}

val schema_name : string
val schema_version : int
val partition_schema_name : string
val partition_schema_version : int

val run :
  ?wcet:Wcet.t -> ?default_utilization:float -> file:string
  -> Dsl.Typecheck.checked -> t option
(** [None] when the model has no system section. Call only on models
    where [Dsl.Typecheck.is_ok] holds. *)

val schedulable : t -> bool
(** Every shard is EDF-feasible and no task's budget reaches its
    period. An RM-only miss on some shard does {e not} make this false —
    EDF is the feasibility oracle; RM misses surface as warnings. *)

val deadline_misses : t -> Rta.verdict list
(** RM deadline misses across all shards. *)

val to_json : t -> Obs.Json.t
val partition_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit
