open Dsl

(* The flattened structural model shared by every static analysis.

   This used to live inside [Lint.Rules] as [build_graph]; it moved here
   so the timing and shard analyses (and the linter on top of them) all
   read one elaboration-faithful view: composite streamers flatten into
   "role.child" leaves, every composite border DPort and capsule relay
   DPort becomes a 1-in/1-out junction named "owner.port", relays keep
   their fanout. Alongside the graph we keep the tick period, declared
   wcet budget and guard/strategy inventory of each leaf, the SPort
   links, and capsule instances with their timers — everything the
   task-set extraction and happens-before construction need, plus source
   positions so findings can carry file:line:col spans. *)

type emission = {
  em_role : string;    (** emitting leaf role, e.g. ["chain.first"] *)
  em_inst : string;    (** top-level streamer instance the leaf lives in *)
  em_sport : string;
  em_signal : string;
  em_pos : Ast.pos;
}

type strategy = {
  str_role : string;   (** leaf role owning the [when] clause *)
  str_inst : string;
  str_signal : string;
  str_param : string;
  str_pos : Ast.pos;
}

type capsule_inst = {
  ci_name : string;    (** instance name; profiler path is ["system/<name>"] *)
  ci_class : string;
  ci_timers : (string * float) list;  (** periodic self signals *)
  ci_triggers : string list;          (** statechart triggers, with dups *)
  ci_sends : (string * string) list;  (** transition actions: signal, port *)
  ci_pos : Ast.pos;
}

type link = {
  lk_inst : string;    (** streamer instance *)
  lk_sport : string;
  lk_capsule : string; (** capsule instance *)
  lk_port : string;
  lk_pos : Ast.pos;
}

type t = {
  graph : Dataflow.Graph.t;
  periods : (string * float) list;  (** leaf role -> tick period *)
  wcets : (string * float) list;    (** leaf role -> declared wcet budget *)
  emissions : emission list;
  strategies : strategy list;
  capsules : capsule_inst list;
  links : link list;
  port_pos : ((string * string) * Ast.pos) list;  (** (node, port) -> decl *)
  flow_pos : ((string * string) * Ast.pos) list;  (** (dst node, dst port) *)
  leaf_pos : (string * Ast.pos) list;             (** leaf role -> instance decl *)
  system_pos : Ast.pos;
}

let find_streamer (model : Ast.model) name =
  List.find_opt
    (fun (s : Ast.streamer_decl) -> String.equal s.Ast.s_name name)
    model.Ast.m_streamers

let find_capsule (model : Ast.model) name =
  List.find_opt
    (fun (c : Ast.capsule_decl) -> String.equal c.Ast.c_name name)
    model.Ast.m_capsules

let is_leaf (s : Ast.streamer_decl) = s.Ast.s_contains = []

let rec capsule_triggers (st : Ast.state_decl) =
  List.map (fun (tr : Ast.transition_decl) -> tr.Ast.tr_trigger)
    st.Ast.st_transitions
  @ List.concat_map capsule_triggers st.Ast.st_children

let rec capsule_sends (st : Ast.state_decl) =
  List.filter_map (fun (tr : Ast.transition_decl) -> tr.Ast.tr_send)
    st.Ast.st_transitions
  @ List.concat_map capsule_sends st.Ast.st_children

let build (checked : Typecheck.checked) =
  let model = checked.Typecheck.model in
  match model.Ast.m_system with
  | None -> None
  | Some sys ->
    let g = Dataflow.Graph.create () in
    let periods = ref [] in
    let wcets = ref [] in
    let emissions = ref [] in
    let strategies = ref [] in
    let port_pos = ref [] in
    let flow_pos = ref [] in
    let leaf_pos = ref [] in
    let ft name = Typecheck.flow_type_of checked name in
    let record node port pos = port_pos := ((node, port), pos) :: !port_pos in
    let connect ~pos ~src ~dst =
      match
        ( Dataflow.Graph.find_node g (fst src),
          Dataflow.Graph.find_node g (fst dst) )
      with
      | Some sn, Some dn ->
        (* Structural errors here (type subset, double drivers) were
           already reported by the typechecker as UMH002. *)
        (match Dataflow.Graph.connect g ~src:(sn, snd src) ~dst:(dn, snd dst) with
         | Ok () -> flow_pos := ((fst dst, snd dst), pos) :: !flow_pos
         | Error _ -> ())
      | _, _ -> ()
    in
    let rec add_streamer ~inst ~ipos role (s : Ast.streamer_decl) =
      if is_leaf s then begin
        let dir d (x : Ast.dport_decl) = x.Ast.dp_dir = Some d in
        let ports d =
          List.filter_map
            (fun (x : Ast.dport_decl) ->
               if dir d x then Some (x.Ast.dp_name, ft x.Ast.dp_type) else None)
            s.Ast.s_dports
        in
        ignore
          (Dataflow.Graph.add_node g ~name:role ~inputs:(ports Ast.Din)
             ~outputs:(ports Ast.Dout));
        List.iter
          (fun (x : Ast.dport_decl) -> record role x.Ast.dp_name x.Ast.dp_pos)
          s.Ast.s_dports;
        leaf_pos := (role, ipos) :: !leaf_pos;
        List.iter
          (fun (gd : Ast.guard_decl) ->
             emissions :=
               { em_role = role; em_inst = inst; em_sport = gd.Ast.g_sport;
                 em_signal = gd.Ast.g_signal; em_pos = gd.Ast.g_pos }
               :: !emissions)
          s.Ast.s_guards;
        List.iter
          (fun (st : Ast.strategy_decl) ->
             strategies :=
               { str_role = role; str_inst = inst;
                 str_signal = st.Ast.st_signal; str_param = st.Ast.st_param;
                 str_pos = st.Ast.st_pos }
               :: !strategies)
          s.Ast.s_strategies;
        (match s.Ast.s_wcet with
         | Some w when w > 0. -> wcets := (role, w) :: !wcets
         | Some _ | None -> ());
        match s.Ast.s_rate with
        | Some r when r > 0. -> periods := (role, r) :: !periods
        | Some _ | None -> ()
      end
      else begin
        List.iter
          (fun (child, cls) ->
             match find_streamer model cls with
             | Some sub -> add_streamer ~inst ~ipos (role ^ "." ^ child) sub
             | None -> ())
          s.Ast.s_contains;
        List.iter
          (fun (x : Ast.dport_decl) ->
             let name = role ^ "." ^ x.Ast.dp_name in
             ignore (Dataflow.Graph.add_junction g ~name (ft x.Ast.dp_type));
             record name "in" x.Ast.dp_pos;
             record name "out1" x.Ast.dp_pos)
          s.Ast.s_dports;
        let resolve (ep : Ast.internal_endpoint) ~as_source =
          match ep.Ast.ie_child with
          | None ->
            Some (role ^ "." ^ ep.Ast.ie_port, if as_source then "out1" else "in")
          | Some child ->
            (match List.assoc_opt child s.Ast.s_contains with
             | None -> None
             | Some cls ->
               (match find_streamer model cls with
                | None -> None
                | Some sub ->
                  if is_leaf sub then Some (role ^ "." ^ child, ep.Ast.ie_port)
                  else
                    Some
                      ( role ^ "." ^ child ^ "." ^ ep.Ast.ie_port,
                        if as_source then "out1" else "in" )))
        in
        List.iter
          (fun (se, de) ->
             match (resolve se ~as_source:true, resolve de ~as_source:false) with
             | Some src, Some dst -> connect ~pos:s.Ast.s_pos ~src ~dst
             | _, _ -> ())
          s.Ast.s_flows
      end
    in
    let streamer_class iname =
      List.find_map
        (function
          | Ast.Istreamer { iname = n; iclass; _ } when String.equal n iname ->
            find_streamer model iclass
          | Ast.Istreamer _ | Ast.Icapsule _ | Ast.Irelay _ -> None)
        sys.Ast.sys_instances
    in
    let capsule_class iname =
      List.find_map
        (function
          | Ast.Icapsule { iname = n; iclass; _ } when String.equal n iname ->
            find_capsule model iclass
          | Ast.Istreamer _ | Ast.Icapsule _ | Ast.Irelay _ -> None)
        sys.Ast.sys_instances
    in
    let is_relay iname =
      List.exists
        (function
          | Ast.Irelay { iname = n; _ } -> String.equal n iname
          | Ast.Istreamer _ | Ast.Icapsule _ -> false)
        sys.Ast.sys_instances
    in
    let capsules = ref [] in
    List.iter
      (function
        | Ast.Istreamer { iname; iclass; ipos; _ } ->
          (match find_streamer model iclass with
           | Some d -> add_streamer ~inst:iname ~ipos iname d
           | None -> ())
        | Ast.Irelay { iname; itype; ifanout; ipos } ->
          if ifanout >= 2 then begin
            ignore (Dataflow.Graph.add_relay g ~name:iname (ft itype) ~fanout:ifanout);
            record iname "in" ipos;
            for k = 1 to ifanout do
              record iname (Printf.sprintf "out%d" k) ipos
            done
          end
        | Ast.Icapsule { iname; iclass; ipos } ->
          (match find_capsule model iclass with
           | None -> ()
           | Some c ->
             capsules :=
               { ci_name = iname; ci_class = iclass;
                 ci_timers = c.Ast.c_timers;
                 ci_triggers = List.concat_map capsule_triggers c.Ast.c_states;
                 ci_sends = List.concat_map capsule_sends c.Ast.c_states;
                 ci_pos = ipos }
               :: !capsules;
             List.iter
               (fun (x : Ast.dport_decl) ->
                  let name = iname ^ "." ^ x.Ast.dp_name in
                  ignore (Dataflow.Graph.add_junction g ~name (ft x.Ast.dp_type));
                  record name "in" x.Ast.dp_pos;
                  record name "out1" x.Ast.dp_pos)
               c.Ast.c_dports))
      sys.Ast.sys_instances;
    let resolve_sys (inst, port) ~as_source =
      match streamer_class inst with
      | Some s ->
        if is_leaf s then Some (inst, port)
        else Some (inst ^ "." ^ port, if as_source then "out1" else "in")
      | None ->
        if is_relay inst then Some (inst, port)
        else if capsule_class inst <> None then
          Some (inst ^ "." ^ port, if as_source then "out1" else "in")
        else None
    in
    let links = ref [] in
    List.iter
      (function
        | Ast.Cflow { cf_src; cf_dst; cf_pos } ->
          (match
             ( resolve_sys cf_src ~as_source:true,
               resolve_sys cf_dst ~as_source:false )
           with
           | Some src, Some dst -> connect ~pos:cf_pos ~src ~dst
           | _, _ -> ())
        | Ast.Clink { cl_streamer = (si, sp); cl_capsule = (ci, cp); cl_pos } ->
          links :=
            { lk_inst = si; lk_sport = sp; lk_capsule = ci; lk_port = cp;
              lk_pos = cl_pos }
            :: !links)
      sys.Ast.sys_connections;
    Some
      { graph = g;
        periods = List.rev !periods;
        wcets = List.rev !wcets;
        emissions = List.rev !emissions;
        strategies = List.rev !strategies;
        capsules = List.rev !capsules;
        links = List.rev !links;
        port_pos = !port_pos;
        flow_pos = !flow_pos;
        leaf_pos = !leaf_pos;
        system_pos = sys.Ast.sys_pos }

let of_checked checked = try build checked with Invalid_argument _ -> None

(* Walk back through relays/junctions to the leaf streamer that actually
   produces the samples arriving at [node]. *)
let producer t node =
  let flows = Dataflow.Graph.flow_list t.graph in
  let rec walk visited node =
    if List.mem node visited then None
    else
      match List.assoc_opt node t.periods with
      | Some p -> Some (node, p)
      | None ->
        (match
           List.find_opt (fun (_, (dn, _)) -> String.equal dn node) flows
         with
         | Some ((sn, _), _) -> walk (node :: visited) sn
         | None -> None)
  in
  walk [] node
