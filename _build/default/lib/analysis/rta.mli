(** Exact response-time analysis over an extracted task set.

    Per-task verdicts under rate-monotonic fixed priorities — the least
    fixed point of [R = C + B + sum_hp ceil(R/T_j) C_j], iterated past
    the deadline so a miss reports its concrete response time — plus the
    EDF processor-demand cross-check and the utilization summary. *)

type verdict = {
  v_task : Taskset.task;
  v_priority : int;   (** RM priority, 0 = highest (shortest period) *)
  v_response : Rt.Rm.bound;
      (** worst-case response; [Diverges] when the busy period never
          closes (higher-priority utilization at or above 1) *)
  v_rm_ok : bool;
  v_slack : float;    (** deadline - response; [neg_infinity] on divergence *)
}

type t = {
  verdicts : verdict list;  (** criticality order: RM priority ascending *)
  utilization : float;
  ll_bound : float;         (** Liu-Layland bound for this set's size *)
  rm_ok : bool;
  edf_ok : bool;
  edf_violation : (float * float) option;
      (** earliest window where demand exceeds supply, with the demand *)
  breakdown : float;        (** breakdown utilization; 0 for the empty set *)
}

val analyze : ?blocking:float -> Taskset.task list -> t
(** [blocking] models a non-preemptible lower-priority section added to
    every response-time fixpoint (default 0). *)

val response_value : Rt.Rm.bound -> float
val misses : t -> verdict list
