(* The `umh analyze` entry point: run task extraction, per-shard
   response-time analysis and shard safety over one typechecked model,
   then render as text or JSON ("umh-analysis" schema) and emit the
   suggested partition ("umh-partition" schema). *)

type t = {
  file : string;
  model_name : string;
  model_hash : string;
  taskset : Taskset.t;
  shard : Shard.t;
}

let schema_name = "umh-analysis"
let schema_version = 1
let partition_schema_name = "umh-partition"
let partition_schema_version = 1

let run ?wcet ?default_utilization ~file (checked : Dsl.Typecheck.checked) =
  match Model.of_checked checked with
  | None -> None
  | Some m ->
    let taskset = Taskset.extract ?wcet ?default_utilization m in
    Some
      { file;
        model_name = checked.Dsl.Typecheck.model.Dsl.Ast.m_name;
        model_hash =
          Digest.to_hex
            (Digest.string (Dsl.Pretty.print_model checked.Dsl.Typecheck.model));
        taskset;
        shard = Shard.analyze m taskset }

let schedulable t =
  Shard.all_feasible t.shard && t.taskset.Taskset.issues = []

let deadline_misses t =
  List.concat_map (fun (s : Shard.shard) -> Rta.misses s.Shard.rta)
    t.shard.Shard.shards

(* ---- JSON ---- *)

let node_json nd =
  Obs.Json.Obj
    [ ("name", Obs.Json.Str (Shard.node_name nd));
      ("kind", Obs.Json.Str (Shard.node_kind nd)) ]

let edge_json (e : Shard.edge) =
  Obs.Json.Obj
    [ ("src", Obs.Json.Str (Shard.node_name e.Shard.e_src));
      ("dst", Obs.Json.Str (Shard.node_name e.Shard.e_dst));
      ("kind", Obs.Json.Str (Shard.edge_kind_name e.Shard.e_kind)) ]

let verdict_json (v : Rta.verdict) =
  let task = v.Rta.v_task.Taskset.task in
  Obs.Json.Obj
    [ ("task", Obs.Json.Str task.Rt.Task.name);
      ("priority", Obs.Json.Int v.Rta.v_priority);
      ("response_s",
       match v.Rta.v_response with
       | Rt.Rm.Converged r -> Obs.Json.Float r
       | Rt.Rm.Diverges _ -> Obs.Json.Null);
      ("diverges",
       Obs.Json.Bool
         (match v.Rta.v_response with
          | Rt.Rm.Diverges _ -> true
          | Rt.Rm.Converged _ -> false));
      ("deadline_s", Obs.Json.Float task.Rt.Task.deadline);
      ("rm_ok", Obs.Json.Bool v.Rta.v_rm_ok);
      ("slack_s",
       if Float.is_finite v.Rta.v_slack then Obs.Json.Float v.Rta.v_slack
       else Obs.Json.Null) ]

let shard_json (s : Shard.shard) =
  let r = s.Shard.rta in
  Obs.Json.Obj
    [ ("id", Obs.Json.Int s.Shard.shard_id);
      ("members", Obs.Json.List (List.map node_json s.Shard.members));
      ("utilization", Obs.Json.Float r.Rta.utilization);
      ("ll_bound", Obs.Json.Float r.Rta.ll_bound);
      ("rm_ok", Obs.Json.Bool r.Rta.rm_ok);
      ("edf_ok", Obs.Json.Bool r.Rta.edf_ok);
      ("breakdown", Obs.Json.Float r.Rta.breakdown);
      ("feasible", Obs.Json.Bool s.Shard.feasible);
      ("verdicts", Obs.Json.List (List.map verdict_json r.Rta.verdicts)) ]

let task_json t (x : Taskset.task) =
  let task = x.Taskset.task in
  let shard =
    List.find_map
      (fun (s : Shard.shard) ->
         if List.exists (fun (y : Taskset.task) -> y == x) s.Shard.tasks then
           Some s.Shard.shard_id
         else None)
      t.shard.Shard.shards
  in
  Obs.Json.Obj
    [ ("name", Obs.Json.Str task.Rt.Task.name);
      ("kind", Obs.Json.Str (Taskset.kind_name x.Taskset.kind));
      ("period_s", Obs.Json.Float task.Rt.Task.period);
      ("wcet_s", Obs.Json.Float task.Rt.Task.wcet);
      ("deadline_s", Obs.Json.Float task.Rt.Task.deadline);
      ("wcet_source", Obs.Json.Str (Taskset.source_name x.Taskset.source));
      ("shard",
       match shard with Some i -> Obs.Json.Int i | None -> Obs.Json.Null) ]

let issue_json = function
  | Taskset.Budget_exceeds_period { name; wcet; period; _ } ->
    Obs.Json.Obj
      [ ("kind", Obs.Json.Str "budget_exceeds_period");
        ("task", Obs.Json.Str name);
        ("wcet_s", Obs.Json.Float wcet);
        ("period_s", Obs.Json.Float period) ]

let race_json (r : Shard.race) =
  Obs.Json.Obj
    [ ("role", Obs.Json.Str r.Shard.race_role);
      ("param", Obs.Json.Str r.Shard.race_param);
      ("senders",
       Obs.Json.List
         (List.map (fun s -> Obs.Json.Str s) r.Shard.race_senders)) ]

let interleaving_json (i : Shard.interleaving) =
  Obs.Json.Obj
    [ ("capsule", Obs.Json.Str i.Shard.il_capsule);
      ("sources",
       Obs.Json.List (List.map (fun s -> Obs.Json.Str s) i.Shard.il_sources)) ]

let group_json g = Obs.Json.List (List.map node_json g)

let to_json t =
  Obs.Json.Obj
    [ ("schema", Obs.Json.Str schema_name);
      ("version", Obs.Json.Int schema_version);
      ("model", Obs.Json.Str t.file);
      ("name", Obs.Json.Str t.model_name);
      ("schedulable", Obs.Json.Bool (schedulable t));
      ("tasks",
       Obs.Json.List (List.map (task_json t) t.taskset.Taskset.tasks));
      ("issues",
       Obs.Json.List (List.map issue_json t.taskset.Taskset.issues));
      ("shards",
       Obs.Json.List (List.map shard_json t.shard.Shard.shards));
      ("forced_groups",
       Obs.Json.List (List.map group_json t.shard.Shard.forced_groups));
      ("races", Obs.Json.List (List.map race_json t.shard.Shard.races));
      ("interleavings",
       Obs.Json.List
         (List.map interleaving_json t.shard.Shard.interleavings));
      ("cross_edges",
       Obs.Json.List (List.map edge_json t.shard.Shard.cross_edges)) ]

let partition_json t =
  let shard (s : Shard.shard) =
    Obs.Json.Obj
      [ ("id", Obs.Json.Int s.Shard.shard_id);
        ("members", Obs.Json.List (List.map node_json s.Shard.members));
        ("utilization", Obs.Json.Float s.Shard.rta.Rta.utilization);
        ("feasible", Obs.Json.Bool s.Shard.feasible) ]
  in
  Obs.Json.Obj
    [ ("schema", Obs.Json.Str partition_schema_name);
      ("version", Obs.Json.Int partition_schema_version);
      ("model", Obs.Json.Str t.file);
      ("model_hash", Obs.Json.Str t.model_hash);
      ("shards", Obs.Json.List (List.map shard t.shard.Shard.shards));
      ("forced_groups",
       Obs.Json.List (List.map group_json t.shard.Shard.forced_groups));
      ("cross_edges",
       Obs.Json.List (List.map edge_json t.shard.Shard.cross_edges)) ]

(* ---- text ---- *)

let pp_members ppf members =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf nd -> Format.pp_print_string ppf (Shard.node_name nd))
    ppf members

let pp ppf t =
  let ts = t.taskset in
  let count source =
    List.length
      (List.filter (fun (x : Taskset.task) -> x.Taskset.source = source)
         ts.Taskset.tasks)
  in
  Format.fprintf ppf "@[<v>analysis of %s (%s)@," t.model_name t.file;
  Format.fprintf ppf
    "  tasks: %d (wcet: %d measured, %d declared, %d default)@,"
    (List.length ts.Taskset.tasks)
    (count Taskset.Measured) (count Taskset.Declared) (count Taskset.Default);
  List.iter
    (function
      | Taskset.Budget_exceeds_period { name; wcet; period; _ } ->
        Format.fprintf ppf
          "  issue: task %s: wcet %gs >= period %gs — can never meet its \
           deadline@,"
          name wcet period)
    ts.Taskset.issues;
  List.iter
    (fun (s : Shard.shard) ->
       let r = s.Shard.rta in
       Format.fprintf ppf
         "  shard %d: {%a} U=%.3f (LL %.3f) rm=%s edf=%s breakdown=%.2f%s@,"
         s.Shard.shard_id pp_members s.Shard.members r.Rta.utilization
         r.Rta.ll_bound
         (if r.Rta.rm_ok then "ok" else "MISS")
         (if r.Rta.edf_ok then "ok" else "MISS")
         r.Rta.breakdown
         (if s.Shard.feasible then "" else "  INFEASIBLE");
       List.iter
         (fun (v : Rta.verdict) ->
            let task = v.Rta.v_task.Taskset.task in
            Format.fprintf ppf
              "    prio %d  %-20s T=%-8g C=%-8g R=%-8s slack=%-8s [%s]%s@,"
              v.Rta.v_priority task.Rt.Task.name task.Rt.Task.period
              task.Rt.Task.wcet
              (match v.Rta.v_response with
               | Rt.Rm.Converged r -> Printf.sprintf "%g" r
               | Rt.Rm.Diverges r -> Printf.sprintf ">%g" r)
              (if Float.is_finite v.Rta.v_slack then
                 Printf.sprintf "%g" v.Rta.v_slack
               else "-inf")
              (Taskset.source_name v.Rta.v_task.Taskset.source)
              (if v.Rta.v_rm_ok then "" else "  DEADLINE MISS"))
         r.Rta.verdicts)
    t.shard.Shard.shards;
  List.iter
    (fun g -> Format.fprintf ppf "  forced same-shard group: {%a}@," pp_members g)
    t.shard.Shard.forced_groups;
  List.iter
    (fun (r : Shard.race) ->
       Format.fprintf ppf
         "  race: param %s.%s written from capsules %s — last writer wins@,"
         r.Shard.race_role r.Shard.race_param
         (String.concat ", " r.Shard.race_senders))
    t.shard.Shard.races;
  List.iter
    (fun (i : Shard.interleaving) ->
       Format.fprintf ppf
         "  interleaving: capsule %s hears %s concurrently — delivery order \
          is nondeterministic@,"
         i.Shard.il_capsule
         (String.concat ", " i.Shard.il_sources))
    t.shard.Shard.interleavings;
  (match t.shard.Shard.cross_edges with
   | [] -> ()
   | edges ->
     Format.fprintf ppf "  cross-shard interactions: %d@," (List.length edges));
  Format.fprintf ppf "  verdict: %s@]"
    (if schedulable t then "schedulable" else "NOT schedulable")
