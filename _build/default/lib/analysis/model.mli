(** The flattened structural model shared by every static analysis.

    One elaboration-faithful view of a typechecked model, mirroring
    [Dsl.Elaborate] / [Hybrid.Engine] flattening without instantiating
    solvers: composite streamers flatten into ["role.child"] leaves,
    composite border DPorts and capsule relay DPorts become 1-in/1-out
    junctions named ["owner.port"]. The timing analyses ({!Taskset},
    {!Rta}), the shard-safety analysis ({!Shard}) and the linter's
    semantic rules all consume this one structure. *)

open Dsl

type emission = {
  em_role : string;    (** emitting leaf role, e.g. ["chain.first"] *)
  em_inst : string;    (** top-level streamer instance the leaf lives in *)
  em_sport : string;
  em_signal : string;
  em_pos : Ast.pos;
}

type strategy = {
  str_role : string;   (** leaf role owning the [when] clause *)
  str_inst : string;
  str_signal : string;
  str_param : string;
  str_pos : Ast.pos;
}

type capsule_inst = {
  ci_name : string;    (** instance name; profiler path is ["system/<name>"] *)
  ci_class : string;
  ci_timers : (string * float) list;  (** periodic self signals *)
  ci_triggers : string list;          (** statechart triggers, with dups *)
  ci_sends : (string * string) list;  (** transition actions: signal, port *)
  ci_pos : Ast.pos;
}

type link = {
  lk_inst : string;    (** streamer instance *)
  lk_sport : string;
  lk_capsule : string; (** capsule instance *)
  lk_port : string;
  lk_pos : Ast.pos;
}

type t = {
  graph : Dataflow.Graph.t;
  periods : (string * float) list;  (** leaf role -> tick period *)
  wcets : (string * float) list;    (** leaf role -> declared wcet budget *)
  emissions : emission list;
  strategies : strategy list;
  capsules : capsule_inst list;
  links : link list;
  port_pos : ((string * string) * Ast.pos) list;  (** (node, port) -> decl *)
  flow_pos : ((string * string) * Ast.pos) list;  (** (dst node, dst port) *)
  leaf_pos : (string * Ast.pos) list;             (** leaf role -> instance decl *)
  system_pos : Ast.pos;
}

val of_checked : Typecheck.checked -> t option
(** [None] when the model has no system section (nothing to analyze) or
    flattening hits a structural error already reported by the
    typechecker. Call only on models where [Typecheck.is_ok] holds. *)

val producer : t -> string -> (string * float) option
(** Walk back through relays and junctions to the leaf streamer whose
    samples arrive at the node, with its period. [None] for nodes fed by
    no periodic leaf (or on a cycle). *)
