exception No_convergence

let dims_of a b q =
  let n = Array.length a in
  if n = 0 || Array.exists (fun row -> Array.length row <> n) a then
    invalid_arg "Control.Lqr: A must be square";
  if Array.length b <> n then invalid_arg "Control.Lqr: b dimension mismatch";
  if Array.length q <> n || Array.exists (fun row -> Array.length row <> n) q then
    invalid_arg "Control.Lqr: Q dimension mismatch";
  n

let mat_mul n x y =
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0. in
          for k = 0 to n - 1 do
            acc := !acc +. (x.(i).(k) *. y.(k).(j))
          done;
          !acc))

let transpose n x = Array.init n (fun i -> Array.init n (fun j -> x.(j).(i)))

let mat_vec n x v =
  Array.init n (fun i ->
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (x.(i).(k) *. v.(k))
      done;
      !acc)

let norm_inf_mat x =
  Array.fold_left
    (fun acc row ->
       Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) acc row)
    0. x

(* CARE residual: A'P + PA - (1/r) (P b)(P b)' + Q. *)
let care_residual n ~a ~at ~b ~q ~r p =
  let atp = mat_mul n at p in
  let pa = mat_mul n p a in
  let pb = mat_vec n p b in
  Array.init n (fun i ->
      Array.init n (fun j ->
          atp.(i).(j) +. pa.(i).(j) -. (pb.(i) *. pb.(j) /. r) +. q.(i).(j)))

let cost_matrix_residual ~a ~b ~q ~r ~p =
  let n = dims_of a b q in
  norm_inf_mat (care_residual n ~a ~at:(transpose n a) ~b ~q ~r p)

(* Solve the Lyapunov equation Acl' P + P Acl = -W for P by vectorizing
   into an n^2 x n^2 linear system (fine for control-sized plants).
   Equation (i,j):  sum_k Acl[k][i] P[k][j] + sum_l Acl[l][j] P[i][l]. *)
let solve_lyapunov n acl w =
  let dim = n * n in
  let idx i j = (i * n) + j in
  let m = Array.make_matrix dim dim 0. in
  let rhs = Array.make dim 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let row = idx i j in
      rhs.(row) <- -.w.(i).(j);
      for k = 0 to n - 1 do
        m.(row).(idx k j) <- m.(row).(idx k j) +. acl.(k).(i);
        m.(row).(idx i k) <- m.(row).(idx i k) +. acl.(k).(j)
      done
    done
  done;
  let v =
    try Ode.Linalg.solve m rhs
    with Failure _ -> raise No_convergence
  in
  Array.init n (fun i -> Array.init n (fun j -> v.(idx i j)))

(* Is the (small) matrix Hurwitz? Routh-style checks for n <= 2; larger
   systems rely on the caller-supplied initial gain instead. *)
let hurwitz n m =
  match n with
  | 1 -> m.(0).(0) < 0.
  | 2 ->
    let tr = m.(0).(0) +. m.(1).(1) in
    let det = (m.(0).(0) *. m.(1).(1)) -. (m.(0).(1) *. m.(1).(0)) in
    tr < 0. && det > 0.
  | _ -> false

let initial_gain n ~a ~b =
  if hurwitz n a then Array.make n 0.
  else
    match n with
    | 2 ->
      (try State_feedback.place2 ~a ~b ~poles:(-1., -2.)
       with Failure _ | Invalid_argument _ -> raise No_convergence)
    | 1 ->
      if Float.abs b.(0) < 1e-12 then raise No_convergence
      else [| (a.(0).(0) +. 1.) /. b.(0) |]
    | _ -> raise No_convergence

(* Kleinman–Newton iteration: with a stabilizing k, solve the Lyapunov
   equation for the closed loop, update k = (1/r) b' P; quadratic
   convergence to the stabilizing CARE solution. *)
let solve_care ?(tol = 1e-10) ?(max_steps = 200) ?dt:_ ~a ~b ~q ~r () =
  if r <= 0. then invalid_arg "Control.Lqr: r must be positive";
  let n = dims_of a b q in
  let at = transpose n a in
  let k = ref (initial_gain n ~a ~b) in
  let p = ref q in
  let rec iterate steps =
    if steps > max_steps then raise No_convergence;
    let acl =
      Array.init n (fun i ->
          Array.init n (fun j -> a.(i).(j) -. (b.(i) *. !k.(j))))
    in
    let w =
      Array.init n (fun i ->
          Array.init n (fun j -> q.(i).(j) +. (r *. !k.(i) *. !k.(j))))
    in
    let p' = solve_lyapunov n acl w in
    let pb = mat_vec n p' b in
    let k' = Array.map (fun v -> v /. r) pb in
    let delta =
      Array.fold_left Float.max 0.
        (Array.mapi (fun i v -> Float.abs (v -. !k.(i))) k')
    in
    p := p';
    k := k';
    let residual = norm_inf_mat (care_residual n ~a ~at ~b ~q ~r !p) in
    let scale = 1. +. norm_inf_mat !p in
    if residual /. scale <= tol || delta <= tol then ()
    else iterate (steps + 1)
  in
  iterate 0;
  let residual = norm_inf_mat (care_residual n ~a ~at ~b ~q ~r !p) in
  if Float.is_nan residual || residual /. (1. +. norm_inf_mat !p) > 1e-6 then
    raise No_convergence;
  !p

let gains ?tol ~a ~b ~q ~r () =
  let n = dims_of a b q in
  let p = solve_care ?tol ~a ~b ~q ~r () in
  let pb = mat_vec n p b in
  Array.map (fun v -> v /. r) pb
