type t = {
  k : float array;
  kr : float;
}

let create ?(kr = 0.) k = { k = Array.copy k; kr }

let gains t = Array.copy t.k
let reference_gain t = t.kr

let control t ?(reference = 0.) x =
  if Array.length x <> Array.length t.k then
    invalid_arg "Control.State_feedback.control: dimension mismatch";
  let acc = ref (t.kr *. reference) in
  for i = 0 to Array.length x - 1 do
    acc := !acc -. (t.k.(i) *. x.(i))
  done;
  !acc

let mat_mul a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0. in
          for k = 0 to n - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let mat_vec a v =
  Array.map
    (fun row ->
       let acc = ref 0. in
       Array.iteri (fun i x -> acc := !acc +. (x *. v.(i))) row;
       !acc)
    a

(* Ackermann for n = 2: K = [0 1] * Cinv * phi(A) where C = [B, A B] and
   phi is the desired characteristic polynomial. *)
let place2 ~a ~b ~poles:(p1, p2) =
  if Array.length a <> 2 || Array.length b <> 2 then
    invalid_arg "Control.State_feedback.place2: 2-state systems only";
  let ab = mat_vec a b in
  let c = [| [| b.(0); ab.(0) |]; [| b.(1); ab.(1) |] |] in
  let det = (c.(0).(0) *. c.(1).(1)) -. (c.(0).(1) *. c.(1).(0)) in
  if Float.abs det < 1e-12 then
    failwith "Control.State_feedback.place2: uncontrollable pair";
  let cinv =
    [| [| c.(1).(1) /. det; -.c.(0).(1) /. det |];
       [| -.c.(1).(0) /. det; c.(0).(0) /. det |] |]
  in
  (* phi(A) = A^2 - (p1+p2) A + p1 p2 I *)
  let a2 = mat_mul a a in
  let s = p1 +. p2 in
  let p = p1 *. p2 in
  let phi =
    Array.init 2 (fun i ->
        Array.init 2 (fun j ->
            a2.(i).(j) -. (s *. a.(i).(j)) +. (if i = j then p else 0.)))
  in
  let last_row_of_cinv = cinv.(1) in
  Array.init 2 (fun j ->
      (last_row_of_cinv.(0) *. phi.(0).(j)) +. (last_row_of_cinv.(1) *. phi.(1).(j)))

let closed_loop_matrix ~a ~b ~k =
  let n = Array.length a in
  Array.init n (fun i -> Array.init n (fun j -> a.(i).(j) -. (b.(i) *. k.(j))))

let eigenvalues2 m =
  if Array.length m <> 2 then invalid_arg "Control.State_feedback.eigenvalues2: 2x2 only";
  let tr = m.(0).(0) +. m.(1).(1) in
  let det = (m.(0).(0) *. m.(1).(1)) -. (m.(0).(1) *. m.(1).(0)) in
  let disc = (tr *. tr) -. (4. *. det) in
  if disc < 0. then None
  else
    let root = sqrt disc in
    Some ((tr +. root) /. 2., (tr -. root) /. 2.)
