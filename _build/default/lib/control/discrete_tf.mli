(** Discrete transfer functions (difference equations).

    This is the time-discrete half of the paper's hybrid picture: the
    part UML-RT already handles by embedding difference equations in
    capsule transition actions. [y_k = sum b_i u_(k-i) - sum a_j y_(k-j)]
    with [a] starting at [a_1]. *)

type t

val create : b:float array -> a:float array -> t
(** Numerator coefficients [b_0..b_m] and denominator [a_1..a_n]
    (the implicit [a_0] is 1). [b] must be non-empty. *)

val integrator : dt:float -> t
(** Forward-Euler integrator [y_k = y_(k-1) + dt * u_(k-1)]. *)

val differentiator : dt:float -> t
(** Backward difference [(u_k - u_(k-1)) / dt]. *)

val first_order_lag : dt:float -> time_constant:float -> t
(** Zero-order-hold discretization of [1/(tau s + 1)]. *)

val step : t -> float -> float
(** Feed one input sample, get the output sample. *)

val run : t -> float list -> float list
(** Feed a whole sequence (state persists across the call). *)

val reset : t -> unit
val order : t -> int * int
(** (numerator length - 1, denominator length). *)
