type t = {
  mutable setpoint : float;
  hysteresis : float;
  mutable on : bool;
  mutable switches : int;
}

let create ?(initially_on = false) ~setpoint ~hysteresis () =
  if hysteresis < 0. then invalid_arg "Control.Bang_bang.create: negative hysteresis";
  { setpoint; hysteresis; on = initially_on; switches = 0 }

let setpoint t = t.setpoint
let set_setpoint t sp = t.setpoint <- sp

let thresholds t = (t.setpoint -. t.hysteresis, t.setpoint +. t.hysteresis)

let update t ~measurement =
  let low, high = thresholds t in
  let next =
    if measurement < low then true
    else if measurement > high then false
    else t.on
  in
  if next <> t.on then t.switches <- t.switches + 1;
  t.on <- next;
  next

let output t = t.on
let switches t = t.switches
