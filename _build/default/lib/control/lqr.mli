(** Infinite-horizon LQR for single-input linear systems.

    Solves the continuous algebraic Riccati equation
    [A'P + PA - (1/r) P b b' P + Q = 0] by Kleinman-Newton iteration
    (each step solves a Lyapunov equation via a dense Kronecker system —
    fine for control-sized plants), then returns the optimal gain
    [k = (1/r) b' P]. The initial stabilizing gain is found automatically
    for plants with up to two states (pole placement); larger unstable
    plants raise {!No_convergence}. *)

exception No_convergence

val solve_care :
  ?tol:float -> ?max_steps:int -> ?dt:float
  -> a:float array array -> b:float array -> q:float array array -> r:float
  -> unit -> float array array
(** The stabilizing solution [P] (symmetric positive semi-definite).
    Defaults: [tol] 1e-10 on the scaled residual, [max_steps] 200 Newton
    iterations; [dt] is accepted for compatibility and ignored. Raises
    {!No_convergence} when the iteration fails (e.g. unstabilizable pair)
    and [Invalid_argument] on dimension mismatches or [r <= 0]. *)

val gains :
  ?tol:float -> a:float array array -> b:float array -> q:float array array
  -> r:float -> unit -> float array
(** The optimal state-feedback row vector [k]; use with
    {!State_feedback.create}. *)

val cost_matrix_residual :
  a:float array array -> b:float array -> q:float array array -> r:float
  -> p:float array array -> float
(** Infinity norm of the CARE residual at [p] — for verifying solutions. *)
