module Low_pass = struct
  type t = {
    time_constant : float;
    mutable state : float option;
  }

  let create ~time_constant =
    if time_constant <= 0. then
      invalid_arg "Control.Filter.Low_pass.create: time constant must be positive";
    { time_constant; state = None }

  let update t ~dt x =
    if dt <= 0. then invalid_arg "Control.Filter.Low_pass.update: dt must be positive";
    let y =
      match t.state with
      | None -> x
      | Some prev ->
        let alpha = dt /. (t.time_constant +. dt) in
        prev +. (alpha *. (x -. prev))
    in
    t.state <- Some y;
    y

  let value t = t.state
  let reset t = t.state <- None
end

module Biquad = struct
  type t = {
    b0 : float; b1 : float; b2 : float;
    a1 : float; a2 : float;
    mutable x1 : float; mutable x2 : float;
    mutable y1 : float; mutable y2 : float;
  }

  let create ~b0 ~b1 ~b2 ~a1 ~a2 =
    { b0; b1; b2; a1; a2; x1 = 0.; x2 = 0.; y1 = 0.; y2 = 0. }

  let butterworth_lowpass ~cutoff_hz ~sample_rate =
    if cutoff_hz <= 0. || cutoff_hz >= sample_rate /. 2. then
      invalid_arg "Control.Filter.Biquad.butterworth_lowpass: cutoff out of range";
    (* Bilinear transform with frequency pre-warping. *)
    let omega = Float.pi *. cutoff_hz /. (sample_rate /. 2.) in
    let k = tan (omega /. 2.) in
    let q = Float.sqrt 2. /. 2. in
    let norm = 1. /. (1. +. (k /. q) +. (k *. k)) in
    let b0 = k *. k *. norm in
    create ~b0 ~b1:(2. *. b0) ~b2:b0
      ~a1:(2. *. ((k *. k) -. 1.) *. norm)
      ~a2:((1. -. (k /. q) +. (k *. k)) *. norm)

  let update t x =
    let y =
      (t.b0 *. x) +. (t.b1 *. t.x1) +. (t.b2 *. t.x2)
      -. (t.a1 *. t.y1) -. (t.a2 *. t.y2)
    in
    t.x2 <- t.x1; t.x1 <- x;
    t.y2 <- t.y1; t.y1 <- y;
    y

  let reset t =
    t.x1 <- 0.; t.x2 <- 0.; t.y1 <- 0.; t.y2 <- 0.
end

module Moving_average = struct
  type t = {
    window : int;
    samples : float Queue.t;
    mutable sum : float;
  }

  let create ~window =
    if window < 1 then invalid_arg "Control.Filter.Moving_average.create: window >= 1";
    { window; samples = Queue.create (); sum = 0. }

  let update t x =
    Queue.push x t.samples;
    t.sum <- t.sum +. x;
    if Queue.length t.samples > t.window then begin
      let old = Queue.pop t.samples in
      t.sum <- t.sum -. old
    end;
    t.sum /. float_of_int (Queue.length t.samples)

  let value t =
    if Queue.is_empty t.samples then None
    else Some (t.sum /. float_of_int (Queue.length t.samples))

  let reset t =
    Queue.clear t.samples;
    t.sum <- 0.
end
