lib/control/discrete_tf.ml: Array List
