lib/control/filter.ml: Float Queue
