lib/control/lqr.mli:
