lib/control/bang_bang.ml:
