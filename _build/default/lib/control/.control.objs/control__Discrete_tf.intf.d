lib/control/discrete_tf.mli:
