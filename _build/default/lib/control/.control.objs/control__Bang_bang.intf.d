lib/control/bang_bang.mli:
