lib/control/state_feedback.ml: Array Float
