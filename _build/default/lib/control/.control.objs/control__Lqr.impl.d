lib/control/lqr.ml: Array Float Ode State_feedback
