lib/control/filter.mli:
