lib/control/pid.mli:
