lib/control/state_feedback.mli:
