(** Relay (on/off) controller with hysteresis — the thermostat law.

    Turns on below [setpoint - hysteresis], off above
    [setpoint + hysteresis], and keeps its previous output inside the
    band. *)

type t

val create : ?initially_on:bool -> setpoint:float -> hysteresis:float -> unit -> t
(** [hysteresis >= 0]. *)

val setpoint : t -> float
val set_setpoint : t -> float -> unit

val update : t -> measurement:float -> bool
(** One decision; also remembers it for the hysteresis band. *)

val output : t -> bool
(** Last decision. *)

val switches : t -> int
(** Number of on/off changes so far (chatter metric). *)

val thresholds : t -> float * float
(** (on-below, off-above). *)
