type t = {
  b : float array;
  a : float array;
  u_hist : float array;  (* u_(k-1) ... u_(k-m) ring as shift register *)
  y_hist : float array;
}

let create ~b ~a =
  if Array.length b = 0 then invalid_arg "Control.Discrete_tf.create: empty numerator";
  { b = Array.copy b; a = Array.copy a;
    u_hist = Array.make (Array.length b) 0.;
    y_hist = Array.make (Array.length a) 0. }

let integrator ~dt =
  if dt <= 0. then invalid_arg "Control.Discrete_tf.integrator: dt must be positive";
  create ~b:[| 0.; dt |] ~a:[| -1. |]

let differentiator ~dt =
  if dt <= 0. then invalid_arg "Control.Discrete_tf.differentiator: dt must be positive";
  create ~b:[| 1. /. dt; -1. /. dt |] ~a:[||]

let first_order_lag ~dt ~time_constant =
  if dt <= 0. || time_constant <= 0. then
    invalid_arg "Control.Discrete_tf.first_order_lag: dt and tau must be positive";
  let p = exp (-.dt /. time_constant) in
  create ~b:[| 0.; 1. -. p |] ~a:[| -.p |]

let step t u =
  (* Shift u into history position 0 semantics: u_hist.(i) = u_(k-i),
     so write current u at index 0 after shifting. *)
  let m = Array.length t.u_hist in
  if m > 1 then Array.blit t.u_hist 0 t.u_hist 1 (m - 1);
  t.u_hist.(0) <- u;
  let y = ref 0. in
  Array.iteri (fun i bi -> y := !y +. (bi *. t.u_hist.(i))) t.b;
  Array.iteri (fun j aj -> y := !y -. (aj *. t.y_hist.(j))) t.a;
  let n = Array.length t.y_hist in
  if n > 0 then begin
    if n > 1 then Array.blit t.y_hist 0 t.y_hist 1 (n - 1);
    t.y_hist.(0) <- !y
  end;
  !y

let run t inputs = List.map (step t) inputs

let reset t =
  Array.fill t.u_hist 0 (Array.length t.u_hist) 0.;
  Array.fill t.y_hist 0 (Array.length t.y_hist) 0.

let order t = (Array.length t.b - 1, Array.length t.a)
