(** Full state feedback [u = -K x + kr * r].

    Includes Ackermann pole placement for 2-state single-input plants
    (which covers the pendulum, motor and mass–spring models here). *)

type t

val create : ?kr:float -> float array -> t
(** Gain row vector K; [kr] (reference gain) defaults to 0 (pure
    regulator). *)

val gains : t -> float array
val reference_gain : t -> float

val control : t -> ?reference:float -> float array -> float
(** [u = -K x + kr * r] (reference defaults to 0). Raises
    [Invalid_argument] on dimension mismatch. *)

val place2 :
  a:float array array -> b:float array -> poles:float * float -> float array
(** Ackermann's formula for a 2-state system: the K that puts the
    closed-loop poles at the two (real) locations. Raises [Failure] when
    the pair is uncontrollable. *)

val closed_loop_matrix :
  a:float array array -> b:float array -> k:float array -> float array array
(** A - B K. *)

val eigenvalues2 : float array array -> (float * float) option
(** Real eigenvalues of a 2x2 matrix; [None] when they are complex. *)
