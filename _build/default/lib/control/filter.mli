(** Discrete signal filters used in measurement paths. *)

(** First-order low-pass (exponential smoothing against a time
    constant). *)
module Low_pass : sig
  type t

  val create : time_constant:float -> t
  (** [time_constant > 0]. *)

  val update : t -> dt:float -> float -> float
  val value : t -> float option
  val reset : t -> unit
end

(** Discrete biquad (direct form I), with a Butterworth low-pass
    designer. *)
module Biquad : sig
  type t

  val create :
    b0:float -> b1:float -> b2:float -> a1:float -> a2:float -> t
  (** y[k] = b0 x[k] + b1 x[k-1] + b2 x[k-2] - a1 y[k-1] - a2 y[k-2]. *)

  val butterworth_lowpass : cutoff_hz:float -> sample_rate:float -> t
  (** 2nd-order Butterworth via the bilinear transform;
      [0 < cutoff < sample_rate/2]. *)

  val update : t -> float -> float
  val reset : t -> unit
end

(** Moving average over a fixed window of samples. *)
module Moving_average : sig
  type t

  val create : window:int -> t
  (** [window >= 1]. *)

  val update : t -> float -> float
  val value : t -> float option
  val reset : t -> unit
end
