type direction = Rising | Falling | Both

type guard = {
  name : string;
  direction : direction;
  expr : float -> float array -> float;
}

let guard ?(direction = Both) name expr = { name; direction; expr }

type crossing = {
  guard_name : string;
  time : float;
  state : float array;
}

let sign_change_dir dir g0 g1 =
  match dir with
  | Rising -> g0 < 0. && g1 >= 0.
  | Falling -> g0 > 0. && g1 <= 0.
  | Both -> (g0 < 0. && g1 >= 0.) || (g0 > 0. && g1 <= 0.)

let sign_change g g0 g1 = sign_change_dir g.direction g0 g1

let locate ?tol ?(max_bisect = 80) g interp =
  let t0, t1 = Dense.span interp in
  let tol = match tol with Some t -> t | None -> 1e-10 *. (t1 -. t0) in
  let value time = g.expr time (Dense.eval interp time) in
  let g0 = value t0 in
  let g1 = value t1 in
  if not (sign_change g g0 g1) then None
  else begin
    (* Bisection keeps the sign-change bracket [lo, hi]; the crossing is
       reported at [hi] so that the post-event guard value is on the far
       side of zero and the event does not immediately retrigger. *)
    let rec bisect lo glo hi iter =
      if hi -. lo <= tol || iter >= max_bisect then hi
      else
        let mid = (lo +. hi) /. 2. in
        let gmid = value mid in
        if sign_change g glo gmid then bisect lo glo mid (iter + 1)
        else bisect mid gmid hi (iter + 1)
    in
    let time = bisect t0 g0 t1 0 in
    Some { guard_name = g.name; time; state = Dense.eval interp time }
  end

let first_crossing ?tol guards interp =
  let best acc candidate =
    match (acc, candidate) with
    | None, c -> c
    | a, None -> a
    | Some a, Some b -> if b.time < a.time then Some b else Some a
  in
  List.fold_left (fun acc g -> best acc (locate ?tol g interp)) None guards
