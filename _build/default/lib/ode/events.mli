(** Zero-crossing (state-event) detection and location.

    Guards are scalar functions of the continuous state; when a guard's
    sign changes across an integration step the engine must locate the
    crossing time to deliver the discrete signal at the right instant —
    this is how streamers raise SPort signals toward capsules. *)

type direction = Rising | Falling | Both

type guard = {
  name : string;
  direction : direction;
  expr : float -> float array -> float;  (** g(t, y); crossing means g = 0 *)
}

val guard : ?direction:direction -> string -> (float -> float array -> float) -> guard
(** Build a guard (default direction [Both]). *)

type crossing = {
  guard_name : string;
  time : float;
  state : float array;
}

val sign_change : guard -> float -> float -> bool
(** [sign_change g g0 g1] — does the value pair represent a crossing in the
    guard's direction? Exact zeros at the step start do not retrigger. *)

val sign_change_dir : direction -> float -> float -> bool
(** {!sign_change} on a bare direction, for callers that track guard
    values out-of-band (e.g. in flat arrays) and have no [guard] record
    at hand. *)

val locate :
  ?tol:float -> ?max_bisect:int -> guard -> Dense.t -> crossing option
(** Locate the first crossing of the guard inside the interpolant's span
    by bisection on the dense output; [tol] is the time tolerance
    (default 1e-10 of the span). Returns [None] when there is no sign
    change over the step. *)

val first_crossing :
  ?tol:float -> guard list -> Dense.t -> crossing option
(** Earliest crossing among all guards over the step, if any. *)
