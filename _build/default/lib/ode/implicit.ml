type config = {
  newton_tol : float;
  max_newton : int;
  fd_epsilon : float;
}

let default_config = { newton_tol = 1e-10; max_newton = 25; fd_epsilon = 1e-7 }

exception No_convergence of float

(* Newton solve of [g(y) = 0] starting from [y0], with a forward-difference
   Jacobian rebuilt at every iteration (dimensions are tiny). *)
let newton config ~target_time g y0 =
  let n = Array.length y0 in
  let rec iterate y iter =
    let r = g y in
    if Linalg.norm_inf r <= config.newton_tol then y
    else if iter >= config.max_newton then raise (No_convergence target_time)
    else begin
      let jac =
        Array.init n (fun i ->
            let yp = Linalg.copy y in
            let h = config.fd_epsilon *. Float.max 1. (Float.abs y.(i)) in
            yp.(i) <- yp.(i) +. h;
            let rp = g yp in
            Array.init n (fun j -> (rp.(j) -. r.(j)) /. h))
      in
      (* [jac] above is column-major (row i = dg/dy_i); transpose to rows. *)
      let jt = Array.init n (fun i -> Array.init n (fun j -> jac.(j).(i))) in
      let delta = Linalg.solve jt (Linalg.scale (-1.) r) in
      iterate (Linalg.add y delta) (iter + 1)
    end
  in
  iterate y0 0

let backward_euler_step ?(config = default_config) sys ~t ~dt y =
  if dt <= 0. then invalid_arg "Ode.Implicit.backward_euler_step: dt must be positive";
  let t1 = t +. dt in
  let g y1 = Linalg.sub (Linalg.sub y1 y) (Linalg.scale dt (System.eval sys t1 y1)) in
  (* Explicit Euler predictor gives Newton a warm start. *)
  let predictor = Linalg.axpy dt (System.eval sys t y) y in
  newton config ~target_time:t1 g predictor

let trapezoidal_step ?(config = default_config) sys ~t ~dt y =
  if dt <= 0. then invalid_arg "Ode.Implicit.trapezoidal_step: dt must be positive";
  let t1 = t +. dt in
  let f0 = System.eval sys t y in
  let base = Linalg.axpy (dt /. 2.) f0 y in
  let g y1 =
    Linalg.sub (Linalg.sub y1 base) (Linalg.scale (dt /. 2.) (System.eval sys t1 y1))
  in
  let predictor = Linalg.axpy dt f0 y in
  newton config ~target_time:t1 g predictor

let integrate ?config method_ sys ~t0 ~t1 ~dt y0 =
  if dt <= 0. then invalid_arg "Ode.Implicit.integrate: dt must be positive";
  if t1 < t0 then invalid_arg "Ode.Implicit.integrate: t1 must be >= t0";
  let stepper =
    match method_ with
    | `Backward_euler -> backward_euler_step ?config sys
    | `Trapezoidal -> trapezoidal_step ?config sys
  in
  let eps = 1e-12 *. Float.max 1. (Float.abs t1) in
  let rec loop t y =
    if t >= t1 -. eps then y
    else
      let h = Float.min dt (t1 -. t) in
      loop (t +. h) (stepper ~t ~dt:h y)
  in
  loop t0 (Linalg.copy y0)
