(** Implicit (A-stable) steppers for stiff plants.

    Newton iteration with a finite-difference Jacobian; suitable for the
    small state dimensions (<= ~20) that control plants have. *)

type config = {
  newton_tol : float;    (** residual infinity-norm tolerance (default 1e-10) *)
  max_newton : int;      (** Newton iterations per step (default 25) *)
  fd_epsilon : float;    (** finite-difference perturbation (default 1e-7) *)
}

val default_config : config

exception No_convergence of float
(** Raised (with the step's target time) when Newton fails to converge. *)

val backward_euler_step :
  ?config:config -> System.t -> t:float -> dt:float -> float array -> float array
(** One backward-Euler step: solves [y1 = y0 + dt * f(t+dt, y1)]. *)

val trapezoidal_step :
  ?config:config -> System.t -> t:float -> dt:float -> float array -> float array
(** One trapezoidal (Crank–Nicolson) step:
    [y1 = y0 + dt/2 * (f(t, y0) + f(t+dt, y1))]. *)

val integrate :
  ?config:config
  -> [ `Backward_euler | `Trapezoidal ]
  -> System.t -> t0:float -> t1:float -> dt:float -> float array -> float array
(** Uniform-mesh integration, final step shortened to land on [t1]. *)
