(** Small dense linear-algebra helpers used by the integrators.

    All vectors are [float array]; all operations allocate a fresh result
    unless the name says otherwise ([axpy_into], [blit]). Matrices are
    [float array array] in row-major order. *)

val copy : float array -> float array
(** Fresh copy of a vector. *)

val add : float array -> float array -> float array
(** Elementwise sum. Raises [Invalid_argument] on dimension mismatch. *)

val sub : float array -> float array -> float array
(** Elementwise difference. *)

val scale : float -> float array -> float array
(** [scale k v] is [k * v]. *)

val axpy : float -> float array -> float array -> float array
(** [axpy a x y] is [a*x + y]. *)

val axpy_into : dst:float array -> float -> float array -> unit
(** [axpy_into ~dst a x] performs [dst <- dst + a*x] in place. *)

val copy_into : dst:float array -> float array -> unit
(** [copy_into ~dst x] performs [dst <- x] in place. *)

val scale_into : dst:float array -> float -> float array -> unit
(** [scale_into ~dst k x] performs [dst <- k*x] in place ([dst == x]
    allowed). *)

val add_into : dst:float array -> float array -> float array -> unit
(** [add_into ~dst a b] performs [dst <- a + b] in place (aliasing
    allowed).

    Note for zero-allocation call sites: the float coefficient of these
    kernels still boxes at the call boundary on a non-flambda compiler —
    the fixed-step hot loops in {!Fixed} hand-roll their stage arithmetic
    for exactly that reason. These kernels are for warm paths that want
    to avoid fresh arrays, not for strict zero-allocation loops. *)

val dot : float array -> float array -> float
(** Inner product. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
(** Maximum absolute component; 0 for the empty vector. *)

val lerp : float -> float array -> float array -> float array
(** [lerp s a b] is [(1-s)*a + s*b]. *)

val weighted_sum : (float * float array) list -> float array
(** Sum of scaled vectors. Raises [Invalid_argument] on the empty list. *)

val mat_vec : float array array -> float array -> float array
(** Matrix-vector product. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. Raises [Failure] if [a] is (numerically) singular.
    [a] and [b] are not modified. *)

val identity : int -> float array array
(** Identity matrix of the given order. *)

val approx_equal : ?tol:float -> float array -> float array -> bool
(** True when the two vectors agree within [tol] (default [1e-9]) in
    the infinity norm. *)
