type method_ =
  | Fixed of Fixed.scheme * float
  | Adaptive of Adaptive.scheme * Adaptive.control
  | Implicit of [ `Backward_euler | `Trapezoidal ] * float

let method_name = function
  | Fixed (s, dt) -> Printf.sprintf "fixed:%s@%g" (Fixed.scheme_name s) dt
  | Adaptive (s, _) -> Printf.sprintf "adaptive:%s" (Adaptive.scheme_name s)
  | Implicit (`Backward_euler, dt) -> Printf.sprintf "implicit:backward-euler@%g" dt
  | Implicit (`Trapezoidal, dt) -> Printf.sprintf "implicit:trapezoidal@%g" dt

type t = {
  mutable sys : System.t;
  method_ : method_;
  mutable now : float;
  mutable y : float array;
  mutable steps : int;
  ws : Fixed.workspace;  (* stage storage for the allocation-free path *)
}

let create ?(method_ = Fixed (Fixed.Rk4, 1e-3)) sys ~t0 y0 =
  if Array.length y0 <> System.dim sys then
    invalid_arg "Ode.Integrator.create: state dimension mismatch";
  (match method_ with
   | Adaptive (_, control) -> Adaptive.validate_control control
   | Fixed _ | Implicit _ -> ());
  { sys; method_; now = t0; y = Linalg.copy y0; steps = 0;
    ws = Fixed.workspace ~dim:(System.dim sys) }

let time t = t.now
let state t = Linalg.copy t.y
let state_view t = t.y

let set_state t y =
  if Array.length y <> System.dim t.sys then
    invalid_arg "Ode.Integrator.set_state: state dimension mismatch";
  t.y <- Linalg.copy y

(* Supervision primitive: after a solver fault (divergence, step
   underflow) the integrator may be stranded mid-interval; a restart must
   move the clock as well as the state or the next advance replays the
   same doomed interval forever. *)
let reset t ~t0 y =
  if Array.length y <> System.dim t.sys then
    invalid_arg "Ode.Integrator.reset: state dimension mismatch";
  t.now <- t0;
  t.y <- Linalg.copy y

let system t = t.sys

let replace_system t sys =
  if System.dim sys <> System.dim t.sys then
    invalid_arg "Ode.Integrator.replace_system: dimension mismatch";
  t.sys <- sys

let steps_taken t = t.steps

type outcome =
  | Reached of float
  | Interrupted of Events.crossing

(* One raw step of whatever method is configured, of size at most [limit],
   returning (t', y'). *)
let raw_step t ~limit =
  let h_of dt = Float.min dt limit in
  match t.method_ with
  | Fixed (scheme, dt) ->
    let h = h_of dt in
    let y' = Fixed.step scheme t.sys ~t:t.now ~dt:h t.y in
    (t.now +. h, y')
  | Implicit (m, dt) ->
    let h = h_of dt in
    let y' =
      match m with
      | `Backward_euler -> Implicit.backward_euler_step t.sys ~t:t.now ~dt:h t.y
      | `Trapezoidal -> Implicit.trapezoidal_step t.sys ~t:t.now ~dt:h t.y
    in
    (t.now +. h, y')
  | Adaptive (scheme, control) ->
    let y', stats =
      Adaptive.integrate ~scheme ~control t.sys ~t0:t.now ~t1:(t.now +. limit) t.y
    in
    ignore stats;
    (t.now +. limit, y')

let eps_for target = 1e-12 *. Float.max 1. (Float.abs target)

(* Allocation-free advance for fixed-step methods with an in-place rhs:
   the mesh is walked with [Fixed.step_cells] (times through workspace
   cells, state updated in place) and the clock lands exactly on
   [target]. Mesh times are [now + i*dt] rather than accumulated, so the
   trajectory can differ from {!advance} in the last ulp. *)
let rec advance_to t target =
  if target < t.now then invalid_arg "Ode.Integrator.advance_to: target in the past";
  match t.method_ with
  | Fixed (scheme, dt) ->
    (match System.rhs_into_opt t.sys with
     | Some _ ->
       let t0 = t.now in
       let a = Float.abs target in
       let eps = 1e-12 *. (if a > 1. then a else 1.) in
       let span = target -. t0 in
       if span > eps && dt <= 0. then
         invalid_arg "Ode.Fixed.step: dt must be positive";
       let raw = (span -. eps) /. dt in
       let n = if raw <= 0. then 0 else int_of_float (ceil raw) in
       let ws = t.ws in
       let y = t.y in
       for i = 0 to n - 1 do
         let ti = t0 +. (float_of_int i *. dt) in
         let remaining = target -. ti in
         ws.Fixed.targ.(0) <- ti;
         ws.Fixed.harg.(0) <- (if dt <= remaining then dt else remaining);
         Fixed.step_cells scheme t.sys ws y
       done;
       t.steps <- t.steps + n;
       t.now <- target
     | None -> ignore (advance t target))
  | Implicit _ | Adaptive _ -> ignore (advance t target)

and advance t target =
  if target < t.now then invalid_arg "Ode.Integrator.advance: target in the past";
  let eps = eps_for target in
  while t.now < target -. eps do
    let t', y' = raw_step t ~limit:(target -. t.now) in
    t.now <- t';
    t.y <- y';
    t.steps <- t.steps + 1
  done;
  t.now <- target;
  Reached target

let advance_guarded t target guards =
  if target < t.now then invalid_arg "Ode.Integrator.advance_guarded: target in the past";
  if guards = [] then advance t target
  else begin
    let eps = eps_for target in
    let result = ref None in
    while !result = None && t.now < target -. eps do
      let t0 = t.now in
      let y0 = t.y in
      let t1, y1 = raw_step t ~limit:(target -. t.now) in
      let interp = Dense.of_system t.sys ~t0 ~y0 ~t1 ~y1 in
      match Events.first_crossing guards interp with
      | Some crossing ->
        t.now <- crossing.Events.time;
        t.y <- Linalg.copy crossing.Events.state;
        t.steps <- t.steps + 1;
        result := Some (Interrupted crossing)
      | None ->
        t.now <- t1;
        t.y <- y1;
        t.steps <- t.steps + 1
    done;
    match !result with
    | Some outcome -> outcome
    | None ->
      t.now <- target;
      Reached target
  end
