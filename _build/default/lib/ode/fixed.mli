(** Fixed-step explicit Runge–Kutta methods.

    These are the workhorses of the streamer solvers: cheap, predictable
    cost per step, which is what a rate-driven real-time thread wants. *)

type scheme =
  | Euler      (** forward Euler, order 1 *)
  | Midpoint   (** explicit midpoint, order 2 *)
  | Heun       (** Heun / trapezoidal predictor-corrector, order 2 *)
  | Rk4        (** classic Runge–Kutta, order 4 *)

val order : scheme -> int
(** Classical order of accuracy. *)

val scheme_name : scheme -> string
(** Lower-case printable name, e.g. ["rk4"]. *)

val scheme_of_string : string -> scheme option
(** Inverse of {!scheme_name}. *)

val all_schemes : scheme list
(** Every scheme, in increasing order of accuracy. *)

val step : scheme -> System.t -> t:float -> dt:float -> float array -> float array
(** One step of the scheme from state [y] at time [t], returning the state
    at [t +. dt]. Raises [Invalid_argument] if [dt <= 0]. *)

val integrate :
  scheme -> System.t -> t0:float -> t1:float -> dt:float -> float array -> float array
(** Advance from [t0] to [t1] in uniform steps of at most [dt] (the final
    step is shortened to land exactly on [t1]). *)

val trajectory :
  scheme -> System.t -> t0:float -> t1:float -> dt:float -> float array
  -> (float * float array) list
(** Like {!integrate} but returning every mesh point including [t0]. *)
