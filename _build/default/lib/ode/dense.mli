(** Dense output between integration mesh points.

    Cubic Hermite interpolation over one step, using the derivative values
    the integrator already computed. Third-order accurate, which matches
    the accuracy the zero-crossing locator needs. *)

type t
(** An interpolant over one step [t0, t1]. *)

val create :
  t0:float -> y0:float array -> f0:float array
  -> t1:float -> y1:float array -> f1:float array -> t
(** Build the interpolant from both endpoints and their derivatives.
    Raises [Invalid_argument] if [t1 <= t0] or dimensions differ. *)

val of_system : System.t -> t0:float -> y0:float array -> t1:float -> y1:float array -> t
(** Convenience: evaluate the system's right-hand side at both endpoints. *)

val span : t -> float * float
(** The interval the interpolant covers. *)

val eval : t -> float -> float array
(** [eval interp t] for [t] within the span (clamped outside). *)

val eval_component : t -> int -> float -> float
(** Single state component, avoiding the array allocation. *)
