lib/ode/implicit.ml: Array Float Linalg System
