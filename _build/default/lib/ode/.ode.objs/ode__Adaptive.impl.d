lib/ode/adaptive.ml: Array Float Linalg List Obs System
