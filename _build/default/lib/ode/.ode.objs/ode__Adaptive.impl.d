lib/ode/adaptive.ml: Array Float Linalg List Obs Printf System
