lib/ode/adaptive.ml: Array Float Linalg List System
