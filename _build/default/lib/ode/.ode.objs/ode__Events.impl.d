lib/ode/events.ml: Dense List
