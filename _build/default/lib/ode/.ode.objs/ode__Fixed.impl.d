lib/ode/fixed.ml: Float Linalg List System
