lib/ode/fixed.ml: Array Float Linalg List System
