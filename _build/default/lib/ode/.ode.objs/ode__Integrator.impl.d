lib/ode/integrator.ml: Adaptive Array Dense Events Fixed Float Implicit Linalg Printf System
