lib/ode/integrator.mli: Adaptive Events Fixed System
