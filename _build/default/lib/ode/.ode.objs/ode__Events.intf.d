lib/ode/events.mli: Dense
