lib/ode/linalg.mli:
