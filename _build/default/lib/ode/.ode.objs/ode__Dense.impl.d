lib/ode/dense.ml: Array Float Linalg System
