lib/ode/system.ml: Array Linalg Printf
