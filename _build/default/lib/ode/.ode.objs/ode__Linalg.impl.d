lib/ode/linalg.ml: Array Float List Printf
