lib/ode/dense.mli: System
