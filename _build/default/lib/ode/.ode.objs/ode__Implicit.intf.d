lib/ode/implicit.mli: System
