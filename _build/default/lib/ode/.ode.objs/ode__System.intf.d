lib/ode/system.mli:
