lib/ode/fixed.mli: System
