lib/ode/adaptive.mli: System
