let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Ode.Linalg.%s: dimension mismatch (%d vs %d)"
                   name (Array.length a) (Array.length b))

let copy = Array.copy

let add a b =
  check_dims "add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_dims "sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale k v = Array.map (fun x -> k *. x) v

let axpy a x y =
  check_dims "axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let axpy_into ~dst a x =
  check_dims "axpy_into" dst x;
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) +. (a *. x.(i))
  done

let copy_into ~dst x =
  check_dims "copy_into" dst x;
  Array.blit x 0 dst 0 (Array.length x)

let scale_into ~dst k x =
  check_dims "scale_into" dst x;
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- k *. x.(i)
  done

let add_into ~dst a b =
  check_dims "add_into" dst a;
  check_dims "add_into" a b;
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- a.(i) +. b.(i)
  done

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

let lerp s a b =
  check_dims "lerp" a b;
  Array.init (Array.length a) (fun i -> ((1. -. s) *. a.(i)) +. (s *. b.(i)))

let weighted_sum = function
  | [] -> invalid_arg "Ode.Linalg.weighted_sum: empty list"
  | (k0, v0) :: rest ->
    let acc = scale k0 v0 in
    List.iter (fun (k, v) -> axpy_into ~dst:acc k v) rest;
    acc

let mat_vec m v =
  Array.map (fun row -> dot row v) m

let solve a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Ode.Linalg.solve: square matrix required";
  (* Augmented working copies; partial pivoting keeps the elimination stable. *)
  let m = Array.init n (fun i ->
      if Array.length a.(i) <> n then
        invalid_arg "Ode.Linalg.solve: square matrix required";
      Array.copy a.(i))
  in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-300 then failwith "Ode.Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0. then begin
        for k = col to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b && norm_inf (sub a b) <= tol
