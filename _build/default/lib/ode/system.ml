type inplace = float array -> float array -> float array -> unit

type t = {
  dim : int;
  rhs : float -> float array -> float array;
  rhs_into : inplace option;
  evals : int ref;
}

let create ?rhs_into ~dim rhs =
  if dim <= 0 then invalid_arg "Ode.System.create: dimension must be positive";
  { dim; rhs; rhs_into; evals = ref 0 }

let create_inplace ~dim f =
  if dim <= 0 then invalid_arg "Ode.System.create_inplace: dimension must be positive";
  (* Derived allocating view, for guard location and dense output. *)
  let rhs time y =
    let dy = Array.make dim 0. in
    f [| time |] y dy;
    dy
  in
  { dim; rhs; rhs_into = Some f; evals = ref 0 }

let dim t = t.dim

let rhs_into_opt t = t.rhs_into

let note_evals t n = t.evals := !(t.evals) + n

let eval t time y =
  if Array.length y <> t.dim then
    invalid_arg
      (Printf.sprintf "Ode.System.eval: state has dimension %d, expected %d"
         (Array.length y) t.dim);
  incr t.evals;
  let dy = t.rhs time y in
  if Array.length dy <> t.dim then
    invalid_arg
      (Printf.sprintf
         "Ode.System.eval: right-hand side returned dimension %d, expected %d"
         (Array.length dy) t.dim);
  dy

let eval_count t = !(t.evals)

let linear a =
  let n = Array.length a in
  create ~dim:n (fun _t y -> Linalg.mat_vec a y)

let affine a b =
  let n = Array.length b in
  create ~dim:n (fun _t y -> Linalg.add (Linalg.mat_vec a y) b)

let map_state t enc dec =
  create ~dim:t.dim (fun time y -> dec (eval t time (enc y)))
