type t = {
  dim : int;
  rhs : float -> float array -> float array;
  evals : int ref;
}

let create ~dim rhs =
  if dim <= 0 then invalid_arg "Ode.System.create: dimension must be positive";
  { dim; rhs; evals = ref 0 }

let dim t = t.dim

let eval t time y =
  if Array.length y <> t.dim then
    invalid_arg
      (Printf.sprintf "Ode.System.eval: state has dimension %d, expected %d"
         (Array.length y) t.dim);
  incr t.evals;
  let dy = t.rhs time y in
  if Array.length dy <> t.dim then
    invalid_arg
      (Printf.sprintf
         "Ode.System.eval: right-hand side returned dimension %d, expected %d"
         (Array.length dy) t.dim);
  dy

let eval_count t = !(t.evals)

let linear a =
  let n = Array.length a in
  create ~dim:n (fun _t y -> Linalg.mat_vec a y)

let affine a b =
  let n = Array.length b in
  create ~dim:n (fun _t y -> Linalg.add (Linalg.mat_vec a y) b)

let map_state t enc dec =
  create ~dim:t.dim (fun time y -> dec (eval t time (enc y)))
