type scheme = Euler | Midpoint | Heun | Rk4

let order = function
  | Euler -> 1
  | Midpoint | Heun -> 2
  | Rk4 -> 4

let scheme_name = function
  | Euler -> "euler"
  | Midpoint -> "midpoint"
  | Heun -> "heun"
  | Rk4 -> "rk4"

let scheme_of_string = function
  | "euler" -> Some Euler
  | "midpoint" -> Some Midpoint
  | "heun" -> Some Heun
  | "rk4" -> Some Rk4
  | _ -> None

let all_schemes = [ Euler; Midpoint; Heun; Rk4 ]

let step scheme sys ~t ~dt y =
  if dt <= 0. then invalid_arg "Ode.Fixed.step: dt must be positive";
  let f = System.eval sys in
  match scheme with
  | Euler ->
    Linalg.axpy dt (f t y) y
  | Midpoint ->
    let k1 = f t y in
    let mid = Linalg.axpy (dt /. 2.) k1 y in
    Linalg.axpy dt (f (t +. (dt /. 2.)) mid) y
  | Heun ->
    let k1 = f t y in
    let predictor = Linalg.axpy dt k1 y in
    let k2 = f (t +. dt) predictor in
    Linalg.axpy (dt /. 2.) (Linalg.add k1 k2) y
  | Rk4 ->
    let half = dt /. 2. in
    let k1 = f t y in
    let k2 = f (t +. half) (Linalg.axpy half k1 y) in
    let k3 = f (t +. half) (Linalg.axpy half k2 y) in
    let k4 = f (t +. dt) (Linalg.axpy dt k3 y) in
    let incr =
      Linalg.weighted_sum [ (1., k1); (2., k2); (2., k3); (1., k4) ]
    in
    Linalg.axpy (dt /. 6.) incr y

(* ------------------------------------------------------------------ *)
(* Allocation-free stepping                                             *)
(*                                                                      *)
(* A preallocated workspace holds every intermediate stage array plus   *)
(* three 1-element float cells used to pass times across call           *)
(* boundaries without boxing. The stage arithmetic is written out       *)
(* loop-by-loop (rather than through Linalg) so no computed float ever  *)
(* crosses a function boundary; each expression keeps the exact IEEE    *)
(* association of the allocating [step] path, so the two agree          *)
(* bit-for-bit on a single step.                                        *)
(* ------------------------------------------------------------------ *)

type workspace = {
  wdim : int;
  k1 : float array;
  k2 : float array;
  k3 : float array;
  k4 : float array;
  ytmp : float array;
  tcell : float array;  (* evaluation time handed to the in-place rhs *)
  targ : float array;   (* step start time input to [step_cells] *)
  harg : float array;   (* step size input to [step_cells] *)
}

let workspace ~dim =
  if dim <= 0 then invalid_arg "Ode.Fixed.workspace: dimension must be positive";
  { wdim = dim;
    k1 = Array.make dim 0.; k2 = Array.make dim 0.;
    k3 = Array.make dim 0.; k4 = Array.make dim 0.;
    ytmp = Array.make dim 0.;
    tcell = [| 0. |]; targ = [| 0. |]; harg = [| 0. |] }

let step_cells scheme sys ws y =
  match System.rhs_into_opt sys with
  | None -> invalid_arg "Ode.Fixed.step_cells: system has no in-place rhs"
  | Some f ->
    let n = Array.length y in
    let t = ws.targ.(0) in
    let dt = ws.harg.(0) in
    let tc = ws.tcell in
    let k1 = ws.k1 in
    (match scheme with
     | Euler ->
       tc.(0) <- t;
       f tc y k1;
       for i = 0 to n - 1 do
         y.(i) <- (dt *. k1.(i)) +. y.(i)
       done;
       System.note_evals sys 1
     | Midpoint ->
       let k2 = ws.k2 and ytmp = ws.ytmp in
       tc.(0) <- t;
       f tc y k1;
       for i = 0 to n - 1 do
         ytmp.(i) <- ((dt /. 2.) *. k1.(i)) +. y.(i)
       done;
       tc.(0) <- t +. (dt /. 2.);
       f tc ytmp k2;
       for i = 0 to n - 1 do
         y.(i) <- (dt *. k2.(i)) +. y.(i)
       done;
       System.note_evals sys 2
     | Heun ->
       let k2 = ws.k2 and ytmp = ws.ytmp in
       tc.(0) <- t;
       f tc y k1;
       for i = 0 to n - 1 do
         ytmp.(i) <- (dt *. k1.(i)) +. y.(i)
       done;
       tc.(0) <- t +. dt;
       f tc ytmp k2;
       for i = 0 to n - 1 do
         y.(i) <- ((dt /. 2.) *. (k1.(i) +. k2.(i))) +. y.(i)
       done;
       System.note_evals sys 2
     | Rk4 ->
       let k2 = ws.k2 and k3 = ws.k3 and k4 = ws.k4 and ytmp = ws.ytmp in
       let half = dt /. 2. in
       tc.(0) <- t;
       f tc y k1;
       for i = 0 to n - 1 do
         ytmp.(i) <- (half *. k1.(i)) +. y.(i)
       done;
       tc.(0) <- t +. half;
       f tc ytmp k2;
       for i = 0 to n - 1 do
         ytmp.(i) <- (half *. k2.(i)) +. y.(i)
       done;
       f tc ytmp k3;
       for i = 0 to n - 1 do
         ytmp.(i) <- (dt *. k3.(i)) +. y.(i)
       done;
       tc.(0) <- t +. dt;
       f tc ytmp k4;
       for i = 0 to n - 1 do
         y.(i) <-
           ((dt /. 6.)
            *. ((((1. *. k1.(i)) +. (2. *. k2.(i))) +. (2. *. k3.(i)))
                +. (1. *. k4.(i))))
           +. y.(i)
       done;
       System.note_evals sys 4)

let step_into scheme sys ~ws ~t ~dt y =
  if dt <= 0. then invalid_arg "Ode.Fixed.step_into: dt must be positive";
  if Array.length y <> ws.wdim || Array.length y <> System.dim sys then
    invalid_arg "Ode.Fixed.step_into: state dimension mismatch";
  match System.rhs_into_opt sys with
  | Some _ ->
    ws.targ.(0) <- t;
    ws.harg.(0) <- dt;
    step_cells scheme sys ws y
  | None ->
    (* No in-place rhs: take the allocating path, land in place. *)
    let y' = step scheme sys ~t ~dt y in
    Array.blit y' 0 y 0 (Array.length y)

let advance_into scheme sys ~ws ~t0 ~t1 ~dt y =
  if dt <= 0. then invalid_arg "Ode.Fixed.advance_into: dt must be positive";
  if t1 < t0 then invalid_arg "Ode.Fixed.advance_into: t1 must be >= t0";
  if Array.length y <> ws.wdim || Array.length y <> System.dim sys then
    invalid_arg "Ode.Fixed.advance_into: state dimension mismatch";
  let a = Float.abs t1 in
  let eps = 1e-12 *. (if a > 1. then a else 1.) in
  let span = t1 -. t0 in
  let raw = (span -. eps) /. dt in
  let n = if raw <= 0. then 0 else int_of_float (ceil raw) in
  (match System.rhs_into_opt sys with
   | Some _ ->
     for i = 0 to n - 1 do
       let ti = t0 +. (float_of_int i *. dt) in
       let remaining = t1 -. ti in
       ws.targ.(0) <- ti;
       ws.harg.(0) <- (if dt <= remaining then dt else remaining);
       step_cells scheme sys ws y
     done
   | None ->
     for i = 0 to n - 1 do
       let ti = t0 +. (float_of_int i *. dt) in
       let remaining = t1 -. ti in
       let h = if dt <= remaining then dt else remaining in
       let y' = step scheme sys ~t:ti ~dt:h y in
       Array.blit y' 0 y 0 (Array.length y)
     done);
  n

(* Walks the uniform mesh, shortening the final step so the trajectory lands
   exactly on [t1] even when [t1 - t0] is not a multiple of [dt]. *)
let fold scheme sys ~t0 ~t1 ~dt y0 ~init ~record =
  if dt <= 0. then invalid_arg "Ode.Fixed: dt must be positive";
  if t1 < t0 then invalid_arg "Ode.Fixed: t1 must be >= t0";
  let eps = 1e-12 *. Float.max 1. (Float.abs t1) in
  let rec loop acc t y =
    if t >= t1 -. eps then (acc, y)
    else
      let h = Float.min dt (t1 -. t) in
      let y' = step scheme sys ~t ~dt:h y in
      let t' = t +. h in
      loop (record acc t' y') t' y'
  in
  loop init t0 y0

let integrate scheme sys ~t0 ~t1 ~dt y0 =
  if t1 = t0 then Linalg.copy y0
  else
    let (), y = fold scheme sys ~t0 ~t1 ~dt y0 ~init:() ~record:(fun () _ _ -> ()) in
    y

let trajectory scheme sys ~t0 ~t1 ~dt y0 =
  let record acc t y = (t, Linalg.copy y) :: acc in
  let acc, _ =
    fold scheme sys ~t0 ~t1 ~dt y0 ~init:[ (t0, Linalg.copy y0) ] ~record
  in
  List.rev acc
