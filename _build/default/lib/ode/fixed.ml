type scheme = Euler | Midpoint | Heun | Rk4

let order = function
  | Euler -> 1
  | Midpoint | Heun -> 2
  | Rk4 -> 4

let scheme_name = function
  | Euler -> "euler"
  | Midpoint -> "midpoint"
  | Heun -> "heun"
  | Rk4 -> "rk4"

let scheme_of_string = function
  | "euler" -> Some Euler
  | "midpoint" -> Some Midpoint
  | "heun" -> Some Heun
  | "rk4" -> Some Rk4
  | _ -> None

let all_schemes = [ Euler; Midpoint; Heun; Rk4 ]

let step scheme sys ~t ~dt y =
  if dt <= 0. then invalid_arg "Ode.Fixed.step: dt must be positive";
  let f = System.eval sys in
  match scheme with
  | Euler ->
    Linalg.axpy dt (f t y) y
  | Midpoint ->
    let k1 = f t y in
    let mid = Linalg.axpy (dt /. 2.) k1 y in
    Linalg.axpy dt (f (t +. (dt /. 2.)) mid) y
  | Heun ->
    let k1 = f t y in
    let predictor = Linalg.axpy dt k1 y in
    let k2 = f (t +. dt) predictor in
    Linalg.axpy (dt /. 2.) (Linalg.add k1 k2) y
  | Rk4 ->
    let half = dt /. 2. in
    let k1 = f t y in
    let k2 = f (t +. half) (Linalg.axpy half k1 y) in
    let k3 = f (t +. half) (Linalg.axpy half k2 y) in
    let k4 = f (t +. dt) (Linalg.axpy dt k3 y) in
    let incr =
      Linalg.weighted_sum [ (1., k1); (2., k2); (2., k3); (1., k4) ]
    in
    Linalg.axpy (dt /. 6.) incr y

(* Walks the uniform mesh, shortening the final step so the trajectory lands
   exactly on [t1] even when [t1 - t0] is not a multiple of [dt]. *)
let fold scheme sys ~t0 ~t1 ~dt y0 ~init ~record =
  if dt <= 0. then invalid_arg "Ode.Fixed: dt must be positive";
  if t1 < t0 then invalid_arg "Ode.Fixed: t1 must be >= t0";
  let eps = 1e-12 *. Float.max 1. (Float.abs t1) in
  let rec loop acc t y =
    if t >= t1 -. eps then (acc, y)
    else
      let h = Float.min dt (t1 -. t) in
      let y' = step scheme sys ~t ~dt:h y in
      let t' = t +. h in
      loop (record acc t' y') t' y'
  in
  loop init t0 y0

let integrate scheme sys ~t0 ~t1 ~dt y0 =
  if t1 = t0 then Linalg.copy y0
  else
    let (), y = fold scheme sys ~t0 ~t1 ~dt y0 ~init:() ~record:(fun () _ _ -> ()) in
    y

let trajectory scheme sys ~t0 ~t1 ~dt y0 =
  let record acc t y = (t, Linalg.copy y) :: acc in
  let acc, _ =
    fold scheme sys ~t0 ~t1 ~dt y0 ~init:[ (t0, Linalg.copy y0) ] ~record
  in
  List.rev acc
