(** First-order ODE systems [y' = f(t, y)].

    Higher-order equations are expected to be rewritten into first-order
    form by the caller (the [plant] library does this for every model). *)

type t
(** An ODE system with a fixed dimension. *)

val create : dim:int -> (float -> float array -> float array) -> t
(** [create ~dim rhs] wraps [rhs t y] returning dy/dt. Raises
    [Invalid_argument] if [dim <= 0]. *)

val dim : t -> int
(** State-space dimension. *)

val eval : t -> float -> float array -> float array
(** [eval sys t y] evaluates the right-hand side, checking that both the
    argument and the result have dimension [dim sys]. *)

val eval_count : t -> int
(** Number of right-hand-side evaluations since creation — used by the
    benches to report work done by each method. *)

val linear : float array array -> t
(** [linear a] is the autonomous linear system [y' = A y]. *)

val affine : float array array -> float array -> t
(** [affine a b] is [y' = A y + b]. *)

val map_state : t -> (float array -> float array) -> (float array -> float array) -> t
(** [map_state sys enc dec] conjugates the system by a change of
    coordinates: states presented to the result are [enc]-oded before
    evaluation and derivatives are [dec]-oded after. Dimensions must be
    preserved. *)
