type t = {
  t0 : float;
  t1 : float;
  y0 : float array;
  y1 : float array;
  f0 : float array;
  f1 : float array;
}

let create ~t0 ~y0 ~f0 ~t1 ~y1 ~f1 =
  if t1 <= t0 then invalid_arg "Ode.Dense.create: t1 must be > t0";
  let n = Array.length y0 in
  if Array.length y1 <> n || Array.length f0 <> n || Array.length f1 <> n then
    invalid_arg "Ode.Dense.create: dimension mismatch";
  { t0; t1; y0 = Linalg.copy y0; y1 = Linalg.copy y1;
    f0 = Linalg.copy f0; f1 = Linalg.copy f1 }

let of_system sys ~t0 ~y0 ~t1 ~y1 =
  create ~t0 ~y0 ~f0:(System.eval sys t0 y0) ~t1 ~y1 ~f1:(System.eval sys t1 y1)

let span t = (t.t0, t.t1)

(* Standard cubic Hermite basis on the normalized coordinate s in [0,1]. *)
let basis s =
  let s2 = s *. s in
  let s3 = s2 *. s in
  let h00 = (2. *. s3) -. (3. *. s2) +. 1. in
  let h10 = s3 -. (2. *. s2) +. s in
  let h01 = (-2. *. s3) +. (3. *. s2) in
  let h11 = s3 -. s2 in
  (h00, h10, h01, h11)

let clamp_s t time =
  let s = (time -. t.t0) /. (t.t1 -. t.t0) in
  Float.max 0. (Float.min 1. s)

let eval t time =
  let h = t.t1 -. t.t0 in
  let s = clamp_s t time in
  let h00, h10, h01, h11 = basis s in
  Array.init (Array.length t.y0) (fun i ->
      (h00 *. t.y0.(i)) +. (h10 *. h *. t.f0.(i))
      +. (h01 *. t.y1.(i)) +. (h11 *. h *. t.f1.(i)))

let eval_component t i time =
  let h = t.t1 -. t.t0 in
  let s = clamp_s t time in
  let h00, h10, h01, h11 = basis s in
  (h00 *. t.y0.(i)) +. (h10 *. h *. t.f0.(i))
  +. (h01 *. t.y1.(i)) +. (h11 *. h *. t.f1.(i))
