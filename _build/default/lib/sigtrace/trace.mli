(** Scalar signal traces: timestamped samples of one model variable.

    Samples must be appended in non-decreasing time order. Lookup between
    samples is linear interpolation. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val record : t -> float -> float -> unit
(** [record tr time value]. Raises [Invalid_argument] when time goes
    backwards. *)

val length : t -> int
val is_empty : t -> bool

val start_time : t -> float option
val end_time : t -> float option

val samples : t -> (float * float) list
(** Chronological (time, value) pairs. *)

val value_at : t -> float -> float option
(** Linear interpolation; [None] outside the recorded span or on an
    empty trace. *)

val last_value : t -> float option

val map : (float -> float) -> t -> t
(** Pointwise transform of the values. *)

val resample : t -> dt:float -> t
(** Uniform grid over the trace's span by interpolation. *)

val minimum : t -> float option
val maximum : t -> float option
val mean : t -> float option
(** Time-weighted mean over the span (trapezoidal). *)

val to_csv : t -> string
(** Two-column [time,value] CSV with a header line. *)

val of_csv : ?name:string -> string -> t
(** Inverse of {!to_csv}: parses two-column [time,value] CSV, skipping
    the header line and blank lines. Raises [Invalid_argument] on a
    malformed line or when times go backwards. *)
