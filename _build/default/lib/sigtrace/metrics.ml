let paired_errors ~reference trace =
  List.filter_map
    (fun (time, v) ->
       match Trace.value_at reference time with
       | Some r -> Some (v -. r)
       | None -> None)
    (Trace.samples trace)

let rmse ~reference trace =
  match paired_errors ~reference trace with
  | [] -> None
  | errs ->
    let n = float_of_int (List.length errs) in
    let ss = List.fold_left (fun acc e -> acc +. (e *. e)) 0. errs in
    Some (sqrt (ss /. n))

let max_abs_error ~reference trace =
  match paired_errors ~reference trace with
  | [] -> None
  | errs -> Some (List.fold_left (fun acc e -> Float.max acc (Float.abs e)) 0. errs)

let overshoot ~setpoint trace =
  if Trace.is_empty trace || setpoint = 0. then None
  else begin
    let sign = if setpoint >= 0. then 1. else -1. in
    let peak =
      List.fold_left
        (fun acc (_, v) -> Float.max acc ((v -. setpoint) *. sign))
        0. (Trace.samples trace)
    in
    Some (Float.max 0. peak /. Float.abs setpoint)
  end

let settling_time ~setpoint ~band trace =
  if Trace.is_empty trace then None
  else begin
    let tolerance = Float.abs setpoint *. band in
    let outside (_, v) = Float.abs (v -. setpoint) > tolerance in
    (* Last out-of-band sample decides; settled from the next sample on. *)
    let rec scan last_bad = function
      | [] -> last_bad
      | ((time, _) as s) :: rest ->
        scan (if outside s then Some time else last_bad) rest
    in
    match scan None (Trace.samples trace) with
    | None -> Trace.start_time trace
    | Some last_bad ->
      let next_ok =
        List.find_opt (fun (time, _) -> time > last_bad) (Trace.samples trace)
      in
      (match next_ok with
       | Some (time, _) -> Some time
       | None -> None (* never settles within the trace *))
  end

let steady_state_error ~setpoint ?window trace =
  match (Trace.start_time trace, Trace.end_time trace) with
  | Some t0, Some t1 ->
    let window =
      match window with Some w -> w | None -> Float.max 1e-9 ((t1 -. t0) *. 0.1)
    in
    let cutoff = t1 -. window in
    let tail = List.filter (fun (time, _) -> time >= cutoff) (Trace.samples trace) in
    (match tail with
     | [] -> None
     | _ ->
       let n = float_of_int (List.length tail) in
       let sum =
         List.fold_left (fun acc (_, v) -> acc +. Float.abs (v -. setpoint)) 0. tail
       in
       Some (sum /. n))
  | _, _ -> None

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarize = function
  | [] -> None
  | samples ->
    let sorted = List.sort Float.compare samples in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let percentile p =
      let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
      arr.(Int.max 0 (Int.min (n - 1) (rank - 1)))
    in
    let sum = Array.fold_left ( +. ) 0. arr in
    Some
      { count = n; mean = sum /. float_of_int n;
        min = arr.(0); max = arr.(n - 1);
        p50 = percentile 0.5; p95 = percentile 0.95; p99 = percentile 0.99 }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.6g min=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g"
    s.count s.mean s.min s.p50 s.p95 s.p99 s.max
