type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
}

let create ?(name = "signal") () =
  { name; times = [||]; values = [||]; size = 0 }

let name t = t.name

let record t time value =
  if t.size > 0 && time < t.times.(t.size - 1) then
    invalid_arg
      (Printf.sprintf "Sigtrace.Trace.record(%s): time %g before last sample %g"
         t.name time t.times.(t.size - 1));
  if t.size >= Array.length t.times then begin
    let cap = Int.max 16 (2 * Array.length t.times) in
    let times' = Array.make cap 0. in
    let values' = Array.make cap 0. in
    Array.blit t.times 0 times' 0 t.size;
    Array.blit t.values 0 values' 0 t.size;
    t.times <- times';
    t.values <- values'
  end;
  t.times.(t.size) <- time;
  t.values.(t.size) <- value;
  t.size <- t.size + 1

let length t = t.size
let is_empty t = t.size = 0

let start_time t = if t.size = 0 then None else Some t.times.(0)
let end_time t = if t.size = 0 then None else Some t.times.(t.size - 1)

let samples t =
  List.init t.size (fun i -> (t.times.(i), t.values.(i)))

(* Binary search for the greatest index with times.(i) <= time. *)
let index_before t time =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if t.times.(mid) <= time then search mid hi else search lo (mid - 1)
  in
  search 0 (t.size - 1)

let value_at t time =
  if t.size = 0 then None
  else if time < t.times.(0) || time > t.times.(t.size - 1) then None
  else begin
    let i = index_before t time in
    if i = t.size - 1 || Float.equal t.times.(i) time then Some t.values.(i)
    else begin
      let t0 = t.times.(i) and t1 = t.times.(i + 1) in
      let v0 = t.values.(i) and v1 = t.values.(i + 1) in
      if t1 = t0 then Some v1
      else
        let s = (time -. t0) /. (t1 -. t0) in
        Some (((1. -. s) *. v0) +. (s *. v1))
    end
  end

let last_value t = if t.size = 0 then None else Some t.values.(t.size - 1)

let map f t =
  let out = create ~name:t.name () in
  for i = 0 to t.size - 1 do
    record out t.times.(i) (f t.values.(i))
  done;
  out

let resample t ~dt =
  if dt <= 0. then invalid_arg "Sigtrace.Trace.resample: dt must be positive";
  let out = create ~name:t.name () in
  (match (start_time t, end_time t) with
   | Some t0, Some t1 ->
     let rec step time =
       if time <= t1 +. 1e-12 then begin
         (match value_at t (Float.min time t1) with
          | Some v -> record out time v
          | None -> ());
         step (time +. dt)
       end
     in
     step t0
   | _, _ -> ());
  out

let fold_values f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.values.(i)
  done;
  !acc

let minimum t =
  if t.size = 0 then None else Some (fold_values Float.min infinity t)

let maximum t =
  if t.size = 0 then None else Some (fold_values Float.max neg_infinity t)

let mean t =
  if t.size = 0 then None
  else if t.size = 1 then Some t.values.(0)
  else begin
    let area = ref 0. in
    for i = 0 to t.size - 2 do
      let dt = t.times.(i + 1) -. t.times.(i) in
      area := !area +. (dt *. ((t.values.(i) +. t.values.(i + 1)) /. 2.))
    done;
    let span = t.times.(t.size - 1) -. t.times.(0) in
    if span <= 0. then Some t.values.(0) else Some (!area /. span)
  end

let of_csv ?name csv =
  let t = create ?name () in
  let parse_line lineno line =
    match String.index_opt line ',' with
    | None ->
      invalid_arg
        (Printf.sprintf "Sigtrace.Trace.of_csv: line %d: missing comma" lineno)
    | Some i ->
      let field s =
        match float_of_string_opt (String.trim s) with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Sigtrace.Trace.of_csv: line %d: bad number %S"
               lineno s)
      in
      let time = field (String.sub line 0 i) in
      let value = field (String.sub line (i + 1) (String.length line - i - 1)) in
      record t time value
  in
  List.iteri
    (fun k line ->
       let line = String.trim line in
       if line <> "" && not (k = 0 && String.equal line "time,value") then
         parse_line (k + 1) line)
    (String.split_on_char '\n' csv);
  t

let to_csv t =
  let buf = Buffer.create (16 * (t.size + 1)) in
  Buffer.add_string buf "time,value\n";
  for i = 0 to t.size - 1 do
    Buffer.add_string buf (Printf.sprintf "%.9g,%.9g\n" t.times.(i) t.values.(i))
  done;
  Buffer.contents buf
