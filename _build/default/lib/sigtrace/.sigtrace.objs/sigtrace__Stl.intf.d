lib/sigtrace/stl.mli: Format Trace
