lib/sigtrace/metrics.ml: Array Float Format Int List Trace
