lib/sigtrace/metrics.mli: Format Trace
