lib/sigtrace/trace.mli:
