lib/sigtrace/stl.ml: Float Format List Printf Trace
