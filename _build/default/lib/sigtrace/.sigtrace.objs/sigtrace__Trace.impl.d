lib/sigtrace/trace.ml: Array Buffer Float Int List Printf String
