(** Signal Temporal Logic (bounded, quantitative) over recorded traces.

    Verifies control-level requirements offline: "after the setpoint
    step, the speed settles within 5 s and never overshoots by more than
    10%". Quantitative (robustness) semantics: a positive value means the
    property holds with that margin, negative means violated by that
    much. Formulas are evaluated on the trace's own sample grid with
    linear interpolation at window endpoints. *)

type formula =
  | Pred of string * (float -> float)
      (** named atomic predicate: robustness of the signal value —
          [fun v -> 1. -. abs_float v] means "|x| <= 1" with margin *)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Always of float * float * formula
      (** [Always (a, b, f)]: f holds at every instant of [t+a, t+b] *)
  | Eventually of float * float * formula
      (** f holds at some instant of [t+a, t+b] *)

val ge : string -> float -> formula
(** [ge name bound]: signal >= bound. *)

val le : string -> float -> formula
(** signal <= bound. *)

val within : string -> center:float -> tolerance:float -> formula
(** |signal - center| <= tolerance. *)

val robustness : formula -> Trace.t -> float -> float
(** Robustness at the given absolute time. Windows that extend beyond the
    trace are clipped to recorded data; an empty window yields
    [neg_infinity] (no evidence = violated). *)

val holds : formula -> Trace.t -> float -> bool
(** [robustness >= 0]. *)

val check : formula -> Trace.t -> bool * float
(** Evaluate at the trace's start time: (verdict, robustness). Empty
    traces are violations. *)

val first_violation : formula -> Trace.t -> float option
(** Earliest sample time at which the formula is violated, if any. *)

val pp_formula : Format.formatter -> formula -> unit
