type formula =
  | Pred of string * (float -> float)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Always of float * float * formula
  | Eventually of float * float * formula

let ge name bound = Pred (Printf.sprintf "%s >= %g" name bound, fun v -> v -. bound)
let le name bound = Pred (Printf.sprintf "%s <= %g" name bound, fun v -> bound -. v)

let within name ~center ~tolerance =
  Pred
    (Printf.sprintf "|%s - %g| <= %g" name center tolerance,
     fun v -> tolerance -. Float.abs (v -. center))

(* Sample instants of the trace that fall inside [lo, hi], with the
   (interpolated) endpoints added so short windows still see data. *)
let window_times trace lo hi =
  match (Trace.start_time trace, Trace.end_time trace) with
  | Some t0, Some t1 ->
    let lo = Float.max lo t0 in
    let hi = Float.min hi t1 in
    if hi < lo then []
    else begin
      let inner =
        List.filter_map
          (fun (t, _) -> if t > lo && t < hi then Some t else None)
          (Trace.samples trace)
      in
      let times = (lo :: inner) @ (if hi > lo then [ hi ] else []) in
      List.sort_uniq Float.compare times
    end
  | _, _ -> []

let rec robustness f trace time =
  match f with
  | Pred (_, rho) ->
    (match Trace.value_at trace time with
     | Some v -> rho v
     | None -> neg_infinity)
  | Not g -> -.robustness g trace time
  | And (g, h) -> Float.min (robustness g trace time) (robustness h trace time)
  | Or (g, h) -> Float.max (robustness g trace time) (robustness h trace time)
  | Implies (g, h) ->
    Float.max (-.robustness g trace time) (robustness h trace time)
  | Always (a, b, g) ->
    (match window_times trace (time +. a) (time +. b) with
     | [] -> neg_infinity
     | times ->
       List.fold_left
         (fun acc t -> Float.min acc (robustness g trace t))
         infinity times)
  | Eventually (a, b, g) ->
    (match window_times trace (time +. a) (time +. b) with
     | [] -> neg_infinity
     | times ->
       List.fold_left
         (fun acc t -> Float.max acc (robustness g trace t))
         neg_infinity times)

let holds f trace time = robustness f trace time >= 0.

let check f trace =
  match Trace.start_time trace with
  | Some t0 ->
    let r = robustness f trace t0 in
    (r >= 0., r)
  | None -> (false, neg_infinity)

let first_violation f trace =
  List.find_map
    (fun (t, _) -> if robustness f trace t < 0. then Some t else None)
    (Trace.samples trace)

let rec pp_formula ppf = function
  | Pred (name, _) -> Format.pp_print_string ppf name
  | Not g -> Format.fprintf ppf "not (%a)" pp_formula g
  | And (g, h) -> Format.fprintf ppf "(%a and %a)" pp_formula g pp_formula h
  | Or (g, h) -> Format.fprintf ppf "(%a or %a)" pp_formula g pp_formula h
  | Implies (g, h) -> Format.fprintf ppf "(%a -> %a)" pp_formula g pp_formula h
  | Always (a, b, g) ->
    Format.fprintf ppf "always[%g,%g] (%a)" a b pp_formula g
  | Eventually (a, b, g) ->
    Format.fprintf ppf "eventually[%g,%g] (%a)" a b pp_formula g
