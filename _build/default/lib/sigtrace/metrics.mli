(** Quantitative comparison of traces and latency samples — the numbers
    EXPERIMENTS.md reports. *)

val rmse : reference:Trace.t -> Trace.t -> float option
(** Root-mean-square error of the trace against the reference, sampled at
    the trace's own timestamps that fall inside the reference's span.
    [None] when there is no overlap. *)

val max_abs_error : reference:Trace.t -> Trace.t -> float option

val overshoot : setpoint:float -> Trace.t -> float option
(** Peak excursion beyond the setpoint, as a fraction of the setpoint
    magnitude (0 when never exceeded). [None] on empty traces or a zero
    setpoint. *)

val settling_time : setpoint:float -> band:float -> Trace.t -> float option
(** First time after which the signal stays within [band] (fractional) of
    the setpoint until the end of the trace. *)

val steady_state_error : setpoint:float -> ?window:float -> Trace.t -> float option
(** Mean |value - setpoint| over the trailing [window] (default: last 10%
    of the span). *)

(** Summary statistics of a latency (or any scalar) sample set. *)
type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary option
(** [None] on the empty list. Percentiles by nearest-rank. *)

val pp_summary : Format.formatter -> summary -> unit
