lib/shard/engine.ml: Array Condition Des Domain Dsl Float Fun Hybrid List Mutex Obs Plan Queue Spsc Statechart String
