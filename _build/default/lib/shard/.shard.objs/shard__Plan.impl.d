lib/shard/plan.ml: Ast Digest Dsl Float Format Fun Hashtbl Int List Obs Option Pretty Printf Rt String Typecheck
