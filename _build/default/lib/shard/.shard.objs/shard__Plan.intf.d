lib/shard/plan.mli: Dsl Format Obs Rt Typecheck
