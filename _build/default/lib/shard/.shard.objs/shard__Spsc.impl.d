lib/shard/spsc.ml: Array Atomic
