lib/shard/engine.mli: Dsl Hybrid Obs Plan Rt
