lib/shard/spsc.mli:
