(* Bounded lock-free single-producer single-consumer ring.

   The producer owns [tail], the consumer owns [head]; each side reads
   the other's index through a sequentially-consistent atomic, which in
   the OCaml memory model makes the producer's plain write to a slot
   happen-before the consumer's read of that slot (the consumer only
   touches index [i] after observing [tail > i]). No CAS, no locks, no
   allocation on push/pop beyond the [Some] cell.

   Capacity is rounded up to a power of two so the index wrap is a
   mask. The ring never grows: [push] reports failure when full and the
   caller decides (the shard coordinator spills to a producer-local
   overflow queue, which is safe because the consumer only drains at
   epoch barriers while the producer is parked). Slots are cleared on
   pop so consumed payloads are collectable. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next index to pop; owned by the consumer *)
  tail : int Atomic.t;  (* next index to push; owned by the producer *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Shard.Spsc.create: capacity must be >= 1";
  let cap = ref 1 in
  while !cap < capacity do cap := !cap * 2 done;
  { buf = Array.make !cap None;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0 }

let capacity t = t.mask + 1

let length t = Atomic.get t.tail - Atomic.get t.head

let is_empty t = length t <= 0

let push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- Some x;
    Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    x
  end
