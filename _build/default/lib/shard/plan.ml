(* Runtime partition plans: which system instance runs on which domain.

   The unit of placement is the runtime co-location group — the closure
   of instances that MUST share an engine for the sharded run to stay
   bit-identical to the single-domain one:

   - flow edges merge (DPort propagation is a synchronous call);
   - guard emissions merge (streamer->capsule delivery rides the
     capsule mailbox, which has no cross-shard transport);
   - capsule->streamer SPort links merge unless the signal channel's
     latency model guarantees a strictly positive lower bound — that
     bound is the conservative lookahead that lets a signal cross a
     domain boundary without reordering anything;
   - all capsule instances merge (they are parts of one root capsule on
     one runtime).

   A plan either distributes those groups round-robin over N shards
   ([compute]) or follows a `umh-partition` v1 JSON file emitted by
   `umh analyze --partition-out` ([of_json]), after checking that the
   file matches the model (content hash) and does not split any forced
   group — the UMH055 lint. *)

open Dsl

type t = {
  count : int;
  capsule_shard : int;
  assignment : (string * int) list;  (* instance -> shard, decl order *)
  groups : string list list;         (* runtime co-location groups *)
  remote_roles : (string * int) list;
  lookahead : float;                 (* infinity when nothing crosses *)
}

let lint_code = "UMH055"

let shard_of t name =
  match List.assoc_opt name t.assignment with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Shard.Plan.shard_of: unknown instance %S" name)

let model_hash checked =
  Digest.to_hex
    (Digest.string (Pretty.print_model checked.Typecheck.model))

(* ---- the system graph, shared by both constructors ---- *)

type sys_view = {
  instances : (string * [ `Streamer | `Relay | `Capsule ]) list;
  flows : (string * string) list;          (* src inst -> dst inst *)
  links : (string * string * string) list; (* streamer, sport, capsule *)
  emitting : (string * string) list;       (* (role, sport) with guards *)
}

let view_of checked =
  let model = checked.Typecheck.model in
  match model.Ast.m_system with
  | None -> Error [ "model has no system block — nothing to shard" ]
  | Some sys ->
    let instances =
      List.map
        (function
          | Ast.Istreamer { iname; _ } -> (iname, `Streamer)
          | Ast.Irelay { iname; _ } -> (iname, `Relay)
          | Ast.Icapsule { iname; _ } -> (iname, `Capsule))
        sys.Ast.sys_instances
    in
    let flows, links =
      List.fold_left
        (fun (flows, links) -> function
          | Ast.Cflow { cf_src; cf_dst; _ } ->
            ((fst cf_src, fst cf_dst) :: flows, links)
          | Ast.Clink { cl_streamer = si, sp; cl_capsule = ci, _; _ } ->
            (flows, (si, sp, ci) :: links))
        ([], []) sys.Ast.sys_connections
    in
    let class_of iname =
      List.find_map
        (function
          | Ast.Istreamer { iname = n; iclass; _ } when String.equal n iname ->
            List.find_opt
              (fun (s : Ast.streamer_decl) -> String.equal s.Ast.s_name iclass)
              model.Ast.m_streamers
          | _ -> None)
        sys.Ast.sys_instances
    in
    let emitting =
      List.filter_map
        (fun (si, sp, _) ->
           match class_of si with
           | Some decl
             when List.exists
                    (fun (g : Ast.guard_decl) -> String.equal g.Ast.g_sport sp)
                    decl.Ast.s_guards ->
             Some (si, sp)
           | _ -> None)
        links
    in
    Ok { instances; flows = List.rev flows; links = List.rev links; emitting }

(* Union-find over instance names, path-halving, union by order of
   first declaration so group representatives are deterministic. *)
let closure_groups view ~latency_floor =
  let parent = Hashtbl.create 32 in
  let find n =
    let rec go n =
      match Hashtbl.find_opt parent n with
      | None | Some "" -> n
      | Some p ->
        let r = go p in
        Hashtbl.replace parent n r;
        r
    in
    go n
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent rb ra
  in
  List.iter (fun (n, _) -> if not (Hashtbl.mem parent n) then Hashtbl.replace parent n "") view.instances;
  (* capsules are parts of one root: all together *)
  (match List.filter_map (fun (n, k) -> if k = `Capsule then Some n else None) view.instances with
   | [] -> ()
   | first :: rest -> List.iter (union first) rest);
  List.iter (fun (a, b) -> union a b) view.flows;
  List.iter
    (fun (si, sp, ci) ->
       if List.exists (fun (r, p) -> String.equal r si && String.equal p sp) view.emitting
       then union si ci           (* guard emissions have no lookahead *)
       else if latency_floor <= 0. then union si ci)
    view.links;
  (* groups in order of first member declaration *)
  let order = List.mapi (fun i (n, _) -> (n, i)) view.instances in
  let by_rep = Hashtbl.create 16 in
  List.iter
    (fun (n, _) ->
       let r = find n in
       Hashtbl.replace by_rep r (n :: (Option.value ~default:[] (Hashtbl.find_opt by_rep r))))
    (List.rev view.instances);
  let groups =
    Hashtbl.fold (fun _ members acc -> members :: acc) by_rep []
  in
  let first_idx g =
    List.fold_left
      (fun acc n -> Int.min acc (Option.value ~default:max_int (List.assoc_opt n order)))
      max_int g
  in
  List.sort (fun a b -> compare (first_idx a) (first_idx b)) groups

let finish view groups ~count ~latency_floor ~group_shard =
  let assignment =
    List.concat_map
      (fun (i, g) ->
         (* one decision per group: [group_shard] may carry round-robin
            state, so call it exactly once *)
         let s = group_shard i g in
         List.map (fun n -> (n, s)) g)
      (List.mapi (fun i g -> (i, g)) groups)
  in
  let kind_of n = List.assoc_opt n view.instances in
  let capsule_shard =
    match
      List.find_opt (fun (n, _) -> kind_of n = Some `Capsule) assignment
    with
    | Some (_, s) -> s
    | None -> 0
  in
  let remote_roles =
    List.filter_map
      (fun (si, _, _) ->
         match List.assoc_opt si assignment with
         | Some s when s <> capsule_shard -> Some (si, s)
         | _ -> None)
      view.links
  in
  let remote_roles = List.sort_uniq compare remote_roles in
  let lookahead = if remote_roles = [] then infinity else latency_floor in
  { count; capsule_shard; assignment; groups; remote_roles; lookahead }

let latency_floor_of signal_latency =
  match signal_latency with
  | None -> 0.  (* the engine default is Immediate *)
  | Some m -> Rt.Channel.min_latency m

let compute ?signal_latency ~shards checked =
  if shards < 1 then Error [ "--shards must be >= 1" ]
  else
    match view_of checked with
    | Error e -> Error e
    | Ok view ->
      let latency_floor = latency_floor_of signal_latency in
      let groups = closure_groups view ~latency_floor in
      let has_capsule g =
        List.exists (fun n -> List.assoc_opt n view.instances = Some `Capsule) g
      in
      (* the capsule group is pinned to shard 0; the rest round-robin
         over all shards in declaration order *)
      let non_capsule = ref (-1) in
      let group_shard _i g =
        if has_capsule g then 0
        else begin
          incr non_capsule;
          !non_capsule mod shards
        end
      in
      Ok (finish view groups ~count:shards ~latency_floor ~group_shard)

(* ---- plan files (`umh-partition` v1, written by umh analyze) ---- *)

let str_member name j = Option.bind (Obs.Json.member name j) Obs.Json.string_value

let int_member name j =
  match Obs.Json.member name j with
  | Some (Obs.Json.Int i) -> Some i
  | Some (Obs.Json.Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let of_json ?signal_latency json checked =
  let err fmt = Printf.ksprintf (fun s -> Error [ s ]) fmt in
  match view_of checked with
  | Error e -> Error e
  | Ok view ->
    if str_member "schema" json <> Some "umh-partition" then
      err "not a umh-partition file (schema mismatch)"
    else if int_member "version" json <> Some 1 then
      err "unsupported umh-partition version (want 1)"
    else begin
      match str_member "model_hash" json with
      | None ->
        err
          "plan has no model_hash — regenerate it with `umh analyze \
           --partition-out` on the current model"
      | Some h when not (String.equal h (model_hash checked)) ->
        err
          "plan was computed for a different model (model_hash mismatch) \
           — regenerate it with `umh analyze --partition-out`"
      | Some _ ->
        let shards_json =
          match Obs.Json.member "shards" json with
          | Some l -> Obs.Json.to_list l
          | None -> []
        in
        (* instance -> plan shard id *)
        let placement = Hashtbl.create 32 in
        List.iter
          (fun sj ->
             let id = Option.value ~default:(-1) (int_member "id" sj) in
             match Obs.Json.member "members" sj with
             | None -> ()
             | Some ms ->
               List.iter
                 (fun mj ->
                    match str_member "name" mj with
                    | Some n -> Hashtbl.replace placement n id
                    | None -> ())
                 (Obs.Json.to_list ms))
          shards_json;
        let errors = ref [] in
        let add_err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
        (* every analyzable instance must be placed *)
        List.iter
          (fun (n, k) ->
             if k <> `Relay && not (Hashtbl.mem placement n) then
               add_err "instance %S is not placed by the plan" n)
          view.instances;
        (* the analysis' forced groups (SCCs) must not be split *)
        (match Obs.Json.member "forced_groups" json with
         | None -> ()
         | Some fg ->
           List.iter
             (fun gj ->
                let names =
                  List.filter_map (fun mj -> str_member "name" mj)
                    (Obs.Json.to_list gj)
                in
                let shards =
                  List.sort_uniq compare
                    (List.filter_map (Hashtbl.find_opt placement) names)
                in
                if List.length shards > 1 then
                  add_err
                    "forced group {%s} is a feedback SCC but the plan \
                     splits it across shards %s — its phases would \
                     interleave nondeterministically"
                    (String.concat ", " names)
                    (String.concat ", " (List.map string_of_int shards)))
             (Obs.Json.to_list fg));
        (* the runtime closure must not be split either *)
        let latency_floor = latency_floor_of signal_latency in
        let groups = closure_groups view ~latency_floor in
        let group_plan_shard g =
          List.sort_uniq compare (List.filter_map (Hashtbl.find_opt placement) g)
        in
        List.iter
          (fun g ->
             match group_plan_shard g with
             | [] | [ _ ] -> ()
             | shards ->
               add_err
                 "co-location group {%s} is split across shards %s — these \
                  instances share flows, emissions or a zero-lookahead link \
                  and must run on one domain"
                 (String.concat ", " g)
                 (String.concat ", " (List.map string_of_int shards)))
          groups;
        if !errors <> [] then Error (List.rev !errors)
        else begin
          (* map plan shard ids -> domains 0..K-1, capsule shard first *)
          let used =
            List.sort_uniq compare
              (List.concat_map group_plan_shard groups)
          in
          let capsule_plan =
            List.find_map
              (fun (n, k) ->
                 if k = `Capsule then Hashtbl.find_opt placement n else None)
              view.instances
          in
          let ordered =
            match capsule_plan with
            | None -> used
            | Some c -> c :: List.filter (fun s -> s <> c) used
          in
          let domain_of_plan = List.mapi (fun i s -> (s, i)) ordered in
          let count = Int.max 1 (List.length ordered) in
          let group_shard _i g =
            match group_plan_shard g with
            | [ s ] -> Option.value ~default:0 (List.assoc_opt s domain_of_plan)
            | _ -> 0  (* all-relay group: ride with the capsule shard *)
          in
          Ok (finish view groups ~count ~latency_floor ~group_shard)
        end
    end

let of_file ?signal_latency path checked =
  match
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error [ Printf.sprintf "--shards-from: %s" msg ]
  | text ->
    (match Obs.Json.of_string text with
     | exception _ -> Error [ Printf.sprintf "--shards-from: %s is not valid JSON" path ]
     | json -> of_json ?signal_latency json checked)

let pp ppf t =
  Format.fprintf ppf "@[<v>%d shard(s), lookahead %s@," t.count
    (if t.lookahead = infinity then "unbounded (no cross-shard links)"
     else Printf.sprintf "%gs" t.lookahead);
  List.iteri
    (fun i g ->
       Format.fprintf ppf "  group %d -> shard %d: {%s}@," i
        (match g with n :: _ -> (match List.assoc_opt n t.assignment with Some s -> s | None -> 0) | [] -> 0)
        (String.concat ", " g))
    t.groups
