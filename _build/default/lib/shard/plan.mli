(** Runtime partition plans for the sharded engine.

    The unit of placement is the {e runtime co-location group}: the
    closure of system instances connected by flows, guard emissions, or
    SPort links whose latency model has no strictly positive lower
    bound — everything that must share one engine for a sharded run to
    stay bit-identical to the single-domain one. Capsule instances
    always co-locate (they are parts of one root capsule).

    {!compute} distributes groups round-robin over N shards;
    {!of_file}/{!of_json} follow a [umh-partition] v1 file written by
    [umh analyze --partition-out], rejecting plans whose content hash
    does not match the model or that split a forced group — both
    reported under the {!lint_code} (UMH055) diagnostic. *)

open Dsl

type t = {
  count : int;                       (** number of shards (domains) *)
  capsule_shard : int;               (** domain hosting the root capsule *)
  assignment : (string * int) list;  (** instance -> shard, declaration order *)
  groups : string list list;         (** runtime co-location groups *)
  remote_roles : (string * int) list;
    (** linked streamer roles living off the capsule shard *)
  lookahead : float;
    (** minimum cross-shard signal latency; [infinity] when no link
        crosses a shard boundary *)
}

val lint_code : string
(** ["UMH055"] — the shard-plan validation diagnostic. *)

val shard_of : t -> string -> int
(** Raises [Invalid_argument] for instances the plan does not place. *)

val model_hash : Typecheck.checked -> string
(** Hex digest of the pretty-printed model — the binding between a plan
    file and the model it was computed for. *)

val compute :
  ?signal_latency:Rt.Channel.latency_model ->
  shards:int -> Typecheck.checked -> (t, string list) result

val of_json :
  ?signal_latency:Rt.Channel.latency_model ->
  Obs.Json.t -> Typecheck.checked -> (t, string list) result

val of_file :
  ?signal_latency:Rt.Channel.latency_model ->
  string -> Typecheck.checked -> (t, string list) result

val pp : Format.formatter -> t -> unit
