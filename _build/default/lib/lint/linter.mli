(** The lint driver: parse + typecheck a model, map front-end messages
    onto stable codes (UMH001-UMH003), run every registered semantic rule
    (see {!Rules.semantic}), then filter/promote per the command-line
    options and render as text or JSON. *)

type options = {
  select : string list;  (** keep only these codes (empty = all) *)
  ignore : string list;  (** drop these codes *)
  werror : bool;         (** promote surviving warnings to errors *)
}

val default_options : options

val unknown_codes : options -> string list
(** Codes mentioned in [select]/[ignore] that no rule registers —
    a usage error ([umh lint] exits 2). *)

type report = {
  file : string;
  diagnostics : Diagnostic.t list;  (** sorted by {!Diagnostic.compare} *)
}

val lint_source : ?wcet:Analysis.Wcet.t -> file:string -> string -> report
(** Lint source text. Parse and lexical errors become a single [UMH001]
    diagnostic; well-formedness errors/warnings become [UMH002]/[UMH003];
    semantic rules run only when the model typechecks cleanly. [wcet]
    (default empty) feeds measured budgets into the timing rules
    (UMH042+). *)

val lint_file : ?wcet:Analysis.Wcet.t -> string -> report
(** {!lint_source} on the file's contents. *)

val apply_options : options -> report -> report
(** Select/ignore filtering, then [--werror] promotion. *)

val gates : report list -> bool
(** True when any surviving diagnostic is an error or warning — the
    findings exit code ([umh lint] exits 1). *)

val summary : report list -> int * int * int
(** (errors, warnings, infos) across all reports. *)

val to_text : report list -> string
(** One {!Diagnostic.to_string} line per finding, grouped per file in
    source order, followed by a one-line summary. *)

val to_json : report list -> Obs.Json.t
(** [{ "rules": [registry...], "files": [{file, diagnostics}...],
      "summary": {errors, warnings, infos, gating} }]. *)
