lib/lint/diagnostic.mli: Obs
