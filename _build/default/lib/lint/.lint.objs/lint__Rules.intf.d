lib/lint/rules.mli: Diagnostic Dsl
