lib/lint/rules.mli: Analysis Diagnostic Dsl
