lib/lint/diagnostic.ml: Obs Printf Stdlib String
