lib/lint/rules.ml: Ast Dataflow Diagnostic Dsl Hybrid List Option Printf Statechart String Typecheck
