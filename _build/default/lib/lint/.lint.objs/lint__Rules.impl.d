lib/lint/rules.ml: Analysis Ast Dataflow Diagnostic Dsl Hybrid List Option Printf Rt Statechart String Typecheck
