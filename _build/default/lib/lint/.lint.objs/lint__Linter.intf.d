lib/lint/linter.mli: Diagnostic Obs
