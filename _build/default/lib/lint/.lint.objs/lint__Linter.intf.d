lib/lint/linter.mli: Analysis Diagnostic Obs
