lib/lint/linter.ml: Buffer Diagnostic Dsl Fun List Obs Printf Rules String
