lib/lint/linter.ml: Analysis Buffer Diagnostic Dsl Fun List Obs Printf Rules String
