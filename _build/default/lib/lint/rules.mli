(** The linter's rule registry: every stable diagnostic code with its
    default severity, one-line title and paper reference, plus the
    cross-layer semantic checks that run once a model typechecks.

    Codes are grouped by layer:
    - [UMH00x] front end (syntax, well-formedness rules R1-R8);
    - [UMH01x] elaborated dataflow graph (loops, orphan DPorts);
    - [UMH02x] capsule statecharts ({!Statechart.Analysis} wired to the
      DSL path);
    - [UMH03x] declaration hygiene (unused flow types / protocols,
      unlinked or unheard SPort signals);
    - [UMH04x] deployment and timing: the legacy global checks (rate
      mismatches, default-wcet schedulability via {!Hybrid.Threading})
      plus the exact per-shard response-time analysis ({!Analysis.Rta}):
      deadline misses under every policy (UMH042, error) or under RM
      only (UMH043), utilization above the Liu-Layland bound (UMH044),
      verdicts resting on the default wcet model (UMH045), budgets at or
      above their period (UMH046);
    - [UMH05x] shard safety ({!Analysis.Shard}): feedback cycles forcing
      same-shard placement (UMH050), nondeterministic signal
      interleavings (UMH051), write-write races on strategy parameters
      (UMH052), the suggested partition (UMH053), thin breakdown margins
      (UMH054). *)

type input = {
  file : string;
  checked : Dsl.Typecheck.checked;
  wcet : Analysis.Wcet.t;  (** measured budgets from [--wcet] (may be empty) *)
}

type meta = {
  code : string;
  severity : Diagnostic.severity;  (** default severity (before [--werror]) *)
  title : string;
  paper : string;                  (** paper rule / figure the code enforces *)
}

(** Front-end metas applied by the driver: [UMH001] parse / lexical
    error, [UMH002] well-formedness error, [UMH003] well-formedness
    warning. *)

val meta_syntax : meta
val meta_typecheck : meta
val meta_typecheck_warn : meta

val meta_shard_plan : meta
(** [UMH055]: a partition plan file rejected by
    [umh simulate --shards-from] — stale model hash, or a placement that
    splits a feedback SCC or a runtime co-location group. Applied by the
    simulate driver, not by {!semantic}. *)

val registry : meta list
(** Every stable code the linter can emit, including the front-end codes
    (UMH001-UMH003) applied by the driver rather than by {!semantic}. *)

val find_meta : string -> meta option
val is_known_code : string -> bool

val semantic : (meta * (input -> Diagnostic.t list)) list
(** The cross-layer analyses. They assume [Dsl.Typecheck.is_ok]; the
    driver skips them otherwise (garbage models would only produce
    noise on top of their type errors). *)
