open Dsl

type input = {
  file : string;
  checked : Typecheck.checked;
}

type meta = {
  code : string;
  severity : Diagnostic.severity;
  title : string;
  paper : string;
}

let span_of file (p : Ast.pos) =
  { Diagnostic.file; line = p.Ast.line; col = p.Ast.col }

let diag input (m : meta) ?pos ?rule fmt =
  Diagnostic.makef
    ?span:(Option.map (span_of input.file) pos)
    ?rule ~code:m.code ~severity:m.severity fmt

(* ---------------------------------------------------------------- *)
(* Shared model helpers                                             *)
(* ---------------------------------------------------------------- *)

let find_streamer (model : Ast.model) name =
  List.find_opt
    (fun (s : Ast.streamer_decl) -> String.equal s.Ast.s_name name)
    model.Ast.m_streamers

let find_capsule (model : Ast.model) name =
  List.find_opt
    (fun (c : Ast.capsule_decl) -> String.equal c.Ast.c_name name)
    model.Ast.m_capsules

let is_leaf (s : Ast.streamer_decl) = s.Ast.s_contains = []

let rec capsule_triggers (st : Ast.state_decl) =
  List.map (fun (tr : Ast.transition_decl) -> tr.Ast.tr_trigger)
    st.Ast.st_transitions
  @ List.concat_map capsule_triggers st.Ast.st_children

(* ---------------------------------------------------------------- *)
(* The elaborated dataflow graph, built structurally                 *)
(* ---------------------------------------------------------------- *)

(* Mirror of [Dsl.Elaborate] / [Hybrid.Engine] flattening, without
   instantiating solvers: composite streamers flatten into "role.child"
   leaves, every composite border DPort and capsule relay DPort becomes a
   1-in/1-out junction node named "owner.port". Alongside the graph we
   keep the tick period of each leaf node and a source position for each
   port and each flow, so findings can carry file:line:col spans. *)
type built = {
  graph : Dataflow.Graph.t;
  periods : (string * float) list;                 (* leaf role -> period *)
  port_pos : ((string * string) * Ast.pos) list;   (* (node, port) -> decl *)
  flow_pos : ((string * string) * Ast.pos) list;   (* (dst node, dst port) *)
}

let build_graph input =
  let model = input.checked.Typecheck.model in
  match model.Ast.m_system with
  | None -> None
  | Some sys ->
    let g = Dataflow.Graph.create () in
    let periods = ref [] in
    let port_pos = ref [] in
    let flow_pos = ref [] in
    let ft name = Typecheck.flow_type_of input.checked name in
    let record node port pos = port_pos := ((node, port), pos) :: !port_pos in
    let connect ~pos ~src ~dst =
      match
        ( Dataflow.Graph.find_node g (fst src),
          Dataflow.Graph.find_node g (fst dst) )
      with
      | Some sn, Some dn ->
        (* Structural errors here (type subset, double drivers) were
           already reported by the typechecker as UMH002. *)
        (match Dataflow.Graph.connect g ~src:(sn, snd src) ~dst:(dn, snd dst) with
         | Ok () -> flow_pos := ((fst dst, snd dst), pos) :: !flow_pos
         | Error _ -> ())
      | _, _ -> ()
    in
    let rec add_streamer role (s : Ast.streamer_decl) =
      if is_leaf s then begin
        let dir d (x : Ast.dport_decl) = x.Ast.dp_dir = Some d in
        let ports d =
          List.filter_map
            (fun (x : Ast.dport_decl) ->
               if dir d x then Some (x.Ast.dp_name, ft x.Ast.dp_type) else None)
            s.Ast.s_dports
        in
        ignore
          (Dataflow.Graph.add_node g ~name:role ~inputs:(ports Ast.Din)
             ~outputs:(ports Ast.Dout));
        List.iter
          (fun (x : Ast.dport_decl) -> record role x.Ast.dp_name x.Ast.dp_pos)
          s.Ast.s_dports;
        match s.Ast.s_rate with
        | Some r when r > 0. -> periods := (role, r) :: !periods
        | Some _ | None -> ()
      end
      else begin
        List.iter
          (fun (child, cls) ->
             match find_streamer model cls with
             | Some sub -> add_streamer (role ^ "." ^ child) sub
             | None -> ())
          s.Ast.s_contains;
        List.iter
          (fun (x : Ast.dport_decl) ->
             let name = role ^ "." ^ x.Ast.dp_name in
             ignore (Dataflow.Graph.add_junction g ~name (ft x.Ast.dp_type));
             record name "in" x.Ast.dp_pos;
             record name "out1" x.Ast.dp_pos)
          s.Ast.s_dports;
        let resolve (ep : Ast.internal_endpoint) ~as_source =
          match ep.Ast.ie_child with
          | None ->
            Some (role ^ "." ^ ep.Ast.ie_port, if as_source then "out1" else "in")
          | Some child ->
            (match List.assoc_opt child s.Ast.s_contains with
             | None -> None
             | Some cls ->
               (match find_streamer model cls with
                | None -> None
                | Some sub ->
                  if is_leaf sub then Some (role ^ "." ^ child, ep.Ast.ie_port)
                  else
                    Some
                      ( role ^ "." ^ child ^ "." ^ ep.Ast.ie_port,
                        if as_source then "out1" else "in" )))
        in
        List.iter
          (fun (se, de) ->
             match (resolve se ~as_source:true, resolve de ~as_source:false) with
             | Some src, Some dst -> connect ~pos:s.Ast.s_pos ~src ~dst
             | _, _ -> ())
          s.Ast.s_flows
      end
    in
    let streamer_class iname =
      List.find_map
        (function
          | Ast.Istreamer { iname = n; iclass; _ } when String.equal n iname ->
            find_streamer model iclass
          | Ast.Istreamer _ | Ast.Icapsule _ | Ast.Irelay _ -> None)
        sys.Ast.sys_instances
    in
    let capsule_class iname =
      List.find_map
        (function
          | Ast.Icapsule { iname = n; iclass; _ } when String.equal n iname ->
            find_capsule model iclass
          | Ast.Istreamer _ | Ast.Icapsule _ | Ast.Irelay _ -> None)
        sys.Ast.sys_instances
    in
    let is_relay iname =
      List.exists
        (function
          | Ast.Irelay { iname = n; _ } -> String.equal n iname
          | Ast.Istreamer _ | Ast.Icapsule _ -> false)
        sys.Ast.sys_instances
    in
    List.iter
      (function
        | Ast.Istreamer { iname; iclass; _ } ->
          (match find_streamer model iclass with
           | Some d -> add_streamer iname d
           | None -> ())
        | Ast.Irelay { iname; itype; ifanout; ipos } ->
          if ifanout >= 2 then begin
            ignore (Dataflow.Graph.add_relay g ~name:iname (ft itype) ~fanout:ifanout);
            record iname "in" ipos;
            for k = 1 to ifanout do
              record iname (Printf.sprintf "out%d" k) ipos
            done
          end
        | Ast.Icapsule { iname; iclass; _ } ->
          (match find_capsule model iclass with
           | None -> ()
           | Some c ->
             List.iter
               (fun (x : Ast.dport_decl) ->
                  let name = iname ^ "." ^ x.Ast.dp_name in
                  ignore (Dataflow.Graph.add_junction g ~name (ft x.Ast.dp_type));
                  record name "in" x.Ast.dp_pos;
                  record name "out1" x.Ast.dp_pos)
               c.Ast.c_dports))
      sys.Ast.sys_instances;
    let resolve_sys (inst, port) ~as_source =
      match streamer_class inst with
      | Some s ->
        if is_leaf s then Some (inst, port)
        else Some (inst ^ "." ^ port, if as_source then "out1" else "in")
      | None ->
        if is_relay inst then Some (inst, port)
        else if capsule_class inst <> None then
          Some (inst ^ "." ^ port, if as_source then "out1" else "in")
        else None
    in
    List.iter
      (function
        | Ast.Cflow { cf_src; cf_dst; cf_pos } ->
          (match
             ( resolve_sys cf_src ~as_source:true,
               resolve_sys cf_dst ~as_source:false )
           with
           | Some src, Some dst -> connect ~pos:cf_pos ~src ~dst
           | _, _ -> ())
        | Ast.Clink _ -> ())
      sys.Ast.sys_connections;
    Some
      { graph = g; periods = !periods; port_pos = !port_pos;
        flow_pos = !flow_pos }

(* Computed once per lint run: the driver passes each rule the same
   input value, so a keyed memo of size 1 is enough. *)
let memo_graph : (input * built option) option ref = ref None

let graph_of input =
  match !memo_graph with
  | Some (k, v) when k == input -> v
  | _ ->
    let v = try build_graph input with Invalid_argument _ -> None in
    memo_graph := Some (input, v);
    v

(* ---------------------------------------------------------------- *)
(* UMH01x — dataflow graph                                          *)
(* ---------------------------------------------------------------- *)

let meta_loop =
  { code = "UMH010"; severity = Diagnostic.Error;
    title = "algebraic loop in the dataflow graph";
    paper = "Fig. 3 (flows are directed; propagation needs an order)" }

let check_loop input =
  match graph_of input with
  | None -> []
  | Some b ->
    (match Dataflow.Graph.topo_order b.graph with
     | Ok _ -> []
     | Error names ->
       let pos =
         List.find_map
           (fun ((dst, _), pos) ->
              if List.mem dst names then Some pos else None)
           b.flow_pos
       in
       [ diag input meta_loop ?pos ~rule:"R2"
           "algebraic loop through %s — every dataflow cycle needs a state \
            (integrator) to break the instantaneous dependency"
           (String.concat " -> " names) ])

let meta_orphan_in =
  { code = "UMH011"; severity = Diagnostic.Warning;
    title = "unconnected DPort input";
    paper = "Fig. 2 (DPorts carry flows between streamers)" }

let check_orphan_inputs input =
  match graph_of input with
  | None -> []
  | Some b ->
    List.map
      (fun (node, port) ->
         let pos = List.assoc_opt (node, port) b.port_pos in
         diag input meta_orphan_in ?pos ~rule:"R2"
           "DPort input %s.%s has no driving flow — it reads as a constant 0"
           node port)
      (Dataflow.Graph.unconnected_inputs b.graph)

let meta_orphan_out =
  { code = "UMH012"; severity = Diagnostic.Info;
    title = "unconnected DPort output";
    paper = "Fig. 2 (DPorts carry flows between streamers)" }

let check_orphan_outputs input =
  match graph_of input with
  | None -> []
  | Some b ->
    List.map
      (fun (node, port) ->
         let pos = List.assoc_opt (node, port) b.port_pos in
         diag input meta_orphan_out ?pos ~rule:"R2"
           "DPort output %s.%s is computed every tick but never consumed"
           node port)
      (Dataflow.Graph.unconnected_outputs b.graph)

(* ---------------------------------------------------------------- *)
(* UMH02x — capsule statecharts                                     *)
(* ---------------------------------------------------------------- *)

let rec state_positions (st : Ast.state_decl) =
  (st.Ast.st_name, st.Ast.st_pos)
  :: List.concat_map state_positions st.Ast.st_children

let rec transition_positions (st : Ast.state_decl) =
  List.map
    (fun (tr : Ast.transition_decl) ->
       ((st.Ast.st_name, tr.Ast.tr_trigger), tr.Ast.tr_pos))
    st.Ast.st_transitions
  @ List.concat_map transition_positions st.Ast.st_children

(* Rebuild the declared statechart as a [Statechart.Machine] — the same
   construction [Dsl.Elaborate] performs, minus actions — and analyze it.
   Structurally broken machines were already rejected by the typechecker,
   so construction failures simply skip the analysis. *)
let analyze_capsule (c : Ast.capsule_decl) =
  if c.Ast.c_states = [] || c.Ast.c_initial = None then None
  else
    try
      let m = Statechart.Machine.create c.Ast.c_name in
      let rec add ?parent (st : Ast.state_decl) =
        Statechart.Machine.add_state m ?parent st.Ast.st_name;
        List.iter (add ~parent:st.Ast.st_name) st.Ast.st_children;
        match st.Ast.st_initial with
        | Some i -> Statechart.Machine.set_initial m ~of_:st.Ast.st_name i
        | None -> ()
      in
      List.iter (fun st -> add st) c.Ast.c_states;
      (match c.Ast.c_initial with
       | Some i -> Statechart.Machine.set_initial m i
       | None -> ());
      let rec add_transitions (st : Ast.state_decl) =
        List.iter
          (fun (tr : Ast.transition_decl) ->
             Statechart.Machine.add_transition m ~src:st.Ast.st_name
               ~dst:tr.Ast.tr_target ~trigger:tr.Ast.tr_trigger ())
          st.Ast.st_transitions;
        List.iter add_transitions st.Ast.st_children
      in
      List.iter add_transitions c.Ast.c_states;
      if Statechart.Machine.validate m = [] then
        Some (Statechart.Analysis.analyze m)
      else None
    with Invalid_argument _ -> None

let over_capsules input f =
  List.concat_map
    (fun (c : Ast.capsule_decl) ->
       match analyze_capsule c with
       | None -> []
       | Some report ->
         let spos = List.concat_map state_positions c.Ast.c_states in
         let tpos = List.concat_map transition_positions c.Ast.c_states in
         f c report ~state_pos:(fun s -> List.assoc_opt s spos)
           ~trans_pos:(fun key -> List.assoc_opt key tpos))
    input.checked.Typecheck.model.Ast.m_capsules

let meta_unreachable =
  { code = "UMH020"; severity = Diagnostic.Warning;
    title = "unreachable state";
    paper = "§3 (capsule behaviour is a statechart)" }

let check_unreachable input =
  over_capsules input
    (fun c report ~state_pos ~trans_pos:_ ->
       List.map
         (fun s ->
            diag input meta_unreachable ?pos:(state_pos s)
              "capsule %S: state %S can never be entered from the initial \
               configuration"
              c.Ast.c_name s)
         report.Statechart.Analysis.unreachable)

let meta_dead =
  { code = "UMH021"; severity = Diagnostic.Warning;
    title = "dead transition";
    paper = "§3 (capsule behaviour is a statechart)" }

let check_dead_transitions input =
  over_capsules input
    (fun c report ~state_pos:_ ~trans_pos ->
       List.map
         (fun (s, trigger) ->
            diag input meta_dead ?pos:(trans_pos (s, trigger))
              "capsule %S: transition on %S can never fire — its source \
               state %S is unreachable"
              c.Ast.c_name trigger s)
         report.Statechart.Analysis.dead_transitions)

let meta_nondet =
  { code = "UMH022"; severity = Diagnostic.Warning;
    title = "nondeterministic trigger";
    paper = "§3 (run-to-completion picks the first match)" }

let check_nondeterminism input =
  over_capsules input
    (fun c report ~state_pos ~trans_pos:_ ->
       List.map
         (fun (s, trigger) ->
            diag input meta_nondet ?pos:(state_pos s)
              "capsule %S: state %S has several unguarded transitions on %S \
               — only the first ever fires"
              c.Ast.c_name s trigger)
         report.Statechart.Analysis.nondeterministic)

let meta_sink =
  { code = "UMH023"; severity = Diagnostic.Info;
    title = "sink state";
    paper = "§3 (capsule behaviour is a statechart)" }

let check_sinks input =
  over_capsules input
    (fun c report ~state_pos ~trans_pos:_ ->
       List.map
         (fun s ->
            diag input meta_sink ?pos:(state_pos s)
              "capsule %S: state %S has no outgoing or inherited transitions \
               — once entered the capsule is inert"
              c.Ast.c_name s)
         report.Statechart.Analysis.sink_states)

(* ---------------------------------------------------------------- *)
(* UMH03x — declaration hygiene                                     *)
(* ---------------------------------------------------------------- *)

let meta_unused_ft =
  { code = "UMH030"; severity = Diagnostic.Warning;
    title = "unused flowtype";
    paper = "Table 1 (flow type specializes protocol)" }

let check_unused_flowtypes input =
  let model = input.checked.Typecheck.model in
  let dport_types dports =
    List.filter_map (fun (d : Ast.dport_decl) -> d.Ast.dp_type) dports
  in
  let used =
    List.concat_map
      (fun (s : Ast.streamer_decl) -> dport_types s.Ast.s_dports)
      model.Ast.m_streamers
    @ List.concat_map
        (fun (c : Ast.capsule_decl) -> dport_types c.Ast.c_dports)
        model.Ast.m_capsules
    @ List.concat_map
        (fun (p : Ast.protocol_decl) ->
           List.filter_map
             (fun (s : Ast.signal_decl) -> s.Ast.sig_payload)
             (p.Ast.proto_in @ p.Ast.proto_out))
        model.Ast.m_protocols
    @ (match model.Ast.m_system with
       | None -> []
       | Some sys ->
         List.filter_map
           (function
             | Ast.Irelay { itype; _ } -> itype
             | Ast.Icapsule _ | Ast.Istreamer _ -> None)
           sys.Ast.sys_instances)
  in
  List.filter_map
    (fun (ftd : Ast.flowtype_decl) ->
       if List.mem ftd.Ast.ft_name used then None
       else
         Some
           (diag input meta_unused_ft ~pos:ftd.Ast.ft_pos
              "flowtype %S is declared but no DPort, relay or signal payload \
               uses it"
              ftd.Ast.ft_name))
    model.Ast.m_flowtypes

let meta_unused_proto =
  { code = "UMH031"; severity = Diagnostic.Warning;
    title = "unused protocol";
    paper = "Table 1 (SPorts speak protocols)" }

let check_unused_protocols input =
  let model = input.checked.Typecheck.model in
  let used =
    List.concat_map
      (fun (s : Ast.streamer_decl) ->
         List.map (fun (sp : Ast.sport_decl) -> sp.Ast.sp_proto) s.Ast.s_sports)
      model.Ast.m_streamers
    @ List.concat_map
        (fun (c : Ast.capsule_decl) ->
           List.map (fun (_, proto, _, _) -> proto) c.Ast.c_ports)
        model.Ast.m_capsules
  in
  List.filter_map
    (fun (p : Ast.protocol_decl) ->
       if List.mem p.Ast.proto_name used then None
       else
         Some
           (diag input meta_unused_proto ~pos:p.Ast.proto_pos
              "protocol %S is declared but no SPort or capsule port speaks it"
              p.Ast.proto_name))
    model.Ast.m_protocols

let meta_unlinked_sport =
  { code = "UMH032"; severity = Diagnostic.Warning;
    title = "unlinked SPort";
    paper = "R4 (streamers talk to capsules only via SPort links)" }

let check_unlinked_sports input =
  let model = input.checked.Typecheck.model in
  match model.Ast.m_system with
  | None -> []
  | Some sys ->
    let linked iname sport =
      List.exists
        (function
          | Ast.Clink { cl_streamer = (si, sp); _ } ->
            String.equal si iname && String.equal sp sport
          | Ast.Cflow _ -> false)
        sys.Ast.sys_connections
    in
    List.concat_map
      (function
        | Ast.Istreamer { iname; iclass; _ } ->
          (match find_streamer model iclass with
           | None -> []
           | Some s ->
             List.filter_map
               (fun (sp : Ast.sport_decl) ->
                  if linked iname sp.Ast.sp_name then None
                  else
                    Some
                      (diag input meta_unlinked_sport ~pos:sp.Ast.sp_pos
                         ~rule:"R4"
                         "SPort %s.%s is not linked to any capsule port — \
                          emitted signals are dropped and strategies never \
                          trigger"
                         iname sp.Ast.sp_name))
               s.Ast.s_sports)
        | Ast.Icapsule _ | Ast.Irelay _ -> [])
      sys.Ast.sys_instances

let meta_unheard_signal =
  { code = "UMH033"; severity = Diagnostic.Warning;
    title = "guard signal unhandled by peer";
    paper = "R4 (SPort signals drive the peer statechart)" }

let check_unheard_signals input =
  let model = input.checked.Typecheck.model in
  match model.Ast.m_system with
  | None -> []
  | Some sys ->
    let streamer_class iname =
      List.find_map
        (function
          | Ast.Istreamer { iname = n; iclass; _ } when String.equal n iname ->
            find_streamer model iclass
          | Ast.Istreamer _ | Ast.Icapsule _ | Ast.Irelay _ -> None)
        sys.Ast.sys_instances
    in
    let capsule_class iname =
      List.find_map
        (function
          | Ast.Icapsule { iname = n; iclass; _ } when String.equal n iname ->
            find_capsule model iclass
          | Ast.Istreamer _ | Ast.Icapsule _ | Ast.Irelay _ -> None)
        sys.Ast.sys_instances
    in
    List.concat_map
      (function
        | Ast.Clink { cl_streamer = (si, sp); cl_capsule = (ci, _); _ } ->
          (match (streamer_class si, capsule_class ci) with
           | Some s, Some c ->
             let triggers = List.concat_map capsule_triggers c.Ast.c_states in
             List.filter_map
               (fun (g : Ast.guard_decl) ->
                  if
                    (not (String.equal g.Ast.g_sport sp))
                    || List.mem g.Ast.g_signal triggers
                  then None
                  else
                    Some
                      (diag input meta_unheard_signal ~pos:g.Ast.g_pos
                         ~rule:"R4"
                         "signal %S emitted via %s.%s is never a trigger in \
                          capsule %S — the crossing is detected and then \
                          ignored"
                         g.Ast.g_signal si sp c.Ast.c_name))
               s.Ast.s_guards
           | _, _ -> [])
        | Ast.Cflow _ -> [])
      sys.Ast.sys_connections

(* ---------------------------------------------------------------- *)
(* UMH04x — deployment                                              *)
(* ---------------------------------------------------------------- *)

let meta_rate =
  { code = "UMH040"; severity = Diagnostic.Warning;
    title = "rate mismatch on a flow";
    paper = "§5 (one thread per streamer, declared tick rates)" }

let check_rates input =
  match graph_of input with
  | None -> []
  | Some b ->
    let flows = Dataflow.Graph.flow_list b.graph in
    (* Walk back through relays/junctions to the leaf streamer that
       actually produces the samples arriving at a node. *)
    let rec producer visited node =
      if List.mem node visited then None
      else
        match List.assoc_opt node b.periods with
        | Some p -> Some (node, p)
        | None ->
          (match
             List.find_opt (fun (_, (dn, _)) -> String.equal dn node) flows
           with
           | Some ((sn, _), _) -> producer (node :: visited) sn
           | None -> None)
    in
    List.filter_map
      (fun ((sn, _), (dn, dp)) ->
         match List.assoc_opt dn b.periods with
         | None -> None
         | Some consumer_period ->
           (match producer [ dn ] sn with
            | Some (pn, producer_period)
              when producer_period < consumer_period *. (1. -. 1e-9) ->
              let pos = List.assoc_opt (dn, dp) b.flow_pos in
              Some
                (diag input meta_rate ?pos
                   "fast producer into slow consumer: %s ticks every %gs but \
                    %s reads %s.%s only every %gs — intermediate samples are \
                    overwritten unread"
                   pn producer_period dn dn dp consumer_period)
            | Some _ | None -> None))
      flows

let meta_sched =
  { code = "UMH041"; severity = Diagnostic.Warning;
    title = "thread set may be unschedulable";
    paper = "§5 / E5 (capsules and streamers on different threads)" }

let check_schedulability input =
  match graph_of input with
  | None -> []
  | Some b ->
    if b.periods = [] then []
    else
      let tasks = Hybrid.Threading.tasks_for (List.rev b.periods) in
      let r = Hybrid.Threading.analyze tasks in
      if r.Hybrid.Threading.rm_exact && r.Hybrid.Threading.edf_ok
         && r.Hybrid.Threading.utilization <= 1.0
      then []
      else
        let pos =
          match input.checked.Typecheck.model.Ast.m_system with
          | Some sys -> Some sys.Ast.sys_pos
          | None -> None
        in
        [ diag input meta_sched ?pos
            "deployment of %d streamer threads may be unschedulable under \
             the default wcet model: U=%.2f, RM response-time analysis %s, \
             EDF %s (try `umh sched` with measured wcets)"
            (List.length b.periods) r.Hybrid.Threading.utilization
            (if r.Hybrid.Threading.rm_exact then "passes" else "fails")
            (if r.Hybrid.Threading.edf_ok then "passes" else "fails") ]

(* ---------------------------------------------------------------- *)
(* Registry                                                         *)
(* ---------------------------------------------------------------- *)

let meta_syntax =
  { code = "UMH001"; severity = Diagnostic.Error;
    title = "syntax error"; paper = "textual front end" }

let meta_typecheck =
  { code = "UMH002"; severity = Diagnostic.Error;
    title = "well-formedness violation"; paper = "rules R1-R8, Figs. 2-3" }

let meta_typecheck_warn =
  { code = "UMH003"; severity = Diagnostic.Warning;
    title = "well-formedness warning"; paper = "rules R1-R8, Figs. 2-3" }

let semantic =
  [ (meta_loop, check_loop);
    (meta_orphan_in, check_orphan_inputs);
    (meta_orphan_out, check_orphan_outputs);
    (meta_unreachable, check_unreachable);
    (meta_dead, check_dead_transitions);
    (meta_nondet, check_nondeterminism);
    (meta_sink, check_sinks);
    (meta_unused_ft, check_unused_flowtypes);
    (meta_unused_proto, check_unused_protocols);
    (meta_unlinked_sport, check_unlinked_sports);
    (meta_unheard_signal, check_unheard_signals);
    (meta_rate, check_rates);
    (meta_sched, check_schedulability) ]

let registry =
  meta_syntax :: meta_typecheck :: meta_typecheck_warn
  :: List.map fst semantic

let find_meta code =
  List.find_opt (fun m -> String.equal m.code code) registry

let is_known_code code = find_meta code <> None
