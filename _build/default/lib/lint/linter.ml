type options = {
  select : string list;
  ignore : string list;
  werror : bool;
}

let default_options = { select = []; ignore = []; werror = false }

let unknown_codes o =
  List.filter
    (fun c -> not (Rules.is_known_code c))
    (o.select @ o.ignore)

type report = {
  file : string;
  diagnostics : Diagnostic.t list;
}

(* Typecheck messages embed their paper reference as "(rule R4)"; lift
   it into the structured [rule] field. *)
let rule_ref text =
  let n = String.length text in
  let rec scan i =
    if i + 5 > n then None
    else if String.sub text i 5 = "rule " then begin
      let j = ref (i + 5) in
      while !j < n && (text.[!j] = 'R' || (text.[!j] >= '0' && text.[!j] <= '9')) do
        incr j
      done;
      if !j > i + 6 then Some (String.sub text (i + 5) (!j - i - 5)) else scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

let front_end_diag file (m : Rules.meta) (msg : Dsl.Typecheck.message) =
  Diagnostic.make
    ~span:{ Diagnostic.file; line = msg.Dsl.Typecheck.at.Dsl.Ast.line;
            col = msg.Dsl.Typecheck.at.Dsl.Ast.col }
    ?rule:(rule_ref msg.Dsl.Typecheck.text)
    ~code:m.Rules.code ~severity:m.Rules.severity msg.Dsl.Typecheck.text

let syntax_diag file msg line col =
  Diagnostic.make
    ~span:{ Diagnostic.file; line; col }
    ~code:Rules.meta_syntax.Rules.code
    ~severity:Rules.meta_syntax.Rules.severity msg

let lint_source ?(wcet = Analysis.Wcet.empty) ~file source =
  let diagnostics =
    match Dsl.Parser.parse source with
    | exception Dsl.Parser.Parse_error (msg, line, col) ->
      [ syntax_diag file ("parse error: " ^ msg) line col ]
    | exception Dsl.Lexer.Lex_error (msg, line, col) ->
      [ syntax_diag file ("lexical error: " ^ msg) line col ]
    | ast ->
      let checked = Dsl.Typecheck.check ast in
      let front =
        List.map
          (front_end_diag file Rules.meta_typecheck)
          checked.Dsl.Typecheck.error_messages
        @ List.map
            (front_end_diag file Rules.meta_typecheck_warn)
            checked.Dsl.Typecheck.warning_messages
      in
      if not (Dsl.Typecheck.is_ok checked) then front
      else
        let input = { Rules.file; checked; wcet } in
        front
        @ List.concat_map (fun (_, check) -> check input) Rules.semantic
  in
  { file; diagnostics = List.sort Diagnostic.compare diagnostics }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?wcet path = lint_source ?wcet ~file:path (read_file path)

let apply_options o r =
  let keep d =
    (o.select = [] || List.mem d.Diagnostic.code o.select)
    && not (List.mem d.Diagnostic.code o.ignore)
  in
  let promote = if o.werror then Diagnostic.promote_warning else Fun.id in
  { r with diagnostics = List.map promote (List.filter keep r.diagnostics) }

let gates reports =
  List.exists (fun r -> List.exists Diagnostic.gates r.diagnostics) reports

let summary reports =
  List.fold_left
    (fun acc r ->
       List.fold_left
         (fun (e, w, i) d ->
            match d.Diagnostic.severity with
            | Diagnostic.Error -> (e + 1, w, i)
            | Diagnostic.Warning -> (e, w + 1, i)
            | Diagnostic.Info -> (e, w, i + 1))
         acc r.diagnostics)
    (0, 0, 0) reports

let to_text reports =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
       List.iter
         (fun d ->
            Buffer.add_string buf (Diagnostic.to_string d);
            Buffer.add_char buf '\n')
         r.diagnostics)
    reports;
  let e, w, i = summary reports in
  if e + w + i = 0 then
    Buffer.add_string buf
      (Printf.sprintf "%d file%s clean\n" (List.length reports)
         (if List.length reports = 1 then "" else "s"))
  else
    Buffer.add_string buf
      (Printf.sprintf "%d error%s, %d warning%s, %d info\n" e
         (if e = 1 then "" else "s") w (if w = 1 then "" else "s") i);
  Buffer.contents buf

let to_json reports =
  let rules =
    List.map
      (fun (m : Rules.meta) ->
         Obs.Json.Obj
           [ ("code", Obs.Json.Str m.Rules.code);
             ("severity", Obs.Json.Str (Diagnostic.severity_name m.Rules.severity));
             ("title", Obs.Json.Str m.Rules.title);
             ("paper", Obs.Json.Str m.Rules.paper) ])
      Rules.registry
  in
  let files =
    List.map
      (fun r ->
         Obs.Json.Obj
           [ ("file", Obs.Json.Str r.file);
             ("diagnostics",
              Obs.Json.List (List.map Diagnostic.to_json r.diagnostics)) ])
      reports
  in
  let e, w, i = summary reports in
  Obs.Json.Obj
    [ ("rules", Obs.Json.List rules);
      ("files", Obs.Json.List files);
      ("summary",
       Obs.Json.Obj
         [ ("errors", Obs.Json.Int e);
           ("warnings", Obs.Json.Int w);
           ("infos", Obs.Json.Int i);
           ("gating", Obs.Json.Bool (gates reports)) ]) ]
