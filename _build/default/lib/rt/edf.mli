(** Earliest-deadline-first analysis. *)

val utilization_test : Task.t list -> bool
(** Exact for implicit deadlines (D = T): U <= 1. *)

val demand_bound : Task.t list -> float -> float
(** Processor demand [dbf(t)]: total execution released and due within
    any window of length [t] (synchronous release). *)

val check_points : Task.t list -> horizon:float -> float list
(** Absolute deadlines up to the horizon — where [dbf] can jump. *)

val first_violation : ?horizon:float -> Task.t list -> (float * float) option
(** The earliest check point [t] where [dbf(t) > t], with the demand at
    that point — the window a deadline-miss diagnostic should blame.
    [None] for empty sets, implicit-deadline sets (covered by the
    utilization test) and demand-feasible sets. *)

val schedulable : ?horizon:float -> Task.t list -> bool
(** Processor-demand criterion: [dbf(t) <= t] at every deadline up to the
    horizon (default: min(hyperperiod-ish bound, busy-period bound
    La = sum (T - D) U / (1 - U)); falls back to the utilization test
    when U >= 1 or deadlines are implicit). *)
