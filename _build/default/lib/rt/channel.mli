(** Inter-thread communication channels with a latency model.

    The paper's capsules and streamers run on different threads and talk
    through "the communication mechanism of threads"; real channels have
    transport delay and jitter, which this module models on top of
    {!Des.Mailbox}. *)

type latency_model =
  | Immediate                                  (** zero-latency dispatch *)
  | Constant of float
  | Uniform of float * float                   (** [lo, hi) *)
  | Gaussian of { mu : float; sigma : float }  (** clamped at 0 *)

val model_name : latency_model -> string

val sample : latency_model -> Des.Rng.t -> float
(** One latency draw, always >= 0. *)

type 'a t

val create :
  Des.Engine.t -> ?model:latency_model -> ?drop_probability:float
  -> ?seed:int -> string -> 'a t
(** Default model [Immediate]; [drop_probability] (default 0) makes the
    channel lossy — dropped messages never reach the mailbox; [seed]
    (default 0x5eed) feeds the jitter/loss RNG so runs are
    reproducible. *)

val name : 'a t -> string
val mailbox : 'a t -> 'a Des.Mailbox.t
(** The receiving end; attach a listener or poll it. *)

val send : 'a t -> 'a -> unit
(** Deliver after a freshly sampled latency. *)

val send_stamped : 'a t -> sent:float -> 'a -> unit
(** Replay of a send that happened at the (earlier) instant [sent] on
    another shard: identical statistics and latency sampling to {!send},
    but delivery is anchored at [sent], landing on the bit-identical
    timestamp a local send at that instant would have produced. Raises
    [Invalid_argument] when that timestamp is already past — the
    sharded runtime's lookahead bound makes this unreachable. *)

val min_latency : latency_model -> float
(** Guaranteed lower bound on any latency draw from the model: the
    sharded runtime's lookahead. Zero means a link with this model
    cannot cross a shard boundary. *)

val sent : 'a t -> int

val dropped : 'a t -> int
(** Messages lost to [drop_probability]. *)

val last_latency : 'a t -> float option
val mean_latency : 'a t -> float option
