(** Random periodic workload generation for schedulability experiments.

    UUniFast (Bini & Buttazzo) draws task utilizations uniformly over the
    simplex summing to a target; combined with log-uniform periods it is
    the standard way to generate unbiased task sets for acceptance-ratio
    plots (experiment E5b). *)

val uunifast : Des.Rng.t -> n:int -> total_utilization:float -> float list
(** [n >= 1] utilizations, each > 0, summing to [total_utilization]
    (which must be positive). Deterministic in the RNG state. *)

val random_task_set :
  Des.Rng.t -> n:int -> total_utilization:float
  -> ?period_range:float * float
  -> ?constrained_deadlines:bool
  -> unit -> Task.t list
(** Task set with UUniFast utilizations and log-uniform periods from
    [period_range] (default 0.001 .. 1.0 s). With
    [constrained_deadlines] (default false), deadlines are drawn
    uniformly in [wcet + 0.5 (period - wcet), period]. Task utilizations
    are capped below 1 by construction only when
    [total_utilization <= n]. *)

val acceptance_ratio :
  Des.Rng.t -> n:int -> total_utilization:float -> sets:int
  -> test:(Task.t list -> bool) -> float
(** Fraction of [sets] random task sets accepted by the given
    schedulability test. *)
