let uunifast rng ~n ~total_utilization =
  if n < 1 then invalid_arg "Rt.Workload.uunifast: n must be >= 1";
  if total_utilization <= 0. then
    invalid_arg "Rt.Workload.uunifast: utilization must be positive";
  (* Bini & Buttazzo: sum_{i+1} = sum_i * u^(1/(n-i)). *)
  let rec draw i sum acc =
    if i = n then List.rev (sum :: acc)
    else begin
      let next =
        sum *. (Des.Rng.float rng ** (1. /. float_of_int (n - i)))
      in
      draw (i + 1) next ((sum -. next) :: acc)
    end
  in
  draw 1 total_utilization []

let random_task_set rng ~n ~total_utilization ?(period_range = (0.001, 1.0))
    ?(constrained_deadlines = false) () =
  let lo, hi = period_range in
  if lo <= 0. || hi <= lo then
    invalid_arg "Rt.Workload.random_task_set: bad period range";
  let utilizations = uunifast rng ~n ~total_utilization in
  List.mapi
    (fun i u ->
       (* Log-uniform period; cap per-task utilization just under 1 so
          the Task invariants hold even for overloaded targets. *)
       let period = lo *. ((hi /. lo) ** Des.Rng.float rng) in
       let u = Float.min u 0.999 in
       let wcet = Float.max 1e-9 (u *. period) in
       let deadline =
         if constrained_deadlines then begin
           let slack = period -. wcet in
           wcet +. (slack /. 2.) +. Des.Rng.uniform rng 0. (slack /. 2.)
         end
         else period
       in
       Task.create ~deadline ~period ~wcet (Printf.sprintf "t%d" i))
    utilizations

let acceptance_ratio rng ~n ~total_utilization ~sets ~test =
  if sets <= 0 then invalid_arg "Rt.Workload.acceptance_ratio: sets must be positive";
  let accepted = ref 0 in
  for _ = 1 to sets do
    let tasks = random_task_set rng ~n ~total_utilization () in
    if test tasks then incr accepted
  done;
  float_of_int !accepted /. float_of_int sets
