(** Rate-monotonic fixed-priority analysis. *)

val priorities : Task.t list -> (Task.t * int) list
(** Rate-monotonic priority assignment: 0 is the highest priority
    (shortest period). Deterministic tiebreak by name. *)

val utilization_bound : int -> float
(** Liu & Layland bound [n (2^(1/n) - 1)]; 0 for [n <= 0]. *)

type verdict = Schedulable | Inconclusive | Overloaded

val utilization_test : Task.t list -> verdict
(** [Schedulable] when U <= the LL bound, [Overloaded] when U > 1,
    [Inconclusive] in between (the exact test below decides). *)

val response_time : Task.t list -> Task.t -> float option
(** Exact response-time analysis for the given task under RM priorities
    among [tasks] (which must contain it). [None] when the fixed-point
    iteration exceeds the deadline (unschedulable). Assumes phases are
    ignored (critical-instant analysis). *)

val schedulable : Task.t list -> bool
(** Every task's worst-case response time meets its deadline. *)

val breakdown_utilization :
  ?tolerance:float -> Task.t list -> float
(** Largest uniform scaling factor [k] such that inflating every wcet by
    [k] keeps the set RM-schedulable (binary search, default tolerance
    1e-4). Values > 1 mean headroom. *)
