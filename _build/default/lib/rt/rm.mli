(** Rate-monotonic fixed-priority analysis. *)

val priorities : Task.t list -> (Task.t * int) list
(** Rate-monotonic priority assignment: 0 is the highest priority
    (shortest period). Deterministic tiebreak by name. *)

val utilization_bound : int -> float
(** Liu & Layland bound [n (2^(1/n) - 1)]; 0 for [n <= 0]. *)

type verdict = Schedulable | Inconclusive | Overloaded

val utilization_test : Task.t list -> verdict
(** [Schedulable] when U <= the LL bound, [Overloaded] when U > 1,
    [Inconclusive] in between (the exact test below decides). The empty
    set is trivially [Schedulable]. *)

val response_time : ?blocking:float -> Task.t list -> Task.t -> float option
(** Exact response-time analysis for the given task under RM priorities
    among [tasks] (which must contain it): the least fixed point of
    [R = C + B + sum_hp ceil(R/T_j) C_j], where [B] ([blocking],
    default 0) models non-preemptible lower-priority sections. [None]
    when the iteration exceeds the deadline (unschedulable). Assumes
    phases are ignored (critical-instant analysis). *)

type bound = Converged of float | Diverges of float

val response_bound : ?blocking:float -> Task.t list -> Task.t -> bound
(** Like {!response_time} but keeps iterating past the deadline so a
    deadline miss can be reported with a concrete response time:
    [Converged r] is the exact worst-case response (possibly beyond the
    deadline), [Diverges r] means the busy period never closes
    (higher-priority utilization >= 1) and [r] is a lower bound. *)

val schedulable : Task.t list -> bool
(** Every task's worst-case response time meets its deadline. *)

val breakdown_utilization :
  ?tolerance:float -> Task.t list -> float
(** Largest uniform scaling factor [k] such that inflating every wcet by
    [k] keeps the set RM-schedulable (binary search, default tolerance
    1e-4). Values > 1 mean headroom. *)
