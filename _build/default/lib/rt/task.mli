(** Periodic real-time task model.

    When the hybrid engine assigns capsules and streamers to threads, each
    thread becomes one of these tasks (period = thread rate, wcet = the
    measured/declared computation per activation) so that schedulability
    can be checked before trusting a deployment. *)

type t = {
  name : string;
  period : float;
  wcet : float;     (** worst-case execution time per job *)
  deadline : float; (** relative deadline, <= period *)
  phase : float;    (** first release offset *)
}

val create : ?deadline:float -> ?phase:float -> period:float -> wcet:float -> string -> t
(** [deadline] defaults to [period], [phase] to 0. Raises
    [Invalid_argument] unless [0 < wcet <= deadline <= period] and
    [phase >= 0], with every field additionally required finite — zero,
    negative and NaN/infinite periods are rejected with a message naming
    the offending field. *)

val utilization : t -> float
(** [wcet /. period]. *)

val total_utilization : t list -> float

val rate : t -> float
(** [1. /. period]. *)

val compare_by_period : t -> t -> int
(** Rate-monotonic order (shorter period first, name as tiebreak). *)

val pp : Format.formatter -> t -> unit
