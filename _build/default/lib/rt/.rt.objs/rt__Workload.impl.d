lib/rt/workload.ml: Des Float List Printf Task
