lib/rt/rm.mli: Task
