lib/rt/sched_sim.mli: Task
