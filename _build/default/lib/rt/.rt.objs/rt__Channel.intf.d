lib/rt/channel.mli: Des
