lib/rt/channel.ml: Des Float Printf
