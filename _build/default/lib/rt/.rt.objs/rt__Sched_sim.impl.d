lib/rt/sched_sim.ml: Float List Rm String Task
