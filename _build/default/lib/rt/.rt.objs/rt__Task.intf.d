lib/rt/task.mli: Format
