lib/rt/rm.ml: Float List String Task
