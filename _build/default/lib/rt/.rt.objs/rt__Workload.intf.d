lib/rt/workload.mli: Des Task
