lib/rt/edf.mli: Task
