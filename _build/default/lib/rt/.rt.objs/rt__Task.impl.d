lib/rt/task.ml: Float Format List String
