lib/rt/edf.ml: Float List Task
