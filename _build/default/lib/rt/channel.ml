type latency_model =
  | Immediate
  | Constant of float
  | Uniform of float * float
  | Gaussian of { mu : float; sigma : float }

let model_name = function
  | Immediate -> "immediate"
  | Constant c -> Printf.sprintf "constant(%g)" c
  | Uniform (lo, hi) -> Printf.sprintf "uniform(%g,%g)" lo hi
  | Gaussian { mu; sigma } -> Printf.sprintf "gaussian(%g,%g)" mu sigma

let sample model rng =
  match model with
  | Immediate -> 0.
  | Constant c -> Float.max 0. c
  | Uniform (lo, hi) -> Float.max 0. (Des.Rng.uniform rng lo hi)
  | Gaussian { mu; sigma } -> Float.max 0. (Des.Rng.gaussian rng ~mu ~sigma ())

type 'a t = {
  name : string;
  mailbox : 'a Des.Mailbox.t;
  model : latency_model;
  drop_probability : float;
  rng : Des.Rng.t;
  mutable sent : int;
  mutable dropped : int;
  mutable last : float option;
  mutable latency_sum : float;
}

let create engine ?(model = Immediate) ?(drop_probability = 0.) ?(seed = 0x5eed)
    name =
  if drop_probability < 0. || drop_probability >= 1. then
    invalid_arg "Rt.Channel.create: drop probability must be in [0, 1)";
  { name; mailbox = Des.Mailbox.create engine name; model; drop_probability;
    rng = Des.Rng.create seed; sent = 0; dropped = 0; last = None;
    latency_sum = 0. }

let name t = t.name
let mailbox t = t.mailbox

let send t msg =
  t.sent <- t.sent + 1;
  if t.drop_probability > 0. && Des.Rng.float t.rng < t.drop_probability then
    t.dropped <- t.dropped + 1
  else begin
    let latency = sample t.model t.rng in
    t.last <- Some latency;
    t.latency_sum <- t.latency_sum +. latency;
    Des.Mailbox.send_delayed t.mailbox ~delay:latency msg
  end

(* Cross-domain replay of a send that happened at [sent] on another
   shard: identical statistics and latency sampling to [send], but the
   delivery instant is anchored at [sent] so the receiving engine's
   mailbox event lands on the bit-identical timestamp. *)
let send_stamped t ~sent:at msg =
  t.sent <- t.sent + 1;
  if t.drop_probability > 0. && Des.Rng.float t.rng < t.drop_probability then
    t.dropped <- t.dropped + 1
  else begin
    let latency = sample t.model t.rng in
    t.last <- Some latency;
    t.latency_sum <- t.latency_sum +. latency;
    Des.Mailbox.send_from t.mailbox ~sent:at ~delay:latency msg
  end

(* The guaranteed lower bound on a latency draw — the sharded runtime's
   lookahead. Zero means the link cannot cross a shard boundary. *)
let min_latency = function
  | Immediate -> 0.
  | Constant c -> Float.max 0. c
  | Uniform (lo, _) -> Float.max 0. lo
  | Gaussian _ -> 0.

let sent t = t.sent
let dropped t = t.dropped
let last_latency t = t.last

let mean_latency t =
  if t.sent = 0 then None else Some (t.latency_sum /. float_of_int t.sent)
