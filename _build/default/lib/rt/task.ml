type t = {
  name : string;
  period : float;
  wcet : float;
  deadline : float;
  phase : float;
}

let create ?deadline ?(phase = 0.) ~period ~wcet name =
  (* Validate each field on its own so degenerate inputs (zero, negative
     or non-finite periods) get a precise message instead of tripping a
     downstream comparison whose wording points at the wrong field. *)
  if not (Float.is_finite period) || period <= 0. then
    invalid_arg "Rt.Task.create: period must be finite and positive";
  if not (Float.is_finite wcet) || wcet <= 0. then
    invalid_arg "Rt.Task.create: wcet must be finite and positive";
  let deadline = match deadline with Some d -> d | None -> period in
  if not (Float.is_finite deadline) then
    invalid_arg "Rt.Task.create: deadline must be finite";
  if deadline < wcet then invalid_arg "Rt.Task.create: deadline must be >= wcet";
  if period < deadline then invalid_arg "Rt.Task.create: period must be >= deadline";
  if not (Float.is_finite phase) || phase < 0. then
    invalid_arg "Rt.Task.create: phase must be finite and >= 0";
  { name; period; wcet; deadline; phase }

let utilization t = t.wcet /. t.period

let total_utilization tasks =
  List.fold_left (fun acc t -> acc +. utilization t) 0. tasks

let rate t = 1. /. t.period

let compare_by_period a b =
  match Float.compare a.period b.period with
  | 0 -> String.compare a.name b.name
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%s(T=%g C=%g D=%g)" t.name t.period t.wcet t.deadline
