type t = {
  name : string;
  period : float;
  wcet : float;
  deadline : float;
  phase : float;
}

let create ?deadline ?(phase = 0.) ~period ~wcet name =
  let deadline = match deadline with Some d -> d | None -> period in
  if wcet <= 0. then invalid_arg "Rt.Task.create: wcet must be positive";
  if deadline < wcet then invalid_arg "Rt.Task.create: deadline must be >= wcet";
  if period < deadline then invalid_arg "Rt.Task.create: period must be >= deadline";
  if phase < 0. then invalid_arg "Rt.Task.create: negative phase";
  { name; period; wcet; deadline; phase }

let utilization t = t.wcet /. t.period

let total_utilization tasks =
  List.fold_left (fun acc t -> acc +. utilization t) 0. tasks

let rate t = 1. /. t.period

let compare_by_period a b =
  match Float.compare a.period b.period with
  | 0 -> String.compare a.name b.name
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%s(T=%g C=%g D=%g)" t.name t.period t.wcet t.deadline
