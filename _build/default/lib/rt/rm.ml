let priorities tasks =
  List.mapi (fun i t -> (t, i)) (List.sort Task.compare_by_period tasks)

let utilization_bound n =
  if n <= 0 then 0.
  else
    let nf = float_of_int n in
    nf *. ((2. ** (1. /. nf)) -. 1.)

type verdict = Schedulable | Inconclusive | Overloaded

let utilization_test tasks =
  if tasks = [] then Schedulable
  else
    let u = Task.total_utilization tasks in
    if u <= utilization_bound (List.length tasks) +. 1e-12 then Schedulable
    else if u > 1. +. 1e-12 then Overloaded
    else Inconclusive

let higher_priority tasks task =
  List.filter
    (fun other ->
       Task.compare_by_period other task < 0)
    tasks

let interference hp r =
  List.fold_left
    (fun acc j -> acc +. (Float.of_int (int_of_float (Float.ceil (r /. j.Task.period))) *. j.Task.wcet))
    0. hp

(* Classic fixed-point iteration R_{k+1} = C + B + sum_j ceil(R_k / T_j) C_j,
   where B is a blocking term (non-preemptible sections of lower-priority
   work, e.g. a shared flow-cell update). *)
let response_time ?(blocking = 0.) tasks task =
  if not (List.exists (fun t -> String.equal t.Task.name task.Task.name) tasks) then
    invalid_arg "Rt.Rm.response_time: task not in the set";
  let hp = higher_priority tasks task in
  let rec iterate r iters =
    if iters > 10_000 then None
    else
      let r' = task.Task.wcet +. blocking +. interference hp r in
      if r' > task.Task.deadline +. 1e-12 then None
      else if Float.abs (r' -. r) <= 1e-12 then Some r'
      else iterate r' (iters + 1)
  in
  iterate (task.Task.wcet +. blocking) 0

type bound = Converged of float | Diverges of float

(* Like [response_time] but keeps iterating past the deadline so a miss
   can be reported with a concrete number. Converges whenever the
   higher-priority utilization (plus this task) admits a fixed point;
   otherwise returns the last iterate as a lower bound. *)
let response_bound ?(blocking = 0.) tasks task =
  if not (List.exists (fun t -> String.equal t.Task.name task.Task.name) tasks) then
    invalid_arg "Rt.Rm.response_bound: task not in the set";
  let hp = higher_priority tasks task in
  let cap =
    (* Far past any plausible deadline: the busy period cannot close. *)
    100. *. Float.max task.Task.period task.Task.deadline
  in
  let rec iterate r iters =
    let r' = task.Task.wcet +. blocking +. interference hp r in
    if Float.abs (r' -. r) <= 1e-12 then Converged r'
    else if iters > 10_000 || r' > cap then Diverges r'
    else iterate r' (iters + 1)
  in
  iterate (task.Task.wcet +. blocking) 0

let schedulable tasks =
  List.for_all (fun t -> response_time tasks t <> None) tasks

let scale_tasks k tasks =
  List.map
    (fun t ->
       (* Inflate wcet; clamp so the Task invariants hold during search. *)
       let wcet = t.Task.wcet *. k in
       if wcet > t.Task.deadline then { t with Task.wcet = t.Task.deadline +. 1. }
       else { t with Task.wcet })
    tasks

let breakdown_utilization ?(tolerance = 1e-4) tasks =
  if tasks = [] then invalid_arg "Rt.Rm.breakdown_utilization: empty task set";
  let feasible k =
    let scaled = scale_tasks k tasks in
    List.for_all (fun t -> t.Task.wcet <= t.Task.deadline) scaled && schedulable scaled
  in
  if not (feasible 1e-9) then 0.
  else begin
    let rec grow hi = if feasible hi && hi < 1e6 then grow (hi *. 2.) else hi in
    let hi = grow 1. in
    let rec bisect lo hi =
      if hi -. lo <= tolerance then lo
      else
        let mid = (lo +. hi) /. 2. in
        if feasible mid then bisect mid hi else bisect lo mid
    in
    if feasible hi then hi else bisect 1e-9 hi
  end
