(* Benchmark & experiment harness.

   One section per exhibit of the paper (Table 1, Figures 1-3) and per
   quantitative experiment (E1-E5) from EXPERIMENTS.md; a final [micro]
   section runs Bechamel microbenchmarks of the kernels behind each
   experiment.

   Run everything:        dune exec bench/main.exe
   Run one section:       dune exec bench/main.exe -- e1 e3
   List sections:         dune exec bench/main.exe -- --list
   Machine-readable:      dune exec bench/main.exe -- e3 e4 --json out.json
   Reduced CI workload:   add --quick *)

let section_header id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let wall f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Sections append machine-readable results here; [--json FILE] dumps
   them as one object. [--quick] shrinks the workloads so the JSON shape
   can be exercised in CI without paying full benchmark time. *)
let quick = ref false
let json_report : (string * Obs.Json.t) list ref = ref []

let record_json name j =
  json_report := (name, j) :: List.remove_assoc name !json_report

(* ------------------------------------------------------------------ *)
(* Shared model pieces                                                  *)
(* ------------------------------------------------------------------ *)

let thermal_tau = 20.
let thermal_ambient = 15.
let thermal_gain = 0.8

(* T' = -(T - ambient)/tau + gain * duty, duty fixed: analytic reference. *)
let thermal_rhs duty _t y =
  [| (-.(y.(0) -. thermal_ambient) /. thermal_tau) +. (thermal_gain *. duty) |]

let thermal_analytic ~duty ~t0_temp time =
  let t_inf = thermal_ambient +. (thermal_gain *. duty *. thermal_tau) in
  t_inf +. ((t0_temp -. t_inf) *. exp (-.time /. thermal_tau))

let thermal_system ~duty = Ode.System.create ~dim:1 (thermal_rhs duty)

let thermal_streamer ~rate ~internal_dt =
  Hybrid.Streamer.leaf "thermal"
    ~rate
    ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, internal_dt))
    ~dim:1 ~init:[| 18. |]
    ~params:[ ("duty", 1.) ]
    ~dports:[ Hybrid.Streamer.dport_out "temp" ]
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
    ~rhs_into:(fun (env : Hybrid.Solver.env) _tcell y dy ->
        dy.(0) <-
          (-.(y.(0) -. thermal_ambient) /. thermal_tau)
          +. (thermal_gain *. env.Hybrid.Solver.param "duty"))
    ~rhs:(fun (env : Hybrid.Solver.env) t y ->
        thermal_rhs (env.Hybrid.Solver.param "duty") t y)

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section_header "T1" "Table 1 — new stereotypes comparing with UML-RT";
  Hybrid.Stereotype.pp_table Format.std_formatter ();
  Printf.printf "\nImplementation cross-check:\n";
  List.iter
    (fun st ->
       Printf.printf "  %-10s -> %-45s [%s]\n"
         (Hybrid.Stereotype.name st)
         (Hybrid.Stereotype.implementing_module st)
         (Hybrid.Stereotype.umlrt_counterpart st))
    Hybrid.Stereotype.all;
  Printf.printf
    "\nRows in the table: %d (merged); stereotype names listed: %d; the paper\n\
     announces %d new stereotypes (Table 1 itself prints nine names).\n"
    (List.length (Hybrid.Stereotype.table1 ()))
    (List.length Hybrid.Stereotype.all)
    Hybrid.Stereotype.paper_count

(* ------------------------------------------------------------------ *)
(* Figure 1 — state/algorithm separation (Strategy pattern)             *)
(* ------------------------------------------------------------------ *)

let run_figure1 () =
  section_header "F1" "Figure 1 — separating state machines from algorithms";
  (* A streamer whose equations are swapped at run time through its
     strategy — without touching any state machine. *)
  let decay_rhs (env : Hybrid.Solver.env) _t y =
    [| -.(env.Hybrid.Solver.param "k") *. y.(0) |]
  in
  let growth_rhs (env : Hybrid.Solver.env) _t y =
    [| env.Hybrid.Solver.param "k" *. y.(0) |]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"decay"
    (fun control _ -> control.Hybrid.Strategy.set_rhs decay_rhs);
  Hybrid.Strategy.on strategy ~signal:"grow"
    (fun control _ -> control.Hybrid.Strategy.set_rhs growth_rhs);
  let s =
    Hybrid.Streamer.leaf "plant" ~rate:0.01 ~dim:1 ~init:[| 1. |]
      ~params:[ ("k", 1.) ] ~strategy
      ~dports:[ Hybrid.Streamer.dport_out "x" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
      ~rhs:decay_rhs
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"plant" s;
  Hybrid.Engine.run_until engine 1.;
  let solver =
    match Hybrid.Engine.solver_of engine "plant" with
    | Some s -> s
    | None -> failwith "solver"
  in
  let control =
    { Hybrid.Strategy.set_param = Hybrid.Solver.set_param solver;
      get_param = Hybrid.Solver.get_param solver;
      get_state = (fun () -> Hybrid.Solver.state solver);
      set_state = Hybrid.Solver.set_state solver;
      set_rhs = Hybrid.Solver.set_rhs solver;
      emit = (fun ~sport:_ _ -> ());
      now = (fun () -> 0.) }
  in
  let n = 100_000 in
  let (), elapsed =
    wall (fun () ->
        for i = 1 to n do
          let signal = if i mod 2 = 0 then "decay" else "grow" in
          ignore
            (Hybrid.Strategy.handle strategy control (Statechart.Event.make signal))
        done)
  in
  Printf.printf
    "strategy re-dispatch (swap the whole equation set through the Strategy\n\
     pattern, Figure 1): %d swaps in %.3f ms -> %.0f ns/swap\n"
    n (elapsed *. 1e3) (elapsed /. float_of_int n *. 1e9);
  Printf.printf
    "state machines untouched during swaps: the capsule side holds no\n\
     reference to the equations (solver <-> strategy only).\n"

(* ------------------------------------------------------------------ *)
(* Figure 2 — abstract syntax / well-formedness matrix                  *)
(* ------------------------------------------------------------------ *)

let check_dsl source =
  Dsl.Typecheck.check (Dsl.Parser.parse source)

let run_figure2 () =
  section_header "F2" "Figure 2 — abstract syntax of streamers (validation matrix)";
  let accept label errors =
    Printf.printf "  %-52s %s\n" label
      (if errors = [] then "ACCEPT" else "ACCEPT-FAIL(" ^ String.concat "; " errors ^ ")")
  in
  let reject label errors =
    Printf.printf "  %-52s %s\n" label
      (if errors <> [] then "REJECT" else "REJECT-FAIL (accepted!)")
  in
  (* R1: solver with equations *)
  let ok_streamer =
    Hybrid.Streamer.leaf "s" ~rate:0.1 ~dim:1 ~init:[| 0. |]
      ~outputs:(Hybrid.Streamer.output_fn (fun _ _ _ -> []))
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  accept "R1 streamer behaviour is a solver" (Hybrid.Check.streamer_errors ok_streamer);
  reject "R1 streamer without state variables"
    (check_dsl "model M streamer S { rate 0.1; }").Dsl.Typecheck.errors;
  (* R2: flow-type subset rule *)
  let scalar = Dataflow.Flow_type.float_flow in
  let rich =
    Dataflow.Flow_type.record
      [ ("value", Dataflow.Flow_type.TFloat); ("q", Dataflow.Flow_type.TInt) ]
  in
  accept "R2 output subset of input"
    (if Dataflow.Flow_type.compatible ~src:scalar ~dst:rich then [] else [ "rejected" ]);
  reject "R2 output superset of input"
    (if Dataflow.Flow_type.compatible ~src:rich ~dst:scalar then [] else [ "violation" ]);
  (* R3: relay fanout *)
  accept "R3 relay with fanout 2" (Hybrid.Check.relay_fanout_errors [ ("r", scalar, 2) ]);
  reject "R3 relay with fanout 1" (Hybrid.Check.relay_fanout_errors [ ("r", scalar, 1) ]);
  (* R4: sport/protocol compatibility *)
  let proto = Umlrt.Protocol.create "P" ~outgoing:[ Umlrt.Protocol.signal "x" ] in
  let other = Umlrt.Protocol.create "Q" ~outgoing:[ Umlrt.Protocol.signal "x" ] in
  let sport = Some (Hybrid.Streamer.sport "sp" proto) in
  let border p = Some (Umlrt.Capsule.port "b" p) in
  accept "R4 SPort linked to same-protocol port"
    (Hybrid.Check.sport_link_errors ~sport ~border:(border proto) ~role:"s"
       ~sport_name:"sp" ~border_port:"b");
  reject "R4 SPort linked across protocols"
    (Hybrid.Check.sport_link_errors ~sport ~border:(border other) ~role:"s"
       ~sport_name:"sp" ~border_port:"b");
  (* R5: capsule DPorts relay-only *)
  let flow_proto = Hybrid.Check.flow_protocol scalar in
  let relay_capsule =
    Umlrt.Capsule.create "C"
      ~ports:[ Umlrt.Capsule.port ~kind:Umlrt.Capsule.Relay "d" flow_proto ]
  in
  let end_capsule =
    Umlrt.Capsule.create "C" ~behavior:(fun _ ->
        { Umlrt.Capsule.on_start = (fun () -> ());
          on_event = (fun ~port:_ _ -> true);
          configuration = (fun () -> []) })
      ~ports:[ Umlrt.Capsule.port "d" flow_proto ]
  in
  accept "R5 capsule DPort declared relay" (Hybrid.Check.capsule_dport_errors relay_capsule);
  reject "R5 capsule DPort declared End" (Hybrid.Check.capsule_dport_errors end_capsule);
  (* R6: containment *)
  accept "R6 streamer contained in a capsule"
    (check_dsl
       "model M streamer S { rate 0.1; init x = 0.0; eq x' = 0.0; }\n\
        system { streamer a : S; }").Dsl.Typecheck.errors;
  reject "R6 streamer contained in a streamer"
    (check_dsl
       "model M streamer S { rate 0.1; init x = 0.0; eq x' = 0.0; }\n\
        system { streamer a : S; streamer b : S in a; }").Dsl.Typecheck.errors;
  (* R7: thread rates *)
  accept "R7 positive thread rate"
    (check_dsl "model M streamer S { rate 0.1; init x = 0.0; eq x' = 0.0; }").Dsl.Typecheck.errors;
  reject "R7 non-positive thread rate"
    (check_dsl "model M streamer S { rate -0.1; init x = 0.0; eq x' = 0.0; }").Dsl.Typecheck.errors;
  (* R8: continuous Time *)
  let des = Des.Engine.create () in
  let clock = Hybrid.Time_service.create ~scale:2. ~offset:1. des in
  ignore (Des.Engine.run_until des 3.);
  accept "R8 Time is a continuous affine clock"
    (if Float.abs (Hybrid.Time_service.now clock -. 7.) < 1e-12 then []
     else [ "wrong value" ]);
  reject "R8 non-positive time scale"
    (try
       ignore (Hybrid.Time_service.create ~scale:0. des);
       []
     with Invalid_argument msg -> [ msg ])

(* ------------------------------------------------------------------ *)
(* Figure 3 — structure of the extensions                               *)
(* ------------------------------------------------------------------ *)

let run_figure3 () =
  section_header "F3" "Figure 3 — structure of the extensions (containment & relays)";
  (* Composite streamer inside an engine, exercising every structural
     element of Figure 3 at once. *)
  let child =
    Hybrid.Streamer.leaf "gain" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_in "in"; Hybrid.Streamer.dport_out "out" ]
      ~outputs:(Hybrid.Streamer.output_fn (fun (env : Hybrid.Solver.env) _ _ ->
          [ ("out", Dataflow.Value.Float (2. *. env.Hybrid.Solver.input "in")) ]))
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  let composite =
    Hybrid.Streamer.composite "block"
      ~dports:[ Hybrid.Streamer.dport_in "u"; Hybrid.Streamer.dport_out "y" ]
      ~children:[ ("g", child) ]
      ~flows:
        [ (Hybrid.Streamer.border "u", Hybrid.Streamer.child_port "g" "in");
          (Hybrid.Streamer.child_port "g" "out", Hybrid.Streamer.border "y") ]
  in
  let source =
    Hybrid.Streamer.leaf "src" ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_out "x" ]
      ~outputs:
        (Hybrid.Streamer.output_fn (fun _ t _ ->
             [ ("x", Dataflow.Value.Float (sin t)) ]))
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  let sink name =
    Hybrid.Streamer.leaf name ~rate:0.01 ~dim:1 ~init:[| 0. |]
      ~dports:[ Hybrid.Streamer.dport_in "u"; Hybrid.Streamer.dport_out "copy" ]
      ~outputs:(Hybrid.Streamer.output_fn (fun (env : Hybrid.Solver.env) _ _ ->
          [ ("copy", Dataflow.Value.Float (env.Hybrid.Solver.input "u")) ]))
      ~rhs:(fun _ _ _ -> [| 0. |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"src" source;
  Hybrid.Engine.add_streamer engine ~role:"blk" composite;
  Hybrid.Engine.add_streamer engine ~role:"a" (sink "a");
  Hybrid.Engine.add_streamer engine ~role:"b" (sink "b");
  Hybrid.Engine.add_relay engine ~name:"split" Dataflow.Flow_type.float_flow ~fanout:2;
  Hybrid.Engine.connect_flow_exn engine ~src:("src", "x") ~dst:("blk", "u");
  Hybrid.Engine.connect_flow_exn engine ~src:("blk", "y") ~dst:("split", "in");
  Hybrid.Engine.connect_flow_exn engine ~src:("split", "out1") ~dst:("a", "u");
  Hybrid.Engine.connect_flow_exn engine ~src:("split", "out2") ~dst:("b", "u");
  Hybrid.Engine.run_until engine 2.;
  Printf.printf "structure: src -> [composite blk {g}] -> relay split -> {a, b}\n";
  Printf.printf "flattened streamer threads: %s\n"
    (String.concat ", " (Hybrid.Engine.streamer_roles engine));
  let read role port =
    match Hybrid.Engine.read_dport engine ~role ~dport:port with
    | Some v -> v
    | None -> nan
  in
  Printf.printf "src.x = %.4f (sin 2 = %.4f)\n" (read "src" "x") (sin 2.);
  Printf.printf "composite border y = %.4f (expected 2*sin 2 = %.4f)\n"
    (read "blk" "y") (2. *. sin 2.);
  Printf.printf "relay branch a = %.4f, branch b = %.4f (identical flows)\n"
    (read "a" "copy") (read "b" "copy");
  let ok =
    Float.abs (read "a" "copy" -. read "b" "copy") < 1e-12
    && Float.abs (read "blk" "y" -. (2. *. sin 2.)) < 0.05
  in
  Printf.printf "figure-3 structural semantics hold: %b\n" ok

(* ------------------------------------------------------------------ *)
(* E1 — accuracy: streamer solver vs translation baseline               *)
(* ------------------------------------------------------------------ *)

let rmse_vs_analytic samples ~duty =
  match samples with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length samples) in
    let ss =
      List.fold_left
        (fun acc (t, v) ->
           let e = v -. thermal_analytic ~duty ~t0_temp:18. t in
           acc +. (e *. e))
        0. samples
    in
    sqrt (ss /. n)

let e1_translation dt =
  let t =
    Baseline.Translation.create ~step:dt ~system:(thermal_system ~duty:1.)
      ~init:[| 18. |] ()
  in
  let trace = Baseline.Translation.trace t ~component:0 in
  Baseline.Translation.run t ~until:60.;
  (rmse_vs_analytic (Sigtrace.Trace.samples trace) ~duty:1.,
   Baseline.Translation.des_events t)

let e1_streamer internal_dt =
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"thermal"
    (thermal_streamer ~rate:0.05 ~internal_dt);
  let trace = Hybrid.Engine.trace_dport engine ~role:"thermal" ~dport:"temp" in
  Hybrid.Engine.run_until engine 60.;
  let des_events = Des.Engine.events_executed (Hybrid.Engine.des engine) in
  (rmse_vs_analytic (Sigtrace.Trace.samples trace) ~duty:1., des_events)

let run_e1 () =
  section_header "E1"
    "accuracy — streamer solver (RK4, batched) vs translation (Euler, event/step)";
  Printf.printf "thermal plant, 60 simulated seconds, analytic reference\n\n";
  Printf.printf "%10s | %16s | %16s | %10s | %17s\n" "dt" "translation RMSE"
    "streamer RMSE" "ratio" "DES events t / s";
  Printf.printf "%s\n" (String.make 80 '-');
  List.iter
    (fun dt ->
       let rmse_t, events_t = e1_translation dt in
       let rmse_s, events_s = e1_streamer dt in
       Printf.printf "%10g | %16.3e | %16.3e | %10.0f | %8d / %d\n" dt rmse_t rmse_s
         (rmse_t /. rmse_s) events_t events_s)
    [ 0.1; 0.05; 0.02; 0.01; 0.005 ];
  Printf.printf
    "\nClaim check: the streamer side is orders of magnitude more accurate at\n\
     equal step size AND uses far fewer DES events (integration is batched\n\
     between ticks instead of one event per step).\n"

(* ------------------------------------------------------------------ *)
(* E2 — event latency under equation load                               *)
(* ------------------------------------------------------------------ *)

let e2_case ~blocks ~on_event_thread =
  let e = Des.Engine.create () in
  let server = Baseline.Event_server.create e ~handler_cost:0.0001 in
  if on_event_thread && blocks > 0 then
    Baseline.Event_server.add_background_load server ~period:0.01
      ~cost:(0.0002 *. float_of_int blocks);
  (* External control events every 7 ms over 5 s. *)
  let rec arrivals k =
    let time = 0.007 *. float_of_int k in
    if time < 5. then begin
      Baseline.Event_server.submit_at server time;
      arrivals (k + 1)
    end
  in
  arrivals 1;
  ignore (Des.Engine.run_until e 10.);
  Sigtrace.Metrics.summarize (Baseline.Event_server.event_latencies server)

let run_e2 () =
  section_header "E2"
    "event latency — equations on the event thread vs on streamer threads";
  Printf.printf
    "update period 10 ms, 0.2 ms/block/update, events every 7 ms, 5 s\n\n";
  Printf.printf "%7s | %26s | %26s | %7s\n" "blocks" "eqs-in-state mean/p95 (ms)"
    "streamer-thr mean/p95 (ms)" "ratio";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun blocks ->
       match (e2_case ~blocks ~on_event_thread:true,
              e2_case ~blocks ~on_event_thread:false)
       with
       | Some eis, Some st ->
         Printf.printf "%7d | %12.3f / %-11.3f | %12.3f / %-11.3f | %7.1f\n" blocks
           (eis.Sigtrace.Metrics.mean *. 1e3) (eis.Sigtrace.Metrics.p95 *. 1e3)
           (st.Sigtrace.Metrics.mean *. 1e3) (st.Sigtrace.Metrics.p95 *. 1e3)
           (eis.Sigtrace.Metrics.mean /. st.Sigtrace.Metrics.mean)
       | _, _ -> Printf.printf "%7d | no data\n" blocks)
    [ 1; 2; 4; 8; 16; 32; 48 ];
  Printf.printf
    "\nClaim check: with equations attached to states the event thread's\n\
     latency grows with the equation load and eventually saturates; moving\n\
     them to streamer threads keeps event latency flat.\n"

(* ------------------------------------------------------------------ *)
(* E3 — scaling with the number of streamers                            *)
(* ------------------------------------------------------------------ *)

let e3_engine n =
  let engine = Hybrid.Engine.create () in
  for i = 1 to n do
    Hybrid.Engine.add_streamer engine ~role:(Printf.sprintf "s%d" i)
      (thermal_streamer ~rate:0.01 ~internal_dt:0.002)
  done;
  engine

let run_e3 () =
  section_header "E3" "scaling — wall-clock cost vs number of streamer threads";
  let horizon = if !quick then 2. else 10. in
  let sizes = if !quick then [ 1; 4; 16 ] else [ 1; 4; 16; 64; 256 ] in
  Printf.printf "each streamer: 100 Hz thread, RK4 at 2 ms, %g simulated seconds\n\n"
    horizon;
  Printf.printf "%10s | %10s | %12s | %18s\n" "streamers" "ticks" "wall (ms)"
    "us per streamer-sec";
  Printf.printf "%s\n" (String.make 60 '-');
  let points =
    List.map
      (fun n ->
         let engine = e3_engine n in
         let (), elapsed = wall (fun () -> Hybrid.Engine.run_until engine horizon) in
         let stats = Hybrid.Engine.stats engine in
         let us_per = elapsed *. 1e6 /. (float_of_int n *. horizon) in
         Printf.printf "%10d | %10d | %12.1f | %18.2f\n" n
           stats.Hybrid.Engine.ticks_total (elapsed *. 1e3) us_per;
         Obs.Json.Obj
           [ ("streamers", Obs.Json.Int n);
             ("ticks", Obs.Json.Int stats.Hybrid.Engine.ticks_total);
             ("wall_ms", Obs.Json.Float (elapsed *. 1e3));
             ("us_per_streamer_sec", Obs.Json.Float us_per) ])
      sizes
  in
  record_json "e3"
    (Obs.Json.Obj
       [ ("horizon_s", Obs.Json.Float horizon);
         ("unit", Obs.Json.Str "us_per_streamer_sec");
         ("points", Obs.Json.List points) ]);
  Printf.printf
    "\nClaim check: cost per streamer-second stays roughly flat — the\n\
     architecture scales linearly in the number of streamer threads.\n"

(* ------------------------------------------------------------------ *)
(* E4 — co-simulation overhead vs raw integration                       *)
(* ------------------------------------------------------------------ *)

let run_e4 () =
  section_header "E4" "overhead — hybrid engine vs raw ODE integration";
  let dt = 1e-3 in
  let horizon = if !quick then 5. else 60. in
  let _, raw_time =
    wall (fun () ->
        ignore
          (Ode.Fixed.integrate Ode.Fixed.Rk4 (thermal_system ~duty:1.) ~t0:0.
             ~t1:horizon ~dt [| 18. |]))
  in
  let _, hybrid_time =
    wall (fun () ->
        let engine = Hybrid.Engine.create () in
        Hybrid.Engine.add_streamer engine ~role:"thermal"
          (thermal_streamer ~rate:0.05 ~internal_dt:dt);
        Hybrid.Engine.run_until engine horizon)
  in
  let _, translation_time =
    wall (fun () ->
        let t =
          Baseline.Translation.create ~scheme:Ode.Fixed.Rk4 ~step:dt
            ~system:(thermal_system ~duty:1.) ~init:[| 18. |] ()
        in
        Baseline.Translation.run t ~until:horizon)
  in
  Printf.printf "thermal plant, %g simulated seconds, RK4 at dt = %g\n\n" horizon dt;
  Printf.printf "  %-38s %10.2f ms  (x%.2f)\n" "raw Ode.Fixed.integrate" (raw_time *. 1e3) 1.;
  Printf.printf "  %-38s %10.2f ms  (x%.2f)\n" "hybrid engine (streamer, 20 Hz ticks)"
    (hybrid_time *. 1e3) (hybrid_time /. raw_time);
  Printf.printf "  %-38s %10.2f ms  (x%.2f)\n" "translation (DES event per step)"
    (translation_time *. 1e3) (translation_time /. raw_time);
  record_json "e4"
    (Obs.Json.Obj
       [ ("horizon_s", Obs.Json.Float horizon);
         ("dt", Obs.Json.Float dt);
         ("raw_ms", Obs.Json.Float (raw_time *. 1e3));
         ("hybrid_ms", Obs.Json.Float (hybrid_time *. 1e3));
         ("translation_ms", Obs.Json.Float (translation_time *. 1e3));
         ("hybrid_over_raw", Obs.Json.Float (hybrid_time /. raw_time));
         ("translation_over_raw", Obs.Json.Float (translation_time /. raw_time)) ]);
  Printf.printf
    "\nClaim check: the unified model's overhead over raw integration is a\n\
     small constant factor; the translation baseline pays the event machinery\n\
     on every step and lands far above both.\n"

(* ------------------------------------------------------------------ *)
(* E5 — schedulability of generated thread sets                         *)
(* ------------------------------------------------------------------ *)

let run_e5 () =
  section_header "E5" "schedulability — thread assignment as a periodic task set";
  let rates = [ ("s100a", 0.01); ("s100b", 0.01); ("s250a", 0.004);
                ("s250b", 0.004); ("s1k", 0.001) ] in
  Printf.printf
    "threads: 2 x 100 Hz, 2 x 250 Hz, 1 x 1 kHz + a 200 Hz event thread\n\n";
  Printf.printf "%8s | %6s | %12s | %5s | %5s | %9s | %17s\n" "util/thr" "U"
    "LL-test" "RTA" "EDF" "breakdown" "sim misses rm/edf";
  Printf.printf "%s\n" (String.make 84 '-');
  List.iter
    (fun util ->
       let tasks =
         Hybrid.Threading.tasks_for
           ~event_task:(Rt.Task.create ~period:0.005 ~wcet:(0.005 *. util) "event-thread")
           ~wcet_of:(fun _ period -> Hybrid.Threading.default_wcet ~utilization:util period)
           rates
       in
       let r = Hybrid.Threading.analyze tasks in
       let verdict = function
         | Rt.Rm.Schedulable -> "schedulable"
         | Rt.Rm.Inconclusive -> "inconclusive"
         | Rt.Rm.Overloaded -> "overloaded"
       in
       Printf.printf "%7.0f%% | %6.3f | %12s | %5b | %5b | %9.2f | %10d / %d\n"
         (util *. 100.) r.Hybrid.Threading.utilization
         (verdict r.Hybrid.Threading.rm_verdict) r.Hybrid.Threading.rm_exact
         r.Hybrid.Threading.edf_ok r.Hybrid.Threading.breakdown
         r.Hybrid.Threading.simulated_misses_rm r.Hybrid.Threading.simulated_misses_edf)
    [ 0.02; 0.05; 0.10; 0.12; 0.14; 0.15; 0.17; 0.20 ];
  Printf.printf
    "\nClaim check: thread assignments stay schedulable up to the RM bound;\n\
     the analytic tests, the exact RTA and the simulated schedule agree on\n\
     where the deployment stops being feasible.\n"

(* ------------------------------------------------------------------ *)
(* E5b — acceptance ratio of random thread sets (UUniFast)              *)
(* ------------------------------------------------------------------ *)

let run_e5b () =
  section_header "E5b"
    "acceptance ratio — random UUniFast thread sets vs total utilization";
  let sets = 200 in
  Printf.printf
    "%d random 6-thread sets per point (UUniFast, log-uniform periods)\n\n"
    sets;
  Printf.printf "%6s | %12s | %12s | %12s\n" "U" "RM (LL)" "RM (exact)" "EDF";
  Printf.printf "%s\n" (String.make 52 '-');
  List.iter
    (fun u ->
       let ratio test =
         Rt.Workload.acceptance_ratio (Des.Rng.create 42) ~n:6
           ~total_utilization:u ~sets ~test
       in
       let ll tasks = Rt.Rm.utilization_test tasks = Rt.Rm.Schedulable in
       Printf.printf "%6.2f | %11.0f%% | %11.0f%% | %11.0f%%\n" u
         (100. *. ratio ll)
         (100. *. ratio Rt.Rm.schedulable)
         (100. *. ratio Rt.Edf.schedulable))
    [ 0.5; 0.6; 0.7; 0.75; 0.8; 0.85; 0.9; 0.95; 1.0 ];
  Printf.printf
    "\nClaim check: the classic ordering holds — the Liu-Layland test is\n\
     sufficient-only (drops first), exact RTA accepts more RM sets, and EDF\n\
     accepts everything up to U = 1.\n"

(* ------------------------------------------------------------------ *)
(* A1 — ablation: located zero crossings vs tick-quantized detection    *)
(* ------------------------------------------------------------------ *)

(* The same thermostat plant; the guard either reads the continuous
   state directly (crossings located by bisection inside the interval)
   or a fed-back DPort sample (constant within an interval, so detection
   quantizes to tick boundaries — exactly what naive generated code or a
   sampled monitor would do). *)
let a1_band_excursion ~rate ~located =
  let low = 19. and high = 21. in
  let proto =
    Umlrt.Protocol.create "T"
      ~incoming:[ Umlrt.Protocol.signal "on_"; Umlrt.Protocol.signal "off_" ]
      ~outgoing:[ Umlrt.Protocol.signal "cold"; Umlrt.Protocol.signal "hot" ]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"on_" (Hybrid.Strategy.set_param_const "duty" 1.);
  Hybrid.Strategy.on strategy ~signal:"off_" (Hybrid.Strategy.set_param_const "duty" 0.);
  let value_of (env : Hybrid.Solver.env) y =
    if located then y.(0) else env.Hybrid.Solver.input "temp_fb"
  in
  let room =
    Hybrid.Streamer.leaf "room" ~rate ~dim:1 ~init:[| 20. |]
      ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, Float.min 0.01 (rate /. 4.)))
      ~params:[ ("duty", 0.) ]
      ~dports:
        [ Hybrid.Streamer.dport_out "temp"; Hybrid.Streamer.dport_in "temp_fb" ]
      ~sports:[ Hybrid.Streamer.sport "sp" proto ]
      ~guards:
        [ { Hybrid.Streamer.guard_id = "lo"; signal = "cold"; via_sport = "sp";
            direction = Ode.Events.Falling;
            expr = (fun env _ y -> value_of env y -. low); payload = None };
          { Hybrid.Streamer.guard_id = "hi"; signal = "hot"; via_sport = "sp";
            direction = Ode.Events.Rising;
            expr = (fun env _ y -> value_of env y -. high); payload = None } ]
      ~strategy
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
      ~rhs:(fun (env : Hybrid.Solver.env) t y ->
          thermal_rhs (env.Hybrid.Solver.param "duty") t y)
  in
  let behavior (services : Umlrt.Capsule.services) =
    { Umlrt.Capsule.on_start = (fun () -> ());
      on_event =
        (fun ~port e ->
           let reply =
             match Statechart.Event.signal e with
             | "cold" -> Some "on_"
             | "hot" -> Some "off_"
             | _ -> None
           in
           (match reply with
            | Some r -> services.Umlrt.Capsule.send ~port (Statechart.Event.make r)
            | None -> ());
           reply <> None);
      configuration = (fun () -> []) }
  in
  let root =
    Umlrt.Capsule.create "ctl" ~behavior
      ~ports:[ Umlrt.Capsule.port ~conjugated:true "p" proto ]
  in
  let engine = Hybrid.Engine.create ~root () in
  Hybrid.Engine.add_streamer engine ~role:"room" room;
  (* Feed the sampled output back for the quantized variant. *)
  Hybrid.Engine.connect_flow_exn engine ~src:("room", "temp") ~dst:("room", "temp_fb");
  Hybrid.Engine.link_sport_exn engine ~role:"room" ~sport:"sp" ~border_port:"p";
  let trace = Hybrid.Engine.trace_dport engine ~role:"room" ~dport:"temp" in
  Hybrid.Engine.run_until engine 600.;
  List.fold_left
    (fun acc (t, v) ->
       if t < 60. then acc
       else Float.max acc (Float.max (v -. high) (low -. v)))
    0. (Sigtrace.Trace.samples trace)

let run_a1 () =
  section_header "A1"
    "ablation — located zero crossings vs tick-quantized edge detection";
  Printf.printf
    "thermostat band [19,21]; excursion = how far the temperature escapes
     the band after settling (degC)

";
  Printf.printf "%12s | %18s | %18s
" "tick period" "located crossing"
    "tick-quantized";
  Printf.printf "%s
" (String.make 56 '-');
  List.iter
    (fun rate ->
       let located = a1_band_excursion ~rate ~located:true in
       let quantized = a1_band_excursion ~rate ~located:false in
       Printf.printf "%12g | %18.4f | %18.4f
" rate located quantized)
    [ 0.05; 0.2; 0.5; 1.0; 2.0 ];
  Printf.printf
    "
Ablation: with located crossings the excursion stays near zero at any
     tick period (events fire at the crossing instant); quantized detection
     overshoots by roughly the temperature drift per tick.
"

(* ------------------------------------------------------------------ *)
(* A2 — ablation: signal channel latency vs control quality             *)
(* ------------------------------------------------------------------ *)

let a2_excursion ?(drop = 0.) latency =
  let low = 19. and high = 21. in
  let proto =
    Umlrt.Protocol.create "T"
      ~incoming:[ Umlrt.Protocol.signal "on_"; Umlrt.Protocol.signal "off_" ]
      ~outgoing:[ Umlrt.Protocol.signal "cold"; Umlrt.Protocol.signal "hot" ]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"on_" (Hybrid.Strategy.set_param_const "duty" 1.);
  Hybrid.Strategy.on strategy ~signal:"off_" (Hybrid.Strategy.set_param_const "duty" 0.);
  let room =
    Hybrid.Streamer.leaf "room" ~rate:0.05 ~dim:1 ~init:[| 20. |]
      ~params:[ ("duty", 0.) ]
      ~dports:[ Hybrid.Streamer.dport_out "temp" ]
      ~sports:[ Hybrid.Streamer.sport "sp" proto ]
      ~guards:
        [ { Hybrid.Streamer.guard_id = "lo"; signal = "cold"; via_sport = "sp";
            direction = Ode.Events.Falling;
            expr = (fun _ _ y -> y.(0) -. low); payload = None };
          { Hybrid.Streamer.guard_id = "hi"; signal = "hot"; via_sport = "sp";
            direction = Ode.Events.Rising;
            expr = (fun _ _ y -> y.(0) -. high); payload = None } ]
      ~strategy
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
      ~rhs:(fun (env : Hybrid.Solver.env) t y ->
          thermal_rhs (env.Hybrid.Solver.param "duty") t y)
  in
  let behavior (services : Umlrt.Capsule.services) =
    { Umlrt.Capsule.on_start = (fun () -> ());
      on_event =
        (fun ~port e ->
           let reply =
             match Statechart.Event.signal e with
             | "cold" -> Some "on_"
             | "hot" -> Some "off_"
             | _ -> None
           in
           (match reply with
            | Some r -> services.Umlrt.Capsule.send ~port (Statechart.Event.make r)
            | None -> ());
           reply <> None);
      configuration = (fun () -> []) }
  in
  let root =
    Umlrt.Capsule.create "ctl" ~behavior
      ~ports:[ Umlrt.Capsule.port ~conjugated:true "p" proto ]
  in
  let engine =
    Hybrid.Engine.create ~signal_latency:(Rt.Channel.Constant latency)
      ~signal_drop_probability:drop ~root ()
  in
  Hybrid.Engine.add_streamer engine ~role:"room" room;
  Hybrid.Engine.link_sport_exn engine ~role:"room" ~sport:"sp" ~border_port:"p";
  let trace = Hybrid.Engine.trace_dport engine ~role:"room" ~dport:"temp" in
  Hybrid.Engine.run_until engine 600.;
  List.fold_left
    (fun acc (t, v) ->
       if t < 60. then acc
       else Float.max acc (Float.max (v -. high) (low -. v)))
    0. (Sigtrace.Trace.samples trace)

let run_a2 () =
  section_header "A2" "ablation — channel latency vs control quality";
  Printf.printf
    "thermostat band [19,21]; capsule<->streamer signals delayed by the
     channel model (the paper's OS communication mechanism)

";
  Printf.printf "%14s | %16s
" "latency (s)" "band excursion";
  Printf.printf "%s
" (String.make 34 '-');
  List.iter
    (fun latency ->
       Printf.printf "%14g | %16.4f
" latency (a2_excursion latency))
    [ 0.; 0.1; 0.5; 1.0; 2.0; 5.0 ];
  Printf.printf
    "
Ablation: the architecture tolerates realistic channel delays — the
     excursion grows with the plant drift over one latency (tau = 20 s, so
     even 5 s of delay costs well under a degree) rather than collapsing.
"

(* ------------------------------------------------------------------ *)
(* A3 — ablation: lossy signal channels                                 *)
(* ------------------------------------------------------------------ *)

let run_a3 () =
  section_header "A3" "ablation — message loss on the capsule->streamer channel";
  Printf.printf
    "thermostat band [19,21]; heater commands dropped with probability p\n\n";
  Printf.printf "%8s | %16s\n" "p(drop)" "band excursion";
  Printf.printf "%s\n" (String.make 28 '-');
  List.iter
    (fun drop ->
       Printf.printf "%8g | %16.4f\n" drop (a2_excursion ~drop 0.))
    [ 0.; 0.01; 0.05; 0.1; 0.3 ];
  Printf.printf
    "\nAblation: bang-bang control has no retry — one lost switch command\n\
     lets the plant drift toward its open-loop equilibrium until the\n\
     opposite threshold fires, so even 1%% loss costs whole degrees. The\n\
     architecture depends on the reliable OS channels the paper assumes\n\
     (or on an acknowledgement protocol in the capsule).\n"

(* ------------------------------------------------------------------ *)
(* OBS — observability instrumentation overhead                         *)
(* ------------------------------------------------------------------ *)

let run_obs () =
  section_header "OBS" "observability — tracer/metrics overhead on the E3 workload";
  let streamers = 16 and horizon = 10. in
  let workload () =
    let engine = e3_engine streamers in
    Hybrid.Engine.run_until engine horizon
  in
  let best_of reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let (), t = wall f in
      if t < !best then best := t
    done;
    !best
  in
  workload () (* warm-up *);
  Obs.Tracer.set_enabled false;
  let disabled = best_of 3 workload in
  Obs.Tracer.set_enabled true;
  Obs.Tracer.clear Obs.Tracer.default;
  let enabled = best_of 3 workload in
  let captured = Obs.Tracer.length Obs.Tracer.default in
  Obs.Tracer.set_enabled false;
  Printf.printf "workload: %d thermal streamers at 100 Hz, %g simulated seconds\n\n"
    streamers horizon;
  Printf.printf "  %-32s %10.2f ms\n" "instrumented, tracing disabled"
    (disabled *. 1e3);
  Printf.printf "  %-32s %10.2f ms  (x%.3f, %d events in the ring)\n"
    "instrumented, tracing enabled" (enabled *. 1e3) (enabled /. disabled)
    captured;
  (* Per-primitive cost of the always-on instrumentation, then scale by
     how often the workload hits each site to bound the disabled-mode
     overhead relative to an uninstrumented build. *)
  let n = 10_000_000 in
  let c = Obs.Metrics.counter "bench.obs.counter" in
  let g = Obs.Metrics.gauge "bench.obs.gauge" in
  let h = Obs.Metrics.histogram "bench.obs.histogram" in
  let per_ns f =
    let (), t = wall (fun () -> for _ = 1 to n do f () done) in
    t /. float_of_int n *. 1e9
  in
  let incr_ns = per_ns (fun () -> Obs.Metrics.incr c) in
  let gauge_ns = per_ns (fun () -> Obs.Metrics.set g 1.) in
  let observe_ns = per_ns (fun () -> Obs.Metrics.observe h 0.5) in
  let branch_ns =
    per_ns (fun () ->
        if Obs.Tracer.enabled () then
          Obs.Tracer.instant ~cat:"bench" ~name:"x" ~sim_time:0. ())
  in
  Printf.printf "\n  per-site cost (%d-iteration loops):\n" n;
  Printf.printf "    counter incr            %6.2f ns\n" incr_ns;
  Printf.printf "    gauge set               %6.2f ns\n" gauge_ns;
  Printf.printf "    histogram observe       %6.2f ns\n" observe_ns;
  Printf.printf "    disabled tracing branch %6.2f ns\n" branch_ns;
  (* One more instrumented run to count the site hits exactly. *)
  let counter_value name = Obs.Metrics.value (Obs.Metrics.counter name) in
  let e0 = counter_value "des.events_executed" in
  let k0 = counter_value "hybrid.ticks" in
  let (), one = wall workload in
  let events = float_of_int (counter_value "des.events_executed" - e0) in
  let ticks = float_of_int (counter_value "hybrid.ticks" - k0) in
  (* Engine.step: counter + gauge + branch; tick: counter + flow-sample
     add + tick/solver/crossing branches. *)
  let est_ns =
    (events *. (incr_ns +. gauge_ns +. branch_ns))
    +. (ticks *. ((2. *. incr_ns) +. (3. *. branch_ns)))
  in
  let pct = est_ns /. (one *. 1e9) *. 100. in
  Printf.printf
    "\n  always-on cost for this run: %.0f instrumented sites -> %.3f%% of wall time\n"
    (events +. ticks) pct;
  Printf.printf
    "\nClaim check: with tracing disabled the instrumentation costs %s 5%%\n\
     of the run (%.3f%%) — a branch plus a handful of field updates per\n\
     event; enabling tracing pays x%.3f for a full execution timeline.\n"
    (if pct < 5. then "well under" else "MORE THAN") pct (enabled /. disabled)

(* ------------------------------------------------------------------ *)
(* FAULTS — fault-injection layer overhead on the E3/E4 workload        *)
(* ------------------------------------------------------------------ *)

let run_faults () =
  section_header "FAULTS" "fault layer — injection overhead on the E3 workload";
  let streamers = if !quick then 4 else 16 in
  let horizon = if !quick then 2. else 10. in
  let best_of reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let (), t = wall f in
      if t < !best then best := t
    done;
    !best
  in
  let spec_of text =
    match Fault.Spec.of_string text with
    | Ok s -> s
    | Error msg -> failwith ("run_faults: bad spec: " ^ msg)
  in
  let time_with prepare =
    let run () =
      let engine = e3_engine streamers in
      prepare engine;
      Hybrid.Engine.run_until engine horizon
    in
    run () (* warm-up *);
    best_of 3 run
  in
  let baseline = time_with (fun _ -> ()) in
  let empty =
    time_with (fun e -> ignore (Hybrid.Engine.apply_fault_spec e Fault.Spec.empty))
  in
  (* Every DPort write rewritten: the worst-case active flow-fault path. *)
  let active =
    time_with (fun e ->
        ignore
          (Hybrid.Engine.apply_fault_spec e
             (spec_of "seed 1\ncorrupt flow * scale=1.000001 p=1\n")))
  in
  (* Supervised sync path (try/with + finiteness scan), no faults firing. *)
  let supervised =
    time_with (fun e ->
        ignore (Hybrid.Engine.apply_fault_spec e (spec_of "seed 1\nsupervise restart\n")))
  in
  Printf.printf "workload: %d thermal streamers at 100 Hz, %g simulated seconds\n\n"
    streamers horizon;
  Printf.printf "  %-40s %10.2f ms  (x%.3f)\n" "no fault layer attached"
    (baseline *. 1e3) 1.;
  Printf.printf "  %-40s %10.2f ms  (x%.3f)\n" "empty spec attached"
    (empty *. 1e3) (empty /. baseline);
  Printf.printf "  %-40s %10.2f ms  (x%.3f)\n" "corrupt-all flow rule, p=1"
    (active *. 1e3) (active /. baseline);
  Printf.printf "  %-40s %10.2f ms  (x%.3f)\n" "supervised (restart), no faults"
    (supervised *. 1e3) (supervised /. baseline);
  record_json "faults"
    (Obs.Json.Obj
       [ ("streamers", Obs.Json.Int streamers);
         ("horizon_s", Obs.Json.Float horizon);
         ("baseline_ms", Obs.Json.Float (baseline *. 1e3));
         ("empty_spec_ms", Obs.Json.Float (empty *. 1e3));
         ("active_ms", Obs.Json.Float (active *. 1e3));
         ("supervised_ms", Obs.Json.Float (supervised *. 1e3));
         ("empty_over_baseline", Obs.Json.Float (empty /. baseline));
         ("active_over_baseline", Obs.Json.Float (active /. baseline));
         ("supervised_over_baseline", Obs.Json.Float (supervised /. baseline)) ]);
  Printf.printf
    "\nClaim check: an attached-but-empty fault layer costs a load and a\n\
     branch per hook site (within noise of no layer at all); only active\n\
     rules and supervision pay real per-tick cost.\n"

(* ------------------------------------------------------------------ *)
(* CAUSAL — flight-recorder overhead and crash-report shape             *)
(* ------------------------------------------------------------------ *)

let run_causal () =
  section_header "CAUSAL"
    "causality layer — flight-recorder overhead and crash-report shape";
  let streamers = if !quick then 4 else 16 in
  let horizon = if !quick then 2. else 10. in
  let workload () =
    let engine = e3_engine streamers in
    Hybrid.Engine.run_until engine horizon
  in
  let best_of reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let (), t = wall f in
      if t < !best then best := t
    done;
    !best
  in
  workload () (* warm-up *);
  (* Interleave the two arms: on a shared machine, back-to-back blocks
     confound the comparison with load drift; alternating pairs and
     taking each arm's best cancels it. *)
  let off = ref infinity and on = ref infinity in
  for _ = 1 to if !quick then 3 else 7 do
    Obs.Flightrec.set_enabled false;
    let t = best_of 1 workload in
    if t < !off then off := t;
    Obs.Flightrec.set_enabled true;
    let t = best_of 1 workload in
    if t < !on then on := t
  done;
  let off = !off and on = !on in
  Printf.printf "workload: %d thermal streamers at 100 Hz, %g simulated seconds\n\n"
    streamers horizon;
  Printf.printf "  %-36s %10.2f ms\n" "flight recorder disabled" (off *. 1e3);
  Printf.printf "  %-36s %10.2f ms  (x%.3f)\n" "flight recorder enabled (default)"
    (on *. 1e3) (on /. off);
  (* Crash-report shape: run a diverging supervised engine with a crash
     directory configured and validate what lands on disk. *)
  let crash_dir = "_causal_crash" in
  if not (Sys.file_exists crash_dir) then Unix.mkdir crash_dir 0o755;
  Obs.Crash_report.reset ();
  Obs.Crash_report.set_dir (Some crash_dir);
  let bomb =
    Hybrid.Streamer.leaf "bomb" ~rate:0.01 ~dim:1 ~init:[| 1. |]
      ~dports:[ Hybrid.Streamer.dport_out "x" ]
      ~outputs:(Hybrid.Streamer.state_outputs [ (0, "x") ])
      ~rhs:(fun _ t y -> [| (if t > 0.5 then Float.nan else -.y.(0)) |])
  in
  let engine = Hybrid.Engine.create () in
  Hybrid.Engine.add_streamer engine ~role:"bomb" bomb;
  Hybrid.Engine.set_supervisor engine Fault.Supervisor.Escalate;
  (try Hybrid.Engine.run_until engine 2. with Hybrid.Engine.Diverged _ -> ());
  Obs.Crash_report.set_dir None;
  let report_path =
    match Obs.Crash_report.last_report () with
    | Some p -> p
    | None -> failwith "run_causal: diverging run produced no crash report"
  in
  let report = Obs.Json.of_string (read_file report_path) in
  let str_field name =
    match Option.bind (Obs.Json.member name report) Obs.Json.string_value with
    | Some s -> s
    | None -> failwith ("run_causal: report missing field " ^ name)
  in
  let chain_hops =
    match
      Option.bind (Obs.Json.member "chain" report) (Obs.Json.member "hops")
    with
    | Some (Obs.Json.List l) -> List.length l
    | _ -> failwith "run_causal: report carries no causal chain"
  in
  let flight_entries =
    match
      Option.bind (Obs.Json.member "flight_recorder" report)
        (Obs.Json.member "entries")
    with
    | Some (Obs.Json.List l) -> List.length l
    | _ -> failwith "run_causal: report carries no flight-recorder window"
  in
  Printf.printf
    "\n  crash report %s: reason=%s, %d chain hops, %d flight-recorder entries\n"
    report_path (str_field "reason") chain_hops flight_entries;
  record_json "causal"
    (Obs.Json.Obj
       [ ("streamers", Obs.Json.Int streamers);
         ("horizon_s", Obs.Json.Float horizon);
         ("flight_off_ms", Obs.Json.Float (off *. 1e3));
         ("flight_on_ms", Obs.Json.Float (on *. 1e3));
         ("on_over_off", Obs.Json.Float (on /. off));
         ("crash_report",
          Obs.Json.Obj
            [ ("schema", Obs.Json.Str (str_field "schema"));
              ("reason", Obs.Json.Str (str_field "reason"));
              ("chain_hops", Obs.Json.Int chain_hops);
              ("flight_entries", Obs.Json.Int flight_entries) ]) ]);
  Printf.printf
    "\nClaim check: the always-on flight recorder costs %s 3%% on the E3\n\
     workload (x%.3f) — interned labels into preallocated int arrays — and\n\
     a diverging supervised run leaves a complete post-mortem behind.\n"
    (if on /. off < 1.03 then "under" else "MORE THAN") (on /. off)

(* ------------------------------------------------------------------ *)
(* TELEMETRY — snapshot-stream overhead at the default cadence          *)
(* ------------------------------------------------------------------ *)

let run_telemetry () =
  section_header "TELEMETRY"
    "telemetry stream — JSONL emitter overhead at the default cadence";
  let streamers = if !quick then 4 else 16 in
  let horizon = if !quick then 2. else 10. in
  let sink = Buffer.create (1 lsl 16) in
  let records = ref 0 and bytes = ref 0 and dense_records = ref 1 in
  let workload_off () =
    let engine = e3_engine streamers in
    Hybrid.Engine.run_until engine horizon
  in
  let workload_on () =
    Buffer.clear sink;
    Obs.Telemetry.configure (Buffer.add_string sink);
    let engine = e3_engine streamers in
    Hybrid.Engine.run_until engine horizon;
    records := Obs.Telemetry.records ();
    bytes := Buffer.length sink;
    Obs.Telemetry.stop ()
  in
  (* Third arm at a 10x denser cadence: the default-cadence delta is a
     couple hundred microseconds, which a shared machine's load jitter
     swamps in a direct A/B; 10x the records makes the slope (marginal
     cost per record) stand well clear of the noise floor. *)
  let workload_dense () =
    Buffer.clear sink;
    Obs.Telemetry.configure ~every:(Obs.Telemetry.default_every /. 10.)
      (Buffer.add_string sink);
    let engine = e3_engine streamers in
    Hybrid.Engine.run_until engine horizon;
    dense_records := Obs.Telemetry.records ();
    Obs.Telemetry.stop ()
  in
  workload_off () (* warm-up *);
  workload_on ();
  (* Paired rounds: each round times off and on back to back (order
     alternating) and contributes one on/off ratio; the recorded ratio is
     the median over rounds. A machine-wide slowdown inflates both arms
     of a pair together, so per-pair ratios stay honest where a ratio of
     cross-round minima would not — at this workload size the true delta
     is a few hundred microseconds, well under shared-machine jitter. *)
  let off = ref infinity and on = ref infinity and dense = ref infinity in
  let ratios = ref [] in
  let rounds = if !quick then 3 else 21 in
  (* Each arm starts from an empty minor heap: the on arm allocates the
     record strings, and without this the pair can differ by a whole
     minor collection landing inside one timed window but not the
     other. *)
  let timed w = Gc.full_major (); wall w in
  for i = 1 to rounds do
    let t_off, t_on =
      if i land 1 = 0 then begin
        let (), t_on = timed workload_on in
        let (), t_off = timed workload_off in
        (t_off, t_on)
      end
      else begin
        let (), t_off = timed workload_off in
        let (), t_on = timed workload_on in
        (t_off, t_on)
      end
    in
    if t_off < !off then off := t_off;
    if t_on < !on then on := t_on;
    ratios := (t_on /. t_off) :: !ratios;
    let (), t = timed workload_dense in
    if t < !dense then dense := t
  done;
  let off = !off and on = !on in
  let ratio =
    let sorted = List.sort compare !ratios in
    List.nth sorted (rounds / 2)
  in
  let us_per_record =
    (!dense -. off) /. float_of_int !dense_records *. 1e6
  in
  (* Best estimate of the default-cadence overhead: records x marginal
     cost over the off baseline. The direct A/B delta at the default
     cadence is ~0.1 ms — under shared-machine load jitter — so the
     slope-derived ratio is the better-conditioned number; the raw
     paired median is recorded alongside for honesty. *)
  let slope_ratio =
    (off +. (float_of_int !records *. us_per_record *. 1e-6)) /. off
  in
  Printf.printf "workload: %d thermal streamers at 100 Hz, %g simulated seconds\n\n"
    streamers horizon;
  Printf.printf "  %-36s %10.2f ms\n" "telemetry off" (off *. 1e3);
  Printf.printf "  %-36s %10.2f ms  (x%.3f median of %d pairs)\n"
    (Printf.sprintf "telemetry on (every %gs sim)" Obs.Telemetry.default_every)
    (on *. 1e3) ratio rounds;
  Printf.printf "  %-36s %10s    (x%.4f from slope)\n"
    "overhead estimate" "" slope_ratio;
  Printf.printf "  %-36s %10.2f us  (slope at 10x cadence, %d records)\n"
    "marginal cost per record" us_per_record !dense_records;
  Printf.printf "  %-36s %10d (%d bytes)\n" "records per run" !records !bytes;
  record_json "telemetry"
    (Obs.Json.Obj
       [ ("schema_version", Obs.Json.Int 1);
         ("streamers", Obs.Json.Int streamers);
         ("horizon_s", Obs.Json.Float horizon);
         ("every_s", Obs.Json.Float Obs.Telemetry.default_every);
         ("records", Obs.Json.Int !records);
         ("bytes", Obs.Json.Int !bytes);
         ("telemetry_off_ms", Obs.Json.Float (off *. 1e3));
         ("telemetry_on_ms", Obs.Json.Float (on *. 1e3));
         ("emit_us_per_record", Obs.Json.Float us_per_record);
         ("on_over_off", Obs.Json.Float slope_ratio);
         ("on_over_off_direct", Obs.Json.Float ratio) ]);
  Printf.printf
    "\nClaim check: streaming one record per 0.1 simulated seconds costs %s\n\
     2%% on the E3 workload (x%.4f, slope-derived; direct paired median\n\
     x%.3f) — the tick hook is a float compare and emission happens on\n\
     cadence boundaries only.\n"
    (if slope_ratio < 1.02 then "under" else "MORE THAN") slope_ratio ratio

(* ------------------------------------------------------------------ *)
(* PROFILE — per-entity attribution overhead and rollup shape           *)
(* ------------------------------------------------------------------ *)

let run_profile () =
  section_header "PROFILE"
    "profiler — per-entity attribution overhead and top rollup";
  let streamers = if !quick then 4 else 16 in
  let horizon = if !quick then 2. else 10. in
  let workload () =
    let engine = e3_engine streamers in
    Hybrid.Engine.run_until engine horizon
  in
  workload () (* warm-up *);
  (* Paired rounds with a median ratio, as in the telemetry section. *)
  let off = ref infinity and on = ref infinity in
  let ratios = ref [] in
  let rounds = if !quick then 3 else 11 in
  let arm enabled =
    Obs.Profile.set_enabled enabled;
    Gc.full_major ();
    let (), t = wall workload in
    t
  in
  for i = 1 to rounds do
    let t_off, t_on =
      if i land 1 = 0 then begin
        let t_on = arm true in
        let t_off = arm false in
        (t_off, t_on)
      end
      else begin
        let t_off = arm false in
        let t_on = arm true in
        (t_off, t_on)
      end
    in
    if t_off < !off then off := t_off;
    if t_on < !on then on := t_on;
    ratios := (t_on /. t_off) :: !ratios
  done;
  let ratio =
    let sorted = List.sort compare !ratios in
    List.nth sorted (rounds / 2)
  in
  (* One clean accounting run for the recorded rollup (the timing reps
     accumulated into the same slots). *)
  Obs.Profile.reset ();
  workload ();
  Obs.Profile.set_enabled false;
  let off = !off and on = !on in
  Printf.printf "workload: %d thermal streamers at 100 Hz, %g simulated seconds\n\n"
    streamers horizon;
  Printf.printf "  %-36s %10.2f ms\n" "profiler off" (off *. 1e3);
  Printf.printf "  %-36s %10.2f ms  (x%.3f median of %d pairs)\n"
    "profiler on" (on *. 1e3) ratio rounds;
  Printf.printf "\n  top entities by self time:\n";
  Format.printf "%a@?" Obs.Profile.pp_top 5;
  let rows = Obs.Profile.top 3 in
  record_json "profile"
    (Obs.Json.Obj
       [ ("schema_version", Obs.Json.Int 1);
         ("streamers", Obs.Json.Int streamers);
         ("horizon_s", Obs.Json.Float horizon);
         ("entities", Obs.Json.Int (List.length (Obs.Profile.rows ())));
         ("profile_off_ms", Obs.Json.Float (off *. 1e3));
         ("profile_on_ms", Obs.Json.Float (on *. 1e3));
         ("on_over_off", Obs.Json.Float ratio);
         ("top",
          Obs.Json.List
            (List.map
               (fun r ->
                  Obs.Json.Obj
                    [ ("kind", Obs.Json.Str r.Obs.Profile.r_kind);
                      ("name", Obs.Json.Str r.Obs.Profile.r_name);
                      ("count", Obs.Json.Int r.Obs.Profile.r_count);
                      ("self_ns", Obs.Json.Int r.Obs.Profile.r_self_ns) ])
               rows)) ]);
  Obs.Profile.reset ();
  Printf.printf
    "\nClaim check: full per-entity attribution (two clock reads + two\n\
     minor-word reads per frame) costs x%.3f on the E3 workload; solver\n\
     kernels dominate self time, as the architecture predicts.\n"
    ratio

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let t1 =
    Test.make ~name:"table1-stereotype-registry"
      (Staged.stage (fun () ->
           List.iter (fun st -> ignore (Hybrid.Stereotype.implementing_module st))
             Hybrid.Stereotype.all))
  in
  let f1 =
    let strategy = Hybrid.Strategy.create () in
    Hybrid.Strategy.on strategy ~signal:"set"
      (Hybrid.Strategy.set_param_from_payload "k");
    let table = Hashtbl.create 4 in
    Hashtbl.replace table "k" 1.;
    let control =
      { Hybrid.Strategy.set_param = Hashtbl.replace table;
        get_param = Hashtbl.find table;
        get_state = (fun () -> [| 0. |]);
        set_state = (fun _ -> ());
        set_rhs = (fun _ -> ());
        emit = (fun ~sport:_ _ -> ());
        now = (fun () -> 0.) }
    in
    let event = Statechart.Event.make ~value:(Dataflow.Value.Float 2.) "set" in
    Test.make ~name:"figure1-strategy-dispatch"
      (Staged.stage (fun () -> ignore (Hybrid.Strategy.handle strategy control event)))
  in
  let f2 =
    Test.make ~name:"figure2-typecheck-model"
      (Staged.stage (fun () ->
           ignore
             (check_dsl
                "model M streamer S { rate 0.1; dport out y; init x = 0.0; eq x' = -x; output y = x; }")))
  in
  let f3 =
    let g = Dataflow.Graph.create () in
    let src =
      Dataflow.Graph.add_node g ~name:"src" ~inputs:[]
        ~outputs:[ ("out", Dataflow.Flow_type.float_flow) ]
    in
    let relay =
      Dataflow.Graph.add_relay g ~name:"r" Dataflow.Flow_type.float_flow ~fanout:2
    in
    let sink name =
      Dataflow.Graph.add_node g ~name
        ~inputs:[ ("in", Dataflow.Flow_type.float_flow) ] ~outputs:[]
    in
    let a = sink "a" and b = sink "b" in
    Dataflow.Graph.connect_exn g ~src:(src, "out") ~dst:(relay, "in");
    Dataflow.Graph.connect_exn g ~src:(relay, "out1") ~dst:(a, "in");
    Dataflow.Graph.connect_exn g ~src:(relay, "out2") ~dst:(b, "in");
    (match Dataflow.Graph.output_port src "out" with
     | Some p -> Dataflow.Port.write p (Dataflow.Value.Float 1.)
     | None -> ());
    Test.make ~name:"figure3-flow-propagation"
      (Staged.stage (fun () -> ignore (Dataflow.Graph.propagate_from g src)))
  in
  let e1 =
    (* The steady-state step kernel: in-place rhs + preallocated
       workspace, i.e. exactly what a guard-free engine tick runs. *)
    let sys =
      Ode.System.create_inplace ~dim:1 (fun _tcell y dy ->
          dy.(0) <-
            (-.(y.(0) -. thermal_ambient) /. thermal_tau) +. thermal_gain)
    in
    let ws = Ode.Fixed.workspace ~dim:1 in
    let y = [| 18. |] in
    Test.make ~name:"e1-rk4-step"
      (Staged.stage (fun () ->
           Ode.Fixed.step_into Ode.Fixed.Rk4 sys ~ws ~t:0. ~dt:1e-3 y))
  in
  let e2 =
    let e = Des.Engine.create () in
    let server = Baseline.Event_server.create e ~handler_cost:1e-4 in
    Test.make ~name:"e2-event-server-submit"
      (Staged.stage (fun () -> Baseline.Event_server.submit server))
  in
  let e3 =
    let e = Des.Engine.create () in
    Test.make ~name:"e3-des-event-dispatch"
      (Staged.stage (fun () ->
           ignore (Des.Engine.schedule e ~delay:0.001 (fun () -> ()));
           ignore (Des.Engine.run_until e (Des.Engine.now e +. 0.002))))
  in
  let e4 =
    let clock = Hybrid.Time_service.create (Des.Engine.create ()) in
    let solver =
      Hybrid.Solver.create ~dim:1 ~init:[| 18. |] ~params:[ ("duty", 1.) ]
        ~input:(fun _ -> 0.) ~clock ~t0:0.
        ~rhs_into:(fun (env : Hybrid.Solver.env) _tcell y dy ->
            dy.(0) <-
              (-.(y.(0) -. thermal_ambient) /. thermal_tau)
              +. (thermal_gain *. env.Hybrid.Solver.param "duty"))
        (fun env t y -> thermal_rhs (env.Hybrid.Solver.param "duty") t y)
    in
    Hybrid.Solver.set_guards solver [];
    let target = ref 0. in
    Test.make ~name:"e4-solver-advance-one-tick"
      (Staged.stage (fun () ->
           target := !target +. 0.05;
           Hybrid.Solver.advance_prepared solver ~until:!target
             ~on_crossing:(fun _ -> ())))
  in
  let e5 =
    let tasks =
      Hybrid.Threading.tasks_for
        ~wcet_of:(fun _ p -> 0.1 *. p)
        [ ("a", 0.01); ("b", 0.004); ("c", 0.001) ]
    in
    Test.make ~name:"e5-rm-response-time-analysis"
      (Staged.stage (fun () -> ignore (Rt.Rm.schedulable tasks)))
  in
  [ t1; f1; f2; f3; e1; e2; e3; e4; e5 ]

(* ------------------------------------------------------------------ *)
(* SHARD — domain-sharded runtime vs the single-domain engine           *)
(* ------------------------------------------------------------------ *)

(* An e3_cells-style model at bench scale: [cells] independent
   Src -> Flt -> Flt chains, one pacer capsule linked to the first four
   sources. Each cell is its own runtime co-location group, so with a
   constant signal latency the plan spreads cells round-robin over the
   domains. Generated as DSL source because only the DSL path reaches
   the sharded engine. *)
let shard_model cells =
  let b = Buffer.create (4096 + (cells * 160)) in
  Buffer.add_string b
    "model ShardBench\n\n\
     flowtype Sig { value: float }\n\n\
     protocol Pace {\n\
    \  in nudge;\n\
     }\n\n\
     streamer Src {\n\
    \  rate 0.05;\n\
    \  dport out y : Sig;\n\
    \  sport ctl : Pace;\n\
    \  param bias = 0.0;\n\
    \  init x = 0.1;\n\
    \  eq x' = -x + bias;\n\
    \  output y = x + sin(0.7 * t);\n\
    \  when nudge set bias = 1.0 - bias;\n\
     }\n\n\
     streamer Flt {\n\
    \  rate 0.05;\n\
    \  dport in u : Sig;\n\
    \  dport out y : Sig;\n\
    \  param tau = 0.4;\n\
    \  init x = 0.0;\n\
    \  eq x' = (u - x) / tau;\n\
    \  output y = x;\n\
     }\n\n\
     capsule Pacer {\n\
    \  port c1 : Pace conjugated;\n\
    \  port c2 : Pace conjugated;\n\
    \  port c3 : Pace conjugated;\n\
    \  port c4 : Pace conjugated;\n\
    \  timer tick = 0.23;\n\
    \  statemachine {\n\
    \    initial S1;\n\
    \    state S1 { on tick -> S2 send nudge via c1; }\n\
    \    state S2 { on tick -> S3 send nudge via c2; }\n\
    \    state S3 { on tick -> S4 send nudge via c3; }\n\
    \    state S4 { on tick -> S1 send nudge via c4; }\n\
    \  }\n\
     }\n\n\
     system {\n\
    \  capsule pace : Pacer;\n";
  for c = 0 to cells - 1 do
    Buffer.add_string b
      (Printf.sprintf
         "  streamer g%ds : Src in pace;\n\
        \  streamer g%df : Flt in pace;\n\
        \  streamer g%dg : Flt in pace;\n"
         c c c)
  done;
  for c = 0 to cells - 1 do
    Buffer.add_string b
      (Printf.sprintf "  flow g%ds.y -> g%df.u;\n  flow g%df.y -> g%dg.u;\n"
         c c c c)
  done;
  for i = 1 to 4 do
    Buffer.add_string b
      (Printf.sprintf "  link g%ds.ctl -- pace.c%d;\n" (i - 1) i)
  done;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* The committed "before" for the event-queue rework: BENCH_PR6's e3
   point at the same streamer count, recorded with the binary-heap
   queue. Informational — the file is only present when benching from
   the repo root. *)
let pr6_e3_us_per ~streamers =
  let candidates = [ "BENCH_PR6.json"; "../BENCH_PR6.json" ] in
  let of_file path =
    match Obs.Json.of_string (read_file path) with
    | exception (Sys_error _ | Obs.Json.Parse_error _) -> None
    | j ->
      Option.bind (Obs.Json.member "e3" j) (fun e3 ->
          Option.bind (Obs.Json.member "points" e3) (function
            | Obs.Json.List pts ->
              List.find_map
                (fun p ->
                   match
                     ( Obs.Json.member "streamers" p,
                       Obs.Json.member "us_per_streamer_sec" p )
                   with
                   | Some (Obs.Json.Int n), Some (Obs.Json.Float v)
                     when n = streamers -> Some v
                   | _ -> None)
                pts
            | _ -> None))
  in
  List.find_map of_file candidates

let run_shard () =
  section_header "SHARD"
    "domain-sharded runtime — epoch-synchronized domains vs one engine";
  let cells = if !quick then 8 else 341 in
  let horizon = if !quick then 2. else 5. in
  let domain_counts = if !quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let lookahead = 0.013 in
  let latency = Rt.Channel.Constant lookahead in
  let checked = Dsl.Typecheck.check (Dsl.Parser.parse (shard_model cells)) in
  let streamers = 3 * cells in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf
    "%d streamers in %d cells (Src -> Flt -> Flt), 20 Hz, %g simulated s,\n\
     signal latency (= lookahead) %g s; host reports %d usable core(s)\n\n"
    streamers cells horizon lookahead host_cores;
  (* The event-queue rework (bucketed near-term wheel replacing the
     binary heap for the aligned-grid common case), measured on the raw
     E3 workload at the 256-streamer point where the heap's O(log n)
     pop cost set the PR6 scaling cliff. Measured before the big
     sharded workload, from a compacted heap, so earlier sections don't
     distort it. *)
  let eq_streamers = 256 in
  let eq_horizon = if !quick then 2. else 10. in
  let eq_engine = e3_engine eq_streamers in
  Gc.compact ();
  let (), eq_wall =
    wall (fun () -> Hybrid.Engine.run_until eq_engine eq_horizon)
  in
  let eq_after = eq_wall *. 1e6 /. (float_of_int eq_streamers *. eq_horizon) in
  let eq_before = pr6_e3_us_per ~streamers:eq_streamers in
  Printf.printf
    "event queue, raw E3 at %d streamers: %.2f us/streamer-sec%s\n\n"
    eq_streamers eq_after
    (match eq_before with
     | Some b ->
       Printf.sprintf " (BENCH_PR6 heap: %.2f, x%.2f)" b (b /. eq_after)
     | None -> " (BENCH_PR6 baseline not found here)");
  let single_ms =
    let { Dsl.Elaborate.engine; _ } =
      Dsl.Elaborate.elaborate ~signal_latency:latency checked
    in
    let (), t = wall (fun () -> Hybrid.Engine.run_until engine horizon) in
    t *. 1e3
  in
  Printf.printf "  %-26s %10.1f ms\n" "single-domain engine" single_ms;
  let points =
    List.map
      (fun domains ->
         let plan =
           match
             Shard.Plan.compute ~signal_latency:latency ~shards:domains
               checked
           with
           | Ok p -> p
           | Error msgs -> failwith (String.concat "; " msgs)
         in
         let eng = Shard.Engine.create ~signal_latency:latency plan checked in
         let (), t = wall (fun () -> Shard.Engine.run eng ~until:horizon) in
         let ms = t *. 1e3 in
         Printf.printf "  %-26s %10.1f ms  (x%.2f vs single)\n"
           (Printf.sprintf "sharded, %d domain(s)" domains)
           ms (single_ms /. ms);
         Obs.Json.Obj
           [ ("domains", Obs.Json.Int domains);
             ("wall_ms", Obs.Json.Float ms);
             ("speedup_over_single", Obs.Json.Float (single_ms /. ms)) ])
      domain_counts
  in
  record_json "shard"
    (Obs.Json.Obj
       [ ("schema_version", Obs.Json.Int 1);
         ("streamers", Obs.Json.Int streamers);
         ("cells", Obs.Json.Int cells);
         ("horizon_s", Obs.Json.Float horizon);
         ("lookahead_s", Obs.Json.Float lookahead);
         ("host_cores", Obs.Json.Int host_cores);
         ("single_domain_ms", Obs.Json.Float single_ms);
         ("points", Obs.Json.List points);
         ("event_queue",
          Obs.Json.Obj
            [ ("streamers", Obs.Json.Int eq_streamers);
              ("horizon_s", Obs.Json.Float eq_horizon);
              ("us_per_streamer_sec", Obs.Json.Float eq_after);
              ("us_per_streamer_sec_heap_before",
               match eq_before with
               | Some b -> Obs.Json.Float b
               | None -> Obs.Json.Null) ]) ]);
  Printf.printf
    "\nClaim check: the sharded runs stay bit-identical to the single\n\
     domain while paying one barrier per %g s lookahead window; actual\n\
     speedup needs real cores (host_cores above) — on a one-core host\n\
     the extra domains measure pure protocol overhead.\n"
    lookahead

let run_micro () =
  section_header "MICRO" "Bechamel microbenchmarks (one kernel per experiment)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"umh" (micro_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
       let est =
         match Analyze.OLS.estimates ols_result with
         | Some (e :: _) -> e
         | Some [] | None -> nan
       in
       rows := (name, est) :: !rows)
    results;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  List.iter
    (fun (name, est) -> Printf.printf "  %-42s %14.1f ns/run\n" name est)
    sorted;
  record_json "micro"
    (Obs.Json.Obj
       (List.map (fun (name, est) -> (name, Obs.Json.Float est)) sorted));
  Printf.printf "(monotonic clock, OLS fit over runs, 0.5 s quota each)\n"

(* ------------------------------------------------------------------ *)

let sections =
  [ ("table1", run_table1);
    ("figure1", run_figure1);
    ("figure2", run_figure2);
    ("figure3", run_figure3);
    ("e1", run_e1);
    ("e2", run_e2);
    ("e3", run_e3);
    ("e4", run_e4);
    ("e5", run_e5);
    ("e5b", run_e5b);
    ("a1", run_a1);
    ("a2", run_a2);
    ("a3", run_a3);
    ("obs", run_obs);
    ("faults", run_faults);
    ("causal", run_causal);
    ("telemetry", run_telemetry);
    ("profile", run_profile);
    ("shard", run_shard);
    ("micro", run_micro) ]

let write_json_report path =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string (Obs.Json.Obj (List.rev !json_report)));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse names json = function
    | [] -> (List.rev names, json)
    | "--quick" :: rest ->
      quick := true;
      parse names json rest
    | "--json" :: path :: rest -> parse names (Some path) rest
    | [ "--json" ] ->
      Printf.eprintf "--json requires a file argument\n";
      exit 2
    | name :: rest -> parse (name :: names) json rest
  in
  match parse [] None args with
  | [ "--list" ], _ -> List.iter (fun (name, _) -> print_endline name) sections
  | [], json ->
    Printf.printf
      "umh experiment harness — reproducing every exhibit of the paper\n\
       (DATE 2005, \"Unified Modeling of Complex Real-Time Control Systems\")\n";
    List.iter (fun (_, run) -> run ()) sections;
    Option.iter write_json_report json
  | names, json ->
    List.iter
      (fun name ->
         match List.assoc_opt name sections with
         | Some run -> run ()
         | None ->
           Printf.eprintf "unknown section %S (try --list)\n" name;
           exit 2)
      names;
    Option.iter write_json_report json
