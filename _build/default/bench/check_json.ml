(* CI validator for the machine-readable JSON the toolchain emits:
   bench reports from the harness's --json flag, plus the analysis and
   partition files from `umh analyze` (dispatched on the top-level
   "schema" tag). Exits non-zero (failing the dune runtest alias) when
   a file is missing, unparseable, or structurally wrong. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_json: " ^ s); exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> fail "cannot read %s: %s" path e

let require_float name = function
  | Some (Obs.Json.Float _ | Obs.Json.Int _) -> ()
  | Some _ -> fail "field %S is not a number" name
  | None -> fail "missing field %S" name

let require_str name = function
  | Some (Obs.Json.Str _) -> ()
  | Some _ -> fail "field %S is not a string" name
  | None -> fail "missing field %S" name

let require_bool name = function
  | Some (Obs.Json.Bool _) -> ()
  | Some _ -> fail "field %S is not a bool" name
  | None -> fail "missing field %S" name

let require_list name = function
  | Some (Obs.Json.List l) -> l
  | Some _ -> fail "field %S is not a list" name
  | None -> fail "missing field %S" name

let require_version j =
  match Obs.Json.member "version" j with
  | Some (Obs.Json.Int 1) -> ()
  | Some _ -> fail "\"version\" must be 1"
  | None -> fail "missing \"version\""

(* One shard of an umh-analysis / umh-partition file. The full analysis
   shards additionally carry the RTA verdicts. *)
let check_shard ~verdicts s =
  require_float "id" (Obs.Json.member "id" s);
  (match require_list "members" (Obs.Json.member "members" s) with
   | [] -> fail "shard with no members"
   | members ->
     List.iter
       (fun m ->
          require_str "member.name" (Obs.Json.member "name" m);
          require_str "member.kind" (Obs.Json.member "kind" m))
       members);
  require_float "utilization" (Obs.Json.member "utilization" s);
  require_bool "feasible" (Obs.Json.member "feasible" s);
  if verdicts then
    List.iter
      (fun v ->
         require_str "verdict.task" (Obs.Json.member "task" v);
         require_float "verdict.priority" (Obs.Json.member "priority" v);
         require_float "verdict.deadline_s" (Obs.Json.member "deadline_s" v);
         require_bool "verdict.rm_ok" (Obs.Json.member "rm_ok" v);
         require_bool "verdict.diverges" (Obs.Json.member "diverges" v))
      (require_list "verdicts" (Obs.Json.member "verdicts" s))

let check_analysis path json =
  require_version json;
  require_str "model" (Obs.Json.member "model" json);
  require_str "name" (Obs.Json.member "name" json);
  require_bool "schedulable" (Obs.Json.member "schedulable" json);
  let tasks = require_list "tasks" (Obs.Json.member "tasks" json) in
  List.iter
    (fun t ->
       require_str "task.name" (Obs.Json.member "name" t);
       require_str "task.kind" (Obs.Json.member "kind" t);
       require_float "task.period_s" (Obs.Json.member "period_s" t);
       require_float "task.wcet_s" (Obs.Json.member "wcet_s" t);
       require_str "task.wcet_source" (Obs.Json.member "wcet_source" t))
    tasks;
  let shards = require_list "shards" (Obs.Json.member "shards" json) in
  if tasks <> [] && shards = [] then fail "tasks present but no shards";
  List.iter (check_shard ~verdicts:true) shards;
  ignore (require_list "issues" (Obs.Json.member "issues" json));
  ignore (require_list "forced_groups" (Obs.Json.member "forced_groups" json));
  ignore (require_list "races" (Obs.Json.member "races" json));
  ignore (require_list "interleavings" (Obs.Json.member "interleavings" json));
  ignore (require_list "cross_edges" (Obs.Json.member "cross_edges" json));
  Printf.printf "check_json: %s ok (umh-analysis, %d tasks, %d shards)\n" path
    (List.length tasks) (List.length shards)

let check_partition path json =
  require_version json;
  require_str "model" (Obs.Json.member "model" json);
  let shards = require_list "shards" (Obs.Json.member "shards" json) in
  if shards = [] then fail "partition with no shards";
  List.iter (check_shard ~verdicts:false) shards;
  ignore (require_list "forced_groups" (Obs.Json.member "forced_groups" json));
  List.iter
    (fun e ->
       require_str "cross_edge.src" (Obs.Json.member "src" e);
       require_str "cross_edge.dst" (Obs.Json.member "dst" e);
       require_str "cross_edge.kind" (Obs.Json.member "kind" e))
    (require_list "cross_edges" (Obs.Json.member "cross_edges" json));
  Printf.printf "check_json: %s ok (umh-partition, %d shards)\n" path
    (List.length shards)

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: check_json FILE" in
  let json =
    match Obs.Json.of_string (read_file path) with
    | j -> j
    | exception Obs.Json.Parse_error msg -> fail "%s: %s" path msg
  in
  (match Obs.Json.member "schema" json with
   | Some (Obs.Json.Str "umh-analysis") ->
     check_analysis path json;
     exit 0
   | Some (Obs.Json.Str "umh-partition") ->
     check_partition path json;
     exit 0
   | Some _ | None -> ());
  (* e3: at least one point carrying the scaling metric *)
  let e3 =
    match Obs.Json.member "e3" json with
    | Some j -> j
    | None -> fail "missing section \"e3\""
  in
  let points =
    match Obs.Json.member "points" e3 with
    | Some (Obs.Json.List (_ :: _ as pts)) -> pts
    | Some _ -> fail "\"e3\".points is not a non-empty list"
    | None -> fail "missing \"e3\".points"
  in
  List.iter
    (fun p -> require_float "us_per_streamer_sec" (Obs.Json.member "us_per_streamer_sec" p))
    points;
  (* e4: the three timings and the overhead factors *)
  let e4 =
    match Obs.Json.member "e4" json with
    | Some j -> j
    | None -> fail "missing section \"e4\""
  in
  List.iter
    (fun field -> require_float field (Obs.Json.member field e4))
    [ "raw_ms"; "hybrid_ms"; "translation_ms"; "hybrid_over_raw";
      "translation_over_raw" ];
  (* faults: the overhead comparison the fault layer's zero-cost claim
     rests on *)
  let faults =
    match Obs.Json.member "faults" json with
    | Some j -> j
    | None -> fail "missing section \"faults\""
  in
  List.iter
    (fun field -> require_float field (Obs.Json.member field faults))
    [ "baseline_ms"; "empty_spec_ms"; "active_ms"; "supervised_ms";
      "empty_over_baseline"; "active_over_baseline";
      "supervised_over_baseline" ];
  (* causal: flight-recorder overhead numbers and the crash-report shape
     the post-mortem pipeline promises *)
  let causal =
    match Obs.Json.member "causal" json with
    | Some j -> j
    | None -> fail "missing section \"causal\""
  in
  List.iter
    (fun field -> require_float field (Obs.Json.member field causal))
    [ "flight_off_ms"; "flight_on_ms"; "on_over_off" ];
  let crash =
    match Obs.Json.member "crash_report" causal with
    | Some j -> j
    | None -> fail "missing \"causal\".crash_report"
  in
  (match Obs.Json.member "schema" crash with
   | Some (Obs.Json.Str "umh-crash-report") -> ()
   | Some _ -> fail "crash_report.schema is not \"umh-crash-report\""
   | None -> fail "missing crash_report.schema");
  (match Obs.Json.member "reason" crash with
   | Some (Obs.Json.Str _) -> ()
   | _ -> fail "missing crash_report.reason");
  (match Obs.Json.member "chain_hops" crash with
   | Some (Obs.Json.Int n) when n > 0 -> ()
   | _ -> fail "crash_report.chain_hops must be a positive int");
  (match Obs.Json.member "flight_entries" crash with
   | Some (Obs.Json.Int n) when n > 0 -> ()
   | _ -> fail "crash_report.flight_entries must be a positive int");
  (* telemetry / profile: optional (older reports predate them — the
     perf trajectory must keep validating PR5-era files) but strict when
     present: a malformed section fails, never silently passes. Both are
     schema-versioned so a future shape change must bump the int. *)
  let positive_int section name = function
    | Some (Obs.Json.Int n) when n > 0 -> ()
    | Some _ -> fail "%s.%s must be a positive int" section name
    | None -> fail "missing %s.%s" section name
  in
  let telemetry_present =
    match Obs.Json.member "telemetry" json with
    | None -> false
    | Some tel ->
      (match Obs.Json.member "schema_version" tel with
       | Some (Obs.Json.Int 1) -> ()
       | Some _ -> fail "telemetry.schema_version must be 1"
       | None -> fail "missing telemetry.schema_version");
      List.iter
        (fun field -> require_float field (Obs.Json.member field tel))
        [ "every_s"; "telemetry_off_ms"; "telemetry_on_ms";
          "emit_us_per_record"; "on_over_off" ];
      positive_int "telemetry" "records" (Obs.Json.member "records" tel);
      positive_int "telemetry" "streamers" (Obs.Json.member "streamers" tel);
      true
  in
  let profile_present =
    match Obs.Json.member "profile" json with
    | None -> false
    | Some prof ->
      (match Obs.Json.member "schema_version" prof with
       | Some (Obs.Json.Int 1) -> ()
       | Some _ -> fail "profile.schema_version must be 1"
       | None -> fail "missing profile.schema_version");
      List.iter
        (fun field -> require_float field (Obs.Json.member field prof))
        [ "profile_off_ms"; "profile_on_ms"; "on_over_off" ];
      positive_int "profile" "entities" (Obs.Json.member "entities" prof);
      (match Obs.Json.member "top" prof with
       | Some (Obs.Json.List (_ :: _ as rows)) ->
         List.iter
           (fun r ->
              (match Obs.Json.member "name" r with
               | Some (Obs.Json.Str _) -> ()
               | _ -> fail "profile.top entry missing string \"name\"");
              positive_int "profile.top" "count" (Obs.Json.member "count" r))
           rows
       | Some _ -> fail "profile.top is not a non-empty list"
       | None -> fail "missing profile.top");
      true
  in
  (* shard: like telemetry/profile, optional (pre-sharding reports lack
     it) but strict when present. *)
  let shard_present =
    match Obs.Json.member "shard" json with
    | None -> false
    | Some sh ->
      (match Obs.Json.member "schema_version" sh with
       | Some (Obs.Json.Int 1) -> ()
       | Some _ -> fail "shard.schema_version must be 1"
       | None -> fail "missing shard.schema_version");
      List.iter
        (fun field -> require_float field (Obs.Json.member field sh))
        [ "horizon_s"; "lookahead_s"; "single_domain_ms" ];
      positive_int "shard" "streamers" (Obs.Json.member "streamers" sh);
      positive_int "shard" "cells" (Obs.Json.member "cells" sh);
      positive_int "shard" "host_cores" (Obs.Json.member "host_cores" sh);
      (match Obs.Json.member "points" sh with
       | Some (Obs.Json.List (_ :: _ as pts)) ->
         List.iter
           (fun p ->
              positive_int "shard.points" "domains"
                (Obs.Json.member "domains" p);
              require_float "shard.points.wall_ms"
                (Obs.Json.member "wall_ms" p);
              require_float "shard.points.speedup_over_single"
                (Obs.Json.member "speedup_over_single" p))
           pts
       | Some _ -> fail "shard.points is not a non-empty list"
       | None -> fail "missing shard.points");
      (match Obs.Json.member "event_queue" sh with
       | Some eq ->
         positive_int "shard.event_queue" "streamers"
           (Obs.Json.member "streamers" eq);
         require_float "shard.event_queue.us_per_streamer_sec"
           (Obs.Json.member "us_per_streamer_sec" eq)
       | None -> fail "missing shard.event_queue");
      true
  in
  Printf.printf "check_json: %s ok (%d e3 points%s%s%s)\n" path
    (List.length points)
    (if telemetry_present then ", telemetry" else "")
    (if profile_present then ", profile" else "")
    (if shard_present then ", shard" else "")
