(* CI validator for the bench harness's --json output: parses the file
   and checks the sections the perf trajectory relies on are present and
   well-shaped. Exits non-zero (failing the dune runtest alias) when the
   report is missing, unparseable, or structurally wrong. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_json: " ^ s); exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> fail "cannot read %s: %s" path e

let require_float name = function
  | Some (Obs.Json.Float _ | Obs.Json.Int _) -> ()
  | Some _ -> fail "field %S is not a number" name
  | None -> fail "missing field %S" name

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: check_json FILE" in
  let json =
    match Obs.Json.of_string (read_file path) with
    | j -> j
    | exception Obs.Json.Parse_error msg -> fail "%s: %s" path msg
  in
  (* e3: at least one point carrying the scaling metric *)
  let e3 =
    match Obs.Json.member "e3" json with
    | Some j -> j
    | None -> fail "missing section \"e3\""
  in
  let points =
    match Obs.Json.member "points" e3 with
    | Some (Obs.Json.List (_ :: _ as pts)) -> pts
    | Some _ -> fail "\"e3\".points is not a non-empty list"
    | None -> fail "missing \"e3\".points"
  in
  List.iter
    (fun p -> require_float "us_per_streamer_sec" (Obs.Json.member "us_per_streamer_sec" p))
    points;
  (* e4: the three timings and the overhead factors *)
  let e4 =
    match Obs.Json.member "e4" json with
    | Some j -> j
    | None -> fail "missing section \"e4\""
  in
  List.iter
    (fun field -> require_float field (Obs.Json.member field e4))
    [ "raw_ms"; "hybrid_ms"; "translation_ms"; "hybrid_over_raw";
      "translation_over_raw" ];
  (* faults: the overhead comparison the fault layer's zero-cost claim
     rests on *)
  let faults =
    match Obs.Json.member "faults" json with
    | Some j -> j
    | None -> fail "missing section \"faults\""
  in
  List.iter
    (fun field -> require_float field (Obs.Json.member field faults))
    [ "baseline_ms"; "empty_spec_ms"; "active_ms"; "supervised_ms";
      "empty_over_baseline"; "active_over_baseline";
      "supervised_over_baseline" ];
  (* causal: flight-recorder overhead numbers and the crash-report shape
     the post-mortem pipeline promises *)
  let causal =
    match Obs.Json.member "causal" json with
    | Some j -> j
    | None -> fail "missing section \"causal\""
  in
  List.iter
    (fun field -> require_float field (Obs.Json.member field causal))
    [ "flight_off_ms"; "flight_on_ms"; "on_over_off" ];
  let crash =
    match Obs.Json.member "crash_report" causal with
    | Some j -> j
    | None -> fail "missing \"causal\".crash_report"
  in
  (match Obs.Json.member "schema" crash with
   | Some (Obs.Json.Str "umh-crash-report") -> ()
   | Some _ -> fail "crash_report.schema is not \"umh-crash-report\""
   | None -> fail "missing crash_report.schema");
  (match Obs.Json.member "reason" crash with
   | Some (Obs.Json.Str _) -> ()
   | _ -> fail "missing crash_report.reason");
  (match Obs.Json.member "chain_hops" crash with
   | Some (Obs.Json.Int n) when n > 0 -> ()
   | _ -> fail "crash_report.chain_hops must be a positive int");
  (match Obs.Json.member "flight_entries" crash with
   | Some (Obs.Json.Int n) when n > 0 -> ()
   | _ -> fail "crash_report.flight_entries must be a positive int");
  (* telemetry / profile: optional (older reports predate them — the
     perf trajectory must keep validating PR5-era files) but strict when
     present: a malformed section fails, never silently passes. Both are
     schema-versioned so a future shape change must bump the int. *)
  let positive_int section name = function
    | Some (Obs.Json.Int n) when n > 0 -> ()
    | Some _ -> fail "%s.%s must be a positive int" section name
    | None -> fail "missing %s.%s" section name
  in
  let telemetry_present =
    match Obs.Json.member "telemetry" json with
    | None -> false
    | Some tel ->
      (match Obs.Json.member "schema_version" tel with
       | Some (Obs.Json.Int 1) -> ()
       | Some _ -> fail "telemetry.schema_version must be 1"
       | None -> fail "missing telemetry.schema_version");
      List.iter
        (fun field -> require_float field (Obs.Json.member field tel))
        [ "every_s"; "telemetry_off_ms"; "telemetry_on_ms";
          "emit_us_per_record"; "on_over_off" ];
      positive_int "telemetry" "records" (Obs.Json.member "records" tel);
      positive_int "telemetry" "streamers" (Obs.Json.member "streamers" tel);
      true
  in
  let profile_present =
    match Obs.Json.member "profile" json with
    | None -> false
    | Some prof ->
      (match Obs.Json.member "schema_version" prof with
       | Some (Obs.Json.Int 1) -> ()
       | Some _ -> fail "profile.schema_version must be 1"
       | None -> fail "missing profile.schema_version");
      List.iter
        (fun field -> require_float field (Obs.Json.member field prof))
        [ "profile_off_ms"; "profile_on_ms"; "on_over_off" ];
      positive_int "profile" "entities" (Obs.Json.member "entities" prof);
      (match Obs.Json.member "top" prof with
       | Some (Obs.Json.List (_ :: _ as rows)) ->
         List.iter
           (fun r ->
              (match Obs.Json.member "name" r with
               | Some (Obs.Json.Str _) -> ()
               | _ -> fail "profile.top entry missing string \"name\"");
              positive_int "profile.top" "count" (Obs.Json.member "count" r))
           rows
       | Some _ -> fail "profile.top is not a non-empty list"
       | None -> fail "missing profile.top");
      true
  in
  Printf.printf "check_json: %s ok (%d e3 points%s%s)\n" path
    (List.length points)
    (if telemetry_present then ", telemetry" else "")
    (if profile_present then ", profile" else "")
