(* Quickstart: the paper's architecture in ~80 lines of API code.

   A thermostat — one capsule (event-driven state machine, the
   time-discrete part) and one streamer (thermal plant solved
   continuously, the time-continuous part), joined by an SPort link.

   Run with: dune exec examples/quickstart.exe *)

let protocol =
  Umlrt.Protocol.create "Thermo"
    ~incoming:[ Umlrt.Protocol.signal "heater_on"; Umlrt.Protocol.signal "heater_off" ]
    ~outgoing:[ Umlrt.Protocol.signal "too_cold"; Umlrt.Protocol.signal "too_hot" ]

(* The streamer: T' = -(T - ambient)/tau + gain * duty, plus two
   zero-crossing guards that raise signals toward the capsule, and a
   strategy that lets the capsule flip the duty parameter. *)
let room =
  let rhs (env : Hybrid.Solver.env) _t y =
    let p = env.Hybrid.Solver.param in
    [| (-.(y.(0) -. p "ambient") /. p "tau") +. (p "gain" *. p "duty") |]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"heater_on"
    (Hybrid.Strategy.set_param_const "duty" 1.);
  Hybrid.Strategy.on strategy ~signal:"heater_off"
    (Hybrid.Strategy.set_param_const "duty" 0.);
  Hybrid.Streamer.leaf "room" ~rate:0.05 ~dim:1 ~init:[| 20. |]
    ~params:[ ("duty", 0.); ("ambient", 15.); ("tau", 20.); ("gain", 0.8) ]
    ~dports:[ Hybrid.Streamer.dport_out "temp" ]
    ~sports:[ Hybrid.Streamer.sport "ctl" protocol ]
    ~guards:
      [ { Hybrid.Streamer.guard_id = "low"; signal = "too_cold"; via_sport = "ctl";
          direction = Ode.Events.Falling;
          expr = (fun _ _ y -> y.(0) -. 19.); payload = None };
        { Hybrid.Streamer.guard_id = "high"; signal = "too_hot"; via_sport = "ctl";
          direction = Ode.Events.Rising;
          expr = (fun _ _ y -> y.(0) -. 21.); payload = None } ]
    ~strategy
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "temp") ])
    ~rhs

(* The capsule: a two-state machine on the event thread. *)
let controller =
  let behavior (services : Umlrt.Capsule.services) =
    let m = Statechart.Machine.create "thermostat" in
    Statechart.Machine.add_state m "Idle";
    Statechart.Machine.add_state m "Heating";
    Statechart.Machine.set_initial m "Idle";
    let send signal _ctx _evt =
      services.Umlrt.Capsule.send ~port:"plant" (Statechart.Event.make signal)
    in
    Statechart.Machine.add_transition m ~src:"Idle" ~dst:"Heating"
      ~trigger:"too_cold" ~action:(send "heater_on") ();
    Statechart.Machine.add_transition m ~src:"Heating" ~dst:"Idle"
      ~trigger:"too_hot" ~action:(send "heater_off") ();
    let i = ref None in
    { Umlrt.Capsule.on_start = (fun () -> i := Some (Statechart.Instance.start m ()));
      on_event =
        (fun ~port:_ e ->
           match !i with Some i -> Statechart.Instance.handle i e | None -> false);
      configuration =
        (fun () ->
           match !i with Some i -> Statechart.Instance.configuration i | None -> []) }
  in
  Umlrt.Capsule.create "controller"
    ~ports:[ Umlrt.Capsule.port ~conjugated:true "plant" protocol ]
    ~behavior

let sparkline trace ~buckets =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  match (Sigtrace.Trace.minimum trace, Sigtrace.Trace.maximum trace,
         Sigtrace.Trace.start_time trace, Sigtrace.Trace.end_time trace)
  with
  | Some lo, Some hi, Some t0, Some t1 when hi > lo ->
    String.init buckets (fun i ->
        let time = t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (buckets - 1)) in
        match Sigtrace.Trace.value_at trace time with
        | Some v ->
          let k = int_of_float ((v -. lo) /. (hi -. lo) *. 7.) in
          glyphs.(Int.max 0 (Int.min 7 k))
        | None -> ' ')
  | _ -> "(empty)"

let () =
  let engine = Hybrid.Engine.create ~root:controller () in
  Hybrid.Engine.add_streamer engine ~role:"room" room;
  Hybrid.Engine.link_sport_exn engine ~role:"room" ~sport:"ctl" ~border_port:"plant";
  let trace = Hybrid.Engine.trace_dport engine ~role:"room" ~dport:"temp" in
  Hybrid.Engine.run_until engine 600.;
  let stats = Hybrid.Engine.stats engine in
  Printf.printf "thermostat: 600 simulated seconds\n";
  Printf.printf "  streamer ticks        : %d\n" stats.Hybrid.Engine.ticks_total;
  Printf.printf "  signals to capsule    : %d\n" stats.Hybrid.Engine.signals_to_capsules;
  Printf.printf "  signals to streamer   : %d\n" stats.Hybrid.Engine.signals_to_streamers;
  (match (Sigtrace.Trace.minimum trace, Sigtrace.Trace.maximum trace) with
   | Some lo, Some hi ->
     Printf.printf "  temperature range     : %.2f .. %.2f degC\n" lo hi
   | _ -> ());
  Printf.printf "  temp   |%s|\n" (sparkline trace ~buckets:72);
  (match Hybrid.Engine.runtime engine with
   | Some rt ->
     (match Umlrt.Runtime.configuration rt "controller" with
      | Some config ->
        Printf.printf "  controller state      : %s\n" (String.concat "/" config)
      | None -> ())
   | None -> ())
