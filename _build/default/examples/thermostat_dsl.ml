(* The same thermostat as quickstart.ml, but defined entirely in the .umh
   textual language and driven through the full pipeline the paper
   describes: model design (text) -> static checking -> simulation ->
   code generation.

   Run with: dune exec examples/thermostat_dsl.exe *)

let model_source = {umh|
model Thermostat

flowtype Temp { value: float }

protocol Thermo {
  in heater_on, heater_off;
  out too_cold, too_hot;
}

streamer Room {
  rate 0.05;
  method rk4 0.005;
  dport out temp : Temp;
  sport ctl : Thermo;
  param duty = 0.0;
  param ambient = 15.0;
  param tau = 20.0;
  param gain = 0.8;
  init T = 20.0;
  eq T' = -(T - ambient) / tau + gain * duty;
  output temp = T;
  guard low : falling (T - 19.0) emits too_cold via ctl;
  guard high : rising (T - 21.0) emits too_hot via ctl;
  when heater_on set duty = 1.0;
  when heater_off set duty = 0.0;
}

capsule Controller {
  port plant : Thermo conjugated;
  statemachine {
    initial Idle;
    state Idle { on too_cold -> Heating send heater_on via plant; }
    state Heating { on too_hot -> Idle send heater_off via plant; }
  }
}

system {
  capsule ctl : Controller;
  streamer room : Room in ctl;
  link room.ctl -- ctl.plant;
}
|umh}

let () =
  (* 1. model design: parse the text. *)
  let ast = Dsl.Parser.parse model_source in
  Printf.printf "parsed model %S\n" ast.Dsl.Ast.m_name;
  (* 2. static checking: the paper's well-formedness rules. *)
  let checked = Dsl.Typecheck.check ast in
  List.iter (Printf.printf "  warning: %s\n") checked.Dsl.Typecheck.warnings;
  (match checked.Dsl.Typecheck.errors with
   | [] -> Printf.printf "typecheck: OK (rules R1-R8)\n"
   | errors ->
     List.iter (Printf.printf "  error: %s\n") errors;
     exit 1);
  (* 3. simulation: elaborate to the hybrid engine and run. *)
  let { Dsl.Elaborate.engine; _ } = Dsl.Elaborate.elaborate checked in
  let trace = Hybrid.Engine.trace_dport engine ~role:"room" ~dport:"temp" in
  Hybrid.Engine.run_until engine 300.;
  (match (Sigtrace.Trace.minimum trace, Sigtrace.Trace.maximum trace) with
   | Some lo, Some hi ->
     Printf.printf "simulate: 300 s, temperature stayed in %.2f .. %.2f degC\n" lo hi
   | _ -> ());
  (* 4. code generation: emit the C program. *)
  let files = Codegen.Cgen.generate checked in
  List.iter
    (fun { Codegen.Cgen.filename; contents } ->
       Printf.printf "codegen: %s (%d bytes)\n" filename (String.length contents))
    files;
  (* Show the reader the generated solver entry point. *)
  (match files with
   | [ _; { Codegen.Cgen.contents; _ } ] ->
     let lines = String.split_on_char '\n' contents in
     let from = ref false in
     let shown = ref 0 in
     List.iter
       (fun line ->
          if !shown < 6 then begin
            if String.length line >= 20
               && String.equal (String.sub line 0 20) "static void room_rhs"
            then from := true;
            if !from then begin
              Printf.printf "  | %s\n" line;
              incr shown
            end
          end)
       lines
   | _ -> ())
