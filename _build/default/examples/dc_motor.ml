(* DC motor speed regulation with an LQR-designed state feedback law and
   load-torque disturbances arriving as events.

   - motor streamer: the 2-state electromechanical plant (speed, current);
   - regulator streamer: u = -K (x - x_ref) + feedforward, with K from
     Control.Lqr (CARE solved at startup);
   - operator capsule: steps the speed reference and drops a load torque
     on the shaft mid-run, via strategies.

   Run with: dune exec examples/dc_motor.exe *)

let motor = Plant.Dc_motor.default

let protocol =
  Umlrt.Protocol.create "Drive"
    ~incoming:
      [ Umlrt.Protocol.signal ~payload:Dataflow.Flow_type.float_flow "set_speed";
        Umlrt.Protocol.signal ~payload:Dataflow.Flow_type.float_flow "load" ]
    ~outgoing:[ Umlrt.Protocol.signal "settled" ]

(* LQR design on the linear motor model. *)
let k_lqr =
  Control.Lqr.gains
    ~a:(Plant.Dc_motor.a_matrix motor)
    ~b:[| 0.; 1. /. motor.Plant.Dc_motor.inductance |]
    ~q:[| [| 10.; 0. |]; [| 0.; 0.01 |] |]
    ~r:0.1 ()

let motor_streamer =
  let rhs (env : Hybrid.Solver.env) _t y =
    let v = env.Hybrid.Solver.input "voltage" in
    let tau_load = env.Hybrid.Solver.param "load" in
    let omega = y.(0) in
    let i = y.(1) in
    [| ((motor.Plant.Dc_motor.kt *. i)
        -. (motor.Plant.Dc_motor.damping *. omega) -. tau_load)
       /. motor.Plant.Dc_motor.inertia;
       (v -. (motor.Plant.Dc_motor.resistance *. i)
        -. (motor.Plant.Dc_motor.ke *. omega))
       /. motor.Plant.Dc_motor.inductance |]
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"load"
    (Hybrid.Strategy.set_param_from_payload "load");
  Hybrid.Streamer.leaf "motor" ~rate:0.001 ~dim:2 ~init:[| 0.; 0. |]
    ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 1e-4))
    ~params:[ ("load", 0.) ]
    ~dports:
      [ Hybrid.Streamer.dport_in "voltage";
        Hybrid.Streamer.dport_out "omega";
        Hybrid.Streamer.dport_out "current" ]
    ~sports:[ Hybrid.Streamer.sport "drive" protocol ]
    ~strategy
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "omega"); (1, "current") ])
    ~rhs

let regulator_streamer =
  (* Steady-state feedforward voltage for the reference speed plus LQR
     feedback on the deviation. *)
  let control (env : Hybrid.Solver.env) =
    let omega = env.Hybrid.Solver.input "omega" in
    let current = env.Hybrid.Solver.input "current" in
    let ref_speed = env.Hybrid.Solver.param "ref" in
    let denom =
      (motor.Plant.Dc_motor.resistance *. motor.Plant.Dc_motor.damping)
      +. (motor.Plant.Dc_motor.kt *. motor.Plant.Dc_motor.ke)
    in
    let v_ff = ref_speed *. denom /. motor.Plant.Dc_motor.kt in
    let i_ref = motor.Plant.Dc_motor.damping *. ref_speed /. motor.Plant.Dc_motor.kt in
    let u =
      v_ff
      -. (k_lqr.(0) *. (omega -. ref_speed))
      -. (k_lqr.(1) *. (current -. i_ref))
    in
    Float.max (-48.) (Float.min 48. u)
  in
  let settled_guard =
    { Hybrid.Streamer.guard_id = "settled"; signal = "settled"; via_sport = "cmd";
      direction = Ode.Events.Rising;
      expr =
        (fun (env : Hybrid.Solver.env) _t _y ->
           0.5 -. Float.abs (env.Hybrid.Solver.param "ref"
                             -. env.Hybrid.Solver.input "omega"));
      payload = None }
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"set_speed"
    (Hybrid.Strategy.set_param_from_payload "ref");
  Hybrid.Streamer.leaf "regulator" ~rate:0.001 ~dim:1 ~init:[| 0. |]
    ~params:[ ("ref", 0.) ]
    ~dports:
      [ Hybrid.Streamer.dport_in "omega";
        Hybrid.Streamer.dport_in "current";
        Hybrid.Streamer.dport_out "voltage" ]
    ~sports:[ Hybrid.Streamer.sport "cmd" protocol ]
    ~guards:[ settled_guard ]
    ~strategy
    ~outputs:
      (Hybrid.Streamer.output_fn (fun env _t _y ->
           [ ("voltage", Dataflow.Value.Float (control env)) ]))
    ~rhs:(fun _ _ _ -> [| 0. |])

let operator =
  let behavior (services : Umlrt.Capsule.services) =
    let send port signal v =
      services.Umlrt.Capsule.send ~port
        (Statechart.Event.make ~value:(Dataflow.Value.Float v) signal)
    in
    { Umlrt.Capsule.on_start =
        (fun () ->
           send "reg" "set_speed" 150.;
           services.Umlrt.Capsule.timer_after 1.0
             (Statechart.Event.make ~value:(Dataflow.Value.Float 0.03) "drop_load");
           services.Umlrt.Capsule.timer_after 2.0
             (Statechart.Event.make ~value:(Dataflow.Value.Float 230.) "bump"));
      on_event =
        (fun ~port:_ event ->
           match Statechart.Event.signal event with
           | "drop_load" ->
             (match Statechart.Event.float_payload event with
              | Some tau ->
                send "mot" "load" tau;
                true
              | None -> false)
           | "bump" ->
             (match Statechart.Event.float_payload event with
              | Some v ->
                send "reg" "set_speed" v;
                true
              | None -> false)
           | "settled" -> true
           | _ -> false);
      configuration = (fun () -> [ "operating" ]) }
  in
  Umlrt.Capsule.create "operator" ~behavior
    ~ports:
      [ Umlrt.Capsule.port ~conjugated:true "reg" protocol;
        Umlrt.Capsule.port ~conjugated:true "mot" protocol ]

let () =
  let engine = Hybrid.Engine.create ~root:operator () in
  Hybrid.Engine.add_streamer engine ~role:"motor" motor_streamer;
  Hybrid.Engine.add_streamer engine ~role:"regulator" regulator_streamer;
  Hybrid.Engine.connect_flow_exn engine ~src:("motor", "omega")
    ~dst:("regulator", "omega");
  Hybrid.Engine.connect_flow_exn engine ~src:("motor", "current")
    ~dst:("regulator", "current");
  Hybrid.Engine.connect_flow_exn engine ~src:("regulator", "voltage")
    ~dst:("motor", "voltage");
  Hybrid.Engine.link_sport_exn engine ~role:"regulator" ~sport:"cmd"
    ~border_port:"reg";
  Hybrid.Engine.link_sport_exn engine ~role:"motor" ~sport:"drive"
    ~border_port:"mot";
  let speed = Hybrid.Engine.trace_dport engine ~role:"motor" ~dport:"omega" in
  Hybrid.Engine.run_until engine 3.;
  Printf.printf "dc motor LQR drive: 3 simulated seconds\n";
  Printf.printf "  lqr gains        : k = [%.3f; %.3f]\n" k_lqr.(0) k_lqr.(1);
  let at time =
    match Sigtrace.Trace.value_at speed time with
    | Some v -> v
    | None -> nan
  in
  Printf.printf "  speed @0.5s      : %7.2f rad/s (ref 150)\n" (at 0.5);
  Printf.printf "  speed @1.5s      : %7.2f rad/s (after 0.03 Nm load)\n" (at 1.5);
  Printf.printf "  speed @3.0s      : %7.2f rad/s (ref 230)\n" (at 3.0);
  let sag =
    (* worst dip right after the load step at t=1 *)
    List.fold_left
      (fun acc (t, v) -> if t > 1.0 && t < 1.3 then Float.min acc v else acc)
      infinity (Sigtrace.Trace.samples speed)
  in
  Printf.printf "  worst sag after load step: %.2f rad/s\n" sag;
  let stats = Hybrid.Engine.stats engine in
  Printf.printf "  signals: %d to streamers, %d to capsules\n"
    stats.Hybrid.Engine.signals_to_streamers stats.Hybrid.Engine.signals_to_capsules
