(* Pendulum swing-up and stabilization — the classic mode-switching
   hybrid control problem the paper's architecture targets.

   Structure (Figure 3 of the paper):
   - plant streamer: nonlinear pendulum, torque input via DPort, a
     zero-crossing guard announcing "near upright" via SPort;
   - controller streamer: energy-pumping swing-up law or state feedback,
     selected by a mode parameter;
   - supervisor capsule: Swinging -> Balancing on the near_upright
     signal, switching the controller through its strategy.

   Run with: dune exec examples/pendulum.exe *)

let plant = Plant.Pendulum.create ~damping:0.005 ()
let inertia = plant.Plant.Pendulum.mass *. plant.Plant.Pendulum.length ** 2.
let upright_energy =
  2. *. plant.Plant.Pendulum.mass *. plant.Plant.Pendulum.gravity
  *. plant.Plant.Pendulum.length

let protocol =
  Umlrt.Protocol.create "Supervision"
    ~incoming:[ Umlrt.Protocol.signal "stabilize"; Umlrt.Protocol.signal "swing" ]
    ~outgoing:
      [ Umlrt.Protocol.signal "near_upright"; Umlrt.Protocol.signal "fell" ]

(* Stabilizing gains by pole placement on the upright linearization. *)
let k_stab =
  let a = Plant.Pendulum.linearized plant ~upright:true in
  let b = [| 0.; 1. /. inertia |] in
  Control.State_feedback.place2 ~a ~b ~poles:(-4., -5.)

let pendulum_streamer =
  let rhs (env : Hybrid.Solver.env) _t y =
    let u = env.Hybrid.Solver.input "torque" in
    let theta = y.(0) in
    let omega = y.(1) in
    [| omega;
       (-.(plant.Plant.Pendulum.gravity /. plant.Plant.Pendulum.length) *. sin theta)
       -. (plant.Plant.Pendulum.damping /. inertia *. omega)
       +. (u /. inertia) |]
  in
  (* Announce the upright neighbourhood: g = margin - |angle error|. *)
  let upright_guard =
    { Hybrid.Streamer.guard_id = "upright"; signal = "near_upright";
      via_sport = "sup"; direction = Ode.Events.Rising;
      expr =
        (fun _env _t y ->
           let err = Float.abs (Float.pi -. Float.abs y.(0)) in
           let omega_ok = 0.25 -. (0.05 *. Float.abs y.(1)) in
           Float.min (0.35 -. err) omega_ok);
      payload = None }
  in
  Hybrid.Streamer.leaf "pendulum" ~rate:0.002 ~dim:2 ~init:[| 0.05; 0. |]
    ~method_:(Ode.Integrator.Fixed (Ode.Fixed.Rk4, 5e-4))
    ~dports:
      [ Hybrid.Streamer.dport_in "torque";
        Hybrid.Streamer.dport_out "theta";
        Hybrid.Streamer.dport_out "omega" ]
    ~sports:[ Hybrid.Streamer.sport "sup" protocol ]
    ~guards:[ upright_guard ]
    ~outputs:(Hybrid.Streamer.state_outputs [ (0, "theta"); (1, "omega") ])
    ~rhs

(* The controller computes torque from (theta, omega); mode 0 = energy
   swing-up, mode 1 = state feedback about the upright equilibrium. *)
let controller_streamer =
  let torque (env : Hybrid.Solver.env) =
    let theta = env.Hybrid.Solver.input "theta" in
    let omega = env.Hybrid.Solver.input "omega" in
    let mode = env.Hybrid.Solver.param "mode" in
    let u_max = env.Hybrid.Solver.param "u_max" in
    let u =
      if mode < 0.5 then begin
        (* Energy pumping toward the upright energy level. *)
        let energy =
          (0.5 *. inertia *. omega *. omega)
          +. (plant.Plant.Pendulum.mass *. plant.Plant.Pendulum.gravity
              *. plant.Plant.Pendulum.length *. (1. -. cos theta))
        in
        (* Direct-torque energy pumping: push along the velocity while
           below the upright energy level. *)
        let gain = env.Hybrid.Solver.param "k_swing" in
        gain *. (upright_energy -. energy) *. omega
      end
      else begin
        (* Wrap the angle error into (-pi, pi] around the upright. *)
        let err =
          let raw = theta -. (Float.pi *. (if theta >= 0. then 1. else -1.)) in
          raw
        in
        -.((k_stab.(0) *. err) +. (k_stab.(1) *. omega))
      end
    in
    Float.max (-.u_max) (Float.min u_max u)
  in
  let strategy = Hybrid.Strategy.create () in
  Hybrid.Strategy.on strategy ~signal:"stabilize"
    (Hybrid.Strategy.set_param_const "mode" 1.);
  Hybrid.Strategy.on strategy ~signal:"swing"
    (Hybrid.Strategy.set_param_const "mode" 0.);
  Hybrid.Streamer.leaf "controller" ~rate:0.002 ~dim:1 ~init:[| 0. |]
    ~params:[ ("mode", 0.); ("k_swing", 4.0); ("u_max", 0.6) ]
    ~dports:
      [ Hybrid.Streamer.dport_in "theta";
        Hybrid.Streamer.dport_in "omega";
        Hybrid.Streamer.dport_out "torque" ]
    ~sports:[ Hybrid.Streamer.sport "cmd" protocol ]
    ~strategy
    ~outputs:
      (Hybrid.Streamer.output_fn (fun env _t _y ->
           [ ("torque", Dataflow.Value.Float (torque env)) ]))
    ~rhs:(fun _ _ _ -> [| 0. |])

let supervisor =
  let behavior (services : Umlrt.Capsule.services) =
    let m = Statechart.Machine.create "supervisor" in
    Statechart.Machine.add_state m "Swinging";
    Statechart.Machine.add_state m "Balancing";
    Statechart.Machine.set_initial m "Swinging";
    let send port signal _ _ =
      services.Umlrt.Capsule.send ~port (Statechart.Event.make signal)
    in
    Statechart.Machine.add_transition m ~src:"Swinging" ~dst:"Balancing"
      ~trigger:"near_upright" ~action:(send "ctl" "stabilize") ();
    let i = ref None in
    { Umlrt.Capsule.on_start = (fun () -> i := Some (Statechart.Instance.start m ()));
      on_event =
        (fun ~port:_ e ->
           match !i with Some i -> Statechart.Instance.handle i e | None -> false);
      configuration =
        (fun () ->
           match !i with Some i -> Statechart.Instance.configuration i | None -> []) }
  in
  Umlrt.Capsule.create "supervisor"
    ~ports:
      [ Umlrt.Capsule.port ~conjugated:true "plant" protocol;
        Umlrt.Capsule.port ~conjugated:true "ctl" protocol ]
    ~behavior

let () =
  let engine = Hybrid.Engine.create ~root:supervisor () in
  Hybrid.Engine.add_streamer engine ~role:"pendulum" pendulum_streamer;
  Hybrid.Engine.add_streamer engine ~role:"controller" controller_streamer;
  Hybrid.Engine.connect_flow_exn engine ~src:("pendulum", "theta")
    ~dst:("controller", "theta");
  Hybrid.Engine.connect_flow_exn engine ~src:("pendulum", "omega")
    ~dst:("controller", "omega");
  Hybrid.Engine.connect_flow_exn engine ~src:("controller", "torque")
    ~dst:("pendulum", "torque");
  Hybrid.Engine.link_sport_exn engine ~role:"pendulum" ~sport:"sup"
    ~border_port:"plant";
  Hybrid.Engine.link_sport_exn engine ~role:"controller" ~sport:"cmd"
    ~border_port:"ctl";
  let theta_trace = Hybrid.Engine.trace_dport engine ~role:"pendulum" ~dport:"theta" in
  Hybrid.Engine.run_until engine 30.;
  let final_mode =
    match Hybrid.Engine.solver_of engine "controller" with
    | Some s -> Hybrid.Solver.get_param s "mode"
    | None -> nan
  in
  let final_state =
    match Hybrid.Engine.solver_of engine "pendulum" with
    | Some s -> Hybrid.Solver.state s
    | None -> [||]
  in
  Printf.printf "pendulum swing-up: 30 simulated seconds\n";
  Printf.printf "  controller mode : %s\n"
    (if final_mode >= 0.5 then "balancing (state feedback)" else "still swinging");
  (match Hybrid.Engine.runtime engine with
   | Some rt ->
     (match Umlrt.Runtime.configuration rt "supervisor" with
      | Some config ->
        Printf.printf "  supervisor      : %s\n" (String.concat "/" config)
      | None -> ())
   | None -> ());
  if Array.length final_state = 2 then begin
    let err = Float.abs (Float.pi -. Float.abs final_state.(0)) in
    Printf.printf "  final angle     : %.4f rad (%.4f from upright)\n"
      final_state.(0) err;
    Printf.printf "  final velocity  : %.4f rad/s\n" final_state.(1)
  end;
  (match Sigtrace.Trace.maximum (Sigtrace.Trace.map Float.abs theta_trace) with
   | Some peak -> Printf.printf "  peak |angle|    : %.3f rad\n" peak
   | None -> ());
  Printf.printf "  k_stab          : [%.3f; %.3f] (poles -4, -5)\n"
    k_stab.(0) k_stab.(1)
